package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"piggyback/internal/telemetry"
)

// SolveRecord is one finished solve as the metrics middleware saw it.
type SolveRecord struct {
	// Wall is the solve's wall-clock duration.
	Wall time.Duration
	// Iterations is the solver-reported iteration count (PARALLELNOSY
	// rounds, CHITCHAT commits, shard count).
	Iterations int
	// Events is the number of progress events observed during the solve
	// — the oracle-call / commit granularity measure for solvers that
	// stream progress; 0 for those that do not.
	Events int64
	// Cost is the finalized schedule cost (NaN for region re-solves,
	// which are priced by their callers).
	Cost float64
	// Canceled marks a solve cut short by its context (the schedule is
	// still the valid best-so-far result).
	Canceled bool
	// Failed marks a solve that produced no schedule at all.
	Failed bool
}

// SolverStats aggregates every recorded solve of one solver.
type SolverStats struct {
	Solves     int
	Failures   int
	Canceled   int
	Iterations int64
	Events     int64
	Wall       time.Duration
	// LastCost is the most recent non-NaN finalized cost.
	LastCost float64
}

// SolverMetrics is the per-solver sink the WithMetrics middleware
// records into. Since the telemetry layer landed it is a thin adapter
// over a telemetry.Registry: every Record books into per-solver
// telemetry series (solver_solves_total{solver="x"} and friends), and
// the legacy accessors (Snapshot, Names, Table) read those series back,
// so `cmd/experiments -middleware metrics` output is unchanged while
// the same numbers flow to /metrics. New code that only needs the
// counters should read the registry; this API remains for the
// table-rendering path.
//
// The zero value is ready (it lazily creates a private registry); use
// NewSolverMetrics to book into a shared registry instead. All methods
// are safe for concurrent use (portfolio racers record concurrently).
type SolverMetrics struct {
	mu    sync.Mutex
	reg   *telemetry.Registry
	insts map[string]*solverInst
}

// solverInst caches the telemetry instruments of one solver name so the
// Record hot path is pure atomics after first touch.
type solverInst struct {
	solves, failures, canceled *telemetry.Counter
	iterations, events         *telemetry.Counter
	wall                       *telemetry.Gauge // accumulated seconds; timing by convention
	lastCost                   *telemetry.Gauge
	costSet                    atomic.Bool // distinguishes "no cost yet" (NaN) from 0
}

// NewSolverMetrics returns a sink that registers its series in reg
// (which may be shared with other instrumentation; nil behaves like the
// zero value and creates a private registry on first use).
func NewSolverMetrics(reg *telemetry.Registry) *SolverMetrics {
	return &SolverMetrics{reg: reg}
}

// Registry returns the registry the sink books into, creating the
// private one if the sink was zero-valued — the bridge that lets a
// process expose the solver counters over /metrics.
func (s *SolverMetrics) Registry() *telemetry.Registry {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.reg == nil {
		s.reg = telemetry.NewRegistry()
	}
	return s.reg
}

func (s *SolverMetrics) inst(solver string) *solverInst {
	s.mu.Lock()
	defer s.mu.Unlock()
	if in, ok := s.insts[solver]; ok {
		return in
	}
	if s.reg == nil {
		s.reg = telemetry.NewRegistry()
	}
	if s.insts == nil {
		s.insts = map[string]*solverInst{}
	}
	l := telemetry.Label{Key: "solver", Value: solver}
	in := &solverInst{
		solves:     s.reg.Counter("solver_solves_total", l),
		failures:   s.reg.Counter("solver_failures_total", l),
		canceled:   s.reg.Counter("solver_canceled_total", l),
		iterations: s.reg.Counter("solver_iterations_total", l),
		events:     s.reg.Counter("solver_events_total", l),
		wall:       s.reg.Gauge("solver_wall_seconds_total", l),
		lastCost:   s.reg.Gauge("solver_last_cost", l),
	}
	s.insts[solver] = in
	return in
}

// Touch pre-registers the solver's series at their zero values, so a
// /metrics scrape shows them before the first solve completes.
func (s *SolverMetrics) Touch(solver string) { s.inst(solver) }

// Record books one finished solve under the solver's name.
func (s *SolverMetrics) Record(solver string, rec SolveRecord) {
	in := s.inst(solver)
	in.solves.Inc()
	if rec.Failed {
		in.failures.Inc()
	}
	if rec.Canceled {
		in.canceled.Inc()
	}
	in.iterations.Add(int64(rec.Iterations))
	in.events.Add(rec.Events)
	in.wall.Add(rec.Wall.Seconds())
	if !math.IsNaN(rec.Cost) {
		in.lastCost.Set(rec.Cost)
		in.costSet.Store(true)
	}
}

// stats reads one solver's aggregates back out of its instruments.
func (in *solverInst) stats() SolverStats {
	st := SolverStats{
		Solves:     int(in.solves.Value()),
		Failures:   int(in.failures.Value()),
		Canceled:   int(in.canceled.Value()),
		Iterations: in.iterations.Value(),
		Events:     in.events.Value(),
		Wall:       time.Duration(in.wall.Value() * float64(time.Second)),
		LastCost:   math.NaN(),
	}
	if in.costSet.Load() {
		st.LastCost = in.lastCost.Value()
	}
	return st
}

// Snapshot returns a copy of the aggregates keyed by solver name.
func (s *SolverMetrics) Snapshot() map[string]SolverStats {
	s.mu.Lock()
	insts := make(map[string]*solverInst, len(s.insts))
	for n, in := range s.insts {
		insts[n] = in
	}
	s.mu.Unlock()
	out := make(map[string]SolverStats, len(insts))
	for n, in := range insts {
		out[n] = in.stats()
	}
	return out
}

// Names returns the recorded solver names, sorted.
func (s *SolverMetrics) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.insts))
	for n := range s.insts {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Table renders the aggregates as an aligned text table, one row per
// solver (sorted by name) — what `cmd/experiments -middleware metrics`
// prints.
func (s *SolverMetrics) Table() string {
	snap := s.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)

	rows := [][]string{{"solver", "solves", "iters", "events", "wall", "last cost", "canceled", "failed"}}
	for _, n := range names {
		st := snap[n]
		cost := "-"
		if !math.IsNaN(st.LastCost) {
			cost = fmt.Sprintf("%.1f", st.LastCost)
		}
		rows = append(rows, []string{
			n,
			fmt.Sprintf("%d", st.Solves),
			fmt.Sprintf("%d", st.Iterations),
			fmt.Sprintf("%d", st.Events),
			st.Wall.Round(time.Millisecond).String(),
			cost,
			fmt.Sprintf("%d", st.Canceled),
			fmt.Sprintf("%d", st.Failures),
		})
	}
	width := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	for ri, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], cell)
		}
		b.WriteByte('\n')
		if ri == 0 {
			for i, w := range width {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", w))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
