// Package chitchat implements the CHITCHAT approximation algorithm (§3.1).
//
// CHITCHAT maps the DISSEMINATION problem to weighted SETCOVER: the ground
// set is the edges of the social graph, and the candidate collection
// contains (a) singleton edges served directly at the hybrid cost
// c*(u→v) = min(rp(u), rc(v)) and (b) hub-graphs G(X, w, Y), which pay for
// the pushes X→w and pulls w→Y and cover, for free, every cross-edge
// X→Y present in the graph. The greedy step — find the candidate with the
// lowest cost per newly covered element — is solved per hub by the
// weighted densest-subgraph oracle of package densest (Lemma 1), giving
// an overall O(ln n) approximation (Theorem 4).
//
// The paper's Algorithm 1 refreshes the oracle output of every affected
// hub after each selection; we use the standard lazy-greedy variant
// instead: candidates are re-evaluated against the current uncovered set
// when they reach the head of the priority queue, and committed only if
// their refreshed ratio is still the best. The committed choice is the
// same greedy choice up to ties; the lazy form just avoids recomputing
// oracles whose turn never comes.
package chitchat

import (
	"math"

	"piggyback/internal/baseline"
	"piggyback/internal/bitset"
	"piggyback/internal/core"
	"piggyback/internal/densest"
	"piggyback/internal/graph"
	"piggyback/internal/pq"
	"piggyback/internal/workload"
)

// Config tunes CHITCHAT. The zero value uses the defaults.
type Config struct {
	// MaxCrossEdges bounds the number of cross-edges materialized per
	// hub-graph instance, mirroring the bound b of §3.2/§4.2. 0 means
	// DefaultMaxCrossEdges.
	MaxCrossEdges int
	// ExactOracle replaces the peeling oracle with brute-force subset
	// enumeration (instances up to 24 nodes; larger hub-graphs fall back
	// to peeling). Only sensible on tiny graphs; used by ablation benches.
	ExactOracle bool
}

// DefaultMaxCrossEdges matches the bound used for the Twitter runs in §4.2.
const DefaultMaxCrossEdges = 100000

// Solve computes a request schedule for g under rates r. The result is
// always valid (Theorem 1): every edge is pushed, pulled, or covered
// through a hub.
func Solve(g *graph.Graph, r *workload.Rates, cfg Config) *core.Schedule {
	if cfg.MaxCrossEdges == 0 {
		cfg.MaxCrossEdges = DefaultMaxCrossEdges
	}
	n := g.NumNodes()
	m := g.NumEdges()
	s := core.NewSchedule(g)
	if m == 0 {
		return s
	}

	uncovered := bitset.New(m)
	for e := 0; e < m; e++ {
		uncovered.Set(e)
	}
	remaining := m
	sc := &scratch{yMark: make([]int64, n), yPos: make([]int32, n)}

	// Priority queue over candidate ids: 0..n-1 are hub candidates
	// (hub-graphs centered on node w), n..n+m-1 are singleton edges.
	q := pq.New(n + m)

	// Singleton candidates never change ratio: c*(e) per single element.
	g.Edges(func(e graph.EdgeID, u, v graph.NodeID) bool {
		q.Push(n+int(e), baseline.EdgeCost(r, u, v))
		return true
	})

	// Hub candidates, initially evaluated against the full ground set.
	for w := 0; w < n; w++ {
		if res, ok := evalHub(g, r, s, uncovered, graph.NodeID(w), cfg, sc); ok {
			q.Push(w, res.ratio())
		}
	}

	// refresh re-evaluates the hub-graphs whose oracle output may have
	// IMPROVED after schedule changes on the given edges — Algorithm 1's
	// queue maintenance, restricted to where it matters. A hub-graph's
	// ratio improves only when a support-edge weight drops to zero, and a
	// changed edge (u, v) is a support edge only of the hub-graphs
	// centered at u (as the pull w → y) or at v (as a push x → w).
	// Hub-graphs that merely lost cross-edge elements got WORSE; their
	// stale (too low) queue entries are corrected by the re-evaluation at
	// pop time, which requeues them at the fresh ratio.
	// Hubs that drop out of the queue are exhausted for good: Z only
	// shrinks, so a hub with nothing coverable never regains value. The
	// one exception is the hub that just committed — it was popped for
	// processing and may still have residual coverage to offer, so it is
	// force-re-evaluated.
	touched := make(map[graph.NodeID]bool, 64)
	refresh := func(edges []graph.EdgeID, committed graph.NodeID) {
		for w := range touched {
			delete(touched, w)
		}
		for _, e := range edges {
			touched[g.EdgeSource(e)] = true
			touched[g.EdgeTarget(e)] = true
		}
		if committed >= 0 {
			touched[committed] = true
		}
		for w := range touched {
			if w != committed && !q.Contains(int(w)) {
				continue // exhausted hub; do not resurrect
			}
			if res, ok := evalHub(g, r, s, uncovered, w, cfg, sc); ok && res.newlyCovered > 0 {
				q.Update(int(w), res.ratio())
			} else {
				q.Remove(int(w))
			}
		}
	}

	for remaining > 0 && q.Len() > 0 {
		id, _ := q.PopMin()
		if id >= n {
			// Singleton edge: ratio never changes; skip if already covered.
			e := graph.EdgeID(id - n)
			if !uncovered.Test(int(e)) {
				continue
			}
			commitSingleton(g, r, s, e)
			uncovered.Clear(int(e))
			remaining--
			refresh([]graph.EdgeID{e}, -1)
			continue
		}
		// Hub candidate: re-evaluate against current state. With eager
		// refresh the stored ratio is usually fresh; the check guards the
		// rare case where a refresh batch raced... (single-threaded: it is
		// simply a cheap idempotent recheck).
		w := graph.NodeID(id)
		res, ok := evalHub(g, r, s, uncovered, w, cfg, sc)
		if !ok || res.newlyCovered == 0 {
			continue // hub has nothing left to offer
		}
		ratio := res.ratio()
		if q.Len() > 0 {
			if _, next := q.Min(); ratio > next {
				q.Push(id, ratio)
				continue
			}
		}
		changed := commitHub(g, s, uncovered, &remaining, w, res)
		refresh(changed, w)
	}
	// Defensive: schedule anything left (cannot happen — singletons cover
	// every edge — but Finalize keeps the invariant obvious).
	s.Finalize(r)
	return s
}

// hubEval is the oracle output for one hub: the chosen X/Y sides and how
// much it covers at what cost.
type hubEval struct {
	xSide        []graph.NodeID // producers to push to the hub
	ySide        []graph.NodeID // consumers to pull from the hub
	cost         float64        // Σ unpaid rp(x) + Σ unpaid rc(y)
	newlyCovered int            // |E(S) ∩ Z|
}

func (h hubEval) ratio() float64 {
	if h.newlyCovered == 0 {
		return math.Inf(1)
	}
	return h.cost / float64(h.newlyCovered)
}

// evalHub builds the weighted densest-subgraph instance for the maximal
// hub-graph centered on w — X = producers of w, Y = consumers of w — and
// runs the oracle. Elements (numerator edges) are restricted to the
// uncovered set Z; node weights are zeroed for support edges already in
// H or L, per Algorithm 1's weight update rule.
func evalHub(g *graph.Graph, r *workload.Rates, s *core.Schedule,
	uncovered *bitset.Set, w graph.NodeID, cfg Config, sc *scratch) (hubEval, bool) {

	xs := g.InNeighbors(w)
	xIDs := g.InEdgeIDs(w)
	ys := g.OutNeighbors(w)
	if len(xs) == 0 || len(ys) == 0 {
		return hubEval{}, false
	}
	yLo, _ := g.OutEdgeRange(w)

	// Instance layout: [0, len(xs)) X side, [len(xs), len(xs)+len(ys)) Y
	// side, last vertex = hub.
	nx, ny := len(xs), len(ys)
	hub := int32(nx + ny)
	inst := densest.Instance{
		N:      nx + ny + 1,
		Weight: make([]float64, nx+ny+1),
	}
	for i, x := range xs {
		if s.IsPush(xIDs[i]) {
			inst.Weight[i] = 0 // push already paid
		} else {
			inst.Weight[i] = r.Prod[x]
		}
		if uncovered.Test(int(xIDs[i])) {
			inst.Edges = append(inst.Edges, [2]int32{int32(i), hub})
		}
	}
	// Mark Y membership in the generation-stamped scratch array (a map
	// here dominated the whole solve on dense graphs).
	sc.gen++
	for j, y := range ys {
		e := yLo + graph.EdgeID(j)
		if s.IsPull(e) {
			inst.Weight[nx+j] = 0 // pull already paid
		} else {
			inst.Weight[nx+j] = r.Cons[y]
		}
		if uncovered.Test(int(e)) {
			inst.Edges = append(inst.Edges, [2]int32{hub, int32(nx + j)})
		}
		sc.yMark[y] = sc.gen
		sc.yPos[y] = int32(nx + j)
	}
	// Cross-edges x → y, bounded as in the paper.
	crossBudget := cfg.MaxCrossEdges
	for i, x := range xs {
		if crossBudget <= 0 {
			break
		}
		lo, hi := g.OutEdgeRange(x)
		targets := g.OutNeighbors(x)
		for k := lo; k < hi; k++ {
			y := targets[k-lo]
			if y == w || sc.yMark[y] != sc.gen || !uncovered.Test(int(k)) {
				continue
			}
			inst.Edges = append(inst.Edges, [2]int32{int32(i), sc.yPos[y]})
			crossBudget--
			if crossBudget <= 0 {
				break
			}
		}
	}
	if len(inst.Edges) == 0 {
		return hubEval{}, false
	}

	var res densest.Result
	if cfg.ExactOracle && inst.N <= 24 {
		res = densest.Exact(inst)
	} else {
		res = densest.Peel(inst)
	}
	if res.EdgeCnt == 0 {
		return hubEval{}, false
	}

	out := hubEval{cost: res.Weight}
	hubIn := false
	for _, v := range res.Members {
		switch {
		case v < int32(nx):
			out.xSide = append(out.xSide, xs[v])
		case v < hub:
			out.ySide = append(out.ySide, ys[v-int32(nx)])
		default:
			hubIn = true
		}
	}
	if !hubIn {
		// A subgraph without the hub vertex cannot realize its cross-edge
		// coverage (support pushes/pulls need the hub). The hub vertex has
		// weight 0 so adding it never hurts; count only edges incident to
		// selected members plus the hub.
		return hubEval{}, false
	}
	out.newlyCovered = res.EdgeCnt
	return out, len(out.xSide)+len(out.ySide) > 0
}

// commitHub applies the oracle's choice: pushes X→w, pulls w→Y, covers
// cross-edges, and removes every newly covered element from Z. It returns
// the edges whose schedule state changed, for queue refresh.
func commitHub(g *graph.Graph, s *core.Schedule, uncovered *bitset.Set,
	remaining *int, w graph.NodeID, res hubEval) []graph.EdgeID {

	var changed []graph.EdgeID
	cover := func(e graph.EdgeID) {
		if uncovered.Test(int(e)) {
			uncovered.Clear(int(e))
			*remaining--
		}
	}
	ySet := make(map[graph.NodeID]bool, len(res.ySide))
	for _, y := range res.ySide {
		ySet[y] = true
	}
	for _, x := range res.xSide {
		e, ok := g.EdgeID(x, w)
		if !ok {
			continue
		}
		s.SetPush(e)
		cover(e) // the support edge itself is served by the push
		changed = append(changed, e)
	}
	for _, y := range res.ySide {
		e, ok := g.EdgeID(w, y)
		if !ok {
			continue
		}
		s.SetPull(e)
		cover(e)
		changed = append(changed, e)
	}
	for _, x := range res.xSide {
		lo, hi := g.OutEdgeRange(x)
		targets := g.OutNeighbors(x)
		for k := lo; k < hi; k++ {
			y := targets[k-lo]
			if y == w || !ySet[y] {
				continue
			}
			if uncovered.Test(int(k)) {
				s.SetCovered(k, w)
				cover(k)
				changed = append(changed, k)
			}
		}
	}
	return changed
}

// commitSingleton serves edge e directly at the hybrid cost.
func commitSingleton(g *graph.Graph, r *workload.Rates, s *core.Schedule, e graph.EdgeID) {
	u := g.EdgeSource(e)
	v := g.EdgeTarget(e)
	if r.Prod[u] <= r.Cons[v] {
		s.SetPush(e)
	} else {
		s.SetPull(e)
	}
}

// scratch holds per-solve reusable buffers: yMark/yPos form a
// generation-stamped index from node id to the hub instance's Y-side
// vertex, replacing a per-evalHub map that dominated profiles.
type scratch struct {
	yMark []int64
	yPos  []int32
	gen   int64
}
