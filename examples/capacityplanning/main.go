// Capacityplanning: pick the request schedule for a deployment size.
// Small systems batch most requests on few servers, so the hybrid
// baseline is fine; past a few hundred servers the piggybacking schedule
// wins (the Figure 7 crossover). This example sweeps system sizes with
// the placement-aware cost model and prints the recommendation.
package main

import (
	"fmt"

	"piggyback"
)

func main() {
	g := piggyback.FlickrLikeGraph(2500, 11)
	r := piggyback.LogDegreeRates(g, 5)
	pn := piggyback.MustSolve("nosy", g, r)
	ff := piggyback.MustSolve("hybrid", g, r)

	fmt.Printf("%8s  %14s  %14s  %8s  %s\n",
		"servers", "PN throughput", "FF throughput", "ratio", "recommendation")
	for servers := 1; servers <= 8192; servers *= 4 {
		a := piggyback.HashPartition(g.NumNodes(), servers, 0)
		tpPN := piggyback.NormalizedThroughput(pn, r, a)
		tpFF := piggyback.NormalizedThroughput(ff, r, a)
		pick := "hybrid (FF)"
		if tpPN > tpFF {
			pick = "ParallelNosy"
		}
		fmt.Printf("%8d  %14.4f  %14.4f  %8.3f  %s\n",
			servers, tpPN, tpFF, tpPN/tpFF, pick)
	}

	fmt.Println("\nthroughput normalized to the single-server optimum (Figure 7)")
}
