package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFileSourcesAndMarkdown(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	os.WriteFile(a, []byte(`{"benchmarks":{"BenchmarkChitChatWorkers1":{"iterations":2,"ns_per_op":1.94e8,"sec_per_op":0.194}}}`), 0o644)
	os.WriteFile(b, []byte(`{"benchmarks":{"BenchmarkNosyWorkers1":{"iterations":2,"ns_per_op":4.1e8,"sec_per_op":0.41}}}`), 0o644)

	srcs, err := fileSources([]string{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if len(srcs) != 2 {
		t.Fatalf("got %d sources", len(srcs))
	}
	md := renderMarkdown(srcs)
	for _, want := range []string{"ChitChatWorkers1", "NosyWorkers1", "0.194", "0.41"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
	// Two columns + source column on every data row.
	for _, line := range strings.Split(md, "\n") {
		if strings.HasPrefix(line, "| ") && strings.Count(line, "|") != 4 {
			t.Fatalf("ragged table row: %q", line)
		}
	}
}

func TestGate(t *testing.T) {
	baseline := map[string]entry{
		"BenchmarkChitChatWorkers1": {SecPerOp: 0.20},
		"BenchmarkNosyWorkers1":     {SecPerOp: 0.40},
		"BenchmarkShardSolve1M":     {SecPerOp: 5.0},
		"BenchmarkUnpinned":         {SecPerOp: 1.0},
	}

	// Within threshold (and faster) passes; unpinned regressions are
	// ignored.
	current := map[string]entry{
		"BenchmarkChitChatWorkers1": {SecPerOp: 0.22}, // +10%
		"BenchmarkNosyWorkers1":     {SecPerOp: 0.30}, // faster
		"BenchmarkShardSolve1M":     {SecPerOp: 5.0},  // unchanged
		"BenchmarkUnpinned":         {SecPerOp: 9.0},  // 9x, but not pinned
	}
	if v := gate(baseline, current, gatedBenchmarks, 15); len(v) != 0 {
		t.Fatalf("clean run flagged: %+v", v)
	}

	// One pinned benchmark over threshold is reported with its slowdown.
	current["BenchmarkShardSolve1M"] = entry{SecPerOp: 6.0} // +20%
	v := gate(baseline, current, gatedBenchmarks, 15)
	if len(v) != 1 || v[0].Name != "BenchmarkShardSolve1M" {
		t.Fatalf("violations = %+v, want the shard bench alone", v)
	}
	if v[0].Pct < 19.9 || v[0].Pct > 20.1 {
		t.Fatalf("reported slowdown %v%%, want ~20%%", v[0].Pct)
	}

	// A tighter threshold catches the +10% too, ordered as pinned.
	if v := gate(baseline, current, gatedBenchmarks, 5); len(v) != 2 ||
		v[0].Name != "BenchmarkChitChatWorkers1" || v[1].Name != "BenchmarkShardSolve1M" {
		t.Fatalf("violations at 5%% = %+v", v)
	}

	// Benchmarks missing from either side or with zero baselines are
	// skipped, never flagged.
	if v := gate(map[string]entry{"BenchmarkNosyWorkers1": {}}, current, gatedBenchmarks, 15); len(v) != 0 {
		t.Fatalf("degenerate baseline flagged: %+v", v)
	}
	if v := gate(baseline, map[string]entry{}, gatedBenchmarks, 15); len(v) != 0 {
		t.Fatalf("absent current numbers flagged: %+v", v)
	}
}

func TestFileSourcesBadJSON(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("not json"), 0o644)
	if _, err := fileSources([]string{bad}); err == nil {
		t.Fatal("expected error for malformed input")
	}
}
