// Schedule patching: splice a re-solved region back into a live schedule
// while preserving the Theorem-1 validity invariant. This is the merge
// half of localized re-optimization — a churned region is extracted
// (graph.Induced), re-solved in isolation, and the patch replaces the
// region's assignments in place.
//
// Validity argument (see DESIGN.md §7): the patch is a valid schedule
// over the induced subgraph, and an induced subgraph contains every
// support edge of its internal hubs (hub and both endpoints are region
// nodes), so patched region edges are self-consistently served. The only
// edges that can break are OUTSIDE the region: an exterior covered edge
// whose hub support crosses into the region may lose the support's
// push/pull flag when the patch reassigns it. RepairCoverage restores
// exactly those flags — it only ever adds push/pull marks, so it cannot
// invalidate anything else, and the repaired schedule is valid.

package core

import (
	"fmt"

	"piggyback/internal/graph"
	"piggyback/internal/workload"
)

// FinalizeEdges serves every still-unscheduled edge in the given set
// directly, choosing the cheaper of push and pull — Finalize restricted
// to an edge subset, for localized re-solves that must not touch edges
// outside their region.
func (s *Schedule) FinalizeEdges(r *workload.Rates, edges []graph.EdgeID) {
	for _, e := range edges {
		if s.flags[e] == 0 {
			u := s.g.EdgeSource(e)
			v := s.g.EdgeTarget(e)
			if r.Prod[u] <= r.Cons[v] {
				s.flags[e] |= FlagPush
			} else {
				s.flags[e] |= FlagPull
			}
		}
	}
}

// ClearEdge removes every assignment from edge e (push, pull, coverage).
func (s *Schedule) ClearEdge(e graph.EdgeID) {
	s.flags[e] = 0
	s.hub[e] = -1
}

// ApplyPatch splices patch — a valid schedule over sub.G, an induced
// subgraph of s's graph — into s: every region-internal edge takes the
// patch's assignment (hub ids remapped to parent ids), then
// RepairCoverage restores any exterior coverage whose support flags the
// patch removed. The splice is atomic from the caller's perspective: s
// is mutated only through this call, and on return it is valid whenever
// it was valid before and patch is valid over sub.G.
//
// It returns the number of boundary repairs performed.
func ApplyPatch(s *Schedule, sub *graph.Subgraph, patch *Schedule, r *workload.Rates) (int, error) {
	if err := Splice(s, sub, patch); err != nil {
		return 0, err
	}
	return RepairCoverage(s, r), nil
}

// Splice is ApplyPatch without the repair pass: it writes patch's
// assignments into s and leaves any exterior coverage whose support the
// patch cleared unrepaired. Callers splicing SEVERAL patches — the
// sharded solver merging node-disjoint per-shard schedules — use it to
// pay RepairCoverage's full-graph sweep once after the last splice
// instead of once per patch. A schedule holding un-repaired splices is
// not necessarily valid; it must not escape before RepairCoverage runs.
func Splice(s *Schedule, sub *graph.Subgraph, patch *Schedule) error {
	if patch.Graph() != sub.G {
		return fmt.Errorf("core: patch schedule is not over the subgraph")
	}
	// Resolve the whole sub → parent edge mapping BEFORE writing
	// anything: a stale subgraph (an edge since removed from s's graph)
	// must fail without leaving s half-spliced.
	gids := make([]graph.EdgeID, sub.G.NumEdges())
	var err error
	sub.G.Edges(func(pe graph.EdgeID, lu, lv graph.NodeID) bool {
		gu, gv := sub.Global[lu], sub.Global[lv]
		ge, ok := s.g.EdgeID(gu, gv)
		if !ok {
			err = fmt.Errorf("core: patch edge %d→%d missing from parent graph", gu, gv)
			return false
		}
		gids[pe] = ge
		return true
	})
	if err != nil {
		return err
	}
	sub.G.Edges(func(pe graph.EdgeID, lu, lv graph.NodeID) bool {
		ge := gids[pe]
		s.ClearEdge(ge)
		if patch.IsPush(pe) {
			s.SetPush(ge)
		}
		if patch.IsPull(pe) {
			s.SetPull(ge)
		}
		if patch.IsCovered(pe) {
			s.SetCovered(ge, sub.Global[patch.Hub(pe)])
		}
		return true
	})
	return nil
}

// RepairCoverage restores the validity of covered edges whose hub
// support flags have been cleared (by a region re-solve whose boundary
// crossed the supports): the missing push/pull marks are re-added. A
// covered edge whose support EDGE no longer exists in the graph cannot
// be repaired that way and falls back to direct service with the
// cheaper of push and pull. Repairs only add flags, so a repair never
// invalidates another edge. Returns the number of edges touched.
func RepairCoverage(s *Schedule, r *workload.Rates) int {
	repairs := 0
	s.g.Edges(func(e graph.EdgeID, u, v graph.NodeID) bool {
		if !s.IsCovered(e) {
			return true
		}
		w := s.hub[e]
		up, ok1 := s.g.EdgeID(u, w)
		down, ok2 := s.g.EdgeID(w, v)
		if !ok1 || !ok2 {
			s.ClearCovered(e)
			if r.Prod[u] <= r.Cons[v] {
				s.SetPush(e)
			} else {
				s.SetPull(e)
			}
			repairs++
			return true
		}
		fixed := false
		if !s.IsPush(up) {
			s.SetPush(up)
			fixed = true
		}
		if !s.IsPull(down) {
			s.SetPull(down)
			fixed = true
		}
		if fixed {
			repairs++
		}
		return true
	})
	return repairs
}
