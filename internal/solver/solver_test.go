package solver

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"piggyback/internal/baseline"
	"piggyback/internal/chitchat"
	"piggyback/internal/core"
	"piggyback/internal/densest"
	"piggyback/internal/graph"
	"piggyback/internal/graphgen"
	"piggyback/internal/nosy"
	"piggyback/internal/nosymr"
	"piggyback/internal/schedio"
	"piggyback/internal/workload"
)

// quickProblem builds the Quick-scale Flickr-like reference instance.
func quickProblem(t testing.TB, nodes int) (*graph.Graph, *workload.Rates) {
	t.Helper()
	g := graphgen.Social(graphgen.FlickrLike(nodes, 1))
	return g, workload.LogDegree(g, workload.DefaultReadWriteRatio)
}

// scheduleBytes serializes a schedule for byte-identity comparison.
func scheduleBytes(t *testing.T, s *core.Schedule) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := schedio.Write(&buf, s); err != nil {
		t.Fatalf("serializing schedule: %v", err)
	}
	return buf.Bytes()
}

func TestRegistryHasBuiltins(t *testing.T) {
	names := Default.Names()
	want := []string{Auto, ChitChat, Hybrid, Nosy, NosyMapReduce, Portfolio, PullAll, PushAll}
	if len(names) < len(want) {
		t.Fatalf("Names() = %v, want at least %v", names, want)
	}
	for _, w := range want {
		if _, err := Default.Get(w); err != nil {
			t.Errorf("Get(%q): %v", w, err)
		}
	}
	if _, err := Default.Get("no-such-algorithm"); !errors.Is(err, ErrUnknownSolver) {
		t.Errorf("Get(unknown) = %v, want ErrUnknownSolver", err)
	}
}

func TestRegisterMisusePanics(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(Hybrid, func(Options) Solver { return baselineSolver{Hybrid} }, Meta{})
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"empty name", func() { reg.MustRegister("", func(Options) Solver { return baselineSolver{Hybrid} }, Meta{}) }},
		{"nil factory", func() { reg.MustRegister("x", nil, Meta{}) }},
		{"duplicate", func() { reg.MustRegister(Hybrid, func(Options) Solver { return baselineSolver{Hybrid} }, Meta{}) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MustRegister %s: expected panic", tc.name)
				}
			}()
			tc.fn()
		}()
	}
}

// TestSolversMatchPreRedesign pins the acceptance criterion: every
// registered solver produces a byte-identical schedule to its
// pre-redesign facade counterpart on the reference graph.
func TestSolversMatchPreRedesign(t *testing.T) {
	nodes := 400
	if testing.Short() {
		nodes = 250
	}
	g, r := quickProblem(t, nodes)
	legacy := map[string]func() *core.Schedule{
		ChitChat:      func() *core.Schedule { return chitchat.Solve(g, r, chitchat.Config{}) },
		Nosy:          func() *core.Schedule { return nosy.Solve(g, r, nosy.Config{}).Schedule },
		NosyMapReduce: func() *core.Schedule { return nosymr.Solve(g, r, nosy.Config{}).Schedule },
		Hybrid:        func() *core.Schedule { return baseline.Hybrid(g, r) },
		PushAll:       func() *core.Schedule { return baseline.PushAll(g) },
		PullAll:       func() *core.Schedule { return baseline.PullAll(g) },
	}
	for name, old := range legacy {
		t.Run(name, func(t *testing.T) {
			sv, err := Default.New(name, Options{})
			if err != nil {
				t.Fatal(err)
			}
			res, err := sv.Solve(context.Background(), Problem{Graph: g, Rates: r})
			if err != nil {
				t.Fatalf("Solve: %v", err)
			}
			if err := res.Schedule.Validate(); err != nil {
				t.Fatalf("invalid schedule: %v", err)
			}
			if got, want := scheduleBytes(t, res.Schedule), scheduleBytes(t, old()); !bytes.Equal(got, want) {
				t.Errorf("schedule differs from pre-redesign %s", name)
			}
			if res.Report.Solver != name {
				t.Errorf("Report.Solver = %q, want %q", res.Report.Solver, name)
			}
			if res.Report.Canceled {
				t.Errorf("uncanceled solve reported Canceled")
			}
			if want := res.Schedule.Cost(r); res.Report.Cost != want {
				t.Errorf("Report.Cost = %v, want %v", res.Report.Cost, want)
			}
		})
	}
}

// TestCancelMidSolve exercises the anytime contract on the iterative
// solvers: cancel from inside the progress stream, then assert prompt
// return (bounded by one iteration past the cancel), a Validate()-clean
// schedule, and errors.Is(err, context.Canceled).
func TestCancelMidSolve(t *testing.T) {
	g, r := quickProblem(t, 250)
	t.Run("nosy", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		cancelAt := 1 // cancel as the second round's stats stream
		var events int
		sv := NewNosy(nosy.Config{})
		withProgress(sv, func(ev ProgressEvent) {
			events++
			if ev.Iteration == cancelAt {
				cancel()
			}
		})
		res, err := sv.Solve(ctx, Problem{Graph: g, Rates: r})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if res == nil {
			t.Fatal("canceled solve returned nil result")
		}
		if err := res.Schedule.Validate(); err != nil {
			t.Errorf("best-so-far schedule invalid: %v", err)
		}
		if !res.Report.Canceled {
			t.Errorf("Report.Canceled = false on canceled solve")
		}
		// Cancellation is checked at the round boundary: the round whose
		// progress event canceled is the last one that runs.
		if got := res.Report.Iterations; got != cancelAt+1 {
			t.Errorf("ran %d iterations, want exactly %d (cancel+1)", got, cancelAt+1)
		}
		if events != cancelAt+1 {
			t.Errorf("saw %d progress events, want %d", events, cancelAt+1)
		}
		// The anytime schedule covers fewer (or equal) edges than the
		// converged run but must not be the trivial hybrid: round 0
		// committed hubs before the cancel.
		if res.Schedule.Counts().Covered == 0 {
			t.Errorf("canceled schedule has no hub coverage; expected round-0 commits retained")
		}
	})
	t.Run("chitchat", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		const cancelAt = 25 // commits before canceling
		sv := NewChitChat(chitchat.Config{})
		withProgress(sv, func(ev ProgressEvent) {
			if ev.Iteration == cancelAt {
				cancel()
			}
		})
		res, err := sv.Solve(ctx, Problem{Graph: g, Rates: r})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if err := res.Schedule.Validate(); err != nil {
			t.Errorf("best-so-far schedule invalid: %v", err)
		}
		// The commit whose event canceled is the last: the greedy loop
		// checks the context before every subsequent commit.
		if got := res.Report.Iterations; got != cancelAt {
			t.Errorf("committed %d times, want exactly %d", got, cancelAt)
		}
		full := chitchat.Solve(g, r, chitchat.Config{})
		if got, want := res.Schedule.Cost(r), full.Cost(r); got < want {
			t.Errorf("truncated greedy cost %v beats converged %v; impossible", got, want)
		}
	})
	t.Run("nosymr", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // already done before the solve starts
		sv := NewNosyMapReduce(nosy.Config{})
		res, err := sv.Solve(ctx, Problem{Graph: g, Rates: r})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if err := res.Schedule.Validate(); err != nil {
			t.Errorf("zero-iteration schedule invalid: %v", err)
		}
		if res.Report.Iterations != 0 {
			t.Errorf("pre-canceled solve ran %d iterations", res.Report.Iterations)
		}
		// Zero iterations + finalize = the hybrid baseline exactly.
		if got, want := scheduleBytes(t, res.Schedule), scheduleBytes(t, baseline.Hybrid(g, r)); !bytes.Equal(got, want) {
			t.Errorf("pre-canceled schedule is not the hybrid finalization")
		}
	})
}

// TestWorkerInvarianceUnderCancel pins that the worker-count schedule
// invariance survives the new API even when the solve is canceled at a
// deterministic iteration: every worker count stops at the same round
// with the same committed state.
func TestWorkerInvarianceUnderCancel(t *testing.T) {
	g, r := quickProblem(t, 250)
	run := func(workers int) []byte {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		sv := NewNosy(nosy.Config{Workers: workers})
		withProgress(sv, func(ev ProgressEvent) {
			if ev.Iteration == 1 {
				cancel()
			}
		})
		res, err := sv.Solve(ctx, Problem{Graph: g, Rates: r})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if err := res.Schedule.Validate(); err != nil {
			t.Fatalf("workers=%d: invalid schedule: %v", workers, err)
		}
		return scheduleBytes(t, res.Schedule)
	}
	want := run(1)
	for _, w := range []int{2, 4} {
		if got := run(w); !bytes.Equal(got, want) {
			t.Errorf("canceled schedule differs between workers=1 and workers=%d", w)
		}
	}
}

// TestRegionSolve pins the localized re-solve path through the Solver
// interface against the pre-redesign entry points.
func TestRegionSolve(t *testing.T) {
	g, r := quickProblem(t, 250)
	base := chitchat.Solve(g, r, chitchat.Config{})
	seed := graph.NodeID(g.NumNodes() / 2)
	nodes := graph.KHop(g, []graph.NodeID{seed}, 2, 60)
	region := graph.InducedEdgeIDs(g, nodes)
	if len(region) == 0 {
		t.Fatal("empty test region")
	}
	t.Run("nosy", func(t *testing.T) {
		sv := NewNosy(nosy.Config{})
		res, err := sv.Solve(context.Background(), Problem{Graph: g, Rates: r, Base: base, Region: region})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Schedule.Validate(); err != nil {
			t.Fatalf("patched schedule invalid: %v", err)
		}
		want := nosy.SolveRestricted(g, r, nosy.Config{}, base, region)
		if !bytes.Equal(scheduleBytes(t, res.Schedule), scheduleBytes(t, want.Schedule)) {
			t.Errorf("region schedule differs from nosy.SolveRestricted")
		}
		if res.Report.BoundaryRepairs != want.BoundaryRepairs {
			t.Errorf("BoundaryRepairs = %d, want %d", res.Report.BoundaryRepairs, want.BoundaryRepairs)
		}
	})
	t.Run("chitchat", func(t *testing.T) {
		sv := NewChitChat(chitchat.Config{})
		res, err := sv.Solve(context.Background(), Problem{Graph: g, Rates: r, Base: base, Region: region})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Schedule.Validate(); err != nil {
			t.Fatalf("patched schedule invalid: %v", err)
		}
		// Reference: the manual extract/solve/splice pipeline over the
		// region's endpoint nodes (== the induced node set for an
		// induced region).
		sub := graph.Induced(g, endpointNodes(g, region))
		patch := chitchat.SolveInduced(sub, r, chitchat.Config{})
		want := base.Clone()
		if _, err := core.ApplyPatch(want, sub, patch, r); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(scheduleBytes(t, res.Schedule), scheduleBytes(t, want)) {
			t.Errorf("region schedule differs from manual extract+solve+splice")
		}
	})
	t.Run("not-induced", func(t *testing.T) {
		// Drop one edge whose endpoints stay in the region through other
		// edges: the induced set of the endpoints then strictly contains
		// the region, which the subgraph re-solver must reject.
		partial := findNonInducedSubset(g, region)
		if partial == nil {
			t.Skip("region has no droppable edge")
		}
		sv := NewChitChat(chitchat.Config{})
		_, err := sv.Solve(context.Background(), Problem{Graph: g, Rates: r, Base: base, Region: partial})
		if !errors.Is(err, ErrRegionNotInduced) {
			t.Errorf("err = %v, want ErrRegionNotInduced", err)
		}
	})
}

// findNonInducedSubset drops one region edge both of whose endpoints
// appear in other region edges, producing a non-induced region.
func findNonInducedSubset(g *graph.Graph, region []graph.EdgeID) []graph.EdgeID {
	degree := map[graph.NodeID]int{}
	for _, e := range region {
		degree[g.EdgeSource(e)]++
		degree[g.EdgeTarget(e)]++
	}
	for i, e := range region {
		if degree[g.EdgeSource(e)] > 1 && degree[g.EdgeTarget(e)] > 1 {
			out := append([]graph.EdgeID(nil), region[:i]...)
			return append(out, region[i+1:]...)
		}
	}
	return nil
}

func TestProblemValidation(t *testing.T) {
	g, r := quickProblem(t, 50)
	base := baseline.Hybrid(g, r)
	region := []graph.EdgeID{0}
	for _, tc := range []struct {
		name string
		sv   Solver
		p    Problem
		want error
	}{
		{"nil graph", NewNosy(nosy.Config{}), Problem{Rates: r}, ErrNoGraph},
		{"nil rates", NewNosy(nosy.Config{}), Problem{Graph: g}, ErrNoGraph},
		{"region without base", NewNosy(nosy.Config{}), Problem{Graph: g, Rates: r, Region: region}, ErrNoBase},
		{"nosymr region", NewNosyMapReduce(nosy.Config{}), Problem{Graph: g, Rates: r, Base: base, Region: region}, ErrRegionUnsupported},
		{"baseline region", baselineSolver{Hybrid}, Problem{Graph: g, Rates: r, Base: base, Region: region}, ErrRegionUnsupported},
	} {
		res, err := tc.sv.Solve(context.Background(), tc.p)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
		if res != nil {
			t.Errorf("%s: result should be nil on a rejected problem", tc.name)
		}
	}
}

// TestGuardConvertsTypedPanics checks the panic→error boundary: typed
// library panics become returned errors, everything else propagates.
func TestGuardConvertsTypedPanics(t *testing.T) {
	surface := func(p any) (res *Result, err error) {
		defer guard("test", &res, &err)
		res = &Result{}
		panic(p)
	}
	res, err := surface(fmt.Errorf("wrapped: %w", densest.ErrInstanceTooLarge))
	if !errors.Is(err, densest.ErrInstanceTooLarge) || res != nil {
		t.Errorf("instance-too-large panic: res=%v err=%v", res, err)
	}
	res, err = surface(fmt.Errorf("wrapped: %w", graph.ErrEdgeOutOfRange))
	if !errors.Is(err, graph.ErrEdgeOutOfRange) || res != nil {
		t.Errorf("edge-out-of-range panic: res=%v err=%v", res, err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("unrelated panic was swallowed")
			}
		}()
		surface("unrelated")
	}()
}

// TestBuilderTypedError pins the graph-builder error conversion the
// guard relies on: AddEdge panics with an error wrapping
// ErrEdgeOutOfRange, TryAddEdge returns it.
func TestBuilderTypedError(t *testing.T) {
	b := graph.NewBuilder(3)
	if err := b.TryAddEdge(0, 5); !errors.Is(err, graph.ErrEdgeOutOfRange) {
		t.Errorf("TryAddEdge = %v, want ErrEdgeOutOfRange", err)
	}
	if err := b.TryAddEdge(0, 1); err != nil {
		t.Errorf("TryAddEdge in range: %v", err)
	}
	defer func() {
		p := recover()
		e, ok := p.(error)
		if !ok || !errors.Is(e, graph.ErrEdgeOutOfRange) {
			t.Errorf("AddEdge panic = %v, want error wrapping ErrEdgeOutOfRange", p)
		}
	}()
	b.AddEdge(-1, 0)
}

// TestProgressStream sanity-checks the event contents for both
// streaming shapes.
func TestProgressStream(t *testing.T) {
	g, r := quickProblem(t, 100)
	var nosyEvents []ProgressEvent
	sv := NewNosy(nosy.Config{TraceCosts: true})
	withProgress(sv, func(ev ProgressEvent) { nosyEvents = append(nosyEvents, ev) })
	res, err := sv.Solve(context.Background(), Problem{Graph: g, Rates: r})
	if err != nil {
		t.Fatal(err)
	}
	if len(nosyEvents) != res.Report.Iterations {
		t.Fatalf("%d events for %d iterations", len(nosyEvents), res.Report.Iterations)
	}
	for i, ev := range nosyEvents {
		if ev.Iteration != i {
			t.Errorf("event %d has Iteration %d", i, ev.Iteration)
		}
		if ev.Solver != Nosy {
			t.Errorf("event solver = %q", ev.Solver)
		}
		if ev.Dirty == 0 {
			t.Errorf("event %d reports empty dirty set", i)
		}
		if ev.Cost != ev.Cost { // NaN despite TraceCosts
			t.Errorf("event %d has NaN cost under TraceCosts", i)
		}
	}
	var last ProgressEvent
	cc := NewChitChat(chitchat.Config{})
	withProgress(cc, func(ev ProgressEvent) { last = ev })
	if _, err := cc.Solve(context.Background(), Problem{Graph: g, Rates: r}); err != nil {
		t.Fatal(err)
	}
	if last.Remaining != 0 {
		t.Errorf("final chitchat event leaves %d remaining", last.Remaining)
	}
	if last.Covered != g.NumEdges() {
		t.Errorf("final chitchat event covered %d of %d edges", last.Covered, g.NumEdges())
	}
}

// TestSupportsRegions pins the capability discovery consumers like the
// online daemon use to fail fast on misconfiguration.
func TestSupportsRegions(t *testing.T) {
	for name, want := range map[string]bool{
		ChitChat:      true,
		Nosy:          true,
		NosyMapReduce: false,
		Hybrid:        false,
		PushAll:       false,
		PullAll:       false,
	} {
		sv, err := Default.New(name, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got := SupportsRegions(sv); got != want {
			t.Errorf("SupportsRegions(%s) = %v, want %v", name, got, want)
		}
	}
}
