package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"piggyback/internal/graph"
	"piggyback/internal/graphgen"
	"piggyback/internal/workload"
)

// chainGraph: 0→1, 0→2, 0→3, 1→2, 2→3. Producer 0 can reach 2 and 3
// through a push chain 0→1 with propagation.
func chainGraph() *graph.Graph {
	return graph.FromEdges(4, []graph.Edge{
		{From: 0, To: 1}, {From: 0, To: 2}, {From: 0, To: 3},
		{From: 1, To: 2}, {From: 2, To: 3},
	})
}

func TestActivePropagationChain(t *testing.T) {
	g := chainGraph()
	a := NewActiveSchedule(g)
	e01, _ := g.EdgeID(0, 1)
	a.SetPush(e01)
	// Propagate 0's events from 1's view to 2 (2 subscribes to both 0 and 1).
	if err := a.AddPropagation(e01, 2); err != nil {
		t.Fatal(err)
	}
	// And from 2's view onward to 3 (3 subscribes to 0 and 2).
	e02, _ := g.EdgeID(0, 2)
	if err := a.AddPropagation(e02, 3); err != nil {
		t.Fatal(err)
	}
	reach := a.reachable(0)
	for _, v := range []graph.NodeID{1, 2, 3} {
		if !reach[v] {
			t.Fatalf("view %d not reached by active chain", v)
		}
	}
	// Remaining edges served directly so the whole schedule validates.
	e12, _ := g.EdgeID(1, 2)
	e23, _ := g.EdgeID(2, 3)
	a.SetPush(e12)
	a.SetPush(e23)
	if err := a.ValidateActive(); err != nil {
		t.Fatal(err)
	}
}

func TestAddPropagationRejectsNonSubscribers(t *testing.T) {
	g := chainGraph()
	a := NewActiveSchedule(g)
	e12, _ := g.EdgeID(1, 2)
	// 3 subscribes to 2 but not to 1 → propagating 1's events to 3 is junk.
	if err := a.AddPropagation(e12, 3); err == nil {
		t.Fatal("propagation to non-subscriber of producer should be rejected")
	}
	// 1 does not subscribe to 0's relay... 0→1 exists; target must also
	// subscribe to the relay: propagate on edge 0→3 to 1 (1 subscribes to
	// 0 but not to 3).
	e03, _ := g.EdgeID(0, 3)
	if err := a.AddPropagation(e03, 1); err == nil {
		t.Fatal("propagation to non-subscriber of relay should be rejected")
	}
}

func TestPassivizeCoversAndCostsNoMore(t *testing.T) {
	g := chainGraph()
	r := workload.LogDegree(g, 5)
	a := NewActiveSchedule(g)
	e01, _ := g.EdgeID(0, 1)
	e02, _ := g.EdgeID(0, 2)
	e12, _ := g.EdgeID(1, 2)
	e23, _ := g.EdgeID(2, 3)
	a.SetPush(e01)
	a.AddPropagation(e01, 2)
	a.AddPropagation(e02, 3)
	a.SetPush(e12)
	a.SetPush(e23)
	if err := a.ValidateActive(); err != nil {
		t.Fatal(err)
	}
	p := a.Passivize()
	if err := p.Validate(); err != nil {
		t.Fatalf("passivized schedule invalid: %v", err)
	}
	if p.Cost(r) > a.Cost(r)+1e-9 {
		t.Fatalf("Theorem 3 violated: passive cost %v > active cost %v", p.Cost(r), a.Cost(r))
	}
}

// Property: for random graphs with random active schedules (pushes plus
// random legal propagation entries), Passivize yields a schedule covering
// at least the same edges, at no greater cost (Theorem 3).
func TestQuickTheorem3(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		g := graphgen.ErdosRenyi(n, 5*n, seed)
		r := workload.LogDegree(g, 5)
		a := NewActiveSchedule(g)
		// Random pushes on ~half the edges.
		g.Edges(func(e graph.EdgeID, u, v graph.NodeID) bool {
			if rng.Float64() < 0.5 {
				a.SetPush(e)
			}
			return true
		})
		// Random propagation attempts; only legal ones stick.
		for i := 0; i < n; i++ {
			e := graph.EdgeID(rng.Intn(g.NumEdges()))
			v := graph.NodeID(rng.Intn(n))
			_ = a.AddPropagation(e, v) // error means skipped
		}
		p := a.Passivize()
		if p.Cost(r) > a.Cost(r)+1e-9 {
			return false
		}
		// Coverage: every edge whose target was actively reachable must now
		// be a direct push.
		ok := true
		g.Edges(func(e graph.EdgeID, u, v graph.NodeID) bool {
			if a.reachable(u)[v] && !p.IsPush(e) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
