// Package graphgen generates synthetic directed social graphs.
//
// The paper evaluates on proprietary crawls of Flickr (2.4M nodes, 71M
// edges, high reciprocity) and Twitter (83M nodes, 1.4B edges, low
// reciprocity). Those datasets are not redistributable, so this package is
// the substitution mandated by the reproduction: a preferential-attachment
// process with triadic closure that reproduces the two properties the
// paper's results depend on — power-law degree skew (hubs exist) and a
// high clustering coefficient (hubs have co-subscribed neighborhoods worth
// piggybacking through) — plus tunable reciprocity to differentiate the
// Flickr-like and Twitter-like presets.
//
// All generators are deterministic given the seed.
package graphgen

import (
	"math/rand"

	"piggyback/internal/graph"
)

// Config parameterizes the social-graph generator.
type Config struct {
	Nodes       int     // number of users
	AvgFollows  int     // average number of accounts a user follows
	TriadProb   float64 // probability a new follow closes a triangle
	Reciprocity float64 // probability a follow is reciprocated
	Seed        int64
}

// TwitterLike returns a preset mimicking the Twitter crawl shape: denser,
// low reciprocity (≈0.2), strong degree skew. n is the node count; the
// paper's graph has average degree ≈ 17.
func TwitterLike(n int, seed int64) Config {
	return Config{Nodes: n, AvgFollows: 17, TriadProb: 0.55, Reciprocity: 0.22, Seed: seed}
}

// FlickrLike returns a preset mimicking the Flickr crawl shape: sparser
// node-wise but higher average degree (≈ 29) and high reciprocity (≈0.6).
func FlickrLike(n int, seed int64) Config {
	return Config{Nodes: n, AvgFollows: 29, TriadProb: 0.45, Reciprocity: 0.62, Seed: seed}
}

// Social generates a directed social graph per cfg.
//
// Process: nodes arrive one at a time. Node v issues AvgFollows follow
// requests (binomially jittered). The first target is picked by
// preferential attachment on current follower counts (so early nodes
// become celebrities, giving the power-law in follower count); each
// subsequent target closes a triangle with probability TriadProb by
// following a followee of the previous target (this is what produces the
// high clustering coefficient). "v follows u" creates the edge u → v
// (v subscribes to u); with probability Reciprocity the reverse edge
// v → u is added too.
func Social(cfg Config) *graph.Graph {
	if cfg.Nodes < 2 {
		return graph.FromEdges(maxInt(cfg.Nodes, 0), nil)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Nodes
	b := graph.NewBuilder(n)

	// followers[u] = users following u; also the preferential-attachment
	// ballot box: each follow of u adds one ticket for u.
	followees := make([][]graph.NodeID, n) // followees[v] = accounts v follows
	tickets := make([]graph.NodeID, 0, n*cfg.AvgFollows)

	follow := func(v, u graph.NodeID) {
		if v == u {
			return
		}
		b.AddEdge(u, v) // u → v : v subscribes to u
		followees[v] = append(followees[v], u)
		tickets = append(tickets, u)
		if rng.Float64() < cfg.Reciprocity {
			b.AddEdge(v, u)
			followees[u] = append(followees[u], v)
			tickets = append(tickets, v)
		}
	}

	// Seed clique so preferential attachment has tickets to draw.
	seedSize := minInt(4, n)
	for i := 0; i < seedSize; i++ {
		for j := 0; j < seedSize; j++ {
			if i != j {
				follow(graph.NodeID(i), graph.NodeID(j))
			}
		}
	}

	for v := seedSize; v < n; v++ {
		k := jitter(rng, cfg.AvgFollows)
		var prev graph.NodeID = -1
		for f := 0; f < k; f++ {
			var target graph.NodeID = -1
			if prev >= 0 && cfg.TriadProb > 0 && rng.Float64() < cfg.TriadProb {
				// Triadic closure: follow someone prev follows.
				if cand := followees[prev]; len(cand) > 0 {
					target = cand[rng.Intn(len(cand))]
				}
			}
			if target < 0 {
				target = tickets[rng.Intn(len(tickets))]
			}
			if target == graph.NodeID(v) {
				continue
			}
			follow(graph.NodeID(v), target)
			prev = target
		}
	}
	return b.Build()
}

// FlickrLikeEdges returns the Flickr-like preset sized so the generated
// graph has approximately m edges — the entry point for the million-edge
// benchmarks (≈47 edges arrive per node: AvgFollows follows plus
// reciprocations). Pair it with StreamSocial; at these sizes the
// edge-list generator's intermediates are the dominant allocation.
func FlickrLikeEdges(m int, seed int64) Config {
	cfg := FlickrLike(2, seed)
	perNode := float64(cfg.AvgFollows) * (1 + cfg.Reciprocity)
	n := int(float64(m) / perNode)
	if n < 2 {
		n = 2
	}
	cfg.Nodes = n
	return cfg
}

// StreamSocial generates the same style of graph as Social with O(n)
// generator state, built for million-edge scale. Three substitutions keep
// the state small without changing the graph's character:
//
//   - Preferential attachment draws from a Fenwick tree over per-node
//     ticket counts (O(log n) per draw) instead of an O(m) ticket array.
//   - Triadic closure samples from a fixed-size reservoir of each node's
//     followees instead of full followee lists.
//   - The CSR is built by replaying the deterministic edge stream through
//     graph.NewStreamBuilder's two passes, so no edge-list intermediate
//     is ever materialized.
//
// Deterministic given cfg.Seed, like every generator here. The schedule
// of RNG draws differs from Social's, so StreamSocial(cfg) and
// Social(cfg) are distinct (same-shaped) graphs.
func StreamSocial(cfg Config) *graph.Graph {
	n := cfg.Nodes
	if n < 2 {
		return graph.FromEdges(maxInt(n, 0), nil)
	}
	sb := graph.NewStreamBuilder(n)
	streamSocialPass(cfg, sb.CountEdge)
	sb.BeginFill()
	streamSocialPass(cfg, sb.PlaceEdge)
	return sb.Build()
}

// reservoirSize bounds the per-node followee sample kept for triadic
// closure in StreamSocial.
const reservoirSize = 8

// streamSocialPass runs one full deterministic generation pass, emitting
// every edge u → v exactly once. All state is created inside the pass, so
// replaying it with the same cfg yields a byte-identical stream.
func streamSocialPass(cfg Config, emit func(u, v graph.NodeID)) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Nodes
	fen := newFenwick(n)
	// Flat per-node reservoirs: res[v*reservoirSize : ...] holds up to
	// resLen[v] followees of v; resSeen[v] counts all followees ever seen,
	// driving standard reservoir sampling.
	res := make([]graph.NodeID, n*reservoirSize)
	resLen := make([]uint8, n)
	resSeen := make([]int32, n)
	sawFollowee := func(v, u graph.NodeID) {
		resSeen[v]++
		if int(resLen[v]) < reservoirSize {
			res[int(v)*reservoirSize+int(resLen[v])] = u
			resLen[v]++
			return
		}
		if j := rng.Intn(int(resSeen[v])); j < reservoirSize {
			res[int(v)*reservoirSize+j] = u
		}
	}

	// Seed: a complete digraph on the first few nodes, giving preferential
	// attachment its first tickets. Emitted pair-by-pair without RNG so the
	// seed never produces duplicate edges (Social's reciprocity draws can,
	// relying on Builder dedup that a stream does not get).
	seedSize := minInt(4, n)
	for i := 0; i < seedSize; i++ {
		for j := 0; j < seedSize; j++ {
			if i == j {
				continue
			}
			// j → i: node i follows (subscribes to) node j.
			emit(graph.NodeID(j), graph.NodeID(i))
			fen.add(j, 1)
			sawFollowee(graph.NodeID(i), graph.NodeID(j))
		}
	}

	targets := make([]graph.NodeID, 0, cfg.AvgFollows*2)
	for v := seedSize; v < n; v++ {
		vid := graph.NodeID(v)
		k := jitter(rng, cfg.AvgFollows)
		targets = targets[:0]
		var prev graph.NodeID = -1
		for f := 0; f < k; f++ {
			var target graph.NodeID = -1
			if prev >= 0 && cfg.TriadProb > 0 && rng.Float64() < cfg.TriadProb {
				if l := int(resLen[prev]); l > 0 {
					target = res[int(prev)*reservoirSize+rng.Intn(l)]
				}
			}
			if target < 0 {
				target = graph.NodeID(fen.find(rng.Int63n(fen.total)))
			}
			if target == vid || contains(targets, target) {
				continue
			}
			targets = append(targets, target)
			emit(target, vid)
			fen.add(int(target), 1)
			sawFollowee(vid, target)
			if rng.Float64() < cfg.Reciprocity {
				emit(vid, target)
				fen.add(v, 1)
				sawFollowee(target, vid)
			}
			prev = target
		}
	}
}

func contains(s []graph.NodeID, x graph.NodeID) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

// fenwick is a binary indexed tree over per-node ticket counts supporting
// O(log n) point updates and weighted sampling — the O(n)-state stand-in
// for the ticket array.
type fenwick struct {
	tree  []int64 // 1-indexed partial sums
	total int64
	log   int // largest power of two ≤ len(tree)-1
}

func newFenwick(n int) *fenwick {
	f := &fenwick{tree: make([]int64, n+1), log: 1}
	for f.log*2 <= n {
		f.log *= 2
	}
	return f
}

func (f *fenwick) add(i int, d int64) {
	f.total += d
	for i++; i < len(f.tree); i += i & (-i) {
		f.tree[i] += d
	}
}

// find returns the smallest node id whose prefix sum exceeds r, i.e. the
// node owning ticket r in 0 ≤ r < total.
func (f *fenwick) find(r int64) int {
	pos := 0
	for pw := f.log; pw > 0; pw >>= 1 {
		if next := pos + pw; next < len(f.tree) && f.tree[next] <= r {
			pos = next
			r -= f.tree[next]
		}
	}
	return pos
}

// jitter returns a value around avg: avg ± up to 50%, at least 1.
func jitter(rng *rand.Rand, avg int) int {
	if avg <= 1 {
		return 1
	}
	span := avg / 2
	k := avg - span + rng.Intn(2*span+1)
	if k < 1 {
		k = 1
	}
	return k
}

// ErdosRenyi generates a uniform random directed graph with n nodes and
// approximately m edges (duplicates are dropped by the builder).
func ErdosRenyi(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		b.AddEdge(u, v)
	}
	return b.Build()
}

// ZipfConfiguration generates a directed graph whose out-degrees follow a
// Zipf(s) distribution with the given maximum, wiring targets uniformly
// (a configuration-model-style null graph with degree skew but no
// clustering — useful as an ablation against Social).
func ZipfConfiguration(n int, s float64, maxDeg int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	if maxDeg < 1 {
		maxDeg = 1
	}
	z := rand.NewZipf(rng, s, 1, uint64(maxDeg-1))
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		d := int(z.Uint64()) + 1
		for i := 0; i < d; i++ {
			v := graph.NodeID(rng.Intn(n))
			b.AddEdge(graph.NodeID(u), v)
		}
	}
	return b.Build()
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
