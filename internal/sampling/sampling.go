// Package sampling extracts subgraph samples from a large social graph.
//
// Section 4.4 of the paper compares CHITCHAT and PARALLELNOSY on 5M-edge
// samples of the Twitter and Flickr graphs, drawn with two methods that
// preserve different properties: random-walk sampling (preserves
// clustering ratios, may prune hub edges) and breadth-first sampling
// (preserves the degree of the first sampled nodes, keeping hubs intact).
package sampling

import (
	"math/rand"
	"sort"

	"piggyback/internal/graph"
)

// Result is a sampled subgraph plus the mapping back to original node ids.
type Result struct {
	Graph    *graph.Graph
	Original []graph.NodeID // Original[i] = id in the source graph of node i
}

// RandomWalk samples nodes by a random walk with restarts on the
// undirected projection of g until the subgraph induced by the visited
// nodes has at least targetEdges edges (or the whole graph is visited),
// then returns that induced subgraph. restartProb 0.15 follows
// Leskovec–Faloutsos.
func RandomWalk(g *graph.Graph, targetEdges int, seed int64) Result {
	rng := rand.New(rand.NewSource(seed))
	n := g.NumNodes()
	if n == 0 {
		return Result{Graph: graph.FromEdges(0, nil)}
	}
	const restartProb = 0.15
	visited := make(map[graph.NodeID]bool, targetEdges/4+16)
	var order []graph.NodeID
	edgeCount := 0
	countNew := func(v graph.NodeID) {
		// Count induced edges incident to v against already-visited nodes.
		for _, u := range g.OutNeighbors(v) {
			if visited[u] {
				edgeCount++
			}
		}
		for _, u := range g.InNeighbors(v) {
			if visited[u] {
				edgeCount++
			}
		}
	}
	start := graph.NodeID(rng.Intn(n))
	cur := start
	stuck := 0
	for edgeCount < targetEdges && len(visited) < n {
		if !visited[cur] {
			countNew(cur)
			visited[cur] = true
			order = append(order, cur)
			stuck = 0
		} else {
			stuck++
		}
		if stuck > 10*n {
			// Disconnected remainder: restart from an unvisited node.
			cur = randomUnvisited(rng, n, visited)
			stuck = 0
			continue
		}
		if rng.Float64() < restartProb {
			cur = start
			continue
		}
		nbrs := undirected(g, cur)
		if len(nbrs) == 0 {
			cur = graph.NodeID(rng.Intn(n))
			continue
		}
		cur = nbrs[rng.Intn(len(nbrs))]
	}
	return induce(g, order)
}

// BFS samples nodes in breadth-first order from a random start (restarting
// from a random unvisited node when a component is exhausted) until the
// induced subgraph reaches targetEdges edges, then returns the induced
// subgraph. The earliest sampled nodes keep their full original degree,
// which preserves hubs.
func BFS(g *graph.Graph, targetEdges int, seed int64) Result {
	rng := rand.New(rand.NewSource(seed))
	n := g.NumNodes()
	if n == 0 {
		return Result{Graph: graph.FromEdges(0, nil)}
	}
	visited := make(map[graph.NodeID]bool, targetEdges/4+16)
	var order []graph.NodeID
	edgeCount := 0
	queue := []graph.NodeID{graph.NodeID(rng.Intn(n))}
	for edgeCount < targetEdges && len(visited) < n {
		if len(queue) == 0 {
			queue = append(queue, randomUnvisited(rng, n, visited))
		}
		v := queue[0]
		queue = queue[1:]
		if visited[v] {
			continue
		}
		for _, u := range g.OutNeighbors(v) {
			if visited[u] {
				edgeCount++
			}
		}
		for _, u := range g.InNeighbors(v) {
			if visited[u] {
				edgeCount++
			}
		}
		visited[v] = true
		order = append(order, v)
		for _, u := range undirected(g, v) {
			if !visited[u] {
				queue = append(queue, u)
			}
		}
	}
	return induce(g, order)
}

// WalkSeeds picks k well-connected, well-spread seed nodes by random-walk
// visit counts — the statistics-free structural placement primitive behind
// locality-aware partitioning (partition.Locality). A restarting random
// walk on the undirected projection visits hubs and their dense
// neighborhoods most often; seeds are then chosen greedily by descending
// visit count (ties toward the lower node id) while skipping direct
// neighbors of already-chosen seeds, so the k seeds land in k different
// dense regions rather than k corners of the same one. When the exclusion
// rule runs out of candidates it is relaxed, so exactly min(k, n) seeds
// are always returned. Deterministic given the seed.
func WalkSeeds(g *graph.Graph, k int, seed int64) []graph.NodeID {
	n := g.NumNodes()
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	const restartProb = 0.15
	steps := 64 * k
	if min := 4 * n; steps < min {
		steps = min
	}
	if max := 1 << 20; steps > max {
		steps = max
	}
	visits := make([]int32, n)
	start := graph.NodeID(rng.Intn(n))
	cur := start
	for i := 0; i < steps; i++ {
		visits[cur]++
		if rng.Float64() < restartProb {
			// Restart from a fresh uniform node (not the original start):
			// component hopping, so disconnected regions get visited too.
			cur = graph.NodeID(rng.Intn(n))
			continue
		}
		nbrs := undirected(g, cur)
		if len(nbrs) == 0 {
			cur = graph.NodeID(rng.Intn(n))
			continue
		}
		cur = nbrs[rng.Intn(len(nbrs))]
	}
	// Rank nodes by (visits desc, id asc) — fully deterministic.
	order := make([]graph.NodeID, n)
	for i := range order {
		order[i] = graph.NodeID(i)
	}
	sort.Slice(order, func(i, j int) bool {
		if visits[order[i]] != visits[order[j]] {
			return visits[order[i]] > visits[order[j]]
		}
		return order[i] < order[j]
	})
	seeds := make([]graph.NodeID, 0, k)
	taken := make(map[graph.NodeID]bool, 4*k)
	for relax := 0; relax < 2 && len(seeds) < k; relax++ {
		for _, v := range order {
			if len(seeds) == k {
				break
			}
			if taken[v] {
				continue
			}
			seeds = append(seeds, v)
			taken[v] = true
			if relax == 0 {
				// Exclude the seed's direct neighborhood on the first pass.
				for _, u := range g.OutNeighbors(v) {
					taken[u] = true
				}
				for _, u := range g.InNeighbors(v) {
					taken[u] = true
				}
			}
		}
		if relax == 0 && len(seeds) < k {
			// Relax: keep only the chosen seeds excluded so the second
			// pass may admit their neighbors.
			nt := make(map[graph.NodeID]bool, len(seeds))
			for _, s := range seeds {
				nt[s] = true
			}
			taken = nt
		}
	}
	return seeds
}

func randomUnvisited(rng *rand.Rand, n int, visited map[graph.NodeID]bool) graph.NodeID {
	for {
		v := graph.NodeID(rng.Intn(n))
		if !visited[v] {
			return v
		}
	}
}

// undirected returns out- then in-neighbors (with possible duplicates —
// acceptable for walk transition sampling; reciprocal contacts are simply
// twice as likely, matching edge-weighted transition).
func undirected(g *graph.Graph, v graph.NodeID) []graph.NodeID {
	out := g.OutNeighbors(v)
	in := g.InNeighbors(v)
	nbrs := make([]graph.NodeID, 0, len(out)+len(in))
	nbrs = append(nbrs, out...)
	nbrs = append(nbrs, in...)
	return nbrs
}

// induce builds the subgraph induced by the given nodes (in sample order),
// relabeling them 0..len-1.
func induce(g *graph.Graph, nodes []graph.NodeID) Result {
	index := make(map[graph.NodeID]int32, len(nodes))
	for i, v := range nodes {
		index[v] = int32(i)
	}
	b := graph.NewBuilder(len(nodes))
	for i, v := range nodes {
		for _, u := range g.OutNeighbors(v) {
			if j, ok := index[u]; ok {
				b.AddEdge(int32(i), j)
			}
		}
	}
	orig := make([]graph.NodeID, len(nodes))
	copy(orig, nodes)
	return Result{Graph: b.Build(), Original: orig}
}
