// Quickstart: generate a social graph, compute schedules with every
// algorithm, and compare their predicted throughput cost.
package main

import (
	"fmt"

	"piggyback"
)

func main() {
	// A Twitter-shaped graph with 2 000 users and the paper's reference
	// read/write ratio of 5.
	g := piggyback.TwitterLikeGraph(2000, 42)
	r := piggyback.LogDegreeRates(g, 5)
	fmt.Printf("graph: %d users, %d follow edges\n\n", g.NumNodes(), g.NumEdges())

	type entry struct {
		name string
		s    *piggyback.Schedule
	}
	pn, iters := piggyback.ParallelNosy(g, r, piggyback.NosyConfig{})
	schedules := []entry{
		{"push-all", piggyback.PushAll(g)},
		{"pull-all", piggyback.PullAll(g)},
		{"hybrid (FeedingFrenzy)", piggyback.Hybrid(g, r)},
		{"ParallelNosy", pn},
		{"ChitChat", piggyback.ChitChat(g, r, piggyback.ChitChatConfig{})},
	}

	hybridCost := piggyback.HybridCost(g, r)
	fmt.Printf("%-24s %12s %8s %8s %8s %8s\n",
		"schedule", "cost", "vs-FF", "pushes", "pulls", "hubs")
	for _, e := range schedules {
		if err := e.s.Validate(); err != nil {
			panic(err) // every schedule must satisfy bounded staleness
		}
		c := e.s.Counts()
		fmt.Printf("%-24s %12.1f %8.3f %8d %8d %8d\n",
			e.name, e.s.Cost(r), hybridCost/e.s.Cost(r), c.Push, c.Pull, c.Covered)
	}

	fmt.Printf("\nParallelNosy converged in %d iterations\n", len(iters))
}
