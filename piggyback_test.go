package piggyback

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestPublicAPIEndToEnd walks the README quick-start path through the
// facade: generate, schedule, compare, validate, serve.
func TestPublicAPIEndToEnd(t *testing.T) {
	g := TwitterLikeGraph(300, 42)
	r := LogDegreeRates(g, 5)

	hybrid := Hybrid(g, r)
	pn, iters := ParallelNosy(g, r, NosyConfig{})
	cc := ChitChat(g, r, ChitChatConfig{})

	for name, s := range map[string]*Schedule{"hybrid": hybrid, "pn": pn, "cc": cc} {
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if len(iters) == 0 {
		t.Fatal("no iterations reported")
	}
	if ImprovementRatio(pn, r) < 1 || ImprovementRatio(cc, r) < 1 {
		t.Fatal("piggybacking schedules should not lose to hybrid")
	}
	if hc := HybridCost(g, r); hc != hybrid.Cost(r) {
		t.Fatalf("HybridCost %v != hybrid schedule cost %v", hc, hybrid.Cost(r))
	}

	// Serve the schedule on the prototype.
	c, err := NewCluster(pn, ClusterOptions{Servers: 8, ServiceSpins: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res := MeasureThroughput(c, GenerateTrace(r, 500, 1), 2)
	if res.ReqPerSec <= 0 {
		t.Fatalf("throughput: %+v", res)
	}
}

func TestMapReduceVariantAgrees(t *testing.T) {
	g := FlickrLikeGraph(150, 7)
	r := LogDegreeRates(g, 5)
	a, _ := ParallelNosy(g, r, NosyConfig{})
	b, _ := ParallelNosyMapReduce(g, r, NosyConfig{})
	if a.Cost(r) != b.Cost(r) {
		t.Fatalf("implementations disagree: %v vs %v", a.Cost(r), b.Cost(r))
	}
}

func TestIncrementalMaintenanceAPI(t *testing.T) {
	g := TwitterLikeGraph(200, 3)
	r := LogDegreeRates(g, 5)
	pn, _ := ParallelNosy(g, r, NosyConfig{})
	m := NewMaintainer(pn, r)
	// Add a missing edge.
	for a := NodeID(0); int(a) < g.NumNodes(); a++ {
		if !g.HasEdge(a, (a+1)%NodeID(g.NumNodes())) && a+1 != NodeID(g.NumNodes()) {
			if err := m.AddEdge(a, a+1); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSamplingAndPartitionAPI(t *testing.T) {
	g := FlickrLikeGraph(300, 9)
	r := LogDegreeRates(g, 5)
	s := RandomWalkSample(g, 1000, 1)
	if s.Graph.NumEdges() < 1000 {
		t.Fatalf("sample too small: %d", s.Graph.NumEdges())
	}
	b := BFSSample(g, 1000, 1)
	if b.Graph.NumEdges() < 1000 {
		t.Fatalf("BFS sample too small: %d", b.Graph.NumEdges())
	}
	hy := Hybrid(g, r)
	a := HashPartition(g.NumNodes(), 16, 0)
	if PlacementCost(hy, r, a) <= 0 {
		t.Fatal("placement cost should be positive")
	}
	one := HashPartition(g.NumNodes(), 1, 0)
	if nt := NormalizedThroughput(hy, r, one); nt < 0.999 || nt > 1.001 {
		t.Fatalf("1-server normalized throughput = %v, want 1", nt)
	}
}

func TestBuilderAPI(t *testing.T) {
	b := NewGraphBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 2)
	g := b.Build()
	r := UniformRates(3, 1)
	s := ChitChat(g, r, ChitChatConfig{})
	if s.Cost(r) != 2 {
		t.Fatalf("figure-2 cost = %v, want 2 (hub)", s.Cost(r))
	}
	g2 := GraphFromEdges(3, []Edge{{From: 0, To: 1}})
	if g2.NumEdges() != 1 {
		t.Fatal("GraphFromEdges failed")
	}
}

// TestSolverFacade walks the Solver API through the facade: registry
// lookup, a full solve, cancellation with a valid best-so-far result,
// and the typed error re-exports.
func TestSolverFacade(t *testing.T) {
	g := FlickrLikeGraph(200, 5)
	r := LogDegreeRates(g, 5)

	if got := Solvers(); len(got) < 6 {
		t.Fatalf("Solvers() = %v, want the six built-ins", got)
	}
	if _, err := GetSolver("nosy"); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSolver("bogus", Options{}); !errors.Is(err, ErrUnknownSolver) {
		t.Fatalf("NewSolver(bogus) err = %v, want ErrUnknownSolver", err)
	}

	var events int
	sv, err := NewSolver("nosy", Options{Progress: func(ProgressEvent) { events++ }})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sv.Solve(context.Background(), Problem{Graph: g, Rates: r})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
	if events == 0 || res.Report.Iterations != events {
		t.Fatalf("progress events = %d, iterations = %d", events, res.Report.Iterations)
	}

	// Cancellation through the public surface.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err = sv.Solve(ctx, Problem{Graph: g, Rates: r})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || res.Schedule.Validate() != nil {
		t.Fatal("canceled solve must return a valid best-so-far schedule")
	}

	// The deprecated wrappers ride on the same machinery.
	ccSolver := NewChitChatSolver(ChitChatConfig{})
	ccRes, err := ccSolver.Solve(context.Background(), Problem{Graph: g, Rates: r})
	if err != nil {
		t.Fatal(err)
	}
	if legacy := ChitChat(g, r, ChitChatConfig{}); legacy.Cost(r) != ccRes.Report.Cost {
		t.Fatalf("facade wrapper cost %v != solver cost %v", legacy.Cost(r), ccRes.Report.Cost)
	}
}

// TestOnlineDaemonCtxAPI exercises the daemon's context surface: a
// canceled context fails fast, and a (generous) ResolveTimeout passes
// churn through unharmed.
func TestOnlineDaemonCtxAPI(t *testing.T) {
	g := FlickrLikeGraph(200, 5)
	r := LogDegreeRates(g, 5)
	sched := ChitChat(g, r, ChitChatConfig{})
	trace := GenerateChurn(g, r, 200, ChurnConfig{Seed: 2})

	regional, err := NewSolver("nosy", Options{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewOnlineDaemon(sched, r, OnlineConfig{
		Regional:       regional,
		ResolveTimeout: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range trace {
		if err := d.ApplyCtx(context.Background(), op); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := d.ApplyCtx(ctx, trace[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("ApplyCtx on canceled ctx = %v, want context.Canceled", err)
	}
}
