// Package solver defines the typed, cancellable, observable contract
// every scheduling algorithm in this repository implements — the API the
// cmd tools, the examples, and the online rescheduling daemon consume.
//
// The paper's algorithms (CHITCHAT §3.1, PARALLELNOSY §3.2 in both its
// shared-memory and MapReduce forms, the FEEDINGFRENZY hybrid baseline
// of Silberstein et al., and the localized restricted re-solves of the
// online subsystem) share one abstraction: each is "a thing that
// produces a valid Theorem-1 schedule for (graph, rates), possibly
// incrementally". Solver is that abstraction made explicit:
//
//	Solve(ctx context.Context, p Problem) (*Result, error)
//
// with three contracts layered on top of the batch facade it replaces:
//
//   - Cancellation (anytime semantics). The context is checked at
//     iteration granularity — a PARALLELNOSY round, a CHITCHAT greedy
//     commit — never per edge. On cancellation the solver stops within
//     one iteration, finalizes whatever it has (uncovered edges are
//     served directly via the hybrid rule), and returns the best-so-far
//     schedule TOGETHER with the context's error: Result is non-nil and
//     Result.Schedule passes Validate() even when err != nil, provided
//     errors.Is(err, context.Canceled) or context.DeadlineExceeded.
//   - Observability. Options.Progress streams ProgressEvents while the
//     solve runs (iteration stats, dirty-set size, running cost when
//     tracked), replacing the after-the-fact iteration slices.
//   - Typed failure. Library panics reachable from the public API are
//     recovered at the Solve boundary and surfaced as wrapped typed
//     errors (densest.ErrInstanceTooLarge, graph.ErrEdgeOutOfRange)
//     instead of crashing the serving process.
//
// Solvers are looked up by name in a Registry — a first-class value
// with per-entry Meta (region capability, cost class); the package-wide
// Default instance is what the cmd tools and the piggyback facade use,
// and Clone() derives independent registries for tests and embedders.
// Cross-cutting concerns (metrics, logging, panic recovery, determin-
// istic work budgets) wrap any Solver through Middleware and Chain.
// Two registered solvers are themselves built from the registry:
// "portfolio" races member solvers and keeps the cheapest schedule,
// and "auto" picks one solver per Problem from cheap structural
// features (DESIGN.md §10).
package solver

import (
	"context"
	"errors"

	"piggyback/internal/core"
	"piggyback/internal/graph"
	"piggyback/internal/workload"
)

// Problem is one solve request: a graph, its workload rates, and — for
// localized re-solves — a base schedule plus the region to re-optimize.
type Problem struct {
	// Graph is the social graph to schedule. Required.
	Graph *graph.Graph
	// Rates is the workload (per-user production/consumption). Required.
	Rates *workload.Rates
	// Base is a valid schedule over Graph that a localized re-solve
	// starts from. Required when Region is set, ignored otherwise.
	Base *core.Schedule
	// Region restricts the solve to the given edge ids of Graph: only
	// region edges may be reassigned; everything else keeps its Base
	// assignment (boundary coverage may gain push/pull support flags —
	// the splice-validity rule of DESIGN.md §7). Nil means solve the
	// whole graph. Solvers that cannot re-solve regions return
	// ErrRegionUnsupported.
	Region []graph.EdgeID
}

// Report summarizes a finished (or canceled) solve.
type Report struct {
	// Solver is the registered name of the algorithm that ran.
	Solver string
	// Iterations is how many iterations ran: PARALLELNOSY rounds,
	// CHITCHAT greedy commits, 1 for the one-shot baselines.
	Iterations int
	// FullCommits / PartialCommits / CoveredEdges aggregate the
	// PARALLELNOSY iteration stats (zero for other solvers).
	FullCommits    int
	PartialCommits int
	CoveredEdges   int
	// BoundaryRepairs counts exterior coverage supports restored after
	// a restricted solve (always 0 for full solves).
	BoundaryRepairs int
	// Cost is the finalized schedule's cost under the problem rates.
	// For localized re-solves (Problem.Region set) it is NaN: callers
	// there post-process the patch before pricing it, so they ask the
	// schedule directly instead of paying an extra O(m) pass here.
	Cost float64
	// Canceled records that the solve was cut short by its context and
	// the schedule is the best-so-far anytime result.
	Canceled bool
}

// Result is the solver output: a Theorem-1-valid schedule and the run
// report. On the cancellation path both Result and the error are
// returned.
type Result struct {
	Schedule *core.Schedule
	Report   Report
}

// ProgressEvent is one live progress sample streamed to
// Options.Progress while a solve runs.
type ProgressEvent struct {
	// Solver is the registered name of the algorithm reporting.
	Solver string
	// Iteration counts iterations so far: the 0-based round for
	// PARALLELNOSY, the commit count for CHITCHAT.
	Iteration int
	// Dirty is the dirty-set size this round (hub edges re-evaluated;
	// PARALLELNOSY only).
	Dirty int
	// Candidates / FullCommits / PartialCommits / CoveredEdges are the
	// round's PARALLELNOSY iteration stats.
	Candidates     int
	FullCommits    int
	PartialCommits int
	CoveredEdges   int
	// Covered / Remaining are the served and still-unserved ground-set
	// edge counts (CHITCHAT only).
	Covered   int
	Remaining int
	// Cost is the current finalized cost when the solver tracks it
	// (PARALLELNOSY under Options.TraceCosts); NaN when not computed.
	Cost float64
}

// Options tunes a solver constructed through the registry. The zero
// value uses every default. Knobs that do not apply to a given
// algorithm are ignored; algorithm-specific configuration beyond these
// is available through the typed constructors (NewChitChat, NewNosy,
// NewNosyMapReduce).
type Options struct {
	// Workers is the parallelism degree; 0 means GOMAXPROCS. Schedules
	// are byte-identical for every worker count.
	Workers int
	// MaxIterations bounds iterative solvers; 0 means run to
	// convergence.
	MaxIterations int
	// MaxCrossEdges is the per-hub cross-edge bound b of §4.2; 0 means
	// the algorithm default (100 000).
	MaxCrossEdges int
	// Shards is the partition count for the sharded solver; 0 means
	// auto-size from the edge count. Ignored by unsharded solvers.
	Shards int
	// InstanceBudget bounds the resident element mass of CHITCHAT's
	// hub-instance store; 0 means unlimited (fully resident). Schedules
	// are byte-identical for every budget — the knob trades peak memory
	// for instance rebuilds. Ignored by solvers without an instance
	// store.
	InstanceBudget int
	// TraceCosts makes PARALLELNOSY compute the finalized cost every
	// iteration (one O(m) pass + clone per round) so ProgressEvent.Cost
	// is live.
	TraceCosts bool
	// Progress, when non-nil, receives ProgressEvents on the solve
	// goroutine as the solve runs. It must return quickly and must not
	// mutate solver inputs.
	Progress func(ProgressEvent)
}

// Solver produces valid Theorem-1 schedules. Implementations are safe
// for reuse across calls but not necessarily for concurrent calls.
type Solver interface {
	// Name returns the solver's registered name.
	Name() string
	// Solve solves p under ctx. See the package comment for the
	// cancellation contract: a non-nil *Result accompanies a
	// context-cancellation error, and the schedule is valid either way.
	Solve(ctx context.Context, p Problem) (*Result, error)
}

// Sentinel errors returned by Solve.
var (
	// ErrNoGraph means Problem.Graph or Problem.Rates was nil.
	ErrNoGraph = errors.New("solver: problem has no graph or no rates")
	// ErrNoBase means Problem.Region was set without a Base schedule.
	ErrNoBase = errors.New("solver: region re-solve requires a base schedule")
	// ErrRegionUnsupported means the solver cannot do localized
	// re-solves (the MapReduce substrate and the baselines).
	ErrRegionUnsupported = errors.New("solver: algorithm does not support region re-solves")
	// ErrRegionNotInduced means the region edge set is not the full
	// induced edge set of its endpoint nodes, which the subgraph-
	// extraction re-solvers require (re-solving a partial induced set
	// would rewrite edges outside the region).
	ErrRegionNotInduced = errors.New("solver: region is not the induced edge set of its endpoints")
)

// RegionCapable is an optional interface a Solver implements to declare
// up front whether it handles Problem.Region — letting consumers that
// depend on region re-solves (the online daemon) fail fast at
// configuration time instead of discovering ErrRegionUnsupported on the
// first triggered re-solve.
type RegionCapable interface {
	SupportsRegions() bool
}

// SupportsRegions reports whether s declares region-re-solve support.
// Solvers that do not implement RegionCapable are assumed capable; they
// still fail per-call with ErrRegionUnsupported if they are not.
func SupportsRegions(s Solver) bool {
	if rc, ok := s.(RegionCapable); ok {
		return rc.SupportsRegions()
	}
	return true
}

// checkProblem validates the request shape shared by all solvers.
func checkProblem(p Problem) error {
	if p.Graph == nil || p.Rates == nil {
		return ErrNoGraph
	}
	if p.Region != nil && p.Base == nil {
		return ErrNoBase
	}
	return nil
}
