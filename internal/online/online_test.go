package online

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"piggyback/internal/baseline"
	"piggyback/internal/chitchat"
	"piggyback/internal/graphgen"
	"piggyback/internal/nosy"
	"piggyback/internal/schedio"
	"piggyback/internal/solver"
	"piggyback/internal/workload"
)

func scaled(full, short int) int {
	if testing.Short() {
		return short
	}
	return full
}

// rates must be private per daemon run: rate-update ops mutate them.
func freshRates(g interface{ NumNodes() int }, base *workload.Rates) *workload.Rates {
	return &workload.Rates{
		Prod: append([]float64(nil), base.Prod...),
		Cons: append([]float64(nil), base.Cons...),
	}
}

// The daemon stays valid and keeps its running cost exact across a full
// churn trace, for both localized solvers.
func TestDaemonChurnValidAndCostExact(t *testing.T) {
	g := graphgen.Social(graphgen.FlickrLike(scaled(500, 200), 3))
	base := workload.LogDegree(g, 5)
	init := chitchat.Solve(g, base, chitchat.Config{Workers: 1})
	trace := workload.GenerateChurn(g, base, scaled(2000, 600), workload.ChurnConfig{Seed: 3})

	for _, tc := range []struct {
		name   string
		solver SolverKind
	}{
		{"chitchat", SolverChitChat},
		{"nosy", SolverNosy},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := freshRates(g, base)
			d, err := New(init.Clone(), r, Config{
				Solver:         tc.solver,
				MaxRegionNodes: 120,
				DriftThreshold: 0.1,
				ChitChat:       chitchat.Config{Workers: 1},
				Nosy:           nosy.Config{Workers: 1},
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := d.ApplyTrace(trace); err != nil {
				t.Fatal(err)
			}
			if err := d.Validate(); err != nil {
				t.Fatalf("final state invalid: %v", err)
			}
			_, liveS := d.Snapshot()
			fresh := liveS.Cost(r)
			if diff := math.Abs(fresh - d.Cost()); diff > 1e-6*(1+fresh) {
				t.Fatalf("running cost %v != snapshot cost %v", d.Cost(), fresh)
			}
			if d.Drift() < 0 || math.IsNaN(d.Drift()) || math.IsInf(d.Drift(), 0) {
				t.Fatalf("bad drift %v", d.Drift())
			}
			st := d.Stats()
			if st.Ops != len(trace) {
				t.Fatalf("ops = %d, want %d", st.Ops, len(trace))
			}
		})
	}
}

// When the incumbent schedule is badly degraded (hybrid seed — no hubs
// at all), the drift tracker must fire localized re-solves that win a
// large share of the quality back.
func TestDaemonRecoversFromDegradedSchedule(t *testing.T) {
	g := graphgen.Social(graphgen.FlickrLike(scaled(600, 250), 9))
	base := workload.LogDegree(g, 5)
	r := freshRates(g, base)
	seed := baseline.Hybrid(g, r)
	trace := workload.GenerateChurn(g, base, scaled(2000, 700), workload.ChurnConfig{Seed: 9})

	d, err := New(seed, r, Config{
		DriftThreshold: 0.05,
		MaxRegionNodes: 150,
		BudgetFraction: -1, // the point here is recovery, not the budget
		ChitChat:       chitchat.Config{Workers: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	start := d.Cost()
	if err := d.ApplyTrace(trace); err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Resolves == 0 {
		t.Fatal("no accepted localized re-solves on a hybrid-seeded daemon")
	}
	if d.Cost() > 0.75*start {
		t.Fatalf("recovered too little: %v → %v (%.1f%%)",
			start, d.Cost(), 100*d.Cost()/start)
	}
}

// Serve drains a channel like a daemon loop.
func TestDaemonServe(t *testing.T) {
	g := graphgen.Social(graphgen.FlickrLike(150, 5))
	base := workload.LogDegree(g, 5)
	r := freshRates(g, base)
	init := chitchat.Solve(g, r, chitchat.Config{Workers: 1})
	trace := workload.GenerateChurn(g, base, 300, workload.ChurnConfig{Seed: 5})

	d, err := New(init, r, Config{ChitChat: chitchat.Config{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan workload.ChurnOp)
	go func() {
		for _, op := range trace {
			ch <- op
		}
		close(ch)
	}()
	st, err := d.Serve(ch)
	if err != nil {
		t.Fatal(err)
	}
	if st.Ops != len(trace) {
		t.Fatalf("served %d ops, want %d", st.Ops, len(trace))
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDaemonRejectsInvalidOps(t *testing.T) {
	g := graphgen.Social(graphgen.FlickrLike(100, 2))
	base := workload.LogDegree(g, 5)
	r := freshRates(g, base)
	d, err := New(chitchat.Solve(g, r, chitchat.Config{Workers: 1}), r, Config{})
	if err != nil {
		t.Fatal(err)
	}
	e := g.EdgeList()[0]
	if err := d.Apply(workload.ChurnOp{Kind: workload.OpAdd, U: e.From, V: e.To}); err == nil {
		t.Fatal("duplicate add accepted")
	}
	if err := d.Apply(workload.ChurnOp{Kind: workload.OpRemove, U: 1000000, V: 0}); err == nil {
		t.Fatal("out-of-range remove accepted")
	}
	if err := d.Apply(workload.ChurnOp{Kind: workload.OpRates, U: 0, Prod: math.NaN(), Cons: 1}); err == nil {
		t.Fatal("NaN rate accepted")
	}
	if err := d.Apply(workload.ChurnOp{Kind: 99}); err == nil {
		t.Fatal("unknown op kind accepted")
	}
}

// The pinned acceptance scenario (ISSUE 4): 2k-node Flickr-like graph,
// 5k-op churn trace, deterministic seed. The daemon must end within 10%
// of a from-scratch CHITCHAT re-solve of the final graph while issuing
// localized re-solves over regions totaling <25% of the live edges, and
// the final schedule must be byte-identical across worker counts.
func TestAcceptanceOnlineDaemon2k(t *testing.T) {
	if testing.Short() {
		t.Skip("acceptance scenario runs full size; -short exercises the scaled tests above")
	}
	const (
		nodes = 2000
		ops   = 5000
		seed  = 42
	)
	g := graphgen.Social(graphgen.FlickrLike(nodes, seed))
	base := workload.LogDegree(g, 5)
	init := chitchat.Solve(g, base, chitchat.Config{Workers: 1})
	trace := workload.GenerateChurn(g, base, ops, workload.ChurnConfig{Seed: seed})

	run := func(workers int) (*Daemon, []byte) {
		r := freshRates(g, base)
		d, err := New(init.Clone(), r, Config{
			MaxRegionNodes: 150,
			ChitChat:       chitchat.Config{Workers: workers},
			Nosy:           nosy.Config{Workers: workers},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.ApplyTrace(trace); err != nil {
			t.Fatal(err)
		}
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
		_, liveS := d.Snapshot()
		var buf bytes.Buffer
		if err := schedio.Write(&buf, liveS); err != nil {
			t.Fatal(err)
		}
		return d, buf.Bytes()
	}

	d1, bytes1 := run(1)
	liveG, _ := d1.Snapshot()

	// Quality: within 10% of a from-scratch CHITCHAT re-solve of the
	// final graph under the final rates.
	freshCost := chitchat.Solve(liveG, d1.Rates(), chitchat.Config{Workers: 1}).Cost(d1.Rates())
	if gap := d1.Cost()/freshCost - 1; gap > 0.10 {
		t.Fatalf("daemon %.1f vs fresh %.1f: gap %.2f%% exceeds 10%%",
			d1.Cost(), freshCost, 100*gap)
	}

	// Locality: cumulative re-solved region size below a quarter of the
	// live edges, with the localized machinery demonstrably engaged.
	st := d1.Stats()
	if st.Resolves+st.Reverted == 0 {
		t.Fatal("no localized re-solves were ever issued")
	}
	if frac := float64(st.RegionEdges) / float64(liveG.NumEdges()); frac >= 0.25 {
		t.Fatalf("re-solved regions total %.1f%% of live edges, want <25%%", 100*frac)
	}

	// Determinism: byte-identical final schedule for other worker counts.
	for _, workers := range []int{2, 4} {
		d2, bytes2 := run(workers)
		if !bytes.Equal(bytes1, bytes2) {
			t.Fatalf("schedule bytes differ between workers=1 and workers=%d", workers)
		}
		if d1.Cost() != d2.Cost() {
			t.Fatalf("cost differs between worker counts: %v vs %v", d1.Cost(), d2.Cost())
		}
	}
}

// TestRejectsRegionIncapableSolver pins the construction-time guard: a
// regional solver that cannot handle Problem.Region is a configuration
// error, not a stream of silent re-solve failures.
func TestRejectsRegionIncapableSolver(t *testing.T) {
	g := graphgen.Social(graphgen.FlickrLike(100, 1))
	r := workload.LogDegree(g, 5)
	s := chitchat.Solve(g, r, chitchat.Config{})
	_, err := New(s, r, Config{Regional: solver.NewNosyMapReduce(nosy.Config{})})
	if !errors.Is(err, solver.ErrRegionUnsupported) {
		t.Fatalf("New with nosymr regional = %v, want ErrRegionUnsupported", err)
	}
}
