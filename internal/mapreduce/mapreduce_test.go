package mapreduce

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

// Word count: the canonical smoke test.
func TestWordCount(t *testing.T) {
	docs := []string{
		"the quick brown fox",
		"the lazy dog",
		"the fox",
	}
	type count struct {
		word string
		n    int
	}
	out := Run(
		docs,
		func(doc string, emit func(string, int)) {
			for _, w := range strings.Fields(doc) {
				emit(w, 1)
			}
		},
		func(k string) uint64 {
			h := uint64(14695981039346656037)
			for i := 0; i < len(k); i++ {
				h = (h ^ uint64(k[i])) * 1099511628211
			}
			return h
		},
		func(k string, vs []int, emit func(count)) {
			total := 0
			for _, v := range vs {
				total += v
			}
			emit(count{k, total})
		},
		Options{Workers: 4},
	)
	got := make(map[string]int)
	for _, c := range out {
		got[c.word] = c.n
	}
	want := map[string]int{"the": 3, "quick": 1, "brown": 1, "fox": 2, "lazy": 1, "dog": 1}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for w, n := range want {
		if got[w] != n {
			t.Fatalf("count[%q] = %d, want %d", w, got[w], n)
		}
	}
}

func TestEmptyInputs(t *testing.T) {
	out := Run(
		nil,
		func(int, func(int32, int)) {},
		Int32Key,
		func(int32, []int, func(int)) {},
		Options{},
	)
	if len(out) != 0 {
		t.Fatalf("empty job emitted %d outputs", len(out))
	}
}

func TestAllValuesOfKeyMeetOnce(t *testing.T) {
	// Emit each key from several mappers; each reducer call must see all
	// of that key's values, and each key must be reduced exactly once.
	inputs := make([]int, 100)
	for i := range inputs {
		inputs[i] = i
	}
	type red struct {
		key int32
		sum int
		n   int
	}
	out := Run(
		inputs,
		func(i int, emit func(int32, int)) {
			emit(int32(i%7), i)
		},
		Int32Key,
		func(k int32, vs []int, emit func(red)) {
			s := 0
			for _, v := range vs {
				s += v
			}
			emit(red{k, s, len(vs)})
		},
		Options{Workers: 8, Partitions: 16},
	)
	if len(out) != 7 {
		t.Fatalf("expected 7 reduced keys, got %d", len(out))
	}
	for _, r := range out {
		wantSum, wantN := 0, 0
		for i := 0; i < 100; i++ {
			if int32(i%7) == r.key {
				wantSum += i
				wantN++
			}
		}
		if r.sum != wantSum || r.n != wantN {
			t.Fatalf("key %d: sum/n = %d/%d, want %d/%d", r.key, r.sum, r.n, wantSum, wantN)
		}
	}
}

func TestWorkerAndPartitionInvariance(t *testing.T) {
	inputs := make([]int, 500)
	for i := range inputs {
		inputs[i] = i
	}
	run := func(workers, parts int) []int {
		out := Run(
			inputs,
			func(i int, emit func(int32, int)) { emit(int32(i%13), i*i) },
			Int32Key,
			func(k int32, vs []int, emit func(int)) {
				s := 0
				for _, v := range vs {
					s += v
				}
				emit(s)
			},
			Options{Workers: workers, Partitions: parts},
		)
		sort.Ints(out)
		return out
	}
	ref := run(1, 1)
	for _, cfg := range [][2]int{{2, 2}, {4, 8}, {8, 3}} {
		got := run(cfg[0], cfg[1])
		if len(got) != len(ref) {
			t.Fatalf("cfg %v: %d outputs vs %d", cfg, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("cfg %v: output %d = %d, want %d", cfg, i, got[i], ref[i])
			}
		}
	}
}

// Property: a sum aggregated through MapReduce equals the direct sum.
func TestQuickSumPreserved(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(500)
		inputs := make([]int64, n)
		var want int64
		for i := range inputs {
			inputs[i] = int64(rng.Intn(1000))
			want += inputs[i]
		}
		out := Run(
			inputs,
			func(v int64, emit func(int64, int64)) { emit(v%17, v) },
			Int64Key,
			func(_ int64, vs []int64, emit func(int64)) {
				var s int64
				for _, v := range vs {
					s += v
				}
				emit(s)
			},
			Options{Workers: 1 + rng.Intn(8)},
		)
		var got int64
		for _, v := range out {
			got += v
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitmixDistribution(t *testing.T) {
	// Smoke check: consecutive keys spread over partitions.
	seen := make(map[uint64]bool)
	for i := int32(0); i < 64; i++ {
		seen[Int32Key(i)%8] = true
	}
	if len(seen) < 8 {
		t.Fatalf("64 consecutive keys hit only %d of 8 partitions", len(seen))
	}
}
