// The zoo acceptance suite: every registered scenario is driven through
// the online daemon with pinned accept/revert/amortize counts and a
// byte-identical final schedule across worker counts — the tier-1
// contract that makes the zoo the judging layer for future scheduling
// changes. A change that shifts any pin is a behavior change and must
// update it deliberately.

package scenario_test

import (
	"bytes"
	"reflect"
	"testing"

	"piggyback/internal/chitchat"
	"piggyback/internal/fault"
	"piggyback/internal/graphgen"
	"piggyback/internal/online"
	"piggyback/internal/scenario"
	"piggyback/internal/schedio"
	"piggyback/internal/solver"
	"piggyback/internal/telemetry"
	"piggyback/internal/workload"
)

// Fixed acceptance geometry — deliberately NOT scaled down under
// -short, because the pins below are exact counts: -short instead runs
// only the flashcrowd subtest (the CI smoke), full mode runs the whole
// zoo.
const (
	accNodes = 300
	accGSeed = 11
	accOps   = 800
	accSeed  = 42
)

type accPin struct {
	Resolves, Reverted, Amortized int
}

// acceptancePins: exact daemon behavior per scenario at the geometry
// above (CHITCHAT regional solver, DriftThreshold 0.05, CheckEvery 8,
// unlimited budget).
var acceptancePins = map[string]accPin{
	scenario.Cascade:      {Resolves: 7, Reverted: 6, Amortized: 0},
	scenario.Diurnal:      {Resolves: 29, Reverted: 13, Amortized: 98},
	scenario.FlashCrowd:   {Resolves: 15, Reverted: 26, Amortized: 0},
	scenario.LDBC:         {Resolves: 17, Reverted: 9, Amortized: 104},
	scenario.Preferential: {Resolves: 7, Reverted: 2, Amortized: 10},
	scenario.RegionChurn:  {Resolves: 4, Reverted: 2, Amortized: 0},
}

func TestAcceptanceZooDaemon(t *testing.T) {
	g := graphgen.Social(graphgen.FlickrLike(accNodes, accGSeed))
	base := workload.LogDegree(g, 5)
	for _, name := range scenario.Default.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			if testing.Short() && name != scenario.FlashCrowd {
				t.Skip("-short runs the flashcrowd smoke only")
			}
			trace, err := scenario.Default.Generate(name, g, base,
				scenario.Params{Ops: accOps, Seed: accSeed})
			if err != nil {
				t.Fatal(err)
			}
			run := func(workers int) (online.Stats, []byte, float64) {
				r := &workload.Rates{
					Prod: append([]float64(nil), base.Prod...),
					Cons: append([]float64(nil), base.Cons...),
				}
				d, err := online.New(chitchat.Solve(g, r, chitchat.Config{Workers: workers}), r,
					online.Config{
						ChitChat:       chitchat.Config{Workers: workers},
						DriftThreshold: 0.05,
						CheckEvery:     8,
						BudgetFraction: -1,
					})
				if err != nil {
					t.Fatal(err)
				}
				if err := d.ApplyTrace(trace); err != nil {
					t.Fatal(err)
				}
				if err := d.Validate(); err != nil {
					t.Fatalf("final schedule invalid: %v", err)
				}
				_, liveS := d.Snapshot()
				var buf bytes.Buffer
				if err := schedio.Write(&buf, liveS); err != nil {
					t.Fatal(err)
				}
				return d.Stats(), buf.Bytes(), d.Cost()
			}

			st1, bytes1, cost1 := run(1)
			pin := acceptancePins[name]
			got := accPin{Resolves: st1.Resolves, Reverted: st1.Reverted, Amortized: st1.Amortized}
			if got != pin {
				t.Errorf("accept/revert behavior moved: got %+v, pinned %+v", got, pin)
			}
			// The daemon must have actually been exercised: every
			// adversarial trace triggers at least one re-solve attempt.
			if st1.Resolves+st1.Reverted == 0 {
				t.Error("trace triggered no localized re-solves at all")
			}
			if st1.SolverErrors != 0 {
				t.Errorf("hard solver failures during the trace: %d (last: %v)",
					st1.SolverErrors, st1.LastSolverErr)
			}

			// Worker invariance: byte-identical final schedule, identical
			// stats and cost.
			st2, bytes2, cost2 := run(2)
			if !bytes.Equal(bytes1, bytes2) {
				t.Error("final schedule bytes differ between workers=1 and workers=2")
			}
			if cost1 != cost2 {
				t.Errorf("final cost differs across worker counts: %v vs %v", cost1, cost2)
			}
			st1.ResolveWall, st2.ResolveWall = 0, 0 // the only timing field
			if !reflect.DeepEqual(st1, st2) {
				t.Errorf("stats differ across worker counts:\nw1: %+v\nw2: %+v", st1, st2)
			}
		})
	}
}

// TestAcceptanceZooBreaker drives the flashcrowd scenario against a
// daemon whose primary regional solver panics on its early solves: the
// breaker must quarantine it, serve from the fallback, recover through
// a half-open probe, and emit exactly the pinned transition sequence —
// the accept/revert/breaker triad of the tentpole, end to end on a zoo
// trace.
func TestAcceptanceZooBreaker(t *testing.T) {
	g := graphgen.Social(graphgen.FlickrLike(accNodes, accGSeed))
	base := workload.LogDegree(g, 5)
	trace, err := scenario.Default.Generate(scenario.FlashCrowd, g, base,
		scenario.Params{Ops: accOps, Seed: accSeed})
	if err != nil {
		t.Fatal(err)
	}
	r := &workload.Rates{
		Prod: append([]float64(nil), base.Prod...),
		Cons: append([]float64(nil), base.Cons...),
	}
	var ev telemetry.EventLog
	primary := solver.Chain(solver.NewChitChat(chitchat.Config{}), fault.SolverPanics(1, 4))
	d, err := online.New(chitchat.Solve(g, r, chitchat.Config{}), r, online.Config{
		Regional:          primary,
		Fallback:          "chitchat",
		BreakerThreshold:  2,
		BreakerProbeEvery: 2,
		DriftThreshold:    0.05,
		CheckEvery:        8,
		BudgetFraction:    -1,
		Events:            &ev,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ApplyTrace(trace); err != nil {
		t.Fatalf("trace failed: %v", err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("final schedule invalid: %v", err)
	}
	st := d.Stats()
	if st.Breaker == nil || st.Breaker.Trips == 0 || st.Breaker.FallbackSolves == 0 {
		t.Fatalf("breaker never engaged: %+v", st.Breaker)
	}
	if st.Breaker.Open {
		t.Fatalf("breaker still open after the primary healed: %+v", st.Breaker)
	}
	// The primary panics on solves 1..3 with trip threshold 2: two
	// panics trip the breaker, the first half-open probe eats panic 3
	// and re-opens, the second probe finds the primary healed.
	want := []string{
		"closed->open",
		"open->half-open", "half-open->open",
		"open->half-open", "half-open->closed",
	}
	if got := ev.Attrs("breaker"); !reflect.DeepEqual(got, want) {
		t.Fatalf("breaker transitions = %v, want %v", got, want)
	}
	if st.Resolves == 0 {
		t.Fatalf("no accepted re-solves on the flashcrowd trace: %+v", st)
	}
}
