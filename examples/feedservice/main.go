// Feedservice: run the prototype view-store cluster under a
// piggybacking schedule, post and read events through Algorithm 3, and
// measure actual throughput against the hybrid baseline — a miniature of
// the paper's §4.3 prototype experiment.
package main

import (
	"fmt"

	"piggyback"
)

func main() {
	g := piggyback.FlickrLikeGraph(1500, 7)
	r := piggyback.LogDegreeRates(g, 5)
	pn := piggyback.MustSolve("nosy", g, r)
	ff := piggyback.MustSolve("hybrid", g, r)

	// Demonstrate end-to-end delivery through a hub: find a covered edge
	// and show the consumer sees the producer's event after one round.
	var producer, consumer piggyback.NodeID
	var hub piggyback.NodeID = -1
	for e := piggyback.EdgeID(0); int(e) < g.NumEdges(); e++ {
		if pn.IsCovered(e) {
			producer = g.EdgeSource(e)
			consumer = g.EdgeTarget(e)
			hub = pn.Hub(e)
			break
		}
	}
	cluster, err := piggyback.NewCluster(pn, piggyback.ClusterOptions{Servers: 16})
	if err != nil {
		panic(err)
	}
	defer cluster.Close()

	if hub >= 0 {
		cl := cluster.NewClient()
		cl.Update(producer, piggyback.Event{User: producer, ID: 1, TS: 1})
		stream := cl.Query(consumer)
		delivered := false
		for _, ev := range stream {
			if ev.User == producer && ev.ID == 1 {
				delivered = true
			}
		}
		fmt.Printf("hub delivery: user %d's event reached follower %d via hub %d's view: %v\n\n",
			producer, consumer, hub, delivered)
	}

	// Throughput comparison at two system sizes.
	trace := piggyback.GenerateTrace(r, 20000, 1)
	for _, servers := range []int{4, 256} {
		row := map[string]float64{}
		for name, s := range map[string]*piggyback.Schedule{"ParallelNosy": pn, "FF": ff} {
			c, err := piggyback.NewCluster(s, piggyback.ClusterOptions{Servers: servers})
			if err != nil {
				panic(err)
			}
			res := piggyback.MeasureThroughput(c, trace, 8)
			c.Close()
			row[name] = res.PerClientRate
		}
		fmt.Printf("%4d servers: ParallelNosy %8.0f req/s/client   FF %8.0f req/s/client   ratio %.3f\n",
			servers, row["ParallelNosy"], row["FF"], row["ParallelNosy"]/row["FF"])
	}
	fmt.Println("\n(the piggybacking advantage grows with the number of servers — Figure 6)")
}
