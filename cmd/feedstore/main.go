// Command feedstore runs the networked prototype end to end: it starts a
// TCP data-store tier, computes (or loads) a request schedule, replays a
// synthetic workload through Algorithm-3 clients, and reports actual
// throughput and latency percentiles — the §4.3 experiment as a single
// binary.
//
// Usage:
//
//	feedstore -nodes 2000 -servers 8 -algo nosy -requests 20000
//	feedstore -graph g.bin -sched s.pgs -servers 16
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"piggyback/internal/baseline"
	"piggyback/internal/core"
	"piggyback/internal/graph"
	"piggyback/internal/graphgen"
	"piggyback/internal/graphio"
	"piggyback/internal/netstore"
	"piggyback/internal/schedio"
	_ "piggyback/internal/shard" // registers the "shard" solver
	"piggyback/internal/solver"
	"piggyback/internal/stats"
	"piggyback/internal/store"
	"piggyback/internal/workload"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "binary graph file (default: generate flickr-like)")
		schedPath = flag.String("sched", "", "schedule file from schedio (default: compute with -algo)")
		nodes     = flag.Int("nodes", 2000, "nodes for the generated graph")
		seed      = flag.Int64("seed", 1, "seed for generation, workload and placement")
		algo      = flag.String("algo", "nosy", "schedule algorithm: "+strings.Join(solver.Default.Names(), " | "))
		ratio     = flag.Float64("ratio", workload.DefaultReadWriteRatio, "read/write ratio")
		servers   = flag.Int("servers", 8, "TCP data-store servers")
		clients   = flag.Int("clients", 8, "concurrent client connections")
		requests  = flag.Int("requests", 20000, "total requests to replay")
	)
	flag.Parse()

	g := loadOrGenerate(*graphPath, *nodes, *seed)
	r := workload.LogDegree(g, *ratio)
	s := loadOrCompute(*schedPath, g, r, *algo)
	if err := s.Validate(); err != nil {
		fatalf("schedule invalid: %v", err)
	}
	fmt.Printf("graph %d nodes / %d edges; schedule %s; improvement %.3fx over hybrid\n",
		g.NumNodes(), g.NumEdges(), *algo, baseline.HybridCost(g, r)/s.Cost(r))

	// Start the TCP tier.
	addrs := make([]string, *servers)
	var srvs []*netstore.Server
	for i := range addrs {
		srv, err := netstore.NewServer("127.0.0.1:0")
		if err != nil {
			fatalf("starting server %d: %v", i, err)
		}
		srvs = append(srvs, srv)
		addrs[i] = srv.Addr()
	}
	defer func() {
		for _, srv := range srvs {
			srv.Close()
		}
	}()
	fmt.Printf("started %d TCP data-store servers\n", len(addrs))

	// Replay the workload from concurrent clients, collecting latencies.
	trace := store.GenerateTrace(r, *requests, *seed)
	lat := make([][]float64, *clients)
	var wg sync.WaitGroup
	chunk := (len(trace) + *clients - 1) / *clients
	start := time.Now()
	for k := 0; k < *clients; k++ {
		lo, hi := k*chunk, (k+1)*chunk
		if hi > len(trace) {
			hi = len(trace)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(k, lo, hi int) {
			defer wg.Done()
			cl, err := netstore.DialWithSeed(s, addrs, 0)
			if err != nil {
				fatalf("client %d: %v", k, err)
			}
			defer cl.Close()
			for i := lo; i < hi; i++ {
				req := trace[i]
				t0 := time.Now()
				if req.IsUpdate {
					err = cl.Update(req.User, store.Event{User: req.User, ID: int64(i), TS: int64(i)})
				} else {
					_, err = cl.Query(req.User)
				}
				if err != nil {
					fatalf("request %d: %v", i, err)
				}
				lat[k] = append(lat[k], float64(time.Since(t0)))
			}
		}(k, lo, hi)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []float64
	for _, l := range lat {
		all = append(all, l...)
	}
	rate := float64(len(trace)) / elapsed.Seconds()
	fmt.Printf("replayed %d requests from %d clients in %v\n", len(trace), *clients, elapsed.Round(time.Millisecond))
	fmt.Printf("throughput: %.0f req/s total, %.0f req/s per client\n", rate, rate/float64(*clients))
	fmt.Printf("latency: p50 %v  p95 %v  p99 %v\n",
		time.Duration(stats.Percentile(all, 50)).Round(time.Microsecond),
		time.Duration(stats.Percentile(all, 95)).Round(time.Microsecond),
		time.Duration(stats.Percentile(all, 99)).Round(time.Microsecond))
}

func loadOrGenerate(path string, nodes int, seed int64) *graph.Graph {
	if path == "" {
		return graphgen.Social(graphgen.FlickrLike(nodes, seed))
	}
	f, err := os.Open(path)
	if err != nil {
		fatalf("opening graph: %v", err)
	}
	defer f.Close()
	g, err := graphio.ReadBinary(bufio.NewReader(f))
	if err != nil {
		fatalf("reading graph: %v", err)
	}
	return g
}

func loadOrCompute(path string, g *graph.Graph, r *workload.Rates, algo string) *core.Schedule {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			fatalf("opening schedule: %v", err)
		}
		defer f.Close()
		s, err := schedio.Read(bufio.NewReader(f), g)
		if err != nil {
			fatalf("reading schedule: %v", err)
		}
		return s
	}
	sv, err := solver.Default.New(algo, solver.Options{})
	if err != nil {
		fatalf("%v", err)
	}
	res, err := sv.Solve(context.Background(), solver.Problem{Graph: g, Rates: r})
	if err != nil {
		fatalf("solving: %v", err)
	}
	return res.Schedule
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "feedstore: "+format+"\n", args...)
	os.Exit(1)
}
