package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"piggyback/internal/graph"
	"piggyback/internal/graphgen"
	"piggyback/internal/workload"
)

// hubGraph builds the paper's Figure 2 example: Art(0) → Charlie(1),
// Charlie(1) → Billie(2), Art(0) → Billie(2). The edge 0→2 can be covered
// through hub 1.
func hubGraph() *graph.Graph {
	return graph.FromEdges(3, []graph.Edge{
		{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 2},
	})
}

func TestEmptyScheduleInvalid(t *testing.T) {
	g := hubGraph()
	s := NewSchedule(g)
	if err := s.Validate(); err == nil {
		t.Fatal("empty schedule should fail Theorem-1 validation")
	}
}

func TestPiggybackingValid(t *testing.T) {
	g := hubGraph()
	s := NewSchedule(g)
	up, _ := g.EdgeID(0, 1)
	cross, _ := g.EdgeID(0, 2)
	down, _ := g.EdgeID(1, 2)
	s.SetPush(up)
	s.SetPull(down)
	s.SetCovered(cross, 1)
	if err := s.Validate(); err != nil {
		t.Fatalf("hub schedule invalid: %v", err)
	}
	c := s.Counts()
	if c.Push != 1 || c.Pull != 1 || c.Covered != 1 || c.Unset != 0 {
		t.Fatalf("counts = %+v", c)
	}
}

func TestCoveredWithoutSupportInvalid(t *testing.T) {
	g := hubGraph()
	up, _ := g.EdgeID(0, 1)
	cross, _ := g.EdgeID(0, 2)
	down, _ := g.EdgeID(1, 2)

	// Missing pull on w→v.
	s := NewSchedule(g)
	s.SetPush(up)
	s.SetPush(down) // wrong direction of service
	s.SetCovered(cross, 1)
	if err := s.Validate(); err == nil {
		t.Fatal("cover without pull support should be invalid")
	}

	// Missing push on u→w.
	s = NewSchedule(g)
	s.SetPull(up)
	s.SetPull(down)
	s.SetCovered(cross, 1)
	if err := s.Validate(); err == nil {
		t.Fatal("cover without push support should be invalid")
	}

	// Hub with no graph edge: cover 0→1 through 2 (needs 0→2 ∈ E, 2→1 ∈ E;
	// the latter is missing).
	s = NewSchedule(g)
	s.SetCovered(up, 2)
	s.SetPush(cross)
	s.SetPull(down)
	if err := s.Validate(); err == nil {
		t.Fatal("cover through nonexistent hub edge should be invalid")
	}
}

func TestCostModel(t *testing.T) {
	g := hubGraph()
	r := &workload.Rates{Prod: []float64{2, 3, 5}, Cons: []float64{7, 11, 13}}
	s := NewSchedule(g)
	up, _ := g.EdgeID(0, 1)
	cross, _ := g.EdgeID(0, 2)
	down, _ := g.EdgeID(1, 2)
	s.SetPush(up)          // costs rp(0) = 2
	s.SetPull(down)        // costs rc(2) = 13
	s.SetCovered(cross, 1) // free
	if got := s.Cost(r); got != 15 {
		t.Fatalf("Cost = %v, want 15", got)
	}
	if got := s.PredictedThroughput(r); math.Abs(got-1.0/15) > 1e-12 {
		t.Fatalf("PredictedThroughput = %v", got)
	}

	// Both push and pull on the same edge costs both terms.
	s2 := NewSchedule(g)
	s2.SetPush(up)
	s2.SetPull(up) // rc(1) = 11
	if got := s2.Cost(r); got != 13 {
		t.Fatalf("push+pull edge cost = %v, want 13", got)
	}
}

func TestFinalizeHybridRule(t *testing.T) {
	g := hubGraph()
	r := &workload.Rates{Prod: []float64{1, 100, 1}, Cons: []float64{1, 2, 3}}
	s := NewSchedule(g)
	s.Finalize(r)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Edge 0→1: rp(0)=1 <= rc(1)=2 → push. Edge 1→2: rp(1)=100 > rc(2)=3 → pull.
	e01, _ := g.EdgeID(0, 1)
	e12, _ := g.EdgeID(1, 2)
	if !s.IsPush(e01) || s.IsPull(e01) {
		t.Fatal("edge 0→1 should be push")
	}
	if !s.IsPull(e12) || s.IsPush(e12) {
		t.Fatal("edge 1→2 should be pull")
	}
}

func TestFinalizeDoesNotTouchScheduled(t *testing.T) {
	g := hubGraph()
	r := workload.NewUniform(3, 5)
	s := NewSchedule(g)
	cross, _ := g.EdgeID(0, 2)
	up, _ := g.EdgeID(0, 1)
	down, _ := g.EdgeID(1, 2)
	s.SetPush(up)
	s.SetPull(down)
	s.SetCovered(cross, 1)
	before := s.Cost(r)
	s.Finalize(r)
	if got := s.Cost(r); got != before {
		t.Fatalf("Finalize changed cost of complete schedule: %v → %v", before, got)
	}
	if s.IsPush(cross) || s.IsPull(cross) {
		t.Fatal("Finalize scheduled a covered edge directly")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := hubGraph()
	s := NewSchedule(g)
	up, _ := g.EdgeID(0, 1)
	s.SetPush(up)
	c := s.Clone()
	c.SetPull(up)
	c.SetCovered(up, 2)
	if s.IsPull(up) || s.IsCovered(up) {
		t.Fatal("Clone shares state")
	}
	if c.Hub(up) != 2 || s.Hub(up) != -1 {
		t.Fatal("hub array not cloned")
	}
}

func TestClearOperations(t *testing.T) {
	g := hubGraph()
	s := NewSchedule(g)
	e, _ := g.EdgeID(0, 1)
	s.SetPush(e)
	s.SetPull(e)
	s.SetCovered(e, 2)
	s.ClearPush(e)
	if s.IsPush(e) || !s.IsPull(e) || !s.IsCovered(e) {
		t.Fatal("ClearPush broke other flags")
	}
	s.ClearCovered(e)
	if s.IsCovered(e) || s.Hub(e) != -1 {
		t.Fatal("ClearCovered incomplete")
	}
	s.ClearPull(e)
	if s.IsScheduled(e) {
		t.Fatal("edge should be unscheduled")
	}
}

func TestPushPullSets(t *testing.T) {
	g := hubGraph()
	s := NewSchedule(g)
	up, _ := g.EdgeID(0, 1)
	down, _ := g.EdgeID(1, 2)
	cross, _ := g.EdgeID(0, 2)
	s.SetPush(up)
	s.SetPull(down)
	s.SetCovered(cross, 1)
	ps := s.PushSet(0)
	if len(ps) != 1 || ps[0] != 1 {
		t.Fatalf("PushSet(0) = %v, want [1]", ps)
	}
	ls := s.PullSet(2)
	if len(ls) != 1 || ls[0] != 1 {
		t.Fatalf("PullSet(2) = %v, want [1]", ls)
	}
	if len(s.PushSet(2)) != 0 || len(s.PullSet(0)) != 0 {
		t.Fatal("unexpected nonempty sets")
	}
}

// Property: Finalize always yields a valid schedule, and its cost equals
// the hybrid cost Σ min(rp(u), rc(v)) when starting from empty.
func TestQuickFinalizeValidAndHybridCost(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		g := graphgen.ErdosRenyi(n, 4*n, seed)
		r := workload.LogDegree(g, 1+rng.Float64()*10)
		s := NewSchedule(g)
		s.Finalize(r)
		if s.Validate() != nil {
			return false
		}
		want := 0.0
		g.Edges(func(_ graph.EdgeID, u, v graph.NodeID) bool {
			want += math.Min(r.Prod[u], r.Cons[v])
			return true
		})
		return math.Abs(s.Cost(r)-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
