package solver

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
)

func testFactory(name string) Factory {
	return func(Options) Solver { return baselineSolver{name} }
}

// Duplicate registration is a typed error, not a silent overwrite: the
// first registration stays in force and the caller can detect the
// collision with errors.Is.
func TestRegisterDuplicateTypedError(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register("x", testFactory(Hybrid), Meta{Cost: CostCheap}); err != nil {
		t.Fatal(err)
	}
	err := reg.Register("x", testFactory(PushAll), Meta{Cost: CostExpensive})
	if !errors.Is(err, ErrDuplicateSolver) {
		t.Fatalf("second Register = %v, want ErrDuplicateSolver", err)
	}
	// The original entry survived.
	m, err := reg.Meta("x")
	if err != nil {
		t.Fatal(err)
	}
	if m.Cost != CostCheap {
		t.Fatalf("duplicate Register overwrote the entry: meta = %+v", m)
	}
	sv, err := reg.New("x", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sv.Name() != Hybrid {
		t.Fatalf("duplicate Register overwrote the factory: built %q", sv.Name())
	}
}

// Clone is independent in both directions.
func TestRegistryCloneIndependent(t *testing.T) {
	orig := NewRegistry()
	orig.MustRegister("a", testFactory(Hybrid), Meta{Regions: true})
	clone := orig.Clone()

	clone.MustRegister("b", testFactory(PushAll), Meta{})
	if _, err := orig.Get("b"); !errors.Is(err, ErrUnknownSolver) {
		t.Fatalf("registration on the clone leaked into the original: %v", err)
	}
	orig.MustRegister("c", testFactory(PullAll), Meta{})
	if _, err := clone.Get("c"); !errors.Is(err, ErrUnknownSolver) {
		t.Fatalf("registration on the original leaked into the clone: %v", err)
	}

	// The shared prefix is intact, metadata included.
	m, err := clone.Meta("a")
	if err != nil {
		t.Fatal(err)
	}
	if !m.Regions {
		t.Fatalf("clone lost metadata: %+v", m)
	}
	if orig.Len() != 2 || clone.Len() != 2 {
		t.Fatalf("Len: orig %d, clone %d; want 2 and 2", orig.Len(), clone.Len())
	}
}

// The built-ins declare the metadata consumers key decisions off.
func TestDefaultRegistryMeta(t *testing.T) {
	for name, want := range map[string]Meta{
		ChitChat:      {Regions: true, Cost: CostExpensive},
		Nosy:          {Regions: true, Cost: CostModerate},
		NosyMapReduce: {Cost: CostModerate},
		Hybrid:        {Cost: CostCheap},
		PushAll:       {Cost: CostCheap},
		PullAll:       {Cost: CostCheap},
		Portfolio:     {Regions: true, Cost: CostExpensive},
		Auto:          {Regions: true, Cost: CostModerate},
	} {
		got, err := Default.Meta(name)
		if err != nil {
			t.Fatalf("Meta(%q): %v", name, err)
		}
		if got != want {
			t.Errorf("Meta(%q) = %+v, want %+v", name, got, want)
		}
	}
	if _, err := Default.Meta("no-such-algorithm"); !errors.Is(err, ErrUnknownSolver) {
		t.Errorf("Meta(unknown) = %v, want ErrUnknownSolver", err)
	}
}

func TestRegistryNamesSorted(t *testing.T) {
	reg := NewRegistry()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		reg.MustRegister(n, testFactory(Hybrid), Meta{})
	}
	names := reg.Names()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names() not sorted: %v", names)
	}
	if len(names) != 3 {
		t.Fatalf("Names() = %v, want 3 entries", names)
	}
}

func TestCostClassString(t *testing.T) {
	for c, want := range map[CostClass]string{
		CostUnknown:   "unknown",
		CostCheap:     "cheap",
		CostModerate:  "moderate",
		CostExpensive: "expensive",
		CostClass(99): "unknown",
	} {
		if got := c.String(); got != want {
			t.Errorf("CostClass(%d).String() = %q, want %q", c, got, want)
		}
	}
}

// Concurrent registration, lookup, and enumeration must be race-free —
// run under -race this is the regression test for the registry's
// locking discipline.
func TestRegistryConcurrentAccess(t *testing.T) {
	reg := NewRegistry()
	const writers = 8
	const perWriter = 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				name := fmt.Sprintf("s-%d-%d", w, i)
				if err := reg.Register(name, testFactory(Hybrid), Meta{Cost: CostCheap}); err != nil {
					t.Errorf("Register(%q): %v", name, err)
				}
				// Everyone re-registering the shared name races on the
				// duplicate path; exactly one wins overall.
				_ = reg.Register("shared", testFactory(Hybrid), Meta{})
			}
		}(w)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				_ = reg.Names()
				_, _ = reg.Get(fmt.Sprintf("s-%d-%d", w, i))
				_, _ = reg.Meta("shared")
				_, _ = reg.New("shared", Options{})
				_ = reg.Clone().Len()
			}
		}(w)
	}
	wg.Wait()
	if got, want := reg.Len(), writers*perWriter+1; got != want {
		t.Fatalf("Len() = %d, want %d", got, want)
	}
}
