package store

import (
	"math/rand"
	"sync"
	"time"

	"piggyback/internal/graph"
	"piggyback/internal/stats"
	"piggyback/internal/workload"
)

// Request is one workload item: an update or a query by a user.
type Request struct {
	User     graph.NodeID
	IsUpdate bool
}

// Trace is a replayable request sequence.
type Trace []Request

// GenerateTrace samples n requests from the workload: a request is an
// update with probability Σrp/(Σrp+Σrc), and the issuing user is drawn
// proportionally to their production (resp. consumption) rate —
// consistent with the cost model, where rates are request frequencies.
func GenerateTrace(r *workload.Rates, n int, seed int64) Trace {
	rng := rand.New(rand.NewSource(seed))
	prodCum := cumulative(r.Prod)
	consCum := cumulative(r.Cons)
	var sumP, sumC float64
	if len(prodCum) > 0 {
		sumP = prodCum[len(prodCum)-1]
		sumC = consCum[len(consCum)-1]
	}
	out := make(Trace, n)
	for i := range out {
		if rng.Float64()*(sumP+sumC) < sumP {
			out[i] = Request{User: draw(prodCum, rng), IsUpdate: true}
		} else {
			out[i] = Request{User: draw(consCum, rng)}
		}
	}
	return out
}

func cumulative(w []float64) []float64 {
	out := make([]float64, len(w))
	sum := 0.0
	for i, x := range w {
		sum += x
		out[i] = sum
	}
	return out
}

func draw(cum []float64, rng *rand.Rand) graph.NodeID {
	x := rng.Float64() * cum[len(cum)-1]
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return graph.NodeID(lo)
}

// BenchResult reports one throughput measurement. Latency percentiles
// cover individual request round-trips; the paper notes latency stays low
// until the system saturates, and these let callers observe exactly that.
type BenchResult struct {
	Requests      int
	Clients       int
	Elapsed       time.Duration
	ReqPerSec     float64       // aggregate
	PerClientRate float64       // ReqPerSec / Clients — Figure 6's y axis
	LatencyP50    time.Duration // median request latency
	LatencyP95    time.Duration
	LatencyP99    time.Duration
}

// MeasureThroughput replays the trace against the cluster using the given
// number of client goroutines and returns wall-clock request throughput
// and latency percentiles. Event ids/timestamps are synthesized from the
// request index so runs are reproducible.
func MeasureThroughput(c *Cluster, trace Trace, clients int) BenchResult {
	if clients < 1 {
		clients = 1
	}
	var wg sync.WaitGroup
	latencies := make([][]time.Duration, clients)
	start := time.Now()
	chunk := (len(trace) + clients - 1) / clients
	for k := 0; k < clients; k++ {
		lo := k * chunk
		hi := lo + chunk
		if hi > len(trace) {
			hi = len(trace)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(k, lo, hi int) {
			defer wg.Done()
			cl := c.NewClient()
			lat := make([]time.Duration, 0, hi-lo)
			for i := lo; i < hi; i++ {
				req := trace[i]
				t0 := time.Now()
				if req.IsUpdate {
					cl.Update(req.User, Event{
						User: req.User,
						ID:   int64(i),
						TS:   int64(i),
					})
				} else {
					cl.Query(req.User)
				}
				lat = append(lat, time.Since(t0))
			}
			latencies[k] = lat
		}(k, lo, hi)
	}
	wg.Wait()
	elapsed := time.Since(start)
	rate := float64(len(trace)) / elapsed.Seconds()

	var all []float64
	for _, lat := range latencies {
		for _, d := range lat {
			all = append(all, float64(d))
		}
	}
	res := BenchResult{
		Requests:      len(trace),
		Clients:       clients,
		Elapsed:       elapsed,
		ReqPerSec:     rate,
		PerClientRate: rate / float64(clients),
	}
	if len(all) > 0 {
		res.LatencyP50 = time.Duration(stats.Percentile(all, 50))
		res.LatencyP95 = time.Duration(stats.Percentile(all, 95))
		res.LatencyP99 = time.Duration(stats.Percentile(all, 99))
	}
	return res
}

// PredictedMessages returns the average number of server messages per
// request under the trace's stationary distribution — the quantity the
// placement-aware cost model predicts. Useful for checking that measured
// throughput tracks the model (the paper's "striking" consistency).
func PredictedMessages(c *Cluster, r *workload.Rates) float64 {
	var msgs, reqs float64
	for u := 0; u < c.g.NumNodes(); u++ {
		uid := graph.NodeID(u)
		msgs += r.Prod[u]*float64(c.MessagesPerUpdate(uid)) +
			r.Cons[u]*float64(c.MessagesPerQuery(uid))
		reqs += r.Prod[u] + r.Cons[u]
	}
	if reqs == 0 {
		return 0
	}
	return msgs / reqs
}
