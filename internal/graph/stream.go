package graph

import (
	"errors"
	"fmt"
	"sort"
)

// ErrStreamMismatch reports that a StreamBuilder's two passes disagreed:
// the fill pass presented a different edge stream than the count pass, or
// the stream contained a duplicate edge.
var ErrStreamMismatch = errors.New("graph: stream passes disagree or stream has duplicate edges")

// StreamBuilder freezes an edge stream into a Graph in two passes without
// ever materializing an edge list: the count pass sizes the CSR arrays,
// the fill pass writes adjacency straight into them. Peak memory is the
// final graph plus O(n) cursors — roughly half of Builder's peak, which
// holds the unsorted edge list alongside the CSR it builds. That is what
// makes million-edge generation fit small containers.
//
// Contract: the caller replays the identical edge stream to CountEdge and
// then to PlaceEdge (deterministic generators replay for free by
// re-seeding). Self-loops are silently dropped, as in Builder.AddEdge;
// out-of-range endpoints panic wrapping ErrEdgeOutOfRange. Unlike
// Builder, duplicate edges are not deduplicated — Build panics wrapping
// ErrStreamMismatch, as it does when the two passes diverge.
//
//	sb := graph.NewStreamBuilder(n)
//	gen(sb.CountEdge) // pass 1
//	sb.BeginFill()
//	gen(sb.PlaceEdge) // pass 2, identical stream
//	g := sb.Build()
type StreamBuilder struct {
	n        int
	filling  bool
	outStart []int32
	inStart  []int32
	outAdj   []NodeID
	cursor   []int32
}

// NewStreamBuilder returns a stream builder for a graph with n nodes,
// ready for the count pass.
func NewStreamBuilder(n int) *StreamBuilder {
	return &StreamBuilder{
		n:        n,
		outStart: make([]int32, n+1),
		inStart:  make([]int32, n+1),
	}
}

func (sb *StreamBuilder) check(u, v NodeID) bool {
	if int(u) < 0 || int(u) >= sb.n || int(v) < 0 || int(v) >= sb.n {
		panic(fmt.Errorf("%w: edge (%d,%d) outside [0,%d)", ErrEdgeOutOfRange, u, v, sb.n))
	}
	return u != v
}

// CountEdge records the edge u → v during the count pass.
func (sb *StreamBuilder) CountEdge(u, v NodeID) {
	if !sb.check(u, v) {
		return
	}
	sb.outStart[u+1]++
	sb.inStart[v+1]++
}

// BeginFill ends the count pass: it freezes the CSR offsets and allocates
// the out-adjacency storage the fill pass writes into.
func (sb *StreamBuilder) BeginFill() {
	for i := 0; i < sb.n; i++ {
		sb.outStart[i+1] += sb.outStart[i]
		sb.inStart[i+1] += sb.inStart[i]
	}
	sb.outAdj = make([]NodeID, sb.outStart[sb.n])
	sb.cursor = make([]int32, sb.n)
	copy(sb.cursor, sb.outStart[:sb.n])
	sb.filling = true
}

// PlaceEdge records the edge u → v during the fill pass. The fill stream
// must repeat the count stream exactly.
func (sb *StreamBuilder) PlaceEdge(u, v NodeID) {
	if !sb.check(u, v) {
		return
	}
	c := sb.cursor[u]
	if c >= sb.outStart[u+1] {
		panic(fmt.Errorf("%w: node %d got more out-edges in fill than in count", ErrStreamMismatch, u))
	}
	sb.outAdj[c] = v
	sb.cursor[u] = c + 1
}

// Build verifies the passes agree, sorts each node's out-neighbors into
// id order (fixing edge ids independent of stream order, exactly as
// Builder does), and derives the in-adjacency.
func (sb *StreamBuilder) Build() *Graph {
	if !sb.filling {
		sb.BeginFill() // empty stream: both passes were vacuous
	}
	g := &Graph{
		n:        sb.n,
		outStart: sb.outStart,
		outAdj:   sb.outAdj,
		inStart:  sb.inStart,
		inAdj:    make([]NodeID, len(sb.outAdj)),
		inEdge:   make([]EdgeID, len(sb.outAdj)),
	}
	for u := 0; u < sb.n; u++ {
		lo, hi := g.outStart[u], g.outStart[u+1]
		if sb.cursor[u] != hi {
			panic(fmt.Errorf("%w: node %d got %d out-edges in fill, %d in count",
				ErrStreamMismatch, u, sb.cursor[u]-lo, hi-lo))
		}
		bucket := g.outAdj[lo:hi]
		sort.Slice(bucket, func(i, j int) bool { return bucket[i] < bucket[j] })
		for i := 1; i < len(bucket); i++ {
			if bucket[i] == bucket[i-1] {
				panic(fmt.Errorf("%w: duplicate edge (%d,%d)", ErrStreamMismatch, u, bucket[i]))
			}
		}
	}
	// Same derivation as Builder.Build: edges visited in (From, To) order,
	// so each target's in-list comes out sorted by source.
	cursor := sb.cursor // reuse: rewritten below before each read
	copy(cursor, g.inStart[:sb.n])
	for u := 0; u < sb.n; u++ {
		lo, hi := g.outStart[u], g.outStart[u+1]
		for e := lo; e < hi; e++ {
			v := g.outAdj[e]
			p := cursor[v]
			g.inAdj[p] = NodeID(u)
			g.inEdge[p] = EdgeID(e)
			cursor[v] = p + 1
		}
	}
	return g
}
