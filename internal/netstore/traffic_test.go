package netstore

import (
	"testing"

	"piggyback/internal/baseline"
	"piggyback/internal/store"
	"piggyback/internal/telemetry"
)

// trafficRun boots a 2-server tier, pushes a fixed workload through a
// client, and returns (client stats, per-server stats).
func trafficRun(t *testing.T, reg *telemetry.Registry) (ClientStats, []ServerStats) {
	t.Helper()
	g, _ := figure2()
	sched := baseline.PushAll(g)
	servers := make([]*Server, 2)
	addrs := make([]string, 2)
	for i := range servers {
		s, err := NewServerWith("127.0.0.1:0", ServerConfig{
			Metrics: reg, MetricsLabel: serverLabel(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = s
		addrs[i] = s.Addr()
	}
	cl, err := DialConfigured(sched, addrs, DialConfig{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := cl.Update(0, store.Event{User: 0, ID: int64(i), TS: int64(i)}); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Query(2); err != nil {
			t.Fatal(err)
		}
	}
	cl.Close()
	st := cl.Stats()
	out := make([]ServerStats, len(servers))
	for i, s := range servers {
		s.Close()
		out[i] = s.Stats()
	}
	return st, out
}

// Client and server byte counters must agree: everything the client
// writes, some server reads, and vice versa (connections are drained
// cleanly before counting).
func TestTrafficCountersBalance(t *testing.T) {
	cst, ssts := trafficRun(t, nil)
	if cst.BytesWritten == 0 || cst.BytesRead == 0 {
		t.Fatalf("client counted no traffic: %+v", cst)
	}
	var srvRead, srvWritten, frames int64
	for _, s := range ssts {
		srvRead += s.BytesRead
		srvWritten += s.BytesWritten
		frames += s.Frames
		if s.Conns == 0 {
			t.Fatalf("server accepted no connections: %+v", s)
		}
	}
	if cst.BytesWritten != srvRead {
		t.Fatalf("client wrote %d bytes, servers read %d", cst.BytesWritten, srvRead)
	}
	if cst.BytesRead != srvWritten {
		t.Fatalf("client read %d bytes, servers wrote %d", cst.BytesRead, srvWritten)
	}
	if frames == 0 {
		t.Fatalf("servers decoded no frames")
	}
}

// The same workload over a fault-free tier moves the same bytes, run
// after run — the traffic counters are part of the deterministic
// snapshot surface.
func TestTrafficCountersDeterministic(t *testing.T) {
	c1, s1 := trafficRun(t, nil)
	c2, s2 := trafficRun(t, nil)
	if c1 != c2 {
		t.Fatalf("client stats differ across identical runs:\n%+v\nvs\n%+v", c1, c2)
	}
	var a, b int64
	for _, s := range s1 {
		a += s.BytesRead + s.BytesWritten
	}
	for _, s := range s2 {
		b += s.BytesRead + s.BytesWritten
	}
	if a != b {
		t.Fatalf("server traffic differs across identical runs: %d vs %d", a, b)
	}
}

// With a registry configured, the same counters surface as
// netstore_client_* / netstore_server_* series.
func TestTrafficMetricsExposition(t *testing.T) {
	reg := telemetry.NewRegistry()
	cst, _ := trafficRun(t, reg)
	snap := reg.Snapshot()
	m, ok := snap.Get("netstore_client_bytes_written_total")
	if !ok || int64(m.Value) != cst.BytesWritten {
		t.Fatalf("netstore_client_bytes_written_total = %+v, want %d", m, cst.BytesWritten)
	}
	for _, name := range []string{
		"netstore_client_bytes_read_total",
		"netstore_client_redials_total",
		"netstore_server_bytes_read_total",
		"netstore_server_frames_total",
		"netstore_server_conns_total",
	} {
		if _, ok := snap.Get(name); !ok {
			t.Fatalf("metric %s missing from registry:\n%s", name, snap.String())
		}
	}
}
