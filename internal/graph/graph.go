// Package graph implements the directed social graph substrate used by all
// scheduling algorithms.
//
// The model follows the paper: an edge u → v means user v subscribes to the
// events produced by u (u is the producer, v the consumer). The graph is
// stored in compressed sparse row (CSR) form with both out- and
// in-adjacency, and every edge has a dense integer id — its position in the
// out-adjacency array — so request schedules can be kept as flat per-edge
// arrays instead of hash sets.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// ErrEdgeOutOfRange reports an edge whose endpoint is outside the
// builder's node range. Builder.AddEdge panics with an error wrapping it;
// Builder.TryAddEdge returns it.
var ErrEdgeOutOfRange = errors.New("graph: edge endpoint out of range")

// NodeID identifies a user/node. Nodes are dense: 0..NumNodes()-1.
type NodeID = int32

// EdgeID identifies a directed edge; it is the edge's index in the CSR
// out-adjacency array. Edges are dense: 0..NumEdges()-1.
type EdgeID = int32

// Edge is a directed edge From → To: To subscribes to From's events.
type Edge struct {
	From NodeID
	To   NodeID
}

// Graph is an immutable directed graph in CSR form. Build one with a
// Builder or FromEdges.
type Graph struct {
	n        int
	outStart []int32 // len n+1; out-edges of u are ids outStart[u]..outStart[u+1)
	outAdj   []NodeID
	inStart  []int32  // len n+1
	inAdj    []NodeID // sorted sources per target
	inEdge   []EdgeID // edge id parallel to inAdj
}

// Builder accumulates edges before freezing them into a Graph. Duplicate
// edges and self-loops are dropped at Build time.
type Builder struct {
	n     int
	edges []Edge
}

// NewBuilder returns a builder for a graph with n nodes.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// AddEdge records the edge u → v (v subscribes to u). Out-of-range node
// ids panic with an error wrapping ErrEdgeOutOfRange (the solver API
// recovers it into a returned error; use TryAddEdge to handle it at the
// call site); self-loops are silently ignored (a user's own view always
// carries the user's events — the cost of serving oneself is implicit in
// the model).
func (b *Builder) AddEdge(u, v NodeID) {
	if err := b.TryAddEdge(u, v); err != nil {
		panic(err)
	}
}

// TryAddEdge is AddEdge with an error return instead of a panic: it
// reports an error wrapping ErrEdgeOutOfRange when an endpoint is outside
// [0, n).
func (b *Builder) TryAddEdge(u, v NodeID) error {
	if int(u) < 0 || int(u) >= b.n || int(v) < 0 || int(v) >= b.n {
		return fmt.Errorf("%w: edge (%d,%d) outside [0,%d)", ErrEdgeOutOfRange, u, v, b.n)
	}
	if u == v {
		return nil
	}
	b.edges = append(b.edges, Edge{u, v})
	return nil
}

// NumPending returns the number of edges added so far (before dedup).
func (b *Builder) NumPending() int { return len(b.edges) }

// Build freezes the accumulated edges into an immutable Graph.
func (b *Builder) Build() *Graph {
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i].From != b.edges[j].From {
			return b.edges[i].From < b.edges[j].From
		}
		return b.edges[i].To < b.edges[j].To
	})
	// Dedup in place.
	dst := 0
	for i, e := range b.edges {
		if i > 0 && e == b.edges[i-1] {
			continue
		}
		b.edges[dst] = e
		dst++
	}
	edges := b.edges[:dst]

	g := &Graph{
		n:        b.n,
		outStart: make([]int32, b.n+1),
		outAdj:   make([]NodeID, len(edges)),
		inStart:  make([]int32, b.n+1),
		inAdj:    make([]NodeID, len(edges)),
		inEdge:   make([]EdgeID, len(edges)),
	}
	for _, e := range edges {
		g.outStart[e.From+1]++
		g.inStart[e.To+1]++
	}
	for i := 0; i < b.n; i++ {
		g.outStart[i+1] += g.outStart[i]
		g.inStart[i+1] += g.inStart[i]
	}
	for i, e := range edges {
		g.outAdj[i] = e.To
	}
	// Fill in-adjacency sorted by source: iterate edges in (From,To) order
	// and append per target; afterwards each target's list is sorted by
	// source because edge iteration is sorted by From.
	cursor := make([]int32, b.n)
	copy(cursor, g.inStart[:b.n])
	for i, e := range edges {
		p := cursor[e.To]
		g.inAdj[p] = e.From
		g.inEdge[p] = EdgeID(i)
		cursor[e.To]++
	}
	return g
}

// FromEdges builds a graph with n nodes from an edge list.
func FromEdges(n int, edges []Edge) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.From, e.To)
	}
	return b.Build()
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int { return len(g.outAdj) }

// OutDegree returns the number of subscribers (followers) of u.
func (g *Graph) OutDegree(u NodeID) int {
	return int(g.outStart[u+1] - g.outStart[u])
}

// InDegree returns the number of producers v subscribes to.
func (g *Graph) InDegree(v NodeID) int {
	return int(g.inStart[v+1] - g.inStart[v])
}

// OutNeighbors returns the consumers of u (targets of u's out-edges),
// sorted ascending. The returned slice aliases internal storage and must
// not be modified.
func (g *Graph) OutNeighbors(u NodeID) []NodeID {
	return g.outAdj[g.outStart[u]:g.outStart[u+1]]
}

// InNeighbors returns the producers of v (sources of v's in-edges), sorted
// ascending. The returned slice aliases internal storage and must not be
// modified.
func (g *Graph) InNeighbors(v NodeID) []NodeID {
	return g.inAdj[g.inStart[v]:g.inStart[v+1]]
}

// InEdgeIDs returns the edge ids parallel to InNeighbors(v).
func (g *Graph) InEdgeIDs(v NodeID) []EdgeID {
	return g.inEdge[g.inStart[v]:g.inStart[v+1]]
}

// OutEdgeRange returns the half-open edge-id interval [lo, hi) of u's
// out-edges; edge id e in that range targets OutNeighbors(u)[e-lo].
func (g *Graph) OutEdgeRange(u NodeID) (lo, hi EdgeID) {
	return g.outStart[u], g.outStart[u+1]
}

// HasEdge reports whether the edge u → v exists.
func (g *Graph) HasEdge(u, v NodeID) bool {
	_, ok := g.EdgeID(u, v)
	return ok
}

// EdgeID returns the dense id of edge u → v, if it exists.
func (g *Graph) EdgeID(u, v NodeID) (EdgeID, bool) {
	lo, hi := g.outStart[u], g.outStart[u+1]
	adj := g.outAdj[lo:hi]
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	if i < len(adj) && adj[i] == v {
		return lo + int32(i), true
	}
	return -1, false
}

// EdgeSource returns the source node of edge e (binary search over the CSR
// row offsets, O(log n)).
func (g *Graph) EdgeSource(e EdgeID) NodeID {
	// Find the largest u with outStart[u] <= e.
	u := sort.Search(g.n, func(u int) bool { return g.outStart[u+1] > e })
	return NodeID(u)
}

// EdgeTarget returns the target node of edge e.
func (g *Graph) EdgeTarget(e EdgeID) NodeID { return g.outAdj[e] }

// EdgeAt returns both endpoints of edge e.
func (g *Graph) EdgeAt(e EdgeID) Edge {
	return Edge{From: g.EdgeSource(e), To: g.EdgeTarget(e)}
}

// Edges calls fn for every edge in id order; it stops early if fn returns
// false.
func (g *Graph) Edges(fn func(id EdgeID, u, v NodeID) bool) {
	for u := 0; u < g.n; u++ {
		lo, hi := g.outStart[u], g.outStart[u+1]
		for e := lo; e < hi; e++ {
			if !fn(e, NodeID(u), g.outAdj[e]) {
				return
			}
		}
	}
}

// EdgeList materializes all edges in id order.
func (g *Graph) EdgeList() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	g.Edges(func(_ EdgeID, u, v NodeID) bool {
		out = append(out, Edge{u, v})
		return true
	})
	return out
}

// Reciprocity returns the fraction of edges u → v whose reverse edge
// v → u also exists. Social graphs differ widely here (Flickr ≈ 0.6,
// Twitter ≈ 0.2), and reciprocity drives hub availability.
func (g *Graph) Reciprocity() float64 {
	if g.NumEdges() == 0 {
		return 0
	}
	rec := 0
	g.Edges(func(_ EdgeID, u, v NodeID) bool {
		if g.HasEdge(v, u) {
			rec++
		}
		return true
	})
	return float64(rec) / float64(g.NumEdges())
}
