// Package shard solves million-edge instances by partitioning the graph,
// solving each part independently, and reconciling the per-shard
// schedules into one valid whole — the composition ROADMAP item 1 calls
// for, and the only solver here whose peak memory is O(shard), not
// O(graph).
//
// The pipeline (DESIGN.md §9 gives the validity argument):
//
//  1. Partition. partition.Locality assigns nodes to Shards servers by
//     graph structure (random-walk seeds, BFS growth, label-propagation
//     refinement), keeping hub neighborhoods — where piggybacking gains
//     live — inside one shard. The assignment is deterministic given
//     (graph, shards, seed).
//  2. Extract. Each shard's node group becomes a standalone dense-ID
//     subgraph via graph.Induced; rates are remapped alongside.
//  3. Solve. Each subgraph is solved through the solver registry
//     (Config.Inner, default chitchat), shards running concurrently up
//     to Config.Workers. Inner solvers run single-threaded — shard-level
//     concurrency already saturates the machine, and one active solve
//     per worker is what keeps peak memory O(active shard).
//  4. Reconcile. Per-shard patches are spliced into one schedule in
//     ascending shard order (core.Splice), exterior coverage is repaired
//     once (core.RepairCoverage — provably zero repairs for node-disjoint
//     shards, kept as a safety net), cut edges are covered through hubs
//     where the flags already paid for by the shard schedules make that
//     no dearer than direct service (reconcileCut), and whatever remains
//     is served directly by the hybrid rule (Finalize).
//
// Every stage is deterministic and the merge order is fixed, so the
// schedule is byte-identical across Config.Workers. With Shards = 1 the
// single "shard" is the whole graph re-indexed by Induced — an identical
// CSR — so the result reproduces the unsharded inner solver's schedule
// exactly.
//
// Sharding is a memory mechanism, not a quality one: hub neighborhoods
// in skewed social graphs span shard boundaries, so forcing more shards
// moves edges into the cut and costs schedule quality — the same
// partition penalty the paper's Figure 7 measures as server counts grow.
// The reconciliation rule bounds the damage (never worse than the hybrid
// baseline), and auto-sizing keeps graphs below ~128k edges in a single
// shard, where the solver is exactly the unsharded inner algorithm.
package shard

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"piggyback/internal/core"
	"piggyback/internal/graph"
	"piggyback/internal/partition"
	"piggyback/internal/solver"
	"piggyback/internal/telemetry"
	"piggyback/internal/workload"
)

// Name is the solver's registry name.
const Name = "shard"

func init() {
	solver.Default.MustRegister(Name, func(o solver.Options) solver.Solver {
		return New(Config{
			Shards:         o.Shards,
			Workers:        o.Workers,
			MaxCrossEdges:  o.MaxCrossEdges,
			InstanceBudget: o.InstanceBudget,
			Progress:       o.Progress,
		})
	}, solver.Meta{Cost: solver.CostExpensive})
}

// autoShardEdges sizes the auto partition: one shard per ~128k edges, so
// a million-edge graph splits into 8 active-shard-sized pieces.
const autoShardEdges = 1 << 17

// Config parameterizes the sharded solver.
type Config struct {
	// Shards is the partition count; 0 sizes it from the edge count
	// (one shard per ~128k edges), and it is clamped to the node count.
	Shards int
	// Workers bounds concurrently-solving shards; 0 means GOMAXPROCS.
	// The schedule is byte-identical for every value.
	Workers int
	// Inner names the registry solver run on each shard; "" means
	// chitchat.
	Inner string
	// Registry resolves Inner; nil means solver.Default.
	Registry *solver.Registry
	// Seed varies the partition layout. The default (0) is fine; the
	// knob exists for partition-sensitivity experiments.
	Seed int64
	// MaxCrossEdges and InstanceBudget pass through to the inner solver.
	MaxCrossEdges  int
	InstanceBudget int
	// Progress, when non-nil, receives one event per completed shard.
	Progress func(solver.ProgressEvent)
}

type shardSolver struct {
	cfg Config
}

// New returns the sharded solver under its full typed config.
func New(cfg Config) solver.Solver { return &shardSolver{cfg: cfg} }

func (s *shardSolver) Name() string { return Name }

// SupportsRegions implements solver.RegionCapable: a region re-solve is
// already a localized problem; sharding it again has no purpose.
func (s *shardSolver) SupportsRegions() bool { return false }

// ChainProgress implements solver.ProgressChainer: fn is appended to
// the per-shard progress stream, after any previously configured sink.
func (s *shardSolver) ChainProgress(fn func(solver.ProgressEvent)) {
	prev := s.cfg.Progress
	if prev == nil {
		s.cfg.Progress = fn
		return
	}
	s.cfg.Progress = func(ev solver.ProgressEvent) {
		prev(ev)
		fn(ev)
	}
}

// shardResult carries one finished shard back to the coordinator.
type shardResult struct {
	idx   int
	sub   *graph.Subgraph
	res   *solver.Result
	cause error // context cancellation, schedule still usable
	err   error // hard failure, aborts the solve
}

func (s *shardSolver) Solve(ctx context.Context, p solver.Problem) (*solver.Result, error) {
	if p.Graph == nil || p.Rates == nil {
		return nil, solver.ErrNoGraph
	}
	if p.Region != nil {
		return nil, fmt.Errorf("solver %s: %w", Name, solver.ErrRegionUnsupported)
	}
	g := p.Graph
	k := s.cfg.Shards
	if k <= 0 {
		k = 1 + g.NumEdges()/autoShardEdges
	}
	if n := g.NumNodes(); k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	inner := s.cfg.Inner
	if inner == "" {
		inner = solver.ChitChat
	}
	reg := s.cfg.Registry
	if reg == nil {
		reg = solver.Default
	}
	innerOpts := solver.Options{
		Workers:        1,
		MaxCrossEdges:  s.cfg.MaxCrossEdges,
		InstanceBudget: s.cfg.InstanceBudget,
	}
	// Fail on unknown inner names before doing any partitioning work.
	if _, err := reg.Get(inner); err != nil {
		return nil, fmt.Errorf("solver %s: inner solver: %w", Name, err)
	}

	assign := partition.Locality(g, k, s.cfg.Seed)
	groups := assign.Groups()

	workers := s.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > k {
		workers = k
	}

	// Span discipline: every shard's span is begun HERE, on the
	// coordinator, in ascending shard order — before any worker runs —
	// so the span tree is identical for every Workers value. Workers
	// only End the spans (order-independent); shards never dispatched
	// because of cancellation stay marked [open].
	tr, parent := telemetry.FromContext(ctx)
	var spans []telemetry.SpanID
	if tr != nil {
		spans = make([]telemetry.SpanID, k)
		for idx := 0; idx < k; idx++ {
			spans[idx] = tr.Begin(parent, "shard/solve",
				fmt.Sprintf("shard=%d nodes=%d", idx, len(groups[idx])))
		}
	}

	// Solve shards concurrently. Each worker builds its own inner solver
	// (Solver instances are not safe for concurrent calls) and extracts
	// its subgraph itself, so at most `workers` subgraphs and instance
	// stores are live at once.
	next := make(chan int)
	results := make(chan shardResult)
	innerCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			isv, _ := reg.New(inner, innerOpts)
			for idx := range next {
				sctx := innerCtx
				if tr != nil {
					sctx = telemetry.NewContext(innerCtx, tr, spans[idx])
				}
				start := time.Now()
				r := solveShard(sctx, isv, g, p.Rates, groups[idx], idx)
				if tr != nil {
					tr.SetDuration(spans[idx], time.Since(start))
					tr.End(spans[idx], shardAttrs(r))
				}
				results <- r
			}
		}()
	}
	go func() {
		defer close(next)
		for idx := 0; idx < k; idx++ {
			select {
			case next <- idx:
			case <-innerCtx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	// Coordinator: collect every shard, remember the first hard error or
	// cancellation cause, emit progress as shards land.
	subs := make([]*graph.Subgraph, k)
	patches := make([]*core.Schedule, k)
	var firstErr, cause error
	done, solved := 0, 0
	for r := range results {
		done++
		switch {
		case r.err != nil:
			if firstErr == nil {
				firstErr = r.err
				cancel()
			}
		default:
			if r.cause != nil && cause == nil {
				cause = r.cause
			}
			subs[r.idx] = r.sub
			patches[r.idx] = r.res.Schedule
			solved++
			if s.cfg.Progress != nil {
				s.cfg.Progress(solver.ProgressEvent{
					Solver:    Name,
					Iteration: solved,
					Covered:   r.sub.G.NumEdges(),
					Remaining: k - solved,
					Cost:      r.res.Report.Cost,
				})
			}
		}
	}
	if firstErr != nil {
		return nil, fmt.Errorf("solver %s: shard solve: %w", Name, firstErr)
	}
	if cause == nil {
		cause = ctx.Err()
	}

	// Reconcile in fixed ascending shard order; shards are node-disjoint
	// so the patches touch disjoint edge sets and the order is cosmetic —
	// fixing it anyway keeps the merge audit-friendly and byte-stable
	// even if a future partitioner overlaps shards.
	out := core.NewSchedule(g)
	for idx := 0; idx < k; idx++ {
		if patches[idx] == nil {
			continue // canceled before this shard was solved
		}
		if err := core.Splice(out, subs[idx], patches[idx]); err != nil {
			return nil, fmt.Errorf("solver %s: splicing shard %d: %w", Name, idx, err)
		}
	}
	repairs := core.RepairCoverage(out, p.Rates)
	cutCovered := 0
	if k > 1 {
		var cut []graph.EdgeID
		g.Edges(func(e graph.EdgeID, u, v graph.NodeID) bool {
			if assign.Of(u) != assign.Of(v) {
				cut = append(cut, e)
			}
			return true
		})
		cutCovered = reconcileCut(out, g, p.Rates, cut)
	}
	out.Finalize(p.Rates)

	rep := solver.Report{
		Solver:          Name,
		Iterations:      k,
		CoveredEdges:    cutCovered,
		BoundaryRepairs: repairs,
		Cost:            out.Cost(p.Rates),
		Canceled:        cause != nil,
	}
	return &solver.Result{Schedule: out, Report: rep}, cause
}

// reconcileCut covers cut edges through hubs after the per-shard
// schedules are merged — the cross-shard reconciliation step. For each
// cut edge u → v in ascending id order it scans the candidate hubs
// w ∈ out(u) ∩ in(v) (two-pointer merge over sorted CSR adjacency) and
// prices covering through w as the flags still missing: prod(u) unless
// u → w already pushes, cons(v) unless w → v already pulls. The cheapest
// hub (lowest id on ties) wins if it costs no more than serving the edge
// directly — cost-neutral covers are taken because the flags they add
// are shared by later cut edges through the same hub, which is where the
// gain over the plain hybrid fallback comes from. Sequential ascending
// scan ⇒ deterministic. Returns the number of edges covered.
func reconcileCut(s *core.Schedule, g *graph.Graph, r *workload.Rates, cut []graph.EdgeID) int {
	covered := 0
	for _, e := range cut {
		if s.IsCovered(e) || s.IsPush(e) || s.IsPull(e) {
			continue
		}
		u := g.EdgeSource(e)
		v := g.EdgeTarget(e)
		direct := r.Prod[u]
		if r.Cons[v] < direct {
			direct = r.Cons[v]
		}
		outs := g.OutNeighbors(u)
		outLo, _ := g.OutEdgeRange(u)
		ins := g.InNeighbors(v)
		inIDs := g.InEdgeIDs(v)
		var bestHub graph.NodeID = -1
		var bestUp, bestDown graph.EdgeID
		bestCost := direct
		for i, j := 0, 0; i < len(outs) && j < len(ins); {
			switch {
			case outs[i] < ins[j]:
				i++
			case outs[i] > ins[j]:
				j++
			default:
				w := outs[i]
				up := outLo + graph.EdgeID(i)
				down := inIDs[j]
				cost := 0.0
				if !s.IsPush(up) {
					cost += r.Prod[u]
				}
				if !s.IsPull(down) {
					cost += r.Cons[v]
				}
				if w != u && w != v && cost <= bestCost && (bestHub < 0 || cost < bestCost) {
					bestHub, bestUp, bestDown, bestCost = w, up, down, cost
				}
				i++
				j++
			}
		}
		if bestHub >= 0 {
			s.SetPush(bestUp)
			s.SetPull(bestDown)
			s.SetCovered(e, bestHub)
			covered++
		}
	}
	return covered
}

// shardAttrs renders the deterministic End attributes for one finished
// shard — outcome class, iteration count, cost; never wall time.
func shardAttrs(r shardResult) string {
	switch {
	case r.err != nil:
		return "failed"
	case r.cause != nil:
		return fmt.Sprintf("canceled iters=%d", r.res.Report.Iterations)
	default:
		return fmt.Sprintf("ok iters=%d cost=%.1f", r.res.Report.Iterations, r.res.Report.Cost)
	}
}

// solveShard extracts one shard's subgraph and solves it.
func solveShard(ctx context.Context, isv solver.Solver, g *graph.Graph, r *workload.Rates, nodes []graph.NodeID, idx int) shardResult {
	sub := graph.Induced(g, nodes)
	lr := &workload.Rates{
		Prod: make([]float64, len(sub.Global)),
		Cons: make([]float64, len(sub.Global)),
	}
	for l, u := range sub.Global {
		lr.Prod[l] = r.Prod[u]
		lr.Cons[l] = r.Cons[u]
	}
	res, err := isv.Solve(ctx, solver.Problem{Graph: sub.G, Rates: lr})
	if err != nil && res == nil {
		return shardResult{idx: idx, err: err}
	}
	// err != nil with a non-nil result is the anytime-cancellation path:
	// the partial schedule is valid and worth splicing.
	return shardResult{idx: idx, sub: sub, res: res, cause: err}
}
