// Command loadgen replays churn against a live netstore TCP cluster
// while the online daemon reschedules underneath it — the live SLO
// measurement: client-visible query/update latency (p50/p99) and bytes
// on the wire, under an optional pinned fault plan on server 0.
//
// One goroutine interleaves churn ops (through the daemon) with client
// requests (through the TCP tier), so for a fixed seed and fault plan
// the run is deterministic end to end: -spantree and -snapshot dump the
// daemon's re-solve span tree and the non-timing metric snapshot, which
// must be byte-identical across runs (the CI smoke diffs two runs).
//
//	go run ./cmd/loadgen -nodes 400 -ops 1500 -requests 2000 -servers 3 -faults
//	go run ./cmd/loadgen -telemetry 127.0.0.1:9090 -spantree
//	go run ./cmd/loadgen -scenario flashcrowd -snapshot
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"strings"
	"time"

	"piggyback/internal/chitchat"
	"piggyback/internal/core"
	"piggyback/internal/fault"
	"piggyback/internal/graph"
	"piggyback/internal/graphgen"
	"piggyback/internal/netstore"
	"piggyback/internal/online"
	"piggyback/internal/scenario"
	"piggyback/internal/store"
	"piggyback/internal/telemetry"
	"piggyback/internal/workload"
)

func main() {
	nodes := flag.Int("nodes", 400, "graph size (Flickr-like shape)")
	ops := flag.Int("ops", 1500, "churn trace length fed to the daemon")
	requests := flag.Int("requests", 2000, "client requests interleaved with the churn")
	servers := flag.Int("servers", 3, "netstore TCP servers")
	seed := flag.Int64("seed", 7, "graph, trace, request and jitter seed")
	scen := flag.String("scenario", "", "replay a zoo scenario (internal/scenario) instead of the built-in churn trace; empty lists: "+strings.Join(scenario.Default.Names(), "|"))
	workers := flag.Int("workers", 1, "regional solver workers")
	faults := flag.Bool("faults", false, "inject the pinned fault plan on server 0 (delays, a reset, a dropped reply)")
	timeout := flag.Duration("timeout", 150*time.Millisecond, "client round-trip timeout")
	telem := flag.String("telemetry", "", "serve /metrics and /debug/pprof on this address during the run")
	spantree := flag.Bool("spantree", false, "print the daemon's deterministic re-solve span tree")
	snapshot := flag.Bool("snapshot", false, "print the non-timing metric snapshot (byte-identical across seeded runs)")
	flag.Parse()

	reg := telemetry.NewRegistry()
	tr := telemetry.NewTracer(*seed)
	var events telemetry.EventLog
	if *telem != "" {
		reg.Gauge("piggyback_up").Set(1)
		ln, err := telemetry.Serve(*telem, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer ln.Close()
		fmt.Printf("telemetry: http://%s/metrics\n", ln.Addr())
	}

	// Workload: graph + rates + initial schedule, then a churn trace for
	// the daemon and a seeded request mix for the client.
	g := graphgen.Social(graphgen.FlickrLike(*nodes, *seed))
	r := workload.LogDegree(g, 5)
	init := chitchat.Solve(g, r, chitchat.Config{})
	var trace []workload.ChurnOp
	if *scen != "" {
		// Zoo scenarios emit the same churn-op stream the daemon already
		// consumes, so the scenario's phase spans land in the same
		// deterministic tracer as the re-solve spans below.
		var err error
		trace, err = scenario.Default.Generate(*scen, g, r,
			scenario.Params{Ops: *ops, Seed: *seed, Tracer: tr, Metrics: reg})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		trace = workload.GenerateChurn(g, r, *ops, workload.ChurnConfig{Seed: *seed})
	}

	// Serving tier: *servers TCP servers; with -faults, server 0 sits
	// behind the pinned PR-8 chaos plan (ambient delays every connection,
	// one mid-stream reset, one silently dropped reply), so the latency
	// histogram captures retry and failover cost, not just happy-path RTT.
	plan := &fault.Plan{Seed: *seed, Rules: []fault.Rule{
		{Kind: fault.KindDelay, Conn: -1, Op: 40, Count: 3, Delay: 2 * time.Millisecond},
		{Kind: fault.KindDelay, Conn: -1, Op: 200, Count: 2, Delay: 3 * time.Millisecond},
		{Kind: fault.KindReset, Conn: 0, Op: 120},
		{Kind: fault.KindDrop, Conn: 1, Op: 150},
	}}
	tier := make([]*netstore.Server, *servers)
	addrs := make([]string, *servers)
	for i := range tier {
		scfg := netstore.ServerConfig{Metrics: reg, MetricsLabel: fmt.Sprint(i)}
		if i == 0 && *faults {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			tier[i] = netstore.NewServerOn(plan.WrapListener(ln), scfg)
		} else {
			s, err := netstore.NewServerWith("127.0.0.1:0", scfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			tier[i] = s
		}
		addrs[i] = tier[i].Addr()
	}
	cl, err := netstore.DialConfigured(init, addrs, netstore.DialConfig{
		Seed: *seed, Timeout: *timeout,
		BackoffBase: time.Millisecond, BackoffMax: 8 * time.Millisecond,
		Metrics: reg,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Daemon: full telemetry, and every accepted splice publishes a new
	// plan epoch to the tier — the client's per-server epoch gauges then
	// record the rollout as its requests observe it.
	epoch := uint32(0)
	d, err := online.New(init, r, online.Config{
		ChitChat:       chitchat.Config{Workers: *workers},
		Solver:         online.SolverChitChat,
		DriftThreshold: 0.02, CheckEvery: 8, BudgetFraction: -1,
		Metrics: reg, Tracer: tr, Events: &events,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	d.OnSplice = func(*graph.Graph, *core.Schedule) {
		epoch++
		for _, s := range tier {
			s.SetEpoch(epoch)
		}
	}

	// Request mix: seeded, interleaved with the churn at a fixed ratio —
	// one goroutine drives everything, so the run is deterministic.
	qLat := reg.Histogram("loadgen_query_latency_seconds", telemetry.LatencyBuckets)
	uLat := reg.Histogram("loadgen_update_latency_seconds", telemetry.LatencyBuckets)
	queries := reg.Counter("loadgen_queries_total")
	updates := reg.Counter("loadgen_updates_total")
	reqErrs := reg.Counter("loadgen_request_errors_total")
	rng := rand.New(rand.NewSource(*seed))
	issued, budget := 0, 0
	start := time.Now()
	for i, op := range trace {
		if err := d.Apply(op); err != nil {
			fmt.Fprintf(os.Stderr, "op %d: %v\n", i, err)
			os.Exit(1)
		}
		// Accumulator keeps requests evenly spread across the trace.
		budget += *requests
		for budget >= *ops && issued < *requests {
			budget -= *ops
			u := graph.NodeID(rng.Intn(g.NumNodes()))
			t0 := time.Now()
			if issued%4 == 3 {
				err = cl.Update(u, store.Event{User: u, ID: int64(issued), TS: int64(issued)})
				uLat.Observe(time.Since(t0).Seconds())
				updates.Inc()
			} else {
				_, err = cl.Query(u)
				qLat.Observe(time.Since(t0).Seconds())
				queries.Inc()
			}
			if err != nil {
				reqErrs.Inc()
			}
			issued++
		}
	}
	wall := time.Since(start)
	if err := d.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "final schedule invalid: %v\n", err)
		os.Exit(1)
	}
	cl.Close()
	cst := cl.Stats()
	var srvRead, srvWritten int64
	for _, s := range tier {
		st := s.Stats()
		srvRead += st.BytesRead
		srvWritten += st.BytesWritten
		s.Close()
	}

	st := d.Stats()
	fmt.Printf("\nchurn: %d ops, %d accepted re-solves, %d reverted, drift %.3f\n",
		st.Ops, st.Resolves, st.Reverted, d.Drift())
	fmt.Printf("requests: %d queries, %d updates, %d errors in %v\n",
		queries.Value(), updates.Value(), reqErrs.Value(), wall.Round(time.Millisecond))
	fmt.Printf("query latency: p50 %.3fms  p99 %.3fms\n",
		1000*qLat.Quantile(0.5), 1000*qLat.Quantile(0.99))
	fmt.Printf("update latency: p50 %.3fms  p99 %.3fms\n",
		1000*uLat.Quantile(0.5), 1000*uLat.Quantile(0.99))
	fmt.Printf("bytes on wire: client %d out / %d in; servers %d in / %d out\n",
		cst.BytesWritten, cst.BytesRead, srvRead, srvWritten)
	fmt.Printf("client resilience: %d retries, %d redials, %d parked, %d replayed, %d degraded\n",
		cst.Retries, cst.Redials, cst.Parked, cst.Replayed, cst.DegradedQueries)
	if *faults {
		fmt.Printf("faults fired on server 0: %d\n", len(plan.Fired()))
	}
	fmt.Printf("plan rollout: %d epochs published\n", epoch)

	if *spantree {
		fmt.Printf("\n--- span tree (deterministic) ---\n%s", tr.Tree())
	}
	if *snapshot {
		fmt.Printf("\n--- non-timing snapshot (deterministic) ---\n%s", reg.Snapshot().NonTiming().String())
	}
}
