package graph

import (
	"math/rand"
	"sort"
)

// Stats summarizes a graph for the dataset table in the evaluation.
type Stats struct {
	Nodes          int
	Edges          int
	AvgOutDegree   float64
	MaxOutDegree   int
	MaxInDegree    int
	Reciprocity    float64
	ClusteringCoef float64 // sampled local clustering coefficient
}

// ComputeStats gathers summary statistics. Clustering is estimated from up
// to sampleNodes random nodes (exact if sampleNodes >= NumNodes); pass a
// seeded rng for determinism.
func (g *Graph) ComputeStats(sampleNodes int, rng *rand.Rand) Stats {
	s := Stats{Nodes: g.n, Edges: g.NumEdges()}
	if g.n > 0 {
		s.AvgOutDegree = float64(g.NumEdges()) / float64(g.n)
	}
	for u := 0; u < g.n; u++ {
		if d := g.OutDegree(NodeID(u)); d > s.MaxOutDegree {
			s.MaxOutDegree = d
		}
		if d := g.InDegree(NodeID(u)); d > s.MaxInDegree {
			s.MaxInDegree = d
		}
	}
	s.Reciprocity = g.Reciprocity()
	s.ClusteringCoef = g.ClusteringCoefficient(sampleNodes, rng)
	return s
}

// ClusteringCoefficient estimates the average local clustering coefficient
// over the undirected projection of the graph, sampling up to sampleNodes
// nodes. The paper's hub argument rests on this being high for social
// graphs.
func (g *Graph) ClusteringCoefficient(sampleNodes int, rng *rand.Rand) float64 {
	if g.n == 0 {
		return 0
	}
	nodes := make([]NodeID, g.n)
	for i := range nodes {
		nodes[i] = NodeID(i)
	}
	if sampleNodes > 0 && sampleNodes < g.n {
		rng.Shuffle(len(nodes), func(i, j int) {
			nodes[i], nodes[j] = nodes[j], nodes[i]
		})
		nodes = nodes[:sampleNodes]
	}
	sum, counted := 0.0, 0
	for _, u := range nodes {
		nbrs := g.undirectedNeighbors(u)
		k := len(nbrs)
		if k < 2 {
			continue
		}
		links := 0
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				if g.HasEdge(nbrs[i], nbrs[j]) || g.HasEdge(nbrs[j], nbrs[i]) {
					links++
				}
			}
		}
		sum += float64(links) / float64(k*(k-1)/2)
		counted++
	}
	if counted == 0 {
		return 0
	}
	return sum / float64(counted)
}

// undirectedNeighbors merges in- and out-neighbors of u, deduplicated,
// capped at 200 neighbors to bound the O(k²) triangle count on celebrity
// nodes (standard practice for sampled clustering estimates).
func (g *Graph) undirectedNeighbors(u NodeID) []NodeID {
	const cap200 = 200
	out := g.OutNeighbors(u)
	in := g.InNeighbors(u)
	merged := make([]NodeID, 0, len(out)+len(in))
	merged = append(merged, out...)
	merged = append(merged, in...)
	sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
	dst := 0
	for i, v := range merged {
		if i > 0 && v == merged[i-1] {
			continue
		}
		merged[dst] = v
		dst++
	}
	merged = merged[:dst]
	if len(merged) > cap200 {
		merged = merged[:cap200]
	}
	return merged
}

// DegreeHistogram returns out-degree counts: hist[d] = number of nodes with
// out-degree d (sparse map form).
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for u := 0; u < g.n; u++ {
		h[g.OutDegree(NodeID(u))]++
	}
	return h
}

// gallopFactor is the length skew beyond which CommonInEdges abandons the
// linear merge for a galloping search over the longer list: when one
// endpoint is a celebrity (in-degree orders of magnitude above the
// other's), probing the long list in O(short · log long) beats walking it.
const gallopFactor = 16

// CommonInEdges intersects the in-neighbor lists of a and b and appends,
// for every common producer x, the node and the edge ids of x → a and
// x → b to the provided buffers (which may be nil). It returns the
// extended buffers. The result is truncated to limit entries if
// limit > 0. This is PARALLELNOSY's candidate-selection hot path: the
// in-CSR keeps edge ids parallel to the neighbor lists, so no binary
// searches are needed in the balanced case, and the skewed (celebrity)
// case gallops through the longer list instead of scanning it.
func (g *Graph) CommonInEdges(a, b NodeID, limit int, xs []NodeID, ea, eb []EdgeID) ([]NodeID, []EdgeID, []EdgeID) {
	la, lb := g.InNeighbors(a), g.InNeighbors(b)
	ia, ib := g.InEdgeIDs(a), g.InEdgeIDs(b)
	switch {
	case len(la) > gallopFactor*len(lb):
		return intersectGallop(lb, ib, la, ia, true, limit, xs, ea, eb)
	case len(lb) > gallopFactor*len(la):
		return intersectGallop(la, ia, lb, ib, false, limit, xs, ea, eb)
	}
	start := len(xs)
	i, j := 0, 0
	for i < len(la) && j < len(lb) {
		switch {
		case la[i] < lb[j]:
			i++
		case la[i] > lb[j]:
			j++
		default:
			xs = append(xs, la[i])
			ea = append(ea, ia[i])
			eb = append(eb, ib[j])
			if limit > 0 && len(xs)-start >= limit {
				return xs, ea, eb
			}
			i++
			j++
		}
	}
	return xs, ea, eb
}

// intersectGallop intersects a short sorted list against a much longer
// one: for each short element it gallops (exponential probe + binary
// search) forward through the long list from the last match position.
// swapped says the short list belongs to b, i.e. shortIDs are eb-side ids.
func intersectGallop(short []NodeID, shortIDs []EdgeID, long []NodeID, longIDs []EdgeID,
	swapped bool, limit int, xs []NodeID, ea, eb []EdgeID) ([]NodeID, []EdgeID, []EdgeID) {

	start := len(xs)
	j := 0
	for i, x := range short {
		// Exponential probe for the first long[k] >= x, then binary search
		// inside the bracketed window [j+step/2, j+step].
		step := 1
		for j+step < len(long) && long[j+step] < x {
			step <<= 1
		}
		lo, hi := j+step>>1, j+step
		if hi > len(long) {
			hi = len(long)
		}
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if long[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		j = lo
		if j >= len(long) {
			return xs, ea, eb
		}
		if long[j] == x {
			xs = append(xs, x)
			if swapped {
				ea = append(ea, longIDs[j])
				eb = append(eb, shortIDs[i])
			} else {
				ea = append(ea, shortIDs[i])
				eb = append(eb, longIDs[j])
			}
			if limit > 0 && len(xs)-start >= limit {
				return xs, ea, eb
			}
			j++
		}
	}
	return xs, ea, eb
}

// CommonInNeighbors returns the sorted intersection of the in-neighbor
// lists of a and b: the candidate producers x with x → a and x → b.
// The result is truncated to at most limit entries if limit > 0.
func (g *Graph) CommonInNeighbors(a, b NodeID, limit int) []NodeID {
	la, lb := g.InNeighbors(a), g.InNeighbors(b)
	var out []NodeID
	i, j := 0, 0
	for i < len(la) && j < len(lb) {
		switch {
		case la[i] < lb[j]:
			i++
		case la[i] > lb[j]:
			j++
		default:
			out = append(out, la[i])
			if limit > 0 && len(out) >= limit {
				return out
			}
			i++
			j++
		}
	}
	return out
}
