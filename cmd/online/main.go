// Command online runs the online rescheduling daemon over a synthetic
// churn trace and reports the drift trajectory: maintained cost vs. the
// coverability lower bound, localized re-solve activity, and the final
// gap to a from-scratch re-optimization of the churned graph.
//
//	go run ./cmd/online -nodes 2000 -ops 5000 -solver chitchat
package main

import (
	"flag"
	"fmt"
	"os"

	"piggyback/internal/baseline"
	"piggyback/internal/chitchat"
	"piggyback/internal/graphgen"
	"piggyback/internal/nosy"
	"piggyback/internal/online"
	"piggyback/internal/workload"
)

func main() {
	nodes := flag.Int("nodes", 2000, "graph size (Flickr-like shape)")
	ops := flag.Int("ops", 5000, "churn trace length")
	seed := flag.Int64("seed", 42, "graph and trace seed")
	solver := flag.String("solver", "chitchat", "localized re-solver: chitchat | nosy")
	threshold := flag.Float64("threshold", 0, "drift threshold (0 = default)")
	k := flag.Int("k", 0, "region hop radius (0 = default)")
	maxRegion := flag.Int("maxregion", 0, "region node cap (0 = default)")
	every := flag.Int("every", 0, "ops between drift checks (0 = default)")
	workers := flag.Int("workers", 0, "solver workers (0 = GOMAXPROCS)")
	report := flag.Int("report", 1000, "ops between progress lines")
	addFrac := flag.Float64("adds", 0, "fraction of ops that add edges (0 = default)")
	rmFrac := flag.Float64("removes", 0, "fraction of ops that remove edges (0 = default)")
	flag.Parse()

	cfg := online.Config{
		K:              *k,
		DriftThreshold: *threshold,
		CheckEvery:     *every,
		MaxRegionNodes: *maxRegion,
		ChitChat:       chitchat.Config{Workers: *workers},
		Nosy:           nosy.Config{Workers: *workers},
	}
	switch *solver {
	case "chitchat":
		cfg.Solver = online.SolverChitChat
	case "nosy":
		cfg.Solver = online.SolverNosy
	default:
		fmt.Fprintf(os.Stderr, "unknown -solver %q\n", *solver)
		os.Exit(2)
	}

	g := graphgen.Social(graphgen.FlickrLike(*nodes, *seed))
	r := workload.LogDegree(g, 5)
	fmt.Printf("graph: %d nodes, %d edges; solving initial schedule…\n",
		g.NumNodes(), g.NumEdges())
	init := chitchat.Solve(g, r, chitchat.Config{Workers: *workers})
	trace := workload.GenerateChurn(g, r, *ops, workload.ChurnConfig{
		Seed: *seed, AddFraction: *addFrac, RemoveFraction: *rmFrac,
	})

	d, err := online.New(init, r, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("initial: cost %.1f, lower bound %.1f, drift %.3f\n\n",
		d.Cost(), d.LowerBound(), d.Drift())
	fmt.Printf("%8s %12s %8s %9s %9s %12s\n",
		"ops", "cost", "drift", "resolves", "reverted", "region edges")
	for i, op := range trace {
		if err := d.Apply(op); err != nil {
			fmt.Fprintf(os.Stderr, "op %d: %v\n", i, err)
			os.Exit(1)
		}
		if (i+1)%*report == 0 {
			st := d.Stats()
			fmt.Printf("%8d %12.1f %8.3f %9d %9d %12d\n",
				i+1, d.Cost(), d.Drift(), st.Resolves, st.Reverted, st.RegionEdges)
		}
	}
	if err := d.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "final schedule invalid: %v\n", err)
		os.Exit(1)
	}

	liveG, liveS := d.Snapshot()
	// The from-scratch comparison uses the daemon's CURRENT rates —
	// the churn stream may have rescaled user activity.
	freshCost := chitchat.Solve(liveG, d.Rates(), chitchat.Config{Workers: *workers}).Cost(d.Rates())
	st := d.Stats()
	fmt.Printf("\nfinal: %d live edges, cost %.1f (snapshot %.1f)\n",
		liveG.NumEdges(), d.Cost(), liveS.Cost(d.Rates()))
	fmt.Printf("from-scratch CHITCHAT on final graph: %.1f → daemon is %.2f%% above\n",
		freshCost, 100*(d.Cost()-freshCost)/freshCost)
	fmt.Printf("hybrid baseline on final graph: %.1f\n", baseline.HybridCost(liveG, d.Rates()))
	fmt.Printf("localized re-solves: %d accepted, %d reverted, %d rescues\n",
		st.Resolves, st.Reverted, st.Rescues)
	fmt.Printf("region edges re-solved: %d (%.1f%% of final live edges)\n",
		st.RegionEdges, 100*float64(st.RegionEdges)/float64(liveG.NumEdges()))
}
