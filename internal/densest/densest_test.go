package densest

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func unitWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

func TestEmptyInstance(t *testing.T) {
	r := Peel(Instance{}, nil)
	if r.EdgeCnt != 0 || r.Density() != 0 {
		t.Fatalf("empty instance: %+v", r)
	}
}

func TestSingleEdge(t *testing.T) {
	inst := Instance{N: 2, Edges: [][2]int32{{0, 1}}, Weight: unitWeights(2)}
	r := Peel(inst, nil)
	if r.EdgeCnt != 1 || r.Weight != 2 {
		t.Fatalf("single edge: %+v", r)
	}
	if math.Abs(r.Density()-0.5) > 1e-12 {
		t.Fatalf("density = %v, want 0.5", r.Density())
	}
}

func TestCliquePlusPendant(t *testing.T) {
	// 4-clique (density 6/4=1.5 unweighted) plus a pendant node lowering
	// density if included (7/5=1.4). Peel should return the clique.
	edges := [][2]int32{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, {3, 4}}
	inst := Instance{N: 5, Edges: edges, Weight: unitWeights(5)}
	r := Peel(inst, nil)
	if len(r.Members) != 4 || r.EdgeCnt != 6 {
		t.Fatalf("expected 4-clique, got %+v", r)
	}
	for _, m := range r.Members {
		if m == 4 {
			t.Fatal("pendant node included")
		}
	}
}

func TestWeightsSteerSelection(t *testing.T) {
	// Two disjoint edges; one endpoint pair cheap, the other expensive.
	inst := Instance{
		N:      4,
		Edges:  [][2]int32{{0, 1}, {2, 3}},
		Weight: []float64{1, 1, 100, 100},
	}
	r := Peel(inst, nil)
	// Densest subset = {0,1}: density 1/2 vs 1/200 (or 2/202 combined).
	if len(r.Members) != 2 || r.Members[0] != 0 || r.Members[1] != 1 {
		t.Fatalf("expected cheap pair, got %+v", r)
	}
}

func TestZeroWeightFreeCoverage(t *testing.T) {
	// A zero-weight pair with an edge has infinite density.
	inst := Instance{
		N:      3,
		Edges:  [][2]int32{{0, 1}, {1, 2}},
		Weight: []float64{0, 0, 5},
	}
	r := Peel(inst, nil)
	if !math.IsInf(r.Density(), 1) {
		t.Fatalf("density = %v, want +Inf", r.Density())
	}
	if r.EdgeCnt < 1 {
		t.Fatalf("free subgraph should keep at least one edge: %+v", r)
	}
}

func TestDenserComparison(t *testing.T) {
	a := Result{EdgeCnt: 3, Weight: 2} // 1.5
	b := Result{EdgeCnt: 2, Weight: 2} // 1.0
	if !a.Denser(b) || b.Denser(a) {
		t.Fatal("Denser comparison wrong")
	}
	// Equal ratio: prefer more edges.
	c := Result{EdgeCnt: 2, Weight: 4}
	d := Result{EdgeCnt: 1, Weight: 2}
	if !c.Denser(d) {
		t.Fatal("equal ratio should prefer more edges")
	}
	// Infinite beats finite.
	e := Result{EdgeCnt: 1, Weight: 0}
	if !e.Denser(a) || a.Denser(e) {
		t.Fatal("infinite density should win")
	}
}

func TestExactSmall(t *testing.T) {
	// Triangle + expensive tail: exact densest is the triangle (3/3 = 1,
	// vs 5/9 for the whole graph with tail weights 3).
	inst := Instance{
		N:      5,
		Edges:  [][2]int32{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}},
		Weight: []float64{1, 1, 1, 3, 3},
	}
	r := Exact(inst, nil)
	if r.EdgeCnt != 3 || r.Weight != 3 || len(r.Members) != 3 {
		t.Fatalf("Exact: %+v", r)
	}
}

func TestExactPanicsOnLarge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exact on large instance should panic")
		}
	}()
	Exact(Instance{N: 30, Weight: make([]float64, 30)}, nil)
}

// Property (Lemma 1): Peel achieves at least half the optimal density on
// random weighted instances.
func TestQuickTwoApproximation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(9) // Exact is exponential; keep small
		var edges [][2]int32
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if rng.Float64() < 0.4 {
					edges = append(edges, [2]int32{int32(a), int32(b)})
				}
			}
		}
		w := make([]float64, n)
		for i := range w {
			w[i] = 0.1 + rng.Float64()*5
			if rng.Float64() < 0.15 {
				w[i] = 0 // exercise zero weights
			}
		}
		inst := Instance{N: n, Edges: edges, Weight: w}
		opt := Exact(inst, nil)
		got := Peel(inst, nil)
		// got.Density() * 2 >= opt.Density(), compared without division:
		// 2*gotE*optW >= optE*gotW
		lhs := 2 * float64(got.EdgeCnt) * opt.Weight
		rhs := float64(opt.EdgeCnt) * got.Weight
		if opt.Weight == 0 && opt.EdgeCnt > 0 {
			// Optimal is infinite; Peel must also find an infinite-density
			// subgraph (zero weight, positive edges).
			return got.Weight == 0 && got.EdgeCnt > 0
		}
		return lhs >= rhs-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: Peel's reported members are consistent with its edge count
// and weight.
func TestQuickResultConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		var edges [][2]int32
		m := rng.Intn(3 * n)
		for i := 0; i < m; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				edges = append(edges, [2]int32{int32(a), int32(b)})
			}
		}
		w := make([]float64, n)
		for i := range w {
			w[i] = rng.Float64() * 3
		}
		inst := Instance{N: n, Edges: edges, Weight: w}
		r := Peel(inst, nil)
		in := make(map[int32]bool, len(r.Members))
		for _, u := range r.Members {
			in[u] = true
		}
		wantW := 0.0
		for u := range in {
			wantW += w[u]
		}
		wantE := 0
		for _, e := range edges {
			if in[e[0]] && in[e[1]] {
				wantE++
			}
		}
		return wantE == r.EdgeCnt && math.Abs(wantW-r.Weight) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// A reused Scratch must never leak state between calls: interleave
// instances of different shapes through one arena and compare each result
// against a scratch-free call.
func TestScratchReuseMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var sc Scratch
	for round := 0; round < 50; round++ {
		n := 1 + rng.Intn(30)
		var edges [][2]int32
		m := rng.Intn(4 * n)
		for i := 0; i < m; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				edges = append(edges, [2]int32{int32(a), int32(b)})
			}
		}
		w := make([]float64, n)
		for i := range w {
			w[i] = rng.Float64() * 3
			if rng.Float64() < 0.2 {
				w[i] = 0
			}
		}
		inst := Instance{N: n, Edges: edges, Weight: w}
		got := Peel(inst, &sc)
		want := Peel(inst, nil)
		if got.EdgeCnt != want.EdgeCnt || got.Weight != want.Weight ||
			len(got.Members) != len(want.Members) {
			t.Fatalf("round %d: scratch %+v != fresh %+v", round, got, want)
		}
		for i := range got.Members {
			if got.Members[i] != want.Members[i] {
				t.Fatalf("round %d: members differ at %d", round, i)
			}
		}
	}
}
