package chitchat

import (
	"math/rand"
	"testing"
	"testing/quick"

	"piggyback/internal/baseline"
	"piggyback/internal/core"
	"piggyback/internal/graph"
	"piggyback/internal/graphgen"
	"piggyback/internal/workload"
)

// scaled picks the graph size: full-size runs take minutes under -race,
// so -short (CI, pre-commit) uses smaller graphs that keep every
// qualitative property (hub coverage, hybrid dominance, determinism).
func scaled(full, short int) int {
	if testing.Short() {
		return short
	}
	return full
}

// figure2 builds the paper's running example: Art(0) → Charlie(1) →
// Billie(2), plus the cross edge Art → Billie coverable through Charlie.
func figure2() *graph.Graph {
	return graph.FromEdges(3, []graph.Edge{
		{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 2},
	})
}

func TestFigure2UsesHub(t *testing.T) {
	g := figure2()
	r := workload.NewUniform(3, 1) // rp = rc = 1 everywhere
	s := Solve(g, r, Config{})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Hub schedule: push 0→1, pull 1→2, cover 0→2 → cost 2.
	// Hybrid would pay 3 (one unit per edge).
	if got, want := s.Cost(r), 2.0; got != want {
		t.Fatalf("cost = %v, want %v (hub through Charlie)", got, want)
	}
	cross, _ := g.EdgeID(0, 2)
	if !s.IsCovered(cross) || s.Hub(cross) != 1 {
		t.Fatalf("edge 0→2 not covered through hub 1 (hub=%d)", s.Hub(cross))
	}
}

func TestNeverWorseThanHybrid(t *testing.T) {
	g := graphgen.Social(graphgen.TwitterLike(scaled(400, 200), 3))
	r := workload.LogDegree(g, 5)
	s := Solve(g, r, Config{})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	hy := baseline.HybridCost(g, r)
	if s.Cost(r) > hy+1e-6 {
		t.Fatalf("CHITCHAT cost %v worse than hybrid %v", s.Cost(r), hy)
	}
}

func TestBeatsHybridOnClusteredGraph(t *testing.T) {
	// On a clustered social graph with the reference read/write ratio,
	// piggybacking must yield a real improvement.
	g := graphgen.Social(graphgen.FlickrLike(scaled(600, 300), 7))
	r := workload.LogDegree(g, 5)
	s := Solve(g, r, Config{})
	hy := baseline.HybridCost(g, r)
	if ratio := hy / s.Cost(r); ratio < 1.02 {
		t.Fatalf("improvement ratio = %.3f; expected >2%% gain on clustered graph", ratio)
	}
}

func TestEmptyAndTinyGraphs(t *testing.T) {
	empty := graph.FromEdges(0, nil)
	s := Solve(empty, workload.NewUniform(0, 5), Config{})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	single := graph.FromEdges(2, []graph.Edge{{From: 0, To: 1}})
	r := workload.NewUniform(2, 5)
	s = Solve(single, r, Config{})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Cost(r) != 1 { // rp=1 < rc=5 → push
		t.Fatalf("single edge cost = %v, want 1", s.Cost(r))
	}
}

func TestDeterministic(t *testing.T) {
	g := graphgen.Social(graphgen.TwitterLike(scaled(300, 200), 11))
	r := workload.LogDegree(g, 5)
	a := Solve(g, r, Config{})
	b := Solve(g, r, Config{})
	if a.Cost(r) != b.Cost(r) {
		t.Fatalf("nondeterministic costs: %v vs %v", a.Cost(r), b.Cost(r))
	}
	for e := 0; e < g.NumEdges(); e++ {
		ee := graph.EdgeID(e)
		if a.IsPush(ee) != b.IsPush(ee) || a.IsPull(ee) != b.IsPull(ee) ||
			a.IsCovered(ee) != b.IsCovered(ee) {
			t.Fatalf("schedules differ at edge %d", e)
		}
	}
}

// TestWorkerCountInvariance proves the parallel solver equivalent to the
// sequential one: for every worker count the schedule must be
// byte-identical — same cost, same per-edge push/pull/cover assignment,
// same hub choices — on both generator presets. Worker count only moves
// oracle evaluations between goroutines; the refresh and commit policy
// (ties toward the lowest hub id) is fixed.
func TestWorkerCountInvariance(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"twitter", graphgen.Social(graphgen.TwitterLike(scaled(300, 150), 13))},
		{"flickr", graphgen.Social(graphgen.FlickrLike(scaled(300, 150), 7))},
	}
	for _, tc := range graphs {
		t.Run(tc.name, func(t *testing.T) {
			r := workload.LogDegree(tc.g, 5)
			ref := Solve(tc.g, r, Config{Workers: 1})
			if err := ref.Validate(); err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 4, 8} {
				got := Solve(tc.g, r, Config{Workers: workers})
				if got.Cost(r) != ref.Cost(r) {
					t.Fatalf("workers=%d cost %v differs from sequential %v",
						workers, got.Cost(r), ref.Cost(r))
				}
				for e := 0; e < tc.g.NumEdges(); e++ {
					ee := graph.EdgeID(e)
					if got.IsPush(ee) != ref.IsPush(ee) ||
						got.IsPull(ee) != ref.IsPull(ee) ||
						got.IsCovered(ee) != ref.IsCovered(ee) {
						t.Fatalf("workers=%d schedule differs at edge %d", workers, e)
					}
					if ref.IsCovered(ee) && got.Hub(ee) != ref.Hub(ee) {
						t.Fatalf("workers=%d hub differs at edge %d: %d vs %d",
							workers, e, got.Hub(ee), ref.Hub(ee))
					}
				}
			}
		})
	}
}

// TestWorkerCountInvarianceNonDefaultBatch pins worker-count invariance
// for a non-default speculative refresh width: RefreshBatch changes which
// stale candidates are refreshed together (and may change the schedule
// relative to the default), but for any fixed width the schedule must
// still be byte-identical across worker counts. A tiny MemberCacheCap
// rides along so evicted-commit re-peels are exercised under every
// worker count too.
func TestWorkerCountInvarianceNonDefaultBatch(t *testing.T) {
	g := graphgen.Social(graphgen.FlickrLike(scaled(300, 150), 7))
	r := workload.LogDegree(g, 5)
	base := Config{RefreshBatch: 5, MemberCacheCap: 8}
	refCfg := base
	refCfg.Workers = 1
	ref := Solve(g, r, refCfg)
	if err := ref.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		cfg := base
		cfg.Workers = workers
		got := Solve(g, r, cfg)
		if got.Cost(r) != ref.Cost(r) {
			t.Fatalf("workers=%d cost %v differs from sequential %v",
				workers, got.Cost(r), ref.Cost(r))
		}
		for e := 0; e < g.NumEdges(); e++ {
			ee := graph.EdgeID(e)
			if got.IsPush(ee) != ref.IsPush(ee) ||
				got.IsPull(ee) != ref.IsPull(ee) ||
				got.IsCovered(ee) != ref.IsCovered(ee) {
				t.Fatalf("workers=%d schedule differs at edge %d", workers, e)
			}
			if ref.IsCovered(ee) && got.Hub(ee) != ref.Hub(ee) {
				t.Fatalf("workers=%d hub differs at edge %d", workers, e)
			}
		}
	}
}

func TestCrossEdgeBound(t *testing.T) {
	g := graphgen.Social(graphgen.TwitterLike(scaled(300, 200), 5))
	r := workload.LogDegree(g, 5)
	// A tiny bound must still produce a valid schedule, just a worse one.
	tight := Solve(g, r, Config{MaxCrossEdges: 2})
	if err := tight.Validate(); err != nil {
		t.Fatal(err)
	}
	loose := Solve(g, r, Config{})
	if tight.Cost(r) < loose.Cost(r)-1e-9 {
		t.Fatalf("tighter bound should not beat unbounded: %v vs %v",
			tight.Cost(r), loose.Cost(r))
	}
}

// TestCommitMatchesClaimUnderTruncation is the regression test for the
// cross-edge accounting bug: with a binding MaxCrossEdges the oracle used
// to count only the truncated instance while the commit covered every
// uncovered cross-edge, so the greedy ratio disagreed with what the
// schedule actually did. Both are now computed from the same materialized
// element set; every hub commit must cover exactly what it claimed.
func TestCommitMatchesClaimUnderTruncation(t *testing.T) {
	for _, maxCross := range []int{1, 2, 5, 0 /* default, non-binding */} {
		g := graphgen.Social(graphgen.FlickrLike(scaled(200, 120), 7))
		r := workload.LogDegree(g, 5)
		commits := 0
		commitObserver = func(w graph.NodeID, claimed, covered int) {
			commits++
			if claimed != covered {
				t.Errorf("maxCross=%d hub %d: claimed %d covered %d", maxCross, w, claimed, covered)
			}
		}
		s := Solve(g, r, Config{MaxCrossEdges: maxCross})
		commitObserver = nil
		if err := s.Validate(); err != nil {
			t.Fatalf("maxCross=%d: %v", maxCross, err)
		}
		if commits == 0 {
			t.Fatalf("maxCross=%d: no hub commits observed", maxCross)
		}
	}
}

// TestTruncatedCoverageRespectsBudget checks the fixed MaxCrossEdges
// semantics end to end: each hub instance materializes at most b
// cross-edges, so no hub may cover more than b cross-edges in the final
// schedule (support edges are push/pull, not covered).
func TestTruncatedCoverageRespectsBudget(t *testing.T) {
	const budget = 3
	g := graphgen.Social(graphgen.FlickrLike(scaled(200, 120), 9))
	r := workload.LogDegree(g, 5)
	s := Solve(g, r, Config{MaxCrossEdges: budget})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	perHub := make(map[graph.NodeID]int)
	for e := 0; e < g.NumEdges(); e++ {
		if ee := graph.EdgeID(e); s.IsCovered(ee) {
			perHub[s.Hub(ee)]++
		}
	}
	for w, c := range perHub {
		if c > budget {
			t.Fatalf("hub %d covers %d cross-edges, budget %d", w, c, budget)
		}
	}
}

// TestMemberCacheBounded solves a large graph and asserts the member-list
// cache — the only per-hub O(|S|) state retained between evaluation and
// commit — stays at its fixed capacity while under real pressure: far
// more member lists are stored over the solve than the ring holds, yet
// the resident lists never exceed capacity (≪ number of hubs). Before
// this bound, the solver retained X/Y member slices for all n hubs
// simultaneously.
func TestMemberCacheBounded(t *testing.T) {
	n := scaled(5000, 1500)
	g := graphgen.Social(graphgen.TwitterLike(n, 3))
	r := workload.LogDegree(g, 5)
	var st cacheStats
	cacheObserver = func(s cacheStats) { st = s }
	s := Solve(g, r, Config{})
	cacheObserver = nil
	if st.Capacity != DefaultMemberCacheCap {
		t.Fatalf("capacity = %d, want %d", st.Capacity, DefaultMemberCacheCap)
	}
	if st.Stores <= st.Capacity {
		t.Fatalf("only %d member lists stored (capacity %d): cache never under pressure, test proves nothing", st.Stores, st.Capacity)
	}
	if st.RetainedLists > st.Capacity {
		t.Errorf("retained %d member lists, capacity %d", st.RetainedLists, st.Capacity)
	}
	if st.HighWater > st.Capacity {
		t.Errorf("high-water %d exceeds capacity %d", st.HighWater, st.Capacity)
	}
	if st.RetainedLists >= n/4 {
		t.Errorf("retained %d member lists for %d hubs: resident memory is not O(active hubs)", st.RetainedLists, n)
	}
	t.Logf("member cache: %d stores, high-water %d/%d, retained %d lists / %d ints",
		st.Stores, st.HighWater, st.Capacity, st.RetainedLists, st.RetainedInts)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Cost(r) > baseline.HybridCost(g, r)+1e-6 {
		t.Fatal("large-graph schedule worse than hybrid")
	}
}

func TestExactOracleSmallGraph(t *testing.T) {
	g := figure2()
	r := workload.NewUniform(3, 1)
	s := Solve(g, r, Config{ExactOracle: true})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Cost(r) != 2 {
		t.Fatalf("exact-oracle cost = %v, want 2", s.Cost(r))
	}
}

func TestHighReadWriteRatioApproachesHybrid(t *testing.T) {
	// With consumption 100× production, pushes are nearly free and the
	// hybrid schedule (all push) is near optimal; CHITCHAT's gain should
	// shrink relative to the reference ratio (Fig. 9's right side).
	g := graphgen.Social(graphgen.FlickrLike(scaled(400, 250), 9))
	rLow := workload.LogDegree(g, 5)
	rHigh := workload.LogDegree(g, 100)
	gainLow := baseline.HybridCost(g, rLow) / Solve(g, rLow, Config{}).Cost(rLow)
	gainHigh := baseline.HybridCost(g, rHigh) / Solve(g, rHigh, Config{}).Cost(rHigh)
	if gainHigh > gainLow {
		t.Fatalf("gain at ratio 100 (%.3f) exceeds gain at ratio 5 (%.3f)", gainHigh, gainLow)
	}
}

// Property: on random graphs with random rates, CHITCHAT is valid and
// never worse than hybrid.
func TestQuickValidAndBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(40)
		var g *graph.Graph
		if rng.Intn(2) == 0 {
			g = graphgen.ErdosRenyi(n, 4*n, seed)
		} else {
			g = graphgen.Social(graphgen.Config{
				Nodes: n, AvgFollows: 3 + rng.Intn(5),
				TriadProb: rng.Float64(), Reciprocity: rng.Float64(), Seed: seed,
			})
		}
		r := workload.LogDegree(g, 0.5+rng.Float64()*20)
		s := Solve(g, r, Config{})
		if s.Validate() != nil {
			return false
		}
		return s.Cost(r) <= baseline.HybridCost(g, r)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// SolveInduced on a region must produce a valid patch over the subgraph
// that splices back into the full schedule without breaking validity.
func TestSolveInducedPatchRoundTrip(t *testing.T) {
	g := graphgen.Social(graphgen.FlickrLike(250, 8))
	r := workload.LogDegree(g, 5)
	full := Solve(g, r, Config{Workers: 1})
	if err := full.Validate(); err != nil {
		t.Fatal(err)
	}

	nodes := graph.KHop(g, []graph.NodeID{7, 42}, 2, 100)
	sub := graph.Induced(g, nodes)
	patch := SolveInduced(sub, r, Config{Workers: 1})
	if err := patch.Validate(); err != nil {
		t.Fatalf("patch invalid: %v", err)
	}
	if _, err := core.ApplyPatch(full, sub, patch, r); err != nil {
		t.Fatal(err)
	}
	if err := full.Validate(); err != nil {
		t.Fatalf("spliced schedule invalid: %v", err)
	}
}

// TestInstanceBudgetInvariance pins the spillable instance store's core
// contract: the schedule is byte-identical for every InstanceBudget (and
// worker count on top), because a rebuilt instance replays the uncovered
// set and the paid supports and is therefore indistinguishable from one
// that stayed resident. A tight budget must actually spill (evictions,
// rebuilds) and hold peak resident mass far below the unlimited run.
func TestInstanceBudgetInvariance(t *testing.T) {
	g := graphgen.Social(graphgen.FlickrLike(scaled(300, 150), 7))
	r := workload.LogDegree(g, 5)

	var stats []storeStats
	storeObserver = func(st storeStats) { stats = append(stats, st) }
	defer func() { storeObserver = nil }()

	ref := Solve(g, r, Config{Workers: 1})
	if err := ref.Validate(); err != nil {
		t.Fatal(err)
	}
	unlimited := stats[0]
	if unlimited.Evictions != 0 || unlimited.Rebuilds != 0 {
		t.Fatalf("unlimited budget spilled: %+v", unlimited)
	}
	budget := unlimited.PeakElems / 8
	if budget < 16 {
		budget = 16
	}
	for _, workers := range []int{1, 4} {
		stats = stats[:0]
		got := Solve(g, r, Config{Workers: workers, InstanceBudget: budget})
		st := stats[0]
		if st.Evictions == 0 || st.Rebuilds == 0 {
			t.Fatalf("budget %d workers %d never spilled: %+v", budget, workers, st)
		}
		if st.PeakElems >= unlimited.PeakElems {
			t.Fatalf("budget %d peak %d not below unlimited peak %d",
				budget, st.PeakElems, unlimited.PeakElems)
		}
		for e := 0; e < g.NumEdges(); e++ {
			ee := graph.EdgeID(e)
			if got.IsPush(ee) != ref.IsPush(ee) ||
				got.IsPull(ee) != ref.IsPull(ee) ||
				got.IsCovered(ee) != ref.IsCovered(ee) {
				t.Fatalf("budget=%d workers=%d schedule differs at edge %d", budget, workers, e)
			}
			if ref.IsCovered(ee) && got.Hub(ee) != ref.Hub(ee) {
				t.Fatalf("budget=%d workers=%d hub differs at edge %d: %d vs %d",
					budget, workers, e, got.Hub(ee), ref.Hub(ee))
			}
		}
		t.Logf("budget=%d workers=%d: builds=%d rebuilds=%d evictions=%d peak=%d (unlimited peak %d)",
			budget, workers, st.Builds, st.Rebuilds, st.Evictions, st.PeakElems, unlimited.PeakElems)
	}
}

// TestInstanceBudgetTinyStillValid drives the store to its degenerate
// extreme — a budget smaller than any single instance, so nearly every
// touch rotates — and checks the solve still terminates with a valid,
// identical schedule.
func TestInstanceBudgetTinyStillValid(t *testing.T) {
	g := graphgen.Social(graphgen.TwitterLike(scaled(200, 100), 3))
	r := workload.LogDegree(g, 5)
	ref := Solve(g, r, Config{Workers: 1})
	got := Solve(g, r, Config{Workers: 1, InstanceBudget: 1})
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	if got.Cost(r) != ref.Cost(r) {
		t.Fatalf("budget=1 cost %v differs from unlimited %v", got.Cost(r), ref.Cost(r))
	}
	for e := 0; e < g.NumEdges(); e++ {
		ee := graph.EdgeID(e)
		if got.IsPush(ee) != ref.IsPush(ee) ||
			got.IsPull(ee) != ref.IsPull(ee) ||
			got.IsCovered(ee) != ref.IsCovered(ee) {
			t.Fatalf("budget=1 schedule differs at edge %d", e)
		}
	}
}
