package experiments

import (
	"context"
	"fmt"
	"time"

	"piggyback/internal/chitchat"
	"piggyback/internal/graph"
	"piggyback/internal/online"
	"piggyback/internal/scenario"
	"piggyback/internal/solver"
	"piggyback/internal/spar"
	"piggyback/internal/workload"
)

// Zoo sweeps the full solver registry across the adversarial workload
// zoo (internal/scenario) on the Flickr-like graph. Region-capable
// solvers run as the online daemon's regional solver over the live
// trace — their row reports the daemon's final cost, cumulative
// re-solve wall and accept/revert counts. Region-incapable solvers
// batch-solve the materialized post-trace graph — the "what if we
// re-solved from scratch afterwards" reference. SPAR's analytic
// replication cost over the materialized graph closes each scenario
// block. Every scheduling improvement gets judged against this table.
func Zoo(sc Scale) *Table {
	t := &Table{
		Title:  "Adversarial workload zoo — solver registry × scenario registry",
		Note:   "daemon rows: final live cost after the trace; batch rows: from-scratch solve of the materialized graph",
		Header: []string{"scenario", "solver", "mode", "cost", "wall", "re-solves", "reverted"},
	}
	ops := sc.ZooOps
	if ops <= 0 {
		ops = 1200
	}
	g, base := sc.flickr()
	reg := sc.registry()
	for _, scen := range scenario.Default.Names() {
		trace, err := scenario.Default.Generate(scen, g, base, scenario.Params{Ops: ops, Seed: sc.Seed})
		if err != nil {
			t.Rows = append(t.Rows, []string{scen, "", "", "error: " + err.Error(), "", "", ""})
			continue
		}
		finalG, finalR, err := scenario.Materialize(g, base, trace)
		if err != nil {
			t.Rows = append(t.Rows, []string{scen, "", "", "error: " + err.Error(), "", "", ""})
			continue
		}
		for _, name := range reg.Names() {
			meta, err := reg.Meta(name)
			if err != nil {
				continue
			}
			sv, err := reg.New(name, solver.Options{Workers: sc.Workers})
			if err != nil {
				continue
			}
			sv = solver.Chain(sv, sc.Middleware...)
			if meta.Regions {
				row, rowErr := zooDaemonRow(g, base, trace, sv, sc.Workers)
				if rowErr != nil {
					t.Rows = append(t.Rows, []string{scen, name, "daemon", "error: " + rowErr.Error(), "", "", ""})
					continue
				}
				t.Rows = append(t.Rows, append([]string{scen, name}, row...))
				continue
			}
			start := time.Now()
			res, err := sv.Solve(context.Background(), solver.Problem{Graph: finalG, Rates: finalR})
			if err != nil {
				t.Rows = append(t.Rows, []string{scen, name, "batch", "error: " + err.Error(), "", "", ""})
				continue
			}
			t.Rows = append(t.Rows, []string{
				scen, name, "batch",
				f1(res.Report.Cost), wallStr(time.Since(start)), "-", "-",
			})
		}
		t.Rows = append(t.Rows, []string{
			scen, "spar", "analytic",
			f1(spar.Cost(finalG, finalR)), "-", "-", "-",
		})
	}
	return t
}

// zooDaemonRow replays one zoo trace through the online daemon with the
// given regional solver and reports (mode, cost, wall, re-solves,
// reverted). The daemon starts from a CHITCHAT schedule of the
// pre-trace graph — the same incumbent every scenario's acceptance test
// uses — and rates are cloned because the daemon mutates them in place.
func zooDaemonRow(g *graph.Graph, base *workload.Rates, trace []workload.ChurnOp, regional solver.Solver, workers int) ([]string, error) {
	r := &workload.Rates{
		Prod: append([]float64(nil), base.Prod...),
		Cons: append([]float64(nil), base.Cons...),
	}
	s := chitchat.Solve(g, r, chitchat.Config{Workers: workers})
	dm, err := online.New(s, r, online.Config{
		Regional:       regional,
		DriftThreshold: 0.05,
		CheckEvery:     8,
		BudgetFraction: -1,
	})
	if err != nil {
		return nil, err
	}
	if err := dm.ApplyTrace(trace); err != nil {
		return nil, err
	}
	if err := dm.Validate(); err != nil {
		return nil, fmt.Errorf("final schedule invalid: %w", err)
	}
	st := dm.Stats()
	return []string{
		"daemon",
		f1(dm.Cost()), wallStr(st.ResolveWall), d(st.Resolves), d(st.Reverted),
	}, nil
}

func wallStr(dur time.Duration) string {
	return dur.Round(time.Millisecond).String()
}
