package graphio

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"math/rand"

	"piggyback/internal/graph"
	"piggyback/internal/graphgen"
)

func sameGraph(t *testing.T, a, b *graph.Graph) {
	t.Helper()
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("size mismatch: %d/%d vs %d/%d",
			a.NumNodes(), a.NumEdges(), b.NumNodes(), b.NumEdges())
	}
	ea, eb := a.EdgeList(), b.EdgeList()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d: %v vs %v", i, ea[i], eb[i])
		}
	}
}

func TestTextRoundTrip(t *testing.T) {
	g := graphgen.Social(graphgen.TwitterLike(100, 1))
	var buf bytes.Buffer
	if err := WriteText(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sameGraph(t, g, got)
}

func TestBinaryRoundTrip(t *testing.T) {
	g := graphgen.Social(graphgen.FlickrLike(100, 2))
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sameGraph(t, g, got)
}

func TestReadTextComments(t *testing.T) {
	in := "# header\n\n3\n# edge block\n0 1\n1 2\n"
	g, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("parsed %d/%d", g.NumNodes(), g.NumEdges())
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []string{
		"",              // empty
		"abc\n",         // bad node count
		"3\n0\n",        // bad edge arity
		"3\n0 x\n",      // bad edge number
		"2\n0 5\n",      // out of range
		"1 2\n0 1\n3 4", // first line must be node count (arity error)
	}
	for _, in := range cases {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Fatalf("input %q parsed without error", in)
		}
	}
}

func TestReadBinaryErrors(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty binary input accepted")
	}
	if _, err := ReadBinary(bytes.NewReader([]byte{1, 2, 3, 4, 0, 0, 0, 0, 0, 0, 0, 0})); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Truncated edge section.
	g := graph.FromEdges(2, []graph.Edge{{From: 0, To: 1}})
	var buf bytes.Buffer
	WriteBinary(&buf, g)
	trunc := buf.Bytes()[:buf.Len()-4]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated binary accepted")
	}
}

func TestEmptyGraphRoundTrip(t *testing.T) {
	g := graph.FromEdges(0, nil)
	var buf bytes.Buffer
	if err := WriteText(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sameGraph(t, g, got)
	buf.Reset()
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err = ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sameGraph(t, g, got)
}

// Property: both formats round-trip random graphs.
func TestQuickRoundTrips(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		g := graphgen.ErdosRenyi(n, rng.Intn(5*n), seed)
		var tb, bb bytes.Buffer
		if WriteText(&tb, g) != nil || WriteBinary(&bb, g) != nil {
			return false
		}
		gt, err1 := ReadText(&tb)
		gb, err2 := ReadBinary(&bb)
		if err1 != nil || err2 != nil {
			return false
		}
		if gt.NumEdges() != g.NumEdges() || gb.NumEdges() != g.NumEdges() {
			return false
		}
		ea, eb, ec := g.EdgeList(), gt.EdgeList(), gb.EdgeList()
		for i := range ea {
			if ea[i] != eb[i] || ea[i] != ec[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
