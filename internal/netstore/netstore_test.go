package netstore

import (
	"net"
	"sync"
	"testing"
	"time"

	"piggyback/internal/baseline"
	"piggyback/internal/core"
	"piggyback/internal/graph"
	"piggyback/internal/graphgen"
	"piggyback/internal/nosy"
	"piggyback/internal/store"
	"piggyback/internal/workload"
)

// startTier launches n servers on ephemeral ports.
func startTier(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		s, err := NewServer("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		addrs[i] = s.Addr()
	}
	return addrs
}

func figure2() (*graph.Graph, *workload.Rates) {
	g := graph.FromEdges(3, []graph.Edge{
		{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 2},
	})
	return g, workload.NewUniform(3, 1)
}

func dial(t *testing.T, s *core.Schedule, addrs []string) *Client {
	t.Helper()
	cl, err := Dial(s, addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

func TestUpdateQueryOverTCP(t *testing.T) {
	g, _ := figure2()
	s := baseline.PushAll(g)
	cl := dial(t, s, startTier(t, 2))
	if err := cl.Update(0, store.Event{User: 0, ID: 1, TS: 10}); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Query(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != 1 || got[0].User != 0 {
		t.Fatalf("Query(2) = %v", got)
	}
}

func TestHubDeliveryOverTCP(t *testing.T) {
	g, r := figure2()
	res := nosy.Solve(g, r, nosy.Config{})
	cross, _ := g.EdgeID(0, 2)
	if !res.Schedule.IsCovered(cross) {
		t.Fatal("precondition: 0→2 should be hub-covered")
	}
	cl := dial(t, res.Schedule, startTier(t, 3))
	if err := cl.Update(0, store.Event{User: 0, ID: 9, TS: 5}); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Query(2)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range got {
		if ev.User == 0 && ev.ID == 9 {
			found = true
		}
	}
	if !found {
		t.Fatalf("hub-piggybacked event missing from %v", got)
	}
}

func TestBoundedStalenessOverTCPAllEdges(t *testing.T) {
	g := graphgen.Social(graphgen.Config{
		Nodes: 40, AvgFollows: 4, TriadProb: 0.6, Reciprocity: 0.4, Seed: 11,
	})
	r := workload.LogDegree(g, 5)
	res := nosy.Solve(g, r, nosy.Config{})
	cl := dial(t, res.Schedule, startTier(t, 4))
	ts := int64(1)
	g.Edges(func(_ graph.EdgeID, u, v graph.NodeID) bool {
		if err := cl.Update(u, store.Event{User: u, ID: ts, TS: ts}); err != nil {
			t.Fatal(err)
		}
		got, err := cl.Query(v)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, ev := range got {
			if ev.User == u && ev.ID == ts {
				found = true
			}
		}
		if !found {
			t.Fatalf("edge %d→%d: event not delivered over TCP", u, v)
		}
		ts++
		return true
	})
}

func TestConcurrentClients(t *testing.T) {
	g := graphgen.Social(graphgen.TwitterLike(100, 3))
	r := workload.LogDegree(g, 5)
	s := baseline.Hybrid(g, r)
	addrs := startTier(t, 3)
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for k := 0; k < 8; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			cl, err := Dial(s, addrs)
			if err != nil {
				errCh <- err
				return
			}
			defer cl.Close()
			for i := 0; i < 50; i++ {
				u := graph.NodeID((k*50 + i) % g.NumNodes())
				if i%5 == 0 {
					if err := cl.Update(u, store.Event{User: u, ID: int64(i), TS: int64(i)}); err != nil {
						errCh <- err
						return
					}
				} else if _, err := cl.Query(u); err != nil {
					errCh <- err
					return
				}
			}
		}(k)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

func TestStreamSizeOverTCP(t *testing.T) {
	g, _ := figure2()
	s := baseline.PushAll(g)
	cl := dial(t, s, startTier(t, 1))
	for i := 0; i < 30; i++ {
		if err := cl.Update(0, store.Event{User: 0, ID: int64(i), TS: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := cl.Query(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != store.StreamSize {
		t.Fatalf("stream size = %d, want %d", len(got), store.StreamSize)
	}
	if got[0].ID != 29 {
		t.Fatalf("newest id = %d, want 29", got[0].ID)
	}
}

func TestDialErrors(t *testing.T) {
	g, r := figure2()
	s := baseline.Hybrid(g, r)
	if _, err := Dial(s, nil); err == nil {
		t.Fatal("Dial with no servers accepted")
	}
	if _, err := Dial(s, []string{"127.0.0.1:1"}); err == nil {
		t.Fatal("Dial to closed port accepted")
	}
}

func TestServerRejectsGarbage(t *testing.T) {
	addrs := startTier(t, 1)
	c, err := net.Dial("tcp", addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// A huge length prefix must make the server drop the connection, not
	// allocate.
	c.Write([]byte{0xff, 0xff, 0xff, 0xff})
	var buf [1]byte
	if _, err := c.Read(buf[:]); err == nil {
		t.Fatal("server replied to oversized frame instead of closing")
	}
}

// Failure handling: killing a data-store server mid-workload must NOT
// fail client operations — updates park in the hinted-handoff buffer,
// queries degrade to the pull-all floor — and everything stays prompt.
func TestServerDeathDegradesGracefully(t *testing.T) {
	g, _ := figure2()
	s := baseline.PushAll(g)
	srvA, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srvB, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srvB.Close()
	addrs := []string{srvA.Addr(), srvB.Addr()}
	cl, err := DialConfigured(s, addrs, DialConfig{
		Timeout: time.Second, BackoffBase: time.Millisecond, BackoffMax: 4 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Workload works while both servers live.
	if err := cl.Update(0, store.Event{User: 0, ID: 1, TS: 1}); err != nil {
		t.Fatal(err)
	}

	srvA.Close()

	// Every user's push set spans both servers here (3 users, 2 servers),
	// so ops now touch a dead server — they must still succeed, promptly.
	done := make(chan error, 1)
	go func() {
		if err := cl.Update(0, store.Event{User: 0, ID: 2, TS: 2}); err != nil {
			done <- err
			return
		}
		for u := graph.NodeID(0); u < 3; u++ {
			if _, qerr := cl.Query(u); qerr != nil {
				done <- qerr
				return
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("operation failed after server death instead of degrading: %v", err)
		}
	case <-time.After(2 * RequestTimeout):
		t.Fatal("request hung after server death")
	}
	st := cl.Stats()
	if st.DownEvents == 0 {
		t.Fatal("dead server was never marked down")
	}
	if st.Parked == 0 {
		t.Fatal("no update was parked in the hinted-handoff buffer")
	}
	if st.DegradedQueries == 0 {
		t.Fatal("no query took the degraded pull-all path")
	}
}

func TestProtocolRoundTrips(t *testing.T) {
	ev := store.Event{User: 42, ID: -7, TS: 1 << 40}
	views := []graph.NodeID{1, 2, 3}
	op, gotEv, _, gotViews, err := decodeRequest(encodeUpdate(ev, views))
	if err != nil || op != opUpdate || gotEv != ev || len(gotViews) != 3 {
		t.Fatalf("update round trip: op=%d ev=%v views=%v err=%v", op, gotEv, gotViews, err)
	}
	var k int
	op, _, k, gotViews, err = decodeRequest(encodeQuery(10, views[:2]))
	if err != nil || op != opQuery || k != 10 || len(gotViews) != 2 {
		t.Fatalf("query round trip: op=%d k=%d views=%v err=%v", op, k, gotViews, err)
	}
	events := []store.Event{ev, {User: 1, ID: 2, TS: 3}}
	got, err := decodeEvents(encodeEvents(events))
	if err != nil || len(got) != 2 || got[0] != ev {
		t.Fatalf("events round trip: %v err=%v", got, err)
	}
	if _, _, _, _, err := decodeRequest(nil); err == nil {
		t.Fatal("empty request accepted")
	}
	if _, _, _, _, err := decodeRequest([]byte{9}); err == nil {
		t.Fatal("unknown op accepted")
	}
	if _, err := decodeEvents([]byte{1}); err == nil {
		t.Fatal("short events body accepted")
	}
}
