package store

import (
	"sync"
	"testing"

	"piggyback/internal/baseline"
	"piggyback/internal/core"
	"piggyback/internal/graph"
	"piggyback/internal/graphgen"
	"piggyback/internal/nosy"
	"piggyback/internal/workload"
)

func figure2() (*graph.Graph, *workload.Rates) {
	g := graph.FromEdges(3, []graph.Edge{
		{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 2},
	})
	return g, workload.NewUniform(3, 1)
}

func newCluster(t *testing.T, s *core.Schedule, servers int) *Cluster {
	t.Helper()
	c, err := NewCluster(s, Options{Servers: servers, ServiceSpins: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestUpdateThenQueryDirectPush(t *testing.T) {
	g, r := figure2()
	s := baseline.PushAll(g)
	_ = r
	c := newCluster(t, s, 2)
	cl := c.NewClient()
	cl.Update(0, Event{User: 0, ID: 1, TS: 100})
	// Node 2 follows 0; with push-all the event is already in 2's view.
	got := cl.Query(2)
	if len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("Query(2) = %v, want the pushed event", got)
	}
	// Node 0's own stream contains its own event.
	own := cl.Query(0)
	if len(own) != 1 || own[0].ID != 1 {
		t.Fatalf("Query(0) = %v, want own event", own)
	}
}

func TestUpdateThenQueryDirectPull(t *testing.T) {
	g, _ := figure2()
	s := baseline.PullAll(g)
	c := newCluster(t, s, 2)
	cl := c.NewClient()
	cl.Update(0, Event{User: 0, ID: 7, TS: 50})
	got := cl.Query(2)
	if len(got) != 1 || got[0].ID != 7 {
		t.Fatalf("Query(2) = %v, want the pulled event", got)
	}
}

// Bounded staleness through a hub (Θ = 2Δ): after the update completes,
// the event is in the hub's view; the next query pulls it from there.
func TestUpdateThenQueryThroughHub(t *testing.T) {
	g, r := figure2()
	res := nosy.Solve(g, r, nosy.Config{})
	cross, _ := g.EdgeID(0, 2)
	if !res.Schedule.IsCovered(cross) {
		t.Fatal("precondition: edge 0→2 should be hub-covered")
	}
	c := newCluster(t, res.Schedule, 3)
	cl := c.NewClient()
	cl.Update(0, Event{User: 0, ID: 9, TS: 10})
	got := cl.Query(2)
	found := false
	for _, ev := range got {
		if ev.User == 0 && ev.ID == 9 {
			found = true
		}
	}
	if !found {
		t.Fatalf("Query(2) = %v, missing hub-piggybacked event", got)
	}
}

// Every schedule that passes Validate must deliver every producer's
// events to every consumer — the prototype-level restatement of
// Theorem 1, checked on a real graph with a real PARALLELNOSY schedule.
func TestBoundedStalenessAllEdges(t *testing.T) {
	g := graphgen.Social(graphgen.Config{
		Nodes: 60, AvgFollows: 5, TriadProb: 0.6, Reciprocity: 0.4, Seed: 3,
	})
	r := workload.LogDegree(g, 5)
	res := nosy.Solve(g, r, nosy.Config{})
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
	c := newCluster(t, res.Schedule, 5)
	cl := c.NewClient()
	ts := int64(1)
	g.Edges(func(e graph.EdgeID, u, v graph.NodeID) bool {
		cl.Update(u, Event{User: u, ID: ts, TS: ts})
		got := cl.Query(v)
		found := false
		for _, ev := range got {
			if ev.User == u && ev.ID == ts {
				found = true
			}
		}
		if !found {
			t.Fatalf("edge %d→%d: event not visible after one round", u, v)
		}
		ts++
		return true
	})
}

func TestStreamSizeFilter(t *testing.T) {
	g, _ := figure2()
	s := baseline.PushAll(g)
	c := newCluster(t, s, 1)
	cl := c.NewClient()
	for i := 0; i < 30; i++ {
		cl.Update(0, Event{User: 0, ID: int64(i), TS: int64(i)})
	}
	got := cl.Query(2)
	if len(got) != StreamSize {
		t.Fatalf("stream has %d events, want %d", len(got), StreamSize)
	}
	// Newest first: ids 29, 28, ...
	for i, ev := range got {
		if ev.ID != int64(29-i) {
			t.Fatalf("stream[%d] = id %d, want %d", i, ev.ID, 29-i)
		}
	}
}

func TestViewCapTrims(t *testing.T) {
	g, _ := figure2()
	s := baseline.PushAll(g)
	c := newCluster(t, s, 1)
	cl := c.NewClient()
	for i := 0; i < ViewCap*3; i++ {
		cl.Update(0, Event{User: 0, ID: int64(i), TS: int64(i)})
	}
	// The query still returns the newest events despite trimming.
	got := cl.Query(2)
	if got[0].ID != int64(ViewCap*3-1) {
		t.Fatalf("newest event id = %d, want %d", got[0].ID, ViewCap*3-1)
	}
}

func TestMessageCounts(t *testing.T) {
	g, r := figure2()
	s := baseline.Hybrid(g, r) // uniform ratio 1: pushes win ties
	c := newCluster(t, s, 64)  // many servers → no accidental batching
	// With hybrid at ratio 1, every edge is a push (ties to push):
	// update by 0 touches views {0,1,2} → usually 3 distinct servers.
	if got := c.MessagesPerUpdate(0); got < 1 || got > 3 {
		t.Fatalf("MessagesPerUpdate(0) = %d", got)
	}
	// Query by 2 touches only its own view.
	if got := c.MessagesPerQuery(2); got != 1 {
		t.Fatalf("MessagesPerQuery(2) = %d, want 1", got)
	}
}

func TestGenerateTraceDistribution(t *testing.T) {
	g := graphgen.Social(graphgen.TwitterLike(200, 1))
	r := workload.LogDegree(g, 5)
	tr := GenerateTrace(r, 20000, 7)
	if len(tr) != 20000 {
		t.Fatalf("trace length %d", len(tr))
	}
	updates := 0
	for _, req := range tr {
		if req.IsUpdate {
			updates++
		}
		if int(req.User) >= g.NumNodes() {
			t.Fatalf("request user %d out of range", req.User)
		}
	}
	// Update fraction should approximate Σrp/(Σrp+Σrc) = 1/(1+5) ≈ 0.167.
	frac := float64(updates) / float64(len(tr))
	if frac < 0.12 || frac > 0.22 {
		t.Fatalf("update fraction = %.3f, want ≈ 1/6", frac)
	}
}

func TestMeasureThroughputRuns(t *testing.T) {
	g := graphgen.Social(graphgen.TwitterLike(150, 2))
	r := workload.LogDegree(g, 5)
	s := nosy.Solve(g, r, nosy.Config{}).Schedule
	c := newCluster(t, s, 8)
	tr := GenerateTrace(r, 2000, 3)
	res := MeasureThroughput(c, tr, 4)
	if res.Requests != 2000 || res.ReqPerSec <= 0 || res.PerClientRate <= 0 {
		t.Fatalf("bad result: %+v", res)
	}
	if res.PerClientRate*float64(res.Clients) != res.ReqPerSec {
		t.Fatalf("per-client rate inconsistent: %+v", res)
	}
	if res.LatencyP50 <= 0 || res.LatencyP50 > res.LatencyP95 || res.LatencyP95 > res.LatencyP99 {
		t.Fatalf("latency percentiles out of order: p50=%v p95=%v p99=%v",
			res.LatencyP50, res.LatencyP95, res.LatencyP99)
	}
}

func TestPredictedMessagesBounds(t *testing.T) {
	g := graphgen.Social(graphgen.TwitterLike(200, 4))
	r := workload.LogDegree(g, 5)
	s := baseline.Hybrid(g, r)
	c := newCluster(t, s, 16)
	pm := PredictedMessages(c, r)
	if pm < 1 {
		t.Fatalf("predicted messages per request = %v, must be >= 1", pm)
	}
}

func TestClusterRejectsZeroServers(t *testing.T) {
	g, r := figure2()
	s := baseline.Hybrid(g, r)
	if _, err := NewCluster(s, Options{Servers: 0}); err == nil {
		t.Fatal("zero servers accepted")
	}
}

func TestMoreServersMoreMessages(t *testing.T) {
	// The Figure 6 mechanism: with more servers, requests touch more
	// distinct servers, so average messages per request rises.
	g := graphgen.Social(graphgen.FlickrLike(300, 5))
	r := workload.LogDegree(g, 5)
	s := baseline.Hybrid(g, r)
	c1 := newCluster(t, s, 1)
	c64 := newCluster(t, s, 64)
	if PredictedMessages(c1, r) >= PredictedMessages(c64, r) {
		t.Fatalf("messages per request should grow with servers: %v vs %v",
			PredictedMessages(c1, r), PredictedMessages(c64, r))
	}
}

// TestSwapSchedule exercises the live schedule swap: requests keep
// flowing (from concurrent clients, for the -race CI run) while the
// plan is replaced, and routing reflects the new schedule afterwards.
func TestSwapSchedule(t *testing.T) {
	g := graphgen.Social(graphgen.FlickrLike(150, 3))
	r := workload.LogDegree(g, 5)
	hybrid := baseline.Hybrid(g, r)
	pn := nosy.Solve(g, r, nosy.Config{}).Schedule
	c := newCluster(t, hybrid, 4)

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		cl := c.NewClient()
		for u := graph.NodeID(0); ; u = (u + 1) % graph.NodeID(g.NumNodes()) {
			select {
			case <-stop:
				return
			default:
			}
			cl.Update(u, Event{User: u, ID: 1, TS: 1})
			cl.Query(u)
		}
	}()
	for i := 0; i < 10; i++ {
		next := hybrid
		if i%2 == 1 {
			next = pn // odd last index: the final plan routes by pn
		}
		if err := c.Swap(next); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	<-done

	// The cluster now routes by pn. A reference cluster built directly
	// on pn (same server count and partition seed → same placement)
	// must agree with the swapped plan for every user, and the plan
	// must actually have moved off the hybrid batches for someone.
	ref := newCluster(t, pn, 4)
	moved := false
	pre := newCluster(t, hybrid, 4)
	for u := 0; u < g.NumNodes(); u++ {
		uid := graph.NodeID(u)
		if got, want := c.MessagesPerQuery(uid), ref.MessagesPerQuery(uid); got != want {
			t.Fatalf("user %d: MessagesPerQuery after swap = %d, want %d (pn plan)", u, got, want)
		}
		if got, want := c.MessagesPerUpdate(uid), ref.MessagesPerUpdate(uid); got != want {
			t.Fatalf("user %d: MessagesPerUpdate after swap = %d, want %d (pn plan)", u, got, want)
		}
		if c.MessagesPerQuery(uid) != pre.MessagesPerQuery(uid) ||
			c.MessagesPerUpdate(uid) != pre.MessagesPerUpdate(uid) {
			moved = true
		}
	}
	if !moved {
		t.Fatal("swapped plan is identical to the hybrid plan for every user; Swap had no observable effect")
	}

	// Swapping a schedule over a different node-id space must fail.
	small := graphgen.Social(graphgen.FlickrLike(50, 3))
	bad := baseline.PushAll(small)
	if err := c.Swap(bad); err == nil {
		t.Fatal("Swap accepted a schedule with a different node count")
	}
}

// TestSwapRacesFaultyServersUnderLoad extends the swap-under-traffic
// test with fault injection: while concurrent clients hammer
// Update/Query, one goroutine keeps swapping the plan and another keeps
// killing servers mid-swap (InjectFault: acked-but-lost writes). Run
// under -race this pins the plan pointer, the per-server fault counter,
// and the request channels against each other; functionally, the
// cluster must stay live and serve writes issued after the chaos ends.
func TestSwapRacesFaultyServersUnderLoad(t *testing.T) {
	g := graphgen.Social(graphgen.FlickrLike(150, 3))
	r := workload.LogDegree(g, 5)
	hybrid := baseline.Hybrid(g, r)
	pn := nosy.Solve(g, r, nosy.Config{}).Schedule
	c := newCluster(t, hybrid, 4)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for k := 0; k < 4; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			cl := c.NewClient()
			u := graph.NodeID(k)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				cl.Update(u, Event{User: u, ID: int64(i), TS: int64(i)})
				cl.Query(u)
				u = (u + 1) % graph.NodeID(g.NumNodes())
			}
		}(k)
	}
	for i := 0; i < 25; i++ {
		next := hybrid
		if i%2 == 1 {
			next = pn
		}
		if err := c.Swap(next); err != nil {
			t.Fatal(err)
		}
		// Kill a server mid-swap: its next writes are acked and lost.
		c.InjectFault(i%c.NumServers(), 3)
	}
	close(stop)
	wg.Wait()

	// The leftover fault budget is bounded (25 swaps × 3 writes), so
	// repeating a write must land within that many attempts — anything
	// more means the cluster wedged rather than merely lost writes.
	cl := c.NewClient()
	for i := 0; ; i++ {
		ev := Event{User: 0, ID: int64(4242 + i), TS: int64(1<<50 + i)}
		cl.Update(0, ev)
		landed := false
		for _, got := range cl.Query(0) {
			if got == ev {
				landed = true
			}
		}
		if landed {
			break
		}
		if i > 25*3 {
			t.Fatal("writes still lost after the injected fault budget was exhausted")
		}
	}
}
