// Package workload models per-user production and consumption rates.
//
// Following §4.1 of the paper: real workload traces were unavailable even
// to the authors, who synthesize rates from the observation (Huberman et
// al.) that users with many followers produce more and users following
// many accounts consume more. Rates are proportional to the logarithm of
// follower / followee counts, scaled so that the ratio of average
// consumption rate to average production rate equals the read/write ratio
// (reference value 5, per Silberstein et al.).
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"piggyback/internal/graph"
)

// DefaultReadWriteRatio is the reference consumption/production ratio from
// the paper (§4.1).
const DefaultReadWriteRatio = 5.0

// Rates holds per-user request rates. Prod[u] is the rate at which u
// shares events; Cons[u] is the rate at which u requests its event stream.
type Rates struct {
	Prod []float64
	Cons []float64
}

// NewUniform returns rates of 1 for production and ratio for consumption
// for every one of n users.
func NewUniform(n int, ratio float64) *Rates {
	r := &Rates{Prod: make([]float64, n), Cons: make([]float64, n)}
	for i := 0; i < n; i++ {
		r.Prod[i] = 1
		r.Cons[i] = ratio
	}
	return r
}

// LogDegree derives rates from g: production ∝ 1 + ln(1 + followers),
// consumption ∝ 1 + ln(1 + followees), then rescales consumption so that
// mean(Cons)/mean(Prod) = readWriteRatio. In our edge convention u → v
// means v subscribes to u, so u's followers are its out-neighbors and u's
// followees its in-neighbors.
func LogDegree(g *graph.Graph, readWriteRatio float64) *Rates {
	n := g.NumNodes()
	r := &Rates{Prod: make([]float64, n), Cons: make([]float64, n)}
	var sumP, sumC float64
	for u := 0; u < n; u++ {
		p := 1 + math.Log(1+float64(g.OutDegree(graph.NodeID(u))))
		c := 1 + math.Log(1+float64(g.InDegree(graph.NodeID(u))))
		r.Prod[u] = p
		r.Cons[u] = c
		sumP += p
		sumC += c
	}
	if n == 0 || sumC == 0 || sumP == 0 {
		return r
	}
	scale := readWriteRatio * sumP / sumC
	for u := range r.Cons {
		r.Cons[u] *= scale
	}
	return r
}

// Zipf derives rates where user activity is Zipf-distributed and
// independent of degree — an alternative to the paper's log-degree model
// for sensitivity analysis: the log-degree model ties activity to
// position in the graph, Zipf breaks that tie while keeping heavy skew.
// s > 1 is the Zipf exponent; consumption is rescaled to the read/write
// ratio as in LogDegree. Deterministic given the seed.
func Zipf(n int, s, readWriteRatio float64, seed int64) *Rates {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, 1000)
	r := &Rates{Prod: make([]float64, n), Cons: make([]float64, n)}
	var sumP, sumC float64
	for u := 0; u < n; u++ {
		r.Prod[u] = 1 + float64(z.Uint64())
		r.Cons[u] = 1 + float64(z.Uint64())
		sumP += r.Prod[u]
		sumC += r.Cons[u]
	}
	if n == 0 || sumC == 0 || sumP == 0 {
		return r
	}
	scale := readWriteRatio * sumP / sumC
	for u := range r.Cons {
		r.Cons[u] *= scale
	}
	return r
}

// WithRatio returns a copy of r with consumption rates rescaled so the
// mean consumption / mean production ratio equals readWriteRatio. Used by
// the Figure 9 sweep, which varies the read/write ratio on fixed graphs.
func (r *Rates) WithRatio(readWriteRatio float64) *Rates {
	out := &Rates{
		Prod: append([]float64(nil), r.Prod...),
		Cons: append([]float64(nil), r.Cons...),
	}
	var sumP, sumC float64
	for i := range r.Prod {
		sumP += r.Prod[i]
		sumC += r.Cons[i]
	}
	if sumC == 0 || sumP == 0 {
		return out
	}
	scale := readWriteRatio * sumP / sumC
	for i := range out.Cons {
		out.Cons[i] *= scale
	}
	return out
}

// Project returns the rates restricted to the given nodes, indexed by
// position: result user i carries the rates of nodes[i]. This is how a
// subgraph re-solve (graph.Induced) sees the global workload — local
// node ids map through the subgraph's Global slice.
func (r *Rates) Project(nodes []graph.NodeID) *Rates {
	out := &Rates{
		Prod: make([]float64, len(nodes)),
		Cons: make([]float64, len(nodes)),
	}
	for i, u := range nodes {
		out.Prod[i] = r.Prod[u]
		out.Cons[i] = r.Cons[u]
	}
	return out
}

// N returns the number of users covered by the rates.
func (r *Rates) N() int { return len(r.Prod) }

// ReadWriteRatio reports mean consumption / mean production.
func (r *Rates) ReadWriteRatio() float64 {
	var sumP, sumC float64
	for i := range r.Prod {
		sumP += r.Prod[i]
		sumC += r.Cons[i]
	}
	if sumP == 0 {
		return 0
	}
	return sumC / sumP
}

// Validate checks the rates are usable for a graph with n nodes: correct
// length, non-negative, finite.
func (r *Rates) Validate(n int) error {
	if len(r.Prod) != n || len(r.Cons) != n {
		return fmt.Errorf("workload: rates cover %d/%d users, graph has %d nodes",
			len(r.Prod), len(r.Cons), n)
	}
	for i := 0; i < n; i++ {
		if r.Prod[i] < 0 || r.Cons[i] < 0 ||
			math.IsNaN(r.Prod[i]) || math.IsNaN(r.Cons[i]) ||
			math.IsInf(r.Prod[i], 0) || math.IsInf(r.Cons[i], 0) {
			return fmt.Errorf("workload: invalid rate for user %d: prod=%v cons=%v",
				i, r.Prod[i], r.Cons[i])
		}
	}
	return nil
}
