package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// SolveRecord is one finished solve as the metrics middleware saw it.
type SolveRecord struct {
	// Wall is the solve's wall-clock duration.
	Wall time.Duration
	// Iterations is the solver-reported iteration count (PARALLELNOSY
	// rounds, CHITCHAT commits, shard count).
	Iterations int
	// Events is the number of progress events observed during the solve
	// — the oracle-call / commit granularity measure for solvers that
	// stream progress; 0 for those that do not.
	Events int64
	// Cost is the finalized schedule cost (NaN for region re-solves,
	// which are priced by their callers).
	Cost float64
	// Canceled marks a solve cut short by its context (the schedule is
	// still the valid best-so-far result).
	Canceled bool
	// Failed marks a solve that produced no schedule at all.
	Failed bool
}

// SolverStats aggregates every recorded solve of one solver.
type SolverStats struct {
	Solves     int
	Failures   int
	Canceled   int
	Iterations int64
	Events     int64
	Wall       time.Duration
	// LastCost is the most recent non-NaN finalized cost.
	LastCost float64
}

// SolverMetrics is the per-solver sink the WithMetrics middleware
// records into. The zero value is ready; all methods are safe for
// concurrent use (portfolio racers record concurrently).
type SolverMetrics struct {
	mu sync.Mutex
	m  map[string]*SolverStats
}

// Record books one finished solve under the solver's name.
func (s *SolverMetrics) Record(solver string, rec SolveRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == nil {
		s.m = map[string]*SolverStats{}
	}
	st := s.m[solver]
	if st == nil {
		st = &SolverStats{LastCost: math.NaN()}
		s.m[solver] = st
	}
	st.Solves++
	if rec.Failed {
		st.Failures++
	}
	if rec.Canceled {
		st.Canceled++
	}
	st.Iterations += int64(rec.Iterations)
	st.Events += rec.Events
	st.Wall += rec.Wall
	if !math.IsNaN(rec.Cost) {
		st.LastCost = rec.Cost
	}
}

// Snapshot returns a copy of the aggregates keyed by solver name.
func (s *SolverMetrics) Snapshot() map[string]SolverStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]SolverStats, len(s.m))
	for n, st := range s.m {
		out[n] = *st
	}
	return out
}

// Names returns the recorded solver names, sorted.
func (s *SolverMetrics) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.m))
	for n := range s.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Table renders the aggregates as an aligned text table, one row per
// solver (sorted by name) — what `cmd/experiments -middleware metrics`
// prints.
func (s *SolverMetrics) Table() string {
	snap := s.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)

	rows := [][]string{{"solver", "solves", "iters", "events", "wall", "last cost", "canceled", "failed"}}
	for _, n := range names {
		st := snap[n]
		cost := "-"
		if !math.IsNaN(st.LastCost) {
			cost = fmt.Sprintf("%.1f", st.LastCost)
		}
		rows = append(rows, []string{
			n,
			fmt.Sprintf("%d", st.Solves),
			fmt.Sprintf("%d", st.Iterations),
			fmt.Sprintf("%d", st.Events),
			st.Wall.Round(time.Millisecond).String(),
			cost,
			fmt.Sprintf("%d", st.Canceled),
			fmt.Sprintf("%d", st.Failures),
		})
	}
	width := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	for ri, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], cell)
		}
		b.WriteByte('\n')
		if ri == 0 {
			for i, w := range width {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", w))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
