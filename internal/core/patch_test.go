package core

import (
	"testing"

	"piggyback/internal/graph"
	"piggyback/internal/workload"
)

// patchFixture: 0→1 (push support), 1→2 (pull support), 0→2 covered
// through 1, plus an exterior tail 3→0.
func patchFixture(t *testing.T) (*graph.Graph, *workload.Rates, *Schedule) {
	t.Helper()
	g := graph.FromEdges(4, []graph.Edge{
		{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 2}, {From: 3, To: 0},
	})
	r := workload.NewUniform(4, 1)
	s := NewSchedule(g)
	up, _ := g.EdgeID(0, 1)
	down, _ := g.EdgeID(1, 2)
	cov, _ := g.EdgeID(0, 2)
	tail, _ := g.EdgeID(3, 0)
	s.SetPush(up)
	s.SetPull(down)
	s.SetCovered(cov, 1)
	s.SetPush(tail)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return g, r, s
}

func TestFinalizeEdgesRestricted(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{From: 0, To: 1}, {From: 1, To: 2}})
	r := workload.NewUniform(3, 2) // push cheaper
	s := NewSchedule(g)
	e0, _ := g.EdgeID(0, 1)
	e1, _ := g.EdgeID(1, 2)
	s.FinalizeEdges(r, []graph.EdgeID{e0})
	if !s.IsPush(e0) {
		t.Fatal("restricted edge not finalized")
	}
	if s.IsScheduled(e1) {
		t.Fatal("edge outside the set was finalized")
	}
}

func TestApplyPatchSplicesAndRemapsHubs(t *testing.T) {
	g, r, s := patchFixture(t)
	// Region = {0, 1, 2}; re-solve flips the region to all-direct pushes.
	sub := graph.Induced(g, []graph.NodeID{0, 1, 2})
	patch := NewSchedule(sub.G)
	sub.G.Edges(func(e graph.EdgeID, u, v graph.NodeID) bool {
		patch.SetPush(e)
		return true
	})
	if err := patch.Validate(); err != nil {
		t.Fatal(err)
	}
	repairs, err := ApplyPatch(s, sub, patch, r)
	if err != nil {
		t.Fatal(err)
	}
	if repairs != 0 {
		t.Fatalf("repairs = %d, want 0 (no exterior coverage crossed)", repairs)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("spliced schedule invalid: %v", err)
	}
	cov, _ := g.EdgeID(0, 2)
	if s.IsCovered(cov) {
		t.Fatal("patch should have replaced coverage with a direct push")
	}
	tail, _ := g.EdgeID(3, 0)
	if !s.IsPush(tail) {
		t.Fatal("exterior edge lost its assignment")
	}
}

func TestApplyPatchKeepsCoverageAndRemapsHubNode(t *testing.T) {
	g, r, s := patchFixture(t)
	sub := graph.Induced(g, []graph.NodeID{0, 1, 2})
	// Patch reproduces the hub structure: push 0→1, pull 1→2, cover 0→2
	// through local node of 1.
	l1, _ := sub.Local(1)
	patch := NewSchedule(sub.G)
	pup, _ := sub.G.EdgeID(mustLocal(t, sub, 0), l1)
	pdown, _ := sub.G.EdgeID(l1, mustLocal(t, sub, 2))
	pcov, _ := sub.G.EdgeID(mustLocal(t, sub, 0), mustLocal(t, sub, 2))
	patch.SetPush(pup)
	patch.SetPull(pdown)
	patch.SetCovered(pcov, l1)
	if err := patch.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := ApplyPatch(s, sub, patch, r); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	cov, _ := g.EdgeID(0, 2)
	if !s.IsCovered(cov) || s.Hub(cov) != 1 {
		t.Fatalf("coverage not remapped: covered=%v hub=%d", s.IsCovered(cov), s.Hub(cov))
	}
}

// The boundary case the splice-validity argument hinges on: an exterior
// edge covered through a hub whose support lies INSIDE the region. The
// patch drops the support's flag; RepairCoverage must restore it.
func TestApplyPatchRepairsBoundarySupports(t *testing.T) {
	// 0→1 (push), 1→2 (pull), 0→2 covered via 1. Region = {1, 2} contains
	// the pull support 1→2 but not the covered edge 0→2.
	g := graph.FromEdges(3, []graph.Edge{
		{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 2},
	})
	r := workload.NewUniform(3, 1)
	s := NewSchedule(g)
	up, _ := g.EdgeID(0, 1)
	down, _ := g.EdgeID(1, 2)
	cov, _ := g.EdgeID(0, 2)
	s.SetPush(up)
	s.SetPull(down)
	s.SetCovered(cov, 1)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}

	sub := graph.Induced(g, []graph.NodeID{1, 2})
	patch := NewSchedule(sub.G)
	pe, _ := sub.G.EdgeID(mustLocal(t, sub, 1), mustLocal(t, sub, 2))
	patch.SetPush(pe) // region re-solve turns the pull into a push
	if err := patch.Validate(); err != nil {
		t.Fatal(err)
	}

	repairs, err := ApplyPatch(s, sub, patch, r)
	if err != nil {
		t.Fatal(err)
	}
	if repairs == 0 {
		t.Fatal("expected a boundary repair")
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("after repair: %v", err)
	}
	if !s.IsPull(down) {
		t.Fatal("support pull 1→2 not restored")
	}
	if !s.IsPush(down) {
		t.Fatal("patch push on 1→2 should survive the repair")
	}
}

func TestRepairCoverageFallsBackWhenSupportMissing(t *testing.T) {
	// Covered edge whose hub support edge does not exist in the graph:
	// repair must re-serve it directly.
	g := graph.FromEdges(3, []graph.Edge{{From: 0, To: 2}, {From: 1, To: 2}})
	r := workload.NewUniform(3, 1)
	s := NewSchedule(g)
	cov, _ := g.EdgeID(0, 2)
	s.SetCovered(cov, 1) // support 0→1 missing
	if n := RepairCoverage(s, r); n != 1 {
		t.Fatalf("repairs = %d, want 1", n)
	}
	if s.IsCovered(cov) || !s.IsScheduled(cov) {
		t.Fatal("unrepairable coverage should become direct service")
	}
}

func mustLocal(t *testing.T, sub *graph.Subgraph, u graph.NodeID) graph.NodeID {
	t.Helper()
	l, ok := sub.Local(u)
	if !ok {
		t.Fatalf("node %d not in subgraph", u)
	}
	return l
}
