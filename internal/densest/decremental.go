// Decremental densest-subgraph oracle: the instance is materialized once
// (CSR adjacency + weights) and then maintained under the two mutations
// CHITCHAT's greedy loop actually performs — element removal (a covered
// edge leaves the ground set) and node-weight zeroing (a support push or
// pull got paid). Solving re-peels only the live sub-instance over the
// materialized layout, skipping the per-evaluation instance rebuild that
// dominated fresh Peel calls.
package densest

// Decremental is a peeling oracle over a materialized instance that
// supports deleting elements and zeroing node weights in O(1), with
// solves over the remaining live sub-instance. Solve is a pure read of
// the maintained state (all mutable peel state lives in the Scratch), so
// concurrent Solve calls with distinct scratches are safe; RemoveEdge and
// ZeroWeight must not run concurrently with anything else.
type Decremental struct {
	n      int
	weight []float64  // current node weights (zeroed as costs are paid)
	edges  [][2]int32 // all materialized edges, dead ones included
	off    []int32    // CSR offsets, len n+1
	adj    []int32    // incident edge indices, len 2*len(edges)
	deg    []int32    // live degree per node
	alive  []bool     // per materialized edge: element still present
	live   int        // number of live edges
}

// NewDecremental materializes inst. The instance data is copied; later
// changes to inst do not affect the oracle.
func NewDecremental(inst Instance) *Decremental {
	n := inst.N
	m := len(inst.Edges)
	d := &Decremental{
		n:      n,
		weight: append([]float64(nil), inst.Weight[:n]...),
		edges:  append([][2]int32(nil), inst.Edges...),
		off:    make([]int32, n+1),
		deg:    make([]int32, n),
		alive:  make([]bool, m),
		live:   m,
	}
	for _, e := range d.edges {
		d.deg[e[0]]++
		d.deg[e[1]]++
	}
	var cur []int32
	buildCSR(d.deg, d.edges, d.off, &d.adj, &cur)
	for i := range d.alive {
		d.alive[i] = true
	}
	return d
}

// N returns the number of instance nodes.
func (d *Decremental) N() int { return d.n }

// NumEdges returns the number of materialized edges (live or not).
func (d *Decremental) NumEdges() int { return len(d.edges) }

// AliveEdges returns the number of live elements.
func (d *Decremental) AliveEdges() int { return d.live }

// Edge returns the endpoints of materialized edge ei.
func (d *Decremental) Edge(ei int) (a, b int32) {
	return d.edges[ei][0], d.edges[ei][1]
}

// EdgeAlive reports whether element ei is still present.
func (d *Decremental) EdgeAlive(ei int) bool { return d.alive[ei] }

// IncidentEdges returns the materialized edge indices incident to node u
// (live or not — check EdgeAlive). The slice aliases internal storage and
// must not be modified.
func (d *Decremental) IncidentEdges(u int) []int32 {
	return d.adj[d.off[u]:d.off[u+1]]
}

// Weight returns the current weight of node u.
func (d *Decremental) Weight(u int) float64 { return d.weight[u] }

// RemoveEdge deletes element ei from the ground set. Removing an already
// dead element is a no-op; it reports whether the element was live.
func (d *Decremental) RemoveEdge(ei int) bool {
	if !d.alive[ei] {
		return false
	}
	d.alive[ei] = false
	d.deg[d.edges[ei][0]]--
	d.deg[d.edges[ei][1]]--
	d.live--
	return true
}

// ZeroWeight sets node u's weight to zero — the greedy step that selected
// u already pays its support cost, so u is free for every later solve.
func (d *Decremental) ZeroWeight(u int) { d.weight[u] = 0 }

// Solve peels the live sub-instance and returns the densest intermediate
// subgraph, exactly as Peel would on a freshly built instance holding
// only the live edges and current weights (same members, same density).
// It reads but never writes the maintained state; all working arrays come
// from sc, so concurrent solves with distinct scratches are safe.
func (d *Decremental) Solve(sc *Scratch) Result {
	if sc == nil {
		sc = &Scratch{}
	}
	if d.n == 0 {
		return Result{}
	}
	deg := grow(sc.deg, d.n)
	sc.deg = deg
	copy(deg, d.deg)
	edgeAlive := grow(sc.edges, len(d.edges))
	sc.edges = edgeAlive
	copy(edgeAlive, d.alive)
	return peelLoop(d.n, d.weight, d.edges, d.off, d.adj, deg, edgeAlive, d.live, sc)
}

// LiveInstance appends the live edges to buf and returns an Instance view
// of the current state (weights alias the oracle; treat as read-only).
// Used by callers that need to hand the live sub-instance to a different
// oracle, e.g. the exact brute-force reference.
func (d *Decremental) LiveInstance(buf [][2]int32) (Instance, [][2]int32) {
	buf = buf[:0]
	for ei, e := range d.edges {
		if d.alive[ei] {
			buf = append(buf, e)
		}
	}
	return Instance{N: d.n, Weight: d.weight, Edges: buf}, buf
}
