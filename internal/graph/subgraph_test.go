package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

func subTestGraph() *Graph {
	// 0→1, 0→2, 1→2, 2→3, 3→0, 1→4, 4→2
	return FromEdges(5, []Edge{
		{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 0}, {1, 4}, {4, 2},
	})
}

func TestInducedRemapsIDs(t *testing.T) {
	g := subTestGraph()
	sub := Induced(g, []NodeID{2, 0, 1, 0}) // dup + unsorted on purpose
	if got := sub.NumNodes(); got != 3 {
		t.Fatalf("NumNodes = %d, want 3", got)
	}
	if !reflect.DeepEqual(sub.Global, []NodeID{0, 1, 2}) {
		t.Fatalf("Global = %v", sub.Global)
	}
	// Induced edges among {0,1,2}: 0→1, 0→2, 1→2.
	if got := sub.G.NumEdges(); got != 3 {
		t.Fatalf("NumEdges = %d, want 3", got)
	}
	for _, e := range sub.G.EdgeList() {
		gu, gv := sub.Global[e.From], sub.Global[e.To]
		if !g.HasEdge(gu, gv) {
			t.Fatalf("subgraph edge %v maps to missing parent edge %d→%d", e, gu, gv)
		}
	}
	if l, ok := sub.Local(2); !ok || l != 2 {
		t.Fatalf("Local(2) = %d,%v", l, ok)
	}
	if _, ok := sub.Local(3); ok {
		t.Fatal("Local(3) should be absent")
	}
}

func TestInducedFromEdgesMatchesInduced(t *testing.T) {
	g := subTestGraph()
	nodes := []NodeID{0, 1, 2, 4}
	a := Induced(g, nodes)
	b := InducedFromEdges(nodes, g.EdgeList())
	if !reflect.DeepEqual(a.Global, b.Global) {
		t.Fatalf("Global mismatch: %v vs %v", a.Global, b.Global)
	}
	if !reflect.DeepEqual(a.G.EdgeList(), b.G.EdgeList()) {
		t.Fatalf("edge mismatch: %v vs %v", a.G.EdgeList(), b.G.EdgeList())
	}
}

func TestInducedEdgeIDs(t *testing.T) {
	g := subTestGraph()
	ids := InducedEdgeIDs(g, []NodeID{0, 1, 2})
	want := []EdgeID{}
	g.Edges(func(e EdgeID, u, v NodeID) bool {
		if u <= 2 && v <= 2 {
			want = append(want, e)
		}
		return true
	})
	if !reflect.DeepEqual(ids, want) {
		t.Fatalf("InducedEdgeIDs = %v, want %v", ids, want)
	}
}

func TestKHopUndirected(t *testing.T) {
	g := subTestGraph()
	// 1 hop of {3}: out 3→0, in 2→3 → {0, 2, 3}.
	got := KHop(g, []NodeID{3}, 1, 0)
	if !reflect.DeepEqual(got, []NodeID{0, 2, 3}) {
		t.Fatalf("KHop(3,1) = %v", got)
	}
	// 2 hops reach everything in this graph.
	got = KHop(g, []NodeID{3}, 2, 0)
	if !reflect.DeepEqual(got, []NodeID{0, 1, 2, 3, 4}) {
		t.Fatalf("KHop(3,2) = %v", got)
	}
	// 0 hops: seeds only.
	got = KHop(g, []NodeID{4, 1, 4}, 0, 0)
	if !reflect.DeepEqual(got, []NodeID{1, 4}) {
		t.Fatalf("KHop(seeds,0) = %v", got)
	}
}

func TestKHopCapDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	b := NewBuilder(60)
	for i := 0; i < 300; i++ {
		u := NodeID(rng.Intn(60))
		v := NodeID(rng.Intn(60))
		if u != v {
			b.AddEdge(u, v)
		}
	}
	g := b.Build()
	a := KHop(g, []NodeID{5}, 3, 20)
	c := KHop(g, []NodeID{5}, 3, 20)
	if !reflect.DeepEqual(a, c) {
		t.Fatalf("capped KHop not deterministic: %v vs %v", a, c)
	}
	if len(a) > 20 {
		t.Fatalf("cap violated: %d nodes", len(a))
	}
	uncapped := KHop(g, []NodeID{5}, 3, 0)
	if len(uncapped) < len(a) {
		t.Fatal("uncapped smaller than capped")
	}
}
