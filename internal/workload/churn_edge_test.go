// Edge cases the zoo exposed: zero-rate users, remove-then-re-add of
// the same edge, and empty-input determinism.

package workload

import (
	"math"
	"reflect"
	"testing"

	"piggyback/internal/graph"
)

func TestGenerateChurnZeroRateNodes(t *testing.T) {
	g := graph.FromEdges(6, []graph.Edge{
		{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 3},
		{From: 3, To: 4}, {From: 4, To: 5}, {From: 5, To: 0},
	})
	r := &Rates{Prod: make([]float64, 6), Cons: make([]float64, 6)}
	ops := GenerateChurn(g, r, 400, ChurnConfig{Seed: 3})
	if len(ops) != 400 {
		t.Fatalf("emitted %d ops, want 400", len(ops))
	}
	sawRates := false
	for i, op := range ops {
		if op.Kind != OpRates {
			continue
		}
		sawRates = true
		// Multiplicative scaling of a zero rate must stay exactly zero —
		// never NaN, never negative, never spontaneously positive.
		if op.Prod != 0 || op.Cons != 0 {
			t.Fatalf("op %d: zero-rate user scaled to prod=%v cons=%v", i, op.Prod, op.Cons)
		}
		if math.IsNaN(op.Prod) || math.IsNaN(op.Cons) {
			t.Fatalf("op %d: NaN rates", i)
		}
	}
	if !sawRates {
		t.Fatal("trace contains no rate updates to check")
	}
}

func TestGenerateChurnRemoveThenReAdd(t *testing.T) {
	g := graph.FromEdges(8, []graph.Edge{
		{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 2},
		{From: 2, To: 3}, {From: 3, To: 0},
	})
	r := &Rates{
		Prod: []float64{1, 1, 1, 1, 1, 1, 1, 1},
		Cons: []float64{1, 1, 1, 1, 1, 1, 1, 1},
	}
	// A small dense-ish graph with heavy churn makes remove→re-add of
	// the same edge near-certain over a long trace.
	ops := GenerateChurn(g, r, 3000, ChurnConfig{Seed: 5, AddFraction: 0.45, RemoveFraction: 0.45})

	live := map[graph.Edge]bool{}
	for _, e := range g.EdgeList() {
		live[e] = true
	}
	removed := map[graph.Edge]bool{}
	reAdds := 0
	for i, op := range ops {
		e := graph.Edge{From: op.U, To: op.V}
		switch op.Kind {
		case OpAdd:
			if live[e] {
				t.Fatalf("op %d: duplicate add %d→%d", i, op.U, op.V)
			}
			if removed[e] {
				reAdds++
			}
			live[e] = true
		case OpRemove:
			if !live[e] {
				t.Fatalf("op %d: remove of absent edge %d→%d", i, op.U, op.V)
			}
			delete(live, e)
			removed[e] = true
		}
	}
	if reAdds == 0 {
		t.Fatal("trace never re-added a previously removed edge; the edge-case path is untested")
	}
}

func TestGenerateChurnEmptyInputsDeterministic(t *testing.T) {
	// Zero-length request: empty stream, not nil-pointer surprises.
	g := graph.FromEdges(4, []graph.Edge{{From: 0, To: 1}})
	r := &Rates{Prod: make([]float64, 4), Cons: make([]float64, 4)}
	if ops := GenerateChurn(g, r, 0, ChurnConfig{Seed: 1}); len(ops) != 0 {
		t.Fatalf("n=0 emitted %d ops", len(ops))
	}

	// Edgeless graph: removals have nothing to draw and must be skipped,
	// not emitted; the stream still reaches full length and is
	// byte-identical for the same seed.
	empty := graph.FromEdges(5, nil)
	er := &Rates{Prod: make([]float64, 5), Cons: make([]float64, 5)}
	a := GenerateChurn(empty, er, 200, ChurnConfig{Seed: 9})
	b := GenerateChurn(empty, er, 200, ChurnConfig{Seed: 9})
	if len(a) != 200 {
		t.Fatalf("edgeless graph emitted %d ops, want 200", len(a))
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different op streams on an edgeless graph")
	}
	c := GenerateChurn(empty, er, 200, ChurnConfig{Seed: 10})
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical op streams")
	}
	// And the stream must never remove an edge that does not exist: the
	// first op touching any edge must be its add.
	live := map[graph.Edge]bool{}
	for i, op := range a {
		e := graph.Edge{From: op.U, To: op.V}
		switch op.Kind {
		case OpAdd:
			if live[e] {
				t.Fatalf("op %d: duplicate add", i)
			}
			live[e] = true
		case OpRemove:
			if !live[e] {
				t.Fatalf("op %d: remove of absent edge on edgeless start", i)
			}
			delete(live, e)
		}
	}
}
