// Quickstart: generate a social graph and run EVERY registered solver
// on it through the Solver API — one code path, live progress, and a
// wall-clock budget that still yields a valid schedule when it fires.
package main

import (
	"context"
	"errors"
	"fmt"
	"time"

	"piggyback"
)

func main() {
	// A Twitter-shaped graph with 2 000 users and the paper's reference
	// read/write ratio of 5.
	g := piggyback.TwitterLikeGraph(2000, 42)
	r := piggyback.LogDegreeRates(g, 5)
	fmt.Printf("graph: %d users, %d follow edges\n", g.NumNodes(), g.NumEdges())
	fmt.Printf("registered solvers: %v\n\n", piggyback.Solvers())

	// Every solve gets a generous deadline; if it fired, the result is
	// still a valid best-so-far schedule (anytime semantics).
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	hybridCost := piggyback.HybridCost(g, r)
	fmt.Printf("%-10s %12s %8s %8s %8s %8s  %s\n",
		"solver", "cost", "vs-FF", "pushes", "pulls", "hubs", "iterations")
	for _, name := range piggyback.Solvers() {
		sv, err := piggyback.NewSolver(name, piggyback.Options{})
		if err != nil {
			panic(err)
		}
		res, err := sv.Solve(ctx, piggyback.Problem{Graph: g, Rates: r})
		if err != nil && !errors.Is(err, context.DeadlineExceeded) {
			panic(err)
		}
		if err := res.Schedule.Validate(); err != nil {
			panic(err) // every schedule must satisfy bounded staleness
		}
		c := res.Schedule.Counts()
		note := ""
		if res.Report.Canceled {
			note = " (deadline hit — best-so-far)"
		}
		fmt.Printf("%-10s %12.1f %8.3f %8d %8d %8d  %d%s\n",
			name, res.Report.Cost, hybridCost/res.Report.Cost,
			c.Push, c.Pull, c.Covered, res.Report.Iterations, note)
	}
}
