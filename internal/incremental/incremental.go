// Package incremental maintains a request schedule under graph updates
// (§3.3). Added edges are covered through an existing hub when one is
// already paid for (the O(degree) membership check), and served directly
// with the cheaper of push and pull otherwise; when a support edge of a
// hub is removed, every edge covered through that support is re-served
// directly. Rate updates reprice the affected assignments in place.
//
// The maintainer keeps a RUNNING cost — every mutation adjusts it by its
// exact delta, so Cost() is O(1) and an online scheduler can track drift
// per operation. Patching is still greedy and quality drifts away from
// the CHITCHAT/NOSY optimum over time; package online watches that drift
// and wins it back with localized re-solves, using Rebase to materialize
// the live graph and schedule.
//
// Edge identity: base edges keep their graph.EdgeID; edges added beyond
// the base graph live in an extra table and are addressed by the unified
// id NumEdges()+index, so the support-dependency index can reference
// both kinds. Coverage supports are always base edges (the membership
// check only considers them), which keeps hub lookups on the immutable
// CSR structure.
package incremental

import (
	"fmt"
	"math"

	"piggyback/internal/bitset"
	"piggyback/internal/core"
	"piggyback/internal/graph"
	"piggyback/internal/workload"
)

// Maintainer wraps an optimized schedule over a base graph and applies
// edge additions/removals and rate updates without re-optimizing.
type Maintainer struct {
	g     *graph.Graph
	sched *core.Schedule
	r     *workload.Rates

	removed *bitset.Set // removed base edges
	// deps[e] lists covered edges (unified ids) whose hub relies on base
	// support edge e (the push x → w or the pull w → y realizing the hub).
	deps map[graph.EdgeID][]graph.EdgeID

	extra      []extraEdge
	extraIndex map[graph.Edge]int
	// extraOut/extraIn index extra-edge slots by endpoint so rate
	// updates reprice in O(degree) instead of scanning every extra edge
	// ever added. Entries persist across removal/revival (the slot does
	// too); scans skip removed slots.
	extraOut  map[graph.NodeID][]int32
	extraIn   map[graph.NodeID][]int32
	liveExtra int

	cost    float64 // running schedule cost, maintained per mutation
	covered int     // live covered edges (base + extra)

	// OnRescue, when set, is called for every covered edge re-served
	// directly because a hub support disappeared — u → v is the rescued
	// edge and cost the direct-service cost it now pays. The online
	// drift tracker charges exactly this mass to the region.
	OnRescue func(u, v graph.NodeID, cost float64)
}

// extraEdge is an edge added beyond the base graph: served directly
// (push or pull flag) or covered through hub (coverage supports are base
// edges).
type extraEdge struct {
	edge    graph.Edge
	flags   core.Flag
	hub     graph.NodeID
	removed bool
}

// New builds a maintainer over an already-optimized schedule. The
// schedule is cloned; the original is not modified. The rates are
// retained (not copied): UpdateRates mutates them in place.
func New(s *core.Schedule, r *workload.Rates) *Maintainer {
	g := s.Graph()
	m := &Maintainer{
		g:          g,
		sched:      s.Clone(),
		r:          r,
		removed:    bitset.New(g.NumEdges()),
		deps:       make(map[graph.EdgeID][]graph.EdgeID),
		extraIndex: make(map[graph.Edge]int),
		extraOut:   make(map[graph.NodeID][]int32),
		extraIn:    make(map[graph.NodeID][]int32),
	}
	g.Edges(func(e graph.EdgeID, u, v graph.NodeID) bool {
		if m.sched.IsPush(e) {
			m.cost += r.Prod[u]
		}
		if m.sched.IsPull(e) {
			m.cost += r.Cons[v]
		}
		if !m.sched.IsCovered(e) {
			return true
		}
		m.covered++
		w := m.sched.Hub(e)
		if up, ok := g.EdgeID(u, w); ok {
			m.deps[up] = append(m.deps[up], e)
		}
		if down, ok := g.EdgeID(w, v); ok {
			m.deps[down] = append(m.deps[down], e)
		}
		return true
	})
	return m
}

// baseM returns the unified-id boundary: ids below it are base edges.
func (m *Maintainer) baseM() graph.EdgeID { return graph.EdgeID(m.g.NumEdges()) }

// endpoints returns the endpoints of a unified edge id.
func (m *Maintainer) endpoints(d graph.EdgeID) (u, v graph.NodeID) {
	if d < m.baseM() {
		return m.g.EdgeSource(d), m.g.EdgeTarget(d)
	}
	x := m.extra[d-m.baseM()].edge
	return x.From, x.To
}

// coveredHub returns the hub of a covered unified edge, or -1.
func (m *Maintainer) coveredHub(d graph.EdgeID) graph.NodeID {
	if d < m.baseM() {
		if !m.sched.IsCovered(d) {
			return -1
		}
		return m.sched.Hub(d)
	}
	x := &m.extra[d-m.baseM()]
	if x.flags&core.FlagCovered == 0 {
		return -1
	}
	return x.hub
}

// hasDirectFlag reports whether a unified edge id already carries a
// push or pull mark (a covered edge that is also a hub support, say) —
// such an edge is served even without its coverage.
func (m *Maintainer) hasDirectFlag(d graph.EdgeID) bool {
	if d < m.baseM() {
		return m.sched.IsPush(d) || m.sched.IsPull(d)
	}
	return m.extra[d-m.baseM()].flags&(core.FlagPush|core.FlagPull) != 0
}

// isLive reports whether a unified edge id refers to a live edge.
func (m *Maintainer) isLive(d graph.EdgeID) bool {
	if d < m.baseM() {
		return !m.removed.Test(int(d))
	}
	return !m.extra[d-m.baseM()].removed
}

// NumEdges returns the number of live edges (base minus removed plus
// live additions).
func (m *Maintainer) NumEdges() int {
	return m.g.NumEdges() - m.removed.Count() + m.liveExtra
}

// CoveredCount returns the number of live covered edges — the quantity
// that bounds the support-dependency index (each covered edge appears in
// at most two dep lists).
func (m *Maintainer) CoveredCount() int { return m.covered }

// findHub looks for an existing hub already able to cover u → v for
// free: a node w with a live base push edge u → w and a live base pull
// edge w → v. It scans the smaller of u's out-neighborhood and v's
// in-neighborhood — O(degree) with an O(log degree) opposite-side lookup
// per candidate — and returns the lowest such w, so the choice is
// deterministic. Extra (non-base) support edges are not considered:
// coverage supports stay on the immutable CSR structure.
func (m *Maintainer) findHub(u, v graph.NodeID) (w graph.NodeID, up, down graph.EdgeID, ok bool) {
	if m.g.OutDegree(u) <= m.g.InDegree(v) {
		lo, hi := m.g.OutEdgeRange(u)
		targets := m.g.OutNeighbors(u)
		for e := lo; e < hi; e++ {
			cand := targets[e-lo]
			if cand == v || m.removed.Test(int(e)) || !m.sched.IsPush(e) {
				continue
			}
			de, found := m.g.EdgeID(cand, v)
			if found && !m.removed.Test(int(de)) && m.sched.IsPull(de) {
				return cand, e, de, true
			}
		}
		return 0, 0, 0, false
	}
	ids := m.g.InEdgeIDs(v)
	for i, cand := range m.g.InNeighbors(v) {
		e := ids[i]
		if cand == u || m.removed.Test(int(e)) || !m.sched.IsPull(e) {
			continue
		}
		ue, found := m.g.EdgeID(u, cand)
		if found && !m.removed.Test(int(ue)) && m.sched.IsPush(ue) {
			return cand, ue, e, true
		}
	}
	return 0, 0, 0, false
}

// cover records coverage of unified edge d (endpoints u → v) through hub
// w with base supports up/down, registering the dependency entries so a
// later support removal rescues d.
func (m *Maintainer) cover(d graph.EdgeID, w graph.NodeID, up, down graph.EdgeID) {
	if d < m.baseM() {
		m.sched.SetCovered(d, w)
	} else {
		x := &m.extra[d-m.baseM()]
		x.flags = core.FlagCovered
		x.hub = w
	}
	m.deps[up] = append(m.deps[up], d)
	m.deps[down] = append(m.deps[down], d)
	m.covered++
}

// serveDirect serves unified edge d with the cheaper of push and pull
// and returns the cost it added.
func (m *Maintainer) serveDirect(d graph.EdgeID, u, v graph.NodeID) float64 {
	if m.r.Prod[u] <= m.r.Cons[v] {
		if d < m.baseM() {
			m.sched.SetPush(d)
		} else {
			m.extra[d-m.baseM()].flags = core.FlagPush
		}
		return m.r.Prod[u]
	}
	if d < m.baseM() {
		m.sched.SetPull(d)
	} else {
		m.extra[d-m.baseM()].flags = core.FlagPull
	}
	return m.r.Cons[v]
}

// serveNew assigns a newly live unified edge d = u → v: free hub coverage
// through an already-paid hub when one exists (§3.3 extended by the
// membership check), direct service otherwise. Updates the running cost.
func (m *Maintainer) serveNew(d graph.EdgeID, u, v graph.NodeID) {
	if w, up, down, ok := m.findHub(u, v); ok {
		m.cover(d, w, up, down)
		return
	}
	m.cost += m.serveDirect(d, u, v)
}

// AddEdge inserts the edge u → v. If an existing hub already has a paid
// push u → w and pull w → v, the edge is covered through it at zero
// marginal cost; otherwise it is served directly with the cheaper of
// push and pull (§3.3). Re-adding a removed edge revives it. Adding an
// existing live edge is an error.
func (m *Maintainer) AddEdge(u, v graph.NodeID) error {
	if u == v {
		return fmt.Errorf("incremental: self-loop %d→%d", u, v)
	}
	if int(u) >= m.g.NumNodes() || int(v) >= m.g.NumNodes() || u < 0 || v < 0 {
		return fmt.Errorf("incremental: edge %d→%d out of range", u, v)
	}
	if e, ok := m.g.EdgeID(u, v); ok {
		if !m.removed.Test(int(e)) {
			return fmt.Errorf("incremental: edge %d→%d already present", u, v)
		}
		// Revive the base edge in place.
		m.removed.Clear(int(e))
		m.sched.ClearEdge(e)
		m.serveNew(e, u, v)
		return nil
	}
	key := graph.Edge{From: u, To: v}
	if i, ok := m.extraIndex[key]; ok {
		if !m.extra[i].removed {
			return fmt.Errorf("incremental: edge %d→%d already added", u, v)
		}
		m.extra[i].removed = false
		m.extra[i].flags = 0
		m.extra[i].hub = -1
		m.liveExtra++
		m.serveNew(m.baseM()+graph.EdgeID(i), u, v)
		return nil
	}
	m.extra = append(m.extra, extraEdge{edge: key, hub: -1})
	i := len(m.extra) - 1
	m.extraIndex[key] = i
	m.extraOut[u] = append(m.extraOut[u], int32(i))
	m.extraIn[v] = append(m.extraIn[v], int32(i))
	m.liveExtra++
	m.serveNew(m.baseM()+graph.EdgeID(i), u, v)
	return nil
}

// RemoveEdge deletes the edge u → v. If the edge supported hubs (as a
// push into the hub or the hub's pull), every edge covered through it is
// migrated to another already-paid hub when one brackets it, and
// re-served directly otherwise. Dep lists are pruned as coverage
// dissolves — a
// rescued (or removed) covered edge leaves the dep list of its other
// support too — so the index stays bounded by the live covered set across
// arbitrarily long add/remove sequences.
func (m *Maintainer) RemoveEdge(u, v graph.NodeID) error {
	if int(u) >= m.g.NumNodes() || int(v) >= m.g.NumNodes() || u < 0 || v < 0 {
		return fmt.Errorf("incremental: edge %d→%d out of range", u, v)
	}
	key := graph.Edge{From: u, To: v}
	if i, ok := m.extraIndex[key]; ok && !m.extra[i].removed {
		x := &m.extra[i]
		switch {
		case x.flags&core.FlagCovered != 0:
			m.unlinkCovered(m.baseM()+graph.EdgeID(i), -1)
		case x.flags&core.FlagPush != 0:
			m.cost -= m.r.Prod[u]
		case x.flags&core.FlagPull != 0:
			m.cost -= m.r.Cons[v]
		}
		x.removed = true
		x.flags = 0
		x.hub = -1
		m.liveExtra--
		return nil
	}
	e, ok := m.g.EdgeID(u, v)
	if !ok || m.removed.Test(int(e)) {
		return fmt.Errorf("incremental: edge %d→%d not present", u, v)
	}
	m.removed.Set(int(e))
	if m.sched.IsPush(e) {
		m.cost -= m.r.Prod[u]
	}
	if m.sched.IsPull(e) {
		m.cost -= m.r.Cons[v]
	}
	if m.sched.IsCovered(e) {
		// The removed edge no longer needs its hub; unlink it from both
		// support dep lists so they cannot accumulate dead entries.
		m.unlinkCovered(e, -1)
	}
	for _, d := range m.deps[e] {
		if !m.isLive(d) || m.coveredHub(d) < 0 {
			continue
		}
		// Only rescue edges whose hub actually used e as support; deps may
		// be stale if d was already re-served and re-covered (it cannot be
		// re-covered by this maintainer, but stay defensive).
		m.unlinkCovered(d, e)
		if m.hasDirectFlag(d) {
			continue // already pushed or pulled; losing coverage costs nothing
		}
		du, dv := m.endpoints(d)
		if w, up, down, ok := m.findHub(du, dv); ok {
			// Another hub already brackets the orphaned edge: migrate the
			// coverage for free instead of paying for direct service.
			m.cover(d, w, up, down)
			continue
		}
		added := m.serveDirect(d, du, dv)
		m.cost += added
		if m.OnRescue != nil {
			m.OnRescue(du, dv, added)
		}
	}
	delete(m.deps, e)
	// The removed edge's flags stay recorded in the schedule but are
	// ignored everywhere (cost, validation, rebase) until a revival
	// resets them.
	return nil
}

// UpdateRates replaces user u's production and consumption rates,
// repricing every live assignment that reads them: pushes out of u pay
// Prod[u], pulls into u pay Cons[u]. O(degree of u, base and extra). The
// rates object passed to New is mutated in place, so schedules sharing
// it observe the new rates too.
func (m *Maintainer) UpdateRates(u graph.NodeID, prod, cons float64) error {
	if int(u) >= m.g.NumNodes() || u < 0 {
		return fmt.Errorf("incremental: user %d out of range", u)
	}
	if prod < 0 || cons < 0 || math.IsNaN(prod) || math.IsNaN(cons) ||
		math.IsInf(prod, 0) || math.IsInf(cons, 0) {
		return fmt.Errorf("incremental: invalid rates prod=%v cons=%v", prod, cons)
	}
	dP := prod - m.r.Prod[u]
	dC := cons - m.r.Cons[u]
	lo, hi := m.g.OutEdgeRange(u)
	for e := lo; e < hi; e++ {
		if !m.removed.Test(int(e)) && m.sched.IsPush(e) {
			m.cost += dP
		}
	}
	for _, e := range m.g.InEdgeIDs(u) {
		if !m.removed.Test(int(e)) && m.sched.IsPull(e) {
			m.cost += dC
		}
	}
	for _, i := range m.extraOut[u] {
		x := &m.extra[i]
		if !x.removed && x.flags&core.FlagPush != 0 {
			m.cost += dP
		}
	}
	for _, i := range m.extraIn[u] {
		x := &m.extra[i]
		if !x.removed && x.flags&core.FlagPull != 0 {
			m.cost += dC
		}
	}
	m.r.Prod[u] = prod
	m.r.Cons[u] = cons
	return nil
}

// unlinkCovered dissolves the hub coverage of unified edge d: it is
// pruned from the dep lists of its hub's support edges (except skip, the
// support currently being torn down wholesale by the caller) and loses
// its covered mark.
func (m *Maintainer) unlinkCovered(d, skip graph.EdgeID) {
	w := m.coveredHub(d)
	du, dv := m.endpoints(d)
	if up, ok := m.g.EdgeID(du, w); ok && up != skip {
		m.pruneDep(up, d)
	}
	if down, ok := m.g.EdgeID(w, dv); ok && down != skip {
		m.pruneDep(down, d)
	}
	if d < m.baseM() {
		m.sched.ClearCovered(d)
	} else {
		x := &m.extra[d-m.baseM()]
		x.flags &^= core.FlagCovered
		x.hub = -1
	}
	m.covered--
}

// pruneDep removes d from deps[support], dropping the key once the list
// empties (order within a list is not meaningful).
func (m *Maintainer) pruneDep(support, d graph.EdgeID) {
	list, ok := m.deps[support]
	if !ok {
		return
	}
	for i, x := range list {
		if x == d {
			list[i] = list[len(list)-1]
			list = list[:len(list)-1]
			break
		}
	}
	if len(list) == 0 {
		delete(m.deps, support)
	} else {
		m.deps[support] = list
	}
}

// DepEntries returns the total number of dep-list entries — the index the
// maintainer keeps from support edges to the covered edges relying on
// them. With pruning it is bounded by twice the number of live covered
// edges; exposed for tests and capacity monitoring.
func (m *Maintainer) DepEntries() int {
	total := 0
	for _, list := range m.deps {
		total += len(list)
	}
	return total
}

// Cost returns the throughput cost of the maintained schedule over the
// live edge set. It is a running value adjusted by every mutation —
// O(1), so an online scheduler can consult it per operation. Rebase plus
// core.Schedule.Cost recomputes it from scratch; the two agree up to
// floating-point accumulation.
func (m *Maintainer) Cost() float64 { return m.cost }

// Rates returns the workload rates the maintainer prices against (the
// object passed to New; UpdateRates mutates it).
func (m *Maintainer) Rates() *workload.Rates { return m.r }

// LiveEdges returns the current edge list (base minus removals plus live
// additions), for rebuilding the graph before re-optimization.
func (m *Maintainer) LiveEdges() []graph.Edge {
	out := make([]graph.Edge, 0, m.NumEdges())
	m.g.Edges(func(e graph.EdgeID, u, v graph.NodeID) bool {
		if !m.removed.Test(int(e)) {
			out = append(out, graph.Edge{From: u, To: v})
		}
		return true
	})
	for _, x := range m.extra {
		if !x.removed {
			out = append(out, x.edge)
		}
	}
	return out
}

// Rebase materializes the live edge set into a fresh CSR graph and a
// schedule over it mirroring the maintained assignments — the handoff
// point from cheap greedy patching to a (localized) re-solve. Every live
// edge keeps its flags; coverage carries over because the maintainer's
// invariant guarantees hub supports of live covered edges are live. The
// maintainer itself is not modified.
func (m *Maintainer) Rebase() (*graph.Graph, *core.Schedule) {
	ng := graph.FromEdges(m.g.NumNodes(), m.LiveEdges())
	ns := core.NewSchedule(ng)
	copyFlags := func(u, v graph.NodeID, f core.Flag, hub graph.NodeID) {
		ne, ok := ng.EdgeID(u, v)
		if !ok {
			return // cannot happen: the edge came from LiveEdges
		}
		if f&core.FlagPush != 0 {
			ns.SetPush(ne)
		}
		if f&core.FlagPull != 0 {
			ns.SetPull(ne)
		}
		if f&core.FlagCovered != 0 {
			ns.SetCovered(ne, hub)
		}
	}
	m.g.Edges(func(e graph.EdgeID, u, v graph.NodeID) bool {
		if m.removed.Test(int(e)) {
			return true
		}
		var f core.Flag
		if m.sched.IsPush(e) {
			f |= core.FlagPush
		}
		if m.sched.IsPull(e) {
			f |= core.FlagPull
		}
		if m.sched.IsCovered(e) {
			f |= core.FlagCovered
		}
		copyFlags(u, v, f, m.sched.Hub(e))
		return true
	})
	for _, x := range m.extra {
		if !x.removed {
			copyFlags(x.edge.From, x.edge.To, x.flags, x.hub)
		}
	}
	return ng, ns
}

// Validate checks bounded staleness over the live edge set: every live
// edge is pushed, pulled, or covered by a hub whose support edges are
// live and scheduled correctly.
func (m *Maintainer) Validate() error {
	var err error
	m.g.Edges(func(e graph.EdgeID, u, v graph.NodeID) bool {
		if m.removed.Test(int(e)) {
			return true
		}
		if m.sched.IsPush(e) || m.sched.IsPull(e) {
			return true
		}
		if !m.sched.IsCovered(e) {
			err = fmt.Errorf("incremental: live edge %d→%d unserved", u, v)
			return false
		}
		if !m.supportsLive(u, v, m.sched.Hub(e)) {
			err = fmt.Errorf("incremental: live edge %d→%d has broken hub %d", u, v, m.sched.Hub(e))
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	for _, x := range m.extra {
		if x.removed {
			continue
		}
		if x.flags&(core.FlagPush|core.FlagPull) != 0 {
			continue
		}
		if x.flags&core.FlagCovered == 0 {
			return fmt.Errorf("incremental: added edge %d→%d unserved", x.edge.From, x.edge.To)
		}
		if !m.supportsLive(x.edge.From, x.edge.To, x.hub) {
			return fmt.Errorf("incremental: added edge %d→%d has broken hub %d",
				x.edge.From, x.edge.To, x.hub)
		}
	}
	return nil
}

// supportsLive reports whether hub w's support edges for covering u → v
// are live base edges with the required flags.
func (m *Maintainer) supportsLive(u, v, w graph.NodeID) bool {
	up, ok1 := m.g.EdgeID(u, w)
	down, ok2 := m.g.EdgeID(w, v)
	return ok1 && ok2 &&
		!m.removed.Test(int(up)) && !m.removed.Test(int(down)) &&
		m.sched.IsPush(up) && m.sched.IsPull(down)
}
