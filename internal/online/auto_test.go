package online

import (
	"testing"

	"piggyback/internal/chitchat"
	"piggyback/internal/graphgen"
	"piggyback/internal/nosy"
	"piggyback/internal/workload"
)

// Acceptance: on this pinned rate-heavy churn trace the feature-based
// auto daemon beats the fixed-chitchat daemon on BOTH axes — less
// re-solve wall time AND no worse final cost.
//
// The regime is the one the selector was built for. Rate updates drift
// regions mildly (dirt/cost stays below the degraded threshold), so the
// hint routes re-solves to restricted NOSY, which converges much faster
// than CHITCHAT on the extracted regions. Most patches revert here —
// the incrementally maintained schedule is already competitive — and
// every revert doubles the drift threshold, so the nosy daemon also
// stops probing hopeless regions sooner. The chitchat daemon's
// occasional accepted patch resets its streak and keeps it re-solving:
// more wall for a final cost this trace pins as no better.
//
// Both daemons are fully deterministic at Workers=1 (the cost
// comparison is exact and reproducible); only the wall comparison is
// timing-based, and the pinned cell has a ~2x margin.
func TestAutoDaemonBeatsFixedChitChat(t *testing.T) {
	if testing.Short() {
		t.Skip("pinned acceptance cell is scale-specific; skipping under -short")
	}
	g := graphgen.Social(graphgen.FlickrLike(300, 5))
	base := workload.LogDegree(g, 5)
	init := chitchat.Solve(g, base, chitchat.Config{Workers: 1})
	trace := workload.GenerateChurn(g, base, 2000, workload.ChurnConfig{
		AddFraction: 0.1, RemoveFraction: 0.1, Seed: 5,
	})

	run := func(kind SolverKind) (*Daemon, Stats) {
		t.Helper()
		r := freshRates(g, base)
		d, err := New(init.Clone(), r, Config{
			Solver:         kind,
			MaxRegionNodes: 200,
			DriftThreshold: 0.05,
			CheckEvery:     4,
			BudgetFraction: -1,
			ChitChat:       chitchat.Config{Workers: 1},
			Nosy:           nosy.Config{Workers: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.ApplyTrace(trace); err != nil {
			t.Fatal(err)
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("kind=%d: final schedule invalid: %v", kind, err)
		}
		return d, d.Stats()
	}

	fixed, fixedStats := run(SolverChitChat)
	auto, autoStats := run(SolverAuto)

	// The cell is only meaningful if both daemons actually re-solved.
	if n := autoStats.Resolves + autoStats.Reverted; n == 0 {
		t.Fatal("auto daemon never attempted a re-solve; the trace no longer triggers drift")
	}
	if n := fixedStats.Resolves + fixedStats.Reverted; n == 0 {
		t.Fatal("chitchat daemon never attempted a re-solve; the trace no longer triggers drift")
	}

	if autoCost, fixedCost := auto.Cost(), fixed.Cost(); autoCost > fixedCost+1e-9 {
		t.Errorf("auto final cost %v worse than fixed chitchat %v", autoCost, fixedCost)
	}
	if autoStats.ResolveWall >= fixedStats.ResolveWall {
		t.Errorf("auto spent %v re-solving, fixed chitchat %v; want strictly less",
			autoStats.ResolveWall, fixedStats.ResolveWall)
	}
}
