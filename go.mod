module piggyback

go 1.21
