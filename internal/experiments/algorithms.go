package experiments

import (
	"context"

	"piggyback/internal/baseline"
	"piggyback/internal/graph"
	_ "piggyback/internal/shard" // registers the "shard" solver
	"piggyback/internal/solver"
	"piggyback/internal/workload"
)

// Algorithms runs EVERY registered solver on both reference graphs
// through the one shared code path (the solver registry) and tabulates
// cost, improvement over the hybrid baseline, and iteration counts —
// the cross-algorithm summary the paper spreads over §4.2. A solver
// registered by an importing program shows up here automatically.
func Algorithms(sc Scale) *Table {
	t := &Table{
		Title:  "All registered solvers — cost and improvement over FF",
		Note:   "one registry code path; improvement = hybrid cost / solver cost",
		Header: []string{"solver", "graph", "cost", "improvement", "iterations", "hub-covered"},
	}
	for _, item := range []struct {
		name  string
		build func() (*graph.Graph, *workload.Rates)
	}{
		{"flickr-like", sc.flickr},
		{"twitter-like", sc.twitter},
	} {
		g, r := item.build()
		hybrid := baseline.HybridCost(g, r)
		reg := sc.registry()
		for _, name := range reg.Names() {
			sv, err := reg.New(name, solver.Options{Workers: sc.Workers})
			if err != nil {
				continue // unregistered between Names and New: impossible, skip
			}
			sv = solver.Chain(sv, sc.Middleware...)
			res, err := sv.Solve(context.Background(), solver.Problem{Graph: g, Rates: r})
			if err != nil {
				t.Rows = append(t.Rows, []string{name, item.name, "error: " + err.Error(), "", "", ""})
				continue
			}
			t.Rows = append(t.Rows, []string{
				name, item.name,
				f1(res.Report.Cost),
				f3(hybrid / res.Report.Cost),
				d(res.Report.Iterations),
				d(res.Schedule.Counts().Covered),
			})
		}
	}
	return t
}
