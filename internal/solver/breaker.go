package solver

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// BreakerState is the circuit-breaker state machine position:
// closed (primary serving) → open (primary quarantined) → half-open
// (probing the primary) → closed again on probe success, or back to
// open on probe failure.
type BreakerState uint8

const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String renders the state in the conventional vocabulary.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes a circuit breaker. The zero value uses the
// defaults.
type BreakerConfig struct {
	// Threshold is how many CONSECUTIVE hard failures of the primary
	// trip the breaker; 0 means 3.
	Threshold int
	// ProbeEvery is the half-open cadence: while tripped, every
	// ProbeEvery-th solve first probes the primary, closing the breaker
	// on success; 0 means 4.
	ProbeEvery int
	// OnTransition, when non-nil, observes every state change in order.
	// It is called OUTSIDE the breaker lock, after the transition took
	// effect, on the solving goroutine — so under the daemon's
	// sequential re-solves the emitted sequence is deterministic and
	// tests can pin it exactly (typically by appending to a
	// telemetry.EventLog). It must not call back into the breaker.
	OnTransition func(from, to BreakerState)
}

func (cfg BreakerConfig) withDefaults() BreakerConfig {
	if cfg.Threshold <= 0 {
		cfg.Threshold = 3
	}
	if cfg.ProbeEvery <= 0 {
		cfg.ProbeEvery = 4
	}
	return cfg
}

// BreakerStats counts what a Breaker has seen and done.
type BreakerStats struct {
	// PrimarySolves / FallbackSolves count which solver served each
	// request (a failed primary attempt followed by the fallback counts
	// once for each).
	PrimarySolves, FallbackSolves int
	// Failures counts hard primary failures (nil result with a non-
	// cancellation error); Trips counts closed→open transitions.
	Failures, Trips int
	// Probes counts half-open probe attempts; Closes counts open→closed
	// recoveries.
	Probes, Closes int
	// Open reports the current state.
	Open bool
}

// Breaker is a circuit breaker over two solvers: it serves from
// primary until Threshold consecutive hard failures, then quarantines
// the primary and serves from fallback, probing the primary every
// ProbeEvery-th solve (half-open) and closing again on the first
// probe success.
//
// A hard failure is a nil Result with an error that is not the
// caller's own cancellation: panics surfaced by WithRecover, typed
// solver errors, and deadline-expired solves that violated the anytime
// contract all count; a context.Canceled from the caller does not.
// Successful results — including valid best-so-far anytime results
// accompanied by a cancellation error — reset the failure streak.
//
// Safe for concurrent use, though solves themselves serialize per the
// underlying solver's own rules.
type Breaker struct {
	primary, fallback Solver
	cfg               BreakerConfig

	mu         sync.Mutex
	consec     int
	sinceProbe int
	state      BreakerState
	stats      BreakerStats
}

// transition moves the state machine while holding b.mu and returns the
// (from, to) pair for emission after unlock.
func (b *Breaker) transition(to BreakerState) [2]BreakerState {
	from := b.state
	b.state = to
	b.stats.Open = to != BreakerClosed
	return [2]BreakerState{from, to}
}

// emit fires OnTransition for each recorded transition, outside the
// lock.
func (b *Breaker) emit(trans [][2]BreakerState) {
	if b.cfg.OnTransition == nil {
		return
	}
	for _, t := range trans {
		b.cfg.OnTransition(t[0], t[1])
	}
}

// State returns the current state-machine position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// NewBreaker wraps primary with a quarantine-to-fallback circuit
// breaker. Wrap the primary in WithRecover first if it may panic.
func NewBreaker(primary, fallback Solver, cfg BreakerConfig) *Breaker {
	return &Breaker{primary: primary, fallback: fallback, cfg: cfg.withDefaults()}
}

// Name identifies the breaker and both members.
func (b *Breaker) Name() string {
	return fmt.Sprintf("breaker(%s->%s)", b.primary.Name(), b.fallback.Name())
}

// SupportsRegions requires BOTH members to be region-capable: either
// one may serve any given solve.
func (b *Breaker) SupportsRegions() bool {
	return SupportsRegions(b.primary) && SupportsRegions(b.fallback)
}

// Stats returns a copy of the breaker counters.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// hardFailure reports whether a solve outcome counts against the
// primary.
func hardFailure(ctx context.Context, res *Result, err error) bool {
	if res != nil || err == nil {
		return false
	}
	return !errors.Is(err, context.Canceled) || ctx.Err() == nil
}

// Solve implements Solver with the breaker discipline.
func (b *Breaker) Solve(ctx context.Context, p Problem) (*Result, error) {
	var trans [][2]BreakerState
	b.mu.Lock()
	open := b.state != BreakerClosed
	probe := false
	if open {
		b.sinceProbe++
		if b.sinceProbe >= b.cfg.ProbeEvery {
			b.sinceProbe = 0
			probe = true
			b.stats.Probes++
			trans = append(trans, b.transition(BreakerHalfOpen))
		}
	}
	b.mu.Unlock()
	b.emit(trans)

	if !open || probe {
		b.mu.Lock()
		b.stats.PrimarySolves++
		b.mu.Unlock()
		res, err := b.primary.Solve(ctx, p)
		if !hardFailure(ctx, res, err) {
			trans = nil
			b.mu.Lock()
			b.consec = 0
			if b.state != BreakerClosed {
				b.stats.Closes++
				trans = append(trans, b.transition(BreakerClosed))
			}
			b.mu.Unlock()
			b.emit(trans)
			return res, err
		}
		trans = nil
		b.mu.Lock()
		b.stats.Failures++
		b.consec++
		switch {
		case b.state == BreakerClosed && b.consec >= b.cfg.Threshold:
			b.stats.Trips++
			b.sinceProbe = 0
			trans = append(trans, b.transition(BreakerOpen))
		case b.state == BreakerHalfOpen:
			// Probe failed: back to fully open.
			trans = append(trans, b.transition(BreakerOpen))
		}
		nowOpen := b.state != BreakerClosed
		b.mu.Unlock()
		b.emit(trans)
		if !nowOpen {
			// Below threshold: surface the failure to the caller (the
			// daemon books it as a SolverError) rather than silently
			// absorbing every primary hiccup into fallback work.
			return res, err
		}
		// Tripped (or probing while tripped): fall through to fallback.
	}

	b.mu.Lock()
	b.stats.FallbackSolves++
	b.mu.Unlock()
	return b.fallback.Solve(ctx, p)
}
