package schedio

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"piggyback/internal/core"
	"piggyback/internal/graph"
	"piggyback/internal/graphgen"
	"piggyback/internal/nosy"
	"piggyback/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	g := graphgen.Social(graphgen.TwitterLike(200, 1))
	r := workload.LogDegree(g, 5)
	s := nosy.Solve(g, r, nosy.Config{}).Schedule
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cost(r) != s.Cost(r) {
		t.Fatalf("cost changed through serialization: %v vs %v", got.Cost(r), s.Cost(r))
	}
	for e := 0; e < g.NumEdges(); e++ {
		id := graph.EdgeID(e)
		if got.IsPush(id) != s.IsPush(id) || got.IsPull(id) != s.IsPull(id) ||
			got.IsCovered(id) != s.IsCovered(id) || got.Hub(id) != s.Hub(id) {
			t.Fatalf("edge %d differs after round trip", e)
		}
	}
}

func TestWrongGraphRejected(t *testing.T) {
	g := graphgen.Social(graphgen.TwitterLike(100, 1))
	other := graphgen.Social(graphgen.TwitterLike(120, 2))
	r := workload.LogDegree(g, 5)
	s := nosy.Solve(g, r, nosy.Config{}).Schedule
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf, other); err == nil {
		t.Fatal("schedule attached to a different graph")
	}
}

func TestCorruptInputRejected(t *testing.T) {
	g := graphgen.Social(graphgen.TwitterLike(60, 3))
	r := workload.LogDegree(g, 5)
	s := nosy.Solve(g, r, nosy.Config{}).Schedule
	var buf bytes.Buffer
	Write(&buf, s)
	data := buf.Bytes()

	if _, err := Read(bytes.NewReader(nil), g); err == nil {
		t.Fatal("empty input accepted")
	}
	bad := append([]byte{}, data...)
	bad[0] ^= 0xff // break magic
	if _, err := Read(bytes.NewReader(bad), g); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := Read(bytes.NewReader(data[:len(data)-2]), g); err == nil {
		t.Fatal("truncated input accepted")
	}
	// Flip a flag byte to an unknown value.
	bad = append([]byte{}, data...)
	bad[12] = 0x80
	if _, err := Read(bytes.NewReader(bad), g); err == nil {
		t.Fatal("unknown flags accepted")
	}
}

func TestInvalidScheduleRejected(t *testing.T) {
	// An empty schedule round-trips structurally but fails Theorem 1;
	// Read must reject it.
	g := graphgen.Social(graphgen.TwitterLike(50, 5))
	s := core.NewSchedule(g)
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf, g); err == nil {
		t.Fatal("invalid (unserved) schedule accepted")
	}
}

// Property: serialization round-trips arbitrary optimized schedules.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(80)
		g := graphgen.Social(graphgen.Config{
			Nodes: n, AvgFollows: 4, TriadProb: 0.5, Reciprocity: 0.4, Seed: seed,
		})
		r := workload.LogDegree(g, 0.5+rng.Float64()*10)
		s := nosy.Solve(g, r, nosy.Config{}).Schedule
		var buf bytes.Buffer
		if Write(&buf, s) != nil {
			return false
		}
		got, err := Read(&buf, g)
		if err != nil {
			return false
		}
		return got.Cost(r) == s.Cost(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
