package solver

import (
	"context"
	"strings"
	"testing"

	"piggyback/internal/nosy"
	"piggyback/internal/telemetry"
)

// WithTracing around the portfolio yields one nested tree: the
// portfolio's own span with one race/<member> child per racer — and the
// tree is byte-identical across two runs and across racer-concurrency
// settings, the core determinism contract.
func TestWithTracingPortfolioTreeDeterministic(t *testing.T) {
	g, r := quickProblem(t, 120)
	run := func(workers int) string {
		tr := telemetry.NewTracer(42)
		sv := Chain(NewPortfolio(PortfolioConfig{
			Workers: workers,
			Options: Options{Workers: 1},
		}), WithTracing(tr))
		if _, err := sv.Solve(context.Background(), Problem{Graph: g, Rates: r}); err != nil {
			t.Fatalf("solve (workers=%d): %v", workers, err)
		}
		return tr.Tree()
	}
	t1 := run(1)
	if t2 := run(1); t2 != t1 {
		t.Fatalf("two identical runs differ:\n%s\nvs\n%s", t1, t2)
	}
	if t4 := run(2); t4 != t1 {
		t.Fatalf("tree differs across racer concurrency:\n%s\nvs\n%s", t1, t4)
	}
	lines := strings.Split(strings.TrimSpace(t1), "\n")
	if len(lines) != 3 {
		t.Fatalf("want portfolio span + 2 member spans, got:\n%s", t1)
	}
	if !strings.HasPrefix(lines[0], "solve/portfolio#") {
		t.Fatalf("root = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  race/chitchat#") || !strings.HasPrefix(lines[2], "  race/nosy#") {
		t.Fatalf("member spans wrong or out of order:\n%s", t1)
	}
	for _, l := range lines {
		if strings.Contains(l, "[open]") {
			t.Fatalf("unended span in a completed solve:\n%s", t1)
		}
	}
}

func TestWithTracingOutcomeClasses(t *testing.T) {
	g, r := quickProblem(t, 60)
	tr := telemetry.NewTracer(1)

	// Failure: panics surface as class=error after WithRecover.
	sv := Chain(panicSolver{}, WithTracing(tr), WithRecover())
	if _, err := sv.Solve(context.Background(), Problem{Graph: g, Rates: r}); err == nil {
		t.Fatal("expected panic-derived error")
	}
	// Cancellation: a pre-canceled context.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sv = Chain(NewNosy(nosy.Config{Workers: 1}), WithTracing(tr))
	_, _ = sv.Solve(ctx, Problem{Graph: g, Rates: r})

	tree := tr.Tree()
	if !strings.Contains(tree, "failed class=error") {
		t.Fatalf("panic outcome not classed:\n%s", tree)
	}
	if !strings.Contains(tree, "class=canceled") && !strings.Contains(tree, "canceled") {
		t.Fatalf("cancellation outcome missing:\n%s", tree)
	}
}

func TestWithTracingNilTracerIsIdentity(t *testing.T) {
	inner := &scriptedSolver{name: "p", region: true}
	if sv := WithTracing(nil)(inner); sv != Solver(inner) {
		t.Fatalf("nil tracer should return the solver unchanged")
	}
}

// The breaker's OnTransition hook emits the exact closed→open→
// half-open→… sequence through a telemetry event log.
func TestBreakerTransitionEvents(t *testing.T) {
	var log telemetry.EventLog
	primary := &scriptedSolver{name: "p", region: true, fail: func(n int) bool { return n <= 2 }}
	fallback := &scriptedSolver{name: "f", region: true}
	b := NewBreaker(primary, fallback, BreakerConfig{
		Threshold: 2, ProbeEvery: 2,
		OnTransition: func(from, to BreakerState) {
			log.Emit("breaker", from.String()+"->"+to.String())
		},
	})
	ctx := context.Background()
	// Solves 1–2 fail the primary: solve 2 trips (closed→open).
	_, _ = b.Solve(ctx, Problem{})
	_, _ = b.Solve(ctx, Problem{})
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
	// Open solve 1: fallback only. Open solve 2: probe — the primary is
	// healthy now (n=3), so open→half-open→closed.
	_, _ = b.Solve(ctx, Problem{})
	res, err := b.Solve(ctx, Problem{})
	if err != nil || res == nil || res.Report.Solver != "p" {
		t.Fatalf("probe solve: res=%+v err=%v, want recovered primary", res, err)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v, want closed", b.State())
	}
	want := []string{"closed->open", "open->half-open", "half-open->closed"}
	got := log.Attrs("breaker")
	if len(got) != len(want) {
		t.Fatalf("transitions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("transition %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// A failed probe goes back to open, not closed.
func TestBreakerProbeFailureReopens(t *testing.T) {
	var log telemetry.EventLog
	primary := &scriptedSolver{name: "p", region: true, fail: func(n int) bool { return true }}
	fallback := &scriptedSolver{name: "f", region: true}
	b := NewBreaker(primary, fallback, BreakerConfig{
		Threshold: 1, ProbeEvery: 1,
		OnTransition: func(from, to BreakerState) {
			log.Emit("breaker", from.String()+"->"+to.String())
		},
	})
	ctx := context.Background()
	_, _ = b.Solve(ctx, Problem{}) // trips: closed→open
	_, _ = b.Solve(ctx, Problem{}) // probe fails: open→half-open→open
	want := []string{"closed->open", "open->half-open", "half-open->open"}
	got := log.Attrs("breaker")
	if len(got) != len(want) {
		t.Fatalf("transitions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("transition %d = %q, want %q", i, got[i], want[i])
		}
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open after failed probe", b.State())
	}
}
