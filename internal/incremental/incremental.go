// Package incremental maintains a request schedule under graph updates
// (§3.3): added edges are served directly with the cheaper of push and
// pull; when a support edge of a hub is removed, every edge covered
// through that hub support is re-served directly. Over time this degrades
// schedule quality, so callers periodically re-run the optimizer — the
// Figure 5 experiment measures exactly how slowly the degradation bites.
package incremental

import (
	"fmt"

	"piggyback/internal/bitset"
	"piggyback/internal/core"
	"piggyback/internal/graph"
	"piggyback/internal/workload"
)

// Maintainer wraps an optimized schedule over a base graph and applies
// edge additions/removals without re-optimizing.
type Maintainer struct {
	g     *graph.Graph
	sched *core.Schedule
	r     *workload.Rates

	removed *bitset.Set // removed base edges
	// deps[e] lists covered edges whose hub relies on support edge e
	// (e is the push x → w or the pull w → y realizing the hub).
	deps map[graph.EdgeID][]graph.EdgeID

	extra      []extraEdge
	extraIndex map[graph.Edge]int
}

type extraEdge struct {
	edge    graph.Edge
	push    bool // direct service direction chosen at insert time
	removed bool
}

// New builds a maintainer over an already-optimized schedule. The
// schedule is cloned; the original is not modified.
func New(s *core.Schedule, r *workload.Rates) *Maintainer {
	g := s.Graph()
	m := &Maintainer{
		g:          g,
		sched:      s.Clone(),
		r:          r,
		removed:    bitset.New(g.NumEdges()),
		deps:       make(map[graph.EdgeID][]graph.EdgeID),
		extraIndex: make(map[graph.Edge]int),
	}
	g.Edges(func(e graph.EdgeID, u, v graph.NodeID) bool {
		if !m.sched.IsCovered(e) {
			return true
		}
		w := m.sched.Hub(e)
		if up, ok := g.EdgeID(u, w); ok {
			m.deps[up] = append(m.deps[up], e)
		}
		if down, ok := g.EdgeID(w, v); ok {
			m.deps[down] = append(m.deps[down], e)
		}
		return true
	})
	return m
}

// NumEdges returns the number of live edges (base minus removed plus
// live additions).
func (m *Maintainer) NumEdges() int {
	n := m.g.NumEdges() - m.removed.Count()
	for _, x := range m.extra {
		if !x.removed {
			n++
		}
	}
	return n
}

// AddEdge inserts the edge u → v, serving it directly with the cheaper of
// push and pull (§3.3). Re-adding a removed base edge revives it as a
// direct edge. Adding an existing live edge is an error.
func (m *Maintainer) AddEdge(u, v graph.NodeID) error {
	if u == v {
		return fmt.Errorf("incremental: self-loop %d→%d", u, v)
	}
	if int(u) >= m.g.NumNodes() || int(v) >= m.g.NumNodes() || u < 0 || v < 0 {
		return fmt.Errorf("incremental: edge %d→%d out of range", u, v)
	}
	if e, ok := m.g.EdgeID(u, v); ok && !m.removed.Test(int(e)) {
		return fmt.Errorf("incremental: edge %d→%d already present", u, v)
	}
	key := graph.Edge{From: u, To: v}
	if i, ok := m.extraIndex[key]; ok {
		if !m.extra[i].removed {
			return fmt.Errorf("incremental: edge %d→%d already added", u, v)
		}
		m.extra[i].removed = false
		m.extra[i].push = m.r.Prod[u] <= m.r.Cons[v]
		return nil
	}
	m.extra = append(m.extra, extraEdge{
		edge: key,
		push: m.r.Prod[u] <= m.r.Cons[v],
	})
	m.extraIndex[key] = len(m.extra) - 1
	return nil
}

// RemoveEdge deletes the edge u → v. If the edge supported hubs (as a
// push into the hub or the hub's pull), every edge covered through it is
// re-served directly. Dep lists are pruned as coverage dissolves — a
// rescued (or removed) covered edge leaves the dep list of its other
// support too — so the index stays bounded by the live covered set across
// arbitrarily long add/remove sequences.
func (m *Maintainer) RemoveEdge(u, v graph.NodeID) error {
	key := graph.Edge{From: u, To: v}
	if i, ok := m.extraIndex[key]; ok && !m.extra[i].removed {
		m.extra[i].removed = true
		return nil
	}
	e, ok := m.g.EdgeID(u, v)
	if !ok || m.removed.Test(int(e)) {
		return fmt.Errorf("incremental: edge %d→%d not present", u, v)
	}
	m.removed.Set(int(e))
	if m.sched.IsCovered(e) {
		// The removed edge no longer needs its hub; unlink it from both
		// support dep lists so they cannot accumulate dead entries.
		m.unlinkCovered(e, -1)
	}
	for _, d := range m.deps[e] {
		if m.removed.Test(int(d)) || !m.sched.IsCovered(d) {
			continue
		}
		// Only rescue edges whose hub actually used e as support; deps may
		// be stale if d was already re-served and re-covered (it cannot be
		// re-covered by this maintainer, but stay defensive).
		m.unlinkCovered(d, e)
		du := m.g.EdgeSource(d)
		dv := m.g.EdgeTarget(d)
		if m.r.Prod[du] <= m.r.Cons[dv] {
			m.sched.SetPush(d)
		} else {
			m.sched.SetPull(d)
		}
	}
	delete(m.deps, e)
	return nil
}

// unlinkCovered dissolves the hub coverage of edge d: it is pruned from
// the dep lists of its hub's support edges (except skip, the support
// currently being torn down wholesale by the caller) and loses its
// covered mark.
func (m *Maintainer) unlinkCovered(d, skip graph.EdgeID) {
	w := m.sched.Hub(d)
	du := m.g.EdgeSource(d)
	dv := m.g.EdgeTarget(d)
	if up, ok := m.g.EdgeID(du, w); ok && up != skip {
		m.pruneDep(up, d)
	}
	if down, ok := m.g.EdgeID(w, dv); ok && down != skip {
		m.pruneDep(down, d)
	}
	m.sched.ClearCovered(d)
}

// pruneDep removes d from deps[support], dropping the key once the list
// empties (order within a list is not meaningful).
func (m *Maintainer) pruneDep(support, d graph.EdgeID) {
	list, ok := m.deps[support]
	if !ok {
		return
	}
	for i, x := range list {
		if x == d {
			list[i] = list[len(list)-1]
			list = list[:len(list)-1]
			break
		}
	}
	if len(list) == 0 {
		delete(m.deps, support)
	} else {
		m.deps[support] = list
	}
}

// DepEntries returns the total number of dep-list entries — the index the
// maintainer keeps from support edges to the covered edges relying on
// them. With pruning it is bounded by twice the number of live covered
// edges; exposed for tests and capacity monitoring.
func (m *Maintainer) DepEntries() int {
	total := 0
	for _, list := range m.deps {
		total += len(list)
	}
	return total
}

// Cost returns the throughput cost of the maintained schedule over the
// live edge set.
func (m *Maintainer) Cost() float64 {
	total := 0.0
	m.g.Edges(func(e graph.EdgeID, u, v graph.NodeID) bool {
		if m.removed.Test(int(e)) {
			return true
		}
		if m.sched.IsPush(e) {
			total += m.r.Prod[u]
		}
		if m.sched.IsPull(e) {
			total += m.r.Cons[v]
		}
		return true
	})
	for _, x := range m.extra {
		if x.removed {
			continue
		}
		if x.push {
			total += m.r.Prod[x.edge.From]
		} else {
			total += m.r.Cons[x.edge.To]
		}
	}
	return total
}

// LiveEdges returns the current edge list (base minus removals plus live
// additions), for rebuilding the graph before re-optimization.
func (m *Maintainer) LiveEdges() []graph.Edge {
	out := make([]graph.Edge, 0, m.NumEdges())
	m.g.Edges(func(e graph.EdgeID, u, v graph.NodeID) bool {
		if !m.removed.Test(int(e)) {
			out = append(out, graph.Edge{From: u, To: v})
		}
		return true
	})
	for _, x := range m.extra {
		if !x.removed {
			out = append(out, x.edge)
		}
	}
	return out
}

// Validate checks bounded staleness over the live edge set: every live
// edge is pushed, pulled, or covered by a hub whose support edges are
// live and scheduled correctly.
func (m *Maintainer) Validate() error {
	var err error
	m.g.Edges(func(e graph.EdgeID, u, v graph.NodeID) bool {
		if m.removed.Test(int(e)) {
			return true
		}
		if m.sched.IsPush(e) || m.sched.IsPull(e) {
			return true
		}
		if !m.sched.IsCovered(e) {
			err = fmt.Errorf("incremental: live edge %d→%d unserved", u, v)
			return false
		}
		w := m.sched.Hub(e)
		up, ok1 := m.g.EdgeID(u, w)
		down, ok2 := m.g.EdgeID(w, v)
		if !ok1 || !ok2 ||
			m.removed.Test(int(up)) || m.removed.Test(int(down)) ||
			!m.sched.IsPush(up) || !m.sched.IsPull(down) {
			err = fmt.Errorf("incremental: live edge %d→%d has broken hub %d", u, v, w)
			return false
		}
		return true
	})
	return err
}
