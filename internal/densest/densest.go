// Package densest solves the weighted densest-subgraph problem used as
// CHITCHAT's oracle (§3.1, Lemma 1): given an undirected instance graph
// with non-negative node weights g, find S maximizing
//
//	d_w(S) = |E(S)| / g(S)
//
// Peel implements the modified Asahiro/Charikar greedy: repeatedly delete
// the node with the smallest weighted degree deg(u)/g(u) and return the
// best intermediate subgraph. Lemma 1 proves this is a factor-2
// approximation. Exact provides a brute-force reference for tests.
// Decremental materializes an instance once and maintains it under
// element removal and weight zeroing — the exact mutations CHITCHAT's
// greedy commits perform — so re-solving skips the instance rebuild;
// Decremental.Solve is guaranteed to match Peel on the live sub-instance.
//
// Zero-weight nodes (cost already paid by earlier greedy steps) have
// infinite priority and are peeled last; a subgraph with positive edges
// and zero total weight has infinite density — i.e., free coverage.
package densest

import (
	"errors"
	"fmt"
	"math"

	"piggyback/internal/pq"
)

// ErrInstanceTooLarge is the panic value (wrapped) raised when Exact is
// asked to enumerate an instance with more than 24 nodes. The public
// solver API recovers it and surfaces it as a returned error.
var ErrInstanceTooLarge = errors.New("densest: exact oracle instance too large (N > 24)")

// Instance is an undirected multigraph with weighted nodes. Parallel
// edges are allowed (they never arise in CHITCHAT's hub-graphs but cost
// nothing to support). Edges must reference nodes 0..N-1.
type Instance struct {
	N      int
	Edges  [][2]int32
	Weight []float64 // len N, all >= 0
}

// Result is the selected node set and its density. Density may be +Inf
// (positive edges, zero weight); Denser compares results exactly without
// dividing.
type Result struct {
	Members []int32
	EdgeCnt int
	Weight  float64
}

// Density returns |E(S)|/g(S); +Inf if g(S)=0 and |E(S)|>0; 0 if both 0.
func (r Result) Density() float64 {
	if r.Weight == 0 {
		if r.EdgeCnt > 0 {
			return inf()
		}
		return 0
	}
	return float64(r.EdgeCnt) / r.Weight
}

// Denser reports whether r is strictly denser than o, comparing by
// cross-multiplication so zero weights are exact.
func (r Result) Denser(o Result) bool {
	// r.E/r.W > o.E/o.W  ⟺  r.E*o.W > o.E*r.W   (weights >= 0)
	lhs := float64(r.EdgeCnt) * o.Weight
	rhs := float64(o.EdgeCnt) * r.Weight
	if lhs != rhs {
		return lhs > rhs
	}
	// Equal ratios: prefer more coverage (more edges).
	return r.EdgeCnt > o.EdgeCnt
}

func inf() float64 { return math.Inf(1) }

// Scratch is a reusable per-worker arena for Peel and Exact: the peel
// ordering, degree and adjacency arrays, and the priority queue. A nil
// Scratch makes every call allocate fresh; callers in hot loops (each
// CHITCHAT oracle evaluation runs one Peel) hold one Scratch per worker
// goroutine and amortize all of it. The zero value is ready to use. A
// Scratch must not be shared between concurrent calls.
type Scratch struct {
	deg   []int32
	off   []int32 // CSR adjacency offsets, len N+1
	cur   []int32
	adj   []int32 // incident edge indices, len 2|E|
	alive []bool
	edges []bool // edgeAlive
	order []int32
	prios []float64
	q     pq.IndexedMin
}

// grow returns a length-n slice backed by b's storage when it is large
// enough, allocating otherwise; contents are unspecified.
func grow[T any](b []T, n int) []T {
	if cap(b) < n {
		return make([]T, n)
	}
	return b[:n]
}

// Peel runs the weighted peeling algorithm and returns the densest
// intermediate subgraph encountered. O((n + m) log n). sc may be nil;
// passing a reused Scratch makes the call allocation-free except for the
// returned member list (which never aliases the scratch).
func Peel(inst Instance, sc *Scratch) Result {
	if sc == nil {
		sc = &Scratch{}
	}
	n := inst.N
	if n == 0 {
		return Result{}
	}
	m := len(inst.Edges)

	deg := grow(sc.deg, n)
	sc.deg = deg
	for i := range deg {
		deg[i] = 0
	}
	for _, e := range inst.Edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	// CSR adjacency: incident edge indices of u are adj[off[u]:off[u+1]].
	off := grow(sc.off, n+1)
	sc.off = off
	buildCSR(deg, inst.Edges, off, &sc.adj, &sc.cur)

	edgeAlive := grow(sc.edges, m)
	sc.edges = edgeAlive
	for i := range edgeAlive {
		edgeAlive[i] = true
	}

	return peelLoop(n, inst.Weight, inst.Edges, off, sc.adj, deg, edgeAlive, m, sc)
}

// buildCSR fills off (len n+1, off[0..n] from the degree prefix sum) and
// adj (incident edge indices, len 2m) for the given undirected edge list.
// deg must hold the degree of every node; cur is a reusable cursor buffer.
func buildCSR(deg []int32, edges [][2]int32, off []int32, adjBuf, curBuf *[]int32) {
	n := len(deg)
	off[0] = 0
	for u := 0; u < n; u++ {
		off[u+1] = off[u] + deg[u]
	}
	adj := grow(*adjBuf, 2*len(edges))
	*adjBuf = adj
	cur := grow(*curBuf, n)
	*curBuf = cur
	copy(cur, off[:n])
	for ei, e := range edges {
		adj[cur[e[0]]] = int32(ei)
		cur[e[0]]++
		adj[cur[e[1]]] = int32(ei)
		cur[e[1]]++
	}
}

// peelLoop is the shared peeling core behind Peel and Decremental.Solve.
// off/adj is a CSR adjacency over the full edge list; deg and edgeAlive
// are WORKING arrays describing the live sub-instance (deg[u] = live
// degree, edgeAlive[ei] = element still present) and are destroyed by the
// loop; liveEdges is the current number of live elements. The peel order
// — and therefore the returned member set — is exactly what Peel would
// produce on a freshly built instance containing only the live edges:
// priorities depend only on live degrees and weights, and ties break by
// node id.
func peelLoop(n int, weight []float64, edges [][2]int32, off, adj []int32,
	deg []int32, edgeAlive []bool, liveEdges int, sc *Scratch) Result {

	alive := grow(sc.alive, n)
	sc.alive = alive
	for i := range alive {
		alive[i] = true
	}

	prio := func(u int) float64 {
		w := weight[u]
		if w == 0 {
			// Weightless nodes (cost already paid) are peeled last.
			return inf()
		}
		return float64(deg[u]) / w
	}

	prios := grow(sc.prios, n)
	sc.prios = prios
	curWeight := 0.0
	alivePositive := 0 // alive nodes with weight > 0
	for u := 0; u < n; u++ {
		prios[u] = prio(u)
		curWeight += weight[u]
		if weight[u] > 0 {
			alivePositive++
		}
	}
	q := &sc.q
	q.Init(prios)
	curEdges := liveEdges

	best := Result{EdgeCnt: curEdges, Weight: curWeight}
	bestStep := 0 // number of removals before the best snapshot
	removalOrder := grow(sc.order, n)[:0]

	for step := 1; q.Len() > 0; step++ {
		u, _ := q.PopMin()
		alive[u] = false
		removalOrder = append(removalOrder, int32(u))
		curWeight -= weight[u]
		if weight[u] > 0 {
			alivePositive--
		}
		// Snap to exact zero once every positive-weight node is gone;
		// accumulated float error must not mask an infinite-density
		// (free-coverage) subgraph.
		if alivePositive == 0 || curWeight < 0 {
			curWeight = 0
		}
		for _, ei := range adj[off[u]:off[u+1]] {
			if !edgeAlive[ei] {
				continue
			}
			edgeAlive[ei] = false
			curEdges--
			other := edges[ei][0]
			if other == int32(u) {
				other = edges[ei][1]
			}
			if alive[other] {
				deg[other]--
				q.Update(int(other), prio(int(other)))
			}
		}
		snap := Result{EdgeCnt: curEdges, Weight: curWeight}
		if snap.Denser(best) {
			best = snap
			bestStep = step
		}
	}
	sc.order = removalOrder

	// Reconstruct members: nodes not among the first bestStep removals.
	// After the full peel every alive[] entry is false; reuse it as the
	// "removed before the best snapshot" marker.
	for i := 0; i < bestStep; i++ {
		alive[removalOrder[i]] = true
	}
	best.Members = make([]int32, 0, n-bestStep)
	for u := 0; u < n; u++ {
		if !alive[u] {
			best.Members = append(best.Members, int32(u))
		}
	}
	// Recompute weight exactly from the members: the incremental subtraction
	// above can drift by a few ulps, and callers compare densities exactly.
	best.Weight = 0
	for _, u := range best.Members {
		best.Weight += weight[u]
	}
	return best
}

// Exact solves the problem by subset enumeration; only usable for small
// instances (N <= 24). Used by tests to verify the 2-approximation bound.
// sc is accepted for call-site symmetry with Peel (the oracle switches
// between them); Exact's only allocation is the returned member list.
func Exact(inst Instance, sc *Scratch) Result {
	_ = sc
	n := inst.N
	if n == 0 || n > 24 {
		if n > 24 {
			panic(fmt.Errorf("%w: N=%d", ErrInstanceTooLarge, n))
		}
		return Result{}
	}
	var best Result
	bestMask := 0
	for mask := 1; mask < 1<<uint(n); mask++ {
		var r Result
		for u := 0; u < n; u++ {
			if mask&(1<<uint(u)) != 0 {
				r.Weight += inst.Weight[u]
			}
		}
		for _, e := range inst.Edges {
			if mask&(1<<uint(e[0])) != 0 && mask&(1<<uint(e[1])) != 0 {
				r.EdgeCnt++
			}
		}
		if r.Denser(best) {
			best = r
			bestMask = mask
		}
	}
	for u := 0; u < n; u++ {
		if bestMask&(1<<uint(u)) != 0 {
			best.Members = append(best.Members, int32(u))
		}
	}
	return best
}
