// Command schedule computes a request schedule for a social graph and
// reports its cost against the baselines. Algorithms are selected by
// name from the solver registry, run under a cancellable context
// (Ctrl-C or -timeout returns the best-so-far valid schedule), and
// report live progress with -progress.
//
// Usage:
//
//	schedule -graph twitter.graph -algo nosy -ratio 5
//	graphgen -preset flickr -nodes 2000 | schedule -algo chitchat -progress
//	schedule -graph big.graph -algo nosy -timeout 30s
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"strings"
	"time"

	"piggyback/internal/baseline"
	"piggyback/internal/graph"
	"piggyback/internal/graphio"
	"piggyback/internal/schedio"
	_ "piggyback/internal/shard" // registers the "shard" solver
	"piggyback/internal/solver"
	"piggyback/internal/workload"
)

func main() {
	var (
		path     = flag.String("graph", "", "graph file (binary or text; default stdin, binary)")
		text     = flag.Bool("text", false, "graph file is in text format")
		algo     = flag.String("algo", "nosy", "algorithm: "+strings.Join(solver.Default.Names(), " | "))
		ratio    = flag.Float64("ratio", workload.DefaultReadWriteRatio, "read/write ratio for the log-degree workload")
		workers  = flag.Int("workers", 0, "solver parallelism (0 = all cores)")
		timeout  = flag.Duration("timeout", 0, "wall-clock budget; on expiry the best-so-far valid schedule is reported")
		progress = flag.Bool("progress", false, "print live per-iteration progress")
		iters    = flag.Bool("iters", false, "trace finalized cost per iteration (implies -progress; nosy/nosymr)")
		out      = flag.String("o", "", "save the schedule (schedio format) for cmd/feedstore")
	)
	flag.Parse()

	g, err := loadGraph(*path, *text)
	if err != nil {
		fatalf("loading graph: %v", err)
	}
	r := workload.LogDegree(g, *ratio)

	opts := solver.Options{Workers: *workers, TraceCosts: *iters}
	if *progress || *iters {
		opts.Progress = printProgress
	}
	sv, err := solver.Default.New(*algo, opts)
	if err != nil {
		fatalf("%v", err)
	}

	// Ctrl-C and -timeout both cancel the solve; the anytime contract
	// still hands us a valid schedule to report.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	start := time.Now()
	res, err := sv.Solve(ctx, solver.Problem{Graph: g, Rates: r})
	if err != nil && res == nil {
		fatalf("solving: %v", err)
	}
	s := res.Schedule

	if err := s.Validate(); err != nil {
		fatalf("schedule invalid: %v", err)
	}
	hybrid := baseline.HybridCost(g, r)
	counts := s.Counts()
	fmt.Printf("graph:        %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())
	fmt.Printf("algorithm:    %s (read/write ratio %.1f, %v)\n", res.Report.Solver, *ratio, time.Since(start).Round(time.Millisecond))
	if res.Report.Canceled {
		fmt.Printf("NOTE:         solve canceled after %d iterations (%v); schedule is valid best-so-far\n",
			res.Report.Iterations, err)
	}
	fmt.Printf("cost:         %.1f\n", res.Report.Cost)
	fmt.Printf("hybrid cost:  %.1f\n", hybrid)
	fmt.Printf("improvement:  %.3fx\n", hybrid/res.Report.Cost)
	fmt.Printf("push edges:   %d\n", counts.Push)
	fmt.Printf("pull edges:   %d\n", counts.Pull)
	fmt.Printf("hub-covered:  %d\n", counts.Covered)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("creating %s: %v", *out, err)
		}
		defer f.Close()
		if err := schedio.Write(f, s); err != nil {
			fatalf("saving schedule: %v", err)
		}
		fmt.Printf("schedule saved to %s\n", *out)
	}
}

// printProgress renders one live line per event: iteration stats for
// the round-based solvers, a sampled coverage line for CHITCHAT's
// per-commit stream.
func printProgress(ev solver.ProgressEvent) {
	switch ev.Solver {
	case solver.ChitChat:
		// One line every 1024 commits plus the final one keeps the
		// stream readable on large graphs.
		if ev.Iteration%1024 != 0 && ev.Remaining != 0 {
			return
		}
		fmt.Fprintf(os.Stderr, "commit %7d: covered=%d remaining=%d\n",
			ev.Iteration, ev.Covered, ev.Remaining)
	default:
		line := fmt.Sprintf("iteration %3d: dirty=%d candidates=%d commits=%d+%d covered=%d",
			ev.Iteration+1, ev.Dirty, ev.Candidates, ev.FullCommits, ev.PartialCommits, ev.CoveredEdges)
		if !math.IsNaN(ev.Cost) {
			line += fmt.Sprintf(" cost=%.1f", ev.Cost)
		}
		fmt.Fprintln(os.Stderr, line)
	}
}

func loadGraph(path string, text bool) (*graph.Graph, error) {
	var r io.Reader = bufio.NewReader(os.Stdin)
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = bufio.NewReader(f)
	}
	if text {
		g, err := graphio.ReadText(r)
		if errors.Is(err, graph.ErrEdgeOutOfRange) {
			err = fmt.Errorf("%w (is the node count header right?)", err)
		}
		return g, err
	}
	return graphio.ReadBinary(r)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "schedule: "+format+"\n", args...)
	os.Exit(1)
}
