package nosy

import (
	"sync"

	"piggyback/internal/graph"
)

// structCache memoizes the immutable structural part of candidate
// evaluation: for hub edge w → y, the common-producer intersection
// (Xs, XWEdges, XYEdges) returned by graph.CommonInEdges depends only on
// the graph and the MaxCrossEdges bound, never on the schedule. It is
// computed once, on first evaluation, and every later evaluation of the
// same hub edge is a re-pricing pass over the cached arrays.
//
// Storage is arena-backed: entries live contiguously in flat
// (xs, xw, xy) slabs — no per-candidate slice headers — and a per-edge
// record table maps a hub edge to its (slab, offset, length) span.
// Resident memory is bounded: each of the 64 shards keeps at most two
// slab generations (current and previous), giving LRU-style eviction —
// a slab that fills retires the previous generation, and an entry hit in
// the previous generation is promoted into the current one so hot
// entries survive the flip. Evicted entries are simply recomputed.
// Empty intersections are remembered forever (they occupy no arena
// space), which matters on social graphs where most hub edges have no
// common producers at all.
//
// Concurrency: records and slab lengths are guarded by a per-shard
// mutex. Slab data arrays are append-only at full preallocated capacity
// — they never reallocate — so a slice handed out under the lock stays
// valid after release; a retired slab's memory is dropped, not reused,
// so readers holding slices into it are safe until GC.
type structCache struct {
	recs   []structRec // per hub edge; guarded by the owning shard's mu
	shards []structShard
	mask   int32
}

// structRec locates a hub edge's cached span: seq names the slab
// generation it lives in (0 = not cached, emptySeq = cached empty).
// seq is 64-bit so generation numbers never repeat: a stale record can
// never alias a later slab, even under caps that flip every insert.
type structRec struct {
	seq      uint64
	start, n int32
}

const (
	structShardCount = 64 // power of two
	emptySeq         = ^uint64(0)
)

// DefaultStructCacheEntries bounds the producer entries resident in the
// structural cache (per generation, summed over shards): 4M entries ≈
// 48 MB per generation at 12 bytes each. Multi-million-node runs evict;
// bench-scale graphs cache everything. When the bound is defaulted, the
// per-shard slab is additionally raised to MaxCrossEdges so the heaviest
// (celebrity) intersections — exactly the entries worth amortizing —
// always fit; an explicit Config.StructCacheEntries is honored strictly.
const DefaultStructCacheEntries = 4 << 20

type structShard struct {
	mu        sync.Mutex
	cur, prev *structSlab
	nextSeq   uint64
	slabCap   int
}

// structSlab is one arena generation: parallel flat arrays filled
// front-to-back, preallocated at full capacity so they never move.
type structSlab struct {
	seq uint64
	xs  []graph.NodeID
	xw  []graph.EdgeID
	xy  []graph.EdgeID
}

// newStructCache sizes the cache for m hub edges and at most maxEntries
// producer entries per generation across all shards. maxCross is the
// evaluator's MaxCrossEdges bound — the largest entry an evaluation can
// produce; the defaulted cache guarantees such an entry is cacheable.
func newStructCache(m, maxEntries, maxCross int) *structCache {
	explicit := maxEntries > 0
	if !explicit {
		maxEntries = DefaultStructCacheEntries
	}
	c := &structCache{
		recs:   make([]structRec, m),
		shards: make([]structShard, structShardCount),
		mask:   structShardCount - 1,
	}
	per := maxEntries / structShardCount
	if per < 1 {
		per = 1
	}
	if !explicit && per < maxCross {
		per = maxCross
	}
	for i := range c.shards {
		c.shards[i].slabCap = per
		c.shards[i].nextSeq = 1
	}
	return c
}

// newSlabFor returns the next slab generation for sh, sized to hold at
// least need entries. Capacity starts small and grows 4× from the
// retiring slab up to slabCap, so tiny graphs never preallocate the full
// per-shard bound. The parallel arrays are preallocated at their final
// capacity and never reallocate — the no-move invariant concurrent
// readers depend on.
func (sh *structShard) newSlabFor(need int) *structSlab {
	c := minSlabEntries
	if sh.cur != nil && 4*cap(sh.cur.xs) > c {
		c = 4 * cap(sh.cur.xs)
	}
	if c < need {
		c = need
	}
	if c > sh.slabCap {
		c = sh.slabCap
	}
	s := &structSlab{
		seq: sh.nextSeq,
		xs:  make([]graph.NodeID, 0, c),
		xw:  make([]graph.EdgeID, 0, c),
		xy:  make([]graph.EdgeID, 0, c),
	}
	sh.nextSeq++
	return s
}

// minSlabEntries is the smallest slab a shard allocates; capacity grows
// 4× per generation from here toward slabCap, so warmup churn (a flip
// evicts the previous generation, whose entries must be recomputed or
// promoted) lasts at most a handful of flips.
const minSlabEntries = 4096

// get returns the cached intersection for hub edge he. ok is false on a
// miss; a cached-empty entry returns ok with nil slices.
func (c *structCache) get(he graph.EdgeID) (xs []graph.NodeID, xw, xy []graph.EdgeID, ok bool) {
	sh := &c.shards[he&c.mask]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	r := c.recs[he]
	switch {
	case r.seq == 0:
		return nil, nil, nil, false
	case r.seq == emptySeq:
		return nil, nil, nil, true
	case sh.cur != nil && r.seq == sh.cur.seq:
		s := sh.cur
		return s.xs[r.start : r.start+r.n], s.xw[r.start : r.start+r.n], s.xy[r.start : r.start+r.n], true
	case sh.prev != nil && r.seq == sh.prev.seq:
		s := sh.prev
		xs = s.xs[r.start : r.start+r.n]
		xw = s.xw[r.start : r.start+r.n]
		xy = s.xy[r.start : r.start+r.n]
		// Promote to the current generation when it has room, so entries
		// still in use outlive the next flip (the LRU-ish half of the
		// two-generation policy). The previous-generation copy stays
		// valid for concurrent readers.
		if sh.cur != nil && len(sh.cur.xs)+int(r.n) <= cap(sh.cur.xs) {
			start := int32(len(sh.cur.xs))
			sh.cur.xs = append(sh.cur.xs, xs...)
			sh.cur.xw = append(sh.cur.xw, xw...)
			sh.cur.xy = append(sh.cur.xy, xy...)
			c.recs[he] = structRec{seq: sh.cur.seq, start: start, n: r.n}
		}
		return xs, xw, xy, true
	default:
		return nil, nil, nil, false // evicted
	}
}

// put stores the intersection for hub edge he and returns arena-backed
// views of it. Entries larger than a whole slab are not cached (cached
// reports false) and the caller keeps pricing from its own buffers.
// A zero-length intersection is recorded as permanently empty.
func (c *structCache) put(he graph.EdgeID, xs []graph.NodeID, xw, xy []graph.EdgeID) (cxs []graph.NodeID, cxw, cxy []graph.EdgeID, cached bool) {
	n := len(xs)
	sh := &c.shards[he&c.mask]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if n == 0 {
		c.recs[he] = structRec{seq: emptySeq}
		return nil, nil, nil, true
	}
	if n > sh.slabCap {
		return nil, nil, nil, false
	}
	if sh.cur == nil {
		sh.cur = sh.newSlabFor(n)
	} else if len(sh.cur.xs)+n > cap(sh.cur.xs) {
		// Flip generations: retire prev (its records go stale by sequence
		// mismatch — no walk needed), demote cur, start a fresh slab.
		next := sh.newSlabFor(n)
		sh.prev = sh.cur
		sh.cur = next
	}
	s := sh.cur
	start := int32(len(s.xs))
	s.xs = append(s.xs, xs...)
	s.xw = append(s.xw, xw...)
	s.xy = append(s.xy, xy...)
	c.recs[he] = structRec{seq: s.seq, start: start, n: int32(n)}
	return s.xs[start : start+int32(n)], s.xw[start : start+int32(n)], s.xy[start : start+int32(n)], true
}
