package telemetry

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"
)

// SpanID identifies one span. The zero value is the implicit root:
// spans begun with parent RootSpan are top-level.
type SpanID uint64

// RootSpan is the parent of top-level spans.
const RootSpan SpanID = 0

// span is one recorded Begin/End pair. Children are kept in Begin
// order, which the instrumentation discipline makes deterministic.
type span struct {
	id       SpanID
	parent   SpanID
	name     string
	attrs    string
	endAttrs string
	ended    bool
	children []*span
}

// Tracer records a DETERMINISTIC span tree. Span IDs come from a
// seeded counter mixed through splitmix64 — never wall clock, never
// randomness — so the same seed and the same Begin sequence produce
// the same IDs, and Tree() renders byte-identically run after run.
//
// The determinism contract is split between the tracer and its
// callers: the tracer guarantees IDs and rendering are pure functions
// of the Begin sequence; instrumentation guarantees the Begin sequence
// itself is deterministic by beginning spans at coordination points (a
// portfolio begins member spans in member order before launching the
// race; the shard solver begins per-shard spans in index order before
// dispatch; the online daemon's re-solves are sequential by design).
// End may happen concurrently from worker goroutines — the tree orders
// children by Begin, not End, and End attributes attach per span.
//
// Wall-clock durations are deliberately carried OUT-OF-BAND
// (SetDuration/Duration): the tree itself contains no timing, so it
// can be pinned byte for byte while latency still gets measured.
//
// A nil *Tracer is a no-op on every method — the telemetry-off path,
// allocation-free.
type Tracer struct {
	seed uint64

	mu   sync.Mutex
	seq  uint64
	tops []*span
	byID map[SpanID]*span
	durs map[SpanID]time.Duration
}

// NewTracer returns a tracer whose span IDs are derived from seed.
func NewTracer(seed int64) *Tracer {
	return &Tracer{
		seed: uint64(seed),
		byID: map[SpanID]*span{},
		durs: map[SpanID]time.Duration{},
	}
}

// splitmix64 is the SplitMix64 finalizer — a bijective mixer that
// turns the sequential seeded counter into id-looking values without
// any randomness.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Begin opens a span under parent (RootSpan for top-level) with a
// deterministic attribute string. Attrs must not contain wall-clock or
// random content — that is what End-time SetDuration is for.
func (t *Tracer) Begin(parent SpanID, name, attrs string) SpanID {
	if t == nil {
		return RootSpan
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	id := SpanID(splitmix64(t.seed + t.seq))
	if id == RootSpan {
		id = SpanID(splitmix64(t.seed + t.seq + 1<<63))
	}
	s := &span{id: id, parent: parent, name: name, attrs: attrs}
	t.byID[id] = s
	if p, ok := t.byID[parent]; ok && parent != RootSpan {
		p.children = append(p.children, s)
	} else {
		t.tops = append(t.tops, s)
	}
	return id
}

// End closes a span, attaching deterministic end attributes (result
// class, iteration counts, costs — never durations).
func (t *Tracer) End(id SpanID, endAttrs string) {
	if t == nil || id == RootSpan {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.byID[id]; ok {
		s.ended = true
		s.endAttrs = endAttrs
	}
}

// SetDuration records a span's wall-clock duration out-of-band: it
// never appears in Tree(), only through Duration/Durations.
func (t *Tracer) SetDuration(id SpanID, d time.Duration) {
	if t == nil || id == RootSpan {
		return
	}
	t.mu.Lock()
	t.durs[id] = d
	t.mu.Unlock()
}

// Duration returns a span's out-of-band wall-clock duration (0 when
// none was recorded).
func (t *Tracer) Duration(id SpanID) time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.durs[id]
}

// Len returns the number of spans begun so far.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return int(t.seq)
}

// Tree renders the span forest: one line per span, two-space indent
// per depth, `name#id attrs -> endAttrs`, children in Begin order.
// Byte-identical across runs whenever the Begin sequence and the
// attribute strings are deterministic; contains no timing.
func (t *Tracer) Tree() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	var walk func(s *span, depth int)
	walk = func(s *span, depth int) {
		for i := 0; i < depth; i++ {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%s#%016x", s.name, uint64(s.id))
		if s.attrs != "" {
			b.WriteByte(' ')
			b.WriteString(s.attrs)
		}
		if s.ended {
			if s.endAttrs != "" {
				b.WriteString(" -> ")
				b.WriteString(s.endAttrs)
			}
		} else {
			b.WriteString(" [open]")
		}
		b.WriteByte('\n')
		for _, c := range s.children {
			walk(c, depth+1)
		}
	}
	for _, s := range t.tops {
		walk(s, 0)
	}
	return b.String()
}

// spanCtxKey carries (tracer, span) through a context.
type spanCtxKey struct{}

type spanCtx struct {
	t  *Tracer
	id SpanID
}

// NewContext returns ctx carrying the tracer and current span, so
// nested instrumentation (a member solve inside a portfolio race, an
// inner solve inside a shard) parents its spans correctly.
func NewContext(ctx context.Context, t *Tracer, id SpanID) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, spanCtx{t: t, id: id})
}

// FromContext extracts the tracer and current span from ctx; a nil
// tracer means ctx carries none.
func FromContext(ctx context.Context) (*Tracer, SpanID) {
	if sc, ok := ctx.Value(spanCtxKey{}).(spanCtx); ok {
		return sc.t, sc.id
	}
	return nil, RootSpan
}

// Event is one entry in an EventLog: a deterministic sequence number,
// a name, and a deterministic attribute string.
type Event struct {
	Seq   int
	Name  string
	Attrs string
}

// EventLog is an append-only stream of state-transition events —
// breaker trips, health flips — whose exact sequence tests assert.
// The zero value is ready; a nil *EventLog is a no-op. Safe for
// concurrent use, though a deterministic sequence additionally needs
// deterministic emit order from the instrumented code (the breaker and
// daemon emit from one goroutine).
type EventLog struct {
	mu     sync.Mutex
	events []Event
}

// Emit appends one event.
func (l *EventLog) Emit(name, attrs string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.events = append(l.events, Event{Seq: len(l.events), Name: name, Attrs: attrs})
	l.mu.Unlock()
}

// Events returns a copy of the stream so far.
func (l *EventLog) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Attrs returns the attribute strings of every event with the given
// name, in order — the shape transition-sequence assertions want.
func (l *EventLog) Attrs(name string) []string {
	var out []string
	for _, e := range l.Events() {
		if e.Name == name {
			out = append(out, e.Attrs)
		}
	}
	return out
}

// String renders the stream one event per line, deterministically.
func (l *EventLog) String() string {
	var b strings.Builder
	for _, e := range l.Events() {
		fmt.Fprintf(&b, "%d %s %s\n", e.Seq, e.Name, e.Attrs)
	}
	return b.String()
}
