package baseline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"piggyback/internal/graph"
	"piggyback/internal/graphgen"
	"piggyback/internal/workload"
)

func small() (*graph.Graph, *workload.Rates) {
	g := graphgen.Social(graphgen.TwitterLike(300, 1))
	return g, workload.LogDegree(g, 5)
}

func TestAllValid(t *testing.T) {
	g, r := small()
	for name, s := range map[string]interface{ Validate() error }{
		"push-all": PushAll(g),
		"pull-all": PullAll(g),
		"hybrid":   Hybrid(g, r),
	} {
		if err := s.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", name, err)
		}
	}
}

func TestPushAllCost(t *testing.T) {
	g, r := small()
	want := 0.0
	g.Edges(func(_ graph.EdgeID, u, _ graph.NodeID) bool {
		want += r.Prod[u]
		return true
	})
	if got := PushAll(g).Cost(r); math.Abs(got-want) > 1e-9 {
		t.Fatalf("PushAll cost = %v, want %v", got, want)
	}
}

func TestPullAllCost(t *testing.T) {
	g, r := small()
	want := 0.0
	g.Edges(func(_ graph.EdgeID, _, v graph.NodeID) bool {
		want += r.Cons[v]
		return true
	})
	if got := PullAll(g).Cost(r); math.Abs(got-want) > 1e-9 {
		t.Fatalf("PullAll cost = %v, want %v", got, want)
	}
}

func TestHybridNeverWorseThanEither(t *testing.T) {
	g, r := small()
	h := Hybrid(g, r).Cost(r)
	if push := PushAll(g).Cost(r); h > push+1e-9 {
		t.Fatalf("hybrid %v worse than push-all %v", h, push)
	}
	if pull := PullAll(g).Cost(r); h > pull+1e-9 {
		t.Fatalf("hybrid %v worse than pull-all %v", h, pull)
	}
}

func TestHybridCostAgreesWithSchedule(t *testing.T) {
	g, r := small()
	want := Hybrid(g, r).Cost(r)
	if got := HybridCost(g, r); math.Abs(got-want) > 1e-6 {
		t.Fatalf("HybridCost = %v, schedule cost %v", got, want)
	}
}

func TestEdgeCost(t *testing.T) {
	r := &workload.Rates{Prod: []float64{3, 10}, Cons: []float64{1, 7}}
	if got := EdgeCost(r, 0, 1); got != 3 {
		t.Fatalf("EdgeCost = %v, want 3 (push cheaper)", got)
	}
	if got := EdgeCost(r, 1, 0); got != 1 {
		t.Fatalf("EdgeCost = %v, want 1 (pull cheaper)", got)
	}
}

func TestReadDominatedPrefersPushAll(t *testing.T) {
	// With consumption far above production, hybrid ≈ push-all < pull-all.
	g := graphgen.Social(graphgen.FlickrLike(200, 2))
	r := workload.LogDegree(g, 100)
	h := Hybrid(g, r).Cost(r)
	push := PushAll(g).Cost(r)
	pull := PullAll(g).Cost(r)
	if h != push {
		// hybrid can only differ if some rc < rp; with ratio 100 that is
		// vanishingly rare but possible on isolated nodes — allow h <= push.
		if h > push {
			t.Fatalf("hybrid %v above push-all %v on read-dominated workload", h, push)
		}
	}
	if push >= pull {
		t.Fatalf("push-all %v should beat pull-all %v when reads dominate", push, pull)
	}
}

// Property: hybrid is the per-edge optimum: its cost equals the sum of
// per-edge minima and is ≤ any all-direct schedule's cost.
func TestQuickHybridOptimalDirect(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := graphgen.ErdosRenyi(n, 3*n, seed)
		r := workload.LogDegree(g, 0.5+rng.Float64()*20)
		want := 0.0
		g.Edges(func(_ graph.EdgeID, u, v graph.NodeID) bool {
			want += math.Min(r.Prod[u], r.Cons[v])
			return true
		})
		return math.Abs(Hybrid(g, r).Cost(r)-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
