// Package netstore is the networked variant of the §4.3 prototype: the
// data-store servers of package store exposed over TCP with a compact
// binary protocol, and a schedule-driven client that batches one request
// per server, exactly like Algorithm 3 against memcached. Where package
// store measures the scheduling effect in isolation (in-process message
// passing), netstore adds real sockets, so measured throughput includes
// genuine network stack costs.
package netstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"piggyback/internal/graph"
	"piggyback/internal/store"
)

// Protocol v2: every message is a length-prefixed frame carrying a
// protocol version and the sender's plan epoch. The epoch is the hook
// for drain-free schedule rollout (ROADMAP item 2b): servers stamp
// responses with the plan epoch they are serving, so a client can
// observe a rollout propagate without any side channel.
//
//	frame  := len(uint32 LE) version(1) epoch(uint32 LE) payload
//	request payload :=
//	    opUpdate(1) event{user int32, id int64, ts int64} n(uint32) n×view(int32)
//	  | opQuery(1)  k(uint32) n(uint32) n×view(int32)
//	response payload := status(1) rest
//	    status=statusOK:  update → empty, query → count(uint32) count×event
//	    status=statusErr: code(1) message(utf-8, rest of payload)
//
// Typed error frames replace v1's silent connection drops: a malformed
// request gets a statusErr reply (the framing is still intact — a bad
// payload says nothing about the stream position), while frame-level
// corruption still closes the connection, the only safe move once the
// length prefix itself cannot be trusted.
const (
	opUpdate byte = 1
	opQuery  byte = 2
)

// protocolVersion is the wire version this build speaks. A peer frame
// with any other version is rejected with ErrVersionMismatch.
const protocolVersion = 2

const (
	statusOK  byte = 0
	statusErr byte = 1
)

// frameHdr is the fixed frame overhead past the length prefix.
const frameHdr = 1 + 4 // version + epoch

// ErrVersionMismatch is returned when a peer speaks a different
// protocol version; the connection must be dropped.
var ErrVersionMismatch = errors.New("netstore: protocol version mismatch")

// ErrCode classifies a typed error frame.
type ErrCode byte

const (
	// ErrCodeMalformed means the request payload failed to decode.
	ErrCodeMalformed ErrCode = 1
	// ErrCodeUnknownOp means the request op byte is not recognized.
	ErrCodeUnknownOp ErrCode = 2
	// ErrCodeInternal means the server failed while serving a
	// well-formed request.
	ErrCodeInternal ErrCode = 3
)

// String names the code for logs.
func (c ErrCode) String() string {
	switch c {
	case ErrCodeMalformed:
		return "malformed"
	case ErrCodeUnknownOp:
		return "unknown-op"
	case ErrCodeInternal:
		return "internal"
	}
	return fmt.Sprintf("code-%d", byte(c))
}

// ServerError is a typed error frame from the server: the request was
// received and rejected deterministically. The stream stays usable, and
// retrying the identical request is pointless.
type ServerError struct {
	Code ErrCode
	Msg  string
}

func (e *ServerError) Error() string {
	return fmt.Sprintf("netstore: server error (%s): %s", e.Code, e.Msg)
}

// maxFrame bounds a frame to keep a malicious or corrupt peer from
// forcing huge allocations.
const maxFrame = 16 << 20

const eventWire = 4 + 8 + 8 // user + id + ts

func writeFrame(w io.Writer, epoch uint32, payload []byte) error {
	var hdr [4 + frameHdr]byte
	if len(payload) > maxFrame {
		return fmt.Errorf("netstore: frame of %d bytes exceeds limit", len(payload))
	}
	binary.LittleEndian.PutUint32(hdr[:], uint32(frameHdr+len(payload)))
	hdr[4] = protocolVersion
	binary.LittleEndian.PutUint32(hdr[5:], epoch)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader, buf []byte) (payload []byte, epoch uint32, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame+frameHdr {
		return nil, 0, fmt.Errorf("netstore: frame of %d bytes exceeds limit", n)
	}
	if n < frameHdr {
		return nil, 0, fmt.Errorf("netstore: frame of %d bytes is shorter than its header", n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, 0, err
	}
	if buf[0] != protocolVersion {
		return nil, 0, fmt.Errorf("%w: got %d, want %d", ErrVersionMismatch, buf[0], protocolVersion)
	}
	return buf[frameHdr:], binary.LittleEndian.Uint32(buf[1:]), nil
}

// okResponse builds a statusOK response payload around rest (nil for a
// bare ack).
func okResponse(rest []byte) []byte {
	out := make([]byte, 1+len(rest))
	out[0] = statusOK
	copy(out[1:], rest)
	return out
}

// errResponse builds a statusErr response payload.
func errResponse(code ErrCode, msg string) []byte {
	out := make([]byte, 2+len(msg))
	out[0] = statusErr
	out[1] = byte(code)
	copy(out[2:], msg)
	return out
}

// decodeResponse splits a response payload into its body, or a
// *ServerError for typed error frames.
func decodeResponse(payload []byte) ([]byte, error) {
	if len(payload) < 1 {
		return nil, fmt.Errorf("netstore: empty response")
	}
	switch payload[0] {
	case statusOK:
		return payload[1:], nil
	case statusErr:
		if len(payload) < 2 {
			return nil, fmt.Errorf("netstore: truncated error frame")
		}
		return nil, &ServerError{Code: ErrCode(payload[1]), Msg: string(payload[2:])}
	default:
		return nil, fmt.Errorf("netstore: unknown response status %d", payload[0])
	}
}

func putEvent(b []byte, ev store.Event) {
	binary.LittleEndian.PutUint32(b[0:], uint32(ev.User))
	binary.LittleEndian.PutUint64(b[4:], uint64(ev.ID))
	binary.LittleEndian.PutUint64(b[12:], uint64(ev.TS))
}

func getEvent(b []byte) store.Event {
	return store.Event{
		User: graph.NodeID(binary.LittleEndian.Uint32(b[0:])),
		ID:   int64(binary.LittleEndian.Uint64(b[4:])),
		TS:   int64(binary.LittleEndian.Uint64(b[12:])),
	}
}

// encodeUpdate builds an update request frame body.
func encodeUpdate(ev store.Event, views []graph.NodeID) []byte {
	body := make([]byte, 1+eventWire+4+4*len(views))
	body[0] = opUpdate
	putEvent(body[1:], ev)
	binary.LittleEndian.PutUint32(body[1+eventWire:], uint32(len(views)))
	off := 1 + eventWire + 4
	for i, v := range views {
		binary.LittleEndian.PutUint32(body[off+4*i:], uint32(v))
	}
	return body
}

// encodeQuery builds a query request frame body.
func encodeQuery(k int, views []graph.NodeID) []byte {
	body := make([]byte, 1+4+4+4*len(views))
	body[0] = opQuery
	binary.LittleEndian.PutUint32(body[1:], uint32(k))
	binary.LittleEndian.PutUint32(body[5:], uint32(len(views)))
	for i, v := range views {
		binary.LittleEndian.PutUint32(body[9+4*i:], uint32(v))
	}
	return body
}

// decodeRequest parses a request body.
func decodeRequest(body []byte) (op byte, ev store.Event, k int, views []graph.NodeID, err error) {
	if len(body) < 1 {
		return 0, store.Event{}, 0, nil, fmt.Errorf("netstore: empty request")
	}
	op = body[0]
	switch op {
	case opUpdate:
		if len(body) < 1+eventWire+4 {
			return 0, store.Event{}, 0, nil, fmt.Errorf("netstore: short update frame")
		}
		ev = getEvent(body[1:])
		n := int(binary.LittleEndian.Uint32(body[1+eventWire:]))
		off := 1 + eventWire + 4
		if len(body) != off+4*n {
			return 0, store.Event{}, 0, nil, fmt.Errorf("netstore: update frame length mismatch")
		}
		views = make([]graph.NodeID, n)
		for i := range views {
			views[i] = graph.NodeID(binary.LittleEndian.Uint32(body[off+4*i:]))
		}
	case opQuery:
		if len(body) < 9 {
			return 0, store.Event{}, 0, nil, fmt.Errorf("netstore: short query frame")
		}
		k = int(binary.LittleEndian.Uint32(body[1:]))
		n := int(binary.LittleEndian.Uint32(body[5:]))
		if len(body) != 9+4*n {
			return 0, store.Event{}, 0, nil, fmt.Errorf("netstore: query frame length mismatch")
		}
		views = make([]graph.NodeID, n)
		for i := range views {
			views[i] = graph.NodeID(binary.LittleEndian.Uint32(body[9+4*i:]))
		}
	default:
		return 0, store.Event{}, 0, nil, unknownOpError(op)
	}
	return op, ev, k, views, nil
}

// encodeEvents builds a query response body.
func encodeEvents(events []store.Event) []byte {
	body := make([]byte, 4+eventWire*len(events))
	binary.LittleEndian.PutUint32(body, uint32(len(events)))
	for i, ev := range events {
		putEvent(body[4+eventWire*i:], ev)
	}
	return body
}

// decodeEvents parses a query response body.
func decodeEvents(body []byte) ([]store.Event, error) {
	if len(body) < 4 {
		return nil, fmt.Errorf("netstore: short query response")
	}
	n := int(binary.LittleEndian.Uint32(body))
	if len(body) != 4+eventWire*n {
		return nil, fmt.Errorf("netstore: query response length mismatch")
	}
	out := make([]store.Event, n)
	for i := range out {
		out[i] = getEvent(body[4+eventWire*i:])
	}
	return out, nil
}
