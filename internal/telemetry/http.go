package telemetry

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns an http.Handler exposing the registry:
//
//	/metrics      Prometheus text format 0.0.4
//	/metrics.txt  the compact deterministic Snapshot().String() form
//	/debug/vars   expvar (process-global, includes memstats/cmdline)
//	/debug/pprof  the standard net/http/pprof profiles
//
// pprof is mounted on this explicit mux rather than relying on
// http.DefaultServeMux, so exposition stays opt-in: nothing is served
// unless the caller binds this handler.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, r.Snapshot().PromText())
	})
	mux.HandleFunc("/metrics.txt", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, r.Snapshot().String())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "piggyback telemetry\n\n/metrics\n/metrics.txt\n/debug/vars\n/debug/pprof/\n")
	})
	return mux
}

// Serve binds addr and serves Handler(r) on it in a background
// goroutine, returning the bound listener (so addr may be ":0" and the
// caller can read the real port). The caller owns the listener; Close
// it to stop serving.
func Serve(addr string, r *Registry) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler(r)}
	go func() { _ = srv.Serve(ln) }()
	return ln, nil
}
