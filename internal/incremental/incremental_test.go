package incremental

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"piggyback/internal/baseline"
	"piggyback/internal/core"
	"piggyback/internal/graph"
	"piggyback/internal/graphgen"
	"piggyback/internal/nosy"
	"piggyback/internal/workload"
)

func optimized(n int, seed int64) (*graph.Graph, *workload.Rates, *Maintainer) {
	g := graphgen.Social(graphgen.TwitterLike(n, seed))
	r := workload.LogDegree(g, 5)
	res := nosy.Solve(g, r, nosy.Config{})
	return g, r, New(res.Schedule, r)
}

func TestCostMatchesScheduleInitially(t *testing.T) {
	g := graphgen.Social(graphgen.TwitterLike(300, 1))
	r := workload.LogDegree(g, 5)
	res := nosy.Solve(g, r, nosy.Config{})
	m := New(res.Schedule, r)
	if math.Abs(m.Cost()-res.Schedule.Cost(r)) > 1e-9 {
		t.Fatalf("maintainer cost %v != schedule cost %v", m.Cost(), res.Schedule.Cost(r))
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NumEdges() != g.NumEdges() {
		t.Fatalf("NumEdges = %d, want %d", m.NumEdges(), g.NumEdges())
	}
}

func TestAddEdgeHybridCost(t *testing.T) {
	g, r, m := optimized(200, 2)
	before := m.Cost()
	// Find a missing edge.
	var u, v graph.NodeID
	found := false
	for a := 0; a < g.NumNodes() && !found; a++ {
		for b := 0; b < g.NumNodes() && !found; b++ {
			if a != b && !g.HasEdge(graph.NodeID(a), graph.NodeID(b)) {
				u, v = graph.NodeID(a), graph.NodeID(b)
				found = true
			}
		}
	}
	if !found {
		t.Skip("graph is complete")
	}
	if err := m.AddEdge(u, v); err != nil {
		t.Fatal(err)
	}
	// The edge is either covered for free through an existing hub or
	// served directly at the hybrid cost — never anything worse.
	want := before + math.Min(r.Prod[u], r.Cons[v])
	if _, _, _, covered := m.findHub(u, v); covered {
		want = before
	}
	if math.Abs(m.Cost()-want) > 1e-9 {
		t.Fatalf("cost after add = %v, want %v", m.Cost(), want)
	}
	if err := m.AddEdge(u, v); err == nil {
		t.Fatal("duplicate AddEdge should fail")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddEdgeRejectsBad(t *testing.T) {
	_, _, m := optimized(50, 3)
	if err := m.AddEdge(1, 1); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := m.AddEdge(0, 10000); err == nil {
		t.Fatal("out-of-range accepted")
	}
	if err := m.RemoveEdge(0, 10000); err == nil {
		t.Fatal("out-of-range remove accepted")
	}
	if err := m.RemoveEdge(-1, 0); err == nil {
		t.Fatal("negative-id remove accepted")
	}
}

func TestRemoveSupportEdgeRescuesCovered(t *testing.T) {
	// Figure-2 shape: 0→1 push, 1→2 pull, 0→2 covered through 1.
	g := graph.FromEdges(3, []graph.Edge{
		{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 2},
	})
	r := workload.NewUniform(3, 1)
	res := nosy.Solve(g, r, nosy.Config{})
	m := New(res.Schedule, r)

	// Removing the pull edge 1→2 must rescue the covered edge 0→2.
	if err := m.RemoveEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("after removing hub pull: %v", err)
	}
	if m.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", m.NumEdges())
	}
	// 0→2 is now served directly: cost = push(0→1) + direct(0→2) = 2.
	if got := m.Cost(); got != 2 {
		t.Fatalf("cost = %v, want 2", got)
	}
}

func TestRemovePushSupportRescues(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{
		{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 2},
	})
	r := workload.NewUniform(3, 1)
	res := nosy.Solve(g, r, nosy.Config{})
	m := New(res.Schedule, r)
	if err := m.RemoveEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("after removing hub push: %v", err)
	}
}

func TestRemoveThenReAdd(t *testing.T) {
	_, _, m := optimized(200, 5)
	g := graphgen.Social(graphgen.TwitterLike(200, 5))
	e := g.EdgeList()[0]
	if err := m.RemoveEdge(e.From, e.To); err != nil {
		t.Fatal(err)
	}
	if err := m.RemoveEdge(e.From, e.To); err == nil {
		t.Fatal("double remove should fail")
	}
	if err := m.AddEdge(e.From, e.To); err != nil {
		t.Fatalf("re-add after remove: %v", err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLiveEdgesRoundTrip(t *testing.T) {
	g, _, m := optimized(150, 7)
	e := g.EdgeList()[3]
	m.RemoveEdge(e.From, e.To)
	m.AddEdge(e.To, e.From) // may exist already; ignore error
	live := m.LiveEdges()
	if len(live) != m.NumEdges() {
		t.Fatalf("LiveEdges %d != NumEdges %d", len(live), m.NumEdges())
	}
	rebuilt := graph.FromEdges(g.NumNodes(), live)
	if rebuilt.NumEdges() > m.NumEdges() {
		t.Fatal("rebuild created edges")
	}
}

// The core §3.3 claim behind Figure 5: incremental maintenance after
// adding a batch of edges is worse than re-optimizing, but not by much,
// and both stay no worse than hybrid.
func TestIncrementalVsStatic(t *testing.T) {
	full := graphgen.Social(graphgen.TwitterLike(400, 11))
	r := workload.LogDegree(full, 5)
	edges := full.EdgeList()
	rng := rand.New(rand.NewSource(1))
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	half := edges[:len(edges)/2]
	rest := edges[len(edges)/2:]

	base := graph.FromEdges(full.NumNodes(), half)
	baseSched := nosy.Solve(base, r, nosy.Config{}).Schedule
	m := New(baseSched, r)
	for _, e := range rest {
		if err := m.AddEdge(e.From, e.To); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	incCost := m.Cost()
	staticCost := nosy.Solve(full, r, nosy.Config{}).Schedule.Cost(r)
	hybrid := baseline.HybridCost(full, r)
	if staticCost > incCost+1e-9 {
		t.Fatalf("static re-optimization (%v) worse than incremental (%v)", staticCost, incCost)
	}
	if incCost > hybrid+1e-9 {
		t.Fatalf("incremental (%v) worse than hybrid (%v)", incCost, hybrid)
	}
}

// countCovered recounts live covered edges (base and extra) from scratch
// — the quantity that bounds the dep index, cross-checked against the
// maintainer's running CoveredCount.
func countCovered(t *testing.T, m *Maintainer) int {
	t.Helper()
	covered := 0
	m.g.Edges(func(e graph.EdgeID, u, v graph.NodeID) bool {
		if !m.removed.Test(int(e)) && m.sched.IsCovered(e) {
			covered++
		}
		return true
	})
	for _, x := range m.extra {
		if !x.removed && x.flags&core.FlagCovered != 0 {
			covered++
		}
	}
	if got := m.CoveredCount(); got != covered {
		t.Fatalf("CoveredCount = %d, recount = %d", got, covered)
	}
	return covered
}

// TestChurnDepsStayBounded drives a long random add/remove sequence and
// checks that the support-edge dep index shrinks with the covered set:
// every rescued or removed covered edge must leave the dep lists of BOTH
// its supports, so the index never accumulates stale entries. The
// regression this guards: deps entries for edges re-served directly used
// to linger forever, growing the index monotonically under churn.
func TestChurnDepsStayBounded(t *testing.T) {
	g := graphgen.Social(graphgen.FlickrLike(200, 3))
	r := workload.LogDegree(g, 5)
	m := New(nosy.Solve(g, r, nosy.Config{}).Schedule, r)

	// Each dep entry must reference a live covered edge, and a covered
	// edge has at most two supports: the index is bounded by 2·covered.
	bound := func() int { return 2 * countCovered(t, m) }
	if got := m.DepEntries(); got > bound() {
		t.Fatalf("initial deps entries %d exceed 2·covered = %d", got, bound())
	}

	edges := g.EdgeList()
	rng := rand.New(rand.NewSource(42))
	for op := 0; op < 1000; op++ {
		if rng.Intn(2) == 0 {
			e := edges[rng.Intn(len(edges))]
			_ = m.RemoveEdge(e.From, e.To) // may already be removed
		} else {
			u := graph.NodeID(rng.Intn(g.NumNodes()))
			v := graph.NodeID(rng.Intn(g.NumNodes()))
			if u != v {
				_ = m.AddEdge(u, v) // may already exist
			}
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
		if got, b := m.DepEntries(), bound(); got > b {
			t.Fatalf("op %d: deps entries %d exceed 2·covered = %d", op, got, b)
		}
	}
}

// Property: random removals and additions never break validity, and cost
// stays non-negative.
func TestQuickRandomChurn(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(60)
		g := graphgen.Social(graphgen.Config{
			Nodes: n, AvgFollows: 4, TriadProb: 0.5, Reciprocity: 0.3, Seed: seed,
		})
		r := workload.LogDegree(g, 5)
		m := New(nosy.Solve(g, r, nosy.Config{}).Schedule, r)
		edges := g.EdgeList()
		for op := 0; op < 40; op++ {
			if rng.Intn(2) == 0 && len(edges) > 0 {
				e := edges[rng.Intn(len(edges))]
				_ = m.RemoveEdge(e.From, e.To) // may already be removed
			} else {
				u := graph.NodeID(rng.Intn(n))
				v := graph.NodeID(rng.Intn(n))
				if u != v {
					_ = m.AddEdge(u, v) // may already exist
				}
			}
			if m.Validate() != nil || m.Cost() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// The satellite regression for the AddEdge hub-membership check: an edge
// whose endpoints are already bracketed by a paid push u→w / pull w→v
// pair must be covered for free instead of paying the hybrid cost.
func TestAddEdgeCoversThroughExistingHub(t *testing.T) {
	// 0→1 push, 1→2 pull, 1→3 pull; 0→2 covered via hub 1. The edge 0→3
	// is absent but coverable through the same hub.
	g := graph.FromEdges(4, []graph.Edge{
		{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 2}, {From: 1, To: 3},
	})
	r := workload.NewUniform(4, 1)
	s := core.NewSchedule(g)
	up, _ := g.EdgeID(0, 1)
	d2, _ := g.EdgeID(1, 2)
	d3, _ := g.EdgeID(1, 3)
	cov, _ := g.EdgeID(0, 2)
	s.SetPush(up)
	s.SetPull(d2)
	s.SetPull(d3)
	s.SetCovered(cov, 1)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	m := New(s, r)
	before := m.Cost()

	if err := m.AddEdge(0, 3); err != nil {
		t.Fatal(err)
	}
	if got := m.Cost(); got != before {
		t.Fatalf("coverable add changed cost: %v → %v", before, got)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := m.CoveredCount(); got != 2 {
		t.Fatalf("CoveredCount = %d, want 2", got)
	}

	// Removing the pull support 1→3 must rescue the covered extra edge.
	rescued := 0
	m.OnRescue = func(u, v graph.NodeID, cost float64) {
		if u == 0 && v == 3 {
			rescued++
		}
	}
	if err := m.RemoveEdge(1, 3); err != nil {
		t.Fatal(err)
	}
	if rescued != 1 {
		t.Fatalf("rescue hook fired %d times for 0→3, want 1", rescued)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Hub-dense regression: re-adding previously covered edges of an
// optimized Flickr-like schedule must come out cheaper than the direct
// hybrid patching the old maintainer did, because at least some re-adds
// find their hub still paid for.
func TestReAddOnHubDenseGraphBeatsDirectPatching(t *testing.T) {
	g := graphgen.Social(graphgen.FlickrLike(300, 17))
	r := workload.LogDegree(g, 5)
	m := New(nosy.Solve(g, r, nosy.Config{}).Schedule, r)

	var coveredEdges []graph.Edge
	g.Edges(func(e graph.EdgeID, u, v graph.NodeID) bool {
		if m.sched.IsCovered(e) && len(coveredEdges) < 40 {
			coveredEdges = append(coveredEdges, graph.Edge{From: u, To: v})
		}
		return true
	})
	if len(coveredEdges) < 10 {
		t.Skipf("only %d covered edges; graph not hub-dense enough", len(coveredEdges))
	}
	for _, e := range coveredEdges {
		if err := m.RemoveEdge(e.From, e.To); err != nil {
			t.Fatal(err)
		}
	}
	afterRemove := m.Cost()
	directPatch := afterRemove
	for _, e := range coveredEdges {
		directPatch += math.Min(r.Prod[e.From], r.Cons[e.To])
		if err := m.AddEdge(e.From, e.To); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Cost() >= directPatch-1e-9 {
		t.Fatalf("hub-membership check saved nothing: cost %v vs direct patching %v",
			m.Cost(), directPatch)
	}
}

// costAgrees rebases the maintainer and checks the running cost against
// a fresh core.Schedule.Cost recomputation over the live graph.
func costAgrees(t *testing.T, m *Maintainer, r *workload.Rates) {
	t.Helper()
	ng, ns := m.Rebase()
	if err := ns.Validate(); err != nil {
		t.Fatalf("rebased schedule invalid: %v", err)
	}
	if ng.NumEdges() != m.NumEdges() {
		t.Fatalf("rebased graph has %d edges, maintainer reports %d",
			ng.NumEdges(), m.NumEdges())
	}
	fresh := ns.Cost(r)
	if diff := math.Abs(fresh - m.Cost()); diff > 1e-6*(1+math.Abs(fresh)) {
		t.Fatalf("running cost %v != fresh recomputation %v (diff %v)",
			m.Cost(), fresh, diff)
	}
}

func TestRunningCostMatchesRecompute(t *testing.T) {
	g, r, m := optimized(250, 19)
	costAgrees(t, m, r)
	edges := g.EdgeList()
	rng := rand.New(rand.NewSource(7))
	for op := 0; op < 300; op++ {
		switch rng.Intn(5) {
		case 0, 1:
			e := edges[rng.Intn(len(edges))]
			_ = m.RemoveEdge(e.From, e.To)
		case 2, 3:
			u := graph.NodeID(rng.Intn(g.NumNodes()))
			v := graph.NodeID(rng.Intn(g.NumNodes()))
			if u != v {
				_ = m.AddEdge(u, v)
			}
		case 4:
			u := graph.NodeID(rng.Intn(g.NumNodes()))
			if err := m.UpdateRates(u, rng.Float64()*4, rng.Float64()*10); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	costAgrees(t, m, r)
}

// The satellite churn property test: a 1000-op random add/remove/
// re-solve sequence keeps Validate() passing and the running Cost()
// equal to a fresh core.Schedule.Cost recomputation of the rebased live
// graph. CI runs this package under -race.
func TestChurnPropertyAddRemoveResolve(t *testing.T) {
	nodes := 200
	if testing.Short() {
		nodes = 80
	}
	g := graphgen.Social(graphgen.FlickrLike(nodes, 23))
	r := workload.LogDegree(g, 5)
	m := New(nosy.Solve(g, r, nosy.Config{}).Schedule, r)
	live := g
	rng := rand.New(rand.NewSource(99))

	for op := 0; op < 1000; op++ {
		switch {
		case op%97 == 96: // periodic localized re-solve of a churned region
			ng, ns := m.Rebase()
			seed := graph.NodeID(rng.Intn(ng.NumNodes()))
			region := graph.InducedEdgeIDs(ng, graph.KHop(ng, []graph.NodeID{seed}, 2, 60))
			res := nosy.SolveRestricted(ng, r, nosy.Config{}, ns, region)
			if err := res.Schedule.Validate(); err != nil {
				t.Fatalf("op %d: restricted re-solve invalid: %v", op, err)
			}
			m = New(res.Schedule, r)
			live = ng
		case rng.Intn(2) == 0:
			el := live.EdgeList()
			e := el[rng.Intn(len(el))]
			_ = m.RemoveEdge(e.From, e.To)
		default:
			u := graph.NodeID(rng.Intn(live.NumNodes()))
			v := graph.NodeID(rng.Intn(live.NumNodes()))
			if u != v {
				_ = m.AddEdge(u, v)
			}
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
	}
	costAgrees(t, m, r)
}

func TestUpdateRatesRejectsBad(t *testing.T) {
	_, _, m := optimized(50, 3)
	if err := m.UpdateRates(-1, 1, 1); err == nil {
		t.Fatal("negative user accepted")
	}
	if err := m.UpdateRates(0, -1, 1); err == nil {
		t.Fatal("negative rate accepted")
	}
	if err := m.UpdateRates(0, math.NaN(), 1); err == nil {
		t.Fatal("NaN rate accepted")
	}
}
