package netstore

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"piggyback/internal/baseline"
	"piggyback/internal/core"
	"piggyback/internal/fault"
	"piggyback/internal/graph"
	"piggyback/internal/graphgen"
	"piggyback/internal/store"
	"piggyback/internal/workload"
)

const (
	chaosSeed    = 42
	chaosServers = 3
)

// chaosWorkload builds the pinned graph, schedule, and request trace
// shared by the fault-free and chaos runs.
func chaosWorkload(ops int) (*core.Schedule, store.Trace) {
	g := graphgen.Social(graphgen.TwitterLike(80, 9))
	r := workload.LogDegree(g, 5)
	return baseline.Hybrid(g, r), store.GenerateTrace(r, ops, chaosSeed)
}

// traceEvent is the event op i shares — a pure function of the trace,
// identical in every run, with a trace-unique timestamp so the final
// per-view event sets are insertion-order independent.
func traceEvent(req store.Request, i int) store.Event {
	return store.Event{User: req.User, ID: int64(i), TS: int64(i + 1)}
}

// restartServer rebinds a crashed server's address with its durable
// views restored — the restart half of a crash-recovery cycle.
func restartServer(t *testing.T, addr string, views map[graph.NodeID][]store.Event) *Server {
	t.Helper()
	var err error
	for i := 0; i < 100; i++ {
		var srv *Server
		if srv, err = NewServerWith(addr, ServerConfig{Views: views}); err == nil {
			return srv
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("restarting server on %s: %v", addr, err)
	return nil
}

// runFaultFree applies the trace against a healthy cluster and returns
// each server's final views — the reference the chaos run must converge
// to byte for byte.
func runFaultFree(t *testing.T, sched *core.Schedule, trace store.Trace) []map[graph.NodeID][]store.Event {
	t.Helper()
	srvs := make([]*Server, chaosServers)
	addrs := make([]string, chaosServers)
	for i := range srvs {
		srv, err := NewServer("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srvs[i] = srv
		addrs[i] = srv.Addr()
	}
	cl, err := DialConfigured(sched, addrs, DialConfig{Seed: chaosSeed})
	if err != nil {
		t.Fatal(err)
	}
	for i, req := range trace {
		if req.IsUpdate {
			if err := cl.Update(req.User, traceEvent(req, i)); err != nil {
				t.Fatalf("fault-free op %d: %v", i, err)
			}
		} else if _, err := cl.Query(req.User); err != nil {
			t.Fatalf("fault-free op %d: %v", i, err)
		}
	}
	cl.Close()
	snaps := make([]map[graph.NodeID][]store.Event, chaosServers)
	for i, srv := range srvs {
		srv.Close()
		snaps[i] = srv.Snapshot()
	}
	return snaps
}

// runChaos applies the same trace under the pinned fault schedule —
// delayed and dropped frames plus a mid-stream reset on server 0, a
// crash-and-restart of server 1 mid-trace, and a crash of server 2 that
// only recovers after the trace — and asserts the acceptance criteria:
// zero client-visible operation failures and, after handoff replay,
// views byte-identical to the fault-free run. It returns the per-server
// retry logs so the caller can pin backoff determinism across runs.
func runChaos(t *testing.T, sched *core.Schedule, trace store.Trace, want []map[graph.NodeID][]store.Event) [][]string {
	t.Helper()
	ops := len(trace)
	crash1, restart1, crash2 := ops/5, ops*3/5, ops*4/5

	plan := &fault.Plan{Seed: chaosSeed, Rules: []fault.Rule{
		{Kind: fault.KindDelay, Conn: -1, Op: 40, Count: 3, Delay: 2 * time.Millisecond},
		{Kind: fault.KindDelay, Conn: -1, Op: 200, Count: 2, Delay: 3 * time.Millisecond},
		{Kind: fault.KindReset, Conn: 0, Op: 120},
		{Kind: fault.KindDrop, Conn: 1, Op: 150},
	}}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv0 := NewServerOn(plan.WrapListener(ln), ServerConfig{})
	srv1, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{srv0.Addr(), srv1.Addr(), srv2.Addr()}

	logs := make([][]string, chaosServers)
	cl, err := DialConfigured(sched, addrs, DialConfig{
		Seed:        chaosSeed,
		Timeout:     500 * time.Millisecond,
		BackoffBase: 2 * time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
		ProbeEvery:  4,
		OnRetry: func(server, attempt int, delay time.Duration) {
			logs[server] = append(logs[server], fmt.Sprintf("a%d/%s", attempt, delay))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var snap1, snap2 map[graph.NodeID][]store.Event
	for i, req := range trace {
		switch i {
		case crash1:
			srv1.Close()
			snap1 = srv1.Snapshot()
		case restart1:
			srv1 = restartServer(t, addrs[1], snap1)
		case crash2:
			srv2.Close()
			snap2 = srv2.Snapshot()
		}
		if req.IsUpdate {
			if err := cl.Update(req.User, traceEvent(req, i)); err != nil {
				t.Fatalf("chaos op %d (update): client-visible failure: %v", i, err)
			}
		} else if _, err := cl.Query(req.User); err != nil {
			t.Fatalf("chaos op %d (query): client-visible failure: %v", i, err)
		}
	}
	srv2 = restartServer(t, addrs[2], snap2)
	if still := cl.Recover(); still != 0 {
		t.Fatalf("%d servers still down after every restart", still)
	}

	st := cl.Stats()
	srvs := []*Server{srv0, srv1, srv2}
	for i, srv := range srvs {
		srv.Close()
		got := srv.Snapshot()
		if !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("server %d: views diverged from the fault-free run after recovery (%d views vs %d)",
				i, len(got), len(want[i]))
		}
	}

	if st.DownEvents < 2 {
		t.Fatalf("both crashes should have been detected: %+v", st)
	}
	if st.Parked == 0 || st.Replayed != st.Parked || st.HandoffDrops != 0 {
		t.Fatalf("hinted handoff did not park and fully replay: %+v", st)
	}
	if st.DegradedQueries == 0 {
		t.Fatalf("no query took the degraded pull-all path during downtime: %+v", st)
	}
	if st.Retries == 0 || st.Redials <= chaosServers {
		t.Fatalf("injected faults caused no retries/redials: %+v", st)
	}
	if fired := plan.FiredOn(0); len(fired) == 0 {
		t.Fatal("the fault plan injected nothing on server 0's first connection")
	}
	return logs
}

// TestChaosAcceptance is the PR's acceptance test: a seeded fault plan
// (two server crashes, one mid-trace restart, delayed/dropped/reset
// frames) over the request trace must end with zero failed client
// operations and, after hinted-handoff replay, views byte-identical to
// a fault-free run. Running the chaos twice must produce byte-identical
// per-server retry schedules — the determinism claim of package fault.
func TestChaosAcceptance(t *testing.T) {
	ops := 2000
	if testing.Short() {
		ops = 800
	}
	sched, trace := chaosWorkload(ops)
	want := runFaultFree(t, sched, trace)

	first := runChaos(t, sched, trace, want)
	second := runChaos(t, sched, trace, want)
	for si := range first {
		if !reflect.DeepEqual(first[si], second[si]) {
			t.Fatalf("server %d: retry schedules differ between identically seeded runs:\n%v\nvs\n%v",
				si, first[si], second[si])
		}
	}
}

// TestRedialAfterTimeout is the regression test for the conn-reuse bug:
// a request whose reply is lost (server-side drop) times out, and the
// client must retry on a FRESH connection — reusing the timed-out one
// would read the next reply against the wrong request. The retried
// update must also not double-insert (idempotent server insert).
func TestRedialAfterTimeout(t *testing.T) {
	g, _ := figure2()
	s := baseline.PushAll(g)
	// Connection 0's second reply (write op 1) is silently dropped.
	plan := &fault.Plan{Rules: []fault.Rule{{Kind: fault.KindDrop, Conn: 0, Op: 1}}}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServerOn(plan.WrapListener(ln), ServerConfig{})
	defer srv.Close()

	cl, err := DialConfigured(s, []string{srv.Addr()}, DialConfig{
		Timeout: 150 * time.Millisecond, BackoffBase: time.Millisecond, BackoffMax: 4 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.Update(0, store.Event{User: 0, ID: 1, TS: 1}); err != nil {
		t.Fatal(err)
	}
	// This update is applied by the server, but its ack is dropped: the
	// client times out and must redial + retry the identical frame.
	if err := cl.Update(0, store.Event{User: 0, ID: 2, TS: 2}); err != nil {
		t.Fatalf("update with a dropped ack failed instead of being retried: %v", err)
	}
	// Next request on the same logical server must succeed — and see the
	// retried event exactly once.
	got, err := cl.Query(2)
	if err != nil {
		t.Fatalf("request after a timed-out request failed: %v", err)
	}
	n := 0
	for _, ev := range got {
		if ev.User == 0 && ev.ID == 2 {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("retried update appears %d times in the view, want exactly 1 (%v)", n, got)
	}
	st := cl.Stats()
	if st.Retries == 0 {
		t.Fatalf("dropped ack caused no retry: %+v", st)
	}
	if st.Redials < 2 {
		t.Fatalf("timed-out connection was reused instead of redialed: %+v", st)
	}
	if len(plan.FiredOn(0)) != 1 {
		t.Fatalf("fault plan fired %v, want exactly the one drop", plan.Fired())
	}
}

// TestMalformedFrameGetsTypedError pins the server's malformed-frame
// behavior: a well-framed but undecodable payload gets a typed error
// reply (not a silent drop), the OnProtoError hook fires, and the
// connection stays usable for well-formed requests afterwards.
func TestMalformedFrameGetsTypedError(t *testing.T) {
	var mu sync.Mutex
	var hooked []error
	srv, err := NewServerWith("127.0.0.1:0", ServerConfig{
		OnProtoError: func(remote string, err error) {
			mu.Lock()
			hooked = append(hooked, err)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	bw := bufio.NewWriter(c)
	br := bufio.NewReader(c)
	roundTrip := func(payload []byte) ([]byte, error) {
		t.Helper()
		if err := writeFrame(bw, 0, payload); err != nil {
			t.Fatal(err)
		}
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
		reply, _, err := readFrame(br, nil)
		if err != nil {
			t.Fatalf("server dropped the connection instead of replying: %v", err)
		}
		return decodeResponse(reply)
	}

	var se *ServerError
	if _, err := roundTrip([]byte{99}); !errors.As(err, &se) || se.Code != ErrCodeUnknownOp {
		t.Fatalf("unknown op: got %v, want a ServerError with code unknown-op", err)
	}
	if _, err := roundTrip([]byte{opUpdate, 1, 2}); !errors.As(err, &se) || se.Code != ErrCodeMalformed {
		t.Fatalf("short update: got %v, want a ServerError with code malformed", err)
	}

	// The same connection still serves well-formed requests.
	ev := store.Event{User: 7, ID: 3, TS: 9}
	if _, err := roundTrip(encodeUpdate(ev, []graph.NodeID{7})); err != nil {
		t.Fatalf("update after malformed frames: %v", err)
	}
	body, err := roundTrip(encodeQuery(store.StreamSize, []graph.NodeID{7}))
	if err != nil {
		t.Fatalf("query after malformed frames: %v", err)
	}
	evs, err := decodeEvents(body)
	if err != nil || len(evs) != 1 || evs[0] != ev {
		t.Fatalf("query reply = %v (%v), want the one update", evs, err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(hooked) != 2 {
		t.Fatalf("OnProtoError fired %d times, want 2: %v", len(hooked), hooked)
	}
}
