package netstore

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"piggyback/internal/core"
	"piggyback/internal/graph"
	"piggyback/internal/partition"
	"piggyback/internal/store"
	"piggyback/internal/telemetry"
)

// RequestTimeout bounds one server round-trip. The paper's prototype
// omits failure handling "for simplicity"; a real client must at least
// fail fast instead of hanging when a data-store server dies mid-request.
const RequestTimeout = 5 * time.Second

// Sentinel errors for the failure-handling paths.
var (
	// ErrServerDown wraps every operation error caused by a server the
	// client currently considers unreachable (retries exhausted).
	ErrServerDown = errors.New("netstore: server down")
	// ErrHandoffFull means a failed update could not be parked because
	// the per-server hinted-handoff buffer hit its cap — the one way a
	// server outage becomes a client-visible update failure.
	ErrHandoffFull = errors.New("netstore: hinted-handoff buffer full")
)

// DialConfig tunes the client's failure handling. The zero value uses
// every default; Dial/DialWithSeed use the zero value.
type DialConfig struct {
	// Seed is both the partition seed (must match the seed used to
	// shard data across the servers) and the root of the deterministic
	// retry jitter: each server's backoff jitter stream is seeded by
	// Seed and the server index, so two runs with the same seed and the
	// same fault schedule produce byte-identical retry schedules.
	Seed int64
	// Timeout bounds one round-trip; 0 means RequestTimeout.
	Timeout time.Duration
	// Retries is how many times a failed round-trip is retried (with
	// backoff and a fresh connection) before the server is marked down;
	// 0 means 2, negative means none.
	Retries int
	// BackoffBase/BackoffMax shape the capped exponential backoff
	// between retries: attempt k waits min(BackoffBase·2^(k-1),
	// BackoffMax) plus deterministic jitter in [0, wait/2). Defaults
	// 5ms / 250ms.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// ProbeEvery is how many operations that would touch a down server
	// pass between redial probes (the probe is attempt one of the next
	// operation); 0 means 8. Lower values recover faster and dial more.
	ProbeEvery int
	// HandoffCap bounds the per-server hinted-handoff buffer (parked
	// updates awaiting replay); 0 means 4096, negative disables
	// handoff entirely (a down server then fails updates).
	HandoffCap int
	// OnRetry, when non-nil, observes every backoff sleep: the server
	// index, the attempt number (1-based), and the slept duration. The
	// per-server call sequence is deterministic for a fixed seed and
	// fault schedule. Called from request goroutines.
	OnRetry func(server, attempt int, delay time.Duration)
	// OnStateChange, when non-nil, observes server health transitions.
	// Called from request goroutines.
	OnStateChange func(server int, down bool)
	// Metrics, when non-nil, registers the client's counters and gauges
	// (netstore_client_*) in the given registry, so retries, handoff
	// traffic, bytes on wire, and per-server epoch observations surface
	// on /metrics. Client.Stats() works either way.
	Metrics *telemetry.Registry

	// sleep is the test seam for backoff waits; nil means time.Sleep.
	sleep func(time.Duration)
}

func (cfg DialConfig) withDefaults() DialConfig {
	if cfg.Timeout == 0 {
		cfg.Timeout = RequestTimeout
	}
	if cfg.Retries == 0 {
		cfg.Retries = 2
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.BackoffBase == 0 {
		cfg.BackoffBase = 5 * time.Millisecond
	}
	if cfg.BackoffMax == 0 {
		cfg.BackoffMax = 250 * time.Millisecond
	}
	if cfg.ProbeEvery == 0 {
		cfg.ProbeEvery = 8
	}
	if cfg.HandoffCap == 0 {
		cfg.HandoffCap = 4096
	}
	if cfg.sleep == nil {
		cfg.sleep = time.Sleep
	}
	return cfg
}

// ClientStats counts the client's failure handling and traffic so far.
type ClientStats struct {
	// Retries counts backoff-and-retry attempts; Redials counts fresh
	// connections dialed (including probe dials).
	Retries, Redials int
	// Parked / Replayed / HandoffDrops count hinted-handoff traffic:
	// updates parked while a server was down, parked updates replayed
	// after recovery, and parks refused because the buffer was full.
	Parked, Replayed, HandoffDrops int
	// DegradedQueries counts queries that fell back to pulling
	// producers' own views because a pull-set server was down.
	DegradedQueries int
	// DownEvents / UpEvents count server health transitions.
	DownEvents, UpEvents int
	// ErrorFrames counts typed error frames received from servers.
	ErrorFrames int
	// BytesRead / BytesWritten count wire traffic across every server
	// connection, including redials and handoff replay.
	BytesRead, BytesWritten int64
}

// Client is a schedule-driven application-logic client over TCP
// (Algorithm 3). It keeps one connection per data-store server and
// fans requests out in parallel, one batched message per server,
// waiting for all replies.
//
// Failure handling (none of which the paper's prototype has): a failed
// round-trip is retried with capped exponential backoff on a FRESH
// connection — a timed-out connection is protocol-desynced and is never
// reused — and a server that exhausts its retries is marked down.
// While a server is down, updates park their frames in a bounded
// hinted-handoff buffer replayed on recovery, and queries degrade to
// pulling the producers' own views from healthy servers (the paper's
// pull-all floor: correct, costlier). Every ProbeEvery-th operation
// that would touch a down server probes it with a redial.
//
// A Client is safe for the same concurrent use as before: one request
// at a time (requests fan out internally); open one client per
// goroutine.
type Client struct {
	sched  *core.Schedule
	assign partition.Assignment
	cfg    DialConfig
	conns  []*sconn

	pushBatch [][]batch
	pullBatch [][]batch

	// fallback memoizes the pull-all batches (own views of u and its
	// in-neighbors) built on first degraded query per user.
	fallbackMu sync.Mutex
	fallback   map[graph.NodeID][]batch

	// inst backs both Stats() and (when DialConfig.Metrics is set) the
	// /metrics exposition — one set of instruments, two readers.
	inst *clientInstruments
}

// sconn is the client's per-server endpoint: the live connection (nil
// while disconnected), health state, deterministic jitter stream, and
// the hinted-handoff buffer. All fields are guarded by mu; a request
// holds the lock for the full call so per-server operations serialize.
type sconn struct {
	mu   sync.Mutex
	idx  int
	addr string
	c    net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer

	down      bool
	downOps   int // ops refused since the last probe
	lastEpoch uint32
	rng       *rand.Rand // jitter; seeded from cfg.Seed and the index
	handoff   [][]byte   // parked update payloads awaiting replay
}

type batch struct {
	server int
	views  []graph.NodeID
}

// Dial connects to the given data-store servers and precomputes per-user
// batches from the schedule; addrs[i] hosts the views that the hash
// assignment maps to server i.
func Dial(s *core.Schedule, addrs []string) (*Client, error) {
	return DialConfigured(s, addrs, DialConfig{})
}

// DialWithSeed is Dial with an explicit partition seed (must match the
// seed used to shard data across the servers).
func DialWithSeed(s *core.Schedule, addrs []string, seed int64) (*Client, error) {
	return DialConfigured(s, addrs, DialConfig{Seed: seed})
}

// DialConfigured is Dial with explicit failure-handling configuration.
// Every server must be reachable at dial time; failure handling covers
// servers that die later.
func DialConfigured(s *core.Schedule, addrs []string, cfg DialConfig) (*Client, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("netstore: no servers")
	}
	cfg = cfg.withDefaults()
	g := s.Graph()
	cl := &Client{
		sched:    s,
		assign:   partition.Hash(g.NumNodes(), len(addrs), cfg.Seed),
		cfg:      cfg,
		fallback: make(map[graph.NodeID][]batch),
		inst:     newClientInstruments(cfg.Metrics, len(addrs)),
	}
	for i, addr := range addrs {
		sc := &sconn{
			idx:  i,
			addr: addr,
			rng:  rand.New(rand.NewSource(cfg.Seed*7919 + int64(i))),
		}
		if err := cl.redial(sc); err != nil {
			cl.Close()
			return nil, fmt.Errorf("netstore: dialing %s: %w", addr, err)
		}
		cl.conns = append(cl.conns, sc)
	}
	cl.pushBatch = make([][]batch, g.NumNodes())
	cl.pullBatch = make([][]batch, g.NumNodes())
	for u := 0; u < g.NumNodes(); u++ {
		uid := graph.NodeID(u)
		cl.pushBatch[u] = cl.group(append(s.PushSet(uid), uid))
		cl.pullBatch[u] = cl.group(append(s.PullSet(uid), uid))
	}
	return cl, nil
}

func (cl *Client) group(views []graph.NodeID) []batch {
	byServer := make(map[int][]graph.NodeID)
	for _, v := range views {
		s := int(cl.assign.Of(v))
		byServer[s] = append(byServer[s], v)
	}
	out := make([]batch, 0, len(byServer))
	for s, vs := range byServer {
		out = append(out, batch{server: s, views: vs})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].server < out[j].server })
	return out
}

// Close tears down all connections. Parked handoff entries are
// discarded.
func (cl *Client) Close() {
	for _, s := range cl.conns {
		s.mu.Lock()
		s.closeConn()
		s.mu.Unlock()
	}
}

// Stats returns a copy of the failure-handling and traffic counters.
func (cl *Client) Stats() ClientStats {
	return ClientStats{
		Retries:         int(cl.inst.retries.Value()),
		Redials:         int(cl.inst.redials.Value()),
		Parked:          int(cl.inst.parked.Value()),
		Replayed:        int(cl.inst.replayed.Value()),
		HandoffDrops:    int(cl.inst.drops.Value()),
		DegradedQueries: int(cl.inst.degraded.Value()),
		DownEvents:      int(cl.inst.downs.Value()),
		UpEvents:        int(cl.inst.ups.Value()),
		ErrorFrames:     int(cl.inst.errorFrames.Value()),
		BytesRead:       cl.inst.bytesRead.Value(),
		BytesWritten:    cl.inst.bytesWritten.Value(),
	}
}

// ServerDown reports whether the client currently considers server i
// unreachable.
func (cl *Client) ServerDown(i int) bool {
	s := cl.conns[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.down
}

// ServerEpoch returns the plan epoch the last response from server i
// carried — the client-side observation point for a rolling plan swap.
func (cl *Client) ServerEpoch(i int) uint32 {
	s := cl.conns[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastEpoch
}

// redial replaces s.c with a fresh connection. Caller holds s.mu (or
// owns s exclusively, as during dial).
func (cl *Client) redial(s *sconn) error {
	s.closeConn()
	cl.inst.redials.Inc()
	c, err := net.DialTimeout("tcp", s.addr, cl.cfg.Timeout)
	if err != nil {
		return err
	}
	s.c = countingConn{Conn: c, r: cl.inst.bytesRead, w: cl.inst.bytesWritten}
	s.br = bufio.NewReader(s.c)
	s.bw = bufio.NewWriterSize(s.c, 16<<10)
	return nil
}

// closeConn drops the current connection, if any. Caller holds s.mu.
func (s *sconn) closeConn() {
	if s.c != nil {
		s.c.Close()
		s.c = nil
		s.br, s.bw = nil, nil
	}
}

// roundTripOnce sends one frame and reads the reply on the current
// connection. Caller holds s.mu and guarantees s.c != nil. Any error —
// timeout, partial read, reset — means the length-prefixed stream can
// no longer be trusted; the CALLER must discard the connection.
func (cl *Client) roundTripOnce(s *sconn, payload []byte) ([]byte, error) {
	if err := s.c.SetDeadline(time.Now().Add(cl.cfg.Timeout)); err != nil {
		return nil, err
	}
	if err := writeFrame(s.bw, 0, payload); err != nil {
		return nil, err
	}
	if err := s.bw.Flush(); err != nil {
		return nil, err
	}
	reply, epoch, err := readFrame(s.br, nil)
	if err != nil {
		return nil, err
	}
	s.lastEpoch = epoch
	cl.inst.epochs[s.idx].Set(float64(epoch))
	return decodeResponse(reply)
}

// backoff returns the deterministic jittered wait before retry attempt
// k (1-based). Caller holds s.mu, so the per-server jitter stream is
// consumed in a deterministic order.
func (cl *Client) backoff(s *sconn, attempt int) time.Duration {
	d := cl.cfg.BackoffBase << uint(attempt-1)
	if d > cl.cfg.BackoffMax || d <= 0 {
		d = cl.cfg.BackoffMax
	}
	return d + time.Duration(s.rng.Int63n(int64(d/2)+1))
}

// call performs one request against server si with the full failure
// discipline: retry with backoff on fresh connections, down-marking,
// probe-gated recovery, and handoff replay after a probe succeeds.
func (cl *Client) call(si int, payload []byte) ([]byte, error) {
	s := cl.conns[si]
	s.mu.Lock()
	defer s.mu.Unlock()

	attempts := cl.cfg.Retries + 1
	if s.down {
		// While down, most operations fail fast; every ProbeEvery-th
		// one becomes a single-attempt probe.
		s.downOps++
		if s.downOps%cl.cfg.ProbeEvery != 0 {
			return nil, fmt.Errorf("netstore: server %d (%s): %w", si, s.addr, ErrServerDown)
		}
		attempts = 1
	}

	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			d := cl.backoff(s, attempt)
			cl.inst.retries.Inc()
			cl.inst.backoffSleep.Add(d.Seconds())
			if cl.cfg.OnRetry != nil {
				cl.cfg.OnRetry(si, attempt, d)
			}
			cl.cfg.sleep(d)
		}
		if s.c == nil {
			if err := cl.redial(s); err != nil {
				lastErr = err
				continue
			}
		}
		reply, err := cl.roundTripOnce(s, payload)
		if err == nil {
			if s.down {
				cl.markUp(si, s)
			}
			return reply, nil
		}
		var se *ServerError
		if errors.As(err, &se) {
			// A typed error frame is a complete, well-framed reply: the
			// stream is intact and the rejection is deterministic, so
			// neither redial nor retry applies.
			cl.inst.errorFrames.Inc()
			if s.down {
				cl.markUp(si, s)
			}
			return nil, err
		}
		lastErr = err
		// Transport-level failure: the stream may be desynced mid-frame,
		// so the connection is never reused.
		s.closeConn()
	}
	if !s.down {
		s.down = true
		s.downOps = 0
		cl.inst.downs.Inc()
		if cl.cfg.OnStateChange != nil {
			cl.cfg.OnStateChange(si, true)
		}
	}
	return nil, fmt.Errorf("netstore: server %d (%s): %w: %v", si, s.addr, ErrServerDown, lastErr)
}

// markUp transitions a down server to healthy and replays its hinted
// handoff. Caller holds s.mu. If replay fails partway, the remainder
// stays parked and the server goes back down.
func (cl *Client) markUp(si int, s *sconn) {
	s.down = false
	s.downOps = 0
	cl.inst.ups.Inc()
	if cl.cfg.OnStateChange != nil {
		cl.cfg.OnStateChange(si, false)
	}
	for len(s.handoff) > 0 {
		payload := s.handoff[0]
		if s.c == nil {
			if err := cl.redial(s); err != nil {
				cl.markDownLocked(si, s)
				return
			}
		}
		if _, err := cl.roundTripOnce(s, payload); err != nil {
			var se *ServerError
			if errors.As(err, &se) {
				// Deterministic rejection: replaying it again can never
				// succeed, so drop it rather than wedge the buffer.
				cl.inst.errorFrames.Inc()
				cl.inst.drops.Inc()
				s.handoff = s.handoff[1:]
				cl.inst.handoffDepth.Add(-1)
				continue
			}
			s.closeConn()
			cl.markDownLocked(si, s)
			return
		}
		s.handoff = s.handoff[1:]
		cl.inst.replayed.Inc()
		cl.inst.handoffDepth.Add(-1)
	}
	s.handoff = nil
}

// markDownLocked records a down transition. Caller holds s.mu.
func (cl *Client) markDownLocked(si int, s *sconn) {
	if s.down {
		return
	}
	s.down = true
	s.downOps = 0
	cl.inst.downs.Inc()
	if cl.cfg.OnStateChange != nil {
		cl.cfg.OnStateChange(si, true)
	}
}

// park stores a failed update payload in server si's hinted-handoff
// buffer for replay on recovery.
func (cl *Client) park(si int, payload []byte) error {
	if cl.cfg.HandoffCap < 0 {
		return fmt.Errorf("netstore: server %d: %w (handoff disabled)", si, ErrServerDown)
	}
	s := cl.conns[si]
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.handoff) >= cl.cfg.HandoffCap {
		cl.inst.drops.Inc()
		return fmt.Errorf("netstore: server %d: %w (%d parked)", si, ErrHandoffFull, len(s.handoff))
	}
	s.handoff = append(s.handoff, payload)
	cl.inst.parked.Inc()
	cl.inst.handoffDepth.Add(1)
	return nil
}

// Recover probes every down server immediately (ignoring the
// ProbeEvery spacing) and replays its hinted handoff on success. It
// returns the number of servers still down afterwards. Useful after an
// orchestrated restart; normal operation recovers on its own through
// probe-gated calls.
func (cl *Client) Recover() int {
	stillDown := 0
	for si, s := range cl.conns {
		s.mu.Lock()
		if s.down {
			if err := cl.redial(s); err != nil {
				stillDown++
				s.mu.Unlock()
				continue
			}
			cl.markUp(si, s)
			if s.down {
				stillDown++
			}
		}
		s.mu.Unlock()
	}
	return stillDown
}

// Update shares an event by u: one update message per server holding a
// view in u's push set (plus u's own view), all acked. When a server is
// down, its share of the update is parked in the hinted-handoff buffer
// and replayed on recovery — the update succeeds from the caller's
// point of view and converges once the server returns. Only a full
// handoff buffer (or a non-transport server rejection) surfaces as an
// error.
func (cl *Client) Update(u graph.NodeID, ev store.Event) error {
	batches := cl.pushBatch[u]
	var wg sync.WaitGroup
	errs := make([]error, len(batches))
	for i, b := range batches {
		wg.Add(1)
		go func(i int, b batch) {
			defer wg.Done()
			payload := encodeUpdate(ev, b.views)
			_, err := cl.call(b.server, payload)
			if err != nil && errors.Is(err, ErrServerDown) {
				err = cl.park(b.server, payload)
			}
			errs[i] = err
		}(i, b)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Query assembles u's event stream: one query per server holding a view
// in u's pull set (plus u's own), replies merged to the ten newest.
//
// When a pull-set server is down, the query degrades instead of
// failing: the missing views are reconstructed by pulling the OWN views
// of u and all of u's in-neighbors from whatever servers are healthy —
// the paper's pull-all floor. Every event reaches its producer's own
// view on the producer's update path, so the fallback is correct; it
// is just costlier (one batch per server hosting any followed
// producer) and can miss events parked for servers that are still
// down. Results from the degraded path are exact-duplicate-deduped,
// since hub views and own views overlap.
func (cl *Client) Query(u graph.NodeID) ([]store.Event, error) {
	batches := cl.pullBatch[u]
	var wg sync.WaitGroup
	errs := make([]error, len(batches))
	replies := make([][]store.Event, len(batches))
	for i, b := range batches {
		wg.Add(1)
		go func(i int, b batch) {
			defer wg.Done()
			body, err := cl.call(b.server, encodeQuery(store.StreamSize, b.views))
			if err != nil {
				errs[i] = err
				return
			}
			replies[i], errs[i] = decodeEvents(body)
		}(i, b)
	}
	wg.Wait()

	degraded := false
	for i := range batches {
		if errs[i] == nil {
			continue
		}
		if errors.Is(errs[i], ErrServerDown) {
			degraded = true
			continue
		}
		return nil, errs[i]
	}
	if !degraded {
		var out []store.Event
		for i := range batches {
			out = store.MergeNewest(out, replies[i], store.StreamSize)
		}
		return out, nil
	}

	cl.inst.degraded.Inc()
	all := make([]store.Event, 0, store.StreamSize*(len(batches)+1))
	for i := range batches {
		all = append(all, replies[i]...) // failed batches contribute nil
	}
	for _, b := range cl.fallbackBatches(u) {
		if cl.ServerDown(b.server) {
			continue // that producer's recent events are unreachable for now
		}
		body, err := cl.call(b.server, encodeQuery(store.StreamSize, b.views))
		if err != nil {
			continue // best effort: degrade further rather than fail
		}
		evs, err := decodeEvents(body)
		if err != nil {
			continue
		}
		all = append(all, evs...)
	}
	return dedupeNewest(all, store.StreamSize), nil
}

// fallbackBatches returns (building on first use) the pull-all batch
// set for u: the own views of u and every in-neighbor, grouped by
// server.
func (cl *Client) fallbackBatches(u graph.NodeID) []batch {
	cl.fallbackMu.Lock()
	defer cl.fallbackMu.Unlock()
	if b, ok := cl.fallback[u]; ok {
		return b
	}
	g := cl.sched.Graph()
	views := append([]graph.NodeID{u}, g.InNeighbors(u)...)
	b := cl.group(views)
	cl.fallback[u] = b
	return b
}

// dedupeNewest sorts events newest-first, removes exact duplicates, and
// trims to k — the merge step of the degraded query path, where the
// same event can arrive from both a hub view and its producer's own
// view.
func dedupeNewest(evs []store.Event, k int) []store.Event {
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.TS != b.TS {
			return a.TS > b.TS
		}
		if a.User != b.User {
			return a.User < b.User
		}
		return a.ID < b.ID
	})
	out := evs[:0]
	for i, ev := range evs {
		if i > 0 && ev == evs[i-1] {
			continue
		}
		out = append(out, ev)
		if len(out) == k {
			break
		}
	}
	return out
}
