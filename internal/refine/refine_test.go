package refine

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"piggyback/internal/baseline"
	"piggyback/internal/core"
	"piggyback/internal/graph"
	"piggyback/internal/graphgen"
	"piggyback/internal/nosy"
	"piggyback/internal/workload"
)

func TestRecoversBracketedEdge(t *testing.T) {
	// 0→1 push, 1→2 pull (both pinned by covering 0→2)… build instead a
	// schedule where 0→2 is served directly although the hub path exists
	// and is needed for nothing else — the sweep must recover it.
	g := graph.FromEdges(3, []graph.Edge{
		{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 2},
	})
	r := workload.NewUniform(3, 1)
	s := core.NewSchedule(g)
	up, _ := g.EdgeID(0, 1)
	cross, _ := g.EdgeID(0, 2)
	down, _ := g.EdgeID(1, 2)
	s.SetPush(up)
	s.SetPull(down)
	s.SetPush(cross) // direct service although the hub bracket exists
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	before := s.Cost(r)
	res := Run(s, r)
	if res.Recovered != 1 {
		t.Fatalf("Recovered = %d, want 1", res.Recovered)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("after refine: %v", err)
	}
	if got := s.Cost(r); got != before-1 {
		t.Fatalf("cost = %v, want %v", got, before-1)
	}
	if !s.IsCovered(cross) || s.Hub(cross) != 1 {
		t.Fatal("edge 0→2 not re-covered through hub 1")
	}
}

func TestDoesNotUnpinSupports(t *testing.T) {
	// Two cross edges covered through the same hub supports; the supports
	// themselves are direct push/pull and must not be cleared.
	g := graph.FromEdges(4, []graph.Edge{
		{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 2},
		{From: 3, To: 1}, {From: 3, To: 2},
	})
	r := workload.NewUniform(4, 1)
	s := core.NewSchedule(g)
	e01, _ := g.EdgeID(0, 1)
	e02, _ := g.EdgeID(0, 2)
	e12, _ := g.EdgeID(1, 2)
	e31, _ := g.EdgeID(3, 1)
	e32, _ := g.EdgeID(3, 2)
	s.SetPush(e01)
	s.SetPush(e31)
	s.SetPull(e12)
	s.SetCovered(e02, 1)
	s.SetCovered(e32, 1)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	cost := s.Cost(r)
	Run(s, r)
	if err := s.Validate(); err != nil {
		t.Fatalf("after refine: %v", err)
	}
	if got := s.Cost(r); got > cost {
		t.Fatalf("refine increased cost %v → %v", cost, got)
	}
}

// Converged PARALLELNOSY leaves no bracketed edges behind: any direct
// edge with an existing push+pull bracket would have been a zero-cost,
// positive-gain phase-1 candidate, so convergence implies the sweep finds
// nothing. This doubles as a convergence-quality check on the heuristic.
func TestConvergedNosyLeavesNothing(t *testing.T) {
	g := graphgen.Social(graphgen.FlickrLike(600, 7))
	r := workload.LogDegree(g, 5)
	s := nosy.Solve(g, r, nosy.Config{}).Schedule
	if res := Run(s, r); res.Recovered != 0 {
		t.Fatalf("converged PARALLELNOSY left %d recoverable edges (saved %.1f)",
			res.Recovered, res.Saved)
	}
}

// A truncated PARALLELNOSY run does leave recoverable edges: the sweep is
// a cheap way to claw back quality when the iteration budget is cut.
func TestImprovesTruncatedNosy(t *testing.T) {
	g := graphgen.Social(graphgen.FlickrLike(800, 7))
	r := workload.LogDegree(g, 5)
	s := nosy.Solve(g, r, nosy.Config{MaxIterations: 2}).Schedule
	before := s.Cost(r)
	res := Run(s, r)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	after := s.Cost(r)
	if math.Abs(before-res.Saved-after) > 1e-6 {
		t.Fatalf("bookkeeping mismatch: before %v saved %v after %v", before, res.Saved, after)
	}
	if res.Recovered == 0 {
		t.Fatal("expected recoverable edges after a truncated run")
	}
	t.Logf("recovered %d edges, saved %.1f (%.2f%% of cost)",
		res.Recovered, res.Saved, 100*res.Saved/before)
}

// The hybrid baseline mixes pushes and pulls per edge when production
// and consumption rates are comparable (read/write ≈ 1), so brackets
// exist on clustered graphs; the sweep turns them into free hub coverage.
func TestImprovesHybrid(t *testing.T) {
	g := graphgen.Social(graphgen.FlickrLike(800, 9))
	r := workload.LogDegree(g, 1)
	s := baseline.Hybrid(g, r)
	before := s.Cost(r)
	res := Run(s, r)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Cost(r) > before {
		t.Fatal("refine worsened hybrid")
	}
	t.Logf("hybrid: recovered %d edges, saved %.1f (%.2f%%)",
		res.Recovered, res.Saved, 100*res.Saved/before)
}

// Property: refine preserves validity and never increases cost on random
// valid schedules (hybrid and PARALLELNOSY outputs).
func TestQuickSafety(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(60)
		g := graphgen.Social(graphgen.Config{
			Nodes: n, AvgFollows: 3 + rng.Intn(5),
			TriadProb: rng.Float64(), Reciprocity: rng.Float64(), Seed: seed,
		})
		r := workload.LogDegree(g, 0.5+rng.Float64()*10)
		var s *core.Schedule
		if rng.Intn(2) == 0 {
			s = baseline.Hybrid(g, r)
		} else {
			s = nosy.Solve(g, r, nosy.Config{}).Schedule
		}
		before := s.Cost(r)
		Run(s, r)
		return s.Validate() == nil && s.Cost(r) <= before+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
