package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// diamond: 0→1, 0→2, 1→3, 2→3, 0→3
func diamond() *Graph {
	return FromEdges(4, []Edge{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {0, 3}})
}

func TestBuildBasics(t *testing.T) {
	g := diamond()
	if g.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	if g.NumEdges() != 5 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	if g.OutDegree(0) != 3 || g.InDegree(3) != 3 {
		t.Fatalf("degrees: out(0)=%d in(3)=%d", g.OutDegree(0), g.InDegree(3))
	}
}

func TestDedupAndSelfLoops(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(0, 1) // duplicate
	b.AddEdge(1, 1) // self loop, dropped
	b.AddEdge(2, 0)
	g := b.Build()
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2 (dedup + self-loop drop)", g.NumEdges())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge out of range did not panic")
		}
	}()
	NewBuilder(2).AddEdge(0, 5)
}

func TestNeighborsSorted(t *testing.T) {
	g := FromEdges(5, []Edge{{0, 4}, {0, 1}, {0, 3}, {2, 3}, {1, 3}})
	out := g.OutNeighbors(0)
	want := []NodeID{1, 3, 4}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("OutNeighbors(0) = %v, want %v", out, want)
		}
	}
	in := g.InNeighbors(3)
	wantIn := []NodeID{0, 1, 2}
	for i := range wantIn {
		if in[i] != wantIn[i] {
			t.Fatalf("InNeighbors(3) = %v, want %v", in, wantIn)
		}
	}
}

func TestEdgeIDRoundTrip(t *testing.T) {
	g := diamond()
	g.Edges(func(id EdgeID, u, v NodeID) bool {
		got, ok := g.EdgeID(u, v)
		if !ok || got != id {
			t.Fatalf("EdgeID(%d,%d) = (%d,%v), want (%d,true)", u, v, got, ok, id)
		}
		if g.EdgeSource(id) != u || g.EdgeTarget(id) != v {
			t.Fatalf("EdgeSource/Target(%d) = (%d,%d), want (%d,%d)",
				id, g.EdgeSource(id), g.EdgeTarget(id), u, v)
		}
		if e := g.EdgeAt(id); e.From != u || e.To != v {
			t.Fatalf("EdgeAt(%d) = %v", id, e)
		}
		return true
	})
	if _, ok := g.EdgeID(3, 0); ok {
		t.Fatal("EdgeID found nonexistent edge")
	}
	if g.HasEdge(1, 0) {
		t.Fatal("HasEdge(1,0) should be false")
	}
}

func TestInEdgeIDsParallel(t *testing.T) {
	g := diamond()
	in := g.InNeighbors(3)
	ids := g.InEdgeIDs(3)
	if len(in) != len(ids) {
		t.Fatalf("in/ids length mismatch: %d vs %d", len(in), len(ids))
	}
	for i := range in {
		if g.EdgeSource(ids[i]) != in[i] || g.EdgeTarget(ids[i]) != 3 {
			t.Fatalf("InEdgeIDs[%d]=%d does not match neighbor %d", i, ids[i], in[i])
		}
	}
}

func TestOutEdgeRange(t *testing.T) {
	g := diamond()
	lo, hi := g.OutEdgeRange(0)
	if int(hi-lo) != g.OutDegree(0) {
		t.Fatalf("OutEdgeRange span %d != OutDegree %d", hi-lo, g.OutDegree(0))
	}
	nbrs := g.OutNeighbors(0)
	for e := lo; e < hi; e++ {
		if g.EdgeTarget(e) != nbrs[e-lo] {
			t.Fatalf("edge %d target mismatch", e)
		}
	}
}

func TestEdgeListOrder(t *testing.T) {
	g := diamond()
	list := g.EdgeList()
	if len(list) != g.NumEdges() {
		t.Fatalf("EdgeList len = %d", len(list))
	}
	for i := 1; i < len(list); i++ {
		a, b := list[i-1], list[i]
		if a.From > b.From || (a.From == b.From && a.To >= b.To) {
			t.Fatalf("EdgeList not strictly sorted at %d: %v %v", i, a, b)
		}
	}
}

func TestReciprocity(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1}, {1, 0}, {0, 2}, {2, 1}})
	// reciprocal: 0→1 and 1→0 (2 of 4 edges)
	if got := g.Reciprocity(); got != 0.5 {
		t.Fatalf("Reciprocity = %v, want 0.5", got)
	}
	if FromEdges(2, nil).Reciprocity() != 0 {
		t.Fatal("empty graph reciprocity should be 0")
	}
}

func TestClusteringCoefficient(t *testing.T) {
	// Triangle 0→1, 1→2, 0→2: every node's (undirected) neighborhood is
	// fully connected, so clustering = 1.
	tri := FromEdges(3, []Edge{{0, 1}, {1, 2}, {0, 2}})
	rng := rand.New(rand.NewSource(1))
	if got := tri.ClusteringCoefficient(0, rng); got != 1 {
		t.Fatalf("triangle clustering = %v, want 1", got)
	}
	// Star 0→1,0→2,0→3: leaves have one neighbor, center has no
	// links between neighbors → clustering 0.
	star := FromEdges(4, []Edge{{0, 1}, {0, 2}, {0, 3}})
	if got := star.ClusteringCoefficient(0, rng); got != 0 {
		t.Fatalf("star clustering = %v, want 0", got)
	}
}

func TestCommonInNeighbors(t *testing.T) {
	// 0→2, 1→2, 3→2 ; 0→4, 3→4 → common in-neighbors of 2 and 4 = {0,3}
	g := FromEdges(5, []Edge{{0, 2}, {1, 2}, {3, 2}, {0, 4}, {3, 4}})
	got := g.CommonInNeighbors(2, 4, 0)
	if len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Fatalf("CommonInNeighbors = %v, want [0 3]", got)
	}
	if lim := g.CommonInNeighbors(2, 4, 1); len(lim) != 1 {
		t.Fatalf("limit not honored: %v", lim)
	}
	if none := g.CommonInNeighbors(1, 3, 0); len(none) != 0 {
		t.Fatalf("expected empty intersection, got %v", none)
	}
}

func TestComputeStats(t *testing.T) {
	g := diamond()
	s := g.ComputeStats(0, rand.New(rand.NewSource(7)))
	if s.Nodes != 4 || s.Edges != 5 {
		t.Fatalf("stats nodes/edges = %d/%d", s.Nodes, s.Edges)
	}
	if s.MaxOutDegree != 3 || s.MaxInDegree != 3 {
		t.Fatalf("stats max degrees = %d/%d", s.MaxOutDegree, s.MaxInDegree)
	}
	if s.AvgOutDegree != 1.25 {
		t.Fatalf("AvgOutDegree = %v", s.AvgOutDegree)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := diamond()
	h := g.DegreeHistogram()
	// out-degrees: node0=3, node1=1, node2=1, node3=0
	if h[3] != 1 || h[1] != 2 || h[0] != 1 {
		t.Fatalf("DegreeHistogram = %v", h)
	}
}

// Property: for random graphs, CSR invariants hold — every edge id round
// trips, in- and out-adjacency are consistent, and degrees sum to edge
// count.
func TestQuickCSRInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		b := NewBuilder(n)
		m := rng.Intn(4 * n)
		for i := 0; i < m; i++ {
			b.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
		}
		g := b.Build()
		sumOut, sumIn := 0, 0
		for u := 0; u < n; u++ {
			sumOut += g.OutDegree(NodeID(u))
			sumIn += g.InDegree(NodeID(u))
		}
		if sumOut != g.NumEdges() || sumIn != g.NumEdges() {
			return false
		}
		ok := true
		g.Edges(func(id EdgeID, u, v NodeID) bool {
			if u == v {
				ok = false
				return false
			}
			if got, found := g.EdgeID(u, v); !found || got != id {
				ok = false
				return false
			}
			if g.EdgeSource(id) != u || g.EdgeTarget(id) != v {
				ok = false
				return false
			}
			// v's in-list must contain u with the same edge id.
			found := false
			in := g.InNeighbors(v)
			ids := g.InEdgeIDs(v)
			for i := range in {
				if in[i] == u && ids[i] == id {
					found = true
					break
				}
			}
			if !found {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
