// Package stats provides small numeric helpers used by the evaluation
// harness: streaming mean/variance (Welford), percentiles, and histogram
// summaries for load-balance reporting (Figure 8).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Stream accumulates count, mean and variance in one pass (Welford's
// algorithm). The zero value is ready to use.
type Stream struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add feeds one observation.
func (s *Stream) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of observations.
func (s *Stream) N() int64 { return s.n }

// Mean returns the running mean (0 for an empty stream).
func (s *Stream) Mean() float64 { return s.mean }

// Variance returns the population variance (0 if fewer than 2 samples).
func (s *Stream) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n)
}

// StdDev returns the population standard deviation.
func (s *Stream) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation (0 for an empty stream).
func (s *Stream) Min() float64 { return s.min }

// Max returns the largest observation (0 for an empty stream).
func (s *Stream) Max() float64 { return s.max }

// String summarizes the stream for table output.
func (s *Stream) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g",
		s.n, s.Mean(), s.StdDev(), s.min, s.max)
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CoefficientOfVariation returns sd/mean, the imbalance measure we report
// for per-server load; 0 when the mean is 0.
func CoefficientOfVariation(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return math.Sqrt(Variance(xs)) / m
}
