// Dynamicgraph: maintain an optimized schedule while the social graph
// churns (follows and unfollows), and decide when re-optimization pays
// off — the §3.3 incremental-update policy behind Figure 5.
package main

import (
	"fmt"
	"math/rand"

	"piggyback"
)

func main() {
	full := piggyback.FlickrLikeGraph(1200, 3)
	r := piggyback.LogDegreeRates(full, 5)

	// Start from an optimized schedule over half the edges.
	edges := full.EdgeList()
	rng := rand.New(rand.NewSource(1))
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	half := len(edges) / 2
	base := piggyback.GraphFromEdges(full.NumNodes(), edges[:half])
	sched, _ := piggyback.ParallelNosy(base, r, piggyback.NosyConfig{})
	m := piggyback.NewMaintainer(sched, r)
	fmt.Printf("optimized %d-edge graph; cost %.1f\n\n", base.NumEdges(), m.Cost())

	// Apply the other half in growing batches, tracking degradation.
	fmt.Printf("%10s  %18s  %14s\n", "new edges", "incremental ratio", "static ratio")
	added := 0
	for _, batch := range []int{half / 100, half / 10, half / 2} {
		for added < batch {
			e := edges[half+added]
			if err := m.AddEdge(e.From, e.To); err != nil {
				panic(err)
			}
			added++
		}
		if err := m.Validate(); err != nil {
			panic(err)
		}
		cur := piggyback.GraphFromEdges(full.NumNodes(), edges[:half+added])
		hybrid := piggyback.HybridCost(cur, r)
		static, _ := piggyback.ParallelNosy(cur, r, piggyback.NosyConfig{})
		fmt.Printf("%10d  %18.3f  %14.3f\n",
			added, hybrid/m.Cost(), hybrid/static.Cost(r))
	}

	// Unfollows: removing a hub's support edge re-serves the covered
	// edges directly; validity is preserved throughout.
	removed := 0
	for _, e := range edges[:half] {
		if removed >= 50 {
			break
		}
		if err := m.RemoveEdge(e.From, e.To); err == nil {
			removed++
		}
	}
	if err := m.Validate(); err != nil {
		panic(err)
	}
	fmt.Printf("\nafter %d unfollows the schedule is still valid; cost %.1f\n", removed, m.Cost())
	fmt.Println("rule of thumb from Figure 5: re-optimize once roughly a third of the graph is new")
}
