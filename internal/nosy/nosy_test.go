package nosy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"piggyback/internal/baseline"
	"piggyback/internal/core"
	"piggyback/internal/graph"
	"piggyback/internal/graphgen"
	"piggyback/internal/workload"
)

func figure2() *graph.Graph {
	return graph.FromEdges(3, []graph.Edge{
		{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 2},
	})
}

// scaled picks the graph size: the full-size convergence tests take
// ~109s combined under -race, so -short (CI, pre-commit) runs
// scaled-down graphs that still take several solver iterations to
// converge — TestConvergence asserts that explicitly.
func scaled(full, short int) int {
	if testing.Short() {
		return short
	}
	return full
}

func TestFigure2UsesHub(t *testing.T) {
	g := figure2()
	r := workload.NewUniform(3, 1)
	res := Solve(g, r, Config{})
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := res.Schedule.Cost(r); got != 2 {
		t.Fatalf("cost = %v, want 2 (hub through node 1)", got)
	}
	cross, _ := g.EdgeID(0, 2)
	if !res.Schedule.IsCovered(cross) || res.Schedule.Hub(cross) != 1 {
		t.Fatalf("edge 0→2 not covered through hub 1")
	}
}

func TestNeverWorseThanHybrid(t *testing.T) {
	g := graphgen.Social(graphgen.TwitterLike(scaled(500, 250), 3))
	r := workload.LogDegree(g, 5)
	res := Solve(g, r, Config{})
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
	hy := baseline.HybridCost(g, r)
	if res.Schedule.Cost(r) > hy+1e-6 {
		t.Fatalf("PARALLELNOSY cost %v worse than hybrid %v", res.Schedule.Cost(r), hy)
	}
}

func TestBeatsHybridOnClusteredGraph(t *testing.T) {
	g := graphgen.Social(graphgen.FlickrLike(scaled(800, 300), 7))
	r := workload.LogDegree(g, 5)
	res := Solve(g, r, Config{})
	hy := baseline.HybridCost(g, r)
	if ratio := hy / res.Schedule.Cost(r); ratio < 1.05 {
		t.Fatalf("improvement ratio = %.3f; expected real gain on clustered graph", ratio)
	}
}

func TestConvergence(t *testing.T) {
	g := graphgen.Social(graphgen.TwitterLike(scaled(400, 200), 5))
	r := workload.LogDegree(g, 5)
	res := Solve(g, r, Config{})
	if len(res.Iterations) < 2 {
		t.Fatalf("want multi-iteration convergence, got %d iterations", len(res.Iterations))
	}
	last := res.Iterations[len(res.Iterations)-1]
	if last.FullCommits+last.PartialCommits != 0 {
		t.Fatalf("did not converge: last iteration committed %d+%d",
			last.FullCommits, last.PartialCommits)
	}
}

func TestTraceCostsMonotone(t *testing.T) {
	g := graphgen.Social(graphgen.FlickrLike(scaled(500, 250), 9))
	r := workload.LogDegree(g, 5)
	res := Solve(g, r, Config{TraceCosts: true})
	prev := baseline.HybridCost(g, r) + 1e-9
	for i, it := range res.Iterations {
		if it.Cost > prev+1e-6 {
			t.Fatalf("iteration %d increased cost: %v → %v", i, prev, it.Cost)
		}
		prev = it.Cost
	}
}

func TestWorkerCountInvariance(t *testing.T) {
	g := graphgen.Social(graphgen.TwitterLike(scaled(400, 200), 13))
	r := workload.LogDegree(g, 5)
	ref := Solve(g, r, Config{Workers: 1})
	for _, workers := range []int{2, 4, 8} {
		got := Solve(g, r, Config{Workers: workers})
		if got.Schedule.Cost(r) != ref.Schedule.Cost(r) {
			t.Fatalf("workers=%d cost %v differs from single-worker %v",
				workers, got.Schedule.Cost(r), ref.Schedule.Cost(r))
		}
		for e := 0; e < g.NumEdges(); e++ {
			ee := graph.EdgeID(e)
			if got.Schedule.IsPush(ee) != ref.Schedule.IsPush(ee) ||
				got.Schedule.IsPull(ee) != ref.Schedule.IsPull(ee) ||
				got.Schedule.IsCovered(ee) != ref.Schedule.IsCovered(ee) {
				t.Fatalf("workers=%d schedule differs at edge %d", workers, e)
			}
		}
	}
}

func TestPartialCommitsHelp(t *testing.T) {
	g := graphgen.Social(graphgen.FlickrLike(scaled(600, 250), 21))
	r := workload.LogDegree(g, 5)
	with := Solve(g, r, Config{})
	without := Solve(g, r, Config{DisablePartialCommits: true})
	if err := without.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
	// Partial commits should not hurt the final cost, and the variant
	// without them must still be valid and no worse than hybrid.
	hy := baseline.HybridCost(g, r)
	if without.Schedule.Cost(r) > hy+1e-6 {
		t.Fatal("no-partial variant worse than hybrid")
	}
	if with.Schedule.Cost(r) > hy+1e-6 {
		t.Fatal("default variant worse than hybrid")
	}
}

func TestMaxIterationsBounds(t *testing.T) {
	g := graphgen.Social(graphgen.TwitterLike(400, 17))
	r := workload.LogDegree(g, 5)
	res := Solve(g, r, Config{MaxIterations: 1})
	if len(res.Iterations) != 1 {
		t.Fatalf("MaxIterations=1 ran %d iterations", len(res.Iterations))
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatalf("bounded run still must finalize to a valid schedule: %v", err)
	}
}

func TestCrossEdgeBoundValid(t *testing.T) {
	g := graphgen.Social(graphgen.TwitterLike(300, 19))
	r := workload.LogDegree(g, 5)
	res := Solve(g, r, Config{MaxCrossEdges: 1})
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Cost(r) > baseline.HybridCost(g, r)+1e-6 {
		t.Fatal("bounded variant worse than hybrid")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.FromEdges(0, nil)
	res := Solve(g, workload.NewUniform(0, 5), Config{})
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
}

// freshEvalReference prices hub edge he with the structural intersection
// recomputed from the graph — the pre-cache EvalCandidate, kept as the
// oracle the memoized path must match forever.
func freshEvalReference(ev *Evaluator, he graph.EdgeID) (Candidate, bool) {
	s := ev.sched
	if s.IsCovered(he) {
		return Candidate{}, false
	}
	w := ev.src[he]
	y := ev.g.EdgeTarget(he)
	xs, xwIDs, xyIDs := ev.g.CommonInEdges(w, y, ev.cfg.MaxCrossEdges, nil, nil, nil)
	if len(xs) == 0 {
		return Candidate{}, false
	}
	c := Candidate{HubEdge: he, W: w, Y: y}
	var saved, cost float64
	for i, x := range xs {
		xw, xy := xwIDs[i], xyIDs[i]
		if s.IsCovered(xw) || s.IsScheduled(xy) {
			continue
		}
		saved += ev.cstar[xy]
		cost += ev.pushCost(xw, x)
		c.Xs = append(c.Xs, x)
		c.XWEdges = append(c.XWEdges, xw)
		c.XYEdges = append(c.XYEdges, xy)
	}
	if len(c.Xs) == 0 {
		return Candidate{}, false
	}
	cost += ev.pullCost(he, y)
	c.Gain = saved - cost
	if c.Gain <= 0 {
		return Candidate{}, false
	}
	return c, true
}

func sameCandidate(a, b Candidate) bool {
	if a.HubEdge != b.HubEdge || a.W != b.W || a.Y != b.Y || a.Gain != b.Gain ||
		len(a.Xs) != len(b.Xs) {
		return false
	}
	for i := range a.Xs {
		if a.Xs[i] != b.Xs[i] || a.XWEdges[i] != b.XWEdges[i] || a.XYEdges[i] != b.XYEdges[i] {
			return false
		}
	}
	return true
}

// Property pinning the structural cache: on random graphs, under
// arbitrary interleavings of hub commits and direct schedule writes, a
// cached-candidate re-pricing is exactly a fresh EvalCandidate — same
// producers in the same order, bit-identical gain. Tiny cache capacities
// force eviction mid-sequence, so hit, miss, evicted, and
// too-large-to-cache paths are all crossed.
func TestStructCacheRepriceMatchesFresh(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(50)
		g := graphgen.Social(graphgen.Config{
			Nodes: n, AvgFollows: 3 + rng.Intn(5),
			TriadProb: rng.Float64(), Reciprocity: rng.Float64(), Seed: seed,
		})
		if g.NumEdges() == 0 {
			return true
		}
		r := workload.LogDegree(g, 0.5+rng.Float64()*10)
		cfg := Config{Workers: 1, StructCacheEntries: []int{0, 1, 8, 256}[rng.Intn(4)]}
		ev := NewEvaluator(g, r, cfg)
		for round := 0; round < 8; round++ {
			for e := 0; e < g.NumEdges(); e++ {
				he := graph.EdgeID(e)
				got, okGot := ev.EvalCandidate(he)
				want, okWant := freshEvalReference(ev, he)
				if okGot != okWant || (okGot && !sameCandidate(got, want)) {
					return false
				}
			}
			// Mutate the schedule: commit a random surviving candidate in
			// full, plus a couple of direct push/pull writes.
			var cands []Candidate
			for e := 0; e < g.NumEdges(); e++ {
				if c, ok := ev.EvalCandidate(graph.EdgeID(e)); ok {
					cands = append(cands, c)
				}
			}
			if len(cands) > 0 {
				c := cands[rng.Intn(len(cands))]
				keep := make([]int32, len(c.Xs))
				for i := range keep {
					keep[i] = int32(i)
				}
				ev.Apply(&c, keep)
			}
			for k := 0; k < 2; k++ {
				e := graph.EdgeID(rng.Intn(g.NumEdges()))
				if rng.Intn(2) == 0 {
					ev.Schedule().SetPush(e)
				} else {
					ev.Schedule().SetPull(e)
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestStructCacheEvictionInvariance runs full solves under cache
// capacities from "evict almost everything" to "cache everything" and
// asserts the schedule is byte-identical to the uncapped single-worker
// reference: eviction may cost recomputation, never a different answer.
// The multi-worker rounds also stress concurrent cache access under
// -race.
func TestStructCacheEvictionInvariance(t *testing.T) {
	g := graphgen.Social(graphgen.FlickrLike(scaled(400, 200), 11))
	r := workload.LogDegree(g, 5)
	ref := Solve(g, r, Config{Workers: 1})
	for _, entries := range []int{1, 64, 4096} {
		for _, workers := range []int{1, 4} {
			got := Solve(g, r, Config{Workers: workers, StructCacheEntries: entries})
			if got.Schedule.Cost(r) != ref.Schedule.Cost(r) {
				t.Fatalf("entries=%d workers=%d cost %v differs from reference %v",
					entries, workers, got.Schedule.Cost(r), ref.Schedule.Cost(r))
			}
			for e := 0; e < g.NumEdges(); e++ {
				ee := graph.EdgeID(e)
				if got.Schedule.IsPush(ee) != ref.Schedule.IsPush(ee) ||
					got.Schedule.IsPull(ee) != ref.Schedule.IsPull(ee) ||
					got.Schedule.IsCovered(ee) != ref.Schedule.IsCovered(ee) {
					t.Fatalf("entries=%d workers=%d schedule differs at edge %d", entries, workers, e)
				}
			}
		}
	}
}

// TestLockTableResetBetweenIterations is the regression test for the
// partial lock reset: after every iteration the lock table must be
// all-unclaimed — the touched-word reset may not leave a stale owner from
// the round's bids, or the next round's decide phase could read a
// phantom grant.
func TestLockTableResetBetweenIterations(t *testing.T) {
	g := graphgen.Social(graphgen.FlickrLike(scaled(300, 150), 9))
	r := workload.LogDegree(g, 5)
	for _, workers := range []int{1, 3} {
		cfg := Config{Workers: workers}
		st := newState(NewEvaluator(g, r, cfg), cfg)
		committed := 0
		for it := 0; it < 50; it++ {
			stat := st.iterate()
			for e, lw := range st.locks {
				if lw.owner != -1 || lw.gain != 0 {
					t.Fatalf("workers=%d iteration %d: stale lock word at edge %d: %+v",
						workers, it, e, lw)
				}
			}
			committed += stat.FullCommits + stat.PartialCommits
			if stat.FullCommits+stat.PartialCommits == 0 {
				break
			}
		}
		if committed == 0 {
			t.Fatal("solver committed nothing; lock table never exercised")
		}
	}
}

// Property: valid schedules, never worse than hybrid, on random graphs
// and rates.
func TestQuickValidAndBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(60)
		var g *graph.Graph
		if rng.Intn(2) == 0 {
			g = graphgen.ErdosRenyi(n, 5*n, seed)
		} else {
			g = graphgen.Social(graphgen.Config{
				Nodes: n, AvgFollows: 3 + rng.Intn(6),
				TriadProb: rng.Float64(), Reciprocity: rng.Float64(), Seed: seed,
			})
		}
		r := workload.LogDegree(g, 0.5+rng.Float64()*20)
		res := Solve(g, r, Config{Workers: 1 + rng.Intn(4)})
		if res.Schedule.Validate() != nil {
			return false
		}
		return res.Schedule.Cost(r) <= baseline.HybridCost(g, r)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// schedulesEqual compares two schedules edge by edge (flags and hub).
func schedulesEqual(a, b *core.Schedule, m int) bool {
	for e := 0; e < m; e++ {
		ee := graph.EdgeID(e)
		if a.IsPush(ee) != b.IsPush(ee) || a.IsPull(ee) != b.IsPull(ee) ||
			a.IsCovered(ee) != b.IsCovered(ee) || a.Hub(ee) != b.Hub(ee) {
			return false
		}
	}
	return true
}

// A restricted solve over the FULL edge set, started from any valid base,
// must reproduce the from-scratch solve exactly: clearing every edge
// leaves the same initial state, the dirty seeding covers every edge, and
// the boundary repair has nothing to do.
func TestSolveRestrictedFullRegionMatchesSolve(t *testing.T) {
	g := graphgen.Social(graphgen.FlickrLike(scaled(300, 120), 21))
	r := workload.LogDegree(g, 5)
	ref := Solve(g, r, Config{Workers: 1})

	base := baseline.Hybrid(g, r)
	region := make([]graph.EdgeID, g.NumEdges())
	for e := range region {
		region[e] = graph.EdgeID(e)
	}
	got := SolveRestricted(g, r, Config{Workers: 1}, base, region)
	if !schedulesEqual(ref.Schedule, got.Schedule, g.NumEdges()) {
		t.Fatal("full-region restricted solve differs from Solve")
	}
}

// Locality contract: a restricted solve only rewrites region edges;
// exterior edges keep their base assignment except for flags ADDED by the
// boundary repair.
func TestSolveRestrictedStaysInRegion(t *testing.T) {
	g := graphgen.Social(graphgen.FlickrLike(scaled(400, 160), 5))
	r := workload.LogDegree(g, 5)
	base := Solve(g, r, Config{Workers: 1}).Schedule
	if err := base.Validate(); err != nil {
		t.Fatal(err)
	}

	nodes := graph.KHop(g, []graph.NodeID{3, 40}, 2, 120)
	region := graph.InducedEdgeIDs(g, nodes)
	if len(region) == 0 || len(region) == g.NumEdges() {
		t.Fatalf("degenerate region: %d of %d edges", len(region), g.NumEdges())
	}
	inRegion := make(map[graph.EdgeID]bool, len(region))
	for _, e := range region {
		inRegion[e] = true
	}

	res := SolveRestricted(g, r, Config{Workers: 1}, base, region)
	if err := res.Schedule.Validate(); err != nil {
		t.Fatalf("restricted result invalid: %v", err)
	}
	for e := 0; e < g.NumEdges(); e++ {
		ee := graph.EdgeID(e)
		if inRegion[ee] {
			continue
		}
		// Exterior: coverage identical; push/pull may only be gained.
		if res.Schedule.IsCovered(ee) != base.IsCovered(ee) ||
			(res.Schedule.IsCovered(ee) && res.Schedule.Hub(ee) != base.Hub(ee)) {
			t.Fatalf("exterior edge %d coverage changed", e)
		}
		if (base.IsPush(ee) && !res.Schedule.IsPush(ee)) ||
			(base.IsPull(ee) && !res.Schedule.IsPull(ee)) {
			t.Fatalf("exterior edge %d lost a flag", e)
		}
	}
}

// The restricted entry point inherits worker-count invariance from the
// shared lock/decide machinery.
func TestSolveRestrictedWorkerInvariance(t *testing.T) {
	g := graphgen.Social(graphgen.TwitterLike(scaled(300, 150), 33))
	r := workload.LogDegree(g, 5)
	base := Solve(g, r, Config{Workers: 1}).Schedule
	nodes := graph.KHop(g, []graph.NodeID{1, 17, 99}, 2, 150)
	region := graph.InducedEdgeIDs(g, nodes)
	ref := SolveRestricted(g, r, Config{Workers: 1}, base, region)
	for _, workers := range []int{2, 4} {
		got := SolveRestricted(g, r, Config{Workers: workers}, base, region)
		if !schedulesEqual(ref.Schedule, got.Schedule, g.NumEdges()) {
			t.Fatalf("workers=%d restricted schedule differs", workers)
		}
	}
}
