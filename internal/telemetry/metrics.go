// Package telemetry is the zero-dependency observability core shared by
// every layer of the repository: a metrics registry (counters, gauges,
// fixed-bucket histograms) with a lock-free atomic hot path, a
// DETERMINISTIC tracer whose span trees are byte-identical across runs
// and worker counts, and an append-only event stream for state
// transitions the tests pin exactly.
//
// Three design rules, argued in DESIGN.md §12:
//
//   - The off switch is nil. Every instrument method is nil-receiver
//     safe and a nil *Registry hands out nil instruments, so an
//     uninstrumented hot path costs one predictable nil check and zero
//     allocations — pinned by testing.AllocsPerRun.
//   - Snapshots are deterministic. Histogram bucket bounds are fixed at
//     creation (never adaptive), snapshot order is a stable sort over
//     (name, labels), and metrics that measure WALL CLOCK follow a
//     naming convention (IsTiming) so tests can compare everything
//     else byte for byte.
//   - Identity is a string. A metric is its name plus an ordered label
//     list, rendered once at registration; the hot path never formats.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind discriminates the metric types in a Snapshot.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String renders the kind in Prometheus TYPE terms.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Label is one metric dimension. Labels are part of a metric's
// identity; the same name with different labels is a different series.
type Label struct{ Key, Value string }

// Counter is a monotonically increasing integer. The zero value works
// standalone; registry-issued counters show up in snapshots. All
// methods are safe for concurrent use and a nil *Counter is a no-op —
// the telemetry-off hot path.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) {
	if c != nil {
		c.v.Add(delta)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; 0 on a nil counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down, stored as atomic bits.
// Nil-receiver safe like Counter.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add accumulates delta into the gauge (CAS loop, allocation-free).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value; 0 on a nil gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into FIXED, pre-declared bucket upper
// bounds (upper-inclusive, Prometheus `le` semantics) plus an implicit
// +Inf bucket. Fixed bounds are what make snapshots deterministic: the
// shape of the histogram never depends on the data that arrived first.
// Nil-receiver safe like Counter.
type Histogram struct {
	bounds []float64 // sorted ascending, fixed at creation
	counts []atomic.Uint64
	n      atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations; 0 on a nil histogram.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of all observations; 0 on a nil histogram.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear
// interpolation inside the bucket holding the target rank — the
// standard Prometheus histogram_quantile estimate. It returns 0 when
// the histogram is empty; samples in the +Inf bucket clamp to the
// highest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.n.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := uint64(0)
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			if i >= len(h.bounds) { // +Inf bucket
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// LatencyBuckets are the default request-latency bounds in seconds:
// 100µs to 10s, roughly ×2.5 per step — wide enough for an in-process
// TCP round trip and a retry-after-timeout tail in the same histogram.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// SizeBuckets are generic magnitude bounds (1 to 1M, decades with a
// half step) for counts like region edges or frame sizes.
var SizeBuckets = []float64{
	1, 5, 10, 50, 100, 500, 1000, 5000, 10000, 50000, 100000, 500000, 1e6,
}

// IsTiming reports whether a metric name denotes a WALL-CLOCK
// measurement by convention: a suffix of "_seconds", "_seconds_total",
// or "_wall". Deterministic snapshots (Snapshot.NonTiming) exclude
// such metrics, because wall time is the one quantity instrumentation
// cannot make reproducible.
func IsTiming(name string) bool {
	return strings.HasSuffix(name, "_seconds") ||
		strings.HasSuffix(name, "_seconds_total") ||
		strings.HasSuffix(name, "_wall")
}

// entry is one registered series.
type entry struct {
	name   string
	labels []Label
	kind   Kind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// sortKey orders snapshots: by name first, then by rendered labels, so
// series of the same metric are adjacent regardless of label bytes.
func (e *entry) sortKey() string { return e.name + "\x00" + renderLabels(e.labels) }

// Registry maps metric identities to live instruments. Registration
// (Counter/Gauge/Histogram) takes a mutex and may allocate — call it at
// setup time and cache the returned instrument; the instrument methods
// themselves are the lock-free hot path. A nil *Registry hands out nil
// instruments, making "telemetry off" a nil check at the call site.
//
// The zero value is NOT ready; use NewRegistry.
type Registry struct {
	mu sync.Mutex
	by map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{by: map[string]*entry{}} }

// Default is the process-global registry, for programs that want one
// shared sink without plumbing. Libraries take a *Registry parameter
// instead of reaching for this.
var Default = NewRegistry()

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(l.Value)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// get returns the entry for (name, labels), creating it with kind via
// make when absent. Re-registering with a different kind is a
// programmer error and panics, mirroring MustRegister elsewhere.
func (r *Registry) get(name string, kind Kind, labels []Label, make func() *entry) *entry {
	key := name + renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.by[key]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("telemetry: %s re-registered as %s (was %s)", key, kind, e.kind))
		}
		return e
	}
	e := make()
	r.by[key] = e
	return e
}

// Counter returns (creating if needed) the counter for name+labels.
// Nil registry → nil counter.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	e := r.get(name, KindCounter, labels, func() *entry {
		return &entry{name: name, labels: labels, kind: KindCounter, c: &Counter{}}
	})
	return e.c
}

// Gauge returns (creating if needed) the gauge for name+labels.
// Nil registry → nil gauge.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	e := r.get(name, KindGauge, labels, func() *entry {
		return &entry{name: name, labels: labels, kind: KindGauge, g: &Gauge{}}
	})
	return e.g
}

// Histogram returns (creating if needed) the histogram for name+labels
// with the given fixed bucket bounds. The bounds of an existing series
// win; passing different bounds for the same identity panics.
// Nil registry → nil histogram.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	e := r.get(name, KindHistogram, labels, func() *entry {
		return &entry{name: name, labels: labels, kind: KindHistogram, h: newHistogram(bounds)}
	})
	if len(e.h.bounds) != len(bounds) {
		panic(fmt.Sprintf("telemetry: histogram %s re-registered with %d bounds (was %d)",
			name, len(bounds), len(e.h.bounds)))
	}
	return e.h
}

// Bucket is one cumulative histogram bucket in a snapshot: the count of
// observations ≤ Le.
type Bucket struct {
	Le    float64
	Count uint64
}

// Metric is one series frozen at snapshot time.
type Metric struct {
	Name   string
	Labels []Label
	Kind   Kind
	// Timing reports the IsTiming naming convention — true means the
	// values measure wall clock and are excluded from deterministic
	// comparisons.
	Timing bool
	// Value is the counter (as float) or gauge value.
	Value float64
	// Count / Sum / Buckets carry histogram state; Buckets are
	// cumulative and end with the +Inf bucket (Le = +Inf).
	Count   uint64
	Sum     float64
	Buckets []Bucket
}

func (m Metric) identity() string { return m.Name + renderLabels(m.Labels) }

// Snapshot is a stable-sorted copy of every registered series.
type Snapshot struct{ Metrics []Metric }

// Snapshot freezes the registry: every series copied out, sorted by
// (name, labels) so two snapshots of identical state render
// byte-identically. Nil registry → empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	entries := make([]*entry, 0, len(r.by))
	for _, e := range r.by {
		entries = append(entries, e)
	}
	r.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].sortKey() < entries[j].sortKey() })

	out := Snapshot{Metrics: make([]Metric, 0, len(entries))}
	for _, e := range entries {
		m := Metric{Name: e.name, Labels: e.labels, Kind: e.kind, Timing: IsTiming(e.name)}
		switch e.kind {
		case KindCounter:
			m.Value = float64(e.c.Value())
		case KindGauge:
			m.Value = e.g.Value()
		case KindHistogram:
			m.Count = e.h.Count()
			m.Sum = e.h.Sum()
			cum := uint64(0)
			for i := range e.h.counts {
				cum += e.h.counts[i].Load()
				le := math.Inf(1)
				if i < len(e.h.bounds) {
					le = e.h.bounds[i]
				}
				m.Buckets = append(m.Buckets, Bucket{Le: le, Count: cum})
			}
		}
		out.Metrics = append(out.Metrics, m)
	}
	return out
}

// NonTiming returns the snapshot without wall-clock series (IsTiming) —
// what the determinism tests compare byte for byte.
func (s Snapshot) NonTiming() Snapshot {
	out := Snapshot{Metrics: make([]Metric, 0, len(s.Metrics))}
	for _, m := range s.Metrics {
		if !m.Timing {
			out.Metrics = append(out.Metrics, m)
		}
	}
	return out
}

// Get returns the first series with the given name (any labels), for
// tests and CLI summaries.
func (s Snapshot) Get(name string) (Metric, bool) {
	for _, m := range s.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// String renders the snapshot as compact deterministic lines — one
// series per line, histograms as count/sum plus the cumulative buckets.
// This is the format the determinism gates diff.
func (s Snapshot) String() string {
	var b strings.Builder
	for _, m := range s.Metrics {
		fmt.Fprintf(&b, "%s", m.identity())
		switch m.Kind {
		case KindHistogram:
			fmt.Fprintf(&b, " count=%d sum=%g buckets=[", m.Count, m.Sum)
			for i, bk := range m.Buckets {
				if i > 0 {
					b.WriteByte(' ')
				}
				fmt.Fprintf(&b, "%g:%d", bk.Le, bk.Count)
			}
			b.WriteString("]\n")
		default:
			fmt.Fprintf(&b, " %g\n", m.Value)
		}
	}
	return b.String()
}

// PromText renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): one # TYPE header per metric name, histogram
// series expanded into _bucket/_sum/_count.
func (s Snapshot) PromText() string {
	var b strings.Builder
	lastName := ""
	for _, m := range s.Metrics {
		if m.Name != lastName {
			fmt.Fprintf(&b, "# TYPE %s %s\n", m.Name, m.Kind)
			lastName = m.Name
		}
		switch m.Kind {
		case KindHistogram:
			for _, bk := range m.Buckets {
				le := "+Inf"
				if !math.IsInf(bk.Le, 1) {
					le = formatFloat(bk.Le)
				}
				labels := append(append([]Label(nil), m.Labels...), Label{"le", le})
				fmt.Fprintf(&b, "%s_bucket%s %d\n", m.Name, renderLabels(labels), bk.Count)
			}
			fmt.Fprintf(&b, "%s_sum%s %s\n", m.Name, renderLabels(m.Labels), formatFloat(m.Sum))
			fmt.Fprintf(&b, "%s_count%s %d\n", m.Name, renderLabels(m.Labels), m.Count)
		default:
			fmt.Fprintf(&b, "%s%s %s\n", m.Name, renderLabels(m.Labels), formatFloat(m.Value))
		}
	}
	return b.String()
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
