// Package chitchat implements the CHITCHAT approximation algorithm (§3.1).
//
// CHITCHAT maps the DISSEMINATION problem to weighted SETCOVER: the ground
// set is the edges of the social graph, and the candidate collection
// contains (a) singleton edges served directly at the hybrid cost
// c*(u→v) = min(rp(u), rc(v)) and (b) hub-graphs G(X, w, Y), which pay for
// the pushes X→w and pulls w→Y and cover, for free, every cross-edge
// X→Y present in the graph. The greedy step — find the candidate with the
// lowest cost per newly covered element — is solved per hub by the
// weighted densest-subgraph oracle of package densest (Lemma 1), giving
// an overall O(ln n) approximation (Theorem 4).
//
// The oracle is incremental: every hub-graph instance is materialized
// once (CSR adjacency + weights, capped at Config.MaxCrossEdges
// cross-edges) into a densest.Decremental, and a greedy commit only
// removes the covered elements from the instances that actually contain
// them (via an inverted edge → (hub, element) index) and zeroes the
// support weights it paid. Re-evaluating a hub is then a re-peel of its
// live sub-instance — no instance rebuild, no graph adjacency scans — and
// a hub untouched by a commit keeps its oracle output with no work at
// all. Because coverage is committed from the same materialized elements
// the oracle counted, the claimed newlyCovered always equals the coverage
// the commit performs, including when MaxCrossEdges truncates the
// instance.
//
// The paper's Algorithm 1 refreshes the oracle output of every affected
// hub after each selection; we use a batched lazy-greedy variant instead:
// a commit eagerly re-evaluates only the hubs whose ratio may have
// IMPROVED (support weights zeroed — the committed hub itself, or the
// hub paid for by a singleton), while hubs that merely lost elements got
// worse and keep their stale, too-low queue entries until they reach the
// head. A stale head triggers a speculative refresh of the top
// Config.RefreshBatch candidates at once. The committed choice is the same
// greedy choice up to ties; the lazy form just avoids recomputing oracles
// whose turn never comes.
//
// Oracle evaluations are independent reads of the solver state, so both
// the initial per-hub pass and every refresh batch fan out across
// Config.Workers goroutines. Which candidates get refreshed, and which
// commits, is decided by queue state alone (ties break toward the lowest
// hub id), so the schedule is byte-identical for every worker count.
package chitchat

import (
	"context"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"piggyback/internal/baseline"
	"piggyback/internal/bitset"
	"piggyback/internal/core"
	"piggyback/internal/densest"
	"piggyback/internal/graph"
	"piggyback/internal/pq"
	"piggyback/internal/workload"
)

// Config tunes CHITCHAT. The zero value uses the defaults.
type Config struct {
	// MaxCrossEdges bounds the number of cross-edges materialized per
	// hub-graph instance, mirroring the bound b of §3.2/§4.2. 0 means
	// DefaultMaxCrossEdges. The bound is applied once, when the instance
	// is materialized; both the oracle's coverage claim and the committed
	// coverage are computed from the same materialized element set, so
	// they always agree.
	MaxCrossEdges int
	// ExactOracle replaces the peeling oracle with brute-force subset
	// enumeration (instances up to 24 nodes; larger hub-graphs fall back
	// to peeling). Only sensible on tiny graphs; used by ablation benches.
	ExactOracle bool
	// Workers is the parallelism degree for oracle evaluation; 0 means
	// GOMAXPROCS. The resulting schedule is identical for every worker
	// count: workers only change who evaluates an oracle, never which
	// candidates are refreshed or chosen.
	Workers int
	// RefreshBatch is how many stale hub candidates at the head of the
	// queue are re-evaluated together when the head turns out stale; 0
	// means DefaultRefreshBatch. It is deliberately independent of
	// Workers: the refresh policy decides tie-breaks and therefore the
	// schedule, and the schedule must not vary with the worker count —
	// for any fixed RefreshBatch the result is worker-count invariant.
	RefreshBatch int
	// MemberCacheCap bounds how many oracle member lists are retained
	// between evaluation and commit; 0 means DefaultMemberCacheCap.
	// Priorities only need the (cost, covered) pair, which is stored flat
	// for all hubs; the member slices — the O(|S|) payload that used to
	// be retained for every hub — live in a fixed-size ring. A commit
	// whose members were evicted re-derives them with one deterministic
	// re-peel of the (unchanged) instance, so the cap trades memory for
	// re-peels, never correctness.
	MemberCacheCap int
	// OnProgress, when non-nil, streams a Progress snapshot after every
	// greedy commit. The callback runs on the solve goroutine; it must
	// not mutate solver inputs and should return quickly.
	OnProgress func(Progress)
}

// Progress is the solve-progress snapshot streamed to Config.OnProgress
// after each greedy commit.
type Progress struct {
	Commits    int // greedy commits so far (hubs + singletons)
	HubCommits int // hub commits among them
	Covered    int // ground-set edges served so far
	Remaining  int // ground-set edges still unserved
}

// DefaultMaxCrossEdges matches the bound used for the Twitter runs in §4.2.
const DefaultMaxCrossEdges = 100000

// DefaultRefreshBatch is the speculative refresh width tuned on the
// dev-container profiles (ROADMAP tracks re-tuning on real multi-core
// hardware).
const DefaultRefreshBatch = 16

// DefaultMemberCacheCap is the member-list ring size.
const DefaultMemberCacheCap = 128

// cacheStats summarizes the member cache's behavior over one solve:
// Stores counts every member list that entered the ring (one per oracle
// evaluation kept), HighWater the most lists simultaneously resident,
// Retained the member entries still resident at the end. Stores greatly
// exceeding Capacity with Retained lists capped at Capacity is what
// "resident memory is O(active hubs)" means operationally.
type cacheStats struct {
	Capacity      int
	HighWater     int
	Stores        int
	RetainedLists int
	RetainedInts  int
}

// Test hooks; nil outside tests. commitObserver reports, after every hub
// commit, the coverage the oracle claimed against the coverage the commit
// actually performed. cacheObserver reports member-cache statistics when
// a solve finishes.
var (
	commitObserver func(w graph.NodeID, claimed, covered int)
	cacheObserver  func(cacheStats)
)

// Solve computes a request schedule for g under rates r. The result is
// always valid (Theorem 1): every edge is pushed, pulled, or covered
// through a hub.
func Solve(g *graph.Graph, r *workload.Rates, cfg Config) *core.Schedule {
	s, _ := SolveCtx(context.Background(), g, r, cfg)
	return s
}

// SolveCtx is Solve with cooperative cancellation: the context is checked
// once per greedy commit (iteration granularity — no per-edge overhead),
// and on cancellation the solve stops where it is, serves every still-
// uncovered edge directly via the hybrid rule (the FEEDINGFRENZY
// finalization), and returns the best-so-far schedule together with the
// context's error. The returned schedule is always Theorem-1 valid, even
// when err != nil — CHITCHAT is an anytime solver under this contract.
func SolveCtx(ctx context.Context, g *graph.Graph, r *workload.Rates, cfg Config) (*core.Schedule, error) {
	if cfg.MaxCrossEdges == 0 {
		cfg.MaxCrossEdges = DefaultMaxCrossEdges
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.RefreshBatch <= 0 {
		cfg.RefreshBatch = DefaultRefreshBatch
	}
	if cfg.MemberCacheCap <= 0 {
		cfg.MemberCacheCap = DefaultMemberCacheCap
	}
	n := g.NumNodes()
	m := g.NumEdges()
	s := core.NewSchedule(g)
	if m == 0 {
		return s, nil
	}

	workers := cfg.Workers
	if workers > n {
		workers = n
	}
	sv := &solver{
		g: g, r: r, cfg: cfg, s: s,
		n:         n,
		uncovered: bitset.New(m),
		remaining: m,
		q:         pq.New(n + m),
		scs:       make([]*scratch, workers),
		insts:     make([]*hubInstance, n),
		fresh:     make([]bool, n),
		freshVal:  make([]hubVal, n),
	}
	sv.uncovered.SetAll()
	sv.mcache.init(cfg.MemberCacheCap)
	for i := range sv.scs {
		sv.scs[i] = &scratch{yMark: make([]int64, n), yPos: make([]int32, n)}
	}

	// Singleton candidates never change ratio: c*(e) per single element.
	g.Edges(func(e graph.EdgeID, u, v graph.NodeID) bool {
		sv.q.Push(n+int(e), baseline.EdgeCost(r, u, v))
		return true
	})

	// Materialize every hub instance and evaluate it against the full
	// ground set — the embarrassingly parallel bulk of the solve. The
	// instances live for the whole solve; later commits only mutate them.
	initRes := make([]hubEval, n)
	initOK := make([]bool, n)
	sv.forEach(n, func(i int, sc *scratch) {
		w := graph.NodeID(i)
		sv.insts[i] = buildHubInstance(g, r, w, cfg, sc)
		initRes[i], initOK[i] = evalHub(sv.insts[i], cfg, sc)
	})
	sv.buildInvertedIndex()
	ids := make([]int32, 0, n)
	prios := make([]float64, 0, n)
	for w := 0; w < n; w++ {
		if initOK[w] {
			sv.setFresh(graph.NodeID(w), initRes[w])
			ids = append(ids, int32(w))
			prios = append(prios, initRes[w].ratio())
		}
	}
	sv.q.PushBatch(ids, prios)

	var cause error
	for sv.remaining > 0 && sv.q.Len() > 0 {
		if err := ctx.Err(); err != nil {
			// Canceled mid-solve: stop here; the Finalize below serves
			// everything still uncovered at the hybrid cost, so the
			// partial greedy prefix is still a valid schedule.
			cause = err
			break
		}
		id, _ := sv.q.Min()
		if id >= n {
			// Singleton edge: ratio never changes; skip if already covered.
			sv.q.PopMin()
			e := graph.EdgeID(id - n)
			if !sv.uncovered.Test(int(e)) {
				continue
			}
			sv.commitSingleton(e)
			sv.noteCommit(false)
			continue
		}
		w := graph.NodeID(id)
		if sv.fresh[w] {
			// The head's oracle output was computed against the current
			// state of its instance, which no commit has touched since:
			// it is the greedy choice. Commit it.
			sv.q.PopMin()
			sv.commitHub(w)
			sv.noteCommit(true)
			continue
		}
		sv.refreshHead()
	}
	if cacheObserver != nil {
		st := cacheStats{
			Capacity:  cfg.MemberCacheCap,
			HighWater: sv.mcache.highWater,
			Stores:    sv.mcache.stores,
		}
		for _, mem := range sv.mcache.members {
			if mem != nil {
				st.RetainedLists++
				st.RetainedInts += len(mem)
			}
		}
		cacheObserver(st)
	}
	// Serve anything left directly: on the normal path this is defensive
	// (singletons cover every edge); on the cancellation path it is the
	// hybrid-rule finalization that makes the partial solve valid.
	s.Finalize(r)
	return s, cause
}

// SolveInduced is the restricted entry point for localized
// re-optimization: it solves the extracted region sub.G under the global
// rates projected through the subgraph's node mapping, returning a patch
// schedule over sub.G ready for core.ApplyPatch. CHITCHAT's quality
// guarantee (Theorem 4) applies to the region in isolation; the splice
// validity is argued at core.ApplyPatch.
func SolveInduced(sub *graph.Subgraph, r *workload.Rates, cfg Config) *core.Schedule {
	s, _ := SolveInducedCtx(context.Background(), sub, r, cfg)
	return s
}

// SolveInducedCtx is SolveInduced with the cancellation contract of
// SolveCtx: the returned patch is always valid over sub.G, and a non-nil
// error means the greedy ran only partially before the context fired.
func SolveInducedCtx(ctx context.Context, sub *graph.Subgraph, r *workload.Rates, cfg Config) (*core.Schedule, error) {
	return SolveCtx(ctx, sub.G, r.Project(sub.Global), cfg)
}

// noteCommit bumps the progress counters after a greedy commit and
// streams a snapshot to Config.OnProgress when set.
func (sv *solver) noteCommit(hub bool) {
	sv.commits++
	if hub {
		sv.hubCommits++
	}
	if sv.cfg.OnProgress != nil {
		sv.cfg.OnProgress(Progress{
			Commits:    sv.commits,
			HubCommits: sv.hubCommits,
			Covered:    sv.g.NumEdges() - sv.remaining,
			Remaining:  sv.remaining,
		})
	}
}

// solver carries the shared solve state. Oracle evaluations (evalHub) are
// pure reads of the materialized instances plus a per-worker scratch, so
// they run concurrently; all queue, schedule, and instance mutation stays
// on the caller goroutine.
type solver struct {
	g   *graph.Graph
	r   *workload.Rates
	cfg Config
	s   *core.Schedule

	n         int
	uncovered *bitset.Set
	remaining int
	q         *pq.IndexedMin
	scs       []*scratch // one per worker

	// insts[w] is hub w's materialized decremental oracle instance (nil
	// when w has no producers or no consumers). invOff/invHub/invIdx form
	// a CSR inverted index from graph edge id to every (hub, element)
	// pair that materialized it, so covering an edge removes exactly the
	// affected elements.
	insts  []*hubInstance
	invOff []int32
	invHub []int32
	invIdx []int32

	// Freshness: fresh[w] means freshVal[w] matches the CURRENT state of
	// instance w — no commit removed one of its elements or zeroed one of
	// its weights since the evaluation. Stale entries in the queue are
	// lower bounds (losing elements only worsens a hub), so lazy greedy
	// re-evaluates them when they reach the head; hubs whose weights were
	// zeroed may have improved and are re-evaluated eagerly at commit.
	fresh    []bool
	freshVal []hubVal
	mcache   memberCache

	// Progress counters for Config.OnProgress.
	commits    int
	hubCommits int

	memb     []bool // member marks, sized to the largest instance
	batchIDs []graph.NodeID
	batchRes []hubEval
	batchOK  []bool
	insIDs   []int32
	insPrios []float64
}

// hubVal is the flat per-hub oracle summary retained for every hub: the
// priority inputs plus the member-cache slot (or -1 when evicted).
type hubVal struct {
	cost    float64
	covered int32
	slot    int32
}

// hubInstance binds a hub's materialized oracle instance to the graph:
// instance vertices [0,nx) are the producers xs, [nx, nx+len(ys)) the
// consumers ys, and the last vertex is the hub; gid maps every
// materialized instance edge back to its graph edge id.
type hubInstance struct {
	d    *densest.Decremental
	xs   []graph.NodeID // aliases graph storage, sorted
	ys   []graph.NodeID // aliases graph storage, sorted
	xIDs []graph.EdgeID
	yLo  graph.EdgeID
	nx   int
	gid  []graph.EdgeID
}

func (hi *hubInstance) hubIdx() int32 { return int32(hi.nx + len(hi.ys)) }

// xIndex returns the instance vertex of producer x (position in the
// sorted xs), if present.
func (hi *hubInstance) xIndex(x graph.NodeID) (int, bool) {
	i := sort.Search(len(hi.xs), func(i int) bool { return hi.xs[i] >= x })
	if i < len(hi.xs) && hi.xs[i] == x {
		return i, true
	}
	return 0, false
}

// yIndex returns the instance vertex of consumer y, if present.
func (hi *hubInstance) yIndex(y graph.NodeID) (int, bool) {
	j := sort.Search(len(hi.ys), func(j int) bool { return hi.ys[j] >= y })
	if j < len(hi.ys) && hi.ys[j] == y {
		return hi.nx + j, true
	}
	return 0, false
}

// buildHubInstance materializes the maximal hub-graph centered on w — X =
// producers of w, Y = consumers of w, elements restricted to the first
// MaxCrossEdges cross-edges in (producer, adjacency) order — into a
// decremental oracle. It runs before any commit, so every edge is an
// element and every support weight is unpaid. It only reads the graph and
// writes sc, so concurrent calls with distinct scratches are safe.
func buildHubInstance(g *graph.Graph, r *workload.Rates, w graph.NodeID,
	cfg Config, sc *scratch) *hubInstance {

	xs := g.InNeighbors(w)
	ys := g.OutNeighbors(w)
	if len(xs) == 0 || len(ys) == 0 {
		return nil
	}
	xIDs := g.InEdgeIDs(w)
	yLo, _ := g.OutEdgeRange(w)

	nx, ny := len(xs), len(ys)
	hub := int32(nx + ny)
	if cap(sc.weight) < nx+ny+1 {
		sc.weight = make([]float64, nx+ny+1)
	}
	weight := sc.weight[:nx+ny+1]
	weight[hub] = 0
	edges := sc.edges[:0]
	gids := sc.gids[:0]
	for i, x := range xs {
		weight[i] = r.Prod[x]
		edges = append(edges, [2]int32{int32(i), hub})
		gids = append(gids, xIDs[i])
	}
	// Mark Y membership in the generation-stamped scratch array (a map
	// here dominated the whole solve on dense graphs).
	sc.gen++
	for j, y := range ys {
		weight[nx+j] = r.Cons[y]
		edges = append(edges, [2]int32{hub, int32(nx + j)})
		gids = append(gids, yLo+graph.EdgeID(j))
		sc.yMark[y] = sc.gen
		sc.yPos[y] = int32(nx + j)
	}
	// Cross-edges x → y, bounded as in the paper.
	crossBudget := cfg.MaxCrossEdges
	for i, x := range xs {
		if crossBudget <= 0 {
			break
		}
		lo, hi := g.OutEdgeRange(x)
		targets := g.OutNeighbors(x)
		for k := lo; k < hi; k++ {
			y := targets[k-lo]
			if y == w || sc.yMark[y] != sc.gen {
				continue
			}
			edges = append(edges, [2]int32{int32(i), sc.yPos[y]})
			gids = append(gids, k)
			crossBudget--
			if crossBudget <= 0 {
				break
			}
		}
	}
	sc.edges = edges // keep any growth for the next build
	sc.gids = gids
	return &hubInstance{
		d:    densest.NewDecremental(densest.Instance{N: nx + ny + 1, Weight: weight, Edges: edges}),
		xs:   xs,
		ys:   ys,
		xIDs: xIDs,
		yLo:  yLo,
		nx:   nx,
		gid:  append([]graph.EdgeID(nil), gids...),
	}
}

// buildInvertedIndex fills the edge → (hub, element) CSR index over every
// materialized instance edge. One sequential pass; total size equals the
// sum of all instance sizes, the same data the instances already hold.
func (sv *solver) buildInvertedIndex() {
	m := sv.g.NumEdges()
	off := make([]int32, m+1)
	total := 0
	for _, hi := range sv.insts {
		if hi == nil {
			continue
		}
		total += len(hi.gid)
		for _, e := range hi.gid {
			off[e+1]++
		}
	}
	for i := 0; i < m; i++ {
		off[i+1] += off[i]
	}
	hubs := make([]int32, total)
	idxs := make([]int32, total)
	cur := make([]int32, m)
	copy(cur, off[:m])
	for w, hi := range sv.insts {
		if hi == nil {
			continue
		}
		for ei, e := range hi.gid {
			p := cur[e]
			hubs[p] = int32(w)
			idxs[p] = int32(ei)
			cur[e] = p + 1
		}
	}
	sv.invOff, sv.invHub, sv.invIdx = off, hubs, idxs
}

// forEach runs fn(i, scratch) for i in [0, k), fanning out across the
// solver's workers. Each invocation gets a worker-private scratch; fn must
// not touch shared mutable state. Results land in caller-provided arrays
// indexed by i, so the outcome is independent of scheduling order.
func (sv *solver) forEach(k int, fn func(i int, sc *scratch)) {
	nw := len(sv.scs)
	if nw > k {
		nw = k
	}
	if nw <= 1 {
		for i := 0; i < k; i++ {
			fn(i, sv.scs[0])
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(nw)
	for wk := 0; wk < nw; wk++ {
		sc := sv.scs[wk]
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= k {
					return
				}
				fn(i, sc)
			}
		}()
	}
	wg.Wait()
}

// coverEdge removes graph edge e from the uncovered ground set and, via
// the inverted index, deletes its element from every instance that
// materialized it. Those hubs' cached evaluations may now overstate
// coverage, so they go stale; their queue entries remain valid lower
// bounds (element loss only worsens a ratio) until lazily refreshed.
func (sv *solver) coverEdge(e graph.EdgeID) {
	if !sv.uncovered.Test(int(e)) {
		return
	}
	sv.uncovered.Clear(int(e))
	sv.remaining--
	for t := sv.invOff[e]; t < sv.invOff[e+1]; t++ {
		h := sv.invHub[t]
		if sv.insts[h].d.RemoveEdge(int(sv.invIdx[t])) {
			sv.fresh[h] = false
		}
	}
}

// commitSingleton serves edge e directly at the hybrid cost. Paying for
// the push (or pull) zeroes the matching support weight in the one hub
// instance that uses it, which can only IMPROVE that hub's ratio — so it
// is re-evaluated eagerly to keep every queue entry a lower bound.
func (sv *solver) commitSingleton(e graph.EdgeID) {
	u := sv.g.EdgeSource(e)
	v := sv.g.EdgeTarget(e)
	improved := graph.NodeID(-1)
	if sv.r.Prod[u] <= sv.r.Cons[v] {
		sv.s.SetPush(e)
		if hi := sv.insts[v]; hi != nil {
			if i, ok := hi.xIndex(u); ok {
				hi.d.ZeroWeight(i)
				improved = v
			}
		}
	} else {
		sv.s.SetPull(e)
		if hi := sv.insts[u]; hi != nil {
			if j, ok := hi.yIndex(v); ok {
				hi.d.ZeroWeight(j)
				improved = u
			}
		}
	}
	sv.coverEdge(e)
	if improved >= 0 && sv.q.Contains(int(improved)) {
		// Exhausted hubs (no longer queued) are never resurrected: their
		// element set only shrinks, so a hub with nothing coverable never
		// regains value.
		sv.q.Remove(int(improved))
		sv.reEval(improved)
	}
}

// commitHub applies the oracle's choice for hub w: pushes X→w, pulls
// w→Y, covers the live cross-elements inside the selected subgraph, and
// removes every newly covered element from the ground set. Coverage
// comes from the same materialized elements the oracle counted, so the
// committed coverage equals the claimed newlyCovered exactly. The
// committed hub's weights were zeroed (its ratio may have improved), so
// it is re-evaluated immediately and re-queued if it still covers
// anything.
func (sv *solver) commitHub(w graph.NodeID) {
	hi := sv.insts[w]
	members := sv.cachedMembers(w)
	if members == nil {
		// Evicted from the bounded member cache. The instance is unchanged
		// since the fresh evaluation, so one re-peel reproduces it.
		ev, ok := evalHub(hi, sv.cfg, sv.scs[0])
		if !ok {
			return // cannot happen for a fresh queued hub; stay defensive
		}
		members = ev.members
	}
	if cap(sv.memb) < hi.d.N() {
		sv.memb = make([]bool, hi.d.N())
	}
	memb := sv.memb[:hi.d.N()]
	for _, v := range members {
		memb[v] = true
	}
	hub := hi.hubIdx()
	// Pay the support costs first: pushes for selected producers, pulls
	// for selected consumers. Paid supports are weightless in every later
	// evaluation of this instance.
	for _, v := range members {
		switch {
		case v < int32(hi.nx):
			sv.s.SetPush(hi.xIDs[v])
			hi.d.ZeroWeight(int(v))
		case v < hub:
			sv.s.SetPull(hi.yLo + graph.EdgeID(int(v)-hi.nx))
			hi.d.ZeroWeight(int(v))
		}
	}
	// Cover every live element inside the selected subgraph: support
	// elements are served by their own push/pull, cross-elements by
	// piggybacking through w. Each member's incident edges are visited
	// from their first endpoint only, so every element is handled once.
	claimed := int(sv.freshVal[w].covered)
	covered := 0
	for _, v := range members {
		for _, ei := range hi.d.IncidentEdges(int(v)) {
			a, b := hi.d.Edge(int(ei))
			if a != v || !memb[b] || !hi.d.EdgeAlive(int(ei)) {
				continue
			}
			e := hi.gid[ei]
			if a != hub && b != hub {
				sv.s.SetCovered(e, w)
			}
			sv.coverEdge(e)
			covered++
		}
	}
	for _, v := range members {
		memb[v] = false
	}
	if commitObserver != nil {
		commitObserver(w, claimed, covered)
	}
	sv.reEval(w)
}

// reEval re-runs the oracle for a hub that is not currently queued and
// re-inserts it when it still covers something; otherwise the hub is
// exhausted and stays out for good.
func (sv *solver) reEval(w graph.NodeID) {
	ev, ok := evalHub(sv.insts[w], sv.cfg, sv.scs[0])
	if !ok || ev.newlyCovered == 0 {
		sv.fresh[w] = false
		return
	}
	sv.setFresh(w, ev)
	sv.q.Push(int(w), ev.ratio())
}

// refreshHead handles a stale hub at the head of the queue. Classic lazy
// greedy first: refresh the head alone — stale entries are lower bounds
// (a hub only gets worse as elements it covers disappear), so if the
// fresh ratio still does not exceed the next queued priority, the head
// remains the greedy choice and a single oracle call decides the commit.
// Only when the head loses its slot do we speculatively refresh the next
// Config.RefreshBatch stale candidates in one parallel round: the head region is
// churning, so those evaluations are likely needed next and independent.
func (sv *solver) refreshHead() {
	id, _ := sv.q.Min() // caller established: a hub with a stale entry
	sv.q.PopMin()
	w := graph.NodeID(id)
	ev, ok := evalHub(sv.insts[w], sv.cfg, sv.scs[0])
	if !ok || ev.newlyCovered == 0 {
		sv.fresh[w] = false
		return // exhausted hub; it never regains value
	}
	sv.setFresh(w, ev)
	sv.q.Push(id, ev.ratio())
	if sv.q.Len() == 1 {
		return // sole candidate; the main loop commits it
	}
	if head, _ := sv.q.Min(); head == id {
		return // still the minimum; the main loop commits it
	}
	batch := sv.batchIDs[:0]
	for len(batch) < sv.cfg.RefreshBatch && sv.q.Len() > 0 {
		nid, _ := sv.q.Min()
		if nid >= sv.n || sv.fresh[nid] {
			break // fresh hub or singleton: the main loop handles it
		}
		sv.q.PopMin()
		batch = append(batch, graph.NodeID(nid))
	}
	sv.batchIDs = batch
	sv.evalBatch(batch)
}

// evalBatch evaluates the given hubs (already removed from the queue)
// concurrently, then re-inserts those that still cover something, marking
// them fresh. Hubs with nothing left stay out of the queue for good — the
// exhaustion rule documented on commitSingleton.
func (sv *solver) evalBatch(batch []graph.NodeID) {
	if len(batch) == 0 {
		return
	}
	if cap(sv.batchRes) < len(batch) {
		sv.batchRes = make([]hubEval, len(batch))
		sv.batchOK = make([]bool, len(batch))
	}
	res := sv.batchRes[:len(batch)]
	ok := sv.batchOK[:len(batch)]
	sv.forEach(len(batch), func(i int, sc *scratch) {
		res[i], ok[i] = evalHub(sv.insts[batch[i]], sv.cfg, sc)
	})
	ids := sv.insIDs[:0]
	prios := sv.insPrios[:0]
	for i, w := range batch {
		if ok[i] && res[i].newlyCovered > 0 {
			sv.setFresh(w, res[i])
			ids = append(ids, int32(w))
			prios = append(prios, res[i].ratio())
		} else {
			sv.fresh[w] = false
		}
	}
	sv.q.PushBatch(ids, prios)
	sv.insIDs = ids
	sv.insPrios = prios
}

// setFresh records ev as hub w's current oracle output: the flat summary
// for all hubs, the member list in the bounded cache.
func (sv *solver) setFresh(w graph.NodeID, ev hubEval) {
	sv.fresh[w] = true
	sv.freshVal[w] = hubVal{
		cost:    ev.cost,
		covered: int32(ev.newlyCovered),
		slot:    sv.mcache.store(w, ev.members, sv.freshVal),
	}
}

// cachedMembers returns hub w's fresh member list if it is still resident
// in the bounded cache, nil otherwise.
func (sv *solver) cachedMembers(w graph.NodeID) []int32 {
	slot := sv.freshVal[w].slot
	if slot >= 0 && sv.mcache.hubs[slot] == w {
		return sv.mcache.members[slot]
	}
	return nil
}

// memberCache is a fixed-size ring of oracle member lists. It bounds the
// memory retained between evaluation and commit to O(Config.MemberCacheCap)
// slices regardless of graph size; evicted entries are re-derived on
// demand by re-peeling the unchanged instance.
type memberCache struct {
	hubs      []graph.NodeID
	members   [][]int32
	next      int
	occupied  int
	highWater int
	stores    int
}

func (mc *memberCache) init(cap int) {
	mc.hubs = make([]graph.NodeID, cap)
	for i := range mc.hubs {
		mc.hubs[i] = -1
	}
	mc.members = make([][]int32, cap)
}

// store places w's member list in the next ring slot, unlinking whichever
// hub previously owned the slot, and returns the slot.
func (mc *memberCache) store(w graph.NodeID, members []int32, vals []hubVal) int32 {
	mc.stores++
	slot := mc.next
	mc.next++
	if mc.next == len(mc.hubs) {
		mc.next = 0
	}
	if old := mc.hubs[slot]; old >= 0 {
		if vals[old].slot == int32(slot) {
			vals[old].slot = -1
		}
	} else {
		mc.occupied++
		if mc.occupied > mc.highWater {
			mc.highWater = mc.occupied
		}
	}
	mc.hubs[slot] = w
	mc.members[slot] = members
	return int32(slot)
}

// hubEval is a transient oracle output: the selected instance vertices
// and how much the selection covers at what cost.
type hubEval struct {
	members      []int32 // instance-local vertex ids, hub vertex included
	cost         float64 // Σ unpaid rp(x) + Σ unpaid rc(y)
	newlyCovered int     // live elements inside the selection
}

func (h hubEval) ratio() float64 {
	if h.newlyCovered == 0 {
		return math.Inf(1)
	}
	return h.cost / float64(h.newlyCovered)
}

// evalHub runs the oracle over the hub's live sub-instance. It only reads
// the instance and writes sc, so concurrent calls with distinct scratches
// are safe. A selection is usable only when it retains the hub vertex
// (support pushes/pulls need the hub; it is weightless, so keeping it
// never hurts) and at least one producer or consumer.
func evalHub(hi *hubInstance, cfg Config, sc *scratch) (hubEval, bool) {
	if hi == nil || hi.d.AliveEdges() == 0 {
		return hubEval{}, false
	}
	var res densest.Result
	if cfg.ExactOracle && hi.d.N() <= 24 {
		var inst densest.Instance
		inst, sc.liveBuf = hi.d.LiveInstance(sc.liveBuf)
		res = densest.Exact(inst, &sc.dsc)
	} else {
		res = hi.d.Solve(&sc.dsc)
	}
	if res.EdgeCnt == 0 {
		return hubEval{}, false
	}
	hub := hi.hubIdx()
	hubIn := false
	for _, v := range res.Members {
		if v == hub {
			hubIn = true
			break
		}
	}
	if !hubIn || len(res.Members) < 2 {
		return hubEval{}, false
	}
	return hubEval{members: res.Members, cost: res.Weight, newlyCovered: res.EdgeCnt}, true
}

// scratch holds per-worker reusable buffers: yMark/yPos form a
// generation-stamped index from node id to the hub instance's Y-side
// vertex (a per-build map dominated profiles); weight/edges/gids back
// instance materialization, liveBuf the exact-oracle snapshot, and dsc is
// the peel arena, so a steady-state oracle evaluation allocates only its
// small result slice.
type scratch struct {
	yMark   []int64
	yPos    []int32
	gen     int64
	weight  []float64
	edges   [][2]int32
	gids    []graph.EdgeID
	liveBuf [][2]int32
	dsc     densest.Scratch
}
