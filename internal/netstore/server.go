package netstore

import (
	"bufio"
	"errors"
	"io"
	"net"
	"sort"
	"sync"

	"piggyback/internal/graph"
	"piggyback/internal/store"
)

// Server is one TCP data-store server holding user views. Unlike the
// in-process store (one goroutine per server, no locks), a TCP server
// handles many connections concurrently, so views live in a sharded,
// mutex-protected container — the same shape as a memcached slab tier.
type Server struct {
	ln     net.Listener
	shards [viewShards]viewShard
	wg     sync.WaitGroup

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
}

const viewShards = 64

type viewShard struct {
	mu    sync.Mutex
	views map[graph.NodeID][]store.Event
}

// NewServer starts a server listening on addr (use "127.0.0.1:0" for an
// ephemeral test port).
func NewServer(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, conns: make(map[net.Conn]struct{})}
	for i := range s.shards {
		s.shards[i].views = make(map[graph.NodeID][]store.Event)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, closes live connections, and waits for handler
// goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	var buf []byte
	for {
		body, err := readFrame(br, buf)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				return // protocol error or closed connection
			}
			return
		}
		buf = body[:0]
		op, ev, k, views, err := decodeRequest(body)
		if err != nil {
			return // drop the connection on malformed input
		}
		switch op {
		case opUpdate:
			for _, v := range views {
				s.insert(v, ev)
			}
			if writeFrame(bw, nil) != nil {
				return
			}
		case opQuery:
			if writeFrame(bw, encodeEvents(s.query(views, k))) != nil {
				return
			}
		}
		if bw.Flush() != nil {
			return
		}
	}
}

func (s *Server) shard(v graph.NodeID) *viewShard {
	return &s.shards[uint32(v)%viewShards]
}

func (s *Server) insert(v graph.NodeID, ev store.Event) {
	sh := s.shard(v)
	sh.mu.Lock()
	list := sh.views[v]
	i := sort.Search(len(list), func(i int) bool { return list[i].TS <= ev.TS })
	list = append(list, store.Event{})
	copy(list[i+1:], list[i:])
	list[i] = ev
	if len(list) > store.ViewCap {
		list = list[:store.ViewCap]
	}
	sh.views[v] = list
	sh.mu.Unlock()
}

func (s *Server) query(views []graph.NodeID, k int) []store.Event {
	if k <= 0 || k > store.ViewCap {
		k = store.StreamSize
	}
	var out []store.Event
	for _, v := range views {
		sh := s.shard(v)
		sh.mu.Lock()
		list := sh.views[v]
		if len(list) > k {
			list = list[:k]
		}
		snapshot := make([]store.Event, len(list))
		copy(snapshot, list)
		sh.mu.Unlock()
		out = store.MergeNewest(out, snapshot, k)
	}
	return out
}
