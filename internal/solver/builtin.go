package solver

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"piggyback/internal/baseline"
	"piggyback/internal/chitchat"
	"piggyback/internal/core"
	"piggyback/internal/densest"
	"piggyback/internal/graph"
	"piggyback/internal/nosy"
	"piggyback/internal/nosymr"
)

// Built-in registry names.
const (
	ChitChat      = "chitchat"
	Nosy          = "nosy"
	NosyMapReduce = "nosymr"
	Hybrid        = "hybrid"
	PushAll       = "pushall"
	PullAll       = "pullall"
)

func init() {
	Default.MustRegister(ChitChat, func(o Options) Solver {
		return withProgress(NewChitChat(chitchat.Config{
			Workers:        o.Workers,
			MaxCrossEdges:  o.MaxCrossEdges,
			InstanceBudget: o.InstanceBudget,
		}), o.Progress)
	}, Meta{Regions: true, Cost: CostExpensive})
	Default.MustRegister(Nosy, func(o Options) Solver {
		return withProgress(NewNosy(nosy.Config{
			Workers:       o.Workers,
			MaxIterations: o.MaxIterations,
			MaxCrossEdges: o.MaxCrossEdges,
			TraceCosts:    o.TraceCosts,
		}), o.Progress)
	}, Meta{Regions: true, Cost: CostModerate})
	Default.MustRegister(NosyMapReduce, func(o Options) Solver {
		return withProgress(NewNosyMapReduce(nosy.Config{
			Workers:       o.Workers,
			MaxIterations: o.MaxIterations,
			MaxCrossEdges: o.MaxCrossEdges,
			TraceCosts:    o.TraceCosts,
		}), o.Progress)
	}, Meta{Cost: CostModerate})
	Default.MustRegister(Hybrid, func(Options) Solver { return baselineSolver{Hybrid} }, Meta{Cost: CostCheap})
	Default.MustRegister(PushAll, func(Options) Solver { return baselineSolver{PushAll} }, Meta{Cost: CostCheap})
	Default.MustRegister(PullAll, func(Options) Solver { return baselineSolver{PullAll} }, Meta{Cost: CostCheap})
}

// withProgress attaches a progress sink to a typed-constructor solver.
func withProgress(s Solver, fn func(ProgressEvent)) Solver {
	if fn != nil {
		Observe(s, fn)
	}
	return s
}

// guard recovers the typed panics reachable from the public API —
// oversized exact-oracle instances and out-of-range graph edges — and
// converts them into returned errors; anything else keeps propagating.
func guard(name string, res **Result, err *error) {
	p := recover()
	if p == nil {
		return
	}
	if e, ok := p.(error); ok &&
		(errors.Is(e, densest.ErrInstanceTooLarge) || errors.Is(e, graph.ErrEdgeOutOfRange)) {
		*res = nil
		*err = fmt.Errorf("solver %s: %w", name, e)
		return
	}
	panic(p)
}

// finish assembles the Result for a completed (or canceled) solve.
// cause is nil or the context error that cut the solve short; it is
// passed through so callers keep the best-so-far schedule alongside it.
// Report.Cost (an O(m) pass) is computed for full solves only: region
// re-solve callers sit on a hot path, post-process the patch (refine)
// before pricing it, and never read the field.
func finish(name string, s *core.Schedule, p Problem, rep Report, cause error) (*Result, error) {
	rep.Solver = name
	if p.Region == nil {
		rep.Cost = s.Cost(p.Rates)
	} else {
		rep.Cost = math.NaN()
	}
	rep.Canceled = cause != nil
	return &Result{Schedule: s, Report: rep}, cause
}

// endpointNodes returns the sorted, deduplicated endpoint set of the
// region edges.
func endpointNodes(g *graph.Graph, region []graph.EdgeID) []graph.NodeID {
	nodes := make([]graph.NodeID, 0, 2*len(region))
	for _, e := range region {
		nodes = append(nodes, g.EdgeSource(e), g.EdgeTarget(e))
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	dst := 0
	for i, v := range nodes {
		if i > 0 && v == nodes[i-1] {
			continue
		}
		nodes[dst] = v
		dst++
	}
	return nodes[:dst]
}

// sameEdgeSet reports whether a and b hold the same edge ids (order
// ignored; a is sorted in place, b is copied).
func sameEdgeSet(a, b []graph.EdgeID) bool {
	if len(a) != len(b) {
		return false
	}
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	bs := append([]graph.EdgeID(nil), b...)
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	for i := range a {
		if a[i] != bs[i] {
			return false
		}
	}
	return true
}

// chitchatSolver adapts the CHITCHAT approximation to the Solver
// contract. Region re-solves extract the induced subgraph of the
// region's endpoints, solve it in isolation, and splice the patch into
// the base schedule via core.ApplyPatch.
type chitchatSolver struct {
	cfg      chitchat.Config
	progress func(ProgressEvent)
}

// NewChitChat returns the CHITCHAT solver under a full typed config —
// the constructor for callers that need knobs beyond Options (exact
// oracle, refresh batch, member cache cap).
func NewChitChat(cfg chitchat.Config) Solver { return &chitchatSolver{cfg: cfg} }

func (s *chitchatSolver) Name() string { return ChitChat }

// SupportsRegions implements RegionCapable.
func (s *chitchatSolver) SupportsRegions() bool { return true }

// ChainProgress implements ProgressChainer: fn is appended to the
// solver's progress stream, after any previously attached sink.
func (s *chitchatSolver) ChainProgress(fn func(ProgressEvent)) {
	s.progress = chainSinks(s.progress, fn)
}

func (s *chitchatSolver) Solve(ctx context.Context, p Problem) (res *Result, err error) {
	defer guard(s.Name(), &res, &err)
	if err := checkProblem(p); err != nil {
		return nil, err
	}
	// Count greedy commits through the progress hook (chained with the
	// caller's sink) so the report's iteration count is exact.
	cfg := s.cfg
	commits := 0
	prev := cfg.OnProgress
	cfg.OnProgress = func(pr chitchat.Progress) {
		commits = pr.Commits
		if prev != nil {
			prev(pr)
		}
		if s.progress != nil {
			s.progress(ProgressEvent{
				Solver:    ChitChat,
				Iteration: pr.Commits,
				Covered:   pr.Covered,
				Remaining: pr.Remaining,
				Cost:      math.NaN(),
			})
		}
	}
	if p.Region == nil {
		sched, cause := chitchat.SolveCtx(ctx, p.Graph, p.Rates, cfg)
		return finish(ChitChat, sched, p, Report{Iterations: commits}, cause)
	}
	nodes := endpointNodes(p.Graph, p.Region)
	if induced := graph.InducedEdgeIDs(p.Graph, nodes); !sameEdgeSet(induced, p.Region) {
		return nil, fmt.Errorf("%w: %d region edges vs %d induced by their endpoints",
			ErrRegionNotInduced, len(p.Region), len(induced))
	}
	sub := graph.Induced(p.Graph, nodes)
	patch, cause := chitchat.SolveInducedCtx(ctx, sub, p.Rates, cfg)
	out := p.Base.Clone()
	repairs, aerr := core.ApplyPatch(out, sub, patch, p.Rates)
	if aerr != nil {
		return nil, fmt.Errorf("solver %s: splicing region patch: %w", ChitChat, aerr)
	}
	return finish(ChitChat, out, p, Report{Iterations: commits, BoundaryRepairs: repairs}, cause)
}

// nosySolver adapts PARALLELNOSY — shared-memory or MapReduce — to the
// Solver contract. Region re-solves run the restricted entry point
// (shared-memory substrate only).
type nosySolver struct {
	cfg      nosy.Config
	mr       bool
	progress func(ProgressEvent)
}

// NewNosy returns the shared-memory PARALLELNOSY solver under a full
// typed config.
func NewNosy(cfg nosy.Config) Solver { return &nosySolver{cfg: cfg} }

// NewNosyMapReduce returns the MapReduce PARALLELNOSY solver under a
// full typed config. It produces schedules identical to NewNosy but
// does not support region re-solves.
func NewNosyMapReduce(cfg nosy.Config) Solver { return &nosySolver{cfg: cfg, mr: true} }

func (s *nosySolver) Name() string {
	if s.mr {
		return NosyMapReduce
	}
	return Nosy
}

// SupportsRegions implements RegionCapable: only the shared-memory
// substrate has the restricted entry point.
func (s *nosySolver) SupportsRegions() bool { return !s.mr }

// ChainProgress implements ProgressChainer: fn is appended to the
// solver's progress stream, after any previously attached sink.
func (s *nosySolver) ChainProgress(fn func(ProgressEvent)) {
	s.progress = chainSinks(s.progress, fn)
}

// chainSinks composes two progress sinks, tolerating nils.
func chainSinks(prev, next func(ProgressEvent)) func(ProgressEvent) {
	if prev == nil {
		return next
	}
	if next == nil {
		return prev
	}
	return func(ev ProgressEvent) {
		prev(ev)
		next(ev)
	}
}

func (s *nosySolver) Solve(ctx context.Context, p Problem) (res *Result, err error) {
	defer guard(s.Name(), &res, &err)
	if err := checkProblem(p); err != nil {
		return nil, err
	}
	cfg := s.cfg
	if s.progress != nil {
		prev := cfg.OnIteration
		cfg.OnIteration = func(it nosy.IterationStat) {
			if prev != nil {
				prev(it)
			}
			cost := it.Cost
			if !cfg.TraceCosts {
				cost = math.NaN()
			}
			s.progress(ProgressEvent{
				Solver:         s.Name(),
				Iteration:      it.Iteration,
				Dirty:          it.Dirty,
				Candidates:     it.Candidates,
				FullCommits:    it.FullCommits,
				PartialCommits: it.PartialCommits,
				CoveredEdges:   it.CoveredEdges,
				Cost:           cost,
			})
		}
	}
	var (
		nr    nosy.Result
		cause error
	)
	switch {
	case p.Region != nil && s.mr:
		return nil, fmt.Errorf("solver %s: %w", s.Name(), ErrRegionUnsupported)
	case p.Region != nil:
		nr, cause = nosy.SolveRestrictedCtx(ctx, p.Graph, p.Rates, cfg, p.Base, p.Region)
	case s.mr:
		nr, cause = nosymr.SolveCtx(ctx, p.Graph, p.Rates, cfg)
	default:
		nr, cause = nosy.SolveCtx(ctx, p.Graph, p.Rates, cfg)
	}
	rep := Report{Iterations: len(nr.Iterations), BoundaryRepairs: nr.BoundaryRepairs}
	for _, it := range nr.Iterations {
		rep.FullCommits += it.FullCommits
		rep.PartialCommits += it.PartialCommits
		rep.CoveredEdges += it.CoveredEdges
	}
	return finish(s.Name(), nr.Schedule, p, rep, cause)
}

// baselineSolver adapts the one-shot baselines. They are instantaneous,
// so the context is only consulted once: a pre-canceled context still
// yields the (valid) baseline schedule alongside its error, per the
// anytime contract.
type baselineSolver struct{ name string }

// NewBaseline returns the named baseline solver: Hybrid (FEEDINGFRENZY,
// each edge served the cheaper way), PushAll, or PullAll.
func NewBaseline(name string) (Solver, error) {
	switch name {
	case Hybrid, PushAll, PullAll:
		return baselineSolver{name}, nil
	}
	return nil, fmt.Errorf("%w %q (baselines: %s, %s, %s)", ErrUnknownSolver, name, Hybrid, PushAll, PullAll)
}

func (s baselineSolver) Name() string { return s.name }

// SupportsRegions implements RegionCapable.
func (s baselineSolver) SupportsRegions() bool { return false }

func (s baselineSolver) Solve(ctx context.Context, p Problem) (res *Result, err error) {
	defer guard(s.Name(), &res, &err)
	if err := checkProblem(p); err != nil {
		return nil, err
	}
	if p.Region != nil {
		return nil, fmt.Errorf("solver %s: %w", s.name, ErrRegionUnsupported)
	}
	var sched *core.Schedule
	switch s.name {
	case PushAll:
		sched = baseline.PushAll(p.Graph)
	case PullAll:
		sched = baseline.PullAll(p.Graph)
	default:
		sched = baseline.Hybrid(p.Graph, p.Rates)
	}
	return finish(s.name, sched, p, Report{Iterations: 1}, ctx.Err())
}
