// Package mapreduce is a small in-memory MapReduce engine.
//
// The paper implements PARALLELNOSY as a sequence of Hadoop jobs on a
// 1500-core cluster (§3.2, "Implementing PARALLELNOSY with MapReduce").
// That substrate is reproduced here: a generic map / shuffle / reduce
// pipeline over goroutine worker pools, so package nosymr can express the
// same three jobs per iteration and be checked against the shared-memory
// implementation.
//
// Semantics follow the classic model (Dean & Ghemawat): the mapper is
// applied to every input record and emits key/value pairs; pairs are
// shuffled so that all values of one key meet in a single reducer call;
// reducers emit output records. Within a job, mapper and reducer
// invocations run concurrently, so they must not share mutable state
// beyond what they receive.
package mapreduce

import (
	"runtime"
	"sync"
)

// Options configures a job.
type Options struct {
	// Workers is the degree of parallelism for both the map and reduce
	// waves; 0 means GOMAXPROCS.
	Workers int
	// Partitions is the number of shuffle partitions; 0 means Workers.
	Partitions int
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) partitions() int {
	if o.Partitions > 0 {
		return o.Partitions
	}
	return o.workers()
}

// Mapper consumes one input record and emits key/value pairs.
type Mapper[I any, K comparable, V any] func(in I, emit func(K, V))

// Reducer consumes one key with all its values and emits output records.
// The values slice order is unspecified.
type Reducer[K comparable, V, O any] func(key K, values []V, emit func(O))

// Partitioner routes a key to a shuffle partition. It must be
// deterministic.
type Partitioner[K comparable] func(K) uint64

// Run executes one MapReduce job and returns the concatenated reducer
// outputs. Output order across keys is unspecified; callers needing
// determinism must sort or aggregate into keyed structures.
func Run[I any, K comparable, V, O any](
	inputs []I,
	mapper Mapper[I, K, V],
	part Partitioner[K],
	reducer Reducer[K, V, O],
	opts Options,
) []O {
	workers := opts.workers()
	nparts := opts.partitions()

	// Map wave: each worker keeps one bucket per partition to avoid
	// synchronizing on emit.
	type kv struct {
		k K
		v V
	}
	buckets := make([][][]kv, workers) // [worker][partition][]kv
	var wg sync.WaitGroup
	chunk := (len(inputs) + workers - 1) / workers
	for wk := 0; wk < workers; wk++ {
		lo := wk * chunk
		hi := lo + chunk
		if hi > len(inputs) {
			hi = len(inputs)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(wk, lo, hi int) {
			defer wg.Done()
			local := make([][]kv, nparts)
			emit := func(k K, v V) {
				p := int(part(k) % uint64(nparts))
				local[p] = append(local[p], kv{k, v})
			}
			for i := lo; i < hi; i++ {
				mapper(inputs[i], emit)
			}
			buckets[wk] = local
		}(wk, lo, hi)
	}
	wg.Wait()

	// Shuffle + reduce wave: one goroutine per partition groups its
	// buckets by key and runs the reducer.
	outParts := make([][]O, nparts)
	sem := make(chan struct{}, workers)
	var wg2 sync.WaitGroup
	for p := 0; p < nparts; p++ {
		wg2.Add(1)
		sem <- struct{}{}
		go func(p int) {
			defer func() { <-sem; wg2.Done() }()
			groups := make(map[K][]V)
			for wk := range buckets {
				if buckets[wk] == nil {
					continue
				}
				for _, pair := range buckets[wk][p] {
					groups[pair.k] = append(groups[pair.k], pair.v)
				}
			}
			var out []O
			emit := func(o O) { out = append(out, o) }
			for k, vs := range groups {
				reducer(k, vs, emit)
			}
			outParts[p] = out
		}(p)
	}
	wg2.Wait()

	var out []O
	for _, part := range outParts {
		out = append(out, part...)
	}
	return out
}

// Int32Key is a ready-made partitioner for int32 keys (edge and node ids).
func Int32Key(k int32) uint64 { return splitmix64(uint64(uint32(k))) }

// Int64Key is a ready-made partitioner for int64 keys.
func Int64Key(k int64) uint64 { return splitmix64(uint64(k)) }

// splitmix64 is the finalizer of the SplitMix64 generator — a cheap,
// well-distributed integer hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
