// Exterior-amortized region pricing — the PR-4 carried follow-up
// (ROADMAP item 4). The refine sweep only converts a direct edge to hub
// coverage when BOTH supports are already paid for; it never spends.
// This sweep may PURCHASE missing supports, because one support
// amortizes two ways: across the candidates that share it (one push
// u → w covers every u → v behind hub w) and against exterior flags the
// incumbent already pays for (a support that is already push or pull
// costs nothing again). After a rate spike the incumbent's direct
// choices are priced at stale rates — exactly when a pooled refund
// beats the sticker price of the supports.

package online

import (
	"sort"

	"piggyback/internal/core"
	"piggyback/internal/graph"
	"piggyback/internal/workload"
)

// amortizeResult summarizes one sweep.
type amortizeResult struct {
	Upgraded int     // direct edges converted to purchased hub coverage
	Saved    float64 // net cost removed (refunds minus purchases)
}

// hubGroup collects the candidate edges that could be covered through
// one hub.
type hubGroup struct {
	hub   graph.NodeID
	cands []amortCand
}

type amortCand struct {
	e      graph.EdgeID // the direct edge u → v
	u, v   graph.NodeID
	up     graph.EdgeID // support u → hub
	down   graph.EdgeID // support hub → v
	push   bool         // direct side currently paid (true: push, false: pull)
	refund float64      // the direct price clearing the edge returns
}

// amortize runs the purchase sweep over s in place, considering only
// the region's edges as upgrade candidates (nil region means every
// edge). The schedule must be valid; it stays valid, and its cost is
// strictly reduced or untouched — every hub bundle is bought only when
// its pooled refund exceeds the price of its missing supports.
//
// Determinism: hubs are processed in ascending node id, candidates in
// ascending edge id, and the drop-to-fixpoint loop always removes the
// lowest-id unprofitable candidate first.
func amortize(s *core.Schedule, r *workload.Rates, region []graph.EdgeID) amortizeResult {
	g := s.Graph()

	// pinned[e] counts coverage obligations on e's flags, exactly as in
	// refine.Pass: a direct flag may only be cleared, and a support
	// priced as already-paid, with this bookkeeping in hand.
	pinned := make([]int32, g.NumEdges())
	pin := func(u, w, v graph.NodeID) {
		if up, ok := g.EdgeID(u, w); ok {
			pinned[up]++
		}
		if down, ok := g.EdgeID(w, v); ok {
			pinned[down]++
		}
	}
	g.Edges(func(e graph.EdgeID, u, v graph.NodeID) bool {
		if s.IsCovered(e) {
			pin(u, s.Hub(e), v)
		}
		return true
	})

	// Collect candidates per hub. A candidate is a region edge paying
	// exactly one direct side that nothing depends on; each hub in
	// out(u) ∩ in(v) that could serve it gets one entry.
	groups := map[graph.NodeID]*hubGroup{}
	consider := func(e graph.EdgeID, u, v graph.NodeID) {
		if s.IsCovered(e) || pinned[e] > 0 {
			return
		}
		push := s.IsPush(e)
		if push == s.IsPull(e) {
			return
		}
		refund := r.Cons[v]
		if push {
			refund = r.Prod[u]
		}
		outU := g.OutNeighbors(u)
		loU, _ := g.OutEdgeRange(u)
		inV := g.InNeighbors(v)
		idsV := g.InEdgeIDs(v)
		i, j := 0, 0
		for i < len(outU) && j < len(inV) {
			switch {
			case outU[i] < inV[j]:
				i++
			case outU[i] > inV[j]:
				j++
			default:
				if w := outU[i]; w != u && w != v {
					gr := groups[w]
					if gr == nil {
						gr = &hubGroup{hub: w}
						groups[w] = gr
					}
					gr.cands = append(gr.cands, amortCand{
						e: e, u: u, v: v,
						up: loU + graph.EdgeID(i), down: idsV[j],
						push: push, refund: refund,
					})
				}
				i++
				j++
			}
		}
	}
	if region == nil {
		g.Edges(func(e graph.EdgeID, u, v graph.NodeID) bool {
			consider(e, u, v)
			return true
		})
	} else {
		for _, e := range region {
			consider(e, g.EdgeSource(e), g.EdgeTarget(e))
		}
	}

	hubs := make([]graph.NodeID, 0, len(groups))
	for w := range groups {
		hubs = append(hubs, w)
	}
	sort.Slice(hubs, func(i, j int) bool { return hubs[i] < hubs[j] })

	var res amortizeResult
	taken := map[graph.EdgeID]bool{}
	for _, w := range hubs {
		cands := groups[w].cands[:0]
		for _, c := range groups[w].cands {
			if !taken[c.e] {
				cands = append(cands, c)
			}
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].e < cands[j].e })

		// price returns what support e still costs to turn on for this
		// bundle: 0 when the needed flag is already set (exterior-paid).
		price := func(e graph.EdgeID, isPush bool) float64 {
			if isPush {
				if s.IsPush(e) {
					return 0
				}
				return r.Prod[g.EdgeSource(e)]
			}
			if s.IsPull(e) {
				return 0
			}
			return r.Cons[g.EdgeTarget(e)]
		}

		// Drop-to-fixpoint: a candidate whose refund cannot even pay for
		// the missing supports ONLY it needs is dead weight — removing it
		// strictly improves the bundle, and removal can orphan another
		// candidate's shared support, so iterate.
		for {
			dropped := false
			needers := map[graph.EdgeID]int{}
			for _, c := range cands {
				if price(c.up, true) > 0 {
					needers[c.up]++
				}
				if price(c.down, false) > 0 {
					needers[c.down]++
				}
			}
			for i, c := range cands {
				excl := 0.0
				if p := price(c.up, true); p > 0 && needers[c.up] == 1 {
					excl += p
				}
				if p := price(c.down, false); p > 0 && needers[c.down] == 1 {
					excl += p
				}
				if c.refund <= excl {
					cands = append(cands[:i], cands[i+1:]...)
					dropped = true
					break
				}
			}
			if !dropped {
				break
			}
		}
		if len(cands) == 0 {
			continue
		}

		refundSum, priceSum := 0.0, 0.0
		need := map[graph.EdgeID]bool{} // support id → needs push (true) or pull
		for _, c := range cands {
			refundSum += c.refund
			if p := price(c.up, true); p > 0 && !hasKey(need, c.up) {
				need[c.up] = true
				priceSum += p
			}
			if p := price(c.down, false); p > 0 && !hasKey(need, c.down) {
				need[c.down] = false
				priceSum += p
			}
		}
		if refundSum <= priceSum {
			continue
		}

		// Buy the bundle: supports first, then re-serve each candidate
		// through the hub — the schedule is valid at every step.
		for e, isPush := range need {
			if isPush {
				s.SetPush(e)
			} else {
				s.SetPull(e)
			}
		}
		for _, c := range cands {
			if c.push {
				s.ClearPush(c.e)
			} else {
				s.ClearPull(c.e)
			}
			s.SetCovered(c.e, w)
			pinned[c.up]++
			pinned[c.down]++
			taken[c.e] = true
			res.Upgraded++
		}
		res.Saved += refundSum - priceSum
	}
	return res
}

func hasKey(m map[graph.EdgeID]bool, k graph.EdgeID) bool {
	_, ok := m[k]
	return ok
}
