// Command experiments regenerates the paper's tables and figures
// (see DESIGN.md §4 for the experiment index and EXPERIMENTS.md for a
// recorded run).
//
// Usage:
//
//	experiments -exp all -scale default
//	experiments -exp fig4,fig7 -scale quick
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"piggyback/internal/experiments"
	"piggyback/internal/solver"
	"piggyback/internal/stats"
)

func main() {
	var (
		expFlag = flag.String("exp", "all", "comma-separated: datasets,algos,zoo,fig4,fig5,fig6,fig7,fig8,fig9a,fig9b or all")
		scale   = flag.String("scale", "default", "scale preset: quick | default")
		seed    = flag.Int64("seed", 0, "override scale seed (0 keeps preset)")
		workers = flag.Int("workers", 0, "solver parallelism for CHITCHAT/PARALLELNOSY (0 = all cores)")
		plot    = flag.Bool("plot", false, "render ASCII bar charts instead of tables")
		mw      = flag.String("middleware", "", "solver middleware for registry-driven experiments: metrics")
	)
	flag.Parse()

	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.Quick
	case "default":
		sc = experiments.Default
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown scale %q\n", *scale)
		os.Exit(1)
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	sc.Workers = *workers

	// -middleware metrics: wrap every registry-constructed solver with a
	// shared metrics sink and print the per-solver table after the runs.
	var sink *stats.SolverMetrics
	switch *mw {
	case "":
	case "metrics":
		sink = &stats.SolverMetrics{}
		sc.Middleware = []solver.Middleware{solver.WithMetrics(sink)}
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown middleware %q (want: metrics)\n", *mw)
		os.Exit(1)
	}

	runs := map[string]func(experiments.Scale) *experiments.Table{
		"datasets": experiments.Datasets,
		"algos":    experiments.Algorithms,
		"zoo":      experiments.Zoo,
		"fig4":     experiments.Fig4,
		"fig5":     experiments.Fig5,
		"fig6":     experiments.Fig6,
		"fig7":     experiments.Fig7,
		"fig8":     experiments.Fig8,
		"fig9a": func(s experiments.Scale) *experiments.Table {
			return experiments.Fig9(s, experiments.RandomWalkSampling)
		},
		"fig9b": func(s experiments.Scale) *experiments.Table {
			return experiments.Fig9(s, experiments.BFSSampling)
		},
	}
	order := []string{"datasets", "algos", "zoo", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9a", "fig9b"}

	want := strings.Split(*expFlag, ",")
	if *expFlag == "all" {
		want = order
	}
	for _, name := range want {
		name = strings.TrimSpace(name)
		run, ok := runs[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", name)
			os.Exit(1)
		}
		start := time.Now()
		table := run(sc)
		if *plot {
			fmt.Println(table.Plot())
		} else {
			fmt.Println(table.String())
		}
		fmt.Printf("(%s completed in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	if sink != nil {
		fmt.Println("## Per-solver metrics (registry-driven experiments)")
		fmt.Print(sink.Table())
	}
}
