package graph

import (
	"errors"
	"math/rand"
	"testing"
)

// A StreamBuilder fed the same edge set as a Builder must freeze the
// identical CSR: same edge ids, same adjacency, same in-index.
func TestStreamBuilderMatchesBuilder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 80
	seen := map[Edge]bool{}
	var edges []Edge
	for len(edges) < 600 {
		e := Edge{NodeID(rng.Intn(n)), NodeID(rng.Intn(n))}
		if e.From == e.To || seen[e] {
			continue
		}
		seen[e] = true
		edges = append(edges, e)
	}

	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.From, e.To)
	}
	want := b.Build()

	sb := NewStreamBuilder(n)
	for _, e := range edges {
		sb.CountEdge(e.From, e.To)
	}
	sb.BeginFill()
	for _, e := range edges {
		sb.PlaceEdge(e.From, e.To)
	}
	got := sb.Build()

	if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("size mismatch: %d/%d nodes, %d/%d edges",
			got.NumNodes(), want.NumNodes(), got.NumEdges(), want.NumEdges())
	}
	for e := 0; e < want.NumEdges(); e++ {
		if got.EdgeAt(EdgeID(e)) != want.EdgeAt(EdgeID(e)) {
			t.Fatalf("edge %d: got %v want %v", e, got.EdgeAt(EdgeID(e)), want.EdgeAt(EdgeID(e)))
		}
	}
	for u := 0; u < n; u++ {
		uid := NodeID(u)
		gin, win := got.InEdgeIDs(uid), want.InEdgeIDs(uid)
		if len(gin) != len(win) {
			t.Fatalf("node %d in-degree: got %d want %d", u, len(gin), len(win))
		}
		for i := range gin {
			if gin[i] != win[i] {
				t.Fatalf("node %d in-edge %d: got %d want %d", u, i, gin[i], win[i])
			}
		}
	}
}

func TestStreamBuilderSkipsSelfLoops(t *testing.T) {
	sb := NewStreamBuilder(3)
	sb.CountEdge(0, 0)
	sb.CountEdge(0, 1)
	sb.BeginFill()
	sb.PlaceEdge(0, 0)
	sb.PlaceEdge(0, 1)
	if g := sb.Build(); g.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1", g.NumEdges())
	}
}

func TestStreamBuilderEmpty(t *testing.T) {
	if g := NewStreamBuilder(5).Build(); g.NumEdges() != 0 || g.NumNodes() != 5 {
		t.Fatalf("got %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
}

func TestStreamBuilderPanicsOnMismatch(t *testing.T) {
	check := func(name string, fn func()) {
		defer func() {
			p := recover()
			if p == nil {
				t.Fatalf("%s: no panic", name)
			}
			if err, ok := p.(error); !ok || !errors.Is(err, ErrStreamMismatch) {
				t.Fatalf("%s: panic %v, want ErrStreamMismatch", name, p)
			}
		}()
		fn()
	}
	check("duplicate edge", func() {
		sb := NewStreamBuilder(3)
		sb.CountEdge(0, 1)
		sb.CountEdge(0, 1)
		sb.BeginFill()
		sb.PlaceEdge(0, 1)
		sb.PlaceEdge(0, 1)
		sb.Build()
	})
	check("fill exceeds count", func() {
		sb := NewStreamBuilder(3)
		sb.CountEdge(0, 1)
		sb.BeginFill()
		sb.PlaceEdge(0, 1)
		sb.PlaceEdge(0, 2)
	})
	check("fill under count", func() {
		sb := NewStreamBuilder(3)
		sb.CountEdge(0, 1)
		sb.CountEdge(0, 2)
		sb.BeginFill()
		sb.PlaceEdge(0, 1)
		sb.Build()
	})
}
