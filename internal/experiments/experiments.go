// Package experiments regenerates every table and figure of the paper's
// evaluation (§4) on the synthetic Twitter-like and Flickr-like graphs.
// Each experiment returns a Table whose rows correspond to the points of
// the paper's plot; cmd/experiments prints them and EXPERIMENTS.md records
// paper-vs-measured shapes.
package experiments

import (
	"fmt"
	"strings"

	"piggyback/internal/graph"
	"piggyback/internal/graphgen"
	"piggyback/internal/solver"
	"piggyback/internal/workload"
)

// Table is a formatted experiment result.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	width := make([]int, len(t.Header))
	for i, h := range t.Header {
		width[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(width) && len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range width {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// Scale sizes an experiment run. The paper uses the full crawls and a
// 1500-core cluster; these run on one machine.
type Scale struct {
	FlickrNodes       int // Flickr-like generator size
	TwitterNodes      int // Twitter-like generator size
	SampleEdges       int // sample size for the Fig. 9 CHITCHAT comparison
	SampleCount       int // samples averaged per point (paper: 5)
	PrototypeRequests int // requests per Fig. 6 measurement point
	PrototypeClients  int // client goroutines for Fig. 6
	Workers           int // solver parallelism (CHITCHAT and PARALLELNOSY); 0 = all cores
	ZooOps            int // churn trace length per zoo scenario; 0 means 1200
	Seed              int64

	// Registry is the solver registry the registry-driven experiments
	// enumerate; nil means solver.Default.
	Registry *solver.Registry
	// Middleware wraps every registry-constructed solver (first entry
	// outermost) — the hook cmd/experiments uses to attach the metrics
	// sink.
	Middleware []solver.Middleware
}

// registry returns the solver registry to enumerate.
func (sc Scale) registry() *solver.Registry {
	if sc.Registry != nil {
		return sc.Registry
	}
	return solver.Default
}

// Quick is sized for tests and smoke runs (seconds).
var Quick = Scale{
	FlickrNodes:       400,
	TwitterNodes:      600,
	SampleEdges:       2500,
	SampleCount:       2,
	PrototypeRequests: 4000,
	PrototypeClients:  4,
	ZooOps:            600,
	Seed:              1,
}

// Default is sized for the recorded EXPERIMENTS.md run (minutes).
var Default = Scale{
	FlickrNodes:       3000,
	TwitterNodes:      5000,
	SampleEdges:       20000,
	SampleCount:       3,
	PrototypeRequests: 30000,
	PrototypeClients:  8,
	ZooOps:            2000,
	Seed:              1,
}

// flickr builds the Flickr-like graph with its reference workload.
func (sc Scale) flickr() (*graph.Graph, *workload.Rates) {
	g := graphgen.Social(graphgen.FlickrLike(sc.FlickrNodes, sc.Seed))
	return g, workload.LogDegree(g, workload.DefaultReadWriteRatio)
}

// twitter builds the Twitter-like graph with its reference workload.
func (sc Scale) twitter() (*graph.Graph, *workload.Rates) {
	g := graphgen.Social(graphgen.TwitterLike(sc.TwitterNodes, sc.Seed))
	return g, workload.LogDegree(g, workload.DefaultReadWriteRatio)
}

func f3(x float64) string { return fmt.Sprintf("%.3f", x) }
func f1(x float64) string { return fmt.Sprintf("%.1f", x) }
func d(x int) string      { return fmt.Sprintf("%d", x) }
func e2(x float64) string { return fmt.Sprintf("%.2e", x) }
