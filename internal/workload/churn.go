// Churn-trace generation: the synthetic stream of graph and workload
// updates the online rescheduling subsystem ingests. The paper's §3.3
// argues schedules must survive a dynamic social graph; real churn
// traces were no more available to us than real rate traces were to the
// authors, so the generator follows the same playbook as the rest of
// the workload package — preserve the properties the results depend on
// (follows dominate unfollows, new follows prefer popular producers,
// activity shifts are heavy-tailed) and keep everything deterministic
// given the seed.

package workload

import (
	"math/rand"

	"piggyback/internal/graph"
)

// OpKind discriminates churn operations.
type OpKind uint8

const (
	// OpAdd inserts the edge U → V (V follows U).
	OpAdd OpKind = iota
	// OpRemove deletes the edge U → V.
	OpRemove
	// OpRates replaces user U's production/consumption rates with
	// Prod/Cons.
	OpRates
)

// ChurnOp is one update in a churn stream.
type ChurnOp struct {
	Kind OpKind
	U, V graph.NodeID
	// Prod, Cons are the new rates for OpRates ops.
	Prod, Cons float64
}

// ChurnConfig tunes GenerateChurn. The zero value uses the defaults.
type ChurnConfig struct {
	// AddFraction is the fraction of ops that add edges; 0 means 0.55
	// (graphs grow: follows outnumber unfollows, per the LDBC-style
	// dynamic-workload analyses).
	AddFraction float64
	// RemoveFraction is the fraction of ops that remove edges; 0 means
	// 0.35. The remainder are rate updates.
	RemoveFraction float64
	// RateScale bounds the multiplicative swing of a rate update; 0
	// means 2 (a user's activity at most doubles or halves per update).
	RateScale float64
	Seed      int64
}

// GenerateChurn synthesizes n churn ops against the live edge set that
// starts as g. Adds pick the producer by follower-count preferential
// attachment over the EVOLVING graph and the consumer uniformly;
// removes pick a live edge uniformly; rate updates pick a user
// uniformly and scale both rates by an independent factor in
// [1/RateScale, RateScale]. Every op is valid at its position in the
// stream (no duplicate adds, no removes of absent edges), and the
// result is deterministic given cfg.Seed.
func GenerateChurn(g *graph.Graph, r *Rates, n int, cfg ChurnConfig) []ChurnOp {
	if cfg.AddFraction == 0 {
		cfg.AddFraction = 0.55
	}
	if cfg.RemoveFraction == 0 {
		cfg.RemoveFraction = 0.35
	}
	if cfg.RateScale == 0 {
		cfg.RateScale = 2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	nn := g.NumNodes()

	// Live edge set: slice for uniform removal sampling, map for
	// membership. Tickets drive preferential attachment of adds; a
	// ticket is issued per follow and never withdrawn, so sampling
	// corrects for removals by accepting a drawn producer with
	// probability liveDeg/issued — the effective weight tracks the
	// EVOLVING follower count, not cumulative adds.
	live := g.EdgeList()
	index := make(map[graph.Edge]int, len(live))
	for i, e := range live {
		index[e] = i
	}
	tickets := make([]graph.NodeID, 0, len(live)+n)
	issued := make([]int, nn)
	liveDeg := make([]int, nn)
	for _, e := range live {
		tickets = append(tickets, e.From)
		issued[e.From]++
		liveDeg[e.From]++
	}
	drawProducer := func() graph.NodeID {
		for try := 0; try < 4 && len(tickets) > 0; try++ {
			u := tickets[rng.Intn(len(tickets))]
			if rng.Float64()*float64(issued[u]) < float64(liveDeg[u]) {
				return u
			}
		}
		return graph.NodeID(rng.Intn(nn))
	}
	prod := append([]float64(nil), r.Prod...)
	cons := append([]float64(nil), r.Cons...)

	removeAt := func(i int) {
		e := live[i]
		last := len(live) - 1
		live[i] = live[last]
		index[live[i]] = i
		live = live[:last]
		delete(index, e)
		liveDeg[e.From]--
	}

	ops := make([]ChurnOp, 0, n)
	for len(ops) < n {
		x := rng.Float64()
		switch {
		case x < cfg.AddFraction:
			// Producer by preferential attachment, consumer uniform.
			var u graph.NodeID
			if rng.Float64() < 0.8 {
				u = drawProducer()
			} else {
				u = graph.NodeID(rng.Intn(nn))
			}
			v := graph.NodeID(rng.Intn(nn))
			e := graph.Edge{From: u, To: v}
			if u == v {
				continue
			}
			if _, ok := index[e]; ok {
				continue
			}
			index[e] = len(live)
			live = append(live, e)
			tickets = append(tickets, u)
			issued[u]++
			liveDeg[u]++
			ops = append(ops, ChurnOp{Kind: OpAdd, U: u, V: v})
		case x < cfg.AddFraction+cfg.RemoveFraction:
			if len(live) == 0 {
				continue
			}
			i := rng.Intn(len(live))
			e := live[i]
			removeAt(i)
			ops = append(ops, ChurnOp{Kind: OpRemove, U: e.From, V: e.To})
		default:
			u := graph.NodeID(rng.Intn(nn))
			scale := func() float64 {
				s := 1 + rng.Float64()*(cfg.RateScale-1)
				if rng.Intn(2) == 0 {
					return 1 / s
				}
				return s
			}
			prod[u] *= scale()
			cons[u] *= scale()
			ops = append(ops, ChurnOp{Kind: OpRates, U: u, Prod: prod[u], Cons: cons[u]})
		}
	}
	return ops
}
