package core

import (
	"fmt"

	"piggyback/internal/graph"
	"piggyback/internal/workload"
)

// ActiveSchedule models active stores (Definition 5): in addition to push
// and pull sets, each scheduled edge w → u carries a propagation set
// P_u(w) ⊆ V of common subscribers of u and w; when u's view first stores
// an event produced by w, the store pushes it onward to every view in the
// set. Theorem 3 shows any such schedule can be simulated by a passive one
// at no greater cost; Passivize implements that simulation.
type ActiveSchedule struct {
	*Schedule
	// prop[e] for edge e = (w → u) lists the onward targets v; each v must
	// subscribe to w (w → v ∈ E), keeping views free of junk events.
	prop map[graph.EdgeID][]graph.NodeID
}

// NewActiveSchedule wraps an empty schedule for g.
func NewActiveSchedule(g *graph.Graph) *ActiveSchedule {
	return &ActiveSchedule{
		Schedule: NewSchedule(g),
		prop:     make(map[graph.EdgeID][]graph.NodeID),
	}
}

// AddPropagation appends v to the propagation set of edge e = (w → u).
// It returns an error if v is not a common subscriber of w and u
// (Definition 5 requires propagation targets subscribe to the producer).
func (a *ActiveSchedule) AddPropagation(e graph.EdgeID, v graph.NodeID) error {
	w := a.g.EdgeSource(e)
	u := a.g.EdgeTarget(e)
	if !a.g.HasEdge(w, v) {
		return fmt.Errorf("core: propagation target %d does not subscribe to producer %d", v, w)
	}
	if !a.g.HasEdge(u, v) {
		return fmt.Errorf("core: propagation target %d does not subscribe to relay %d", v, u)
	}
	a.prop[e] = append(a.prop[e], v)
	return nil
}

// Propagation returns the propagation set of edge e (nil if empty).
func (a *ActiveSchedule) Propagation(e graph.EdgeID) []graph.NodeID { return a.prop[e] }

// Cost of an active schedule: pushes and pulls as usual, plus each
// propagation entry on edge (w → u) costs rp(w) — the store issues one
// update per new event of w, exactly like a client-side push.
func (a *ActiveSchedule) Cost(r *workload.Rates) float64 {
	total := a.Schedule.Cost(r)
	for e, targets := range a.prop {
		w := a.g.EdgeSource(e)
		total += float64(len(targets)) * r.Prod[w]
	}
	return total
}

// reachable computes the views that receive w's events under the active
// schedule: direct pushes seed the set, then propagation sets extend it
// transitively (chains of pushes u → w1 → … → wk).
func (a *ActiveSchedule) reachable(w graph.NodeID) map[graph.NodeID]bool {
	reached := make(map[graph.NodeID]bool)
	var frontier []graph.NodeID
	lo, hi := a.g.OutEdgeRange(w)
	for e := lo; e < hi; e++ {
		if a.IsPush(e) {
			v := a.g.EdgeTarget(e)
			if !reached[v] {
				reached[v] = true
				frontier = append(frontier, v)
			}
		}
	}
	for len(frontier) > 0 {
		u := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		// Events of w sitting in u's view propagate along P_u(w), which is
		// attached to the edge w → u... but chains also relay events the
		// relay node itself received transitively. Definition 5 keys the
		// set by (producer w, holder u): propagation happens when u's view
		// stores an event produced by w for the first time, regardless of
		// how it arrived.
		if e, ok := a.g.EdgeID(w, u); ok {
			for _, v := range a.prop[e] {
				if !reached[v] {
					reached[v] = true
					frontier = append(frontier, v)
				}
			}
		}
	}
	return reached
}

// Passivize converts the active schedule into a passive schedule of no
// greater cost (Theorem 3): every view reachable from producer w through
// push+propagation chains becomes a direct push w → v; pulls carry over
// unchanged, as does hub coverage.
func (a *ActiveSchedule) Passivize() *Schedule {
	out := a.Schedule.Clone()
	for w := 0; w < a.g.NumNodes(); w++ {
		src := graph.NodeID(w)
		for v := range a.reachable(src) {
			if e, ok := a.g.EdgeID(src, v); ok {
				out.SetPush(e)
			}
		}
	}
	// Propagation is gone; nothing else changes.
	return out
}

// ValidateActive checks feasibility for active schedules: every edge is
// push, pull, hub-covered, or its target is reachable from its source via
// push+propagation chains.
func (a *ActiveSchedule) ValidateActive() error {
	var err error
	a.g.Edges(func(e graph.EdgeID, u, v graph.NodeID) bool {
		if a.IsPush(e) || a.IsPull(e) {
			return true
		}
		if a.IsCovered(e) {
			if hubErr := a.validateHub(e, u, v); hubErr != nil {
				err = hubErr
				return false
			}
			return true
		}
		if !a.reachable(u)[v] {
			err = fmt.Errorf("core: active schedule does not serve edge %d→%d", u, v)
			return false
		}
		return true
	})
	return err
}

func (a *ActiveSchedule) validateHub(e graph.EdgeID, u, v graph.NodeID) error {
	w := a.Hub(e)
	up, ok1 := a.g.EdgeID(u, w)
	down, ok2 := a.g.EdgeID(w, v)
	if w < 0 || !ok1 || !ok2 || !a.IsPush(up) || !a.IsPull(down) {
		return fmt.Errorf("core: invalid hub %d for edge %d→%d", w, u, v)
	}
	return nil
}
