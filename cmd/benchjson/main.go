// Command benchjson converts `go test -bench` output on stdin into a
// small JSON document, so CI can track the solver perf trajectory as
// per-PR artifacts (BENCH_chitchat.json, BENCH_nosy.json). Only
// standard-library parsing — no benchstat dependency.
//
//	go test -run '^$' -bench 'BenchmarkChitChatWorkers' -benchtime 1x . \
//	    | go run ./cmd/benchjson -o BENCH_chitchat.json
//	go test -run '^$' -bench . -benchtime 1x . \
//	    | go run ./cmd/benchjson -filter '^BenchmarkNosy' -o BENCH_nosy.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
)

// benchLine matches e.g. "BenchmarkChitChatWorkers1-4   2   194170926 ns/op".
// The -N GOMAXPROCS suffix is folded into the bare benchmark name.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op`)

type entry struct {
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	SecPerOp   float64 `json:"sec_per_op"`
}

type report struct {
	CPU        string           `json:"cpu,omitempty"`
	Benchmarks map[string]entry `json:"benchmarks"`
}

func main() {
	filter := flag.String("filter", "", "keep only benchmarks whose name matches this regexp (default: all)")
	out := flag.String("o", "", "output path (default: stdout)")
	flag.Parse()

	var keep *regexp.Regexp
	if *filter != "" {
		var err error
		if keep, err = regexp.Compile(*filter); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: bad -filter:", err)
			os.Exit(2)
		}
	}

	rep := report{Benchmarks: map[string]entry{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if len(line) > 5 && line[:4] == "cpu:" {
			rep.CPU = line[5:]
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil || (keep != nil && !keep.MatchString(m[1])) {
			continue
		}
		iters, err1 := strconv.ParseInt(m[2], 10, 64)
		ns, err2 := strconv.ParseFloat(m[3], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		rep.Benchmarks[m[1]] = entry{Iterations: iters, NsPerOp: ns, SecPerOp: ns / 1e9}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no matching benchmark lines on stdin")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: write:", err)
		os.Exit(1)
	}
}
