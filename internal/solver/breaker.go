package solver

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// BreakerConfig tunes a circuit breaker. The zero value uses the
// defaults.
type BreakerConfig struct {
	// Threshold is how many CONSECUTIVE hard failures of the primary
	// trip the breaker; 0 means 3.
	Threshold int
	// ProbeEvery is the half-open cadence: while tripped, every
	// ProbeEvery-th solve first probes the primary, closing the breaker
	// on success; 0 means 4.
	ProbeEvery int
}

func (cfg BreakerConfig) withDefaults() BreakerConfig {
	if cfg.Threshold <= 0 {
		cfg.Threshold = 3
	}
	if cfg.ProbeEvery <= 0 {
		cfg.ProbeEvery = 4
	}
	return cfg
}

// BreakerStats counts what a Breaker has seen and done.
type BreakerStats struct {
	// PrimarySolves / FallbackSolves count which solver served each
	// request (a failed primary attempt followed by the fallback counts
	// once for each).
	PrimarySolves, FallbackSolves int
	// Failures counts hard primary failures (nil result with a non-
	// cancellation error); Trips counts closed→open transitions.
	Failures, Trips int
	// Probes counts half-open probe attempts; Closes counts open→closed
	// recoveries.
	Probes, Closes int
	// Open reports the current state.
	Open bool
}

// Breaker is a circuit breaker over two solvers: it serves from
// primary until Threshold consecutive hard failures, then quarantines
// the primary and serves from fallback, probing the primary every
// ProbeEvery-th solve (half-open) and closing again on the first
// probe success.
//
// A hard failure is a nil Result with an error that is not the
// caller's own cancellation: panics surfaced by WithRecover, typed
// solver errors, and deadline-expired solves that violated the anytime
// contract all count; a context.Canceled from the caller does not.
// Successful results — including valid best-so-far anytime results
// accompanied by a cancellation error — reset the failure streak.
//
// Safe for concurrent use, though solves themselves serialize per the
// underlying solver's own rules.
type Breaker struct {
	primary, fallback Solver
	cfg               BreakerConfig

	mu         sync.Mutex
	consec     int
	sinceProbe int
	stats      BreakerStats
}

// NewBreaker wraps primary with a quarantine-to-fallback circuit
// breaker. Wrap the primary in WithRecover first if it may panic.
func NewBreaker(primary, fallback Solver, cfg BreakerConfig) *Breaker {
	return &Breaker{primary: primary, fallback: fallback, cfg: cfg.withDefaults()}
}

// Name identifies the breaker and both members.
func (b *Breaker) Name() string {
	return fmt.Sprintf("breaker(%s->%s)", b.primary.Name(), b.fallback.Name())
}

// SupportsRegions requires BOTH members to be region-capable: either
// one may serve any given solve.
func (b *Breaker) SupportsRegions() bool {
	return SupportsRegions(b.primary) && SupportsRegions(b.fallback)
}

// Stats returns a copy of the breaker counters.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// hardFailure reports whether a solve outcome counts against the
// primary.
func hardFailure(ctx context.Context, res *Result, err error) bool {
	if res != nil || err == nil {
		return false
	}
	return !errors.Is(err, context.Canceled) || ctx.Err() == nil
}

// Solve implements Solver with the breaker discipline.
func (b *Breaker) Solve(ctx context.Context, p Problem) (*Result, error) {
	b.mu.Lock()
	open := b.stats.Open
	probe := false
	if open {
		b.sinceProbe++
		if b.sinceProbe >= b.cfg.ProbeEvery {
			b.sinceProbe = 0
			probe = true
			b.stats.Probes++
		}
	}
	b.mu.Unlock()

	if !open || probe {
		b.mu.Lock()
		b.stats.PrimarySolves++
		b.mu.Unlock()
		res, err := b.primary.Solve(ctx, p)
		if !hardFailure(ctx, res, err) {
			b.mu.Lock()
			b.consec = 0
			if b.stats.Open {
				b.stats.Open = false
				b.stats.Closes++
			}
			b.mu.Unlock()
			return res, err
		}
		b.mu.Lock()
		b.stats.Failures++
		b.consec++
		if !b.stats.Open && b.consec >= b.cfg.Threshold {
			b.stats.Open = true
			b.stats.Trips++
			b.sinceProbe = 0
		}
		nowOpen := b.stats.Open
		b.mu.Unlock()
		if !nowOpen {
			// Below threshold: surface the failure to the caller (the
			// daemon books it as a SolverError) rather than silently
			// absorbing every primary hiccup into fallback work.
			return res, err
		}
		// Tripped (or probing while tripped): fall through to fallback.
	}

	b.mu.Lock()
	b.stats.FallbackSolves++
	b.mu.Unlock()
	return b.fallback.Solve(ctx, p)
}
