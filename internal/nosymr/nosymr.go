// Package nosymr runs PARALLELNOSY as MapReduce jobs, mirroring the
// paper's Hadoop implementation (§3.2, "Implementing PARALLELNOSY with
// MapReduce") on the in-memory engine of package mapreduce.
//
// Each iteration is two jobs plus a merge, exactly as the paper lays out:
//
//   - Job 1 (map = phase 1, reduce = phase 2): each mapper takes a
//     hub-graph — identified by its hub edge w → y — prices it, and, if
//     it is a candidate, emits one lock request per edge of the
//     hub-graph, keyed by the locked edge's id, carrying the candidate's
//     hub-edge id and gain. Each reducer receives all lock requests for
//     one edge and grants the lock to the highest-gain candidate,
//     emitting (hub edge, locked edge).
//   - Job 2 (reduce-only = phase 3): grants are grouped by hub edge; the
//     reducer re-derives the candidate from the snapshot, applies the
//     full/partial commit rule, and emits schedule updates.
//   - Merge: updates are applied to the schedule; lock ownership makes
//     them conflict-free, so application order is irrelevant.
//
// The pricing, locking, and decision logic is the Evaluator from package
// nosy, so this solver and the shared-memory one are the same algorithm
// on different substrates; tests assert they produce identical schedules.
// The Evaluator's memoized hub-graph structural cache carries over too:
// the mappers of every iteration after the first — and Job 2's
// re-derivation in the same iteration — re-price cached intersections
// instead of recomputing them.
package nosymr

import (
	"context"

	"piggyback/internal/core"
	"piggyback/internal/graph"
	"piggyback/internal/mapreduce"
	"piggyback/internal/nosy"
	"piggyback/internal/workload"
)

// Solve runs PARALLELNOSY via MapReduce jobs and returns the finalized
// schedule plus per-iteration stats. cfg is interpreted exactly as in
// package nosy.
func Solve(g *graph.Graph, r *workload.Rates, cfg nosy.Config) nosy.Result {
	res, _ := SolveCtx(context.Background(), g, r, cfg)
	return res
}

// SolveCtx is Solve with cooperative cancellation, checked between
// MapReduce iterations exactly as nosy.SolveCtx checks between rounds:
// on cancellation the committed iterations are finalized with the hybrid
// rule and returned as a valid anytime schedule with the context's error.
func SolveCtx(ctx context.Context, g *graph.Graph, r *workload.Rates, cfg nosy.Config) (nosy.Result, error) {
	ev := nosy.NewEvaluator(g, r, cfg)
	opts := mapreduce.Options{Workers: cfg.Workers}

	// Hub-graph inputs: one per edge, as in the paper's preliminary job.
	hubEdges := make([]graph.EdgeID, g.NumEdges())
	for e := range hubEdges {
		hubEdges[e] = graph.EdgeID(e)
	}

	var iters []nosy.IterationStat
	var cause error
	for it := 0; cfg.MaxIterations == 0 || it < cfg.MaxIterations; it++ {
		if err := ctx.Err(); err != nil {
			cause = err
			break
		}
		stat := iterate(ev, hubEdges, opts)
		stat.Iteration = it
		stat.Dirty = len(hubEdges) // every hub edge is re-mapped each job
		if cfg.TraceCosts {
			snap := ev.Schedule().Clone()
			snap.Finalize(r)
			stat.Cost = snap.Cost(r)
		}
		iters = append(iters, stat)
		if cfg.OnIteration != nil {
			cfg.OnIteration(stat)
		}
		if stat.FullCommits+stat.PartialCommits == 0 {
			break
		}
	}
	ev.Schedule().Finalize(r)
	return nosy.Result{Schedule: ev.Schedule(), Iterations: iters}, cause
}

// lockRequest is Job 1's map output value: candidate identity and gain.
type lockRequest struct {
	hubEdge graph.EdgeID
	gain    float64
}

// grant is Job 1's reduce output: lockedEdge is granted to hubEdge.
// A grant with lockedEdge == candidateMarker is not a lock at all but a
// "this hub edge bid" marker used to count phase-1 candidates.
type grant struct {
	hubEdge    graph.EdgeID
	lockedEdge graph.EdgeID
}

// candidateMarker flags counting grants (no real edge has a negative id).
const candidateMarker graph.EdgeID = -1

// update is Job 2's output: one schedule mutation.
type update struct {
	op   updateOp
	edge graph.EdgeID
	hub  graph.NodeID // for opCover
}

type updateOp uint8

const (
	opPush updateOp = iota
	opPull
	opCover
)

// commitMark tags Job 2 outputs so the merge can count full vs partial
// commits; emitted once per committed candidate.
type output struct {
	upd     update
	mark    bool // true: this is a commit marker, upd unused except edge
	partial bool
	covered int
}

func iterate(ev *nosy.Evaluator, hubEdges []graph.EdgeID, opts mapreduce.Options) nosy.IterationStat {
	var stat nosy.IterationStat

	// Job 1 — map: phase-1 candidate selection emitting lock requests;
	// reduce: phase-2 lock granting.
	grants := mapreduce.Run(
		hubEdges,
		func(he graph.EdgeID, emit func(graph.EdgeID, lockRequest)) {
			c, ok := ev.EvalCandidate(he)
			if !ok {
				return
			}
			req := lockRequest{hubEdge: he, gain: c.Gain}
			emit(he, req)
			for j := range c.Xs {
				emit(c.XWEdges[j], req)
				emit(c.XYEdges[j], req)
			}
		},
		mapreduce.Int32Key,
		func(locked graph.EdgeID, reqs []lockRequest, emit func(grant)) {
			best := reqs[0]
			isCandidate := best.hubEdge == locked
			for _, r := range reqs[1:] {
				if r.hubEdge == locked {
					isCandidate = true
				}
				if r.gain > best.gain || (r.gain == best.gain && r.hubEdge < best.hubEdge) {
					best = r
				}
			}
			emit(grant{hubEdge: best.hubEdge, lockedEdge: locked})
			if isCandidate {
				// Every candidate bids on its own hub edge, so this reducer
				// is the one place that sees each candidate exactly once.
				emit(grant{hubEdge: locked, lockedEdge: candidateMarker})
			}
		},
		opts,
	)
	realGrants := grants[:0]
	for _, gr := range grants {
		if gr.lockedEdge == candidateMarker {
			stat.Candidates++
		} else {
			realGrants = append(realGrants, gr)
		}
	}

	// Job 2 — group grants by hub edge (map), decide and emit updates
	// (reduce). The reducer re-derives the candidate from the same
	// snapshot, which is deterministic.
	outs := mapreduce.Run(
		realGrants,
		func(gr grant, emit func(graph.EdgeID, graph.EdgeID)) {
			emit(gr.hubEdge, gr.lockedEdge)
		},
		mapreduce.Int32Key,
		func(he graph.EdgeID, locked []graph.EdgeID, emit func(output)) {
			c, ok := ev.EvalCandidate(he)
			if !ok {
				// This hub edge won locks for another candidate's edges but
				// is itself not a candidate (it only appears as key if it
				// bid, so this cannot happen; guard anyway).
				return
			}
			grantedSet := make(map[graph.EdgeID]bool, len(locked))
			for _, e := range locked {
				grantedSet[e] = true
			}
			keep, partial, ok := ev.Decide(&c, func(e graph.EdgeID) bool { return grantedSet[e] })
			if !ok {
				return
			}
			emit(output{mark: true, partial: partial, covered: len(keep)})
			emit(output{upd: update{op: opPull, edge: c.HubEdge}})
			for _, j := range keep {
				emit(output{upd: update{op: opPush, edge: c.XWEdges[j]}})
				emit(output{upd: update{op: opCover, edge: c.XYEdges[j], hub: c.W}})
			}
		},
		opts,
	)

	// Merge job: apply updates. Lock ownership makes them disjoint per
	// edge, so order does not matter.
	s := ev.Schedule()
	for _, o := range outs {
		if o.mark {
			if o.partial {
				stat.PartialCommits++
			} else {
				stat.FullCommits++
			}
			stat.CoveredEdges += o.covered
			continue
		}
		applyUpdate(s, o.upd)
	}
	return stat
}

func applyUpdate(s *core.Schedule, u update) {
	switch u.op {
	case opPush:
		s.SetPush(u.edge)
	case opPull:
		s.SetPull(u.edge)
	case opCover:
		s.SetCovered(u.edge, u.hub)
	}
}
