package fault

import (
	"context"
	"errors"
	"io"
	"net"
	"reflect"
	"testing"
	"time"

	"piggyback/internal/solver"
)

// pipePair returns a wrapped client end and the raw server end of an
// in-memory connection.
func pipePair(p *Plan) (net.Conn, net.Conn) {
	a, b := net.Pipe()
	return p.WrapConn(a), b
}

func TestScatterDeterministic(t *testing.T) {
	a := Scatter(42, KindDelay, 8, 4, 1000, 50*time.Millisecond)
	b := Scatter(42, KindDelay, 8, 4, 1000, 50*time.Millisecond)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different rules:\n%v\n%v", a, b)
	}
	c := Scatter(43, KindDelay, 8, 4, 1000, 50*time.Millisecond)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical rules")
	}
	for _, r := range a {
		if r.Conn < 0 || r.Conn >= 4 || r.Op < 0 || r.Op >= 1000 {
			t.Fatalf("rule out of range: %+v", r)
		}
		if r.Delay < 25*time.Millisecond || r.Delay > 50*time.Millisecond {
			t.Fatalf("delay out of range: %v", r.Delay)
		}
	}
}

func TestDropSwallowsScheduledWrite(t *testing.T) {
	p := &Plan{Rules: []Rule{{Kind: KindDrop, Conn: 0, Op: 1}}}
	cw, sr := pipePair(p)
	defer cw.Close()
	defer sr.Close()

	got := make(chan []byte, 4)
	go func() {
		buf := make([]byte, 1)
		for {
			if _, err := io.ReadFull(sr, buf); err != nil {
				close(got)
				return
			}
			got <- []byte{buf[0]}
		}
	}()
	for i := byte(0); i < 3; i++ {
		if _, err := cw.Write([]byte{i}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if b := <-got; b[0] != 0 {
		t.Fatalf("first byte = %d, want 0", b[0])
	}
	// Op 1 was dropped: the next byte the peer sees is op 2's.
	if b := <-got; b[0] != 2 {
		t.Fatalf("second received byte = %d, want 2 (op 1 dropped)", b[0])
	}
	want := []Fired{{Conn: 0, Op: 1, Kind: KindDrop}}
	if !reflect.DeepEqual(p.FiredOn(0), want) {
		t.Fatalf("fired = %v, want %v", p.FiredOn(0), want)
	}
}

func TestResetClosesConnection(t *testing.T) {
	p := &Plan{Rules: []Rule{{Kind: KindReset, Conn: 0, Op: 0}}}
	cw, sr := pipePair(p)
	defer sr.Close()
	if _, err := cw.Write([]byte{1}); !errors.Is(err, ErrInjected) {
		t.Fatalf("reset write error = %v, want ErrInjected", err)
	}
	// The underlying conn is closed: the peer sees EOF.
	sr.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := sr.Read(make([]byte, 1)); err == nil {
		t.Fatal("peer read succeeded after reset")
	}
}

func TestDelayFiresAndRecords(t *testing.T) {
	p := &Plan{Rules: []Rule{{Kind: KindDelay, Conn: -1, Op: 0, Delay: 30 * time.Millisecond}}}
	cw, sr := pipePair(p)
	defer cw.Close()
	defer sr.Close()
	go io.Copy(io.Discard, sr)
	start := time.Now()
	if _, err := cw.Write([]byte{1}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("write returned after %v, want ≥30ms delay", d)
	}
	if f := p.FiredOn(0); len(f) != 1 || f[0].Kind != KindDelay {
		t.Fatalf("fired = %v", f)
	}
}

func TestWrapListenerIndexesConnsInAcceptOrder(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &Plan{}
	fln := p.WrapListener(ln)
	defer fln.Close()
	idx := make(chan int, 2)
	go func() {
		for i := 0; i < 2; i++ {
			c, err := fln.Accept()
			if err != nil {
				return
			}
			idx <- Index(c)
			c.Close()
		}
	}()
	for i := 0; i < 2; i++ {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		if got := <-idx; got != i {
			t.Fatalf("accepted conn %d got plan index %d", i, got)
		}
		c.Close()
	}
}

// okSolver is a stub that always succeeds with a nil schedule-free
// result (enough for counting).
type okSolver struct{ solves int }

func (s *okSolver) Name() string { return "ok" }
func (s *okSolver) Solve(context.Context, solver.Problem) (*solver.Result, error) {
	s.solves++
	return &solver.Result{}, nil
}

func TestSolverPanicsOnScheduledSolves(t *testing.T) {
	inner := &okSolver{}
	s := solver.Chain(inner, solver.WithRecover(), SolverPanics(2, 4))
	for i := 1; i <= 5; i++ {
		res, err := s.Solve(context.Background(), solver.Problem{})
		sabotaged := i >= 2 && i < 4
		if sabotaged && (res != nil || err == nil) {
			t.Fatalf("solve %d: expected recovered panic, got res=%v err=%v", i, res, err)
		}
		if !sabotaged && (res == nil || err != nil) {
			t.Fatalf("solve %d: expected success, got res=%v err=%v", i, res, err)
		}
	}
	if inner.solves != 3 {
		t.Fatalf("inner ran %d times, want 3", inner.solves)
	}
}

func TestSolverStallsUntilContextDone(t *testing.T) {
	inner := &okSolver{}
	s := solver.Chain(inner, SolverStalls(1, 2))
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	res, err := s.Solve(ctx, solver.Problem{})
	if res != nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stalled solve: res=%v err=%v", res, err)
	}
	if res, err := s.Solve(context.Background(), solver.Problem{}); res == nil || err != nil {
		t.Fatalf("post-stall solve failed: %v", err)
	}
	if !solver.SupportsRegions(s) {
		t.Fatal("sabotage wrapper lost region capability")
	}
}
