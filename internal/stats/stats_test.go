package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestStreamBasic(t *testing.T) {
	var s Stream
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if !almost(s.Mean(), 5) {
		t.Fatalf("Mean = %v, want 5", s.Mean())
	}
	if !almost(s.Variance(), 4) {
		t.Fatalf("Variance = %v, want 4", s.Variance())
	}
	if !almost(s.StdDev(), 2) {
		t.Fatalf("StdDev = %v, want 2", s.StdDev())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestStreamEmpty(t *testing.T) {
	var s Stream
	if s.Mean() != 0 || s.Variance() != 0 || s.N() != 0 {
		t.Fatal("empty stream should report zeros")
	}
}

func TestStreamSingle(t *testing.T) {
	var s Stream
	s.Add(42)
	if s.Mean() != 42 || s.Variance() != 0 || s.Min() != 42 || s.Max() != 42 {
		t.Fatalf("single-sample stream: %s", s.String())
	}
}

func TestMeanVarianceSlice(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if !almost(Mean(xs), 2.5) {
		t.Fatalf("Mean = %v", Mean(xs))
	}
	if !almost(Variance(xs), 1.25) {
		t.Fatalf("Variance = %v", Variance(xs))
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("nil slice should yield 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 15}, {100, 50}, {50, 35}, {25, 20},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want) {
			t.Fatalf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("Percentile(nil) should be 0")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated input")
	}
}

func TestCoefficientOfVariation(t *testing.T) {
	if CoefficientOfVariation([]float64{5, 5, 5}) != 0 {
		t.Fatal("constant slice should have CV 0")
	}
	if CoefficientOfVariation(nil) != 0 {
		t.Fatal("empty slice should have CV 0")
	}
}

// Property: streaming mean/variance agree with the batch formulas.
func TestQuickStreamMatchesBatch(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(300)
		xs := make([]float64, n)
		var s Stream
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
			s.Add(xs[i])
		}
		return math.Abs(s.Mean()-Mean(xs)) < 1e-6 &&
			math.Abs(s.Variance()-Variance(xs)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
