// Package nosy implements the PARALLELNOSY heuristic (§3.2): a parallel,
// iterative schedule optimizer that scales to large social graphs.
//
// Each iteration runs three phases over a frozen snapshot of the schedule:
//
//  1. Candidate selection — for every edge w → y not yet covered, build
//     the single-consumer hub-graph G(X, w, y) with X the common
//     predecessors of w and y whose cross-edges x → y are still
//     unscheduled, and keep it if its saved cost exceeds its positive
//     cost against the hybrid baseline.
//  2. Edge locking — every edge grants itself to the candidate hub-graph
//     with the highest gain (ties broken by lowest hub-edge id, making
//     the outcome independent of goroutine interleaving).
//  3. Scheduling decision — a candidate holding all its locks commits in
//     full; one holding a subset re-evaluates the sub-hub-graph X' of
//     fully locked producers and commits it if still profitable. We also
//     require the pull edge w → y itself to be locked for any commit: the
//     commit writes that edge, so writing it without the lock would race
//     with the winning candidate (the paper's line 17 leaves this
//     implicit).
//
// Decisions are computed against the snapshot and applied afterwards, so
// every schedule write in an iteration touches an edge locked by exactly
// one candidate — the MapReduce structure of the paper, on goroutines.
// Package nosymr runs the identical logic (via Evaluator) as literal
// MapReduce jobs on the in-memory engine.
package nosy

import (
	"runtime"
	"sync"

	"piggyback/internal/baseline"
	"piggyback/internal/bitset"
	"piggyback/internal/core"
	"piggyback/internal/graph"
	"piggyback/internal/workload"
)

// Config tunes PARALLELNOSY. The zero value uses the defaults.
type Config struct {
	// Workers is the parallelism degree; 0 means GOMAXPROCS.
	Workers int
	// MaxIterations bounds the outer loop; 0 means run to convergence
	// (no candidate commits).
	MaxIterations int
	// MaxCrossEdges bounds |X| per candidate hub-graph, the bound b of
	// §4.2 (100 000 for the Twitter runs). 0 means DefaultMaxCrossEdges.
	MaxCrossEdges int
	// DisablePartialCommits turns off the X'-subset re-evaluation of
	// phase 3 (ablation: convergence needs more iterations).
	DisablePartialCommits bool
	// TraceCosts records the finalized schedule cost after every
	// iteration (needed by the Figure 4 harness; costs one O(m) pass and
	// a clone per iteration).
	TraceCosts bool
}

// DefaultMaxCrossEdges matches §4.2.
const DefaultMaxCrossEdges = 100000

// IterationStat describes one PARALLELNOSY iteration.
type IterationStat struct {
	Candidates     int     // hub-graphs passing the phase-1 gain test
	FullCommits    int     // candidates committed with all locks
	PartialCommits int     // candidates committed as sub-hub-graphs
	CoveredEdges   int     // cross-edges newly covered this iteration
	Cost           float64 // finalized schedule cost after the iteration (if TraceCosts)
}

// Result is the solver output.
type Result struct {
	Schedule   *core.Schedule
	Iterations []IterationStat
}

// Solve runs PARALLELNOSY to convergence and returns the finalized
// schedule (every edge pushed, pulled, or hub-covered).
func Solve(g *graph.Graph, r *workload.Rates, cfg Config) Result {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	ev := NewEvaluator(g, r, cfg)
	st := &state{
		ev:         ev,
		cfg:        cfg,
		locks:      make([]lockWord, g.NumEdges()),
		lockShards: make([]sync.Mutex, lockShardCount),
		dirty:      bitset.New(g.NumEdges()),
		cache:      make([]*Candidate, g.NumEdges()),
	}
	for e := 0; e < g.NumEdges(); e++ {
		st.dirty.Set(e)
	}
	var iters []IterationStat
	for it := 0; cfg.MaxIterations == 0 || it < cfg.MaxIterations; it++ {
		stat := st.iterate()
		if cfg.TraceCosts {
			snap := ev.Schedule().Clone()
			snap.Finalize(r)
			stat.Cost = snap.Cost(r)
		}
		iters = append(iters, stat)
		if stat.FullCommits+stat.PartialCommits == 0 {
			break
		}
	}
	ev.Schedule().Finalize(r)
	return Result{Schedule: ev.Schedule(), Iterations: iters}
}

// Evaluator holds the candidate-pricing logic shared by the shared-memory
// solver (this package) and the MapReduce solver (package nosymr). All
// methods read the current schedule snapshot; only Apply writes it.
type Evaluator struct {
	g     *graph.Graph
	r     *workload.Rates
	cfg   Config
	sched *core.Schedule
	cstar []float64      // hybrid per-edge cost c*(e)
	src   []graph.NodeID // source node per edge (avoids CSR binary search)
}

// NewEvaluator returns an evaluator over an empty schedule for g.
func NewEvaluator(g *graph.Graph, r *workload.Rates, cfg Config) *Evaluator {
	if cfg.MaxCrossEdges == 0 {
		cfg.MaxCrossEdges = DefaultMaxCrossEdges
	}
	ev := &Evaluator{
		g:     g,
		r:     r,
		cfg:   cfg,
		sched: core.NewSchedule(g),
		cstar: make([]float64, g.NumEdges()),
		src:   make([]graph.NodeID, g.NumEdges()),
	}
	g.Edges(func(e graph.EdgeID, u, v graph.NodeID) bool {
		ev.cstar[e] = baseline.EdgeCost(r, u, v)
		ev.src[e] = u
		return true
	})
	return ev
}

// Schedule returns the mutable schedule under optimization.
func (ev *Evaluator) Schedule() *core.Schedule { return ev.sched }

// Graph returns the underlying graph.
func (ev *Evaluator) Graph() *graph.Graph { return ev.g }

// Candidate is a profitable hub-graph G(X, w, y) from phase 1. HubEdge
// (the edge w → y) doubles as the candidate's identity.
type Candidate struct {
	HubEdge graph.EdgeID
	W, Y    graph.NodeID
	Gain    float64
	Xs      []graph.NodeID // producers; parallel arrays below
	XWEdges []graph.EdgeID // x → w
	XYEdges []graph.EdgeID // x → y
}

// EvalCandidate builds the hub-graph for hub edge he = (w → y) and prices
// it against the snapshot, per the phase-1 rules of Algorithm 2. It
// returns false if the hub-graph offers no positive gain.
func (ev *Evaluator) EvalCandidate(he graph.EdgeID) (Candidate, bool) {
	s := ev.sched
	if s.IsCovered(he) {
		return Candidate{}, false
	}
	w := ev.src[he]
	y := ev.g.EdgeTarget(he)
	xs, xwIDs, xyIDs := ev.g.CommonInEdges(w, y, ev.cfg.MaxCrossEdges, nil, nil, nil)
	if len(xs) == 0 {
		return Candidate{}, false
	}
	c := Candidate{HubEdge: he, W: w, Y: y}
	var saved, cost float64
	kept := 0
	for i, x := range xs {
		xw, xy := xwIDs[i], xyIDs[i]
		if s.IsCovered(xw) {
			continue // don't undo an earlier hub that covers x → w
		}
		if s.IsScheduled(xy) {
			continue // cross-edge already served; covering it is useless
		}
		saved += ev.cstar[xy]
		cost += ev.pushCost(xw, x)
		xs[kept], xwIDs[kept], xyIDs[kept] = x, xw, xy
		kept++
	}
	if kept == 0 {
		return Candidate{}, false
	}
	c.Xs, c.XWEdges, c.XYEdges = xs[:kept], xwIDs[:kept], xyIDs[:kept]
	cost += ev.pullCost(he, y)
	c.Gain = saved - cost
	if c.Gain <= 0 {
		return Candidate{}, false
	}
	return c, true
}

// pushCost is c_X(x → w): the extra cost of making the edge a push.
func (ev *Evaluator) pushCost(xw graph.EdgeID, x graph.NodeID) float64 {
	s := ev.sched
	switch {
	case s.IsPush(xw):
		return 0 // already paid
	case s.IsPull(xw):
		return ev.r.Prod[x] // push added on top of the existing pull
	default:
		return ev.r.Prod[x] - ev.cstar[xw] // replaces the eventual hybrid cost
	}
}

// pullCost is the specular c(w → y) for the pull edge.
func (ev *Evaluator) pullCost(wy graph.EdgeID, y graph.NodeID) float64 {
	s := ev.sched
	switch {
	case s.IsPull(wy):
		return 0
	case s.IsPush(wy):
		return ev.r.Cons[y]
	default:
		return ev.r.Cons[y] - ev.cstar[wy]
	}
}

// Decide implements phase 3 for one candidate given its lock grants:
// returns the committed subset of producers (indices into c.Xs), whether
// the commit is partial, and whether to commit at all. The pull edge
// w → y must be granted for any commit.
func (ev *Evaluator) Decide(c *Candidate, granted func(graph.EdgeID) bool) (keep []int32, partial, ok bool) {
	if !granted(c.HubEdge) {
		return nil, false, false
	}
	full := true
	for j := range c.Xs {
		if granted(c.XWEdges[j]) && granted(c.XYEdges[j]) {
			keep = append(keep, int32(j))
		} else {
			full = false
		}
	}
	if full {
		return keep, false, true
	}
	if ev.cfg.DisablePartialCommits || len(keep) == 0 {
		return nil, false, false
	}
	// Re-evaluate the sub-hub-graph G(X', w, y) against the same snapshot.
	var saved, cost float64
	for _, j := range keep {
		saved += ev.cstar[c.XYEdges[j]]
		cost += ev.pushCost(c.XWEdges[j], c.Xs[j])
	}
	cost += ev.pullCost(c.HubEdge, c.Y)
	if saved-cost <= 0 {
		return nil, false, false
	}
	return keep, true, true
}

// Apply commits the decided subset: pull on w → y, pushes x → w, and hub
// coverage of the cross-edges.
func (ev *Evaluator) Apply(c *Candidate, keep []int32) {
	ev.sched.SetPull(c.HubEdge)
	for _, j := range keep {
		ev.sched.SetPush(c.XWEdges[j])
		ev.sched.SetCovered(c.XYEdges[j], c.W)
	}
}

// state carries the shared-memory solver's lock table plus the
// incremental candidate cache. A hub edge's candidacy depends only on the
// schedule state of edges pointing into its endpoints, so after an
// iteration only hub edges in the neighborhoods of changed edges are
// re-evaluated — the same observation behind the paper's pull-based
// update dissemination between MapReduce iterations.
type state struct {
	ev         *Evaluator
	cfg        Config
	locks      []lockWord
	lockShards []sync.Mutex
	dirty      *bitset.Set  // hub edges whose evaluation may have changed
	cache      []*Candidate // current candidate per hub edge, nil if none
}

// lockWord is an edge's lock cell: the best (gain, owner) request seen.
// owner is the candidate's hub-edge id; -1 means unclaimed.
type lockWord struct {
	gain  float64
	owner graph.EdgeID
}

const lockShardCount = 1024 // power of two

// iterate runs one full candidate/lock/decide round.
func (st *state) iterate() IterationStat {
	cands := st.phaseCandidates()
	st.phaseLocks(cands)
	return st.phaseDecide(cands)
}

// phaseCandidates re-evaluates dirty hub edges in parallel, refreshes the
// cache, and returns the full current candidate list.
func (st *state) phaseCandidates() []*Candidate {
	m := st.ev.g.NumEdges()
	var wg sync.WaitGroup
	chunk := (m + st.cfg.Workers - 1) / st.cfg.Workers
	for wk := 0; wk < st.cfg.Workers; wk++ {
		lo := wk * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for e := lo; e < hi; e++ {
				if !st.dirty.Test(e) {
					continue
				}
				if c, ok := st.ev.EvalCandidate(graph.EdgeID(e)); ok {
					cc := c
					st.cache[e] = &cc
				} else {
					st.cache[e] = nil
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	st.dirty.Reset()
	var all []*Candidate
	for e := 0; e < m; e++ {
		if st.cache[e] != nil {
			all = append(all, st.cache[e])
		}
	}
	return all
}

// markDirty flags every hub edge whose evaluation can be affected by a
// schedule change on the edge into node v: hub edges leaving v (v is the
// hub) and hub edges entering v (the changed edge may be a cross-edge or
// the pull edge of those candidates).
func (st *state) markDirty(v graph.NodeID) {
	lo, hi := st.ev.g.OutEdgeRange(v)
	for e := lo; e < hi; e++ {
		st.dirty.Set(int(e))
	}
	for _, e := range st.ev.g.InEdgeIDs(v) {
		st.dirty.Set(int(e))
	}
}

// phaseLocks lets every candidate bid for its edges; each edge keeps the
// highest-gain bidder (ties: lowest hub-edge id). Sharded mutexes keep the
// update cheap; the max-merge is commutative and associative, so the
// result is deterministic regardless of interleaving.
func (st *state) phaseLocks(cands []*Candidate) {
	for i := range st.locks {
		st.locks[i] = lockWord{gain: 0, owner: -1}
	}
	var wg sync.WaitGroup
	chunk := (len(cands) + st.cfg.Workers - 1) / st.cfg.Workers
	for wk := 0; wk < st.cfg.Workers; wk++ {
		lo := wk * chunk
		hi := lo + chunk
		if hi > len(cands) {
			hi = len(cands)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				c := cands[i]
				st.bid(c.HubEdge, c)
				for j := range c.Xs {
					st.bid(c.XWEdges[j], c)
					st.bid(c.XYEdges[j], c)
				}
			}
		}(lo, hi)
	}
	wg.Wait()
}

func (st *state) bid(e graph.EdgeID, c *Candidate) {
	sh := &st.lockShards[int(e)&(lockShardCount-1)]
	sh.Lock()
	cur := &st.locks[e]
	if cur.owner == -1 || c.Gain > cur.gain ||
		(c.Gain == cur.gain && c.HubEdge < cur.owner) {
		*cur = lockWord{gain: c.Gain, owner: c.HubEdge}
	}
	sh.Unlock()
}

// decision is a commit computed against the snapshot, applied afterwards.
type decision struct {
	c       *Candidate
	keep    []int32
	partial bool
}

// phaseDecide computes commit decisions in parallel from the snapshot,
// then applies them; lock ownership guarantees the applied writes are
// disjoint per edge.
func (st *state) phaseDecide(cands []*Candidate) IterationStat {
	perWorker := make([][]decision, st.cfg.Workers)
	var wg sync.WaitGroup
	chunk := (len(cands) + st.cfg.Workers - 1) / st.cfg.Workers
	for wk := 0; wk < st.cfg.Workers; wk++ {
		lo := wk * chunk
		hi := lo + chunk
		if hi > len(cands) {
			hi = len(cands)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(wk, lo, hi int) {
			defer wg.Done()
			var out []decision
			for i := lo; i < hi; i++ {
				c := cands[i]
				granted := func(e graph.EdgeID) bool { return st.locks[e].owner == c.HubEdge }
				if keep, partial, ok := st.ev.Decide(c, granted); ok {
					out = append(out, decision{c: c, keep: keep, partial: partial})
				}
			}
			perWorker[wk] = out
		}(wk, lo, hi)
	}
	wg.Wait()

	stat := IterationStat{Candidates: len(cands)}
	for _, part := range perWorker {
		for _, d := range part {
			st.ev.Apply(d.c, d.keep)
			// All edges written by Apply point into W or Y.
			st.markDirty(d.c.W)
			st.markDirty(d.c.Y)
			if d.partial {
				stat.PartialCommits++
			} else {
				stat.FullCommits++
			}
			stat.CoveredEdges += len(d.keep)
		}
	}
	return stat
}
