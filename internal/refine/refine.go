// Package refine post-processes a valid request schedule with a
// free-coverage sweep — an extension in the direction the paper's §4.4
// points ("the potential of social piggybacking goes beyond the
// performance of PARALLELNOSY ... interesting future work on new
// heuristics").
//
// After PARALLELNOSY converges, the schedule contains many pushes and
// pulls selected independently by different hub commits. Their
// combinations often cover additional edges for free: if a direct edge
// x → y coexists with a push x → w and a pull w → y that are both pinned
// by other obligations, then x → y can be re-served through hub w and its
// direct cost refunded. The sweep finds all such edges in
// O(Σ_e |common predecessors|) and never worsens the schedule.
package refine

import (
	"piggyback/internal/core"
	"piggyback/internal/graph"
	"piggyback/internal/workload"
)

// Result summarizes a refinement pass.
type Result struct {
	Recovered int     // direct edges converted to free hub coverage
	Saved     float64 // cost removed
}

// Pass runs one free-coverage sweep over s in place. The schedule must be
// valid (Theorem 1); it stays valid, and its cost never increases.
func Pass(s *core.Schedule, r *workload.Rates) Result {
	g := s.Graph()

	// pinned[e] counts obligations on e's flags: covered edges whose hub
	// support is e. An edge with pinned == 0 and no coverage role may have
	// its direct flags cleared.
	pinned := make([]int32, g.NumEdges())
	pin := func(u, w, v graph.NodeID) {
		if up, ok := g.EdgeID(u, w); ok {
			pinned[up]++
		}
		if down, ok := g.EdgeID(w, v); ok {
			pinned[down]++
		}
	}
	g.Edges(func(e graph.EdgeID, u, v graph.NodeID) bool {
		if s.IsCovered(e) {
			pin(u, s.Hub(e), v)
		}
		return true
	})

	var res Result
	g.Edges(func(e graph.EdgeID, u, v graph.NodeID) bool {
		// Candidates: edges paying a direct cost that nothing depends on.
		if s.IsCovered(e) || pinned[e] > 0 {
			return true
		}
		push := s.IsPush(e)
		pull := s.IsPull(e)
		if push == pull {
			// Neither (invalid input, leave alone) or both (the edge is
			// doing double duty; clearing one side is a different
			// optimization with dependency subtleties — skip).
			return true
		}
		// Look for a hub w with u → w already pushed and w → v already
		// pulled: walk out(u) ∩ in(v).
		outU := g.OutNeighbors(u)
		loU, _ := g.OutEdgeRange(u)
		inV := g.InNeighbors(v)
		idsV := g.InEdgeIDs(v)
		i, j := 0, 0
		for i < len(outU) && j < len(inV) {
			switch {
			case outU[i] < inV[j]:
				i++
			case outU[i] > inV[j]:
				j++
			default:
				w := outU[i]
				up := loU + graph.EdgeID(i)
				down := idsV[j]
				if w != u && w != v && s.IsPush(up) && s.IsPull(down) {
					// Refund the direct cost and pin the new supports.
					if push {
						res.Saved += r.Prod[u]
						s.ClearPush(e)
					} else {
						res.Saved += r.Cons[v]
						s.ClearPull(e)
					}
					s.SetCovered(e, w)
					pinned[up]++
					pinned[down]++
					res.Recovered++
					return true // next edge
				}
				i++
				j++
			}
		}
		return true
	})
	return res
}

// Run applies passes until a fixpoint (a pass that recovers nothing) and
// returns the combined result. A single pass already finds everything a
// fixed H/L can offer — coverage never adds pushes or pulls — so the loop
// exists purely as a guard against future pass variants that might.
func Run(s *core.Schedule, r *workload.Rates) Result {
	var total Result
	for {
		res := Pass(s, r)
		total.Recovered += res.Recovered
		total.Saved += res.Saved
		if res.Recovered == 0 {
			return total
		}
	}
}
