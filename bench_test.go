package piggyback

// Benchmarks regenerating the paper's evaluation, one per table/figure
// (see DESIGN.md §4 for the experiment index), plus micro-benchmarks of
// the algorithmic building blocks and ablations of the design choices
// DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// The figure benches use the Quick scale so the full suite completes in
// minutes; cmd/experiments -scale default regenerates the recorded
// EXPERIMENTS.md tables.

import (
	"context"
	"sort"
	"syscall"
	"testing"

	"piggyback/internal/baseline"
	"piggyback/internal/chitchat"
	"piggyback/internal/densest"
	"piggyback/internal/experiments"
	"piggyback/internal/graph"
	"piggyback/internal/graphgen"
	"piggyback/internal/nosy"
	"piggyback/internal/nosymr"
	"piggyback/internal/online"
	"piggyback/internal/partition"
	"piggyback/internal/refine"
	"piggyback/internal/sampling"
	"piggyback/internal/scenario"
	"piggyback/internal/store"
	"piggyback/internal/workload"
)

// ---- Evaluation tables and figures (§4) ----

func BenchmarkDatasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Datasets(experiments.Quick)
	}
}

func BenchmarkFig4PredictedImprovement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig4(experiments.Quick)
	}
}

func BenchmarkFig5IncrementalUpdates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig5(experiments.Quick)
	}
}

func BenchmarkFig6PrototypeThroughput(b *testing.B) {
	sc := experiments.Quick
	sc.PrototypeRequests = 2000
	for i := 0; i < b.N; i++ {
		experiments.Fig6(sc)
	}
}

func BenchmarkFig7PlacementAwareThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig7(experiments.Quick)
	}
}

func BenchmarkFig8LoadBalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig8(experiments.Quick)
	}
}

func BenchmarkFig9aRandomWalkSamples(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig9(experiments.Quick, experiments.RandomWalkSampling)
	}
}

func BenchmarkFig9bBFSSamples(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig9(experiments.Quick, experiments.BFSSampling)
	}
}

// ---- Algorithm micro-benchmarks ----

func benchGraph() (*Graph, *Rates) {
	g := FlickrLikeGraph(800, 7)
	return g, LogDegreeRates(g, 5)
}

func BenchmarkHybridSchedule(b *testing.B) {
	g, r := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baseline.Hybrid(g, r)
	}
}

func BenchmarkParallelNosy(b *testing.B) {
	g, r := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nosy.Solve(g, r, nosy.Config{})
	}
}

func BenchmarkParallelNosySingleWorker(b *testing.B) {
	g, r := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nosy.Solve(g, r, nosy.Config{Workers: 1})
	}
}

func BenchmarkParallelNosyMapReduce(b *testing.B) {
	g, r := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nosymr.Solve(g, r, nosy.Config{})
	}
}

func BenchmarkChitChat(b *testing.B) {
	g := FlickrLikeGraph(400, 7)
	r := LogDegreeRates(g, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chitchat.Solve(g, r, chitchat.Config{})
	}
}

// Worker-scaling of the parallel CHITCHAT oracle evaluation on the
// default bench graph (the BenchmarkChitChat graph). The schedule is
// byte-identical across worker counts (chitchat.TestWorkerCountInvariance
// proves it); only wall clock moves. Speedup requires actual cores:
// ~95% of solve cycles are oracle evaluations inside parallel batches,
// but on a single-CPU machine all four variants time alike.
func benchChitChatWorkers(b *testing.B, workers int) {
	g := FlickrLikeGraph(400, 7)
	r := LogDegreeRates(g, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chitchat.Solve(g, r, chitchat.Config{Workers: workers})
	}
}

func BenchmarkChitChatWorkers1(b *testing.B) { benchChitChatWorkers(b, 1) }
func BenchmarkChitChatWorkers2(b *testing.B) { benchChitChatWorkers(b, 2) }
func BenchmarkChitChatWorkers4(b *testing.B) { benchChitChatWorkers(b, 4) }
func BenchmarkChitChatWorkers8(b *testing.B) { benchChitChatWorkers(b, 8) }

func BenchmarkDensestSubgraphPeel(b *testing.B) {
	g := TwitterLikeGraph(2000, 3)
	// Build one large hub instance: the highest-degree node.
	var hub NodeID
	best := -1
	for u := 0; u < g.NumNodes(); u++ {
		if d := g.InDegree(NodeID(u)) + g.OutDegree(NodeID(u)); d > best {
			best, hub = d, NodeID(u)
		}
	}
	r := LogDegreeRates(g, 5)
	xs := g.InNeighbors(hub)
	ys := g.OutNeighbors(hub)
	inst := densest.Instance{N: len(xs) + len(ys) + 1}
	inst.Weight = make([]float64, inst.N)
	hv := int32(len(xs) + len(ys))
	for i, x := range xs {
		inst.Weight[i] = r.Prod[x]
		inst.Edges = append(inst.Edges, [2]int32{int32(i), hv})
	}
	for j, y := range ys {
		inst.Weight[len(xs)+j] = r.Cons[y]
		inst.Edges = append(inst.Edges, [2]int32{hv, int32(len(xs) + j)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		densest.Peel(inst, nil)
	}
}

// Decremental oracle vs fresh Peel on the same large hub instance, after
// a burst of element removals: the fresh path pays the full instance
// (re)build per solve, the decremental path only re-peels the live
// sub-instance over the materialized CSR.
func BenchmarkDensestDecrementalResolve(b *testing.B) {
	g := TwitterLikeGraph(2000, 3)
	var hub NodeID
	best := -1
	for u := 0; u < g.NumNodes(); u++ {
		if d := g.InDegree(NodeID(u)) + g.OutDegree(NodeID(u)); d > best {
			best, hub = d, NodeID(u)
		}
	}
	r := LogDegreeRates(g, 5)
	xs := g.InNeighbors(hub)
	ys := g.OutNeighbors(hub)
	inst := densest.Instance{N: len(xs) + len(ys) + 1}
	inst.Weight = make([]float64, inst.N)
	hv := int32(len(xs) + len(ys))
	for i, x := range xs {
		inst.Weight[i] = r.Prod[x]
		inst.Edges = append(inst.Edges, [2]int32{int32(i), hv})
	}
	for j, y := range ys {
		inst.Weight[len(xs)+j] = r.Cons[y]
		inst.Edges = append(inst.Edges, [2]int32{hv, int32(len(xs) + j)})
	}
	d := densest.NewDecremental(inst)
	for ei := 0; ei < d.NumEdges(); ei += 3 {
		d.RemoveEdge(ei)
	}
	var sc densest.Scratch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Solve(&sc)
	}
}

func BenchmarkGraphGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		TwitterLikeGraph(2000, int64(i))
	}
}

func BenchmarkRandomWalkSample(b *testing.B) {
	g := TwitterLikeGraph(3000, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sampling.RandomWalk(g, 5000, int64(i))
	}
}

func BenchmarkPlacementCost(b *testing.B) {
	g, r := benchGraph()
	s := baseline.Hybrid(g, r)
	a := partition.Hash(g.NumNodes(), 256, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		partition.Cost(s, r, a)
	}
}

func BenchmarkPrototypeRequests(b *testing.B) {
	g, r := benchGraph()
	pn, _ := ParallelNosy(g, r, NosyConfig{})
	c, err := store.NewCluster(pn, store.Options{Servers: 64})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	trace := store.GenerateTrace(r, 4096, 1)
	b.ResetTimer()
	cl := c.NewClient()
	for i := 0; i < b.N; i++ {
		req := trace[i%len(trace)]
		if req.IsUpdate {
			cl.Update(req.User, store.Event{User: req.User, ID: int64(i), TS: int64(i)})
		} else {
			cl.Query(req.User)
		}
	}
}

// ---- Ablations (design choices from DESIGN.md §6) ----

// Partial commits: phase 3's sub-hub-graph rescue vs all-or-nothing locks.
func BenchmarkAblationNoPartialCommits(b *testing.B) {
	g, r := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := nosy.Solve(g, r, nosy.Config{DisablePartialCommits: true})
		if i == 0 {
			b.ReportMetric(baseline.HybridCost(g, r)/res.Schedule.Cost(r), "improvement")
			b.ReportMetric(float64(len(res.Iterations)), "iterations")
		}
	}
}

func BenchmarkAblationWithPartialCommits(b *testing.B) {
	g, r := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := nosy.Solve(g, r, nosy.Config{})
		if i == 0 {
			b.ReportMetric(baseline.HybridCost(g, r)/res.Schedule.Cost(r), "improvement")
			b.ReportMetric(float64(len(res.Iterations)), "iterations")
		}
	}
}

// Cross-edge bound b (§4.2): tight vs default.
func BenchmarkAblationCrossEdgeBound16(b *testing.B) {
	g, r := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := nosy.Solve(g, r, nosy.Config{MaxCrossEdges: 16})
		if i == 0 {
			b.ReportMetric(baseline.HybridCost(g, r)/res.Schedule.Cost(r), "improvement")
		}
	}
}

// CHITCHAT oracle: exact brute force vs factor-2 peeling on a small graph.
func BenchmarkAblationChitChatExactOracle(b *testing.B) {
	g := SocialGraph(SocialGraphConfig{
		Nodes: 60, AvgFollows: 4, TriadProb: 0.6, Reciprocity: 0.4, Seed: 5,
	})
	r := LogDegreeRates(g, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := chitchat.Solve(g, r, chitchat.Config{ExactOracle: true})
		if i == 0 {
			b.ReportMetric(baseline.HybridCost(g, r)/s.Cost(r), "improvement")
		}
	}
}

func BenchmarkAblationChitChatPeelOracle(b *testing.B) {
	g := SocialGraph(SocialGraphConfig{
		Nodes: 60, AvgFollows: 4, TriadProb: 0.6, Reciprocity: 0.4, Seed: 5,
	})
	r := LogDegreeRates(g, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := chitchat.Solve(g, r, chitchat.Config{})
		if i == 0 {
			b.ReportMetric(baseline.HybridCost(g, r)/s.Cost(r), "improvement")
		}
	}
}

// Null-model ablation: piggybacking feeds on the co-subscription
// structure of social graphs. On a uniform random (ER) graph with the
// same density, hubs barely exist and the gain collapses to ≈1.05×,
// versus ≈2× on the social graph — DESIGN.md's substitution argument for
// trusting the synthetic Twitter/Flickr stand-ins. (Interestingly, pure
// preferential attachment without triadic closure still yields hubs:
// everyone co-subscribes to the same celebrities; only uniform wiring
// destroys the effect.)
func BenchmarkAblationSocialVsER(b *testing.B) {
	gSoc := FlickrLikeGraph(600, 9)
	gER := graphgen.ErdosRenyi(600, gSoc.NumEdges(), 9)
	rSoc := LogDegreeRates(gSoc, 5)
	rER := LogDegreeRates(gER, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		soc := nosy.Solve(gSoc, rSoc, nosy.Config{})
		er := nosy.Solve(gER, rER, nosy.Config{})
		if i == 0 {
			b.ReportMetric(baseline.HybridCost(gSoc, rSoc)/soc.Schedule.Cost(rSoc), "improvement-social")
			b.ReportMetric(baseline.HybridCost(gER, rER)/er.Schedule.Cost(rER), "improvement-er")
		}
	}
}

// Workload-model ablation: the paper ties activity to degree (log-degree
// model); Zipf activity independent of degree tests whether the gain
// survives when celebrities are not necessarily the busiest producers.
func BenchmarkAblationWorkloadModels(b *testing.B) {
	g := FlickrLikeGraph(600, 9)
	rLog := LogDegreeRates(g, 5)
	rZipf := ZipfRates(g.NumNodes(), 1.5, 5, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logRes := nosy.Solve(g, rLog, nosy.Config{})
		zipfRes := nosy.Solve(g, rZipf, nosy.Config{})
		if i == 0 {
			b.ReportMetric(baseline.HybridCost(g, rLog)/logRes.Schedule.Cost(rLog), "improvement-logdeg")
			b.ReportMetric(baseline.HybridCost(g, rZipf)/zipfRes.Schedule.Cost(rZipf), "improvement-zipf")
		}
	}
}

// Refinement sweep: free-coverage recovery on a truncated PARALLELNOSY
// run (converged runs leave nothing — tested in internal/refine).
func BenchmarkRefineSweep(b *testing.B) {
	g, r := benchGraph()
	base := nosy.Solve(g, r, nosy.Config{MaxIterations: 2}).Schedule
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := base.Clone()
		res := refine.Run(s, r)
		if i == 0 {
			b.ReportMetric(float64(res.Recovered), "recovered")
		}
	}
}

// Worker-scaling of PARALLELNOSY on the Quick-scale bench graph (the
// benchGraph 800-node Flickr preset). Schedules are byte-identical
// across worker counts (nosy.TestWorkerCountInvariance); only wall
// clock moves, and only on machines with real cores. CI converts these
// into BENCH_nosy.json; the tracked copy records the dev-container
// trajectory including the pre-structural-cache baseline.
func benchNosyWorkers(b *testing.B, workers int) {
	g, r := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nosy.Solve(g, r, nosy.Config{Workers: workers})
	}
}

func BenchmarkNosyWorkers1(b *testing.B) { benchNosyWorkers(b, 1) }
func BenchmarkNosyWorkers2(b *testing.B) { benchNosyWorkers(b, 2) }
func BenchmarkNosyWorkers4(b *testing.B) { benchNosyWorkers(b, 4) }
func BenchmarkNosyWorkers8(b *testing.B) { benchNosyWorkers(b, 8) }

// CommonInEdges micro-benches: the balanced case exercises the linear
// merge, the skewed case the galloping path (celebrity in-list vs a
// normal user's).
func commonInEdgesGraph() *Graph {
	g := TwitterLikeGraph(3000, 7)
	return g
}

func BenchmarkCommonInEdgesBalanced(b *testing.B) {
	g := commonInEdgesGraph()
	// Two mid-degree nodes: rank the nodes by in-degree and take a pair
	// from the middle of the distribution.
	type nd struct {
		v NodeID
		d int
	}
	var nodes []nd
	for u := 0; u < g.NumNodes(); u++ {
		nodes = append(nodes, nd{NodeID(u), g.InDegree(NodeID(u))})
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].d > nodes[j].d })
	a, c := nodes[len(nodes)/4].v, nodes[len(nodes)/4+1].v
	var xs []NodeID
	var ea, eb []EdgeID
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xs, ea, eb = g.CommonInEdges(a, c, 0, xs[:0], ea[:0], eb[:0])
	}
}

func BenchmarkCommonInEdgesSkewed(b *testing.B) {
	g := commonInEdgesGraph()
	// Celebrity (max in-degree) against a low-degree node.
	var celeb, low NodeID
	best, worst := -1, 1<<30
	for u := 0; u < g.NumNodes(); u++ {
		d := g.InDegree(NodeID(u))
		if d > best {
			best, celeb = d, NodeID(u)
		}
		if d >= 2 && d < worst {
			worst, low = d, NodeID(u)
		}
	}
	var xs []NodeID
	var ea, eb []EdgeID
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xs, ea, eb = g.CommonInEdges(celeb, low, 0, xs[:0], ea[:0], eb[:0])
	}
}

// Keep the unused-import compiler happy for types used only in helpers.
var (
	_ = graph.Edge{}
	_ = workload.DefaultReadWriteRatio
)

// ---- Sharded million-edge solve (the PR-6 scale acceptance bench) ----

// BenchmarkShardSolve1M solves a ≥1M-edge streaming-generated Flickr-like
// graph end to end through the registered shard solver — the paper's
// evaluation scale on one machine. Peak RSS is reported as a metric
// (recorded in BENCH_shard.json) because bounding it is the point: the
// spillable instance store plus one-active-shard-per-worker scheduling
// keep memory O(active shard), not O(graph).
func BenchmarkShardSolve1M(b *testing.B) {
	g := graphgen.StreamSocial(graphgen.FlickrLikeEdges(1_100_000, 1))
	if g.NumEdges() < 1_000_000 {
		b.Fatalf("generator produced %d edges, need ≥1M", g.NumEdges())
	}
	r := workload.LogDegree(g, workload.DefaultReadWriteRatio)
	sv, err := NewSolver("shard", Options{InstanceBudget: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sv.Solve(context.Background(), Problem{Graph: g, Rates: r})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Report.Cost, "cost")
		b.ReportMetric(float64(res.Report.Iterations), "shards")
	}
	b.StopTimer()
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err == nil {
		// Linux reports ru_maxrss in KiB.
		b.ReportMetric(float64(ru.Maxrss)/1024, "peakRSS-MB")
	}
}

// ---- Adversarial workload zoo (DESIGN.md §13) ----

// benchmarkZoo drives one zoo scenario through the online daemon at the
// acceptance geometry (the internal/scenario acceptance suite pins the
// same counts) and reports the daemon's end state as metrics: final
// cost, accepted re-solves, reverted attempts. CI records these in
// BENCH_zoo.json, so the daemon's behavioral trajectory under
// adversarial load across PRs lives next to the timing one.
func benchmarkZoo(b *testing.B, name string) {
	g := graphgen.Social(graphgen.FlickrLike(300, 11))
	base := workload.LogDegree(g, 5)
	trace, err := scenario.Default.Generate(name, g, base, scenario.Params{Ops: 800, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := &workload.Rates{
			Prod: append([]float64(nil), base.Prod...),
			Cons: append([]float64(nil), base.Cons...),
		}
		d, err := online.New(chitchat.Solve(g, r, chitchat.Config{}), r, online.Config{
			DriftThreshold: 0.05, CheckEvery: 8, BudgetFraction: -1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := d.ApplyTrace(trace); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			st := d.Stats()
			b.ReportMetric(d.Cost(), "cost")
			b.ReportMetric(float64(st.Resolves), "resolves")
			b.ReportMetric(float64(st.Reverted), "reverted")
		}
	}
}

func BenchmarkZooFlashCrowd(b *testing.B)   { benchmarkZoo(b, scenario.FlashCrowd) }
func BenchmarkZooDiurnal(b *testing.B)      { benchmarkZoo(b, scenario.Diurnal) }
func BenchmarkZooCascade(b *testing.B)      { benchmarkZoo(b, scenario.Cascade) }
func BenchmarkZooRegionChurn(b *testing.B)  { benchmarkZoo(b, scenario.RegionChurn) }
func BenchmarkZooLDBC(b *testing.B)         { benchmarkZoo(b, scenario.LDBC) }
func BenchmarkZooPreferential(b *testing.B) { benchmarkZoo(b, scenario.Preferential) }
