// The built-in zoo. Every generator is adversarial by construction:
// it manufactures one specific stress against the hybrid push/pull
// schedule instead of sampling and hoping. All of them are pure
// functions of (graph, rates, Params) — no time, no global state — and
// every op they emit is valid at its position in the stream.

package scenario

import (
	"math/rand"

	"piggyback/internal/graph"
	"piggyback/internal/partition"
	"piggyback/internal/workload"
)

// Built-in registry names.
const (
	// FlashCrowd is the celebrity flash crowd: the hottest producer's
	// rates spike ~1000× mid-trace while a follower crowd piles in, then
	// decay back.
	FlashCrowd = "flashcrowd"
	// Diurnal is the rate wave: user activity swings ±80% on a
	// timezone-staggered triangle wave, two full cycles per trace.
	Diurnal = "diurnal"
	// Cascade is the viral follow cascade confined to one partition
	// region: adoption spreads follower-of-follower with rate surges.
	Cascade = "cascade"
	// RegionChurn is region-correlated churn: alternating add/remove
	// bursts localized to one partition.Locality region at a time.
	RegionChurn = "regionchurn"
	// LDBC is the LDBC-SNB-style stationary generator: power-law degree
	// growth with degree-correlated, heavy-tailed activity shifts, per
	// the SIGMOD 2014 contest analysis of the LDBC social graph.
	LDBC = "ldbc"
	// Preferential is the control row: the repo's original stationary
	// preferential-attachment churn (workload.GenerateChurn) under the
	// zoo interface.
	Preferential = "preferential"
)

func init() {
	Default.MustRegister(FlashCrowd, GenFlashCrowd, Meta{
		Summary:  "celebrity rate spike ~1000× mid-trace + follower pile-on, then decay",
		Stresses: "stale push/pull choices priced at pre-spike rates; exterior hub amortization",
	})
	Default.MustRegister(Diurnal, GenDiurnal, Meta{
		Summary:  "timezone-staggered ±80% activity waves, two cycles per trace",
		Stresses: "rate-driven drift with no structural churn signal",
	})
	Default.MustRegister(Cascade, GenCascade, Meta{
		Summary:  "viral follow cascade confined to one partition region",
		Stresses: "correlated adds concentrating dirt in one re-solve region",
	})
	Default.MustRegister(RegionChurn, GenRegionChurn, Meta{
		Summary:  "alternating add/remove bursts localized per Locality region",
		Stresses: "repeated re-solves of the same regions; revert backoff",
	})
	Default.MustRegister(LDBC, GenLDBC, Meta{
		Summary:  "LDBC-SNB-style degree skew with degree-correlated heavy-tailed activity",
		Stresses: "realistic stationary baseline with heavier tails than the control",
	})
	Default.MustRegister(Preferential, GenPreferential, Meta{
		Summary:  "the original workload.GenerateChurn trace (control)",
		Stresses: "nothing by design — the zoo's stationary reference point",
	})
}

// GenFlashCrowd emits the celebrity flash crowd. Three phases: calm
// background churn; a spike where the hottest producer's rates ramp
// ×~1150 (12 steps of ×1.8) while a crowd of 2-hop-adjacent users
// follows it and starts refreshing; and a decay where the rates fall
// ×0.82 per step back to base while part of the crowd unfollows. The
// crowd is drawn follower-of-follower (v follows c where some w has
// c → w and w → v live), so the new edges share candidate cover hubs
// with the pre-spike schedule — the structure exterior-amortized
// region pricing exists to exploit.
func GenFlashCrowd(g *graph.Graph, r *workload.Rates, p Params) []workload.ChurnOp {
	b := newBuilder(FlashCrowd, g, r, p)
	if b.want <= 0 || b.n < 4 {
		return b.done()
	}
	c := hottestProducer(g)
	baseP, baseC := b.prod[c], b.cons[c]

	b.phase("calm")
	for len(b.ops) < b.want/4 {
		b.backgroundOp(0.5, 0.3)
	}

	b.phase("spike")
	const rampSteps = 12
	spikeEnd := b.want / 2
	// Ramp ops are spread evenly across the spike phase; everything
	// between them is crowd arrival.
	nextRamp := len(b.ops)
	rampGap := maxInt((spikeEnd-len(b.ops))/rampSteps, 1)
	ramped := 0
	var crowd []graph.NodeID // consumers that joined during the spike
	followers := g.OutNeighbors(c)
	for len(b.ops) < spikeEnd {
		if ramped < rampSteps && len(b.ops) >= nextRamp {
			b.scaleRates(c, 1.8, 1.8)
			ramped++
			nextRamp += rampGap
			continue
		}
		switch x := b.rng.Float64(); {
		case x < 0.55 && len(followers) > 0:
			// Arrival: v discovers c through a follower w (c → w, w → v
			// live) and follows — the edge c → v lands with candidate
			// hub w already in place.
			w := followers[b.rng.Intn(len(followers))]
			wf := g.OutNeighbors(w)
			if len(wf) == 0 {
				b.backgroundOp(0.5, 0.3)
				continue
			}
			v := wf[b.rng.Intn(len(wf))]
			if b.add(c, v) {
				crowd = append(crowd, v)
			} else {
				b.backgroundOp(0.5, 0.3)
			}
		case x < 0.75 && len(crowd) > 0:
			// Crowd engagement: a recent arrival refreshes feverishly.
			v := crowd[b.rng.Intn(len(crowd))]
			b.scaleRates(v, 1, 1.5)
		default:
			b.backgroundOp(0.5, 0.3)
		}
	}

	b.phase("decay")
	nextDecay := len(b.ops)
	decayGap := maxInt((b.want-len(b.ops))/64, 1)
	for !b.full() {
		if len(b.ops) >= nextDecay && (b.prod[c] > baseP || b.cons[c] > baseC) {
			b.setRates(c, maxFloat(b.prod[c]*0.82, baseP), maxFloat(b.cons[c]*0.82, baseC))
			nextDecay += decayGap
			continue
		}
		if len(crowd) > 0 && b.rng.Float64() < 0.25 {
			// Part of the crowd loses interest and unfollows.
			i := b.rng.Intn(len(crowd))
			v := crowd[i]
			crowd[i] = crowd[len(crowd)-1]
			crowd = crowd[:len(crowd)-1]
			if b.remove(c, v) {
				continue
			}
		}
		b.backgroundOp(0.45, 0.35)
	}
	return b.done()
}

// GenDiurnal emits timezone-staggered activity waves: 85% of ops pin a
// user's rates to base × (1 + 0.8·tri), where tri is a triangle wave
// over two full cycles per trace, phase-shifted by the user's
// "timezone" (node id mod 24). The remaining ops are light structural
// churn with no rate drift, so the wave stays the only rate signal.
// The triangle (not a sine) keeps the stream exactly reproducible
// across platforms: only +,−,×,÷ and abs touch the values.
func GenDiurnal(g *graph.Graph, r *workload.Rates, p Params) []workload.ChurnOp {
	b := newBuilder(Diurnal, g, r, p)
	if b.want <= 0 || b.n < 2 {
		return b.done()
	}
	baseP := append([]float64(nil), b.prod...)
	baseC := append([]float64(nil), b.cons...)

	b.phase("waves")
	for !b.full() {
		if b.rng.Float64() < 0.85 {
			u := b.rng.Intn(b.n)
			t := float64(len(b.ops)) / float64(b.want)
			x := 2*t + float64(u%24)/24
			x -= float64(int(x)) // frac
			wave := 1 + 0.8*(4*absFloat(x-0.5)-1)
			b.setRates(graph.NodeID(u), baseP[u]*wave, baseC[u]*wave)
			continue
		}
		if b.rng.Float64() < 0.6 {
			u := graph.NodeID(b.rng.Intn(b.n))
			v := graph.NodeID(b.rng.Intn(b.n))
			if b.add(u, v) {
				continue
			}
		}
		b.removeRandom()
	}
	return b.done()
}

// GenCascade emits a viral follow cascade confined to one partition
// region: the region (per partition.Locality) holding the hottest
// producer adopts follower-of-follower — every new adopter both follows
// an earlier adopter and becomes followable — with consumption surges
// on adoption, then an aftermath of elevated unfollows. Dirt
// concentrates in one re-solve region by construction.
func GenCascade(g *graph.Graph, r *workload.Rates, p Params) []workload.ChurnOp {
	b := newBuilder(Cascade, g, r, p)
	if b.want <= 0 || b.n < 8 {
		return b.done()
	}
	const servers = 8
	a := partition.Locality(g, servers, p.Seed)
	c := hottestProducer(g)
	members := a.Groups()[a.Of(c)]

	b.phase("seed")
	for len(b.ops) < b.want/10 {
		b.backgroundOp(0.5, 0.3)
	}

	b.phase("viral")
	adopters := []graph.NodeID{c}
	viralEnd := (b.want * 7) / 10
	for len(b.ops) < viralEnd {
		if b.rng.Float64() < 0.75 && len(members) > 0 {
			u := adopters[b.rng.Intn(len(adopters))]
			v := members[b.rng.Intn(len(members))]
			if b.add(u, v) {
				adopters = append(adopters, v)
				if b.rng.Float64() < 0.4 {
					b.scaleRates(v, 1, 1.5)
				}
				continue
			}
		}
		b.backgroundOp(0.4, 0.2)
	}

	b.phase("aftermath")
	for !b.full() {
		b.backgroundOp(0.25, 0.55)
	}
	return b.done()
}

// GenRegionChurn emits region-correlated churn: partition.Locality
// splits the graph into 6 regions and the trace walks them round-robin,
// each visit a burst of ~24–40 ops that either grows the region
// (intra-region adds) or shrinks it (intra-region removes). The same
// regions churn over and over, exercising the daemon's revert backoff
// and re-solve budget instead of spreading dirt uniformly.
func GenRegionChurn(g *graph.Graph, r *workload.Rates, p Params) []workload.ChurnOp {
	b := newBuilder(RegionChurn, g, r, p)
	if b.want <= 0 || b.n < 8 {
		return b.done()
	}
	const servers = 6
	a := partition.Locality(g, servers, p.Seed)
	groups := a.Groups()

	b.phase("bursts")
	for round := 0; !b.full(); round++ {
		members := groups[round%servers]
		if len(members) < 2 {
			b.backgroundOp(0.4, 0.4)
			continue
		}
		burst := 24 + b.rng.Intn(17)
		if round%2 == 0 {
			// Growth burst: new intra-region follows.
			for i := 0; i < burst && !b.full(); i++ {
				u := members[b.rng.Intn(len(members))]
				v := members[b.rng.Intn(len(members))]
				if !b.add(u, v) {
					// Saturated draw: churn the would-be follower's
					// activity instead so the burst stays in-region.
					b.scaleRates(u, 1.1, 1.1)
				}
			}
			continue
		}
		// Shrink burst: remove live intra-region edges, drawn without
		// replacement.
		reg := int32(round % servers)
		var intra []graph.Edge
		for _, e := range b.live {
			if a.Of(e.From) == reg && a.Of(e.To) == reg {
				intra = append(intra, e)
			}
		}
		for i := 0; i < burst && len(intra) > 0 && !b.full(); i++ {
			j := b.rng.Intn(len(intra))
			e := intra[j]
			intra[j] = intra[len(intra)-1]
			intra = intra[:len(intra)-1]
			b.remove(e.From, e.To)
		}
	}
	return b.done()
}

// GenLDBC emits the LDBC-SNB-style stationary stream: follows arrive
// with producers drawn proportionally to live follower count and
// consumers biased toward active followees (the degree/degree
// correlation the SIGMOD 2014 contest analysis measured on the LDBC
// social graph), unfollows hit uniformly, and activity shifts are
// heavy-tailed (Zipf) with the shifted user drawn degree-biased half
// the time — high-degree people are also the most active, so rate dirt
// lands where the schedule has the most hub structure to lose.
func GenLDBC(g *graph.Graph, r *workload.Rates, p Params) []workload.ChurnOp {
	b := newBuilder(LDBC, g, r, p)
	if b.want <= 0 || b.n < 2 {
		return b.done()
	}
	zipf := rand.NewZipf(b.rng, 1.3, 1, 64)

	b.phase("steady")
	for !b.full() {
		x := b.rng.Float64()
		switch {
		case x < 0.45:
			u := graph.NodeID(b.rng.Intn(b.n))
			if b.rng.Float64() < 0.8 {
				if hot, ok := b.randomLiveFrom(); ok {
					u = hot
				}
			}
			v := graph.NodeID(b.rng.Intn(b.n))
			if b.rng.Float64() < 0.5 {
				if busy, ok := b.randomLiveTo(); ok {
					v = busy
				}
			}
			if !b.add(u, v) {
				b.removeRandom()
			}
		case x < 0.70:
			b.removeRandom()
		default:
			u := graph.NodeID(b.rng.Intn(b.n))
			if b.rng.Float64() < 0.5 {
				if hot, ok := b.randomLiveFrom(); ok {
					u = hot
				}
			}
			f := 1 + float64(zipf.Uint64())/8
			if b.rng.Intn(2) == 0 {
				f = 1 / f
			}
			fc := 1 + float64(zipf.Uint64())/8
			if b.rng.Intn(2) == 0 {
				fc = 1 / fc
			}
			b.scaleRates(u, f, fc)
		}
	}
	return b.done()
}

// GenPreferential wraps workload.GenerateChurn — the repo's original
// stationary churn — under the zoo interface, so every zoo consumer
// gets the pre-zoo trace as its control row.
func GenPreferential(g *graph.Graph, r *workload.Rates, p Params) []workload.ChurnOp {
	b := newBuilder(Preferential, g, r, p)
	if b.want <= 0 || b.n < 2 {
		return b.done()
	}
	b.phase("stationary")
	ops := workload.GenerateChurn(g, r, p.Ops, workload.ChurnConfig{Seed: p.Seed})
	b.ops = ops
	b.phaseOps = len(ops)
	b.opsTotal.Add(int64(len(ops)))
	return b.done()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func absFloat(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
