package workload

import (
	"math"
	"testing"

	"piggyback/internal/graph"
	"piggyback/internal/graphgen"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestUniform(t *testing.T) {
	r := NewUniform(10, 5)
	if r.N() != 10 {
		t.Fatalf("N = %d", r.N())
	}
	if !almost(r.ReadWriteRatio(), 5) {
		t.Fatalf("ratio = %v", r.ReadWriteRatio())
	}
	if err := r.Validate(10); err != nil {
		t.Fatal(err)
	}
}

func TestLogDegreeRatio(t *testing.T) {
	g := graphgen.Social(graphgen.TwitterLike(1000, 2))
	for _, ratio := range []float64{1, 5, 100} {
		r := LogDegree(g, ratio)
		if !almost(r.ReadWriteRatio(), ratio) {
			t.Fatalf("ratio %v: got %v", ratio, r.ReadWriteRatio())
		}
		if err := r.Validate(g.NumNodes()); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLogDegreeMonotonicInDegree(t *testing.T) {
	// Star: node 0 followed by 1,2,3 (edges 0→1,0→2,0→3): node 0 has 3
	// followers, so highest production rate.
	g := graph.FromEdges(4, []graph.Edge{{From: 0, To: 1}, {From: 0, To: 2}, {From: 0, To: 3}})
	r := LogDegree(g, 5)
	for u := 1; u < 4; u++ {
		if r.Prod[0] <= r.Prod[u] {
			t.Fatalf("celebrity production %v not above leaf %v", r.Prod[0], r.Prod[u])
		}
		if r.Cons[u] <= r.Cons[0] {
			t.Fatalf("follower consumption %v not above celebrity %v", r.Cons[u], r.Cons[0])
		}
	}
}

func TestWithRatioRescales(t *testing.T) {
	g := graphgen.Social(graphgen.FlickrLike(500, 4))
	base := LogDegree(g, 5)
	for _, ratio := range []float64{1, 2, 10, 100} {
		r := base.WithRatio(ratio)
		if !almost(r.ReadWriteRatio(), ratio) {
			t.Fatalf("WithRatio(%v) ratio = %v", ratio, r.ReadWriteRatio())
		}
	}
	// Original untouched.
	if !almost(base.ReadWriteRatio(), 5) {
		t.Fatal("WithRatio mutated the receiver")
	}
	// Relative production ordering preserved.
	r := base.WithRatio(10)
	for i := range base.Prod {
		if r.Prod[i] != base.Prod[i] {
			t.Fatal("WithRatio should not change production rates")
		}
	}
}

func TestValidateErrors(t *testing.T) {
	r := NewUniform(3, 5)
	if err := r.Validate(4); err == nil {
		t.Fatal("length mismatch not caught")
	}
	r.Prod[1] = math.NaN()
	if err := r.Validate(3); err == nil {
		t.Fatal("NaN rate not caught")
	}
	r.Prod[1] = -1
	if err := r.Validate(3); err == nil {
		t.Fatal("negative rate not caught")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.FromEdges(0, nil)
	r := LogDegree(g, 5)
	if r.N() != 0 {
		t.Fatalf("N = %d", r.N())
	}
	if err := r.Validate(0); err != nil {
		t.Fatal(err)
	}
}

func TestZipfRates(t *testing.T) {
	r := Zipf(500, 1.5, 5, 7)
	if r.N() != 500 {
		t.Fatalf("N = %d", r.N())
	}
	if err := r.Validate(500); err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.ReadWriteRatio()-5) > 1e-9 {
		t.Fatalf("ratio = %v, want 5", r.ReadWriteRatio())
	}
	// Deterministic per seed.
	r2 := Zipf(500, 1.5, 5, 7)
	for i := range r.Prod {
		if r.Prod[i] != r2.Prod[i] {
			t.Fatal("same seed produced different rates")
		}
	}
	// Skewed: the max producer is far above the median.
	maxP, sum := 0.0, 0.0
	for _, p := range r.Prod {
		if p > maxP {
			maxP = p
		}
		sum += p
	}
	if maxP < 5*sum/float64(len(r.Prod)) {
		t.Fatalf("zipf rates not skewed: max %v vs mean %v", maxP, sum/float64(len(r.Prod)))
	}
	if Zipf(0, 1.5, 5, 1).N() != 0 {
		t.Fatal("empty zipf rates broken")
	}
}
