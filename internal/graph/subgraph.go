// Subgraph extraction with ID remapping — the substrate of localized
// re-optimization (§3.3 as extended by the online subsystem): a churned
// region of the social graph is cut out as a standalone dense-ID graph,
// re-solved in isolation, and the result is spliced back through the
// recorded node mapping.

package graph

import "sort"

// Subgraph is a node-induced subgraph of a parent graph, with dense local
// node and edge IDs plus the mapping back to the parent.
type Subgraph struct {
	// G is the extracted graph over local node ids 0..len(Global)-1.
	G *Graph
	// Global maps a local node id to its parent node id. It is sorted
	// ascending, so extraction is deterministic for a given node set.
	Global []NodeID
	// local maps a parent node id to its local id (dense slice lookup
	// would cost O(parent nodes) memory per region; regions are small).
	local map[NodeID]NodeID
}

// Local returns the local id of parent node u, if u is in the subgraph.
func (s *Subgraph) Local(u NodeID) (NodeID, bool) {
	l, ok := s.local[u]
	return l, ok
}

// NumNodes returns the number of nodes in the subgraph.
func (s *Subgraph) NumNodes() int { return len(s.Global) }

// dedupSorted sorts nodes ascending and removes duplicates in place.
func dedupSorted(nodes []NodeID) []NodeID {
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	dst := 0
	for i, v := range nodes {
		if i > 0 && v == nodes[i-1] {
			continue
		}
		nodes[dst] = v
		dst++
	}
	return nodes[:dst]
}

// Induced extracts the subgraph of g induced by the given nodes
// (duplicates tolerated): every edge of g with both endpoints in the set
// is kept, remapped to dense local ids. The input slice is not retained;
// node order does not affect the result.
func Induced(g *Graph, nodes []NodeID) *Subgraph {
	global := dedupSorted(append([]NodeID(nil), nodes...))
	local := make(map[NodeID]NodeID, len(global))
	for i, v := range global {
		local[v] = NodeID(i)
	}
	b := NewBuilder(len(global))
	for lu, u := range global {
		for _, v := range g.OutNeighbors(u) {
			if lv, ok := local[v]; ok {
				b.AddEdge(NodeID(lu), lv)
			}
		}
	}
	return &Subgraph{G: b.Build(), Global: global, local: local}
}

// InducedFromEdges extracts the subgraph induced by nodes over an
// explicit parent edge list — for live graphs that exist only as an edge
// set (base graph plus churn) rather than a frozen CSR structure.
func InducedFromEdges(nodes []NodeID, edges []Edge) *Subgraph {
	global := dedupSorted(append([]NodeID(nil), nodes...))
	local := make(map[NodeID]NodeID, len(global))
	for i, v := range global {
		local[v] = NodeID(i)
	}
	b := NewBuilder(len(global))
	for _, e := range edges {
		lu, ok1 := local[e.From]
		lv, ok2 := local[e.To]
		if ok1 && ok2 {
			b.AddEdge(lu, lv)
		}
	}
	return &Subgraph{G: b.Build(), Global: global, local: local}
}

// InducedEdgeIDs returns the parent edge ids with both endpoints in the
// node set (duplicates tolerated), ascending — the restricted edge set
// a localized solver run is allowed to touch. CSR edge ids are
// contiguous and ascending per source node, so walking the deduplicated
// node set in order yields the result already sorted and unique.
func InducedEdgeIDs(g *Graph, nodes []NodeID) []EdgeID {
	uniq := dedupSorted(append([]NodeID(nil), nodes...))
	set := make(map[NodeID]struct{}, len(uniq))
	for _, v := range uniq {
		set[v] = struct{}{}
	}
	var out []EdgeID
	for _, u := range uniq {
		lo, hi := g.OutEdgeRange(u)
		targets := g.OutNeighbors(u)
		for e := lo; e < hi; e++ {
			if _, ok := set[targets[e-lo]]; ok {
				out = append(out, e)
			}
		}
	}
	return out
}

// KHop returns the nodes within k hops of the seeds, treating edges as
// undirected (a hub neighborhood spans both producers and consumers).
// The result is sorted ascending and includes the seeds. maxNodes > 0
// caps the result size: BFS stops admitting nodes once the cap is
// reached, completing the current layer in (distance, node id) order so
// the cut is deterministic.
func KHop(g *Graph, seeds []NodeID, k, maxNodes int) []NodeID {
	frontier := dedupSorted(append([]NodeID(nil), seeds...))
	if maxNodes > 0 && len(frontier) > maxNodes {
		frontier = frontier[:maxNodes]
	}
	seen := make(map[NodeID]struct{}, len(frontier))
	out := make([]NodeID, 0, len(frontier))
	for _, v := range frontier {
		seen[v] = struct{}{}
		out = append(out, v)
	}
	for hop := 0; hop < k; hop++ {
		// Discover the WHOLE next layer before cutting, so a cap admits
		// the lowest-id nodes of the layer regardless of which frontier
		// node found them.
		var next []NodeID
		for _, u := range frontier {
			for _, v := range g.OutNeighbors(u) {
				if _, ok := seen[v]; !ok {
					seen[v] = struct{}{}
					next = append(next, v)
				}
			}
			for _, v := range g.InNeighbors(u) {
				if _, ok := seen[v]; !ok {
					seen[v] = struct{}{}
					next = append(next, v)
				}
			}
		}
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		full := false
		if maxNodes > 0 && len(out)+len(next) >= maxNodes {
			next = next[:maxNodes-len(out)]
			full = true
		}
		out = append(out, next...)
		if full || len(next) == 0 {
			break
		}
		frontier = next
	}
	return dedupSorted(out)
}
