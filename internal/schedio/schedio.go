// Package schedio serializes request schedules so that the optimizer
// (expensive, run offline — the paper's MapReduce jobs take about an
// hour per iteration on the full Twitter graph) can hand its output to
// the serving tier and the CLI tools.
//
// Format (little-endian): magic "PGS1", node count, edge count, then per
// edge one flag byte (push/pull/covered bits) and, for covered edges
// only, the int32 hub node. The graph itself is not stored; the loader
// verifies node/edge counts against the supplied graph and re-validates
// the schedule, so a schedule file cannot silently attach to the wrong
// graph.
package schedio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"piggyback/internal/core"
	"piggyback/internal/graph"
)

const magic = 0x50475331 // "PGS1"

const (
	flagPush    = 1 << 0
	flagPull    = 1 << 1
	flagCovered = 1 << 2
)

// Write serializes s.
func Write(w io.Writer, s *core.Schedule) error {
	bw := bufio.NewWriter(w)
	g := s.Graph()
	hdr := []uint32{magic, uint32(g.NumNodes()), uint32(g.NumEdges())}
	if err := binary.Write(bw, binary.LittleEndian, hdr); err != nil {
		return err
	}
	for e := 0; e < g.NumEdges(); e++ {
		id := graph.EdgeID(e)
		var f byte
		if s.IsPush(id) {
			f |= flagPush
		}
		if s.IsPull(id) {
			f |= flagPull
		}
		if s.IsCovered(id) {
			f |= flagCovered
		}
		if err := bw.WriteByte(f); err != nil {
			return err
		}
		if f&flagCovered != 0 {
			if err := binary.Write(bw, binary.LittleEndian, int32(s.Hub(id))); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Read deserializes a schedule for g, verifying sizes and Theorem-1
// validity.
func Read(r io.Reader, g *graph.Graph) (*core.Schedule, error) {
	br := bufio.NewReader(r)
	var hdr [3]uint32
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("schedio: reading header: %w", err)
	}
	if hdr[0] != magic {
		return nil, fmt.Errorf("schedio: bad magic %#x", hdr[0])
	}
	if int(hdr[1]) != g.NumNodes() || int(hdr[2]) != g.NumEdges() {
		return nil, fmt.Errorf("schedio: schedule is for a %d-node/%d-edge graph, got %d/%d",
			hdr[1], hdr[2], g.NumNodes(), g.NumEdges())
	}
	s := core.NewSchedule(g)
	for e := 0; e < g.NumEdges(); e++ {
		id := graph.EdgeID(e)
		f, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("schedio: reading edge %d: %w", e, err)
		}
		if f&^(flagPush|flagPull|flagCovered) != 0 {
			return nil, fmt.Errorf("schedio: edge %d has unknown flags %#x", e, f)
		}
		if f&flagPush != 0 {
			s.SetPush(id)
		}
		if f&flagPull != 0 {
			s.SetPull(id)
		}
		if f&flagCovered != 0 {
			var hub int32
			if err := binary.Read(br, binary.LittleEndian, &hub); err != nil {
				return nil, fmt.Errorf("schedio: reading hub of edge %d: %w", e, err)
			}
			if hub < 0 || int(hub) >= g.NumNodes() {
				return nil, fmt.Errorf("schedio: edge %d hub %d out of range", e, hub)
			}
			s.SetCovered(id, hub)
		}
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("schedio: loaded schedule invalid: %w", err)
	}
	return s, nil
}
