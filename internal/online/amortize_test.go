package online

import (
	"context"
	"testing"

	"piggyback/internal/chitchat"
	"piggyback/internal/core"
	"piggyback/internal/graph"
	"piggyback/internal/graphgen"
	"piggyback/internal/refine"
	"piggyback/internal/scenario"
	"piggyback/internal/solver"
	"piggyback/internal/workload"
)

// identitySolver returns the base schedule unchanged — a patch of
// exactly CHITCHAT-incumbent quality, so any accept the daemon makes
// with it is attributable to post-processing alone.
type identitySolver struct{}

func (identitySolver) Name() string          { return "identity" }
func (identitySolver) SupportsRegions() bool { return true }
func (identitySolver) Solve(ctx context.Context, p solver.Problem) (*solver.Result, error) {
	return &solver.Result{
		Schedule: p.Base.Clone(),
		Report:   solver.Report{Solver: "identity", Iterations: 1},
	}, nil
}

// spikeFixture is the minimal exterior-amortization instance: celebrity
// 0 pushes directly to 2,3,4 (cheap at rate 1), hub 1 sits between
// them, and then the celebrity's produce rate spikes ×100 while the
// schedule keeps its stale choices. Covering 0→{2,3,4} through hub 1
// needs BOTH supports purchased (0→1 is pull, 1→v are pushes), so the
// refine free-coverage sweep can never touch it — only pooled pricing
// can: one push 0→1 (price 100) amortized across three refunds of 100
// plus three pulls at 3.
func spikeFixture(t *testing.T) (*graph.Graph, *workload.Rates, *core.Schedule) {
	t.Helper()
	g := graph.FromEdges(5, []graph.Edge{
		{From: 0, To: 1},
		{From: 0, To: 2}, {From: 0, To: 3}, {From: 0, To: 4},
		{From: 1, To: 2}, {From: 1, To: 3}, {From: 1, To: 4},
	})
	r := &workload.Rates{
		Prod: []float64{1, 2, 0, 0, 0},
		Cons: []float64{0, 0.5, 3, 3, 3},
	}
	s := chitchat.Solve(g, r, chitchat.Config{})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// The incumbent must have made the stale-at-spike-time choices the
	// fixture is about: direct pushes from 0, no coverage via 1.
	for _, v := range []graph.NodeID{2, 3, 4} {
		e, _ := g.EdgeID(0, v)
		if !s.IsPush(e) || s.IsCovered(e) {
			t.Fatalf("fixture drift: edge 0→%d not a plain push in the incumbent", v)
		}
	}
	// Spike: 0's produce rate goes ×100; the schedule keeps paying it.
	r.Prod[0] = 100
	return g, r, s
}

func TestAmortizePurchasesSharedSupports(t *testing.T) {
	g, r, s := spikeFixture(t)
	before := s.Cost(r)

	// The free-coverage sweep finds nothing: no candidate has both
	// supports already paid.
	if res := refine.Run(s.Clone(), r); res.Recovered != 0 {
		t.Fatalf("refine recovered %d edges on a both-supports-missing instance", res.Recovered)
	}

	res := amortize(s, r, nil)
	if res.Upgraded != 3 {
		t.Fatalf("Upgraded = %d, want 3", res.Upgraded)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("schedule invalid after amortize: %v", err)
	}
	after := s.Cost(r)
	if got := before - after; !(got > 0) || !floatsClose(got, res.Saved) {
		t.Fatalf("cost dropped %v, Saved reports %v", got, res.Saved)
	}
	// Expected purchase: push 0→1 at 100 + three pulls at 3, refunding
	// three direct pushes at 100: net 300 − 109 = 191.
	if !floatsClose(res.Saved, 191) {
		t.Fatalf("Saved = %v, want 191", res.Saved)
	}
	for _, v := range []graph.NodeID{2, 3, 4} {
		e, _ := g.EdgeID(0, v)
		if !s.IsCovered(e) || s.Hub(e) != 1 {
			t.Fatalf("edge 0→%d not covered via hub 1 after amortize", v)
		}
	}
	// Idempotent: nothing left to buy.
	if again := amortize(s, r, nil); again.Upgraded != 0 {
		t.Fatalf("second sweep upgraded %d more edges", again.Upgraded)
	}
}

func TestAmortizeRejectsUnprofitableBundle(t *testing.T) {
	// One candidate cannot amortize anything: its refund (100) is below
	// its exclusive support bill (100 + 3), so the sweep must not buy.
	g := graph.FromEdges(3, []graph.Edge{
		{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 2},
	})
	r := &workload.Rates{
		Prod: []float64{1, 2, 0},
		Cons: []float64{0, 0.5, 3},
	}
	s := chitchat.Solve(g, r, chitchat.Config{})
	r.Prod[0] = 100
	before := s.Cost(r)
	if res := amortize(s, r, nil); res.Upgraded != 0 || res.Saved != 0 {
		t.Fatalf("bought an unprofitable bundle: %+v", res)
	}
	if after := s.Cost(r); after != before {
		t.Fatalf("cost moved %v → %v without an upgrade", before, after)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAmortizeRespectsRegionScope(t *testing.T) {
	g, r, s := spikeFixture(t)
	// Region containing only edge 0→1: no candidate lives there (it is
	// a pull support, not a spiked push), so the sweep must not reach
	// outside it to the 0→v edges.
	e01, _ := g.EdgeID(0, 1)
	if res := amortize(s, r, []graph.EdgeID{e01}); res.Upgraded != 0 {
		t.Fatalf("region-scoped sweep upgraded %d edges outside the region", res.Upgraded)
	}
	// Region holding the three spiked edges: full upgrade.
	var region []graph.EdgeID
	for _, v := range []graph.NodeID{2, 3, 4} {
		e, _ := g.EdgeID(0, v)
		region = append(region, e)
	}
	if res := amortize(s, r, region); res.Upgraded != 3 {
		t.Fatalf("region-scoped sweep upgraded %d, want 3", res.Upgraded)
	}
}

// TestAmortizeFlipsAcceptOnIncumbentQualityPatch is the satellite's
// crafted half: the daemon re-solves with a patch of exactly incumbent
// quality (identitySolver), so the accept decision is decided purely by
// patch post-processing. Without the amortization sweep the patch ties
// the incumbent and is reverted; with it, the pooled purchase wins and
// the splice is accepted.
func TestAmortizeFlipsAcceptOnIncumbentQualityPatch(t *testing.T) {
	run := func(disable bool) Stats {
		_, r, s := spikeFixture(t)
		// Un-spike: the daemon must see the spike as a churn op so dirt
		// lands and a re-solve triggers.
		r.Prod[0] = 1
		d, err := New(s, r, Config{
			Regional:        identitySolver{},
			DriftThreshold:  0.01,
			CheckEvery:      1,
			BudgetFraction:  -1,
			DisableAmortize: disable,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Apply(workload.ChurnOp{Kind: workload.OpRates, U: 0, Prod: 100, Cons: 0}); err != nil {
			t.Fatal(err)
		}
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
		return d.Stats()
	}

	off := run(true)
	if off.Resolves != 0 || off.Reverted == 0 {
		t.Fatalf("without amortization: Resolves=%d Reverted=%d, want the identity patch reverted", off.Resolves, off.Reverted)
	}
	on := run(false)
	if on.Resolves == 0 {
		t.Fatalf("with amortization: patch still reverted (stats %+v)", on)
	}
	if on.Amortized == 0 || !(on.AmortizedSaved > 0) {
		t.Fatalf("accepted splice booked no amortization: %+v", on)
	}
}

// TestAmortizeFlashCrowdTrace is the satellite's end-to-end half: a
// real flashcrowd zoo trace over a Flickr-like graph, CHITCHAT-quality
// incumbent, identity regional solver. Every accept the daemon makes is
// then attributable to patch post-processing; the run without the sweep
// accepts strictly fewer times.
func TestAmortizeFlashCrowdTrace(t *testing.T) {
	g := graphgen.Social(graphgen.FlickrLike(scaled(300, 150), 11))
	base := workload.LogDegree(g, 5)
	trace, err := scenario.Default.Generate(scenario.FlashCrowd, g, base,
		scenario.Params{Ops: scaled(1500, 600), Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	run := func(disable bool) (Stats, float64) {
		r := freshRates(g, base)
		s := chitchat.Solve(g, r, chitchat.Config{})
		d, err := New(s, r, Config{
			Regional:        identitySolver{},
			DriftThreshold:  0.05,
			CheckEvery:      8,
			BudgetFraction:  -1,
			DisableAmortize: disable,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.ApplyTrace(trace); err != nil {
			t.Fatal(err)
		}
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
		return d.Stats(), d.Cost()
	}

	off, _ := run(true)
	on, _ := run(false)
	if on.Resolves <= off.Resolves {
		t.Fatalf("amortization flipped no accepts: on=%d off=%d (on stats %+v)", on.Resolves, off.Resolves, on)
	}
	if on.Amortized == 0 || !(on.AmortizedSaved > 0) {
		t.Fatalf("flash-crowd run accepted %d splices but amortized nothing: %+v", on.Resolves, on)
	}
	// Final costs are deliberately NOT compared: the runs diverge at the
	// first flipped accept (epoch rebase, dirt clearing, backoff reset),
	// and the gate only promises each splice beats ITS incumbent at
	// splice time — which the accept counters above already witness.
}

func floatsClose(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}
