package solver

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"piggyback/internal/baseline"
	"piggyback/internal/core"
	"piggyback/internal/graph"
)

// fixedSolver returns a prebuilt result — for selection-logic tests.
type fixedSolver struct {
	name string
	s    *core.Schedule
	err  error
}

func (f fixedSolver) Name() string { return f.name }
func (f fixedSolver) Solve(context.Context, Problem) (*Result, error) {
	if f.err != nil {
		return nil, f.err
	}
	return &Result{Schedule: f.s, Report: Report{Solver: f.name, Cost: 0}}, nil
}

// The acceptance criterion: the portfolio is never costlier than its
// best member on the reference graphs.
func TestPortfolioNeverWorseThanBestMember(t *testing.T) {
	for _, nodes := range []int{150, 400} {
		g, r := quickProblem(t, nodes)
		p := Problem{Graph: g, Rates: r}

		bestMember := 0.0
		for i, name := range DefaultPortfolioMembers {
			sv, err := Default.New(name, Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			res, err := sv.Solve(context.Background(), p)
			if err != nil {
				t.Fatal(err)
			}
			if c := res.Schedule.Cost(r); i == 0 || c < bestMember {
				bestMember = c
			}
		}

		pf := NewPortfolio(PortfolioConfig{Options: Options{Workers: 1}})
		res, err := pf.Solve(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Schedule.Validate(); err != nil {
			t.Fatalf("winner invalid: %v", err)
		}
		if got := res.Schedule.Cost(r); got > bestMember {
			t.Fatalf("nodes=%d: portfolio cost %v worse than best member %v", nodes, got, bestMember)
		}
		if res.Report.Solver == Portfolio {
			t.Fatalf("Report.Solver = %q; want the winning member's name", res.Report.Solver)
		}
	}
}

// Same budget ⇒ byte-identical winner, across racer-concurrency caps
// and member start-order permutations.
func TestPortfolioDeterministic(t *testing.T) {
	g, r := quickProblem(t, 250)
	p := Problem{Graph: g, Rates: r}
	const budget = 3

	var ref []byte
	var refName string
	for _, members := range [][]string{
		{ChitChat, Nosy},
		{Nosy, ChitChat},
		{Nosy, ChitChat, Nosy}, // duplicates are dropped
	} {
		for _, workers := range []int{1, 2} {
			pf := NewPortfolio(PortfolioConfig{
				Members: members,
				Workers: workers,
				Budget:  budget,
				Options: Options{Workers: 1},
			})
			res, err := pf.Solve(context.Background(), p)
			if err != nil {
				t.Fatalf("members=%v workers=%d: %v", members, workers, err)
			}
			b := scheduleBytes(t, res.Schedule)
			if ref == nil {
				ref, refName = b, res.Report.Solver
				continue
			}
			if !bytes.Equal(ref, b) {
				t.Fatalf("members=%v workers=%d: schedule differs from reference", members, workers)
			}
			if res.Report.Solver != refName {
				t.Fatalf("members=%v workers=%d: winner %q, reference %q", members, workers, res.Report.Solver, refName)
			}
		}
	}
}

// Cancel mid-race: valid best-so-far schedule plus ctx.Err(), flagged
// Canceled.
func TestPortfolioCancelMidRace(t *testing.T) {
	g, r := quickProblem(t, 250)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pf := NewPortfolio(PortfolioConfig{Options: Options{Workers: 1}})
	events := 0
	Observe(pf, func(ProgressEvent) {
		events++
		if events == 3 {
			cancel()
		}
	})
	res, err := pf.Solve(ctx, Problem{Graph: g, Rates: r})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("canceled race returned no result")
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatalf("best-so-far schedule invalid: %v", err)
	}
	if !res.Report.Canceled {
		t.Error("canceled race not flagged Canceled")
	}
	// The anytime members finalize hybrid-or-better.
	if got, hy := res.Schedule.Cost(r), baseline.HybridCost(g, r); got > hy+1e-6 {
		t.Errorf("best-so-far cost %v worse than hybrid %v", got, hy)
	}
}

// Selection is (cost, then name): equal costs break on the
// lexicographically smaller member name, regardless of member order.
func TestPortfolioTieBreakOnName(t *testing.T) {
	g, r := quickProblem(t, 60)
	s := baseline.Hybrid(g, r)
	reg := NewRegistry()
	reg.MustRegister("zzz", func(Options) Solver { return fixedSolver{name: "zzz", s: s} }, Meta{})
	reg.MustRegister("aaa", func(Options) Solver { return fixedSolver{name: "aaa", s: s} }, Meta{})
	for _, members := range [][]string{{"zzz", "aaa"}, {"aaa", "zzz"}} {
		pf := NewPortfolio(PortfolioConfig{Registry: reg, Members: members})
		res, err := pf.Solve(context.Background(), Problem{Graph: g, Rates: r})
		if err != nil {
			t.Fatal(err)
		}
		if res.Report.Solver != "aaa" {
			t.Fatalf("members=%v: tie went to %q, want aaa", members, res.Report.Solver)
		}
	}
}

// A failing member does not sink the race; all-failed surfaces the
// first member error.
func TestPortfolioMemberFailures(t *testing.T) {
	g, r := quickProblem(t, 60)
	s := baseline.Hybrid(g, r)
	boom := errors.New("boom")
	reg := NewRegistry()
	reg.MustRegister("bad", func(Options) Solver { return fixedSolver{name: "bad", err: boom} }, Meta{})
	reg.MustRegister("good", func(Options) Solver { return fixedSolver{name: "good", s: s} }, Meta{})

	pf := NewPortfolio(PortfolioConfig{Registry: reg, Members: []string{"bad", "good"}})
	res, err := pf.Solve(context.Background(), Problem{Graph: g, Rates: r})
	if err != nil {
		t.Fatalf("race with one healthy member failed: %v", err)
	}
	if res.Report.Solver != "good" {
		t.Fatalf("winner = %q, want good", res.Report.Solver)
	}

	pf = NewPortfolio(PortfolioConfig{Registry: reg, Members: []string{"bad"}})
	if _, err := pf.Solve(context.Background(), Problem{Graph: g, Rates: r}); !errors.Is(err, boom) {
		t.Fatalf("all-failed race err = %v, want wrapped member error", err)
	}
}

// Unknown members are a configuration error, reported before racing.
func TestPortfolioUnknownMember(t *testing.T) {
	g, r := quickProblem(t, 60)
	pf := NewPortfolio(PortfolioConfig{Members: []string{"no-such-algorithm"}})
	if _, err := pf.Solve(context.Background(), Problem{Graph: g, Rates: r}); !errors.Is(err, ErrUnknownSolver) {
		t.Fatalf("err = %v, want ErrUnknownSolver", err)
	}
}

// Region problems race only region-capable members and splice a valid
// patched schedule.
func TestPortfolioRegion(t *testing.T) {
	g, r := quickProblem(t, 200)
	base := baseline.Hybrid(g, r)
	nodes := graph.KHop(g, []graph.NodeID{1, 7}, 2, 80)
	region := graph.InducedEdgeIDs(g, nodes)
	if len(region) == 0 {
		t.Fatal("degenerate region")
	}
	// nosymr is region-incapable: it must be skipped, not break the race.
	pf := NewPortfolio(PortfolioConfig{
		Members: []string{ChitChat, Nosy, NosyMapReduce},
		Options: Options{Workers: 1},
	})
	res, err := pf.Solve(context.Background(), Problem{Graph: g, Rates: r, Base: base, Region: region})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatalf("patched schedule invalid: %v", err)
	}
	if got, want := res.Schedule.Cost(r), base.Cost(r); got > want+1e-6 {
		t.Fatalf("region re-solve worsened cost: %v > %v", got, want)
	}

	// Only region-incapable members: typed refusal.
	pf = NewPortfolio(PortfolioConfig{Members: []string{NosyMapReduce}})
	if _, err := pf.Solve(context.Background(), Problem{Graph: g, Rates: r, Base: base, Region: region}); !errors.Is(err, ErrRegionUnsupported) {
		t.Fatalf("err = %v, want ErrRegionUnsupported", err)
	}
}

// The registry entry wires Options.MaxIterations through as the
// per-member budget.
func TestPortfolioRegistryEntry(t *testing.T) {
	g, r := quickProblem(t, 200)
	sv, err := Default.New(Portfolio, Options{Workers: 1, MaxIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	var events int
	Observe(sv, func(ProgressEvent) { events++ })
	res, err := sv.Solve(context.Background(), Problem{Graph: g, Rates: r})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
	if events == 0 {
		t.Error("no member progress reached the portfolio's sink")
	}
	// Each member stops within one iteration of its 2-unit budget.
	if res.Report.Iterations > 3 {
		t.Errorf("winner ran %d iterations on a 2-unit budget", res.Report.Iterations)
	}
}
