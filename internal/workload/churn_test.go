package workload

import (
	"reflect"
	"testing"

	"piggyback/internal/graph"
)

func churnFixture() (*graph.Graph, *Rates) {
	g := graph.FromEdges(20, []graph.Edge{
		{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 2}, {From: 2, To: 3},
		{From: 3, To: 4}, {From: 4, To: 0}, {From: 5, To: 6}, {From: 6, To: 7},
	})
	return g, NewUniform(20, 5)
}

// Every op must be valid at its position: adds create absent edges,
// removes delete present ones, rates stay positive and finite.
func TestGenerateChurnOpsValidInSequence(t *testing.T) {
	g, r := churnFixture()
	ops := GenerateChurn(g, r, 500, ChurnConfig{Seed: 4})
	if len(ops) != 500 {
		t.Fatalf("got %d ops, want 500", len(ops))
	}
	live := make(map[graph.Edge]bool)
	for _, e := range g.EdgeList() {
		live[e] = true
	}
	var adds, removes, rates int
	for i, op := range ops {
		switch op.Kind {
		case OpAdd:
			e := graph.Edge{From: op.U, To: op.V}
			if op.U == op.V || live[e] {
				t.Fatalf("op %d: invalid add %v", i, op)
			}
			live[e] = true
			adds++
		case OpRemove:
			e := graph.Edge{From: op.U, To: op.V}
			if !live[e] {
				t.Fatalf("op %d: remove of absent edge %v", i, op)
			}
			delete(live, e)
			removes++
		case OpRates:
			if op.Prod <= 0 || op.Cons <= 0 {
				t.Fatalf("op %d: non-positive rates %v", i, op)
			}
			rates++
		default:
			t.Fatalf("op %d: unknown kind %d", i, op.Kind)
		}
	}
	if adds == 0 || removes == 0 || rates == 0 {
		t.Fatalf("degenerate mix: adds=%d removes=%d rates=%d", adds, removes, rates)
	}
}

func TestGenerateChurnDeterministic(t *testing.T) {
	g, r := churnFixture()
	a := GenerateChurn(g, r, 200, ChurnConfig{Seed: 11})
	b := GenerateChurn(g, r, 200, ChurnConfig{Seed: 11})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different traces")
	}
	c := GenerateChurn(g, r, 200, ChurnConfig{Seed: 12})
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGenerateChurnDoesNotMutateInputs(t *testing.T) {
	g, r := churnFixture()
	prod := append([]float64(nil), r.Prod...)
	_ = GenerateChurn(g, r, 300, ChurnConfig{Seed: 5})
	if !reflect.DeepEqual(prod, r.Prod) {
		t.Fatal("generator mutated the input rates")
	}
}

func TestProjectRates(t *testing.T) {
	r := &Rates{Prod: []float64{1, 2, 3, 4}, Cons: []float64{5, 6, 7, 8}}
	p := r.Project([]graph.NodeID{3, 1})
	if !reflect.DeepEqual(p.Prod, []float64{4, 2}) || !reflect.DeepEqual(p.Cons, []float64{8, 6}) {
		t.Fatalf("Project = %+v", p)
	}
}
