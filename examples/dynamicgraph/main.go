// Dynamicgraph: keep an optimized schedule near-optimal while the
// social graph churns, using the online rescheduling daemon — cheap
// incremental patches per op, drift tracking against a cost lower
// bound, and localized re-solves spliced in when a region churns past
// the threshold (§3.3 extended; DESIGN.md §7).
//
// The -short flag runs a scaled-down version; CI uses it as the smoke
// test for the online path.
package main

import (
	"context"
	"flag"
	"fmt"

	"piggyback"
)

func main() {
	short := flag.Bool("short", false, "small graph and trace (CI smoke test)")
	flag.Parse()
	nodes, ops := 1200, 4000
	if *short {
		nodes, ops = 250, 800
	}

	g := piggyback.FlickrLikeGraph(nodes, 1)
	r := piggyback.LogDegreeRates(g, 5)

	// Seed schedule and localized re-solver both come from the solver
	// registry — the one code path for algorithm selection.
	cc, err := piggyback.NewSolver("chitchat", piggyback.Options{})
	if err != nil {
		panic(err)
	}
	ctx := context.Background()
	seedRes, err := cc.Solve(ctx, piggyback.Problem{Graph: g, Rates: r})
	if err != nil {
		panic(err)
	}
	sched := seedRes.Schedule
	trace := piggyback.GenerateChurn(g, r, ops, piggyback.ChurnConfig{Seed: 1})

	// A lower threshold and small regions make the localized re-solves
	// visible on a short trace; the defaults are tuned for long-running
	// service, where re-solving is rarer.
	maxRegion := 120
	if *short {
		maxRegion = 50 // keep one region inside the re-solve budget
	}
	d, err := piggyback.NewOnlineDaemon(sched, r, piggyback.OnlineConfig{
		DriftThreshold: 0.05,
		MaxRegionNodes: maxRegion,
		Regional:       cc,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("graph: %d nodes, %d edges; schedule cost %.1f (lower bound %.1f)\n\n",
		g.NumNodes(), g.NumEdges(), d.Cost(), d.LowerBound())

	fmt.Printf("%8s %12s %8s %10s %10s\n", "ops", "cost", "drift", "re-solves", "rescues")
	for i, op := range trace {
		if err := d.ApplyCtx(ctx, op); err != nil {
			panic(err)
		}
		if (i+1)%(ops/4) == 0 {
			st := d.Stats()
			fmt.Printf("%8d %12.1f %8.3f %10d %10d\n",
				i+1, d.Cost(), d.Drift(), st.Resolves+st.Reverted, st.Rescues)
		}
	}
	if err := d.Validate(); err != nil {
		panic(err)
	}

	// How good is the maintained schedule, really? Re-solve the churned
	// graph from scratch and compare.
	liveG, _ := d.Snapshot()
	freshRes, err := cc.Solve(ctx, piggyback.Problem{Graph: liveG, Rates: d.Rates()})
	if err != nil {
		panic(err)
	}
	fresh := freshRes.Schedule
	st := d.Stats()
	fmt.Printf("\nfinal: %d live edges after %d adds / %d removes / %d rate updates\n",
		liveG.NumEdges(), st.Adds, st.Removes, st.RateUpdates)
	fmt.Printf("maintained cost %.1f vs from-scratch CHITCHAT %.1f (%.2f%% above)\n",
		d.Cost(), fresh.Cost(d.Rates()), 100*(d.Cost()/fresh.Cost(d.Rates())-1))
	fmt.Printf("localized re-solves: %d accepted, %d reverted, touching %d region edges (%.1f%% of graph)\n",
		st.Resolves, st.Reverted, st.RegionEdges,
		100*float64(st.RegionEdges)/float64(liveG.NumEdges()))
	fmt.Println("\nthe daemon replaces the old rule of thumb (re-optimize at ~1/3 churn):")
	fmt.Println("regions re-solve themselves when their own drift crosses the threshold")
}
