// Command benchjson converts `go test -bench` output on stdin into a
// small JSON document, so CI can track the solver perf trajectory as
// per-PR artifacts (BENCH_chitchat.json, BENCH_nosy.json). Only
// standard-library parsing — no benchstat dependency.
//
//	go test -run '^$' -bench 'BenchmarkChitChatWorkers' -benchtime 1x . \
//	    | go run ./cmd/benchjson -o BENCH_chitchat.json
//	go test -run '^$' -bench . -benchtime 1x . \
//	    | go run ./cmd/benchjson -filter '^BenchmarkNosy' -o BENCH_nosy.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
)

// benchLine matches e.g. "BenchmarkChitChatWorkers1-4   2   194170926 ns/op".
// The -N GOMAXPROCS suffix is folded into the bare benchmark name.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(.*)`)

// metricPair matches the trailing custom metrics a benchmark emits via
// b.ReportMetric, e.g. "  123.4 peakRSS-MB  1.8 improvement".
var metricPair = regexp.MustCompile(`([\d.eE+-]+) (\S+)`)

type entry struct {
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	SecPerOp   float64 `json:"sec_per_op"`
	// Metrics holds the benchmark's b.ReportMetric values by unit name
	// (e.g. peakRSS-MB for the sharded-solve memory ceiling).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

type report struct {
	CPU        string           `json:"cpu,omitempty"`
	Note       string           `json:"note,omitempty"`
	Benchmarks map[string]entry `json:"benchmarks"`
}

func main() {
	filter := flag.String("filter", "", "keep only benchmarks whose name matches this regexp (default: all)")
	note := flag.String("note", "", "free-form note recorded in the JSON (e.g. what a custom metric means)")
	out := flag.String("o", "", "output path (default: stdout)")
	flag.Parse()

	var keep *regexp.Regexp
	if *filter != "" {
		var err error
		if keep, err = regexp.Compile(*filter); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: bad -filter:", err)
			os.Exit(2)
		}
	}

	rep := report{Note: *note, Benchmarks: map[string]entry{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if len(line) > 5 && line[:4] == "cpu:" {
			rep.CPU = line[5:]
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil || (keep != nil && !keep.MatchString(m[1])) {
			continue
		}
		iters, err1 := strconv.ParseInt(m[2], 10, 64)
		ns, err2 := strconv.ParseFloat(m[3], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		e := entry{Iterations: iters, NsPerOp: ns, SecPerOp: ns / 1e9}
		for _, mm := range metricPair.FindAllStringSubmatch(m[4], -1) {
			// -benchmem's standard columns are derivable elsewhere; only
			// the benchmark's own ReportMetric units are worth recording.
			if mm[2] == "B/op" || mm[2] == "allocs/op" || mm[2] == "MB/s" {
				continue
			}
			if v, err := strconv.ParseFloat(mm[1], 64); err == nil {
				if e.Metrics == nil {
					e.Metrics = map[string]float64{}
				}
				e.Metrics[mm[2]] = v
			}
		}
		rep.Benchmarks[m[1]] = e
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no matching benchmark lines on stdin")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: write:", err)
		os.Exit(1)
	}
}
