package pq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPushPopOrdered(t *testing.T) {
	q := New(10)
	prios := []float64{5, 3, 8, 1, 9, 2, 7, 0, 6, 4}
	for id, p := range prios {
		q.Push(id, p)
	}
	for want := 0.0; want < 10; want++ {
		id, p := q.PopMin()
		if p != want {
			t.Fatalf("PopMin priority = %v, want %v", p, want)
		}
		if prios[id] != p {
			t.Fatalf("PopMin id %d has priority %v, want %v", id, prios[id], p)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len after drain = %d", q.Len())
	}
}

func TestUpdateDecrease(t *testing.T) {
	q := New(3)
	q.Push(0, 10)
	q.Push(1, 20)
	q.Push(2, 30)
	q.Update(2, 5)
	if id, p := q.Min(); id != 2 || p != 5 {
		t.Fatalf("Min = (%d,%v), want (2,5)", id, p)
	}
}

func TestUpdateIncrease(t *testing.T) {
	q := New(3)
	q.Push(0, 1)
	q.Push(1, 2)
	q.Push(2, 3)
	q.Update(0, 100)
	if id, _ := q.Min(); id != 1 {
		t.Fatalf("Min id = %d, want 1", id)
	}
}

func TestUpdateInsertsWhenAbsent(t *testing.T) {
	q := New(2)
	q.Update(1, 7)
	if !q.Contains(1) || q.Len() != 1 {
		t.Fatal("Update did not insert absent id")
	}
}

func TestRemove(t *testing.T) {
	q := New(5)
	for i := 0; i < 5; i++ {
		q.Push(i, float64(i))
	}
	q.Remove(0)
	q.Remove(3)
	q.Remove(3) // idempotent
	var got []int
	for q.Len() > 0 {
		id, _ := q.PopMin()
		got = append(got, id)
	}
	want := []int{1, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("after Remove got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after Remove got %v, want %v", got, want)
		}
	}
}

func TestTieBreakDeterministic(t *testing.T) {
	q := New(4)
	for i := 3; i >= 0; i-- {
		q.Push(i, 1.0)
	}
	for want := 0; want < 4; want++ {
		id, _ := q.PopMin()
		if id != want {
			t.Fatalf("equal priorities should pop in id order: got %d, want %d", id, want)
		}
	}
}

// Property: drain order matches sorting, under random priorities and a
// random subset of updates.
func TestQuickHeapOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		q := New(n)
		final := make(map[int]float64)
		for i := 0; i < n; i++ {
			p := rng.Float64() * 100
			q.Push(i, p)
			final[i] = p
		}
		for k := 0; k < n/2; k++ {
			id := rng.Intn(n)
			p := rng.Float64() * 100
			q.Update(id, p)
			final[id] = p
		}
		var want []float64
		for _, p := range final {
			want = append(want, p)
		}
		sort.Float64s(want)
		for i := 0; q.Len() > 0; i++ {
			id, p := q.PopMin()
			if p != want[i] || final[id] != p {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestInitMatchesPushes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	prios := make([]float64, 200)
	for i := range prios {
		prios[i] = rng.Float64() * 10
	}
	a := New(len(prios))
	for id, p := range prios {
		a.Push(id, p)
	}
	var b IndexedMin // zero value + Init must work (scratch-arena reuse)
	b.Init(prios)
	for a.Len() > 0 {
		ida, pa := a.PopMin()
		idb, pb := b.PopMin()
		if ida != idb || pa != pb {
			t.Fatalf("Init pop (%d,%v) != Push pop (%d,%v)", idb, pb, ida, pa)
		}
	}
	if b.Len() != 0 {
		t.Fatalf("Init queue drained to Len %d", b.Len())
	}
}

// Init is called once per peel in the densest oracle, on a scratch queue
// left in an arbitrary state by the previous solve. It must fully
// override leftover contents — including when the new size is smaller
// than the old one.
func TestInitOverridesPreviousState(t *testing.T) {
	var q IndexedMin
	rng := rand.New(rand.NewSource(9))
	for round := 0; round < 5; round++ {
		n := 3 + rng.Intn(50)
		prios := make([]float64, n)
		for i := range prios {
			prios[i] = rng.Float64() * 100
		}
		q.Init(prios)
		if q.Len() != n {
			t.Fatalf("round %d: Len = %d, want %d", round, q.Len(), n)
		}
		// Drain only part of the queue so the next Init sees stale state.
		drain := rng.Intn(n)
		last := -1.0
		for i := 0; i < drain; i++ {
			_, p := q.PopMin()
			if p < last {
				t.Fatalf("round %d: out-of-order pop %v after %v", round, p, last)
			}
			last = p
		}
	}
}

func TestResetReuses(t *testing.T) {
	var q IndexedMin
	for round := 0; round < 3; round++ {
		n := 5 + round*10
		q.Reset(n)
		if q.Len() != 0 {
			t.Fatalf("Reset left Len %d", q.Len())
		}
		for id := 0; id < n; id++ {
			if q.Contains(id) {
				t.Fatalf("round %d: id %d queued after Reset", round, id)
			}
			q.Push(id, float64(n-id))
		}
		if id, p := q.Min(); id != n-1 || p != 1 {
			t.Fatalf("round %d: Min = (%d,%v)", round, id, p)
		}
	}
}

// PushBatch must yield the same queue as individual Pushes, both in the
// sift-up regime (small batch into a large heap) and the heapify regime
// (large batch into a small heap).
func TestPushBatchMatchesPushes(t *testing.T) {
	for _, tc := range []struct{ preload, batch int }{{100, 3}, {3, 100}, {0, 50}, {10, 10}} {
		rng := rand.New(rand.NewSource(int64(tc.preload*1000 + tc.batch)))
		n := tc.preload + tc.batch
		a, b := New(n), New(n)
		for id := 0; id < tc.preload; id++ {
			p := rng.Float64()
			a.Push(id, p)
			b.Push(id, p)
		}
		ids := make([]int32, 0, tc.batch)
		prios := make([]float64, 0, tc.batch)
		for id := tc.preload; id < n; id++ {
			p := rng.Float64()
			a.Push(id, p)
			ids = append(ids, int32(id))
			prios = append(prios, p)
		}
		b.PushBatch(ids, prios)
		for a.Len() > 0 {
			ida, pa := a.PopMin()
			idb, pb := b.PopMin()
			if ida != idb || pa != pb {
				t.Fatalf("preload=%d batch=%d: batch pop (%d,%v) != push pop (%d,%v)",
					tc.preload, tc.batch, idb, pb, ida, pa)
			}
		}
	}
}

func TestPushBatchPanicsOnQueuedID(t *testing.T) {
	q := New(4)
	q.Push(2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("PushBatch of queued id should panic")
		}
	}()
	q.PushBatch([]int32{2}, []float64{5})
}
