package densest

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

// randomInstance builds a random weighted multigraph instance.
func randomInstance(rng *rand.Rand) Instance {
	n := 2 + rng.Intn(30)
	m := rng.Intn(4 * n)
	inst := Instance{N: n, Weight: make([]float64, n)}
	for u := range inst.Weight {
		if rng.Intn(5) == 0 {
			inst.Weight[u] = 0 // already-paid nodes exist from the start too
		} else {
			inst.Weight[u] = 0.1 + rng.Float64()*10
		}
	}
	for i := 0; i < m; i++ {
		a := int32(rng.Intn(n))
		b := int32(rng.Intn(n))
		if a == b {
			continue
		}
		inst.Edges = append(inst.Edges, [2]int32{a, b})
	}
	return inst
}

// filtered returns the fresh-Peel view of d's current state: same node
// set and weights, only the live edges.
func filtered(d *Decremental) Instance {
	inst := Instance{N: d.N(), Weight: make([]float64, d.N())}
	for u := 0; u < d.N(); u++ {
		inst.Weight[u] = d.Weight(u)
	}
	for ei := 0; ei < d.NumEdges(); ei++ {
		if d.EdgeAlive(ei) {
			a, b := d.Edge(ei)
			inst.Edges = append(inst.Edges, [2]int32{a, b})
		}
	}
	return inst
}

// The central equivalence the incremental oracle rests on: after ANY
// sequence of element removals and weight zeroings, Solve returns exactly
// what Peel returns on a freshly built instance of the live edges — same
// members, same edge count, same weight. CHITCHAT's schedule invariance
// across worker counts depends on this being exact, not approximate.
func TestDecrementalMatchesFreshPeel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := randomInstance(rng)
		d := NewDecremental(inst)
		var sc, psc Scratch
		for step := 0; step < 25; step++ {
			switch {
			case rng.Intn(3) == 0:
				d.ZeroWeight(rng.Intn(d.N()))
			case d.NumEdges() > 0:
				d.RemoveEdge(rng.Intn(d.NumEdges()))
			}
			got := d.Solve(&sc)
			want := Peel(filtered(d), &psc)
			if got.EdgeCnt != want.EdgeCnt || got.Weight != want.Weight ||
				!reflect.DeepEqual(got.Members, want.Members) {
				t.Logf("seed %d step %d: got %+v want %+v", seed, step, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Removal bookkeeping: live counts, degrees, and double-removal no-ops.
func TestDecrementalRemovalAccounting(t *testing.T) {
	inst := Instance{
		N:      4,
		Weight: []float64{1, 2, 3, 4},
		Edges:  [][2]int32{{0, 1}, {1, 2}, {2, 3}, {0, 3}},
	}
	d := NewDecremental(inst)
	if d.AliveEdges() != 4 {
		t.Fatalf("AliveEdges = %d, want 4", d.AliveEdges())
	}
	if !d.RemoveEdge(1) {
		t.Fatal("first removal reported dead element")
	}
	if d.RemoveEdge(1) {
		t.Fatal("second removal of the same element reported live")
	}
	if d.AliveEdges() != 3 {
		t.Fatalf("AliveEdges = %d, want 3", d.AliveEdges())
	}
	live, _ := d.LiveInstance(nil)
	if len(live.Edges) != 3 {
		t.Fatalf("LiveInstance edges = %d, want 3", len(live.Edges))
	}
	for _, e := range live.Edges {
		if e == [2]int32{1, 2} {
			t.Fatal("removed element still in LiveInstance")
		}
	}
	// Mutating the source instance must not affect the oracle.
	inst.Weight[0] = 99
	if d.Weight(0) != 1 {
		t.Fatalf("Weight(0) = %v, want 1 (materialized copy)", d.Weight(0))
	}
}

// Solve must be a pure read of the maintained state: concurrent solves
// with distinct scratches (CHITCHAT's refresh batches run exactly this
// way) return identical results. Run under -race.
func TestDecrementalConcurrentSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	inst := randomInstance(rng)
	for len(inst.Edges) < 8 { // ensure a non-trivial instance
		inst = randomInstance(rng)
	}
	d := NewDecremental(inst)
	d.RemoveEdge(0)
	d.ZeroWeight(1)
	ref := d.Solve(nil)

	const workers = 8
	results := make([]Result, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func(i int) {
			defer wg.Done()
			var sc Scratch
			for iter := 0; iter < 50; iter++ {
				results[i] = d.Solve(&sc)
			}
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if !reflect.DeepEqual(r, ref) {
			t.Fatalf("worker %d result %+v differs from reference %+v", i, r, ref)
		}
	}
}

// FuzzDecrementalEquivalence drives the same equivalence as the quick
// property from arbitrary fuzz seeds.
func FuzzDecrementalEquivalence(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(42))
	f.Add(int64(-9000))
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		inst := randomInstance(rng)
		d := NewDecremental(inst)
		var sc, psc Scratch
		for step := 0; step < 10; step++ {
			if d.NumEdges() > 0 && rng.Intn(2) == 0 {
				d.RemoveEdge(rng.Intn(d.NumEdges()))
			} else {
				d.ZeroWeight(rng.Intn(d.N()))
			}
			got := d.Solve(&sc)
			want := Peel(filtered(d), &psc)
			if got.EdgeCnt != want.EdgeCnt || got.Weight != want.Weight ||
				!reflect.DeepEqual(got.Members, want.Members) {
				t.Fatalf("seed %d step %d: got %+v want %+v", seed, step, got, want)
			}
		}
	})
}
