package solver

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Factory builds a configured Solver instance from generic options.
type Factory func(Options) Solver

// ErrUnknownSolver is wrapped by Get for names nobody registered.
var ErrUnknownSolver = errors.New("solver: unknown solver")

// ErrDuplicateSolver is wrapped by Register when the name is taken —
// a typed error instead of a silent overwrite, so library consumers
// composing registries can detect collisions programmatically.
// MustRegister (the init-time path) panics on it instead.
var ErrDuplicateSolver = errors.New("solver: duplicate registration")

// CostClass coarsely ranks how expensive a registered solver is per
// solve — metadata the selector and portfolio consult when deciding
// what to run, deliberately NOT a cost model (see DESIGN.md §10).
type CostClass uint8

const (
	// CostUnknown is the zero value: nothing declared.
	CostUnknown CostClass = iota
	// CostCheap marks one-shot solvers (the baselines): O(m), no
	// iteration.
	CostCheap
	// CostModerate marks iterative heuristics whose per-round work is
	// proportional to what changed (PARALLELNOSY).
	CostModerate
	// CostExpensive marks quality references that pay for oracle calls
	// or full re-solves (CHITCHAT, shard).
	CostExpensive
)

// String renders the class for tables and logs.
func (c CostClass) String() string {
	switch c {
	case CostCheap:
		return "cheap"
	case CostModerate:
		return "moderate"
	case CostExpensive:
		return "expensive"
	}
	return "unknown"
}

// Meta is the per-entry registry metadata declared at registration.
type Meta struct {
	// Regions reports whether the solver handles Problem.Region
	// re-solves. It mirrors what RegionCapable reports on an instance,
	// but is queryable without building one.
	Regions bool
	// Cost is the solver's coarse cost class.
	Cost CostClass
}

// entry pairs a factory with its declared metadata.
type entry struct {
	factory Factory
	meta    Meta
}

// Registry maps solver names to factories plus metadata. It is a
// first-class value: consumers hold one (usually Default), tests build
// private ones, and Clone derives scratch copies. All methods are safe
// for concurrent use.
//
// The zero value is NOT ready; use NewRegistry (or Clone).
type Registry struct {
	mu      sync.RWMutex
	entries map[string]entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: map[string]entry{}}
}

// Default is the process-global registry the built-in solvers register
// into at init time. Program-level consumers (the piggyback facade, the
// cmd tools) resolve names against it; library code takes a *Registry
// so callers can substitute their own.
var Default = NewRegistry()

// Register makes a solver available under name with its metadata.
// It returns an error wrapping ErrDuplicateSolver when the name is
// taken, and a plain error on an empty name or nil factory.
func (r *Registry) Register(name string, f Factory, m Meta) error {
	if name == "" || f == nil {
		return errors.New("solver: Register with empty name or nil factory")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[name]; dup {
		return fmt.Errorf("%w of %q", ErrDuplicateSolver, name)
	}
	r.entries[name] = entry{factory: f, meta: m}
	return nil
}

// MustRegister is Register that panics on error — the init-time path,
// where registry misuse is a programmer error caught at startup.
func (r *Registry) MustRegister(name string, f Factory, m Meta) {
	if err := r.Register(name, f, m); err != nil {
		panic(err)
	}
}

// Get returns the factory registered under name, or an error wrapping
// ErrUnknownSolver that lists the known names.
func (r *Registry) Get(name string) (Factory, error) {
	r.mu.RLock()
	e, ok := r.entries[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w %q (have %v)", ErrUnknownSolver, name, r.Names())
	}
	return e.factory, nil
}

// Meta returns the metadata declared for name, or an error wrapping
// ErrUnknownSolver.
func (r *Registry) Meta(name string) (Meta, error) {
	r.mu.RLock()
	e, ok := r.entries[name]
	r.mu.RUnlock()
	if !ok {
		return Meta{}, fmt.Errorf("%w %q (have %v)", ErrUnknownSolver, name, r.Names())
	}
	return e.meta, nil
}

// New is the one-step convenience: look name up and build the solver.
func (r *Registry) New(name string, opts Options) (Solver, error) {
	f, err := r.Get(name)
	if err != nil {
		return nil, err
	}
	return f(opts), nil
}

// Names returns every registered solver name, sorted — deterministic
// regardless of registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.entries))
	for n := range r.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of registered solvers.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// Clone returns an independent copy: registrations on the clone never
// touch the original, so a program can derive a scratch registry from
// Default, add experimental solvers, and hand it to one consumer.
func (r *Registry) Clone() *Registry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c := &Registry{entries: make(map[string]entry, len(r.entries))}
	for n, e := range r.entries {
		c.entries[n] = e
	}
	return c
}
