package netstore

import (
	"bufio"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"piggyback/internal/core"
	"piggyback/internal/graph"
	"piggyback/internal/partition"
	"piggyback/internal/store"
)

// RequestTimeout bounds one server round-trip. The paper's prototype
// omits failure handling "for simplicity"; a real client must at least
// fail fast instead of hanging when a data-store server dies mid-request.
const RequestTimeout = 5 * time.Second

// Client is a schedule-driven application-logic client over TCP
// (Algorithm 3). It keeps one connection per data-store server and
// fans requests out in parallel, one batched message per server, waiting
// for all replies. A Client is not safe for concurrent use; open one per
// goroutine (connections are cheap, and this mirrors the paper's
// independent client processes).
type Client struct {
	sched  *core.Schedule
	assign partition.Assignment
	conns  []*conn

	pushBatch [][]batch
	pullBatch [][]batch
}

type conn struct {
	c  net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

type batch struct {
	server int
	views  []graph.NodeID
}

// Dial connects to the given data-store servers and precomputes per-user
// batches from the schedule; addrs[i] hosts the views that the hash
// assignment maps to server i.
func Dial(s *core.Schedule, addrs []string) (*Client, error) {
	return DialWithSeed(s, addrs, 0)
}

// DialWithSeed is Dial with an explicit partition seed (must match the
// seed used to shard data across the servers).
func DialWithSeed(s *core.Schedule, addrs []string, seed int64) (*Client, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("netstore: no servers")
	}
	g := s.Graph()
	cl := &Client{
		sched:  s,
		assign: partition.Hash(g.NumNodes(), len(addrs), seed),
	}
	for _, addr := range addrs {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			cl.Close()
			return nil, fmt.Errorf("netstore: dialing %s: %w", addr, err)
		}
		cl.conns = append(cl.conns, &conn{
			c:  c,
			br: bufio.NewReader(c),
			bw: bufio.NewWriter(c),
		})
	}
	cl.pushBatch = make([][]batch, g.NumNodes())
	cl.pullBatch = make([][]batch, g.NumNodes())
	for u := 0; u < g.NumNodes(); u++ {
		uid := graph.NodeID(u)
		cl.pushBatch[u] = cl.group(append(s.PushSet(uid), uid))
		cl.pullBatch[u] = cl.group(append(s.PullSet(uid), uid))
	}
	return cl, nil
}

func (cl *Client) group(views []graph.NodeID) []batch {
	byServer := make(map[int][]graph.NodeID)
	for _, v := range views {
		s := int(cl.assign.Of(v))
		byServer[s] = append(byServer[s], v)
	}
	out := make([]batch, 0, len(byServer))
	for s, vs := range byServer {
		out = append(out, batch{server: s, views: vs})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].server < out[j].server })
	return out
}

// Close tears down all connections.
func (cl *Client) Close() {
	for _, c := range cl.conns {
		if c != nil {
			c.c.Close()
		}
	}
}

// roundTrip sends one frame on one connection and reads the reply. The
// deadline turns a dead server into a prompt error instead of a hang.
func (c *conn) roundTrip(body []byte) ([]byte, error) {
	if err := c.c.SetDeadline(time.Now().Add(RequestTimeout)); err != nil {
		return nil, err
	}
	if err := writeFrame(c.bw, body); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	return readFrame(c.br, nil)
}

// Update shares an event by u: one update message per server holding a
// view in u's push set (plus u's own view), all acked.
func (cl *Client) Update(u graph.NodeID, ev store.Event) error {
	batches := cl.pushBatch[u]
	var wg sync.WaitGroup
	errs := make([]error, len(batches))
	for i, b := range batches {
		wg.Add(1)
		go func(i int, b batch) {
			defer wg.Done()
			_, errs[i] = cl.conns[b.server].roundTrip(encodeUpdate(ev, b.views))
		}(i, b)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Query assembles u's event stream: one query per server holding a view
// in u's pull set (plus u's own), replies merged to the ten newest.
func (cl *Client) Query(u graph.NodeID) ([]store.Event, error) {
	batches := cl.pullBatch[u]
	var wg sync.WaitGroup
	errs := make([]error, len(batches))
	replies := make([][]store.Event, len(batches))
	for i, b := range batches {
		wg.Add(1)
		go func(i int, b batch) {
			defer wg.Done()
			body, err := cl.conns[b.server].roundTrip(encodeQuery(store.StreamSize, b.views))
			if err != nil {
				errs[i] = err
				return
			}
			replies[i], errs[i] = decodeEvents(body)
		}(i, b)
	}
	wg.Wait()
	var out []store.Event
	for i := range batches {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out = store.MergeNewest(out, replies[i], store.StreamSize)
	}
	return out, nil
}
