// Command graphgen generates synthetic social graphs in the library's
// text or binary format.
//
// Usage:
//
//	graphgen -preset twitter -nodes 10000 -seed 1 -o twitter.graph
//	graphgen -preset er -nodes 1000 -edges 20000 -format text -o er.txt
//	graphgen -preset flickr -scale 1000000 -o flickr1m.graph
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"piggyback/internal/graph"
	"piggyback/internal/graphgen"
	"piggyback/internal/graphio"
)

func main() {
	var (
		preset = flag.String("preset", "twitter", "graph shape: twitter | flickr | er | zipf")
		nodes  = flag.Int("nodes", 10000, "number of nodes")
		edges  = flag.Int("edges", 0, "number of edges (er preset; default 20×nodes)")
		scale  = flag.Int("scale", 0, "target edge count; sizes the graph and switches to the O(n)-state streaming generator (twitter/flickr presets)")
		seed   = flag.Int64("seed", 1, "generator seed")
		out    = flag.String("o", "", "output file (default stdout)")
		format = flag.String("format", "binary", "output format: binary | text")
		stats  = flag.Bool("stats", false, "print graph statistics to stderr")
	)
	flag.Parse()

	var g *graph.Graph
	switch *preset {
	case "twitter", "flickr":
		cfg := graphgen.TwitterLike(*nodes, *seed)
		if *preset == "flickr" {
			cfg = graphgen.FlickrLike(*nodes, *seed)
		}
		if *scale > 0 {
			perNode := float64(cfg.AvgFollows) * (1 + cfg.Reciprocity)
			cfg.Nodes = int(float64(*scale) / perNode)
			if cfg.Nodes < 2 {
				cfg.Nodes = 2
			}
			g = graphgen.StreamSocial(cfg)
		} else {
			g = graphgen.Social(cfg)
		}
	case "er":
		m := *edges
		if m == 0 {
			m = 20 * *nodes
		}
		g = graphgen.ErdosRenyi(*nodes, m, *seed)
	case "zipf":
		g = graphgen.ZipfConfiguration(*nodes, 1.5, 1000, *seed)
	default:
		fatalf("unknown preset %q", *preset)
	}

	if *stats {
		s := g.ComputeStats(1000, rand.New(rand.NewSource(*seed)))
		fmt.Fprintf(os.Stderr,
			"nodes=%d edges=%d avg-deg=%.1f max-out=%d reciprocity=%.3f clustering=%.3f\n",
			s.Nodes, s.Edges, s.AvgOutDegree, s.MaxOutDegree, s.Reciprocity, s.ClusteringCoef)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("creating %s: %v", *out, err)
		}
		defer f.Close()
		w = f
	}
	var err error
	switch *format {
	case "binary":
		err = graphio.WriteBinary(w, g)
	case "text":
		err = graphio.WriteText(w, g)
	default:
		fatalf("unknown format %q", *format)
	}
	if err != nil {
		fatalf("writing graph: %v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "graphgen: "+format+"\n", args...)
	os.Exit(1)
}
