package nosymr

import (
	"math/rand"
	"testing"
	"testing/quick"

	"piggyback/internal/baseline"
	"piggyback/internal/graph"
	"piggyback/internal/graphgen"
	"piggyback/internal/nosy"
	"piggyback/internal/workload"
)

func TestFigure2(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{
		{From: 0, To: 1}, {From: 0, To: 2}, {From: 1, To: 2},
	})
	r := workload.NewUniform(3, 1)
	res := Solve(g, r, nosy.Config{})
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := res.Schedule.Cost(r); got != 2 {
		t.Fatalf("cost = %v, want 2", got)
	}
}

// The MapReduce implementation must produce the exact same schedule as
// the shared-memory one: same algorithm, different substrate.
func TestMatchesSharedMemoryImplementation(t *testing.T) {
	for _, seed := range []int64{1, 7} {
		g := graphgen.Social(graphgen.TwitterLike(200, seed))
		r := workload.LogDegree(g, 5)
		mr := Solve(g, r, nosy.Config{})
		sm := nosy.Solve(g, r, nosy.Config{})
		if mr.Schedule.Cost(r) != sm.Schedule.Cost(r) {
			t.Fatalf("seed %d: MR cost %v != shared-memory cost %v",
				seed, mr.Schedule.Cost(r), sm.Schedule.Cost(r))
		}
		for e := 0; e < g.NumEdges(); e++ {
			ee := graph.EdgeID(e)
			if mr.Schedule.IsPush(ee) != sm.Schedule.IsPush(ee) ||
				mr.Schedule.IsPull(ee) != sm.Schedule.IsPull(ee) ||
				mr.Schedule.IsCovered(ee) != sm.Schedule.IsCovered(ee) ||
				mr.Schedule.Hub(ee) != sm.Schedule.Hub(ee) {
				t.Fatalf("seed %d: schedules differ at edge %d", seed, e)
			}
		}
		if len(mr.Iterations) != len(sm.Iterations) {
			t.Fatalf("seed %d: iteration counts differ: %d vs %d",
				seed, len(mr.Iterations), len(sm.Iterations))
		}
		for i := range mr.Iterations {
			if mr.Iterations[i].Dirty != sm.Iterations[i].Dirty ||
				mr.Iterations[i].Candidates != sm.Iterations[i].Candidates ||
				mr.Iterations[i].FullCommits != sm.Iterations[i].FullCommits ||
				mr.Iterations[i].PartialCommits != sm.Iterations[i].PartialCommits ||
				mr.Iterations[i].CoveredEdges != sm.Iterations[i].CoveredEdges {
				t.Fatalf("seed %d iteration %d stats differ: %+v vs %+v",
					seed, i, mr.Iterations[i], sm.Iterations[i])
			}
		}
	}
}

// The dirty-set discipline must actually shrink the Job 1 map input:
// round 0 prices every hub edge, later rounds only commit neighborhoods.
func TestDirtySetShrinks(t *testing.T) {
	g := graphgen.Social(graphgen.TwitterLike(300, 4))
	r := workload.LogDegree(g, 5)
	res := Solve(g, r, nosy.Config{})
	if len(res.Iterations) < 2 {
		t.Fatalf("want a multi-iteration run, got %d iterations", len(res.Iterations))
	}
	if res.Iterations[0].Dirty != g.NumEdges() {
		t.Fatalf("round 0 dirty = %d, want every edge (%d)",
			res.Iterations[0].Dirty, g.NumEdges())
	}
	for i := 1; i < len(res.Iterations); i++ {
		if d := res.Iterations[i].Dirty; d >= res.Iterations[0].Dirty {
			t.Fatalf("iteration %d dirty = %d, not below round 0's %d",
				i, d, res.Iterations[0].Dirty)
		}
	}
}

func TestValidAndBeatsHybrid(t *testing.T) {
	g := graphgen.Social(graphgen.FlickrLike(200, 3))
	r := workload.LogDegree(g, 5)
	res := Solve(g, r, nosy.Config{})
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
	hy := baseline.HybridCost(g, r)
	if ratio := hy / res.Schedule.Cost(r); ratio < 1.05 {
		t.Fatalf("improvement ratio %.3f too low", ratio)
	}
}

func TestWorkerInvariance(t *testing.T) {
	g := graphgen.Social(graphgen.TwitterLike(150, 9))
	r := workload.LogDegree(g, 5)
	ref := Solve(g, r, nosy.Config{Workers: 1})
	got := Solve(g, r, nosy.Config{Workers: 8})
	if ref.Schedule.Cost(r) != got.Schedule.Cost(r) {
		t.Fatalf("worker counts disagree: %v vs %v", ref.Schedule.Cost(r), got.Schedule.Cost(r))
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.FromEdges(0, nil)
	res := Solve(g, workload.NewUniform(0, 5), nosy.Config{})
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Property: MR and shared-memory agree on random graphs.
func TestQuickAgreement(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(25)
		g := graphgen.Social(graphgen.Config{
			Nodes: n, AvgFollows: 3 + rng.Intn(5),
			TriadProb: rng.Float64(), Reciprocity: rng.Float64(), Seed: seed,
		})
		r := workload.LogDegree(g, 0.5+rng.Float64()*10)
		mr := Solve(g, r, nosy.Config{Workers: 1 + rng.Intn(4)})
		sm := nosy.Solve(g, r, nosy.Config{Workers: 1 + rng.Intn(4)})
		if mr.Schedule.Validate() != nil {
			return false
		}
		return mr.Schedule.Cost(r) == sm.Schedule.Cost(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
