// Package core defines the paper's central abstractions: the request
// schedule (push set H, pull set L, hub-covered set C), the throughput
// cost model c(H, L), the bounded-staleness validity check of Theorem 1,
// and the active-store model of Theorem 3.
package core

import (
	"fmt"

	"piggyback/internal/graph"
	"piggyback/internal/workload"
)

// Flag records how an edge participates in a schedule. An edge may be both
// push and pull (it can serve itself one way and support a hub the other
// way), and a covered edge carries the hub it is covered through.
type Flag uint8

const (
	// FlagPush marks the edge as a member of the push set H.
	FlagPush Flag = 1 << iota
	// FlagPull marks the edge as a member of the pull set L.
	FlagPull
	// FlagCovered marks the edge as covered by piggybacking through a hub.
	FlagCovered
)

// Schedule is a request schedule over a fixed graph. The zero value is not
// usable; call NewSchedule.
type Schedule struct {
	g     *graph.Graph
	flags []Flag
	hub   []graph.NodeID // hub[e] = hub node for covered edge e, else -1
}

// NewSchedule returns an empty schedule (no edge scheduled yet) for g.
func NewSchedule(g *graph.Graph) *Schedule {
	hub := make([]graph.NodeID, g.NumEdges())
	for i := range hub {
		hub[i] = -1
	}
	return &Schedule{
		g:     g,
		flags: make([]Flag, g.NumEdges()),
		hub:   hub,
	}
}

// Graph returns the underlying graph.
func (s *Schedule) Graph() *graph.Graph { return s.g }

// Clone returns an independent deep copy.
func (s *Schedule) Clone() *Schedule {
	return &Schedule{
		g:     s.g,
		flags: append([]Flag(nil), s.flags...),
		hub:   append([]graph.NodeID(nil), s.hub...),
	}
}

// SetPush adds edge e to the push set H.
func (s *Schedule) SetPush(e graph.EdgeID) { s.flags[e] |= FlagPush }

// SetPull adds edge e to the pull set L.
func (s *Schedule) SetPull(e graph.EdgeID) { s.flags[e] |= FlagPull }

// SetCovered marks edge e as covered through hub w.
func (s *Schedule) SetCovered(e graph.EdgeID, w graph.NodeID) {
	s.flags[e] |= FlagCovered
	s.hub[e] = w
}

// ClearCovered removes coverage from edge e (incremental maintenance).
func (s *Schedule) ClearCovered(e graph.EdgeID) {
	s.flags[e] &^= FlagCovered
	s.hub[e] = -1
}

// ClearPush removes e from H.
func (s *Schedule) ClearPush(e graph.EdgeID) { s.flags[e] &^= FlagPush }

// ClearPull removes e from L.
func (s *Schedule) ClearPull(e graph.EdgeID) { s.flags[e] &^= FlagPull }

// IsPush reports whether e ∈ H.
func (s *Schedule) IsPush(e graph.EdgeID) bool { return s.flags[e]&FlagPush != 0 }

// IsPull reports whether e ∈ L.
func (s *Schedule) IsPull(e graph.EdgeID) bool { return s.flags[e]&FlagPull != 0 }

// IsCovered reports whether e is covered through a hub.
func (s *Schedule) IsCovered(e graph.EdgeID) bool { return s.flags[e]&FlagCovered != 0 }

// IsScheduled reports whether e is served at all (push, pull or covered).
func (s *Schedule) IsScheduled(e graph.EdgeID) bool { return s.flags[e] != 0 }

// Hub returns the hub node of a covered edge, or -1.
func (s *Schedule) Hub(e graph.EdgeID) graph.NodeID { return s.hub[e] }

// Counts summarizes set sizes.
type Counts struct {
	Push    int // |H|
	Pull    int // |L|
	Covered int // edges served via hubs
	Both    int // edges in H ∩ L
	Direct  int // edges in exactly one of H, L and not covered
	Unset   int // edges with no assignment (schedule not finalized)
}

// Counts tallies membership over all edges.
func (s *Schedule) Counts() Counts {
	var c Counts
	for _, f := range s.flags {
		push := f&FlagPush != 0
		pull := f&FlagPull != 0
		cov := f&FlagCovered != 0
		if push {
			c.Push++
		}
		if pull {
			c.Pull++
		}
		if cov {
			c.Covered++
		}
		if push && pull {
			c.Both++
		}
		if (push != pull) && !cov {
			c.Direct++
		}
		if f == 0 {
			c.Unset++
		}
	}
	return c
}

// Cost returns the throughput cost c(H, L) = Σ_{u→v∈H} rp(u) +
// Σ_{u→v∈L} rc(v). Covered edges cost nothing beyond the pushes and pulls
// that realize their hubs, which are already members of H and L.
func (s *Schedule) Cost(r *workload.Rates) float64 {
	total := 0.0
	s.g.Edges(func(e graph.EdgeID, u, v graph.NodeID) bool {
		f := s.flags[e]
		if f&FlagPush != 0 {
			total += r.Prod[u]
		}
		if f&FlagPull != 0 {
			total += r.Cons[v]
		}
		return true
	})
	return total
}

// PredictedThroughput is the inverse of the schedule cost (§4.2). It is
// "predicted" in the paper's sense: derived from the cost model rather
// than measured on the prototype.
func (s *Schedule) PredictedThroughput(r *workload.Rates) float64 {
	c := s.Cost(r)
	if c == 0 {
		return 0
	}
	return 1 / c
}

// Finalize serves every still-unscheduled edge directly, choosing the
// cheaper of push and pull per edge (the hybrid rule). Algorithms call
// this after hub selection so the schedule satisfies bounded staleness.
func (s *Schedule) Finalize(r *workload.Rates) {
	s.g.Edges(func(e graph.EdgeID, u, v graph.NodeID) bool {
		if s.flags[e] == 0 {
			if r.Prod[u] <= r.Cons[v] {
				s.flags[e] |= FlagPush
			} else {
				s.flags[e] |= FlagPull
			}
		}
		return true
	})
}

// Validate checks the Theorem 1 feasibility condition: every edge u → v is
// (i) in H, (ii) in L, or (iii) covered through a hub w with u → w ∈ H and
// w → v ∈ L, where both support edges exist in the graph. A schedule that
// passes guarantees bounded staleness with Θ = 2Δ.
func (s *Schedule) Validate() error {
	var err error
	s.g.Edges(func(e graph.EdgeID, u, v graph.NodeID) bool {
		f := s.flags[e]
		if f&(FlagPush|FlagPull) != 0 {
			return true
		}
		if f&FlagCovered == 0 {
			err = fmt.Errorf("core: edge %d (%d→%d) is not served", e, u, v)
			return false
		}
		w := s.hub[e]
		if w < 0 {
			err = fmt.Errorf("core: covered edge %d (%d→%d) has no hub", e, u, v)
			return false
		}
		up, ok := s.g.EdgeID(u, w)
		if !ok {
			err = fmt.Errorf("core: hub edge %d→%d missing for covered edge %d→%d", u, w, u, v)
			return false
		}
		down, ok := s.g.EdgeID(w, v)
		if !ok {
			err = fmt.Errorf("core: hub edge %d→%d missing for covered edge %d→%d", w, v, u, v)
			return false
		}
		if !s.IsPush(up) {
			err = fmt.Errorf("core: support edge %d→%d of hub %d is not a push", u, w, w)
			return false
		}
		if !s.IsPull(down) {
			err = fmt.Errorf("core: support edge %d→%d of hub %d is not a pull", w, v, w)
			return false
		}
		return true
	})
	return err
}

// PushSet returns, for user u, the users whose views must be updated when
// u shares an event (excluding u's own view, which is implicit). This is
// the h[u] of Algorithm 3.
func (s *Schedule) PushSet(u graph.NodeID) []graph.NodeID {
	lo, hi := s.g.OutEdgeRange(u)
	var out []graph.NodeID
	for e := lo; e < hi; e++ {
		if s.IsPush(e) {
			out = append(out, s.g.EdgeTarget(e))
		}
	}
	return out
}

// PullSet returns, for user v, the views that must be queried to assemble
// v's event stream (excluding v's own view, which is implicit). This is
// the l[u] of Algorithm 3.
func (s *Schedule) PullSet(v graph.NodeID) []graph.NodeID {
	in := s.g.InNeighbors(v)
	ids := s.g.InEdgeIDs(v)
	var out []graph.NodeID
	for i, e := range ids {
		if s.IsPull(e) {
			out = append(out, in[i])
		}
	}
	return out
}
