package online

import (
	"strings"
	"testing"

	"piggyback/internal/chitchat"
	"piggyback/internal/fault"
	"piggyback/internal/graphgen"
	"piggyback/internal/solver"
	"piggyback/internal/workload"
)

// TestDaemonBreakerQuarantinesFailingSolver drives the daemon with a
// regional solver that panics on its first solves: the breaker (fed by
// WithRecover) must absorb the panics, trip, serve re-solves from the
// fallback, and close again through a half-open probe once the primary
// recovers — all without a panic escaping or the schedule degrading
// into invalidity.
func TestDaemonBreakerQuarantinesFailingSolver(t *testing.T) {
	g := graphgen.Social(graphgen.FlickrLike(scaled(400, 250), 7))
	base := workload.LogDegree(g, 5)
	r := freshRates(g, base)
	init := chitchat.Solve(g, r, chitchat.Config{})
	trace := workload.GenerateChurn(g, base, scaled(2500, 1200), workload.ChurnConfig{Seed: 7})

	// The primary panics on solves 1..3, healthy afterwards.
	primary := solver.Chain(solver.NewChitChat(chitchat.Config{}), fault.SolverPanics(1, 4))
	d, err := New(init, r, Config{
		Regional:          primary,
		Fallback:          "chitchat",
		BreakerThreshold:  2,
		BreakerProbeEvery: 2,
		DriftThreshold:    0.02,
		CheckEvery:        8,
		BudgetFraction:    -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ApplyTrace(trace); err != nil {
		t.Fatalf("trace failed: %v", err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("final schedule invalid: %v", err)
	}
	st := d.Stats()
	if st.Breaker == nil {
		t.Fatal("Stats().Breaker is nil with Fallback configured")
	}
	b := *st.Breaker
	if b.Trips == 0 {
		t.Fatalf("breaker never tripped: %+v", b)
	}
	if b.FallbackSolves == 0 {
		t.Fatalf("fallback never served a re-solve: %+v", b)
	}
	if b.Closes == 0 || b.Open {
		t.Fatalf("breaker never recovered after the primary healed: %+v", b)
	}
	// The first panic happened below the trip threshold and must have
	// surfaced to the daemon as a booked SolverError, not vanished.
	if st.SolverErrors == 0 || st.LastSolverErr == nil {
		t.Fatalf("pre-trip failure not booked: errors=%d err=%v", st.SolverErrors, st.LastSolverErr)
	}
	if !strings.Contains(st.LastSolverErr.Error(), "panic") {
		t.Fatalf("booked error does not carry the recovered panic: %v", st.LastSolverErr)
	}
	// Re-solves kept happening end to end.
	if st.Resolves == 0 {
		t.Fatalf("no accepted re-solves during the trace: %+v", st)
	}
}

// TestDaemonRejectsBadFallback pins the configuration-time checks: an
// unknown fallback name and a region-incapable fallback both fail New.
func TestDaemonRejectsBadFallback(t *testing.T) {
	g := graphgen.Social(graphgen.FlickrLike(100, 3))
	base := workload.LogDegree(g, 5)
	init := chitchat.Solve(g, base, chitchat.Config{})
	if _, err := New(init, base, Config{Fallback: "no-such-solver"}); err == nil {
		t.Fatal("unknown fallback accepted")
	}
	if _, err := New(init, base, Config{Fallback: "pushall"}); err == nil {
		t.Fatal("region-incapable fallback accepted")
	}
}
