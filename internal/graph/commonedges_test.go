package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCommonInEdgesBasic(t *testing.T) {
	// 0→2, 1→2, 3→2 ; 0→4, 3→4 → common producers of 2 and 4: {0, 3}.
	g := FromEdges(5, []Edge{{0, 2}, {1, 2}, {3, 2}, {0, 4}, {3, 4}})
	xs, ea, eb := g.CommonInEdges(2, 4, 0, nil, nil, nil)
	if len(xs) != 2 || xs[0] != 0 || xs[1] != 3 {
		t.Fatalf("xs = %v, want [0 3]", xs)
	}
	for i, x := range xs {
		if g.EdgeSource(ea[i]) != x || g.EdgeTarget(ea[i]) != 2 {
			t.Fatalf("ea[%d] = %d is not %d→2", i, ea[i], x)
		}
		if g.EdgeSource(eb[i]) != x || g.EdgeTarget(eb[i]) != 4 {
			t.Fatalf("eb[%d] = %d is not %d→4", i, eb[i], x)
		}
	}
}

func TestCommonInEdgesLimit(t *testing.T) {
	g := FromEdges(5, []Edge{{0, 2}, {1, 2}, {3, 2}, {0, 4}, {1, 4}, {3, 4}})
	xs, ea, eb := g.CommonInEdges(2, 4, 2, nil, nil, nil)
	if len(xs) != 2 || len(ea) != 2 || len(eb) != 2 {
		t.Fatalf("limit 2 returned %d entries", len(xs))
	}
}

func TestCommonInEdgesAppendsToBuffers(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1}, {0, 2}})
	xs := []NodeID{99}
	ea := []EdgeID{77}
	eb := []EdgeID{88}
	xs, ea, eb = g.CommonInEdges(1, 2, 0, xs, ea, eb)
	if xs[0] != 99 || ea[0] != 77 || eb[0] != 88 {
		t.Fatal("existing buffer contents clobbered")
	}
	if len(xs) != 2 || xs[1] != 0 {
		t.Fatalf("xs = %v", xs)
	}
}

// TestCommonInEdgesSkewed forces the galloping path: one endpoint is a
// celebrity whose in-list dwarfs the other's by far more than
// gallopFactor, in both orders, with and without a limit. The result
// must match the linear-merge reference (CommonInNeighbors + EdgeID).
func TestCommonInEdgesSkewed(t *testing.T) {
	const n = 1200
	b := NewBuilder(n)
	// Node 0 is the celebrity: everyone follows it. Node 1 hears from a
	// sparse arithmetic sprinkle, so the intersection is exactly that
	// sprinkle (minus non-followers of 0 — there are none).
	for u := 2; u < n; u++ {
		b.AddEdge(NodeID(u), 0)
	}
	for u := 5; u < n; u += 97 {
		b.AddEdge(NodeID(u), 1)
	}
	g := b.Build()
	for _, pair := range [][2]NodeID{{0, 1}, {1, 0}} {
		for _, limit := range []int{0, 3} {
			want := g.CommonInNeighbors(pair[0], pair[1], limit)
			xs, ea, eb := g.CommonInEdges(pair[0], pair[1], limit, nil, nil, nil)
			if len(xs) != len(want) {
				t.Fatalf("pair %v limit %d: %d producers, want %d", pair, limit, len(xs), len(want))
			}
			for i, x := range xs {
				if x != want[i] {
					t.Fatalf("pair %v limit %d: xs[%d] = %d, want %d", pair, limit, i, x, want[i])
				}
				wa, ok1 := g.EdgeID(x, pair[0])
				wb, ok2 := g.EdgeID(x, pair[1])
				if !ok1 || !ok2 || ea[i] != wa || eb[i] != wb {
					t.Fatalf("pair %v: edge ids for producer %d wrong", pair, x)
				}
			}
		}
	}
}

// Property: the galloping and linear merges agree on random graphs with a
// planted celebrity, across random (a, b) pairs involving it.
func TestQuickCommonInEdgesGallopAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 100 + rng.Intn(400)
		b := NewBuilder(n)
		celeb := NodeID(rng.Intn(n))
		for u := 0; u < n; u++ {
			if u != int(celeb) && rng.Float64() < 0.9 {
				b.AddEdge(NodeID(u), celeb)
			}
		}
		for i := 0; i < 3*n; i++ {
			b.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
		}
		g := b.Build()
		for trial := 0; trial < 10; trial++ {
			other := NodeID(rng.Intn(n))
			a, c := celeb, other
			if rng.Intn(2) == 0 {
				a, c = other, celeb
			}
			limit := 0
			if rng.Intn(2) == 0 {
				limit = 1 + rng.Intn(5)
			}
			want := g.CommonInNeighbors(a, c, limit)
			xs, ea, eb := g.CommonInEdges(a, c, limit, nil, nil, nil)
			if len(xs) != len(want) {
				return false
			}
			for i := range want {
				if xs[i] != want[i] {
					return false
				}
				wa, _ := g.EdgeID(want[i], a)
				wc, _ := g.EdgeID(want[i], c)
				if ea[i] != wa || eb[i] != wc {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: CommonInEdges agrees with CommonInNeighbors plus EdgeID
// lookups on random graphs.
func TestQuickCommonInEdgesAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(50)
		b := NewBuilder(n)
		for i := 0; i < 6*n; i++ {
			b.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
		}
		g := b.Build()
		for trial := 0; trial < 10; trial++ {
			a := NodeID(rng.Intn(n))
			c := NodeID(rng.Intn(n))
			want := g.CommonInNeighbors(a, c, 0)
			xs, ea, eb := g.CommonInEdges(a, c, 0, nil, nil, nil)
			if len(xs) != len(want) {
				return false
			}
			for i := range want {
				if xs[i] != want[i] {
					return false
				}
				wa, _ := g.EdgeID(want[i], a)
				wc, _ := g.EdgeID(want[i], c)
				if ea[i] != wa || eb[i] != wc {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
