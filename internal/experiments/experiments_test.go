package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// parse reads a float cell back.
func parse(t *testing.T, s string) float64 {
	t.Helper()
	x, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not a number: %v", s, err)
	}
	return x
}

func TestTableString(t *testing.T) {
	tb := &Table{
		Title:  "demo",
		Note:   "note",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
	}
	out := tb.String()
	for _, want := range []string{"## demo", "note", "a", "bb", "333"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestDatasets(t *testing.T) {
	tb := Datasets(Quick)
	if len(tb.Rows) != 2 {
		t.Fatalf("expected 2 dataset rows, got %d", len(tb.Rows))
	}
	// Flickr-like must have higher reciprocity than Twitter-like.
	fr := parse(t, tb.Rows[0][5])
	tr := parse(t, tb.Rows[1][5])
	if fr <= tr {
		t.Fatalf("flickr reciprocity %.3f should exceed twitter %.3f", fr, tr)
	}
	// Both must cluster (the property piggybacking relies on).
	if parse(t, tb.Rows[0][6]) < 0.05 || parse(t, tb.Rows[1][6]) < 0.05 {
		t.Fatal("generated graphs do not cluster")
	}
}

func TestFig4Shape(t *testing.T) {
	tb := Fig4(Quick)
	if len(tb.Rows) < 2 {
		t.Fatalf("Fig4 needs at least 2 iterations, got %d", len(tb.Rows))
	}
	for col := 1; col <= 2; col++ {
		first := parse(t, tb.Rows[0][col])
		last := parse(t, tb.Rows[len(tb.Rows)-1][col])
		if last < first-1e-9 {
			t.Fatalf("col %d: improvement ratio decreased %v → %v", col, first, last)
		}
		if last < 1.05 {
			t.Fatalf("col %d: final ratio %v shows no improvement", col, last)
		}
		// Monotone non-decreasing across iterations.
		prev := 0.0
		for i, row := range tb.Rows {
			x := parse(t, row[col])
			if x < prev-1e-9 {
				t.Fatalf("col %d row %d: ratio decreased %v → %v", col, i, prev, x)
			}
			prev = x
		}
	}
}

func TestFig5Shape(t *testing.T) {
	tb := Fig5(Quick)
	if len(tb.Rows) < 2 {
		t.Fatalf("Fig5 needs several batch sizes, got %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		inc := parse(t, row[1])
		static := parse(t, row[2])
		if static < inc-1e-9 {
			t.Fatalf("batch %s: static %v below incremental %v", row[0], static, inc)
		}
		if inc < 1.0-1e-9 {
			t.Fatalf("batch %s: incremental ratio %v below 1", row[0], inc)
		}
	}
	// The Figure-5 story: re-optimizing pays off more as the batch
	// grows, i.e. static's advantage over incremental (weakly) widens.
	// (Incremental itself may now IMPROVE with batch size — the
	// maintainer covers added edges through existing hubs for free —
	// but static improves faster.)
	firstAdv := parse(t, tb.Rows[0][2]) / parse(t, tb.Rows[0][1])
	lastAdv := parse(t, tb.Rows[len(tb.Rows)-1][2]) / parse(t, tb.Rows[len(tb.Rows)-1][1])
	if lastAdv < firstAdv-0.05 {
		t.Fatalf("static advantage shrank with batch size: %v → %v", firstAdv, lastAdv)
	}
}

func TestFig7Shape(t *testing.T) {
	tb := Fig7(Quick)
	// Row 0 is 1 server: both normalized throughputs must be 1.
	if parse(t, tb.Rows[0][1]) != 1 || parse(t, tb.Rows[0][2]) != 1 {
		t.Fatalf("1-server normalized throughput not 1: %v", tb.Rows[0])
	}
	// Ratio PN/FF must (weakly) improve with scale and exceed 1 at the top.
	first := parse(t, tb.Rows[0][3])
	last := parse(t, tb.Rows[len(tb.Rows)-1][3])
	if last < first-0.02 {
		t.Fatalf("predicted ratio fell with scale: %v → %v", first, last)
	}
	if last < 1.0 {
		t.Fatalf("PN should win at the largest system: ratio %v", last)
	}
}

func TestFig8Shape(t *testing.T) {
	tb := Fig8(Quick)
	prevPN, prevFF := 1e18, 1e18
	for _, row := range tb.Rows {
		pn := parse(t, row[1])
		ff := parse(t, row[3])
		if pn > prevPN+1e-12 || ff > prevFF+1e-12 {
			t.Fatalf("mean load must fall with servers: %v", row)
		}
		prevPN, prevFF = pn, ff
	}
}

func TestFig9Shapes(t *testing.T) {
	for _, method := range []SampleMethod{RandomWalkSampling, BFSSampling} {
		tb := Fig9(Quick, method)
		if len(tb.Rows) != 7 {
			t.Fatalf("Fig9 should sweep 7 ratios, got %d", len(tb.Rows))
		}
		var ccSum, pnSum float64
		for _, row := range tb.Rows {
			for c := 1; c <= 4; c++ {
				if parse(t, row[c]) < 1.0-1e-6 {
					t.Fatalf("method %v: ratio below 1 in row %v", method, row)
				}
			}
			ccSum += parse(t, row[1]) + parse(t, row[3])
			pnSum += parse(t, row[2]) + parse(t, row[4])
		}
		// The paper finds CHITCHAT above PARALLELNOSY everywhere; on our
		// synthetic samples PARALLELNOSY occasionally edges ahead at single
		// points (documented in EXPERIMENTS.md), so assert at sweep level:
		// CHITCHAT wins on average, or at worst sits within 5%.
		if ccSum < pnSum*0.95 {
			t.Fatalf("method %v: ChitChat average %v well below ParallelNosy %v",
				method, ccSum, pnSum)
		}
		// Gains decay as reads dominate: ratio at rw=100 below ratio at rw=1
		// for the PARALLELNOSY columns.
		if parse(t, tb.Rows[6][2]) > parse(t, tb.Rows[0][2])+0.05 {
			t.Fatalf("method %v: PN gain grew with read/write ratio", method)
		}
	}
}

func TestFig6Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("prototype measurement in -short mode")
	}
	sc := Quick
	sc.PrototypeRequests = 1500
	tb := Fig6(sc)
	if len(tb.Rows) < 3 {
		t.Fatalf("Fig6 rows: %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if parse(t, row[1]) <= 0 || parse(t, row[2]) <= 0 {
			t.Fatalf("non-positive throughput in row %v", row)
		}
	}
}

func TestPlotRendersBars(t *testing.T) {
	tb := &Table{
		Title:  "demo",
		Header: []string{"x", "series"},
		Rows:   [][]string{{"1", "1.0"}, {"2", "2.0"}, {"oops", "not-a-number"}},
	}
	out := tb.Plot()
	if !strings.Contains(out, "## demo") || !strings.Contains(out, "series") {
		t.Fatalf("plot missing header:\n%s", out)
	}
	// The 2.0 bar must be longer than the 1.0 bar.
	lines := strings.Split(out, "\n")
	var bar1, bar2 int
	for _, l := range lines {
		if strings.Contains(l, "| ") || !strings.Contains(l, "|") {
			continue
		}
		n := strings.Count(l, "#")
		if strings.Contains(l, " 1.0") {
			bar1 = n
		}
		if strings.Contains(l, " 2.0") {
			bar2 = n
		}
	}
	if bar2 <= bar1 || bar1 == 0 {
		t.Fatalf("bar lengths wrong (1.0→%d, 2.0→%d):\n%s", bar1, bar2, out)
	}
	if !strings.Contains(out, "-") {
		t.Fatal("non-numeric cell not marked")
	}
}

func TestPlotDegenerate(t *testing.T) {
	tb := &Table{Title: "empty", Header: []string{"only"}}
	if out := tb.Plot(); !strings.Contains(out, "empty") {
		t.Fatalf("degenerate plot: %q", out)
	}
}
