package solver

import (
	"bytes"
	"context"
	"math"
	"testing"

	"piggyback/internal/baseline"
	"piggyback/internal/graph"
	"piggyback/internal/graphgen"
	"piggyback/internal/workload"
)

// star returns an n-spoke star: the celebrity shape with degree skew
// max/avg = n(n+1)/2n ≈ n/2.
func star(n int) (*graph.Graph, *workload.Rates) {
	edges := make([]graph.Edge, n)
	for i := 0; i < n; i++ {
		edges[i] = graph.Edge{From: 0, To: graph.NodeID(i + 1)}
	}
	g := graph.FromEdges(n+1, edges)
	return g, workload.LogDegree(g, 5)
}

func TestComputeFeatures(t *testing.T) {
	g, r := star(200)
	f := ComputeFeatures(Problem{Graph: g, Rates: r})
	if f.Nodes != 201 || f.Edges != 200 {
		t.Fatalf("dims = %d/%d, want 201/200", f.Nodes, f.Edges)
	}
	if got := f.Density; math.Abs(got-200.0/201) > 1e-12 {
		t.Errorf("Density = %v", got)
	}
	// Hub degree 200, total degree mass 400, 201 nodes.
	if got, want := f.DegreeSkew, 200.0*201/400; got != want {
		t.Errorf("DegreeSkew = %v, want %v", got, want)
	}
	if f.Region || f.RegionEdges != 0 {
		t.Errorf("full problem flagged as region: %+v", f)
	}
	if !math.IsNaN(f.Degradation) {
		t.Errorf("Degradation = %v, want NaN without a hint", f.Degradation)
	}
}

// The default table's decisions, pinned per feature regime.
func TestSelectorDecisions(t *testing.T) {
	sel := NewSelector(SelectorConfig{}).(*selectorSolver)

	smallG, smallR := quickProblem(t, 150) // few hundred edges
	skewG, skewR := star(300)              // skew ≈ 150 ≥ 64

	for _, tc := range []struct {
		name     string
		p        Problem
		wantRule string
		want     string
	}{
		{"small-clustered", Problem{Graph: smallG, Rates: smallR}, "small", ChitChat},
		{"celebrity-star", Problem{Graph: skewG, Rates: skewR}, "skewed", Nosy},
	} {
		f, rule, err := sel.Select(tc.p)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if rule.Name != tc.wantRule || rule.Solver != tc.want {
			t.Errorf("%s: rule %q → %q, want %q → %q (features %+v)",
				tc.name, rule.Name, rule.Solver, tc.wantRule, tc.want, f)
		}
	}

	// The table itself routes million-edge instances to the sharded
	// solver (exercised on synthetic features: building 2^18 edges in a
	// unit test buys nothing).
	for _, rule := range DefaultRules() {
		if rule.Name != "huge" {
			continue
		}
		if !rule.When(Features{Edges: autoHugeEdges}) || rule.Solver != "shard" {
			t.Errorf("huge rule broken: %+v", rule)
		}
		if rule.When(Features{Edges: autoHugeEdges - 1}) {
			t.Errorf("huge rule fires below its threshold")
		}
	}
}

// Rules naming unregistered solvers fall through to the next match —
// the mechanism that lets the default table name "shard" without the
// solver package importing it.
func TestSelectorFallThrough(t *testing.T) {
	g, r := quickProblem(t, 150)
	reg := NewRegistry()
	reg.MustRegister(Hybrid, func(Options) Solver { return baselineSolver{Hybrid} }, Meta{Cost: CostCheap})
	sel := NewSelector(SelectorConfig{
		Registry: reg,
		Rules: []Rule{
			{Name: "first", When: func(Features) bool { return true }, Solver: "not-linked-in"},
			{Name: "second", When: func(Features) bool { return true }, Solver: Hybrid},
		},
	}).(*selectorSolver)
	_, rule, err := sel.Select(Problem{Graph: g, Rates: r})
	if err != nil {
		t.Fatal(err)
	}
	if rule.Name != "second" {
		t.Fatalf("selected rule %q, want fall-through to second", rule.Name)
	}

	// Nothing resolvable: a descriptive error, not a panic.
	sel = NewSelector(SelectorConfig{
		Registry: reg,
		Rules:    []Rule{{Name: "only", When: func(Features) bool { return true }, Solver: "not-linked-in"}},
	}).(*selectorSolver)
	if _, _, err := sel.Select(Problem{Graph: g, Rates: r}); err == nil {
		t.Fatal("expected error when no rule resolves")
	}
}

// Region problems route on the degradation hint: mild drift gets
// restricted NOSY, heavy drift the CHITCHAT quality reference.
func TestSelectorRegionHint(t *testing.T) {
	g, r := quickProblem(t, 200)
	base := baseline.Hybrid(g, r)
	nodes := graph.KHop(g, []graph.NodeID{1, 7}, 2, 80)
	region := graph.InducedEdgeIDs(g, nodes)
	p := Problem{Graph: g, Rates: r, Base: base, Region: region}

	for _, tc := range []struct {
		hint     float64
		wantRule string
		want     string
	}{
		{0.2, "region", Nosy},
		{2.5, "degraded-region", ChitChat},
	} {
		sel := NewSelector(SelectorConfig{
			Hint: func(Problem) float64 { return tc.hint },
		}).(*selectorSolver)
		f, rule, err := sel.Select(p)
		if err != nil {
			t.Fatal(err)
		}
		if f.Degradation != tc.hint || !f.Region || f.RegionEdges != len(region) {
			t.Errorf("hint=%v: features %+v", tc.hint, f)
		}
		if rule.Name != tc.wantRule || rule.Solver != tc.want {
			t.Errorf("hint=%v: rule %q → %q, want %q → %q", tc.hint, rule.Name, rule.Solver, tc.wantRule, tc.want)
		}

		// And the Solve path actually runs the selected solver.
		var observed Rule
		sel.cfg.OnSelect = func(_ Features, r Rule) { observed = r }
		res, err := sel.Solve(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Schedule.Validate(); err != nil {
			t.Fatalf("hint=%v: invalid schedule: %v", tc.hint, err)
		}
		if observed.Name != tc.wantRule {
			t.Errorf("hint=%v: OnSelect saw rule %q", tc.hint, observed.Name)
		}
		if res.Report.Solver != tc.want {
			t.Errorf("hint=%v: Report.Solver = %q, want %q", tc.hint, res.Report.Solver, tc.want)
		}
	}
}

// The registered "auto" entry solves end to end and matches the solver
// it delegates to, byte for byte.
func TestAutoMatchesSelectedSolver(t *testing.T) {
	g, r := quickProblem(t, 150) // small regime → chitchat
	sv, err := Default.New(Auto, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var events int
	Observe(sv, func(ProgressEvent) { events++ })
	res, err := sv.Solve(context.Background(), Problem{Graph: g, Rates: r})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Solver != ChitChat {
		t.Fatalf("auto delegated to %q on the small regime, want %q", res.Report.Solver, ChitChat)
	}
	if events == 0 {
		t.Error("no delegate progress reached the auto solver's sink")
	}
	direct, err := Default.New(ChitChat, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := direct.Solve(context.Background(), Problem{Graph: g, Rates: r})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(scheduleBytes(t, res.Schedule), scheduleBytes(t, want.Schedule)) {
		t.Fatal("auto schedule differs from the delegate's")
	}
}

// Graphgen sanity: the generators this package's tests lean on stay in
// the feature regimes the table assumes (guards against silent
// generator drift flipping selector decisions).
func TestSelectorRegimeAssumptions(t *testing.T) {
	g := graphgen.Social(graphgen.FlickrLike(150, 1))
	if g.NumEdges() > autoSmallEdges {
		t.Fatalf("quick Flickr-like graph outgrew the small regime: %d edges", g.NumEdges())
	}
	sg, _ := star(300)
	f := ComputeFeatures(Problem{Graph: sg})
	if f.DegreeSkew < autoSkew {
		t.Fatalf("star skew %v below threshold %v", f.DegreeSkew, autoSkew)
	}
}
