package telemetry

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracerDeterministicTree(t *testing.T) {
	build := func() string {
		tr := NewTracer(7)
		root := tr.Begin(RootSpan, "solve/portfolio", "n=100")
		a := tr.Begin(root, "race/chitchat", "member=0")
		b := tr.Begin(root, "race/nosy", "member=1")
		tr.End(b, "canceled")
		tr.End(a, "ok cost=12")
		tr.End(root, "winner=chitchat")
		return tr.Tree()
	}
	t1, t2 := build(), build()
	if t1 != t2 {
		t.Fatalf("trees differ:\n%s\nvs\n%s", t1, t2)
	}
	lines := strings.Split(strings.TrimSpace(t1), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 span lines, got %q", lines)
	}
	if !strings.HasPrefix(lines[0], "solve/portfolio#") || !strings.Contains(lines[0], "-> winner=chitchat") {
		t.Fatalf("root line wrong: %q", lines[0])
	}
	// Children render in Begin order with two-space indent, even though
	// b ended before a.
	if !strings.HasPrefix(lines[1], "  race/chitchat#") {
		t.Fatalf("child 0 wrong: %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "  race/nosy#") {
		t.Fatalf("child 1 wrong: %q", lines[2])
	}
}

func TestTracerSeedChangesIDs(t *testing.T) {
	id1 := NewTracer(1).Begin(RootSpan, "s", "")
	id2 := NewTracer(2).Begin(RootSpan, "s", "")
	if id1 == id2 {
		t.Fatalf("different seeds produced the same span ID")
	}
	if id1 == RootSpan || id2 == RootSpan {
		t.Fatalf("Begin returned RootSpan")
	}
}

func TestTracerDurationsOutOfBand(t *testing.T) {
	tr := NewTracer(3)
	id := tr.Begin(RootSpan, "solve/x", "")
	tr.End(id, "ok")
	tree := tr.Tree()
	tr.SetDuration(id, 42*time.Millisecond)
	if tr.Tree() != tree {
		t.Fatalf("SetDuration changed the tree rendering")
	}
	if tr.Duration(id) != 42*time.Millisecond {
		t.Fatalf("duration = %v", tr.Duration(id))
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	id := tr.Begin(RootSpan, "x", "")
	if id != RootSpan {
		t.Fatalf("nil tracer Begin = %v", id)
	}
	tr.End(id, "")
	tr.SetDuration(id, time.Second)
	if tr.Duration(id) != 0 || tr.Len() != 0 || tr.Tree() != "" {
		t.Fatalf("nil tracer not inert")
	}
	if NewContext(context.Background(), tr, id) != context.Background() {
		t.Fatalf("NewContext with nil tracer should return ctx unchanged")
	}
}

func TestTracerOpenSpanMarked(t *testing.T) {
	tr := NewTracer(1)
	tr.Begin(RootSpan, "hung", "")
	if !strings.Contains(tr.Tree(), "[open]") {
		t.Fatalf("unended span not marked open:\n%s", tr.Tree())
	}
}

func TestContextRoundTrip(t *testing.T) {
	tr := NewTracer(9)
	id := tr.Begin(RootSpan, "outer", "")
	ctx := NewContext(context.Background(), tr, id)
	gotTr, gotID := FromContext(ctx)
	if gotTr != tr || gotID != id {
		t.Fatalf("FromContext = (%p, %v), want (%p, %v)", gotTr, gotID, tr, id)
	}
	if tr2, id2 := FromContext(context.Background()); tr2 != nil || id2 != RootSpan {
		t.Fatalf("empty context carried a span")
	}
}

func TestTracerConcurrentEnd(t *testing.T) {
	// Begin on the coordinator, End from workers — the discipline the
	// portfolio and shard instrumentation follow. The tree must come out
	// identical regardless of End interleaving.
	build := func() string {
		tr := NewTracer(11)
		root := tr.Begin(RootSpan, "solve/shard", "shards=8")
		ids := make([]SpanID, 8)
		for i := range ids {
			ids[i] = tr.Begin(root, "shard/solve", "")
		}
		var wg sync.WaitGroup
		for _, id := range ids {
			wg.Add(1)
			go func(id SpanID) {
				defer wg.Done()
				tr.End(id, "ok")
			}(id)
		}
		wg.Wait()
		tr.End(root, "ok")
		return tr.Tree()
	}
	t1, t2 := build(), build()
	if t1 != t2 {
		t.Fatalf("concurrent End broke determinism:\n%s\nvs\n%s", t1, t2)
	}
}

func TestEventLog(t *testing.T) {
	var l EventLog
	l.Emit("breaker", "closed->open")
	l.Emit("breaker", "open->half-open")
	l.Emit("other", "x")
	if got := l.Attrs("breaker"); len(got) != 2 || got[0] != "closed->open" || got[1] != "open->half-open" {
		t.Fatalf("Attrs = %v", got)
	}
	want := "0 breaker closed->open\n1 breaker open->half-open\n2 other x\n"
	if l.String() != want {
		t.Fatalf("String = %q, want %q", l.String(), want)
	}
	var nilLog *EventLog
	nilLog.Emit("x", "y")
	if nilLog.Events() != nil || nilLog.String() != "" || nilLog.Attrs("x") != nil {
		t.Fatalf("nil EventLog not inert")
	}
}
