// The shared trace builder every generator drives: it owns the evolving
// edge set and rate vectors, refuses invalid ops instead of emitting
// them, and books the telemetry phases, so a generator reads as the
// scenario's plot line and nothing else.

package scenario

import (
	"fmt"
	"math/rand"

	"piggyback/internal/graph"
	"piggyback/internal/telemetry"
	"piggyback/internal/workload"
)

// builder accumulates a valid churn-op stream against an evolving edge
// set. All mutation goes through it, so validity-at-position is
// enforced in exactly one place.
type builder struct {
	rng  *rand.Rand
	n    int
	want int
	ops  []workload.ChurnOp

	live  []graph.Edge
	index map[graph.Edge]int

	prod, cons []float64

	// telemetry (all optional; nil-safe)
	tracer    *telemetry.Tracer
	root      telemetry.SpanID
	phaseSpan telemetry.SpanID
	phaseOps  int
	opsTotal  *telemetry.Counter
	metrics   *telemetry.Registry
	scenario  string
}

func newBuilder(name string, g *graph.Graph, r *workload.Rates, p Params) *builder {
	b := &builder{
		rng:      rand.New(rand.NewSource(p.Seed)),
		n:        g.NumNodes(),
		want:     p.Ops,
		live:     g.EdgeList(),
		prod:     append([]float64(nil), r.Prod...),
		cons:     append([]float64(nil), r.Cons...),
		tracer:   p.Tracer,
		metrics:  p.Metrics,
		scenario: name,
	}
	if b.want > 0 {
		b.ops = make([]workload.ChurnOp, 0, b.want)
	}
	b.index = make(map[graph.Edge]int, len(b.live))
	for i, e := range b.live {
		b.index[e] = i
	}
	if b.tracer != nil {
		b.root = b.tracer.Begin(telemetry.RootSpan, "scenario/"+name, fmt.Sprintf("ops=%d seed=%d", p.Ops, p.Seed))
	}
	if b.metrics != nil {
		b.opsTotal = b.metrics.Counter("scenario_ops_total",
			telemetry.Label{Key: "scenario", Value: name})
	}
	return b
}

// phase closes the previous phase span (if any) and opens a new one.
// Phase boundaries also land in the scenario_phase_ops_total series.
func (b *builder) phase(name string) {
	b.endPhase()
	if b.tracer != nil {
		b.phaseSpan = b.tracer.Begin(b.root, "phase/"+name, "")
	}
	if b.metrics != nil {
		b.opsTotal = b.metrics.Counter("scenario_phase_ops_total",
			telemetry.Label{Key: "scenario", Value: b.scenario},
			telemetry.Label{Key: "phase", Value: name})
	}
	b.phaseOps = 0
}

func (b *builder) endPhase() {
	if b.tracer != nil && b.phaseSpan != 0 {
		b.tracer.End(b.phaseSpan, fmt.Sprintf("ops=%d", b.phaseOps))
		b.phaseSpan = 0
	}
}

// done closes the telemetry spans and returns the finished trace.
func (b *builder) done() []workload.ChurnOp {
	b.endPhase()
	if b.tracer != nil {
		b.tracer.End(b.root, fmt.Sprintf("ops=%d", len(b.ops)))
	}
	return b.ops
}

// full reports whether the trace reached its target length; every
// generator loop is bounded by it.
func (b *builder) full() bool { return len(b.ops) >= b.want }

func (b *builder) book(op workload.ChurnOp) {
	b.ops = append(b.ops, op)
	b.phaseOps++
	b.opsTotal.Inc()
}

// hasEdge reports whether u → v is live.
func (b *builder) hasEdge(u, v graph.NodeID) bool {
	_, ok := b.index[graph.Edge{From: u, To: v}]
	return ok
}

// add emits an OpAdd if the edge is addable (no self-loop, not live,
// trace not full) and reports whether it did.
func (b *builder) add(u, v graph.NodeID) bool {
	if b.full() || u == v || u < 0 || v < 0 || int(u) >= b.n || int(v) >= b.n {
		return false
	}
	e := graph.Edge{From: u, To: v}
	if _, dup := b.index[e]; dup {
		return false
	}
	b.index[e] = len(b.live)
	b.live = append(b.live, e)
	b.book(workload.ChurnOp{Kind: workload.OpAdd, U: u, V: v})
	return true
}

// remove emits an OpRemove if the edge is live and reports whether it
// did.
func (b *builder) remove(u, v graph.NodeID) bool {
	if b.full() {
		return false
	}
	e := graph.Edge{From: u, To: v}
	i, ok := b.index[e]
	if !ok {
		return false
	}
	last := len(b.live) - 1
	b.live[i] = b.live[last]
	b.index[b.live[i]] = i
	b.live = b.live[:last]
	delete(b.index, e)
	b.book(workload.ChurnOp{Kind: workload.OpRemove, U: u, V: v})
	return true
}

// removeRandom removes a uniformly drawn live edge; false when none.
func (b *builder) removeRandom() bool {
	if len(b.live) == 0 {
		return false
	}
	e := b.live[b.rng.Intn(len(b.live))]
	return b.remove(e.From, e.To)
}

// setRates emits an OpRates pinning u's rates to (prod, cons).
func (b *builder) setRates(u graph.NodeID, prod, cons float64) bool {
	if b.full() || u < 0 || int(u) >= b.n || !(prod >= 0) || !(cons >= 0) {
		return false
	}
	b.prod[u] = prod
	b.cons[u] = cons
	b.book(workload.ChurnOp{Kind: workload.OpRates, U: u, Prod: prod, Cons: cons})
	return true
}

// scaleRates multiplies u's current rates by (fp, fc).
func (b *builder) scaleRates(u graph.NodeID, fp, fc float64) bool {
	return b.setRates(u, b.prod[u]*fp, b.cons[u]*fc)
}

// randomLiveFrom returns the producer of a uniformly drawn live edge —
// sampling nodes proportionally to their live follower count without
// any ticket bookkeeping. ok is false when no edges are live.
func (b *builder) randomLiveFrom() (graph.NodeID, bool) {
	if len(b.live) == 0 {
		return 0, false
	}
	return b.live[b.rng.Intn(len(b.live))].From, true
}

// randomLiveTo is randomLiveFrom for consumers: sampling proportional
// to live followee count.
func (b *builder) randomLiveTo() (graph.NodeID, bool) {
	if len(b.live) == 0 {
		return 0, false
	}
	return b.live[b.rng.Intn(len(b.live))].To, true
}

// backgroundOp emits one op of stationary background churn: addFrac
// adds (producer degree-biased through randomLiveFrom, consumer
// uniform), removeFrac removes, remainder mild rate drift (both rates
// scaled by an independent factor in [1/1.5, 1.5]). Emitting can fail
// (duplicate add draw, empty edge set); callers loop on full().
func (b *builder) backgroundOp(addFrac, removeFrac float64) {
	x := b.rng.Float64()
	switch {
	case x < addFrac:
		var u graph.NodeID
		if b.rng.Float64() < 0.8 {
			if p, ok := b.randomLiveFrom(); ok {
				u = p
			} else {
				u = graph.NodeID(b.rng.Intn(b.n))
			}
		} else {
			u = graph.NodeID(b.rng.Intn(b.n))
		}
		b.add(u, graph.NodeID(b.rng.Intn(b.n)))
	case x < addFrac+removeFrac:
		b.removeRandom()
	default:
		u := graph.NodeID(b.rng.Intn(b.n))
		scale := func() float64 {
			s := 1 + b.rng.Float64()*0.5
			if b.rng.Intn(2) == 0 {
				return 1 / s
			}
			return s
		}
		b.scaleRates(u, scale(), scale())
	}
}

// hottestProducer returns the node with the highest live follower count
// (out-degree in the u → v = "v subscribes to u" convention), lowest id
// on ties — the deterministic celebrity pick.
func hottestProducer(g *graph.Graph) graph.NodeID {
	best, bestDeg := graph.NodeID(0), -1
	for u := 0; u < g.NumNodes(); u++ {
		if d := g.OutDegree(graph.NodeID(u)); d > bestDeg {
			best, bestDeg = graph.NodeID(u), d
		}
	}
	return best
}
