package solver

import (
	"context"
	"fmt"
	"math"

	"piggyback/internal/graph"
)

// Auto is the registry name of the feature-based selector solver.
const Auto = "auto"

func init() {
	Default.MustRegister(Auto, func(o Options) Solver {
		inner := o
		inner.Progress = nil
		return withProgress(NewSelector(SelectorConfig{Options: inner}), o.Progress)
	}, Meta{Regions: true, Cost: CostModerate})
}

// Features are the cheap structural measurements the selector rules
// read: one O(n) degree scan, no solving, no cost model — the
// "greedy-without-statistics beats cost-based planning" position
// (DESIGN.md §10 gives the argument).
type Features struct {
	// Nodes and Edges are the graph dimensions.
	Nodes, Edges int
	// Density is edges per node (average out-degree).
	Density float64
	// DegreeSkew is the maximum total degree divided by the average
	// total degree — the celebrity-concentration measure that separates
	// Twitter-shaped graphs from flat ones.
	DegreeSkew float64
	// Region reports a localized re-solve; RegionEdges is its size.
	Region      bool
	RegionEdges int
	// Degradation is the caller-supplied hint for region re-solves: how
	// badly the region has drifted, as accumulated churn dirt over the
	// region's own hybrid cost mass (the online daemon's drift-tracker
	// ratio). NaN when no hint was provided.
	Degradation float64
}

// ComputeFeatures measures p in one O(n) pass over the degree arrays.
func ComputeFeatures(p Problem) Features {
	g := p.Graph
	n, m := g.NumNodes(), g.NumEdges()
	f := Features{
		Nodes:       n,
		Edges:       m,
		Region:      p.Region != nil,
		RegionEdges: len(p.Region),
		Degradation: math.NaN(),
	}
	if n > 0 {
		f.Density = float64(m) / float64(n)
		maxDeg := 0
		for v := 0; v < n; v++ {
			id := graph.NodeID(v)
			if d := g.OutDegree(id) + g.InDegree(id); d > maxDeg {
				maxDeg = d
			}
		}
		if m > 0 {
			f.DegreeSkew = float64(maxDeg) * float64(n) / float64(2*m)
		}
	}
	return f
}

// Rule maps a feature predicate to a registry solver name. Rules are
// evaluated in order; the first whose predicate holds AND whose solver
// is actually registered wins, so a table may name optional solvers
// (shard) and degrade gracefully when they are not linked in.
type Rule struct {
	// Name labels the rule for OnSelect observers and tests.
	Name string
	// When is the predicate over the problem's features.
	When func(Features) bool
	// Solver is the registry name to run when the rule fires.
	Solver string
	// Why is the one-line human rationale, kept next to the rule so the
	// table stays transparent.
	Why string
}

// Selector feature thresholds — fixed, transparent, and deliberately
// coarse. They partition the space by cost structure, not by predicted
// cost (see DESIGN.md §10).
const (
	// autoHugeEdges is where peak memory starts to matter more than
	// schedule quality: hand off to the O(shard)-memory solver.
	autoHugeEdges = 1 << 18
	// autoSmallEdges is where the CHITCHAT quality reference is cheap
	// enough to always afford.
	autoSmallEdges = 1 << 15
	// autoSkew is the max/avg total-degree ratio above which hub
	// instances get celebrity-sized and CHITCHAT's oracle calls blow up.
	autoSkew = 64
	// autoDegraded is the region dirt/cost ratio above which the region
	// has churned past its own cost mass and deserves the quality
	// reference rather than another cheap patch.
	autoDegraded = 1.0
)

// DefaultRules is the fixed selector table, in evaluation order.
func DefaultRules() []Rule {
	return []Rule{
		{
			Name:   "degraded-region",
			When:   func(f Features) bool { return f.Region && f.Degradation >= autoDegraded },
			Solver: ChitChat,
			Why:    "region churned past its own cost mass; pay for the induced-subgraph quality reference",
		},
		{
			Name:   "region",
			When:   func(f Features) bool { return f.Region },
			Solver: Nosy,
			Why:    "restricted NOSY seeds its dirty set with the region, so work stays proportional to it",
		},
		{
			Name:   "huge",
			When:   func(f Features) bool { return f.Edges >= autoHugeEdges },
			Solver: "shard",
			Why:    "million-edge scale: partition so peak memory is O(shard), not O(graph)",
		},
		{
			Name:   "skewed",
			When:   func(f Features) bool { return f.DegreeSkew >= autoSkew },
			Solver: Nosy,
			Why:    "celebrity-heavy degree distribution blows up oracle instances; NOSY gallops with dirty sets",
		},
		{
			Name:   "small",
			When:   func(f Features) bool { return f.Edges <= autoSmallEdges },
			Solver: ChitChat,
			Why:    "small enough that the O(ln n)-approximation quality reference is affordable",
		},
		{
			Name:   "default",
			When:   func(Features) bool { return true },
			Solver: Nosy,
			Why:    "large flat graphs: the parallel heuristic's per-round cost tracks what changed",
		},
	}
}

// SelectorConfig parameterizes the selector solver.
type SelectorConfig struct {
	// Registry resolves rule solvers; nil means Default.
	Registry *Registry
	// Rules is the decision table; nil means DefaultRules().
	Rules []Rule
	// Options configures the selected solver.
	Options Options
	// Hint, when non-nil, supplies Features.Degradation for a problem —
	// the online daemon wires its drift tracker in here so badly
	// degraded regions get the quality reference.
	Hint func(Problem) float64
	// OnSelect, when non-nil, observes every decision: the measured
	// features and the rule that fired.
	OnSelect func(Features, Rule)
}

// NewSelector returns the feature-based selector solver: per Problem it
// measures cheap structural features and picks the solver named by the
// first matching rule of a fixed transparent table.
func NewSelector(cfg SelectorConfig) Solver { return &selectorSolver{cfg: cfg} }

type selectorSolver struct {
	cfg      SelectorConfig
	progress func(ProgressEvent)
}

func (s *selectorSolver) Name() string { return Auto }

// SupportsRegions implements RegionCapable: the region rules delegate
// to region-capable solvers.
func (s *selectorSolver) SupportsRegions() bool { return true }

// ChainProgress implements ProgressChainer; events arrive labeled with
// the selected solver's name.
func (s *selectorSolver) ChainProgress(fn func(ProgressEvent)) {
	s.progress = chainSinks(s.progress, fn)
}

// Select measures p and returns the winning rule plus its features
// without solving — the decision, exposed for observability and tests.
func (s *selectorSolver) Select(p Problem) (Features, Rule, error) {
	reg := s.cfg.Registry
	if reg == nil {
		reg = Default
	}
	f := ComputeFeatures(p)
	if s.cfg.Hint != nil && f.Region {
		f.Degradation = s.cfg.Hint(p)
	}
	rules := s.cfg.Rules
	if rules == nil {
		rules = DefaultRules()
	}
	for _, rule := range rules {
		if rule.Solver == Auto || !rule.When(f) {
			continue
		}
		if _, err := reg.Get(rule.Solver); err != nil {
			continue // optional solver not linked in: fall through
		}
		return f, rule, nil
	}
	return f, Rule{}, fmt.Errorf("solver %s: no rule matched (and resolved) for %d nodes / %d edges",
		Auto, f.Nodes, f.Edges)
}

func (s *selectorSolver) Solve(ctx context.Context, p Problem) (*Result, error) {
	if err := checkProblem(p); err != nil {
		return nil, err
	}
	f, rule, err := s.Select(p)
	if err != nil {
		return nil, err
	}
	if s.cfg.OnSelect != nil {
		s.cfg.OnSelect(f, rule)
	}
	reg := s.cfg.Registry
	if reg == nil {
		reg = Default
	}
	sv, err := reg.New(rule.Solver, s.cfg.Options)
	if err != nil {
		return nil, fmt.Errorf("solver %s: rule %s: %w", Auto, rule.Name, err)
	}
	if s.progress != nil {
		Observe(sv, s.progress)
	}
	// The result is returned as-is: Report.Solver names the algorithm
	// that actually ran, which is the informative answer.
	return sv.Solve(ctx, p)
}
