package scenario

import (
	"errors"
	"fmt"
	"hash/fnv"
	"reflect"
	"strings"
	"testing"

	"piggyback/internal/graph"
	"piggyback/internal/graphgen"
	"piggyback/internal/telemetry"
	"piggyback/internal/workload"
)

func zooGraph(t *testing.T) (*graph.Graph, *workload.Rates) {
	t.Helper()
	g := graphgen.Social(graphgen.FlickrLike(300, 11))
	return g, workload.LogDegree(g, 5)
}

// traceHash fingerprints an op stream. %.17g round-trips float64, so two
// streams hash equal iff they are byte-identical after decoding.
func traceHash(ops []workload.ChurnOp) uint64 {
	h := fnv.New64a()
	for _, op := range ops {
		fmt.Fprintf(h, "%d %d %d %.17g %.17g\n", op.Kind, op.U, op.V, op.Prod, op.Cons)
	}
	return h.Sum64()
}

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	if r.Len() != 0 {
		t.Fatalf("fresh registry has %d entries", r.Len())
	}
	gen := func(g *graph.Graph, rates *workload.Rates, p Params) []workload.ChurnOp { return nil }
	if err := r.Register("a", gen, Meta{Summary: "s"}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := r.Register("a", gen, Meta{}); !errors.Is(err, ErrDuplicateScenario) {
		t.Fatalf("duplicate Register err = %v, want ErrDuplicateScenario", err)
	}
	if err := r.Register("", gen, Meta{}); err == nil {
		t.Fatal("Register with empty name succeeded")
	}
	if err := r.Register("b", nil, Meta{}); err == nil {
		t.Fatal("Register with nil generator succeeded")
	}
	if _, err := r.Get("nope"); !errors.Is(err, ErrUnknownScenario) {
		t.Fatalf("Get(unknown) err = %v, want ErrUnknownScenario", err)
	}
	if _, err := r.Meta("nope"); !errors.Is(err, ErrUnknownScenario) {
		t.Fatalf("Meta(unknown) err = %v, want ErrUnknownScenario", err)
	}
	m, err := r.Meta("a")
	if err != nil || m.Summary != "s" {
		t.Fatalf("Meta(a) = %+v, %v", m, err)
	}
	if _, err := r.Get("a"); err != nil {
		t.Fatalf("Get(a): %v", err)
	}
	c := r.Clone()
	c.MustRegister("b", gen, Meta{})
	if r.Len() != 1 || c.Len() != 2 {
		t.Fatalf("Clone not independent: orig %d, clone %d", r.Len(), c.Len())
	}
	if got := c.Names(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("Names() = %v", got)
	}
}

func TestDefaultRegistryRoster(t *testing.T) {
	want := []string{Cascade, Diurnal, FlashCrowd, LDBC, Preferential, RegionChurn}
	if got := Default.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Default.Names() = %v, want %v", got, want)
	}
	for _, name := range want {
		m, err := Default.Meta(name)
		if err != nil {
			t.Fatalf("Meta(%s): %v", name, err)
		}
		if m.Summary == "" || m.Stresses == "" {
			t.Fatalf("scenario %s registered without full metadata: %+v", name, m)
		}
	}
}

// pinnedTraceHash is the byte-identity contract: the exact op stream each
// built-in scenario emits for FlickrLike(300, 11)+LogDegree rates at
// Ops=2000 Seed=42. Any change to a generator's draws is a contract break
// and must update the pin deliberately.
var pinnedTraceHash = map[string]uint64{
	Cascade:      0x991cbab2f22d136f,
	Diurnal:      0x9112a12b44ac61f6,
	FlashCrowd:   0x76b41a895476b1a8,
	LDBC:         0xebeb6056a29be912,
	Preferential: 0x059c86a0e1c9c69c,
	RegionChurn:  0xe2629a08854f4433,
}

func TestZooDeterminismAndValidity(t *testing.T) {
	g, r := zooGraph(t)
	p := Params{Ops: 2000, Seed: 42}
	for _, name := range Default.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			ops, err := Default.Generate(name, g, r, p)
			if err != nil {
				t.Fatal(err)
			}
			if len(ops) != p.Ops {
				t.Fatalf("emitted %d ops, want %d", len(ops), p.Ops)
			}
			again, _ := Default.Generate(name, g, r, p)
			if !reflect.DeepEqual(ops, again) {
				t.Fatal("same seed produced different op streams")
			}
			if h := traceHash(ops); h != pinnedTraceHash[name] {
				t.Errorf("trace hash %#x, pinned %#x — generator draws changed", h, pinnedTraceHash[name])
			}
			other, _ := Default.Generate(name, g, r, Params{Ops: p.Ops, Seed: 43})
			if reflect.DeepEqual(ops, other) {
				t.Error("different seeds produced identical op streams")
			}
			// Every op must be valid at its position; Materialize is the
			// reference replayer and errors on the first violation.
			mg, mr, err := Materialize(g, r, ops)
			if err != nil {
				t.Fatalf("invalid trace: %v", err)
			}
			if mg.NumNodes() != g.NumNodes() {
				t.Fatalf("Materialize changed node count: %d → %d", g.NumNodes(), mg.NumNodes())
			}
			if len(mr.Prod) != g.NumNodes() || len(mr.Cons) != g.NumNodes() {
				t.Fatalf("Materialize rates sized %d/%d", len(mr.Prod), len(mr.Cons))
			}
			for u := 0; u < mg.NumNodes(); u++ {
				if !(mr.Prod[u] >= 0) || !(mr.Cons[u] >= 0) {
					t.Fatalf("node %d has invalid final rates %v/%v", u, mr.Prod[u], mr.Cons[u])
				}
			}
		})
	}
}

func TestZooEmptyAndTinyInputs(t *testing.T) {
	g, r := zooGraph(t)
	tiny := graphgen.Social(graphgen.FlickrLike(3, 1))
	tinyR := workload.LogDegree(tiny, 5)
	for _, name := range Default.Names() {
		if ops, err := Default.Generate(name, g, r, Params{Ops: 0, Seed: 1}); err != nil || len(ops) != 0 {
			t.Errorf("%s: Ops=0 gave %d ops, err %v", name, len(ops), err)
		}
		if ops, err := Default.Generate(name, g, r, Params{Ops: -5, Seed: 1}); err != nil || len(ops) != 0 {
			t.Errorf("%s: Ops<0 gave %d ops, err %v", name, len(ops), err)
		}
		// Tiny graphs must not hang or panic; whatever they emit must
		// still replay cleanly.
		ops, err := Default.Generate(name, tiny, tinyR, Params{Ops: 50, Seed: 1})
		if err != nil {
			t.Errorf("%s tiny: %v", name, err)
			continue
		}
		if _, _, err := Materialize(tiny, tinyR, ops); err != nil {
			t.Errorf("%s tiny: invalid trace: %v", name, err)
		}
	}
}

func TestZooTelemetry(t *testing.T) {
	g, r := zooGraph(t)
	tr := telemetry.NewTracer(7)
	reg := telemetry.NewRegistry()
	bare, _ := Default.Generate(FlashCrowd, g, r, Params{Ops: 600, Seed: 9})
	ops, err := Default.Generate(FlashCrowd, g, r, Params{Ops: 600, Seed: 9, Tracer: tr, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ops, bare) {
		t.Fatal("attaching telemetry changed the op stream")
	}
	tree := tr.Tree()
	for _, want := range []string{"scenario/flashcrowd", "phase/calm", "phase/spike", "phase/decay"} {
		if !strings.Contains(tree, want) {
			t.Errorf("span tree missing %q:\n%s", want, tree)
		}
	}
	snap := reg.Snapshot().String()
	if !strings.Contains(snap, "scenario_ops_total") || !strings.Contains(snap, `scenario="flashcrowd"`) {
		t.Errorf("snapshot missing scenario series:\n%s", snap)
	}
	if !strings.Contains(snap, "scenario_phase_ops_total") || !strings.Contains(snap, `phase="spike"`) {
		t.Errorf("snapshot missing phase series:\n%s", snap)
	}
}

func TestMaterializeRejectsInvalidOps(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{From: 0, To: 1}})
	r := &workload.Rates{Prod: []float64{1, 1, 1}, Cons: []float64{1, 1, 1}}
	cases := []struct {
		name string
		op   workload.ChurnOp
	}{
		{"self-loop add", workload.ChurnOp{Kind: workload.OpAdd, U: 2, V: 2}},
		{"duplicate add", workload.ChurnOp{Kind: workload.OpAdd, U: 0, V: 1}},
		{"absent remove", workload.ChurnOp{Kind: workload.OpRemove, U: 1, V: 2}},
		{"out of range", workload.ChurnOp{Kind: workload.OpAdd, U: 0, V: 9}},
		{"negative rate", workload.ChurnOp{Kind: workload.OpRates, U: 0, Prod: -1, Cons: 1}},
		{"unknown kind", workload.ChurnOp{Kind: 99, U: 0, V: 1}},
	}
	for _, tc := range cases {
		if _, _, err := Materialize(g, r, []workload.ChurnOp{tc.op}); err == nil {
			t.Errorf("%s: Materialize accepted invalid op", tc.name)
		}
	}
	// And the happy path: add then remove then re-add of the same edge.
	ops := []workload.ChurnOp{
		{Kind: workload.OpAdd, U: 1, V: 2},
		{Kind: workload.OpRemove, U: 1, V: 2},
		{Kind: workload.OpAdd, U: 1, V: 2},
		{Kind: workload.OpRates, U: 2, Prod: 0, Cons: 3.5},
	}
	mg, mr, err := Materialize(g, r, ops)
	if err != nil {
		t.Fatalf("valid replay failed: %v", err)
	}
	if mg.NumEdges() != 2 {
		t.Fatalf("final graph has %d edges, want 2", mg.NumEdges())
	}
	if mr.Prod[2] != 0 || mr.Cons[2] != 3.5 {
		t.Fatalf("final rates for node 2 = %v/%v", mr.Prod[2], mr.Cons[2])
	}
}

func TestFlashCrowdSpikesCelebrity(t *testing.T) {
	g, r := zooGraph(t)
	ops, err := Default.Generate(FlashCrowd, g, r, Params{Ops: 2000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	c := hottestProducer(g)
	_, mr, err := Materialize(g, r, ops[:len(ops)/2])
	if err != nil {
		t.Fatal(err)
	}
	// Mid-trace (end of spike phase) the celebrity's rates must sit far
	// above base — the ~1000× ramp is 1.8^12 ≈ 1157×.
	if mr.Prod[c] < 500*r.Prod[c] || mr.Cons[c] < 500*r.Cons[c] {
		t.Fatalf("celebrity %d mid-trace rates %v/%v, base %v/%v — no spike",
			c, mr.Prod[c], mr.Cons[c], r.Prod[c], r.Cons[c])
	}
	// By the end of the decay phase they are back within 2× of base.
	_, fr, err := Materialize(g, r, ops)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Prod[c] > 2*r.Prod[c] || fr.Cons[c] > 2*r.Cons[c] {
		t.Fatalf("celebrity %d final rates %v/%v did not decay (base %v/%v)",
			c, fr.Prod[c], fr.Cons[c], r.Prod[c], r.Cons[c])
	}
}
