// Package partition models data partitioning in the prototype (§4.3):
// user views are mapped to data-store servers by hashing the user id, and
// batching lets one message serve every view a request touches on the
// same server. The package computes the placement-aware predicted cost
// (Figure 7) and per-server load statistics (Figure 8).
package partition

import (
	"piggyback/internal/core"
	"piggyback/internal/graph"
	"piggyback/internal/sampling"
	"piggyback/internal/workload"
)

// Assignment maps each user view to a server.
type Assignment struct {
	Servers int
	of      []int32
}

// Hash assigns views to servers by hashing the user id — the "simple
// partitioning approach that is common in practical data store layers"
// used by the prototype. seed varies the layout across repetitions.
func Hash(nodes, servers int, seed int64) Assignment {
	if servers < 1 {
		servers = 1
	}
	a := Assignment{Servers: servers, of: make([]int32, nodes)}
	for u := 0; u < nodes; u++ {
		a.of[u] = int32(splitmix64(uint64(u)^uint64(seed)*0x9e3779b97f4a7c15) % uint64(servers))
	}
	return a
}

// Of returns the server hosting u's view.
func (a Assignment) Of(u graph.NodeID) int32 { return a.of[u] }

// Groups returns the node ids of every server's views, each list in
// ascending id order — the shape subgraph extraction (graph.Induced)
// wants.
func (a Assignment) Groups() [][]graph.NodeID {
	groups := make([][]graph.NodeID, a.Servers)
	counts := make([]int, a.Servers)
	for _, s := range a.of {
		counts[s]++
	}
	for s := range groups {
		groups[s] = make([]graph.NodeID, 0, counts[s])
	}
	for u, s := range a.of {
		groups[s] = append(groups[s], graph.NodeID(u))
	}
	return groups
}

// CutEdges counts the edges of g whose endpoints live on different
// servers — the cross-shard traffic a placement induces.
func (a Assignment) CutEdges(g *graph.Graph) int {
	cut := 0
	for u := 0; u < g.NumNodes(); u++ {
		su := a.of[u]
		for _, v := range g.OutNeighbors(graph.NodeID(u)) {
			if a.of[v] != su {
				cut++
			}
		}
	}
	return cut
}

// Locality assigns views to servers by graph structure instead of
// hashing: seed one region per server with a random-walk hot node
// (sampling.WalkSeeds), grow the regions breadth-first so each server
// gets a connected neighborhood, then run a few label-propagation
// refinement rounds that move nodes to their majority-neighbor server
// under a balance cap. The whole pipeline is sequential and iterates
// nodes, servers, and CSR adjacency in fixed order, so the assignment is
// deterministic given (g, servers, seed) — a requirement for the sharded
// solver's byte-identical schedules.
func Locality(g *graph.Graph, servers int, seed int64) Assignment {
	if servers < 1 {
		servers = 1
	}
	n := g.NumNodes()
	a := Assignment{Servers: servers, of: make([]int32, n)}
	if n == 0 {
		return a
	}
	for i := range a.of {
		a.of[i] = -1
	}
	load := make([]int, servers)
	// Balance cap: 25% slack over perfect balance, enforced both while
	// growing (a small-world hub seed would otherwise swallow the whole
	// graph in two BFS layers) and while refining.
	maxLoad := (n + servers - 1) / servers
	maxLoad += maxLoad / 4

	// Seed + grow: multi-source BFS, one source per server. Within each
	// BFS layer the servers advance in ascending id order, so a node
	// reachable from two frontiers at the same depth goes to the lower
	// server id. A server at its cap stops claiming; its unclaimed
	// neighbors stay available to later layers of other servers.
	seeds := sampling.WalkSeeds(g, servers, seed)
	frontiers := make([][]graph.NodeID, servers)
	for i, s := range seeds {
		a.of[s] = int32(i)
		load[i]++
		frontiers[i] = append(frontiers[i], s)
	}
	for {
		grew := false
		for s := 0; s < servers; s++ {
			cur := frontiers[s]
			if len(cur) == 0 {
				continue
			}
			var next []graph.NodeID
			for _, v := range cur {
				if load[s] >= maxLoad {
					break
				}
				for _, u := range g.OutNeighbors(v) {
					if a.of[u] < 0 && load[s] < maxLoad {
						a.of[u] = int32(s)
						load[s]++
						next = append(next, u)
					}
				}
				for _, u := range g.InNeighbors(v) {
					if a.of[u] < 0 && load[s] < maxLoad {
						a.of[u] = int32(s)
						load[s]++
						next = append(next, u)
					}
				}
			}
			frontiers[s] = next
			if len(next) > 0 {
				grew = true
			}
		}
		if !grew {
			break
		}
	}
	// Isolated or unreached nodes (no seed in their component): give each
	// to the currently lightest server, lowest id first.
	for u := 0; u < n; u++ {
		if a.of[u] >= 0 {
			continue
		}
		best := 0
		for s := 1; s < servers; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		a.of[u] = int32(best)
		load[best]++
	}

	// Refine: label propagation under the same balance cap. A node moves
	// to the server holding a strict majority of its neighbors
	// (undirected view) if that server has headroom; ties keep the
	// current server, then prefer the lower id. Sequential node order ⇒
	// deterministic.
	stamp := make([]int64, servers)
	count := make([]int, servers)
	var gen int64
	const rounds = 8
	for r := 0; r < rounds; r++ {
		moved := 0
		for u := 0; u < n; u++ {
			uid := graph.NodeID(u)
			gen++
			tally := func(v graph.NodeID) {
				s := a.of[v]
				if stamp[s] != gen {
					stamp[s] = gen
					count[s] = 0
				}
				count[s]++
			}
			for _, v := range g.OutNeighbors(uid) {
				tally(v)
			}
			for _, v := range g.InNeighbors(uid) {
				tally(v)
			}
			curS := a.of[u]
			curCount := 0
			if stamp[curS] == gen {
				curCount = count[curS]
			}
			best, bestCount := curS, curCount
			for s := 0; s < servers; s++ {
				if stamp[int32(s)] != gen || int32(s) == curS {
					continue
				}
				if count[s] > bestCount && load[s] < maxLoad {
					best, bestCount = int32(s), count[s]
				}
			}
			if best != curS {
				load[curS]--
				load[best]++
				a.of[u] = best
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
	return a
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// counterSet counts distinct servers touched by one request using a
// generation-stamped array — O(1) reset between requests.
type counterSet struct {
	stamp []int64
	gen   int64
	n     int
}

func newCounterSet(servers int) *counterSet {
	return &counterSet{stamp: make([]int64, servers)}
}

func (c *counterSet) reset() { c.gen++; c.n = 0 }

func (c *counterSet) add(s int32) {
	if c.stamp[s] != c.gen {
		c.stamp[s] = c.gen
		c.n++
	}
}

// Cost returns the placement-aware message cost of schedule s: for each
// user, an update touches the distinct servers hosting its own view and
// its push set, and a query the distinct servers hosting its own view and
// its pull set; batching merges same-server touches into one message.
func Cost(s *core.Schedule, r *workload.Rates, a Assignment) float64 {
	g := s.Graph()
	cs := newCounterSet(a.Servers)
	total := 0.0
	for u := 0; u < g.NumNodes(); u++ {
		uid := graph.NodeID(u)

		cs.reset()
		cs.add(a.Of(uid))
		lo, hi := g.OutEdgeRange(uid)
		targets := g.OutNeighbors(uid)
		for e := lo; e < hi; e++ {
			if s.IsPush(e) {
				cs.add(a.Of(targets[e-lo]))
			}
		}
		total += r.Prod[u] * float64(cs.n)

		cs.reset()
		cs.add(a.Of(uid))
		in := g.InNeighbors(uid)
		ids := g.InEdgeIDs(uid)
		for i, e := range ids {
			if s.IsPull(e) {
				cs.add(a.Of(in[i]))
			}
		}
		total += r.Cons[u] * float64(cs.n)
	}
	return total
}

// NormalizedThroughput returns predicted throughput under placement,
// normalized by the single-server optimum: cost(1 server)/cost(a). With
// one server every request is one message, so the normalizer is
// Σ rp(u) + rc(u); the result is 1 at one server and decreases as
// requests fan out over more servers (Figure 7's left axis).
func NormalizedThroughput(s *core.Schedule, r *workload.Rates, a Assignment) float64 {
	oneServer := 0.0
	for u := range r.Prod {
		oneServer += r.Prod[u] + r.Cons[u]
	}
	c := Cost(s, r, a)
	if c == 0 {
		return 0
	}
	return oneServer / c
}

// QueryLoad returns the query-message rate arriving at each server: for
// every user u and each distinct server its queries touch, that server
// receives rc(u). This is the load metric of Figure 8.
func QueryLoad(s *core.Schedule, r *workload.Rates, a Assignment) []float64 {
	g := s.Graph()
	load := make([]float64, a.Servers)
	cs := newCounterSet(a.Servers)
	touched := make([]int32, 0, 16)
	for u := 0; u < g.NumNodes(); u++ {
		uid := graph.NodeID(u)
		cs.reset()
		touched = touched[:0]
		add := func(sv int32) {
			if cs.stamp[sv] != cs.gen {
				cs.stamp[sv] = cs.gen
				touched = append(touched, sv)
			}
		}
		add(a.Of(uid))
		in := g.InNeighbors(uid)
		ids := g.InEdgeIDs(uid)
		for i, e := range ids {
			if s.IsPull(e) {
				add(a.Of(in[i]))
			}
		}
		for _, sv := range touched {
			load[sv] += r.Cons[u]
		}
	}
	return load
}
