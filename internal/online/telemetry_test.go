package online

import (
	"testing"

	"piggyback/internal/chitchat"
	"piggyback/internal/fault"
	"piggyback/internal/graphgen"
	"piggyback/internal/nosy"
	"piggyback/internal/solver"
	"piggyback/internal/telemetry"
	"piggyback/internal/workload"
)

// telemetryRun drives the breaker-quarantine scenario (panicking primary,
// chitchat fallback) with full telemetry attached and returns the three
// deterministic artifacts: the span tree, the non-timing metric
// snapshot, and the breaker event stream.
func telemetryRun(t *testing.T, workers int) (tree, snap string, events []string, st Stats) {
	t.Helper()
	g := graphgen.Social(graphgen.FlickrLike(scaled(400, 250), 7))
	base := workload.LogDegree(g, 5)
	r := freshRates(g, base)
	init := chitchat.Solve(g, r, chitchat.Config{})
	trace := workload.GenerateChurn(g, base, scaled(2500, 1200), workload.ChurnConfig{Seed: 7})

	reg := telemetry.NewRegistry()
	tr := telemetry.NewTracer(7)
	var ev telemetry.EventLog
	primary := solver.Chain(solver.NewNosy(nosy.Config{Workers: workers}), fault.SolverPanics(1, 4))
	d, err := New(init, r, Config{
		Regional:          primary,
		Fallback:          "chitchat",
		BreakerThreshold:  2,
		BreakerProbeEvery: 2,
		DriftThreshold:    0.02,
		CheckEvery:        8,
		BudgetFraction:    -1,
		Metrics:           reg,
		Tracer:            tr,
		Events:            &ev,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ApplyTrace(trace); err != nil {
		t.Fatalf("trace failed: %v", err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("final schedule invalid: %v", err)
	}
	return tr.Tree(), reg.Snapshot().NonTiming().String(), ev.Attrs("breaker"), d.Stats()
}

// Same seed, same fault plan, same configuration: two runs must produce
// a byte-identical span tree, an identical non-timing metric snapshot,
// and an identical breaker event stream — and the artifacts must not
// depend on the solver's worker count either.
func TestDaemonTelemetryDeterministic(t *testing.T) {
	tree1, snap1, ev1, _ := telemetryRun(t, 1)
	tree2, snap2, ev2, _ := telemetryRun(t, 1)
	if tree1 != tree2 {
		t.Fatalf("span tree differs across identical runs:\n--- run 1\n%s\n--- run 2\n%s", tree1, tree2)
	}
	if snap1 != snap2 {
		t.Fatalf("non-timing snapshot differs across identical runs:\n--- run 1\n%s\n--- run 2\n%s", snap1, snap2)
	}
	if len(ev1) != len(ev2) {
		t.Fatalf("event streams differ: %v vs %v", ev1, ev2)
	}
	tree4, snap4, ev4, _ := telemetryRun(t, 4)
	if tree1 != tree4 {
		t.Fatalf("span tree differs between Workers=1 and Workers=4:\n--- w1\n%s\n--- w4\n%s", tree1, tree4)
	}
	if snap1 != snap4 {
		t.Fatalf("non-timing snapshot differs between Workers=1 and Workers=4:\n--- w1\n%s\n--- w4\n%s", snap1, snap4)
	}
	for i := range ev1 {
		if ev1[i] != ev4[i] {
			t.Fatalf("event %d differs between worker counts: %q vs %q", i, ev1[i], ev4[i])
		}
	}
	if tree1 == "" {
		t.Fatal("no spans recorded — tracer was not wired through the daemon")
	}
}

// The breaker's exact transition sequence under the pinned fault plan:
// two panics trip it, the first probe panics and re-opens it, the
// second probe succeeds and closes it. The EventLog pins the order, not
// just the counts.
func TestDaemonBreakerTransitionSequence(t *testing.T) {
	_, _, events, st := telemetryRun(t, 1)
	want := []string{
		"closed->open",
		"open->half-open",
		"half-open->open",
		"open->half-open",
		"half-open->closed",
	}
	if len(events) != len(want) {
		t.Fatalf("breaker transitions = %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("transition %d = %q, want %q (full stream %v)", i, events[i], want[i], events)
		}
	}
	if st.Breaker == nil || st.Breaker.Open {
		t.Fatalf("breaker did not settle closed: %+v", st.Breaker)
	}
}

// The registry mirror of Stats must agree with Stats itself, and every
// online_* series must be registered (at zero) from construction so a
// scrape between boot and the first op still sees the full inventory.
func TestDaemonMetricsMirrorStats(t *testing.T) {
	g := graphgen.Social(graphgen.FlickrLike(200, 5))
	base := workload.LogDegree(g, 5)
	r := freshRates(g, base)
	init := chitchat.Solve(g, r, chitchat.Config{})

	reg := telemetry.NewRegistry()
	d, err := New(init, r, Config{Metrics: reg, DriftThreshold: 0.05, CheckEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	for _, name := range []string{
		"online_ops_total", "online_adds_total", "online_removes_total",
		"online_rate_updates_total", "online_rescues_total",
		"online_resolves_total", "online_reverted_total",
		"online_solver_errors_total", "online_region_edges_total",
		"online_boundary_repairs_total", "online_breaker_transitions_total",
		"online_cost", "online_drift", "online_lower_bound",
		"online_breaker_state",
	} {
		if _, ok := snap.Get(name); !ok {
			t.Fatalf("series %s not registered at construction:\n%s", name, snap.String())
		}
	}
	m, _ := snap.Get("online_cost")
	if m.Value != d.Cost() {
		t.Fatalf("online_cost = %v at boot, want %v", m.Value, d.Cost())
	}

	trace := workload.GenerateChurn(g, base, 600, workload.ChurnConfig{Seed: 3})
	if err := d.ApplyTrace(trace); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	snap = reg.Snapshot()
	for name, want := range map[string]int{
		"online_ops_total":          st.Ops,
		"online_adds_total":         st.Adds,
		"online_removes_total":      st.Removes,
		"online_rate_updates_total": st.RateUpdates,
		"online_rescues_total":      st.Rescues,
		"online_resolves_total":     st.Resolves,
		"online_reverted_total":     st.Reverted,
		"online_region_edges_total": st.RegionEdges,
	} {
		m, ok := snap.Get(name)
		if !ok || int(m.Value) != want {
			t.Fatalf("%s = %+v, want %d", name, m, want)
		}
	}
	m, _ = snap.Get("online_cost")
	if m.Value != d.Cost() {
		t.Fatalf("online_cost = %v, want %v", m.Value, d.Cost())
	}
	m, _ = snap.Get("online_drift")
	if m.Value != d.Drift() {
		t.Fatalf("online_drift = %v, want %v", m.Value, d.Drift())
	}
}
