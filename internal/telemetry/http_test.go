package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops_total").Add(7)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "ops_total 7") {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	if code, body := get("/metrics.txt"); code != 200 || !strings.Contains(body, "ops_total 7") {
		t.Fatalf("/metrics.txt = %d %q", code, body)
	}
	if code, body := get("/debug/vars"); code != 200 || !strings.Contains(body, "memstats") {
		t.Fatalf("/debug/vars = %d (want expvar json)", code)
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
	if code, _ := get("/nope"); code != 404 {
		t.Fatalf("/nope = %d, want 404", code)
	}
	if code, body := get("/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Fatalf("index = %d %q", code, body)
	}
}

func TestServe(t *testing.T) {
	r := NewRegistry()
	r.Gauge("piggyback_up").Set(1)
	ln, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer ln.Close()
	resp, err := http.Get("http://" + ln.Addr().String() + "/metrics")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "piggyback_up 1") {
		t.Fatalf("metrics body = %q", body)
	}
}
