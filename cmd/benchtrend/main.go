// Command benchtrend merges the per-PR bench artifacts
// (BENCH_chitchat.json, BENCH_nosy.json — produced by cmd/benchjson and
// tracked in the repo) into a single trajectory table, so the solver
// performance across PRs is one artifact instead of an archaeology
// exercise.
//
// By default each input file is one row. With -git, the row set is the
// first-parent commit history of the input files: every commit that
// touched any of them contributes a row with the benchmarks parsed from
// the files AS OF that commit — the cross-PR trajectory.
//
//	go run ./cmd/benchtrend -git -o BENCH_trend.md -json BENCH_trend.json \
//	    BENCH_chitchat.json BENCH_nosy.json BENCH_zoo.json
//
// With -gate <pct> (repo-relative inputs, run from the repo root), the
// tool additionally compares the working-tree numbers of a pinned set
// of benchmarks against the committed HEAD baselines and exits with
// code 3 when any of them is more than <pct> percent slower — the CI
// regression gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"reflect"
	"sort"
	"strings"
)

// entry mirrors cmd/benchjson's per-benchmark record. Metrics carries
// the custom b.ReportMetric values (cost, resolves, improvement, …) so
// behavioral artifacts like BENCH_zoo.json merge into the trajectory,
// not just timing ones.
type entry struct {
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	SecPerOp   float64            `json:"sec_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// report mirrors cmd/benchjson's document shape.
type report struct {
	CPU        string           `json:"cpu,omitempty"`
	Benchmarks map[string]entry `json:"benchmarks"`
}

// source is one row of the trajectory: a file or a commit.
type source struct {
	Label      string           `json:"label"`
	Benchmarks map[string]entry `json:"benchmarks"`
}

func main() {
	useGit := flag.Bool("git", false, "one row per first-parent commit touching the inputs (needs full clone history)")
	out := flag.String("o", "", "markdown output path (default: stdout)")
	jsonOut := flag.String("json", "", "also write the merged table as JSON to this path")
	gatePct := flag.Float64("gate", 15, "fail (exit 3) if a pinned benchmark is more than this percent slower than its HEAD baseline; negative disables")
	flag.Parse()
	files := flag.Args()
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "benchtrend: no input files (e.g. BENCH_chitchat.json BENCH_nosy.json)")
		os.Exit(2)
	}

	var sources []source
	var err error
	if *useGit {
		sources, err = gitSources(files)
	} else {
		sources, err = fileSources(files)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtrend:", err)
		os.Exit(1)
	}
	if len(sources) == 0 {
		fmt.Fprintln(os.Stderr, "benchtrend: no benchmark data found")
		os.Exit(1)
	}

	md := renderMarkdown(sources)
	if *out == "" {
		os.Stdout.WriteString(md)
	} else if err := os.WriteFile(*out, []byte(md), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchtrend:", err)
		os.Exit(1)
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(struct {
			Sources []source `json:"sources"`
		}{sources}, "", "  ")
		if err == nil {
			data = append(data, '\n')
			err = os.WriteFile(*jsonOut, data, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtrend:", err)
			os.Exit(1)
		}
	}

	if *gatePct >= 0 {
		baseline, ok := headBenchmarks(files)
		if !ok {
			fmt.Fprintln(os.Stderr, "benchtrend: no HEAD baselines readable; regression gate skipped")
			return
		}
		current := map[string]entry{}
		if wt, err := fileSources(files); err == nil {
			for _, s := range wt {
				for name, e := range s.Benchmarks {
					current[name] = e
				}
			}
		}
		violations := gate(baseline, current, gatedBenchmarks, *gatePct)
		if len(violations) == 0 {
			fmt.Fprintf(os.Stderr, "benchtrend: regression gate clean (threshold %.0f%%)\n", *gatePct)
			return
		}
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "benchtrend: REGRESSION %s: %.4gs/op vs baseline %.4gs/op (+%.1f%% > %.0f%%)\n",
				v.Name, v.Current, v.Baseline, v.Pct, *gatePct)
		}
		os.Exit(3)
	}
}

// gatedBenchmarks is the pinned regression-gate set: one representative
// per solver family whose BENCH artifact CI regenerates.
var gatedBenchmarks = []string{
	"BenchmarkChitChatWorkers1",
	"BenchmarkNosyWorkers1",
	"BenchmarkShardSolve1M",
}

// gateViolation is one pinned benchmark slower than the gate allows.
type gateViolation struct {
	Name     string
	Baseline float64 // sec/op at HEAD
	Current  float64 // sec/op in the working tree
	Pct      float64 // percent slower than baseline
}

// gate compares the current numbers of the pinned benchmarks against
// the baseline and returns the ones more than pct percent slower.
// Benchmarks absent from either side (or with a degenerate baseline)
// are skipped: the gate guards known numbers, it does not demand them.
func gate(baseline, current map[string]entry, pinned []string, pct float64) []gateViolation {
	var out []gateViolation
	for _, name := range pinned {
		base, okB := baseline[name]
		cur, okC := current[name]
		if !okB || !okC || base.SecPerOp <= 0 {
			continue
		}
		slower := (cur.SecPerOp/base.SecPerOp - 1) * 100
		if slower > pct {
			out = append(out, gateViolation{Name: name, Baseline: base.SecPerOp, Current: cur.SecPerOp, Pct: slower})
		}
	}
	return out
}

// headBenchmarks merges the HEAD-committed versions of the input files
// into one baseline map. ok is false when none of them is readable from
// git (not a repo, or all files untracked).
func headBenchmarks(files []string) (map[string]entry, bool) {
	merged := map[string]entry{}
	any := false
	for _, f := range files {
		blob, err := exec.Command("git", "show", "HEAD:"+f).Output()
		if err != nil {
			continue
		}
		var rep report
		if json.Unmarshal(blob, &rep) != nil {
			continue
		}
		any = true
		for name, e := range rep.Benchmarks {
			merged[name] = e
		}
	}
	return merged, any
}

// fileSources reads each input file as one row.
func fileSources(files []string) ([]source, error) {
	var out []source
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		var rep report
		if err := json.Unmarshal(data, &rep); err != nil {
			return nil, fmt.Errorf("%s: %w", f, err)
		}
		out = append(out, source{Label: f, Benchmarks: rep.Benchmarks})
	}
	return out, nil
}

// gitSources walks the first-parent history of the input files oldest
// first and parses each file as of each commit that touched any of them.
func gitSources(files []string) ([]source, error) {
	args := append([]string{"log", "--first-parent", "--reverse",
		"--format=%H\t%h %s", "--"}, files...)
	raw, err := exec.Command("git", args...).Output()
	if err != nil {
		return nil, fmt.Errorf("git log: %w", err)
	}
	var out []source
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		hash, label, ok := strings.Cut(line, "\t")
		if !ok {
			continue
		}
		merged := map[string]entry{}
		for _, f := range files {
			blob, err := exec.Command("git", "show", hash+":"+f).Output()
			if err != nil {
				continue // file did not exist at this commit
			}
			var rep report
			if json.Unmarshal(blob, &rep) != nil {
				continue
			}
			for name, e := range rep.Benchmarks {
				merged[name] = e
			}
		}
		if len(merged) > 0 {
			if runes := []rune(label); len(runes) > 60 {
				label = string(runes[:60]) + "…"
			}
			out = append(out, source{Label: label, Benchmarks: merged})
		}
	}
	// Append the working tree as a final row when it differs from HEAD —
	// in CI the bench steps regenerate the files before this runs, so
	// the fresh numbers become the trajectory's newest point.
	if wt, err := fileSources(files); err == nil {
		merged := map[string]entry{}
		for _, s := range wt {
			for name, e := range s.Benchmarks {
				merged[name] = e
			}
		}
		if len(out) == 0 || !sameBenchmarks(out[len(out)-1].Benchmarks, merged) {
			out = append(out, source{Label: "(working tree)", Benchmarks: merged})
		}
	}
	return out, nil
}

// sameBenchmarks reports whether two benchmark maps are identical.
// DeepEqual because entry holds a metrics map.
func sameBenchmarks(a, b map[string]entry) bool {
	return reflect.DeepEqual(a, b)
}

// renderMarkdown lays the trajectory out as one markdown table: one row
// per source, one column per benchmark (union, sorted) holding seconds
// per op, then one "bench:metric" column per reported custom metric
// (cost, resolves, …) so behavioral artifacts trend alongside timing.
func renderMarkdown(sources []source) string {
	names := map[string]bool{}
	metricCols := map[string]bool{} // "BenchmarkName:metric"
	for _, s := range sources {
		for n, e := range s.Benchmarks {
			names[n] = true
			for m := range e.Metrics {
				metricCols[n+":"+m] = true
			}
		}
	}
	cols := make([]string, 0, len(names))
	for n := range names {
		cols = append(cols, n)
	}
	sort.Strings(cols)
	mcols := make([]string, 0, len(metricCols))
	for c := range metricCols {
		mcols = append(mcols, c)
	}
	sort.Strings(mcols)

	var b strings.Builder
	b.WriteString("# Solver benchmark trajectory\n\n")
	b.WriteString("Seconds per op (plain columns) and reported metrics (bench:metric columns); blank = absent at that point.\n\n")
	b.WriteString("| source |")
	for _, c := range cols {
		fmt.Fprintf(&b, " %s |", strings.TrimPrefix(c, "Benchmark"))
	}
	for _, c := range mcols {
		fmt.Fprintf(&b, " %s |", strings.TrimPrefix(c, "Benchmark"))
	}
	b.WriteString("\n|---|")
	for i := 0; i < len(cols)+len(mcols); i++ {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, s := range sources {
		fmt.Fprintf(&b, "| %s |", strings.ReplaceAll(s.Label, "|", "\\|"))
		for _, c := range cols {
			if e, ok := s.Benchmarks[c]; ok {
				fmt.Fprintf(&b, " %.4g |", e.SecPerOp)
			} else {
				b.WriteString("  |")
			}
		}
		for _, c := range mcols {
			name, metric, _ := strings.Cut(c, ":")
			if v, ok := s.Benchmarks[name].Metrics[metric]; ok {
				fmt.Fprintf(&b, " %.4g |", v)
			} else {
				b.WriteString("  |")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
