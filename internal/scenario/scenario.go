// Package scenario is the adversarial workload zoo: a named registry of
// deterministic, seed-replayable churn-trace generators that stress the
// hybrid push/pull schedule exactly where its optimizations are weakest.
//
// Every number in the repo used to be pinned to one Flickr-like preset
// plus stationary preferential-attachment churn
// (workload.GenerateChurn). The paper's own evaluation (Twitter, Flickr
// and Yahoo! traces) and the SIGMOD 2014 programming-contest analysis of
// the LDBC social-network graph both argue that the interesting regime
// is non-stationary: skewed, bursty, correlated. Each generator here is
// adversarial BY CONSTRUCTION — it manufactures a specific stress
// (a celebrity rate spike, a viral cascade confined to one partition
// region, region-correlated churn bursts) instead of hoping a sampled
// trace happens to contain one — and emits the existing
// workload.ChurnOp stream, so the online daemon, cmd/loadgen and
// cmd/experiments consume zoo traces unchanged.
//
// Determinism is a hard contract, mirrored from the solver registry's
// consumers: the same (graph, rates, Params.Seed) yields a byte-identical
// op stream, every op is valid at its position (no duplicate adds, no
// removes of absent edges, finite non-negative rates), and generators
// consult neither time nor global state. The acceptance suite leans on
// this to pin the daemon's accept/revert behavior per scenario.
package scenario

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"piggyback/internal/graph"
	"piggyback/internal/telemetry"
	"piggyback/internal/workload"
)

// Params sizes one trace generation. The zero value of the optional
// fields disables them.
type Params struct {
	// Ops is the trace length; <= 0 yields an empty trace.
	Ops int
	// Seed drives every random choice. Same seed, same stream.
	Seed int64
	// Tracer, when non-nil, records one span per scenario with one child
	// span per phase (calm/spike/decay, ...), so a zoo run's structure
	// shows up in the same deterministic span tree as the daemon's
	// re-solves.
	Tracer *telemetry.Tracer
	// Metrics, when non-nil, books scenario_ops_total and
	// scenario_phase_ops_total{scenario,phase} series while generating.
	Metrics *telemetry.Registry
}

// Generator synthesizes a churn trace against the live edge set that
// starts as g under rates r. Implementations must not retain or mutate
// g or r.
type Generator func(g *graph.Graph, r *workload.Rates, p Params) []workload.ChurnOp

// Meta is the per-entry registry metadata declared at registration.
type Meta struct {
	// Summary is the one-line description the zoo table prints.
	Summary string
	// Stresses names the schedule weakness the scenario targets.
	Stresses string
}

// ErrUnknownScenario is wrapped by Get for names nobody registered.
var ErrUnknownScenario = errors.New("scenario: unknown scenario")

// ErrDuplicateScenario is wrapped by Register when the name is taken.
var ErrDuplicateScenario = errors.New("scenario: duplicate registration")

type entry struct {
	gen  Generator
	meta Meta
}

// Registry maps scenario names to generators plus metadata — a
// first-class value like solver.Registry, so tests build private ones
// and Clone derives scratch copies. All methods are safe for concurrent
// use. The zero value is NOT ready; use NewRegistry (or Clone).
type Registry struct {
	mu      sync.RWMutex
	entries map[string]entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: map[string]entry{}}
}

// Default is the process-global registry the built-in scenarios register
// into at init time.
var Default = NewRegistry()

// Register makes a generator available under name with its metadata.
// It returns an error wrapping ErrDuplicateScenario when the name is
// taken, and a plain error on an empty name or nil generator.
func (r *Registry) Register(name string, gen Generator, m Meta) error {
	if name == "" || gen == nil {
		return errors.New("scenario: Register with empty name or nil generator")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[name]; dup {
		return fmt.Errorf("%w of %q", ErrDuplicateScenario, name)
	}
	r.entries[name] = entry{gen: gen, meta: m}
	return nil
}

// MustRegister is Register that panics on error — the init-time path.
func (r *Registry) MustRegister(name string, gen Generator, m Meta) {
	if err := r.Register(name, gen, m); err != nil {
		panic(err)
	}
}

// Get returns the generator registered under name, or an error wrapping
// ErrUnknownScenario that lists the known names.
func (r *Registry) Get(name string) (Generator, error) {
	r.mu.RLock()
	e, ok := r.entries[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w %q (have %v)", ErrUnknownScenario, name, r.Names())
	}
	return e.gen, nil
}

// Meta returns the metadata declared for name, or an error wrapping
// ErrUnknownScenario.
func (r *Registry) Meta(name string) (Meta, error) {
	r.mu.RLock()
	e, ok := r.entries[name]
	r.mu.RUnlock()
	if !ok {
		return Meta{}, fmt.Errorf("%w %q (have %v)", ErrUnknownScenario, name, r.Names())
	}
	return e.meta, nil
}

// Generate is the one-step convenience: look name up and run it.
func (r *Registry) Generate(name string, g *graph.Graph, rates *workload.Rates, p Params) ([]workload.ChurnOp, error) {
	gen, err := r.Get(name)
	if err != nil {
		return nil, err
	}
	return gen(g, rates, p), nil
}

// Names returns every registered scenario name, sorted — deterministic
// regardless of registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.entries))
	for n := range r.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of registered scenarios.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// Clone returns an independent copy of the registry.
func (r *Registry) Clone() *Registry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c := &Registry{entries: make(map[string]entry, len(r.entries))}
	for n, e := range r.entries {
		c.entries[n] = e
	}
	return c
}

// Materialize replays a trace against (g, r) as a pure function and
// returns the final live graph and rates — what a from-scratch solver
// should be handed after the scenario ran. It errors on the first op
// that is invalid at its position, which doubles as the validity check
// the generator tests replay every zoo trace through.
func Materialize(g *graph.Graph, r *workload.Rates, ops []workload.ChurnOp) (*graph.Graph, *workload.Rates, error) {
	live := g.EdgeList()
	index := make(map[graph.Edge]int, len(live))
	for i, e := range live {
		index[e] = i
	}
	n := g.NumNodes()
	out := &workload.Rates{
		Prod: append([]float64(nil), r.Prod...),
		Cons: append([]float64(nil), r.Cons...),
	}
	for i, op := range ops {
		if int(op.U) < 0 || int(op.U) >= n || (op.Kind != workload.OpRates && (int(op.V) < 0 || int(op.V) >= n)) {
			return nil, nil, fmt.Errorf("scenario: op %d: node out of range", i)
		}
		switch op.Kind {
		case workload.OpAdd:
			e := graph.Edge{From: op.U, To: op.V}
			if op.U == op.V {
				return nil, nil, fmt.Errorf("scenario: op %d: self-loop add %d", i, op.U)
			}
			if _, dup := index[e]; dup {
				return nil, nil, fmt.Errorf("scenario: op %d: duplicate add %d→%d", i, op.U, op.V)
			}
			index[e] = len(live)
			live = append(live, e)
		case workload.OpRemove:
			e := graph.Edge{From: op.U, To: op.V}
			j, ok := index[e]
			if !ok {
				return nil, nil, fmt.Errorf("scenario: op %d: remove of absent edge %d→%d", i, op.U, op.V)
			}
			last := len(live) - 1
			live[j] = live[last]
			index[live[j]] = j
			live = live[:last]
			delete(index, e)
		case workload.OpRates:
			if !(op.Prod >= 0) || !(op.Cons >= 0) {
				return nil, nil, fmt.Errorf("scenario: op %d: invalid rates prod=%v cons=%v", i, op.Prod, op.Cons)
			}
			out.Prod[op.U] = op.Prod
			out.Cons[op.U] = op.Cons
		default:
			return nil, nil, fmt.Errorf("scenario: op %d: unknown kind %d", i, op.Kind)
		}
	}
	return graph.FromEdges(n, live), out, nil
}
