package piggyback

// Benchmarks regenerating the paper's evaluation, one per table/figure
// (see DESIGN.md §4 for the experiment index), plus micro-benchmarks of
// the algorithmic building blocks and ablations of the design choices
// DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// The figure benches use the Quick scale so the full suite completes in
// minutes; cmd/experiments -scale default regenerates the recorded
// EXPERIMENTS.md tables.

import (
	"testing"

	"piggyback/internal/baseline"
	"piggyback/internal/chitchat"
	"piggyback/internal/densest"
	"piggyback/internal/experiments"
	"piggyback/internal/graph"
	"piggyback/internal/graphgen"
	"piggyback/internal/nosy"
	"piggyback/internal/nosymr"
	"piggyback/internal/partition"
	"piggyback/internal/refine"
	"piggyback/internal/sampling"
	"piggyback/internal/store"
	"piggyback/internal/workload"
)

// ---- Evaluation tables and figures (§4) ----

func BenchmarkDatasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Datasets(experiments.Quick)
	}
}

func BenchmarkFig4PredictedImprovement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig4(experiments.Quick)
	}
}

func BenchmarkFig5IncrementalUpdates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig5(experiments.Quick)
	}
}

func BenchmarkFig6PrototypeThroughput(b *testing.B) {
	sc := experiments.Quick
	sc.PrototypeRequests = 2000
	for i := 0; i < b.N; i++ {
		experiments.Fig6(sc)
	}
}

func BenchmarkFig7PlacementAwareThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig7(experiments.Quick)
	}
}

func BenchmarkFig8LoadBalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig8(experiments.Quick)
	}
}

func BenchmarkFig9aRandomWalkSamples(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig9(experiments.Quick, experiments.RandomWalkSampling)
	}
}

func BenchmarkFig9bBFSSamples(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig9(experiments.Quick, experiments.BFSSampling)
	}
}

// ---- Algorithm micro-benchmarks ----

func benchGraph() (*Graph, *Rates) {
	g := FlickrLikeGraph(800, 7)
	return g, LogDegreeRates(g, 5)
}

func BenchmarkHybridSchedule(b *testing.B) {
	g, r := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baseline.Hybrid(g, r)
	}
}

func BenchmarkParallelNosy(b *testing.B) {
	g, r := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nosy.Solve(g, r, nosy.Config{})
	}
}

func BenchmarkParallelNosySingleWorker(b *testing.B) {
	g, r := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nosy.Solve(g, r, nosy.Config{Workers: 1})
	}
}

func BenchmarkParallelNosyMapReduce(b *testing.B) {
	g, r := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nosymr.Solve(g, r, nosy.Config{})
	}
}

func BenchmarkChitChat(b *testing.B) {
	g := FlickrLikeGraph(400, 7)
	r := LogDegreeRates(g, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chitchat.Solve(g, r, chitchat.Config{})
	}
}

// Worker-scaling of the parallel CHITCHAT oracle evaluation on the
// default bench graph (the BenchmarkChitChat graph). The schedule is
// byte-identical across worker counts (chitchat.TestWorkerCountInvariance
// proves it); only wall clock moves. Speedup requires actual cores:
// ~95% of solve cycles are oracle evaluations inside parallel batches,
// but on a single-CPU machine all four variants time alike.
func benchChitChatWorkers(b *testing.B, workers int) {
	g := FlickrLikeGraph(400, 7)
	r := LogDegreeRates(g, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chitchat.Solve(g, r, chitchat.Config{Workers: workers})
	}
}

func BenchmarkChitChatWorkers1(b *testing.B) { benchChitChatWorkers(b, 1) }
func BenchmarkChitChatWorkers2(b *testing.B) { benchChitChatWorkers(b, 2) }
func BenchmarkChitChatWorkers4(b *testing.B) { benchChitChatWorkers(b, 4) }
func BenchmarkChitChatWorkers8(b *testing.B) { benchChitChatWorkers(b, 8) }

func BenchmarkDensestSubgraphPeel(b *testing.B) {
	g := TwitterLikeGraph(2000, 3)
	// Build one large hub instance: the highest-degree node.
	var hub NodeID
	best := -1
	for u := 0; u < g.NumNodes(); u++ {
		if d := g.InDegree(NodeID(u)) + g.OutDegree(NodeID(u)); d > best {
			best, hub = d, NodeID(u)
		}
	}
	r := LogDegreeRates(g, 5)
	xs := g.InNeighbors(hub)
	ys := g.OutNeighbors(hub)
	inst := densest.Instance{N: len(xs) + len(ys) + 1}
	inst.Weight = make([]float64, inst.N)
	hv := int32(len(xs) + len(ys))
	for i, x := range xs {
		inst.Weight[i] = r.Prod[x]
		inst.Edges = append(inst.Edges, [2]int32{int32(i), hv})
	}
	for j, y := range ys {
		inst.Weight[len(xs)+j] = r.Cons[y]
		inst.Edges = append(inst.Edges, [2]int32{hv, int32(len(xs) + j)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		densest.Peel(inst, nil)
	}
}

// Decremental oracle vs fresh Peel on the same large hub instance, after
// a burst of element removals: the fresh path pays the full instance
// (re)build per solve, the decremental path only re-peels the live
// sub-instance over the materialized CSR.
func BenchmarkDensestDecrementalResolve(b *testing.B) {
	g := TwitterLikeGraph(2000, 3)
	var hub NodeID
	best := -1
	for u := 0; u < g.NumNodes(); u++ {
		if d := g.InDegree(NodeID(u)) + g.OutDegree(NodeID(u)); d > best {
			best, hub = d, NodeID(u)
		}
	}
	r := LogDegreeRates(g, 5)
	xs := g.InNeighbors(hub)
	ys := g.OutNeighbors(hub)
	inst := densest.Instance{N: len(xs) + len(ys) + 1}
	inst.Weight = make([]float64, inst.N)
	hv := int32(len(xs) + len(ys))
	for i, x := range xs {
		inst.Weight[i] = r.Prod[x]
		inst.Edges = append(inst.Edges, [2]int32{int32(i), hv})
	}
	for j, y := range ys {
		inst.Weight[len(xs)+j] = r.Cons[y]
		inst.Edges = append(inst.Edges, [2]int32{hv, int32(len(xs) + j)})
	}
	d := densest.NewDecremental(inst)
	for ei := 0; ei < d.NumEdges(); ei += 3 {
		d.RemoveEdge(ei)
	}
	var sc densest.Scratch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Solve(&sc)
	}
}

func BenchmarkGraphGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		TwitterLikeGraph(2000, int64(i))
	}
}

func BenchmarkRandomWalkSample(b *testing.B) {
	g := TwitterLikeGraph(3000, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sampling.RandomWalk(g, 5000, int64(i))
	}
}

func BenchmarkPlacementCost(b *testing.B) {
	g, r := benchGraph()
	s := baseline.Hybrid(g, r)
	a := partition.Hash(g.NumNodes(), 256, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		partition.Cost(s, r, a)
	}
}

func BenchmarkPrototypeRequests(b *testing.B) {
	g, r := benchGraph()
	pn, _ := ParallelNosy(g, r, NosyConfig{})
	c, err := store.NewCluster(pn, store.Options{Servers: 64})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	trace := store.GenerateTrace(r, 4096, 1)
	b.ResetTimer()
	cl := c.NewClient()
	for i := 0; i < b.N; i++ {
		req := trace[i%len(trace)]
		if req.IsUpdate {
			cl.Update(req.User, store.Event{User: req.User, ID: int64(i), TS: int64(i)})
		} else {
			cl.Query(req.User)
		}
	}
}

// ---- Ablations (design choices from DESIGN.md §6) ----

// Partial commits: phase 3's sub-hub-graph rescue vs all-or-nothing locks.
func BenchmarkAblationNoPartialCommits(b *testing.B) {
	g, r := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := nosy.Solve(g, r, nosy.Config{DisablePartialCommits: true})
		if i == 0 {
			b.ReportMetric(baseline.HybridCost(g, r)/res.Schedule.Cost(r), "improvement")
			b.ReportMetric(float64(len(res.Iterations)), "iterations")
		}
	}
}

func BenchmarkAblationWithPartialCommits(b *testing.B) {
	g, r := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := nosy.Solve(g, r, nosy.Config{})
		if i == 0 {
			b.ReportMetric(baseline.HybridCost(g, r)/res.Schedule.Cost(r), "improvement")
			b.ReportMetric(float64(len(res.Iterations)), "iterations")
		}
	}
}

// Cross-edge bound b (§4.2): tight vs default.
func BenchmarkAblationCrossEdgeBound16(b *testing.B) {
	g, r := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := nosy.Solve(g, r, nosy.Config{MaxCrossEdges: 16})
		if i == 0 {
			b.ReportMetric(baseline.HybridCost(g, r)/res.Schedule.Cost(r), "improvement")
		}
	}
}

// CHITCHAT oracle: exact brute force vs factor-2 peeling on a small graph.
func BenchmarkAblationChitChatExactOracle(b *testing.B) {
	g := SocialGraph(SocialGraphConfig{
		Nodes: 60, AvgFollows: 4, TriadProb: 0.6, Reciprocity: 0.4, Seed: 5,
	})
	r := LogDegreeRates(g, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := chitchat.Solve(g, r, chitchat.Config{ExactOracle: true})
		if i == 0 {
			b.ReportMetric(baseline.HybridCost(g, r)/s.Cost(r), "improvement")
		}
	}
}

func BenchmarkAblationChitChatPeelOracle(b *testing.B) {
	g := SocialGraph(SocialGraphConfig{
		Nodes: 60, AvgFollows: 4, TriadProb: 0.6, Reciprocity: 0.4, Seed: 5,
	})
	r := LogDegreeRates(g, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := chitchat.Solve(g, r, chitchat.Config{})
		if i == 0 {
			b.ReportMetric(baseline.HybridCost(g, r)/s.Cost(r), "improvement")
		}
	}
}

// Null-model ablation: piggybacking feeds on the co-subscription
// structure of social graphs. On a uniform random (ER) graph with the
// same density, hubs barely exist and the gain collapses to ≈1.05×,
// versus ≈2× on the social graph — DESIGN.md's substitution argument for
// trusting the synthetic Twitter/Flickr stand-ins. (Interestingly, pure
// preferential attachment without triadic closure still yields hubs:
// everyone co-subscribes to the same celebrities; only uniform wiring
// destroys the effect.)
func BenchmarkAblationSocialVsER(b *testing.B) {
	gSoc := FlickrLikeGraph(600, 9)
	gER := graphgen.ErdosRenyi(600, gSoc.NumEdges(), 9)
	rSoc := LogDegreeRates(gSoc, 5)
	rER := LogDegreeRates(gER, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		soc := nosy.Solve(gSoc, rSoc, nosy.Config{})
		er := nosy.Solve(gER, rER, nosy.Config{})
		if i == 0 {
			b.ReportMetric(baseline.HybridCost(gSoc, rSoc)/soc.Schedule.Cost(rSoc), "improvement-social")
			b.ReportMetric(baseline.HybridCost(gER, rER)/er.Schedule.Cost(rER), "improvement-er")
		}
	}
}

// Workload-model ablation: the paper ties activity to degree (log-degree
// model); Zipf activity independent of degree tests whether the gain
// survives when celebrities are not necessarily the busiest producers.
func BenchmarkAblationWorkloadModels(b *testing.B) {
	g := FlickrLikeGraph(600, 9)
	rLog := LogDegreeRates(g, 5)
	rZipf := ZipfRates(g.NumNodes(), 1.5, 5, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logRes := nosy.Solve(g, rLog, nosy.Config{})
		zipfRes := nosy.Solve(g, rZipf, nosy.Config{})
		if i == 0 {
			b.ReportMetric(baseline.HybridCost(g, rLog)/logRes.Schedule.Cost(rLog), "improvement-logdeg")
			b.ReportMetric(baseline.HybridCost(g, rZipf)/zipfRes.Schedule.Cost(rZipf), "improvement-zipf")
		}
	}
}

// Refinement sweep: free-coverage recovery on a truncated PARALLELNOSY
// run (converged runs leave nothing — tested in internal/refine).
func BenchmarkRefineSweep(b *testing.B) {
	g, r := benchGraph()
	base := nosy.Solve(g, r, nosy.Config{MaxIterations: 2}).Schedule
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := base.Clone()
		res := refine.Run(s, r)
		if i == 0 {
			b.ReportMetric(float64(res.Recovered), "recovered")
		}
	}
}

// Worker-scaling of PARALLELNOSY on a fixed graph.
func BenchmarkNosyWorkers(b *testing.B) {
	g, r := benchGraph()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(map[int]string{1: "w1", 2: "w2", 4: "w4", 8: "w8"}[workers], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				nosy.Solve(g, r, nosy.Config{Workers: workers})
			}
		})
	}
}

// Keep the unused-import compiler happy for types used only in helpers.
var (
	_ = graph.Edge{}
	_ = workload.DefaultReadWriteRatio
)
