package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same identity returns the same instrument.
	if r.Counter("ops_total") != c {
		t.Fatalf("re-registration returned a different counter")
	}
	// Different labels are a different series.
	c2 := r.Counter("ops_total", Label{"kind", "add"})
	if c2 == c {
		t.Fatalf("labeled series aliased the unlabeled one")
	}
	c2.Inc()

	g := r.Gauge("drift")
	g.Set(0.5)
	g.Add(0.25)
	if got := g.Value(); got != 0.75 {
		t.Fatalf("gauge = %g, want 0.75", got)
	}
}

func TestNilRegistryAndInstruments(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total")
	g := r.Gauge("y")
	h := r.Histogram("z", SizeBuckets)
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry handed out non-nil instruments")
	}
	// All no-ops, no panics.
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("nil instruments reported non-zero values")
	}
	snap := r.Snapshot()
	if len(snap.Metrics) != 0 || snap.String() != "" || snap.PromText() != "" {
		t.Fatalf("nil registry snapshot not empty")
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 106 {
		t.Fatalf("sum = %g, want 106", h.Sum())
	}
	m, ok := r.Snapshot().Get("lat_seconds")
	if !ok {
		t.Fatalf("histogram missing from snapshot")
	}
	want := []Bucket{{1, 2}, {2, 3}, {4, 4}, {math.Inf(1), 5}}
	if len(m.Buckets) != len(want) {
		t.Fatalf("buckets = %v, want %v", m.Buckets, want)
	}
	for i := range want {
		if m.Buckets[i] != want[i] {
			t.Fatalf("bucket %d = %v, want %v", i, m.Buckets[i], want[i])
		}
	}
	if !m.Timing {
		t.Fatalf("_seconds histogram not flagged as timing")
	}
	// +Inf samples clamp the quantile at the top finite bound.
	if q := h.Quantile(1); q != 4 {
		t.Fatalf("q1 = %g, want 4", q)
	}
	// Median falls in the (1,2] bucket and interpolates.
	if q := h.Quantile(0.5); q < 1 || q > 2 {
		t.Fatalf("q0.5 = %g, want within (1,2]", q)
	}
	if e := (&Histogram{}); e.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram quantile != 0")
	}
}

func TestSnapshotDeterministicOrderAndRender(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("b_total").Add(2)
		r.Gauge("a").Set(1.5)
		r.Counter("b_total", Label{"k", "v"}).Add(1)
		r.Histogram("c", []float64{1, 10}).Observe(3)
		return r
	}
	s1, s2 := build().Snapshot().String(), build().Snapshot().String()
	if s1 != s2 {
		t.Fatalf("snapshots differ:\n%s\nvs\n%s", s1, s2)
	}
	wantOrder := []string{"a ", "b_total ", `b_total{k="v"} `, "c "}
	lines := strings.Split(strings.TrimSpace(s1), "\n")
	if len(lines) != len(wantOrder) {
		t.Fatalf("got %d lines: %q", len(lines), lines)
	}
	for i, p := range wantOrder {
		if !strings.HasPrefix(lines[i], p) {
			t.Fatalf("line %d = %q, want prefix %q", i, lines[i], p)
		}
	}
}

func TestPromText(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops_total", Label{"kind", "add"}).Add(3)
	r.Histogram("lat", []float64{0.5, 1}).Observe(0.7)
	txt := r.Snapshot().PromText()
	for _, want := range []string{
		"# TYPE lat histogram",
		`lat_bucket{le="0.5"} 0`,
		`lat_bucket{le="1"} 1`,
		`lat_bucket{le="+Inf"} 1`,
		"lat_sum 0.7",
		"lat_count 1",
		"# TYPE ops_total counter",
		`ops_total{kind="add"} 3`,
	} {
		if !strings.Contains(txt, want) {
			t.Fatalf("PromText missing %q:\n%s", want, txt)
		}
	}
}

func TestNonTimingExcludesWallClock(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops_total").Inc()
	r.Gauge("solve_wall").Set(1.23)
	r.Gauge("sleep_seconds_total").Set(0.5)
	r.Histogram("lat_seconds", LatencyBuckets).Observe(0.01)
	nt := r.Snapshot().NonTiming()
	if len(nt.Metrics) != 1 || nt.Metrics[0].Name != "ops_total" {
		t.Fatalf("NonTiming kept timing series: %s", nt.String())
	}
}

func TestIsTiming(t *testing.T) {
	for name, want := range map[string]bool{
		"solver_wall":                   true,
		"lat_seconds":                   true,
		"sleep_seconds_total":           true,
		"ops_total":                     false,
		"seconds_in_name_bytes":         false,
		"netstore_bytes_total":          false,
		"online_resolves_total":         false,
		"loadgen_query_latency_seconds": true,
	} {
		if IsTiming(name) != want {
			t.Fatalf("IsTiming(%q) = %v, want %v", name, !want, want)
		}
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatalf("kind mismatch did not panic")
		}
	}()
	r.Gauge("x")
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total")
	g := r.Gauge("sum")
	h := r.Histogram("v", SizeBuckets)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 7))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 8000 {
		t.Fatalf("gauge = %g, want 8000", g.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}
