// Package chitchat implements the CHITCHAT approximation algorithm (§3.1).
//
// CHITCHAT maps the DISSEMINATION problem to weighted SETCOVER: the ground
// set is the edges of the social graph, and the candidate collection
// contains (a) singleton edges served directly at the hybrid cost
// c*(u→v) = min(rp(u), rc(v)) and (b) hub-graphs G(X, w, Y), which pay for
// the pushes X→w and pulls w→Y and cover, for free, every cross-edge
// X→Y present in the graph. The greedy step — find the candidate with the
// lowest cost per newly covered element — is solved per hub by the
// weighted densest-subgraph oracle of package densest (Lemma 1), giving
// an overall O(ln n) approximation (Theorem 4).
//
// The paper's Algorithm 1 refreshes the oracle output of every affected
// hub after each selection; we use a batched lazy-greedy variant instead:
// candidates are re-evaluated against the current uncovered set when they
// reach the head of the priority queue, and a stale head triggers a
// speculative refresh of the top refreshBatch candidates at once. The
// committed choice is the same greedy choice up to ties; the lazy form
// just avoids recomputing oracles whose turn never comes.
//
// Oracle evaluations are independent reads of the solver state, so both
// the initial per-hub pass and every refresh batch fan out across
// Config.Workers goroutines. Which candidates get refreshed, and which
// commits, is decided by queue state alone (ties break toward the lowest
// hub id), so the schedule is byte-identical for every worker count.
package chitchat

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"piggyback/internal/baseline"
	"piggyback/internal/bitset"
	"piggyback/internal/core"
	"piggyback/internal/densest"
	"piggyback/internal/graph"
	"piggyback/internal/pq"
	"piggyback/internal/workload"
)

// Config tunes CHITCHAT. The zero value uses the defaults.
type Config struct {
	// MaxCrossEdges bounds the number of cross-edges materialized per
	// hub-graph instance, mirroring the bound b of §3.2/§4.2. 0 means
	// DefaultMaxCrossEdges.
	MaxCrossEdges int
	// ExactOracle replaces the peeling oracle with brute-force subset
	// enumeration (instances up to 24 nodes; larger hub-graphs fall back
	// to peeling). Only sensible on tiny graphs; used by ablation benches.
	ExactOracle bool
	// Workers is the parallelism degree for oracle evaluation; 0 means
	// GOMAXPROCS. The resulting schedule is identical for every worker
	// count: workers only change who evaluates an oracle, never which
	// candidates are refreshed or chosen.
	Workers int
}

// DefaultMaxCrossEdges matches the bound used for the Twitter runs in §4.2.
const DefaultMaxCrossEdges = 100000

// refreshBatch is how many stale hub candidates at the head of the queue
// are re-evaluated together when the head turns out stale. It is a fixed
// constant, deliberately independent of Config.Workers: the refresh
// policy decides tie-breaks and therefore the schedule, and the schedule
// must not vary with the worker count.
const refreshBatch = 16

// Solve computes a request schedule for g under rates r. The result is
// always valid (Theorem 1): every edge is pushed, pulled, or covered
// through a hub.
func Solve(g *graph.Graph, r *workload.Rates, cfg Config) *core.Schedule {
	if cfg.MaxCrossEdges == 0 {
		cfg.MaxCrossEdges = DefaultMaxCrossEdges
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	n := g.NumNodes()
	m := g.NumEdges()
	s := core.NewSchedule(g)
	if m == 0 {
		return s
	}

	workers := cfg.Workers
	if workers > n {
		workers = n
	}
	sv := &solver{
		g: g, r: r, cfg: cfg, s: s,
		n:         n,
		uncovered: bitset.New(m),
		remaining: m,
		q:         pq.New(n + m),
		scs:       make([]*scratch, workers),
		gen:       1,
		freshGen:  make([]uint64, n),
		freshRes:  make([]hubEval, n),
		touched:   make(map[graph.NodeID]bool, 64),
	}
	for e := 0; e < m; e++ {
		sv.uncovered.Set(e)
	}
	for i := range sv.scs {
		sv.scs[i] = &scratch{yMark: make([]int64, n), yPos: make([]int32, n)}
	}

	// Singleton candidates never change ratio: c*(e) per single element.
	g.Edges(func(e graph.EdgeID, u, v graph.NodeID) bool {
		sv.q.Push(n+int(e), baseline.EdgeCost(r, u, v))
		return true
	})

	// Hub candidates, initially evaluated against the full ground set —
	// the embarrassingly parallel bulk of the solve.
	initRes := make([]hubEval, n)
	initOK := make([]bool, n)
	sv.forEach(n, func(i int, sc *scratch) {
		initRes[i], initOK[i] = evalHub(g, r, s, sv.uncovered, graph.NodeID(i), cfg, sc)
	})
	ids := make([]int32, 0, n)
	prios := make([]float64, 0, n)
	for w := 0; w < n; w++ {
		if initOK[w] {
			sv.freshGen[w] = sv.gen
			sv.freshRes[w] = initRes[w]
			ids = append(ids, int32(w))
			prios = append(prios, initRes[w].ratio())
		}
	}
	sv.q.PushBatch(ids, prios)

	for sv.remaining > 0 && sv.q.Len() > 0 {
		id, _ := sv.q.Min()
		if id >= n {
			// Singleton edge: ratio never changes; skip if already covered.
			sv.q.PopMin()
			e := graph.EdgeID(id - n)
			if !sv.uncovered.Test(int(e)) {
				continue
			}
			commitSingleton(g, r, s, e)
			sv.uncovered.Clear(int(e))
			sv.remaining--
			sv.refresh([]graph.EdgeID{e}, -1)
			continue
		}
		w := graph.NodeID(id)
		if sv.freshGen[w] == sv.gen {
			// The head's oracle output was computed against the current
			// uncovered set: it is the greedy choice. Commit it.
			sv.q.PopMin()
			changed := commitHub(g, s, sv.uncovered, &sv.remaining, w, sv.freshRes[w])
			sv.refresh(changed, w)
			continue
		}
		sv.refreshHead()
	}
	// Defensive: schedule anything left (cannot happen — singletons cover
	// every edge — but Finalize keeps the invariant obvious).
	s.Finalize(r)
	return s
}

// solver carries the shared solve state. Oracle evaluations (evalHub) are
// pure reads of g/r/s/uncovered plus a per-worker scratch, so they run
// concurrently; all queue and schedule mutation stays on the caller
// goroutine.
type solver struct {
	g   *graph.Graph
	r   *workload.Rates
	cfg Config
	s   *core.Schedule

	n         int
	uncovered *bitset.Set
	remaining int
	q         *pq.IndexedMin
	scs       []*scratch // one per worker

	// Freshness stamps: freshRes[w] is the oracle output of hub w, valid
	// iff freshGen[w] == gen. gen advances on every commit, because a
	// commit can invalidate any hub's evaluation (covered cross-edges are
	// not confined to the committed hub's neighborhood).
	gen      uint64
	freshGen []uint64
	freshRes []hubEval

	touched  map[graph.NodeID]bool
	touchIDs []graph.NodeID
	batchIDs []graph.NodeID
	batchRes []hubEval
	batchOK  []bool
	insIDs   []int32
	insPrios []float64
}

// forEach runs fn(i, scratch) for i in [0, k), fanning out across the
// solver's workers. Each invocation gets a worker-private scratch; fn must
// not touch shared mutable state. Results land in caller-provided arrays
// indexed by i, so the outcome is independent of scheduling order.
func (sv *solver) forEach(k int, fn func(i int, sc *scratch)) {
	nw := len(sv.scs)
	if nw > k {
		nw = k
	}
	if nw <= 1 {
		for i := 0; i < k; i++ {
			fn(i, sv.scs[0])
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(nw)
	for wk := 0; wk < nw; wk++ {
		sc := sv.scs[wk]
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= k {
					return
				}
				fn(i, sc)
			}
		}()
	}
	wg.Wait()
}

// refreshHead handles a stale hub at the head of the queue. Classic lazy
// greedy first: refresh the head alone — stale entries are lower bounds
// (a hub only gets worse as elements it covers disappear), so if the
// fresh ratio still does not exceed the next queued priority, the head
// remains the greedy choice and a single oracle call decides the commit.
// Only when the head loses its slot do we speculatively refresh the next
// refreshBatch stale candidates in one parallel round: the head region is
// churning, so those evaluations are likely needed next and independent.
func (sv *solver) refreshHead() {
	id, _ := sv.q.Min() // caller established: a hub with a stale entry
	sv.q.PopMin()
	w := graph.NodeID(id)
	res, ok := evalHub(sv.g, sv.r, sv.s, sv.uncovered, w, sv.cfg, sv.scs[0])
	if !ok || res.newlyCovered == 0 {
		return // exhausted hub; it never regains value
	}
	sv.freshGen[w] = sv.gen
	sv.freshRes[w] = res
	ratio := res.ratio()
	sv.q.Push(id, ratio)
	if sv.q.Len() == 1 {
		return // sole candidate; the main loop commits it
	}
	if head, _ := sv.q.Min(); head == id {
		return // still the minimum; the main loop commits it
	}
	batch := sv.batchIDs[:0]
	for len(batch) < refreshBatch && sv.q.Len() > 0 {
		nid, _ := sv.q.Min()
		if nid >= sv.n || sv.freshGen[nid] == sv.gen {
			break // fresh hub or singleton: the main loop handles it
		}
		sv.q.PopMin()
		batch = append(batch, graph.NodeID(nid))
	}
	sv.batchIDs = batch
	sv.evalBatch(batch)
}

// refresh re-evaluates the hub-graphs whose oracle output may have
// IMPROVED after schedule changes on the given edges — Algorithm 1's
// queue maintenance, restricted to where it matters. A hub-graph's
// ratio improves only when a support-edge weight drops to zero, and a
// changed edge (u, v) is a support edge only of the hub-graphs
// centered at u (as the pull w → y) or at v (as a push x → w).
// Hub-graphs that merely lost cross-edge elements got WORSE; their
// stale (too low) queue entries are corrected by refreshHead when they
// reach the head. Hubs that drop out of the queue are exhausted for
// good: Z only shrinks, so a hub with nothing coverable never regains
// value. The one exception is the hub that just committed — it was
// popped for processing and may still have residual coverage to offer,
// so it is force-re-evaluated.
func (sv *solver) refresh(edges []graph.EdgeID, committed graph.NodeID) {
	sv.gen++
	for w := range sv.touched {
		delete(sv.touched, w)
	}
	for _, e := range edges {
		sv.touched[sv.g.EdgeSource(e)] = true
		sv.touched[sv.g.EdgeTarget(e)] = true
	}
	if committed >= 0 {
		sv.touched[committed] = true
	}
	batch := sv.touchIDs[:0]
	for w := range sv.touched {
		if w != committed && !sv.q.Contains(int(w)) {
			continue // exhausted hub; do not resurrect
		}
		batch = append(batch, w)
	}
	sort.Slice(batch, func(i, j int) bool { return batch[i] < batch[j] })
	sv.touchIDs = batch
	for _, w := range batch {
		sv.q.Remove(int(w)) // no-op for the just-committed hub
	}
	sv.evalBatch(batch)
}

// evalBatch evaluates the given hubs (already removed from the queue)
// concurrently, then re-inserts those that still cover something, marking
// them fresh for the current generation. Hubs with nothing left stay out
// of the queue for good — the exhaustion rule documented on refresh.
func (sv *solver) evalBatch(batch []graph.NodeID) {
	if len(batch) == 0 {
		return
	}
	if cap(sv.batchRes) < len(batch) {
		sv.batchRes = make([]hubEval, len(batch))
		sv.batchOK = make([]bool, len(batch))
	}
	res := sv.batchRes[:len(batch)]
	ok := sv.batchOK[:len(batch)]
	sv.forEach(len(batch), func(i int, sc *scratch) {
		res[i], ok[i] = evalHub(sv.g, sv.r, sv.s, sv.uncovered, batch[i], sv.cfg, sc)
	})
	ids := sv.insIDs[:0]
	prios := sv.insPrios[:0]
	for i, w := range batch {
		if ok[i] && res[i].newlyCovered > 0 {
			sv.freshGen[w] = sv.gen
			sv.freshRes[w] = res[i]
			ids = append(ids, int32(w))
			prios = append(prios, res[i].ratio())
		}
	}
	sv.q.PushBatch(ids, prios)
	sv.insIDs = ids
	sv.insPrios = prios
}

// hubEval is the oracle output for one hub: the chosen X/Y sides and how
// much it covers at what cost.
type hubEval struct {
	xSide        []graph.NodeID // producers to push to the hub
	ySide        []graph.NodeID // consumers to pull from the hub
	cost         float64        // Σ unpaid rp(x) + Σ unpaid rc(y)
	newlyCovered int            // |E(S) ∩ Z|
}

func (h hubEval) ratio() float64 {
	if h.newlyCovered == 0 {
		return math.Inf(1)
	}
	return h.cost / float64(h.newlyCovered)
}

// evalHub builds the weighted densest-subgraph instance for the maximal
// hub-graph centered on w — X = producers of w, Y = consumers of w — and
// runs the oracle. Elements (numerator edges) are restricted to the
// uncovered set Z; node weights are zeroed for support edges already in
// H or L, per Algorithm 1's weight update rule. It only reads the shared
// state and only writes sc, so concurrent calls with distinct scratches
// are safe.
func evalHub(g *graph.Graph, r *workload.Rates, s *core.Schedule,
	uncovered *bitset.Set, w graph.NodeID, cfg Config, sc *scratch) (hubEval, bool) {

	xs := g.InNeighbors(w)
	xIDs := g.InEdgeIDs(w)
	ys := g.OutNeighbors(w)
	if len(xs) == 0 || len(ys) == 0 {
		return hubEval{}, false
	}
	yLo, _ := g.OutEdgeRange(w)

	// Instance layout: [0, len(xs)) X side, [len(xs), len(xs)+len(ys)) Y
	// side, last vertex = hub.
	nx, ny := len(xs), len(ys)
	hub := int32(nx + ny)
	if cap(sc.weight) < nx+ny+1 {
		sc.weight = make([]float64, nx+ny+1)
	}
	inst := densest.Instance{
		N:      nx + ny + 1,
		Weight: sc.weight[:nx+ny+1],
		Edges:  sc.edges[:0],
	}
	inst.Weight[hub] = 0 // the buffer is reused; every other slot is set below
	for i, x := range xs {
		if s.IsPush(xIDs[i]) {
			inst.Weight[i] = 0 // push already paid
		} else {
			inst.Weight[i] = r.Prod[x]
		}
		if uncovered.Test(int(xIDs[i])) {
			inst.Edges = append(inst.Edges, [2]int32{int32(i), hub})
		}
	}
	// Mark Y membership in the generation-stamped scratch array (a map
	// here dominated the whole solve on dense graphs).
	sc.gen++
	for j, y := range ys {
		e := yLo + graph.EdgeID(j)
		if s.IsPull(e) {
			inst.Weight[nx+j] = 0 // pull already paid
		} else {
			inst.Weight[nx+j] = r.Cons[y]
		}
		if uncovered.Test(int(e)) {
			inst.Edges = append(inst.Edges, [2]int32{hub, int32(nx + j)})
		}
		sc.yMark[y] = sc.gen
		sc.yPos[y] = int32(nx + j)
	}
	// Cross-edges x → y, bounded as in the paper.
	crossBudget := cfg.MaxCrossEdges
	for i, x := range xs {
		if crossBudget <= 0 {
			break
		}
		lo, hi := g.OutEdgeRange(x)
		targets := g.OutNeighbors(x)
		for k := lo; k < hi; k++ {
			y := targets[k-lo]
			if y == w || sc.yMark[y] != sc.gen || !uncovered.Test(int(k)) {
				continue
			}
			inst.Edges = append(inst.Edges, [2]int32{int32(i), sc.yPos[y]})
			crossBudget--
			if crossBudget <= 0 {
				break
			}
		}
	}
	sc.edges = inst.Edges // keep any growth for the next evaluation
	if len(inst.Edges) == 0 {
		return hubEval{}, false
	}

	var res densest.Result
	if cfg.ExactOracle && inst.N <= 24 {
		res = densest.Exact(inst, &sc.dsc)
	} else {
		res = densest.Peel(inst, &sc.dsc)
	}
	if res.EdgeCnt == 0 {
		return hubEval{}, false
	}

	out := hubEval{cost: res.Weight}
	hubIn := false
	for _, v := range res.Members {
		switch {
		case v < int32(nx):
			out.xSide = append(out.xSide, xs[v])
		case v < hub:
			out.ySide = append(out.ySide, ys[v-int32(nx)])
		default:
			hubIn = true
		}
	}
	if !hubIn {
		// A subgraph without the hub vertex cannot realize its cross-edge
		// coverage (support pushes/pulls need the hub). The hub vertex has
		// weight 0 so adding it never hurts; count only edges incident to
		// selected members plus the hub.
		return hubEval{}, false
	}
	out.newlyCovered = res.EdgeCnt
	return out, len(out.xSide)+len(out.ySide) > 0
}

// commitHub applies the oracle's choice: pushes X→w, pulls w→Y, covers
// cross-edges, and removes every newly covered element from Z. It returns
// the edges whose schedule state changed, for queue refresh.
func commitHub(g *graph.Graph, s *core.Schedule, uncovered *bitset.Set,
	remaining *int, w graph.NodeID, res hubEval) []graph.EdgeID {

	var changed []graph.EdgeID
	cover := func(e graph.EdgeID) {
		if uncovered.Test(int(e)) {
			uncovered.Clear(int(e))
			*remaining--
		}
	}
	ySet := make(map[graph.NodeID]bool, len(res.ySide))
	for _, y := range res.ySide {
		ySet[y] = true
	}
	for _, x := range res.xSide {
		e, ok := g.EdgeID(x, w)
		if !ok {
			continue
		}
		s.SetPush(e)
		cover(e) // the support edge itself is served by the push
		changed = append(changed, e)
	}
	for _, y := range res.ySide {
		e, ok := g.EdgeID(w, y)
		if !ok {
			continue
		}
		s.SetPull(e)
		cover(e)
		changed = append(changed, e)
	}
	for _, x := range res.xSide {
		lo, hi := g.OutEdgeRange(x)
		targets := g.OutNeighbors(x)
		for k := lo; k < hi; k++ {
			y := targets[k-lo]
			if y == w || !ySet[y] {
				continue
			}
			if uncovered.Test(int(k)) {
				s.SetCovered(k, w)
				cover(k)
				changed = append(changed, k)
			}
		}
	}
	return changed
}

// commitSingleton serves edge e directly at the hybrid cost.
func commitSingleton(g *graph.Graph, r *workload.Rates, s *core.Schedule, e graph.EdgeID) {
	u := g.EdgeSource(e)
	v := g.EdgeTarget(e)
	if r.Prod[u] <= r.Cons[v] {
		s.SetPush(e)
	} else {
		s.SetPull(e)
	}
}

// scratch holds per-worker reusable buffers: yMark/yPos form a
// generation-stamped index from node id to the hub instance's Y-side
// vertex (a per-evalHub map dominated profiles); weight/edges back the
// densest instance and dsc is the peel arena, so a steady-state oracle
// evaluation allocates only its small result slices.
type scratch struct {
	yMark  []int64
	yPos   []int32
	gen    int64
	weight []float64
	edges  [][2]int32
	dsc    densest.Scratch
}
