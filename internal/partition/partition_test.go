package partition

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"piggyback/internal/baseline"
	"piggyback/internal/graph"
	"piggyback/internal/graphgen"
	"piggyback/internal/nosy"
	"piggyback/internal/stats"
	"piggyback/internal/workload"
)

func setup(n int, seed int64) (*graph.Graph, *workload.Rates) {
	g := graphgen.Social(graphgen.TwitterLike(n, seed))
	return g, workload.LogDegree(g, 5)
}

func TestHashAssignmentInRange(t *testing.T) {
	a := Hash(1000, 7, 1)
	if a.Servers != 7 {
		t.Fatalf("Servers = %d", a.Servers)
	}
	counts := make([]int, 7)
	for u := 0; u < 1000; u++ {
		s := a.Of(graph.NodeID(u))
		if s < 0 || s >= 7 {
			t.Fatalf("server %d out of range", s)
		}
		counts[s]++
	}
	for s, c := range counts {
		if c == 0 {
			t.Fatalf("server %d got no views", s)
		}
	}
}

func TestHashDeterministicPerSeed(t *testing.T) {
	a := Hash(100, 5, 42)
	b := Hash(100, 5, 42)
	c := Hash(100, 5, 43)
	diff := 0
	for u := 0; u < 100; u++ {
		if a.Of(graph.NodeID(u)) != b.Of(graph.NodeID(u)) {
			t.Fatal("same seed produced different assignments")
		}
		if a.Of(graph.NodeID(u)) != c.Of(graph.NodeID(u)) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical assignments")
	}
}

func TestSingleServerCost(t *testing.T) {
	g, r := setup(200, 1)
	s := baseline.Hybrid(g, r)
	a := Hash(g.NumNodes(), 1, 0)
	// With one server, every request is exactly one message.
	want := 0.0
	for u := range r.Prod {
		want += r.Prod[u] + r.Cons[u]
	}
	if got := Cost(s, r, a); math.Abs(got-want) > 1e-6 {
		t.Fatalf("1-server cost = %v, want %v", got, want)
	}
	if nt := NormalizedThroughput(s, r, a); math.Abs(nt-1) > 1e-9 {
		t.Fatalf("1-server normalized throughput = %v, want 1", nt)
	}
}

func TestCostGrowsWithServers(t *testing.T) {
	g, r := setup(300, 2)
	s := baseline.Hybrid(g, r)
	prev := 0.0
	for i, servers := range []int{1, 4, 16, 64, 256} {
		c := Cost(s, r, Hash(g.NumNodes(), servers, 0))
		if i > 0 && c < prev-1e-6 {
			t.Fatalf("cost decreased from %v to %v at %d servers", prev, c, servers)
		}
		prev = c
	}
}

func TestManyServersApproachPlacementFreeCost(t *testing.T) {
	// As servers → ∞ the probability of two views colliding on a server
	// vanishes, so the placement-aware cost approaches
	// Σ rp(1+|push|) + rc(1+|pull|) — the message count without batching.
	g, r := setup(200, 3)
	s := baseline.Hybrid(g, r)
	want := 0.0
	for u := 0; u < g.NumNodes(); u++ {
		uid := graph.NodeID(u)
		want += r.Prod[u] * float64(1+len(s.PushSet(uid)))
		want += r.Cons[u] * float64(1+len(s.PullSet(uid)))
	}
	got := Cost(s, r, Hash(g.NumNodes(), 1<<20, 0))
	if math.Abs(got-want)/want > 0.02 {
		t.Fatalf("cost at 2^20 servers = %v, placement-free = %v", got, want)
	}
}

func TestParallelNosyWinsAtScale(t *testing.T) {
	// Figure 7's crossover: hybrid may win with few servers, but with many
	// servers the PARALLELNOSY schedule (fewer messages) must win.
	g, r := setup(500, 4)
	ff := baseline.Hybrid(g, r)
	pn := nosy.Solve(g, r, nosy.Config{}).Schedule
	big := Hash(g.NumNodes(), 4096, 0)
	if Cost(pn, r, big) >= Cost(ff, r, big) {
		t.Fatalf("PARALLELNOSY (%v) should beat FF (%v) at 4096 servers",
			Cost(pn, r, big), Cost(ff, r, big))
	}
}

func TestQueryLoadConservation(t *testing.T) {
	g, r := setup(300, 5)
	s := baseline.Hybrid(g, r)
	for _, servers := range []int{1, 8, 64} {
		a := Hash(g.NumNodes(), servers, 0)
		load := QueryLoad(s, r, a)
		if len(load) != servers {
			t.Fatalf("load has %d entries, want %d", len(load), servers)
		}
		sum := 0.0
		for _, l := range load {
			sum += l
		}
		// Every user's queries hit at least one server (its own view), so
		// the total is at least Σ rc.
		var sumC float64
		for _, c := range r.Cons {
			sumC += c
		}
		if sum < sumC-1e-6 {
			t.Fatalf("total query load %v below Σ rc %v", sum, sumC)
		}
	}
}

func TestLoadBalanceShape(t *testing.T) {
	// Figure 8: average per-server query load decreases as the system
	// grows, for both schedules. Hub schedules concentrate pulls on hub
	// views, so PARALLELNOSY's variance is higher at toy scale (the
	// paper's error bars show the same effect magnified on the right of
	// the log plot); the mean trend is the invariant worth locking in.
	g, r := setup(2000, 6)
	pn := nosy.Solve(g, r, nosy.Config{}).Schedule
	ff := baseline.Hybrid(g, r)
	prevPN, prevFF := math.Inf(1), math.Inf(1)
	for _, servers := range []int{4, 16, 64, 256} {
		a := Hash(g.NumNodes(), servers, 0)
		meanPN := stats.Mean(QueryLoad(pn, r, a))
		meanFF := stats.Mean(QueryLoad(ff, r, a))
		if meanPN > prevPN+1e-6 || meanFF > prevFF+1e-6 {
			t.Fatalf("mean per-server load increased at %d servers (PN %v→%v, FF %v→%v)",
				servers, prevPN, meanPN, prevFF, meanFF)
		}
		prevPN, prevFF = meanPN, meanFF
	}
}

// Property: placement cost is sandwiched between the message-free lower
// bound (1 message per request) and the placement-free upper bound.
func TestQuickCostBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(100)
		g := graphgen.ErdosRenyi(n, 4*n, seed)
		r := workload.LogDegree(g, 0.5+rng.Float64()*10)
		s := baseline.Hybrid(g, r)
		a := Hash(n, 1+rng.Intn(64), seed)
		got := Cost(s, r, a)
		lower, upper := 0.0, 0.0
		for u := 0; u < n; u++ {
			uid := graph.NodeID(u)
			lower += r.Prod[u] + r.Cons[u]
			upper += r.Prod[u] * float64(1+len(s.PushSet(uid)))
			upper += r.Cons[u] * float64(1+len(s.PullSet(uid)))
		}
		return got >= lower-1e-6 && got <= upper+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLocalityDeterministicAndComplete(t *testing.T) {
	g, _ := setup(2000, 3)
	a := Locality(g, 8, 11)
	b := Locality(g, 8, 11)
	if a.Servers != 8 {
		t.Fatalf("Servers = %d", a.Servers)
	}
	counts := make([]int, 8)
	for u := 0; u < g.NumNodes(); u++ {
		s := a.Of(graph.NodeID(u))
		if s < 0 || s >= 8 {
			t.Fatalf("node %d on server %d, out of range", u, s)
		}
		if s != b.Of(graph.NodeID(u)) {
			t.Fatal("same inputs produced different locality assignments")
		}
		counts[s]++
	}
	for s, c := range counts {
		if c == 0 {
			t.Fatalf("server %d got no views", s)
		}
	}
	// Balance cap: label propagation must not pile everything onto one
	// server. Allow the BFS+cap slack plus a margin.
	max := (g.NumNodes()/8)*2 + 1
	for s, c := range counts {
		if c > max {
			t.Fatalf("server %d holds %d views, cap-ish %d", s, c, max)
		}
	}
}

func TestLocalityBeatsHashOnCut(t *testing.T) {
	// Flickr-like graphs are clustered (triadic closure + reciprocity),
	// so a locality-aware placement must cut far fewer edges than random
	// hashing.
	g := graphgen.Social(graphgen.FlickrLike(3000, 9))
	loc := Locality(g, 8, 1)
	hash := Hash(g.NumNodes(), 8, 1)
	lc, hc := loc.CutEdges(g), hash.CutEdges(g)
	if lc >= hc {
		t.Fatalf("locality cut %d >= hash cut %d", lc, hc)
	}
	t.Logf("cut edges: locality %d vs hash %d (m=%d)", lc, hc, g.NumEdges())
}

func TestLocalitySingleServer(t *testing.T) {
	g, _ := setup(300, 1)
	a := Locality(g, 1, 5)
	for u := 0; u < g.NumNodes(); u++ {
		if a.Of(graph.NodeID(u)) != 0 {
			t.Fatalf("node %d not on server 0", u)
		}
	}
	if a.CutEdges(g) != 0 {
		t.Fatal("single server cannot cut edges")
	}
}

func TestGroupsPartitionAscending(t *testing.T) {
	g, _ := setup(500, 2)
	a := Locality(g, 4, 2)
	groups := a.Groups()
	total := 0
	for s, nodes := range groups {
		total += len(nodes)
		for i, v := range nodes {
			if a.Of(v) != int32(s) {
				t.Fatalf("node %d listed under server %d but assigned to %d", v, s, a.Of(v))
			}
			if i > 0 && nodes[i-1] >= v {
				t.Fatalf("server %d group not strictly ascending at %d", s, i)
			}
		}
	}
	if total != g.NumNodes() {
		t.Fatalf("groups hold %d nodes, graph has %d", total, g.NumNodes())
	}
}
