package solver

import (
	"context"
	"errors"
	"testing"
)

// scriptedSolver fails (nil result, typed error) on solve numbers where
// fail returns true, and otherwise returns an empty success result.
type scriptedSolver struct {
	name   string
	n      int
	fail   func(n int) bool
	region bool
}

var errScripted = errors.New("scripted failure")

func (s *scriptedSolver) Name() string          { return s.name }
func (s *scriptedSolver) SupportsRegions() bool { return s.region }
func (s *scriptedSolver) Solve(ctx context.Context, p Problem) (*Result, error) {
	s.n++
	if s.fail != nil && s.fail(s.n) {
		return nil, errScripted
	}
	return &Result{Report: Report{Solver: s.name}}, nil
}

func TestBreakerTripsAndRecovers(t *testing.T) {
	// Primary fails on solves 1..5, healthy afterwards.
	primary := &scriptedSolver{name: "p", region: true, fail: func(n int) bool { return n <= 5 }}
	fallback := &scriptedSolver{name: "f", region: true}
	b := NewBreaker(primary, fallback, BreakerConfig{Threshold: 2, ProbeEvery: 3})

	if got, want := b.Name(), "breaker(p->f)"; got != want {
		t.Fatalf("Name() = %q, want %q", got, want)
	}
	if !b.SupportsRegions() {
		t.Fatal("region-capable members, breaker denies regions")
	}

	ctx := context.Background()
	// Solves 1 and 2: primary fails; solve 1 surfaces the error (below
	// threshold), solve 2 trips the breaker and falls back.
	if res, err := b.Solve(ctx, Problem{}); res != nil || !errors.Is(err, errScripted) {
		t.Fatalf("solve 1: res=%v err=%v, want surfaced primary failure", res, err)
	}
	res, err := b.Solve(ctx, Problem{})
	if err != nil || res == nil || res.Report.Solver != "f" {
		t.Fatalf("solve 2: res=%+v err=%v, want fallback result", res, err)
	}
	st := b.Stats()
	if !st.Open || st.Trips != 1 || st.Failures != 2 {
		t.Fatalf("after trip: %+v", st)
	}

	// While open, solves run on the fallback; the 3rd open solve is a
	// half-open probe of the (still broken) primary.
	for i := 0; i < 3; i++ {
		res, err := b.Solve(ctx, Problem{})
		if err != nil || res.Report.Solver != "f" {
			t.Fatalf("open solve %d: res=%+v err=%v", i, res, err)
		}
	}
	st = b.Stats()
	if st.Probes != 1 || st.Open != true || st.Closes != 0 {
		t.Fatalf("after open phase: %+v", st)
	}
	if primary.n != 3 { // solves 1, 2, and the failed probe
		t.Fatalf("primary ran %d times, want 3", primary.n)
	}

	// Keep driving solves: probes 4 and 5 still hit the failure window,
	// the next one lands after the primary recovered and closes the
	// breaker.
	for b.Stats().Open {
		if _, err := b.Solve(ctx, Problem{}); err != nil {
			t.Fatalf("open-phase solve errored: %v", err)
		}
	}
	st = b.Stats()
	if st.Closes != 1 {
		t.Fatalf("breaker never closed: %+v", st)
	}
	// Closed again: solves go straight to the healthy primary.
	res, err = b.Solve(ctx, Problem{})
	if err != nil || res.Report.Solver != "p" {
		t.Fatalf("post-recovery solve: res=%+v err=%v", res, err)
	}
}

func TestBreakerIgnoresCallerCancellation(t *testing.T) {
	// A canceled caller context with a nil result is the caller's doing,
	// not the solver's, and must not count against the primary.
	fallback := &scriptedSolver{name: "f", region: true}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	canceledPrimary := solverFunc(func(c context.Context, p Problem) (*Result, error) {
		return nil, context.Canceled
	})
	b2 := NewBreaker(named{canceledPrimary, "cp"}, fallback, BreakerConfig{Threshold: 1})
	if _, err := b2.Solve(ctx, Problem{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st := b2.Stats(); st.Open || st.Failures != 0 {
		t.Fatalf("caller cancellation counted as failure: %+v", st)
	}

	// The same (nil, Canceled) outcome under a LIVE caller context is a
	// broken solver and must count.
	if _, err := b2.Solve(context.Background(), Problem{}); err != nil {
		t.Fatalf("tripped breaker should have served fallback: %v", err)
	}
	if st := b2.Stats(); !st.Open || st.Failures != 1 {
		t.Fatalf("live-context nil-result cancel not counted: %+v", st)
	}
}

func TestBreakerRegionCapabilityNeedsBoth(t *testing.T) {
	capable := &scriptedSolver{name: "c", region: true}
	incapable := &scriptedSolver{name: "i", region: false}
	if NewBreaker(capable, incapable, BreakerConfig{}).SupportsRegions() {
		t.Fatal("breaker with region-incapable fallback claims region support")
	}
	if NewBreaker(incapable, capable, BreakerConfig{}).SupportsRegions() {
		t.Fatal("breaker with region-incapable primary claims region support")
	}
}

// solverFunc adapts a function to Solver for tests.
type solverFunc func(context.Context, Problem) (*Result, error)

func (f solverFunc) Name() string { return "func" }
func (f solverFunc) Solve(ctx context.Context, p Problem) (*Result, error) {
	return f(ctx, p)
}

// named overrides a solver's name.
type named struct {
	Solver
	name string
}

func (n named) Name() string { return n.name }
