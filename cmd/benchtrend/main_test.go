package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFileSourcesAndMarkdown(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	os.WriteFile(a, []byte(`{"benchmarks":{"BenchmarkChitChatWorkers1":{"iterations":2,"ns_per_op":1.94e8,"sec_per_op":0.194}}}`), 0o644)
	os.WriteFile(b, []byte(`{"benchmarks":{"BenchmarkNosyWorkers1":{"iterations":2,"ns_per_op":4.1e8,"sec_per_op":0.41}}}`), 0o644)

	srcs, err := fileSources([]string{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if len(srcs) != 2 {
		t.Fatalf("got %d sources", len(srcs))
	}
	md := renderMarkdown(srcs)
	for _, want := range []string{"ChitChatWorkers1", "NosyWorkers1", "0.194", "0.41"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
	// Two columns + source column on every data row.
	for _, line := range strings.Split(md, "\n") {
		if strings.HasPrefix(line, "| ") && strings.Count(line, "|") != 4 {
			t.Fatalf("ragged table row: %q", line)
		}
	}
}

func TestFileSourcesBadJSON(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("not json"), 0o644)
	if _, err := fileSources([]string{bad}); err == nil {
		t.Fatal("expected error for malformed input")
	}
}
