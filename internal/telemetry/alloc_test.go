package telemetry

import (
	"testing"
	"time"
)

// The telemetry-off hot path — nil instruments and a nil tracer — must
// be ZERO allocations, pinned here with AllocsPerRun. This is the
// contract that lets every layer carry instrumentation unconditionally.
func TestNilInstrumentsZeroAlloc(t *testing.T) {
	var (
		c  *Counter
		g  *Gauge
		h  *Histogram
		tr *Tracer
	)
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(1.5)
		g.Add(0.5)
		h.Observe(0.01)
		id := tr.Begin(RootSpan, "solve/x", "")
		tr.End(id, "ok")
		tr.SetDuration(id, time.Millisecond)
	}); n != 0 {
		t.Fatalf("telemetry-off hot path allocates %v/op, want 0", n)
	}
}

// Enabled counters and gauges are also allocation-free after
// registration — the hot path is pure atomics.
func TestEnabledInstrumentsZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total")
	g := r.Gauge("drift")
	h := r.Histogram("lat_seconds", LatencyBuckets)
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(0.25)
		h.Observe(0.003)
	}); n != 0 {
		t.Fatalf("enabled hot path allocates %v/op, want 0", n)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", LatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
}

func BenchmarkNilCounterInc(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
