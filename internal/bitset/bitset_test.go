package bitset

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	s := New(0)
	if s.Count() != 0 || s.Len() != 0 {
		t.Fatalf("empty set: count=%d len=%d", s.Count(), s.Len())
	}
	s.SetAll() // no-op on the empty set, must not touch missing words
	if s.Count() != 0 {
		t.Fatalf("SetAll on empty set: count=%d", s.Count())
	}
}

func TestSetAll(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 128, 1000} {
		s := New(n)
		s.Set(0) // pre-existing bits must not confuse the fill
		s.SetAll()
		if s.Count() != n {
			t.Fatalf("n=%d: SetAll count=%d", n, s.Count())
		}
		for i := 0; i < n; i++ {
			if !s.Test(i) {
				t.Fatalf("n=%d: bit %d clear after SetAll", n, i)
			}
		}
		s.Clear(n - 1)
		if s.Count() != n-1 {
			t.Fatalf("n=%d: count=%d after one Clear", n, s.Count())
		}
	}
}

func TestSetTestClear(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Test(i) {
			t.Fatalf("bit %d set before Set", i)
		}
		s.Set(i)
		if !s.Test(i) {
			t.Fatalf("bit %d clear after Set", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	s.Clear(64)
	if s.Test(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
}

func TestReset(t *testing.T) {
	s := New(200)
	for i := 0; i < 200; i += 3 {
		s.Set(i)
	}
	s.Reset()
	if s.Count() != 0 {
		t.Fatalf("Count after Reset = %d", s.Count())
	}
}

func TestCloneIndependent(t *testing.T) {
	s := New(70)
	s.Set(5)
	c := s.Clone()
	c.Set(6)
	if s.Test(6) {
		t.Fatal("Clone shares storage with original")
	}
	if !c.Test(5) {
		t.Fatal("Clone lost bit 5")
	}
}

func TestRangeOrder(t *testing.T) {
	s := New(300)
	want := []int{2, 63, 64, 150, 299}
	for _, i := range want {
		s.Set(i)
	}
	var got []int
	s.Range(func(i int) bool {
		got = append(got, i)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %d bits, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range order: got %v, want %v", got, want)
		}
	}
}

func TestRangeEarlyStop(t *testing.T) {
	s := New(100)
	for i := 0; i < 100; i++ {
		s.Set(i)
	}
	n := 0
	s.Range(func(int) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("Range visited %d bits after early stop, want 10", n)
	}
}

func TestNextSet(t *testing.T) {
	s := New(300)
	want := []int{2, 63, 64, 150, 299}
	for _, i := range want {
		s.Set(i)
	}
	var got []int
	for i, ok := s.NextSet(0); ok; i, ok = s.NextSet(i + 1) {
		got = append(got, i)
	}
	if len(got) != len(want) {
		t.Fatalf("NextSet walk visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NextSet walk: got %v, want %v", got, want)
		}
	}
	// Same-index restart returns the bit itself; past-the-end is clean.
	if i, ok := s.NextSet(63); !ok || i != 63 {
		t.Fatalf("NextSet(63) = %d,%v, want 63,true", i, ok)
	}
	if i, ok := s.NextSet(-5); !ok || i != 2 {
		t.Fatalf("NextSet(-5) = %d,%v, want 2,true", i, ok)
	}
	if _, ok := s.NextSet(300); ok {
		t.Fatal("NextSet past capacity reported a bit")
	}
	if _, ok := New(0).NextSet(0); ok {
		t.Fatal("NextSet on empty set reported a bit")
	}
}

func TestAppendSet(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 64, 129} {
		s.Set(i)
	}
	got := s.AppendSet([]int32{-1})
	want := []int32{-1, 0, 64, 129}
	if len(got) != len(want) {
		t.Fatalf("AppendSet = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AppendSet = %v, want %v", got, want)
		}
	}
}

// Concurrent SetAtomic/ClearAtomic on adjacent bits of shared words must
// not lose updates (run under -race in CI).
func TestAtomicSetClearConcurrent(t *testing.T) {
	const n = 1024
	s := New(n)
	var wg sync.WaitGroup
	for wk := 0; wk < 8; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			for i := wk; i < n; i += 8 {
				s.SetAtomic(i)
			}
			for i := wk; i < n; i += 16 {
				s.ClearAtomic(i)
			}
		}(wk)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		// Bit i is set by worker i%8 and, when i%16 < 8, cleared by the
		// same worker afterwards — so it survives iff i%16 >= 8.
		want := i%16 >= 8
		if s.Test(i) != want {
			t.Fatalf("bit %d = %v, want %v", i, s.Test(i), want)
		}
	}
}

// Property: a Set agrees with a map[int]bool reference under a random
// operation sequence.
func TestQuickAgainstMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(500)
		s := New(n)
		ref := make(map[int]bool)
		for op := 0; op < 300; op++ {
			i := rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				s.Set(i)
				ref[i] = true
			case 1:
				s.Clear(i)
				delete(ref, i)
			case 2:
				if s.Test(i) != ref[i] {
					return false
				}
			}
		}
		if s.Count() != len(ref) {
			return false
		}
		for i := range ref {
			if !s.Test(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
