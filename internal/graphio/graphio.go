// Package graphio reads and writes social graphs in two formats: a
// human-editable text edge list ("u v" per line, '#' comments) and a
// compact little-endian binary format for large graphs.
package graphio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"

	"piggyback/internal/graph"
)

// WriteText writes g as an edge list with a header comment.
func WriteText(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# piggyback graph: %d nodes %d edges\n# u v  (v subscribes to u)\n%d\n",
		g.NumNodes(), g.NumEdges(), g.NumNodes()); err != nil {
		return err
	}
	var err error
	g.Edges(func(_ graph.EdgeID, u, v graph.NodeID) bool {
		_, err = fmt.Fprintf(bw, "%d %d\n", u, v)
		return err == nil
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// ReadText parses the text format: optional comment lines, a node-count
// line, then "u v" edges.
func ReadText(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var b *graph.Builder
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if b == nil {
			if len(fields) != 1 {
				return nil, fmt.Errorf("graphio: line %d: expected node count, got %q", line, text)
			}
			n, err := strconv.Atoi(fields[0])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("graphio: line %d: bad node count %q", line, text)
			}
			b = graph.NewBuilder(n)
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("graphio: line %d: expected \"u v\", got %q", line, text)
		}
		u, err1 := strconv.ParseInt(fields[0], 10, 32)
		v, err2 := strconv.ParseInt(fields[1], 10, 32)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("graphio: line %d: bad edge %q", line, text)
		}
		if err := addChecked(b, graph.NodeID(u), graph.NodeID(v)); err != nil {
			return nil, fmt.Errorf("graphio: line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("graphio: empty input")
	}
	return b.Build(), nil
}

// addChecked adds an edge, reporting the typed graph.ErrEdgeOutOfRange
// for bad endpoints instead of panicking (file input is untrusted).
func addChecked(b *graph.Builder, u, v graph.NodeID) error {
	return b.TryAddEdge(u, v)
}

// binaryMagic identifies the binary format ("PGY1").
const binaryMagic = 0x50475931

// WriteBinary writes g in the compact binary format: magic, node count,
// edge count, then (u, v) int32 pairs, all little-endian.
func WriteBinary(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	hdr := []uint32{binaryMagic, uint32(g.NumNodes()), uint32(g.NumEdges())}
	if err := binary.Write(bw, binary.LittleEndian, hdr); err != nil {
		return err
	}
	buf := make([]int32, 0, 2048)
	var err error
	g.Edges(func(_ graph.EdgeID, u, v graph.NodeID) bool {
		buf = append(buf, u, v)
		if len(buf) == cap(buf) {
			err = binary.Write(bw, binary.LittleEndian, buf)
			buf = buf[:0]
		}
		return err == nil
	})
	if err != nil {
		return err
	}
	if len(buf) > 0 {
		if err := binary.Write(bw, binary.LittleEndian, buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses the binary format.
func ReadBinary(r io.Reader) (*graph.Graph, error) {
	br := bufio.NewReader(r)
	var hdr [3]uint32
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("graphio: reading header: %w", err)
	}
	if hdr[0] != binaryMagic {
		return nil, fmt.Errorf("graphio: bad magic %#x", hdr[0])
	}
	n, m := int(hdr[1]), int(hdr[2])
	if n < 0 || m < 0 {
		return nil, fmt.Errorf("graphio: negative sizes in header")
	}
	b := graph.NewBuilder(n)
	pair := make([]int32, 2)
	for i := 0; i < m; i++ {
		if err := binary.Read(br, binary.LittleEndian, &pair); err != nil {
			return nil, fmt.Errorf("graphio: reading edge %d: %w", i, err)
		}
		if err := addChecked(b, pair[0], pair[1]); err != nil {
			return nil, fmt.Errorf("graphio: edge %d: %w", i, err)
		}
	}
	return b.Build(), nil
}
