// Package baseline implements the request schedules the paper compares
// against: push-all, pull-all, and the hybrid per-edge schedule of
// Silberstein et al. (SIGMOD 2010), which the paper calls FEEDINGFRENZY
// (FF) and uses as its baseline everywhere.
package baseline

import (
	"math"

	"piggyback/internal/core"
	"piggyback/internal/graph"
	"piggyback/internal/workload"
)

// PushAll returns the schedule where every edge is served by a push:
// efficient for read-dominated workloads (each query touches only the
// reader's own view).
func PushAll(g *graph.Graph) *core.Schedule {
	s := core.NewSchedule(g)
	g.Edges(func(e graph.EdgeID, _, _ graph.NodeID) bool {
		s.SetPush(e)
		return true
	})
	return s
}

// PullAll returns the schedule where every edge is served by a pull:
// efficient for write-dominated workloads.
func PullAll(g *graph.Graph) *core.Schedule {
	s := core.NewSchedule(g)
	g.Edges(func(e graph.EdgeID, _, _ graph.NodeID) bool {
		s.SetPull(e)
		return true
	})
	return s
}

// Hybrid returns the FEEDINGFRENZY schedule: each edge u → v is served by
// the cheaper of a push (cost rp(u)) and a pull (cost rc(v)). Ties go to
// push. This is the per-edge optimum among direct schedules.
func Hybrid(g *graph.Graph, r *workload.Rates) *core.Schedule {
	s := core.NewSchedule(g)
	s.Finalize(r) // Finalize implements exactly the hybrid rule
	return s
}

// EdgeCost returns c*(u → v) = min(rp(u), rc(v)), the hybrid cost of
// serving one edge directly. Both CHITCHAT and PARALLELNOSY price
// alternatives against it.
func EdgeCost(r *workload.Rates, u, v graph.NodeID) float64 {
	return math.Min(r.Prod[u], r.Cons[v])
}

// HybridCost returns the total cost of the hybrid schedule without
// materializing it.
func HybridCost(g *graph.Graph, r *workload.Rates) float64 {
	total := 0.0
	g.Edges(func(_ graph.EdgeID, u, v graph.NodeID) bool {
		total += EdgeCost(r, u, v)
		return true
	})
	return total
}
