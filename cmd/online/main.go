// Command online runs the online rescheduling daemon over a synthetic
// churn trace and reports the drift trajectory: maintained cost vs. the
// coverability lower bound, localized re-solve activity, and the final
// gap to a from-scratch re-optimization of the churned graph.
//
// With -serve it additionally runs the prototype view-store cluster:
// the daemon's accepted re-solves swap the cluster's live schedule
// (store.Cluster.Swap), demoing serving + rescheduling end to end, and
// the throughput of the initial vs. final schedule is measured.
//
//	go run ./cmd/online -nodes 2000 -ops 5000 -solver chitchat
//	go run ./cmd/online -nodes 1000 -ops 3000 -serve -servers 8
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"piggyback/internal/baseline"
	"piggyback/internal/chitchat"
	"piggyback/internal/core"
	"piggyback/internal/graph"
	"piggyback/internal/graphgen"
	"piggyback/internal/online"
	_ "piggyback/internal/shard" // registers the "shard" solver
	"piggyback/internal/solver"
	"piggyback/internal/stats"
	"piggyback/internal/store"
	"piggyback/internal/telemetry"
	"piggyback/internal/workload"
)

func main() {
	nodes := flag.Int("nodes", 2000, "graph size (Flickr-like shape)")
	ops := flag.Int("ops", 5000, "churn trace length")
	seed := flag.Int64("seed", 42, "graph and trace seed")
	solverName := flag.String("solver", "chitchat", "localized re-solver: any registered solver supporting regions")
	threshold := flag.Float64("threshold", 0, "drift threshold (0 = default)")
	k := flag.Int("k", 0, "region hop radius (0 = default)")
	maxRegion := flag.Int("maxregion", 0, "region node cap (0 = default)")
	every := flag.Int("every", 0, "ops between drift checks (0 = default)")
	workers := flag.Int("workers", 0, "solver workers (0 = GOMAXPROCS)")
	budget := flag.Duration("budget", 0, "wall-clock budget per localized re-solve (0 = none)")
	report := flag.Int("report", 1000, "ops between progress lines")
	addFrac := flag.Float64("adds", 0, "fraction of ops that add edges (0 = default)")
	rmFrac := flag.Float64("removes", 0, "fraction of ops that remove edges (0 = default)")
	serve := flag.Bool("serve", false, "run a live view-store cluster; accepted re-solves swap its schedule")
	servers := flag.Int("servers", 8, "view-store servers (with -serve)")
	fallback := flag.String("fallback", "", "circuit-breaker fallback solver; quarantines a failing -solver")
	breakerN := flag.Int("breaker", 0, "consecutive solver failures before quarantine (0 = default, with -fallback)")
	telem := flag.String("telemetry", "", "serve /metrics, /metrics.txt and /debug/pprof on this address (e.g. 127.0.0.1:9090)")
	linger := flag.Duration("linger", 0, "keep the -telemetry endpoint up this long after the run completes")
	flag.Parse()

	cfg := online.Config{
		K:                *k,
		DriftThreshold:   *threshold,
		CheckEvery:       *every,
		MaxRegionNodes:   *maxRegion,
		ResolveTimeout:   *budget,
		Fallback:         *fallback,
		BreakerThreshold: *breakerN,
	}
	if *solverName == solver.Auto {
		// The built-in selector path: the daemon wires its drift tracker
		// into the selector's degradation hint, so badly drifted regions
		// get the quality reference and mild ones the cheap patch.
		cfg.Solver = online.SolverAuto
		cfg.Nosy.Workers = *workers
	} else {
		// One code path for algorithm selection: the registry. Any solver
		// that supports Problem.Region can drive the daemon's re-solves.
		regional, err := solver.Default.New(*solverName, solver.Options{Workers: *workers})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if !solver.SupportsRegions(regional) {
			fmt.Fprintf(os.Stderr, "-solver %s cannot re-solve regions (region-capable: chitchat, nosy)\n", *solverName)
			os.Exit(2)
		}
		cfg.Regional = regional
	}

	// -telemetry: one registry feeds the daemon's online_* series, the
	// per-solver solver_* series (via the WithMetrics middleware around
	// the regional solver), and a liveness gauge; the tracer records the
	// deterministic re-solve span tree. The endpoint is up before the
	// first op, and every series is pre-registered so a scrape during
	// warmup sees the full inventory at zero.
	if *telem != "" {
		reg := telemetry.NewRegistry()
		cfg.Metrics = reg
		cfg.Tracer = telemetry.NewTracer(*seed)
		cfg.Events = &telemetry.EventLog{}
		sink := stats.NewSolverMetrics(reg)
		sink.Touch(*solverName)
		if cfg.Regional != nil {
			cfg.Regional = solver.Chain(cfg.Regional, solver.WithMetrics(sink))
		}
		reg.Gauge("piggyback_up").Set(1)
		ln, err := telemetry.Serve(*telem, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer ln.Close()
		fmt.Printf("telemetry: http://%s/metrics (pprof at /debug/pprof/)\n", ln.Addr())
		if *linger > 0 {
			defer time.Sleep(*linger)
		}
	}

	g := graphgen.Social(graphgen.FlickrLike(*nodes, *seed))
	r := workload.LogDegree(g, 5)
	fmt.Printf("graph: %d nodes, %d edges; solving initial schedule…\n",
		g.NumNodes(), g.NumEdges())
	init := chitchat.Solve(g, r, chitchat.Config{Workers: *workers})
	trace := workload.GenerateChurn(g, r, *ops, workload.ChurnConfig{
		Seed: *seed, AddFraction: *addFrac, RemoveFraction: *rmFrac,
	})

	d, err := online.New(init, r, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// -serve: the store tier executes the live schedule; every accepted
	// splice goes live via an atomic plan swap, no drain needed.
	var cluster *store.Cluster
	swaps := 0
	if *serve {
		cluster, err = store.NewCluster(init, store.Options{Servers: *servers})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer cluster.Close()
		d.OnSplice = func(_ *graph.Graph, s *core.Schedule) {
			if err := cluster.Swap(s); err != nil {
				fmt.Fprintf(os.Stderr, "swap: %v\n", err)
				return
			}
			swaps++
		}
		fmt.Printf("serving: %d view-store servers executing the live schedule\n", *servers)
		fmt.Printf("initial throughput: %.0f req/s/client\n", measure(cluster, r, *seed))
	}

	fmt.Printf("initial: cost %.1f, lower bound %.1f, drift %.3f\n\n",
		d.Cost(), d.LowerBound(), d.Drift())
	fmt.Printf("%8s %12s %8s %9s %9s %12s\n",
		"ops", "cost", "drift", "resolves", "reverted", "region edges")
	ctx := context.Background()
	for i, op := range trace {
		if err := d.ApplyCtx(ctx, op); err != nil {
			fmt.Fprintf(os.Stderr, "op %d: %v\n", i, err)
			os.Exit(1)
		}
		if (i+1)%*report == 0 {
			st := d.Stats()
			fmt.Printf("%8d %12.1f %8.3f %9d %9d %12d\n",
				i+1, d.Cost(), d.Drift(), st.Resolves, st.Reverted, st.RegionEdges)
		}
	}
	if err := d.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "final schedule invalid: %v\n", err)
		os.Exit(1)
	}

	liveG, liveS := d.Snapshot()
	// The from-scratch comparison uses the daemon's CURRENT rates —
	// the churn stream may have rescaled user activity.
	freshCost := chitchat.Solve(liveG, d.Rates(), chitchat.Config{Workers: *workers}).Cost(d.Rates())
	st := d.Stats()
	fmt.Printf("\nfinal: %d live edges, cost %.1f (snapshot %.1f)\n",
		liveG.NumEdges(), d.Cost(), liveS.Cost(d.Rates()))
	fmt.Printf("from-scratch CHITCHAT on final graph: %.1f → daemon is %.2f%% above\n",
		freshCost, 100*(d.Cost()-freshCost)/freshCost)
	fmt.Printf("hybrid baseline on final graph: %.1f\n", baseline.HybridCost(liveG, d.Rates()))
	fmt.Printf("localized re-solves: %d accepted, %d reverted, %d rescues\n",
		st.Resolves, st.Reverted, st.Rescues)
	if st.Breaker != nil {
		b := st.Breaker
		fmt.Printf("breaker: %d failures, %d trips, %d fallback solves, %d probes, %d closes (open: %v)\n",
			b.Failures, b.Trips, b.FallbackSolves, b.Probes, b.Closes, b.Open)
	}
	fmt.Printf("region edges re-solved: %d (%.1f%% of final live edges)\n",
		st.RegionEdges, 100*float64(st.RegionEdges)/float64(liveG.NumEdges()))
	if *serve {
		// The cluster now executes the last accepted splice; swap in the
		// final maintained snapshot so the measurement reflects the
		// daemon's end state exactly.
		if err := cluster.Swap(liveS); err != nil {
			fmt.Fprintf(os.Stderr, "final swap: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("serving: %d live schedule swaps during the trace\n", swaps)
		fmt.Printf("final throughput: %.0f req/s/client (schedule swapped without draining)\n",
			measure(cluster, d.Rates(), *seed))
	}
}

// measure replays a short sampled trace and reports per-client
// throughput on the cluster's current plan.
func measure(c *store.Cluster, r *workload.Rates, seed int64) float64 {
	t := store.GenerateTrace(r, 4000, seed)
	return store.MeasureThroughput(c, t, 4).PerClientRate
}
