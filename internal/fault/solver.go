package fault

import (
	"context"
	"fmt"

	"piggyback/internal/solver"
)

// SolverPanics is middleware that panics on solve invocations from..to
// (1-based, inclusive from, exclusive to), counted per wrapper
// instance. Paired with solver.WithRecover it turns into scheduled hard
// failures — the deterministic way to exercise the circuit breaker.
func SolverPanics(from, to int) solver.Middleware {
	return func(next solver.Solver) solver.Solver {
		return &sabotageSolver{inner: next, from: from, to: to, mode: sabotagePanic}
	}
}

// SolverStalls is middleware that, on solve invocations from..to
// (1-based, inclusive from, exclusive to), ignores the problem and
// blocks until the context is done, then returns (nil, ctx.Err()) — a
// solver that violates the anytime contract, the failure a
// ResolveTimeout exists to contain.
func SolverStalls(from, to int) solver.Middleware {
	return func(next solver.Solver) solver.Solver {
		return &sabotageSolver{inner: next, from: from, to: to, mode: sabotageStall}
	}
}

type sabotageMode uint8

const (
	sabotagePanic sabotageMode = iota
	sabotageStall
)

type sabotageSolver struct {
	inner    solver.Solver
	from, to int
	mode     sabotageMode
	n        int
}

func (s *sabotageSolver) Name() string { return s.inner.Name() }

// SupportsRegions delegates so a sabotaged regional solver still passes
// the daemon's configuration-time capability check.
func (s *sabotageSolver) SupportsRegions() bool { return solver.SupportsRegions(s.inner) }

func (s *sabotageSolver) Solve(ctx context.Context, p solver.Problem) (*solver.Result, error) {
	s.n++
	if s.n >= s.from && s.n < s.to {
		switch s.mode {
		case sabotageStall:
			<-ctx.Done()
			return nil, ctx.Err()
		default:
			panic(fmt.Sprintf("fault: injected panic on solve %d of %s", s.n, s.inner.Name()))
		}
	}
	return s.inner.Solve(ctx, p)
}
