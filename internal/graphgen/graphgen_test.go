package graphgen

import (
	"math/rand"
	"testing"

	"piggyback/internal/graph"
)

func TestSocialDeterministic(t *testing.T) {
	a := Social(TwitterLike(500, 42))
	b := Social(TwitterLike(500, 42))
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("same seed produced %d vs %d edges", a.NumEdges(), b.NumEdges())
	}
	ea, eb := a.EdgeList(), b.EdgeList()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ea[i], eb[i])
		}
	}
	c := Social(TwitterLike(500, 43))
	if c.NumEdges() == a.NumEdges() {
		// Different seeds could coincide in count, but the edge lists
		// should differ somewhere.
		ec := c.EdgeList()
		same := true
		for i := range ea {
			if ea[i] != ec[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

func TestSocialDensity(t *testing.T) {
	cfg := TwitterLike(2000, 1)
	g := Social(cfg)
	avg := float64(g.NumEdges()) / float64(g.NumNodes())
	// Reciprocity adds edges beyond AvgFollows; accept a broad band.
	if avg < float64(cfg.AvgFollows)*0.7 || avg > float64(cfg.AvgFollows)*2.0 {
		t.Fatalf("avg degree = %.1f, want near %d", avg, cfg.AvgFollows)
	}
}

func TestSocialHasClusteringAndSkew(t *testing.T) {
	g := Social(TwitterLike(3000, 7))
	rng := rand.New(rand.NewSource(1))
	cc := g.ClusteringCoefficient(300, rng)
	if cc < 0.05 {
		t.Fatalf("clustering coefficient = %.3f; social generator should cluster", cc)
	}
	// Degree skew: max follower count far above average.
	s := g.ComputeStats(100, rng)
	if float64(s.MaxOutDegree) < 5*s.AvgOutDegree {
		t.Fatalf("max out-degree %d not skewed vs avg %.1f", s.MaxOutDegree, s.AvgOutDegree)
	}
	// ER null model should cluster much less at the same density.
	er := ErdosRenyi(3000, g.NumEdges(), 7)
	ccER := er.ClusteringCoefficient(300, rng)
	if cc < 2*ccER {
		t.Fatalf("social clustering %.3f not clearly above ER %.3f", cc, ccER)
	}
}

func TestPresetsDiffer(t *testing.T) {
	tw := Social(TwitterLike(2000, 3))
	fl := Social(FlickrLike(2000, 3))
	if rt, rf := tw.Reciprocity(), fl.Reciprocity(); rf <= rt {
		t.Fatalf("flickr-like reciprocity %.2f should exceed twitter-like %.2f", rf, rt)
	}
}

func TestSocialTinyGraphs(t *testing.T) {
	for n := 0; n <= 4; n++ {
		g := Social(Config{Nodes: n, AvgFollows: 3, Seed: 1})
		if g.NumNodes() != n {
			t.Fatalf("n=%d: NumNodes=%d", n, g.NumNodes())
		}
	}
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(100, 500, 9)
	if g.NumNodes() != 100 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	if g.NumEdges() < 400 || g.NumEdges() > 500 {
		t.Fatalf("NumEdges = %d, want ~500 (minus collisions)", g.NumEdges())
	}
}

func TestZipfConfiguration(t *testing.T) {
	g := ZipfConfiguration(500, 1.5, 100, 11)
	if g.NumNodes() != 500 || g.NumEdges() == 0 {
		t.Fatalf("unexpected graph: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	var maxd int
	for u := 0; u < g.NumNodes(); u++ {
		if d := g.OutDegree(graph.NodeID(u)); d > maxd {
			maxd = d
		}
	}
	if maxd < 5 {
		t.Fatalf("zipf generator produced no skew (max out-degree %d)", maxd)
	}
}

func TestJitterBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		k := jitter(rng, 10)
		if k < 5 || k > 15 {
			t.Fatalf("jitter(10) = %d out of [5,15]", k)
		}
	}
	if jitter(rng, 1) != 1 || jitter(rng, 0) != 1 {
		t.Fatal("jitter should floor at 1")
	}
}

func TestStreamSocialDeterministic(t *testing.T) {
	a := StreamSocial(FlickrLike(800, 7))
	b := StreamSocial(FlickrLike(800, 7))
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("same seed produced %d vs %d edges", a.NumEdges(), b.NumEdges())
	}
	ea, eb := a.EdgeList(), b.EdgeList()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ea[i], eb[i])
		}
	}
	c := StreamSocial(FlickrLike(800, 8))
	if c.NumEdges() == a.NumEdges() {
		ec := c.EdgeList()
		same := true
		for i := range ea {
			if ea[i] != ec[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

// The streaming generator must keep the properties the paper's results
// rest on: degree skew, clustering, reciprocity near the preset's knob.
func TestStreamSocialShape(t *testing.T) {
	g := StreamSocial(FlickrLike(3000, 11))
	rng := rand.New(rand.NewSource(1))
	s := g.ComputeStats(300, rng)
	if float64(s.MaxOutDegree) < 5*s.AvgOutDegree {
		t.Fatalf("max out-degree %d not skewed vs avg %.1f", s.MaxOutDegree, s.AvgOutDegree)
	}
	if s.ClusteringCoef < 0.05 {
		t.Fatalf("clustering %.3f too low", s.ClusteringCoef)
	}
	if s.Reciprocity < 0.3 {
		t.Fatalf("reciprocity %.3f too low for the Flickr preset", s.Reciprocity)
	}
}

func TestStreamSocialTinyGraphs(t *testing.T) {
	for n := 0; n <= 5; n++ {
		g := StreamSocial(Config{Nodes: n, AvgFollows: 3, Seed: 1})
		if g.NumNodes() != n {
			t.Fatalf("nodes = %d, want %d", g.NumNodes(), n)
		}
	}
}

func TestFlickrLikeEdgesHitsTarget(t *testing.T) {
	const target = 120000
	cfg := FlickrLikeEdges(target, 3)
	g := StreamSocial(cfg)
	m := g.NumEdges()
	if m < target*7/10 || m > target*13/10 {
		t.Fatalf("generated %d edges for target %d (outside ±30%%)", m, target)
	}
}
