package sampling

import (
	"testing"

	"piggyback/internal/graph"
	"piggyback/internal/graphgen"
)

func testGraph() *graph.Graph {
	return graphgen.Social(graphgen.TwitterLike(2000, 5))
}

func TestRandomWalkReachesTarget(t *testing.T) {
	g := testGraph()
	target := 3000
	r := RandomWalk(g, target, 1)
	if r.Graph.NumEdges() < target {
		t.Fatalf("sample has %d edges, want >= %d", r.Graph.NumEdges(), target)
	}
	if r.Graph.NumNodes() != len(r.Original) {
		t.Fatalf("mapping length %d != nodes %d", len(r.Original), r.Graph.NumNodes())
	}
}

func TestBFSReachesTarget(t *testing.T) {
	g := testGraph()
	target := 3000
	r := BFS(g, target, 1)
	if r.Graph.NumEdges() < target {
		t.Fatalf("sample has %d edges, want >= %d", r.Graph.NumEdges(), target)
	}
}

// Every sampled edge must exist in the original graph under the mapping,
// and the sample must be the full induced subgraph (no induced edge
// missing).
func testInduced(t *testing.T, g *graph.Graph, r Result) {
	t.Helper()
	r.Graph.Edges(func(_ graph.EdgeID, u, v graph.NodeID) bool {
		if !g.HasEdge(r.Original[u], r.Original[v]) {
			t.Fatalf("sampled edge (%d,%d) missing in original", r.Original[u], r.Original[v])
		}
		return true
	})
	index := make(map[graph.NodeID]graph.NodeID)
	for i, orig := range r.Original {
		index[orig] = graph.NodeID(i)
	}
	for _, orig := range r.Original {
		for _, w := range g.OutNeighbors(orig) {
			if j, ok := index[w]; ok {
				if !r.Graph.HasEdge(index[orig], j) {
					t.Fatalf("induced edge (%d,%d) missing in sample", orig, w)
				}
			}
		}
	}
}

func TestRandomWalkInduced(t *testing.T) {
	g := testGraph()
	testInduced(t, g, RandomWalk(g, 2000, 3))
}

func TestBFSInduced(t *testing.T) {
	g := testGraph()
	testInduced(t, g, BFS(g, 2000, 3))
}

func TestSampleWholeGraph(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 3}})
	r := BFS(g, 1000, 1)
	if r.Graph.NumEdges() != g.NumEdges() || r.Graph.NumNodes() != g.NumNodes() {
		t.Fatalf("asking for more edges than exist should return the whole graph: %d/%d",
			r.Graph.NumNodes(), r.Graph.NumEdges())
	}
	r2 := RandomWalk(g, 1000, 1)
	if r2.Graph.NumEdges() != g.NumEdges() {
		t.Fatalf("random walk whole-graph sample has %d edges", r2.Graph.NumEdges())
	}
}

func TestDeterministicSeeds(t *testing.T) {
	g := testGraph()
	a := RandomWalk(g, 2000, 9)
	b := RandomWalk(g, 2000, 9)
	if a.Graph.NumNodes() != b.Graph.NumNodes() || a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatal("same seed gave different samples")
	}
	for i := range a.Original {
		if a.Original[i] != b.Original[i] {
			t.Fatal("same seed gave different node orders")
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.FromEdges(0, nil)
	if r := RandomWalk(g, 10, 1); r.Graph.NumNodes() != 0 {
		t.Fatal("empty graph random walk should be empty")
	}
	if r := BFS(g, 10, 1); r.Graph.NumNodes() != 0 {
		t.Fatal("empty graph BFS should be empty")
	}
}

func TestBFSPreservesHubDegreeBetter(t *testing.T) {
	// The paper observes BFS samples keep early nodes' full degree. Check
	// that the max out-degree in a BFS sample is at least that of the
	// random-walk sample on average over seeds.
	g := testGraph()
	var bfsMax, rwMax int
	for seed := int64(0); seed < 3; seed++ {
		b := BFS(g, 4000, seed)
		r := RandomWalk(g, 4000, seed)
		for u := 0; u < b.Graph.NumNodes(); u++ {
			if d := b.Graph.OutDegree(graph.NodeID(u)); d > bfsMax {
				bfsMax = d
			}
		}
		for u := 0; u < r.Graph.NumNodes(); u++ {
			if d := r.Graph.OutDegree(graph.NodeID(u)); d > rwMax {
				rwMax = d
			}
		}
	}
	if bfsMax == 0 || rwMax == 0 {
		t.Fatal("degenerate samples")
	}
}
