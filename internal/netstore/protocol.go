// Package netstore is the networked variant of the §4.3 prototype: the
// data-store servers of package store exposed over TCP with a compact
// binary protocol, and a schedule-driven client that batches one request
// per server, exactly like Algorithm 3 against memcached. Where package
// store measures the scheduling effect in isolation (in-process message
// passing), netstore adds real sockets, so measured throughput includes
// genuine network stack costs.
package netstore

import (
	"encoding/binary"
	"fmt"
	"io"

	"piggyback/internal/graph"
	"piggyback/internal/store"
)

// Protocol: every message is a length-prefixed frame.
//
//	frame  := len(uint32 LE) body
//	request body :=
//	    opUpdate(1) event{user int32, id int64, ts int64} n(uint32) n×view(int32)
//	  | opQuery(1)  k(uint32) n(uint32) n×view(int32)
//	response body :=
//	    update → empty
//	    query  → count(uint32) count×event{user int32, id int64, ts int64}
const (
	opUpdate byte = 1
	opQuery  byte = 2
)

// maxFrame bounds a frame to keep a malicious or corrupt peer from
// forcing huge allocations.
const maxFrame = 16 << 20

const eventWire = 4 + 8 + 8 // user + id + ts

func writeFrame(w io.Writer, body []byte) error {
	var hdr [4]byte
	if len(body) > maxFrame {
		return fmt.Errorf("netstore: frame of %d bytes exceeds limit", len(body))
	}
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

func readFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("netstore: frame of %d bytes exceeds limit", n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func putEvent(b []byte, ev store.Event) {
	binary.LittleEndian.PutUint32(b[0:], uint32(ev.User))
	binary.LittleEndian.PutUint64(b[4:], uint64(ev.ID))
	binary.LittleEndian.PutUint64(b[12:], uint64(ev.TS))
}

func getEvent(b []byte) store.Event {
	return store.Event{
		User: graph.NodeID(binary.LittleEndian.Uint32(b[0:])),
		ID:   int64(binary.LittleEndian.Uint64(b[4:])),
		TS:   int64(binary.LittleEndian.Uint64(b[12:])),
	}
}

// encodeUpdate builds an update request frame body.
func encodeUpdate(ev store.Event, views []graph.NodeID) []byte {
	body := make([]byte, 1+eventWire+4+4*len(views))
	body[0] = opUpdate
	putEvent(body[1:], ev)
	binary.LittleEndian.PutUint32(body[1+eventWire:], uint32(len(views)))
	off := 1 + eventWire + 4
	for i, v := range views {
		binary.LittleEndian.PutUint32(body[off+4*i:], uint32(v))
	}
	return body
}

// encodeQuery builds a query request frame body.
func encodeQuery(k int, views []graph.NodeID) []byte {
	body := make([]byte, 1+4+4+4*len(views))
	body[0] = opQuery
	binary.LittleEndian.PutUint32(body[1:], uint32(k))
	binary.LittleEndian.PutUint32(body[5:], uint32(len(views)))
	for i, v := range views {
		binary.LittleEndian.PutUint32(body[9+4*i:], uint32(v))
	}
	return body
}

// decodeRequest parses a request body.
func decodeRequest(body []byte) (op byte, ev store.Event, k int, views []graph.NodeID, err error) {
	if len(body) < 1 {
		return 0, store.Event{}, 0, nil, fmt.Errorf("netstore: empty request")
	}
	op = body[0]
	switch op {
	case opUpdate:
		if len(body) < 1+eventWire+4 {
			return 0, store.Event{}, 0, nil, fmt.Errorf("netstore: short update frame")
		}
		ev = getEvent(body[1:])
		n := int(binary.LittleEndian.Uint32(body[1+eventWire:]))
		off := 1 + eventWire + 4
		if len(body) != off+4*n {
			return 0, store.Event{}, 0, nil, fmt.Errorf("netstore: update frame length mismatch")
		}
		views = make([]graph.NodeID, n)
		for i := range views {
			views[i] = graph.NodeID(binary.LittleEndian.Uint32(body[off+4*i:]))
		}
	case opQuery:
		if len(body) < 9 {
			return 0, store.Event{}, 0, nil, fmt.Errorf("netstore: short query frame")
		}
		k = int(binary.LittleEndian.Uint32(body[1:]))
		n := int(binary.LittleEndian.Uint32(body[5:]))
		if len(body) != 9+4*n {
			return 0, store.Event{}, 0, nil, fmt.Errorf("netstore: query frame length mismatch")
		}
		views = make([]graph.NodeID, n)
		for i := range views {
			views[i] = graph.NodeID(binary.LittleEndian.Uint32(body[9+4*i:]))
		}
	default:
		return 0, store.Event{}, 0, nil, fmt.Errorf("netstore: unknown op %d", op)
	}
	return op, ev, k, views, nil
}

// encodeEvents builds a query response body.
func encodeEvents(events []store.Event) []byte {
	body := make([]byte, 4+eventWire*len(events))
	binary.LittleEndian.PutUint32(body, uint32(len(events)))
	for i, ev := range events {
		putEvent(body[4+eventWire*i:], ev)
	}
	return body
}

// decodeEvents parses a query response body.
func decodeEvents(body []byte) ([]store.Event, error) {
	if len(body) < 4 {
		return nil, fmt.Errorf("netstore: short query response")
	}
	n := int(binary.LittleEndian.Uint32(body))
	if len(body) != 4+eventWire*n {
		return nil, fmt.Errorf("netstore: query response length mismatch")
	}
	out := make([]store.Event, n)
	for i := range out {
		out[i] = getEvent(body[4+eventWire*i:])
	}
	return out, nil
}
