package sampling

import (
	"testing"

	"piggyback/internal/graph"
	"piggyback/internal/graphgen"
)

func testGraph() *graph.Graph {
	return graphgen.Social(graphgen.TwitterLike(2000, 5))
}

func TestRandomWalkReachesTarget(t *testing.T) {
	g := testGraph()
	target := 3000
	r := RandomWalk(g, target, 1)
	if r.Graph.NumEdges() < target {
		t.Fatalf("sample has %d edges, want >= %d", r.Graph.NumEdges(), target)
	}
	if r.Graph.NumNodes() != len(r.Original) {
		t.Fatalf("mapping length %d != nodes %d", len(r.Original), r.Graph.NumNodes())
	}
}

func TestBFSReachesTarget(t *testing.T) {
	g := testGraph()
	target := 3000
	r := BFS(g, target, 1)
	if r.Graph.NumEdges() < target {
		t.Fatalf("sample has %d edges, want >= %d", r.Graph.NumEdges(), target)
	}
}

// Every sampled edge must exist in the original graph under the mapping,
// and the sample must be the full induced subgraph (no induced edge
// missing).
func testInduced(t *testing.T, g *graph.Graph, r Result) {
	t.Helper()
	r.Graph.Edges(func(_ graph.EdgeID, u, v graph.NodeID) bool {
		if !g.HasEdge(r.Original[u], r.Original[v]) {
			t.Fatalf("sampled edge (%d,%d) missing in original", r.Original[u], r.Original[v])
		}
		return true
	})
	index := make(map[graph.NodeID]graph.NodeID)
	for i, orig := range r.Original {
		index[orig] = graph.NodeID(i)
	}
	for _, orig := range r.Original {
		for _, w := range g.OutNeighbors(orig) {
			if j, ok := index[w]; ok {
				if !r.Graph.HasEdge(index[orig], j) {
					t.Fatalf("induced edge (%d,%d) missing in sample", orig, w)
				}
			}
		}
	}
}

func TestRandomWalkInduced(t *testing.T) {
	g := testGraph()
	testInduced(t, g, RandomWalk(g, 2000, 3))
}

func TestBFSInduced(t *testing.T) {
	g := testGraph()
	testInduced(t, g, BFS(g, 2000, 3))
}

func TestSampleWholeGraph(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 3}})
	r := BFS(g, 1000, 1)
	if r.Graph.NumEdges() != g.NumEdges() || r.Graph.NumNodes() != g.NumNodes() {
		t.Fatalf("asking for more edges than exist should return the whole graph: %d/%d",
			r.Graph.NumNodes(), r.Graph.NumEdges())
	}
	r2 := RandomWalk(g, 1000, 1)
	if r2.Graph.NumEdges() != g.NumEdges() {
		t.Fatalf("random walk whole-graph sample has %d edges", r2.Graph.NumEdges())
	}
}

func TestDeterministicSeeds(t *testing.T) {
	g := testGraph()
	a := RandomWalk(g, 2000, 9)
	b := RandomWalk(g, 2000, 9)
	if a.Graph.NumNodes() != b.Graph.NumNodes() || a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatal("same seed gave different samples")
	}
	for i := range a.Original {
		if a.Original[i] != b.Original[i] {
			t.Fatal("same seed gave different node orders")
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.FromEdges(0, nil)
	if r := RandomWalk(g, 10, 1); r.Graph.NumNodes() != 0 {
		t.Fatal("empty graph random walk should be empty")
	}
	if r := BFS(g, 10, 1); r.Graph.NumNodes() != 0 {
		t.Fatal("empty graph BFS should be empty")
	}
}

func TestBFSPreservesHubDegreeBetter(t *testing.T) {
	// The paper observes BFS samples keep early nodes' full degree. Check
	// that the max out-degree in a BFS sample is at least that of the
	// random-walk sample on average over seeds.
	g := testGraph()
	var bfsMax, rwMax int
	for seed := int64(0); seed < 3; seed++ {
		b := BFS(g, 4000, seed)
		r := RandomWalk(g, 4000, seed)
		for u := 0; u < b.Graph.NumNodes(); u++ {
			if d := b.Graph.OutDegree(graph.NodeID(u)); d > bfsMax {
				bfsMax = d
			}
		}
		for u := 0; u < r.Graph.NumNodes(); u++ {
			if d := r.Graph.OutDegree(graph.NodeID(u)); d > rwMax {
				rwMax = d
			}
		}
	}
	if bfsMax == 0 || rwMax == 0 {
		t.Fatal("degenerate samples")
	}
}

func TestWalkSeedsDeterministicAndDistinct(t *testing.T) {
	g := testGraph()
	a := WalkSeeds(g, 8, 7)
	b := WalkSeeds(g, 8, 7)
	if len(a) != 8 {
		t.Fatalf("got %d seeds, want 8", len(a))
	}
	seen := make(map[graph.NodeID]bool)
	for i, s := range a {
		if s != b[i] {
			t.Fatal("same seed produced different walk seeds")
		}
		if seen[s] {
			t.Fatalf("duplicate seed %d", s)
		}
		seen[s] = true
		if int(s) < 0 || int(s) >= g.NumNodes() {
			t.Fatalf("seed %d out of range", s)
		}
	}
	c := WalkSeeds(g, 8, 8)
	diff := false
	for i := range a {
		if a[i] != c[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical walk seeds")
	}
}

func TestWalkSeedsMoreThanNodes(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{From: 0, To: 1}, {From: 1, To: 2}})
	seeds := WalkSeeds(g, 10, 1)
	if len(seeds) != 3 {
		t.Fatalf("got %d seeds from a 3-node graph, want 3", len(seeds))
	}
	if WalkSeeds(g, 0, 1) != nil {
		t.Fatal("k=0 should yield nil")
	}
}

func TestWalkSeedsPrefersHubs(t *testing.T) {
	// A star: node 0 has 50 spokes. The walk concentrates on the center,
	// so seed 1 must be node 0.
	b := graph.NewBuilder(51)
	for i := int32(1); i <= 50; i++ {
		b.AddEdge(0, i)
	}
	g := b.Build()
	seeds := WalkSeeds(g, 2, 3)
	if seeds[0] != 0 {
		t.Fatalf("first seed = %d, want hub 0", seeds[0])
	}
}
