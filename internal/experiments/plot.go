package experiments

import (
	"fmt"
	"strconv"
	"strings"
)

// Plot renders the table's numeric columns as an ASCII chart, one line
// per row, with proportional bars — enough to eyeball the shape of a
// figure in a terminal or EXPERIMENTS.md without gnuplot. Non-numeric
// cells (e.g. the "converged" row label) are passed through.
func (t *Table) Plot() string {
	if len(t.Rows) == 0 || len(t.Header) < 2 {
		return t.String()
	}
	const barWidth = 40

	// Column-wise max over numeric cells (columns 1..).
	numCols := len(t.Header) - 1
	maxVal := make([]float64, numCols)
	vals := make([][]float64, len(t.Rows))
	okRow := make([][]bool, len(t.Rows))
	for i, row := range t.Rows {
		vals[i] = make([]float64, numCols)
		okRow[i] = make([]bool, numCols)
		for c := 0; c < numCols && c+1 < len(row); c++ {
			x, err := strconv.ParseFloat(row[c+1], 64)
			if err != nil || x < 0 {
				continue
			}
			vals[i][c] = x
			okRow[i][c] = true
			if x > maxVal[c] {
				maxVal[c] = x
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "## %s\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	labelWidth := len(t.Header[0])
	for _, row := range t.Rows {
		if len(row[0]) > labelWidth {
			labelWidth = len(row[0])
		}
	}
	for c := 0; c < numCols; c++ {
		fmt.Fprintf(&b, "\n%s (max %.4g)\n", t.Header[c+1], maxVal[c])
		for i, row := range t.Rows {
			fmt.Fprintf(&b, "  %-*s |", labelWidth, row[0])
			if !okRow[i][c] {
				b.WriteString(" -\n")
				continue
			}
			n := 0
			if maxVal[c] > 0 {
				n = int(vals[i][c] / maxVal[c] * barWidth)
			}
			b.WriteString(strings.Repeat("#", n))
			fmt.Fprintf(&b, " %s\n", row[c+1])
		}
	}
	return b.String()
}
