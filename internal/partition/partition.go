// Package partition models data partitioning in the prototype (§4.3):
// user views are mapped to data-store servers by hashing the user id, and
// batching lets one message serve every view a request touches on the
// same server. The package computes the placement-aware predicted cost
// (Figure 7) and per-server load statistics (Figure 8).
package partition

import (
	"piggyback/internal/core"
	"piggyback/internal/graph"
	"piggyback/internal/workload"
)

// Assignment maps each user view to a server.
type Assignment struct {
	Servers int
	of      []int32
}

// Hash assigns views to servers by hashing the user id — the "simple
// partitioning approach that is common in practical data store layers"
// used by the prototype. seed varies the layout across repetitions.
func Hash(nodes, servers int, seed int64) Assignment {
	if servers < 1 {
		servers = 1
	}
	a := Assignment{Servers: servers, of: make([]int32, nodes)}
	for u := 0; u < nodes; u++ {
		a.of[u] = int32(splitmix64(uint64(u)^uint64(seed)*0x9e3779b97f4a7c15) % uint64(servers))
	}
	return a
}

// Of returns the server hosting u's view.
func (a Assignment) Of(u graph.NodeID) int32 { return a.of[u] }

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// counterSet counts distinct servers touched by one request using a
// generation-stamped array — O(1) reset between requests.
type counterSet struct {
	stamp []int64
	gen   int64
	n     int
}

func newCounterSet(servers int) *counterSet {
	return &counterSet{stamp: make([]int64, servers)}
}

func (c *counterSet) reset() { c.gen++; c.n = 0 }

func (c *counterSet) add(s int32) {
	if c.stamp[s] != c.gen {
		c.stamp[s] = c.gen
		c.n++
	}
}

// Cost returns the placement-aware message cost of schedule s: for each
// user, an update touches the distinct servers hosting its own view and
// its push set, and a query the distinct servers hosting its own view and
// its pull set; batching merges same-server touches into one message.
func Cost(s *core.Schedule, r *workload.Rates, a Assignment) float64 {
	g := s.Graph()
	cs := newCounterSet(a.Servers)
	total := 0.0
	for u := 0; u < g.NumNodes(); u++ {
		uid := graph.NodeID(u)

		cs.reset()
		cs.add(a.Of(uid))
		lo, hi := g.OutEdgeRange(uid)
		targets := g.OutNeighbors(uid)
		for e := lo; e < hi; e++ {
			if s.IsPush(e) {
				cs.add(a.Of(targets[e-lo]))
			}
		}
		total += r.Prod[u] * float64(cs.n)

		cs.reset()
		cs.add(a.Of(uid))
		in := g.InNeighbors(uid)
		ids := g.InEdgeIDs(uid)
		for i, e := range ids {
			if s.IsPull(e) {
				cs.add(a.Of(in[i]))
			}
		}
		total += r.Cons[u] * float64(cs.n)
	}
	return total
}

// NormalizedThroughput returns predicted throughput under placement,
// normalized by the single-server optimum: cost(1 server)/cost(a). With
// one server every request is one message, so the normalizer is
// Σ rp(u) + rc(u); the result is 1 at one server and decreases as
// requests fan out over more servers (Figure 7's left axis).
func NormalizedThroughput(s *core.Schedule, r *workload.Rates, a Assignment) float64 {
	oneServer := 0.0
	for u := range r.Prod {
		oneServer += r.Prod[u] + r.Cons[u]
	}
	c := Cost(s, r, a)
	if c == 0 {
		return 0
	}
	return oneServer / c
}

// QueryLoad returns the query-message rate arriving at each server: for
// every user u and each distinct server its queries touch, that server
// receives rc(u). This is the load metric of Figure 8.
func QueryLoad(s *core.Schedule, r *workload.Rates, a Assignment) []float64 {
	g := s.Graph()
	load := make([]float64, a.Servers)
	cs := newCounterSet(a.Servers)
	touched := make([]int32, 0, 16)
	for u := 0; u < g.NumNodes(); u++ {
		uid := graph.NodeID(u)
		cs.reset()
		touched = touched[:0]
		add := func(sv int32) {
			if cs.stamp[sv] != cs.gen {
				cs.stamp[sv] = cs.gen
				touched = append(touched, sv)
			}
		}
		add(a.Of(uid))
		in := g.InNeighbors(uid)
		ids := g.InEdgeIDs(uid)
		for i, e := range ids {
			if s.IsPull(e) {
				add(a.Of(in[i]))
			}
		}
		for _, sv := range touched {
			load[sv] += r.Cons[u]
		}
	}
	return load
}
