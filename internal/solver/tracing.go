package solver

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"piggyback/internal/telemetry"
)

// WithTracing records every solve as a span in tr's deterministic span
// tree: `solve/<name>` with the problem shape as Begin attributes and
// the outcome class (iterations, cost, error kind — never wall time) as
// End attributes. The span is pushed into the inner solver's context,
// so composite solvers that begin child spans (the portfolio's race
// members, the sharded solver's per-shard solves, and nested WithTracing
// wrappers) nest under it, producing one tree for the whole solve.
//
// Wall-clock durations are recorded out-of-band via Tracer.SetDuration;
// the tree itself stays byte-identical across runs and worker counts as
// long as solves are issued in a deterministic order (sequential daemon
// re-solves qualify; see the telemetry package comment for the
// discipline composite solvers follow internally).
//
// A nil tracer returns the identity middleware.
func WithTracing(tr *telemetry.Tracer) Middleware {
	if tr == nil {
		return func(next Solver) Solver { return next }
	}
	return func(next Solver) Solver {
		return &tracingSolver{wrapped: wrapped{next}, tr: tr}
	}
}

type tracingSolver struct {
	wrapped
	tr *telemetry.Tracer
}

// problemAttrs renders the deterministic Begin attributes for p.
func problemAttrs(p Problem) string {
	if p.Region != nil {
		return fmt.Sprintf("region=%d", len(p.Region))
	}
	if p.Graph != nil {
		return fmt.Sprintf("nodes=%d edges=%d", p.Graph.NumNodes(), p.Graph.NumEdges())
	}
	return ""
}

// outcomeAttrs renders the deterministic End attributes for a solve
// outcome. Costs are deterministic here because schedules are; wall
// time never appears.
func outcomeAttrs(res *Result, err error) string {
	switch {
	case res == nil && err != nil:
		return "failed class=" + errClass(err)
	case res == nil:
		return "failed"
	}
	s := fmt.Sprintf("ok iters=%d", res.Report.Iterations)
	if !math.IsNaN(res.Report.Cost) {
		s += fmt.Sprintf(" cost=%.1f", res.Report.Cost)
	}
	if res.Report.Canceled {
		s += " canceled"
	}
	if err != nil {
		s += " class=" + errClass(err)
	}
	return s
}

// errClass buckets an error into a small deterministic vocabulary —
// error STRINGS can carry run-dependent detail, classes cannot.
func errClass(err error) string {
	switch {
	case errors.Is(err, context.Canceled):
		return "canceled"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(err, ErrRegionUnsupported):
		return "region-unsupported"
	case errors.Is(err, ErrRegionNotInduced):
		return "region-not-induced"
	case errors.Is(err, ErrNoGraph), errors.Is(err, ErrNoBase):
		return "bad-problem"
	default:
		return "error"
	}
}

func (ts *tracingSolver) Solve(ctx context.Context, p Problem) (*Result, error) {
	_, parent := telemetry.FromContext(ctx)
	id := ts.tr.Begin(parent, "solve/"+ts.Name(), problemAttrs(p))
	start := time.Now()
	res, err := ts.inner.Solve(telemetry.NewContext(ctx, ts.tr, id), p)
	ts.tr.SetDuration(id, time.Since(start))
	ts.tr.End(id, outcomeAttrs(res, err))
	return res, err
}
