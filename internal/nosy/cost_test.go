package nosy

import (
	"math"
	"testing"

	"piggyback/internal/baseline"
	"piggyback/internal/bitset"
	"piggyback/internal/graph"
	"piggyback/internal/graphgen"
	"piggyback/internal/workload"
)

// relClose compares with relative tolerance: the O(1) running cost
// accumulates deltas in Apply order, so it may differ from a fresh
// summation by floating-point rounding — never by more than that.
func relClose(a, b float64) bool {
	return math.Abs(a-b) <= 1e-8*(1+math.Abs(b))
}

// The Evaluator's running cost starts at the hybrid cost: an empty
// schedule finalizes to every edge at c*.
func TestEvaluatorInitialCostIsHybrid(t *testing.T) {
	g := graphgen.Social(graphgen.FlickrLike(scaled(400, 150), 11))
	r := workload.LogDegree(g, 5)
	ev := NewEvaluator(g, r, Config{Workers: 1})
	if got, want := ev.Cost(), baseline.HybridCost(g, r); !relClose(got, want) {
		t.Fatalf("initial running cost %v, want hybrid %v", got, want)
	}
}

// Exact-vs-fresh, mid-solve: after EVERY iteration the O(1) running
// cost must equal what the pre-O(1) implementation computed by cloning
// the schedule and finalizing the snapshot — replayed here against the
// same state machine Solve drives.
func TestRunningCostMatchesFreshSnapshot(t *testing.T) {
	g := graphgen.Social(graphgen.FlickrLike(scaled(400, 160), 9))
	r := workload.LogDegree(g, 5)
	cfg := Config{Workers: 1}
	ev := NewEvaluator(g, r, cfg)
	st := newState(ev, cfg)
	iters := 0
	for {
		stat := st.iterate()
		iters++
		snap := ev.sched.Clone()
		snap.Finalize(r)
		if fresh := snap.Cost(r); !relClose(ev.Cost(), fresh) {
			t.Fatalf("iteration %d: running cost %v, fresh snapshot cost %v", iters, ev.Cost(), fresh)
		}
		if stat.FullCommits+stat.PartialCommits == 0 {
			break
		}
	}
	if iters < 3 {
		t.Fatalf("want a multi-iteration run, got %d", iters)
	}
}

// The public TraceCosts wiring streams those values: the first traced
// cost matches a MaxIterations=1 truncation and the last the final
// schedule (the truncated run's extra RepairCoverage pass does not
// apply to a full solve).
func TestTraceCostsMatchesTruncation(t *testing.T) {
	g := graphgen.Social(graphgen.FlickrLike(scaled(300, 140), 9))
	r := workload.LogDegree(g, 5)
	full := Solve(g, r, Config{Workers: 1, TraceCosts: true})
	if len(full.Iterations) < 2 {
		t.Fatalf("want a multi-iteration run, got %d", len(full.Iterations))
	}
	one := Solve(g, r, Config{Workers: 1, MaxIterations: 1})
	if got, fresh := full.Iterations[0].Cost, one.Schedule.Cost(r); !relClose(got, fresh) {
		t.Fatalf("iteration 1: running cost %v, fresh finalized cost %v", got, fresh)
	}
	last := full.Iterations[len(full.Iterations)-1].Cost
	if got := full.Schedule.Cost(r); !relClose(last, got) {
		t.Fatalf("final traced cost %v != final schedule cost %v", last, got)
	}
}

// The restricted entry point re-derives the running cost from the base
// schedule after region clearing; every iteration must match the
// pre-O(1) snapshot (clone + FinalizeEdges over the region), which by
// base validity equals finalizing the whole schedule minus the final
// boundary-repair pass.
func TestRunningCostMatchesFreshRestricted(t *testing.T) {
	g := graphgen.Social(graphgen.FlickrLike(scaled(400, 160), 5))
	r := workload.LogDegree(g, 5)
	base := Solve(g, r, Config{Workers: 1}).Schedule
	nodes := graph.KHop(g, []graph.NodeID{3, 40}, 2, 120)
	region := graph.InducedEdgeIDs(g, nodes)
	if len(region) == 0 {
		t.Fatal("degenerate region")
	}

	cfg := Config{Workers: 1}
	ev := NewEvaluator(g, r, cfg)
	ev.sched = base.Clone()
	ev.restrict = bitset.New(g.NumEdges())
	for _, e := range region {
		ev.restrict.Set(int(e))
		ev.sched.ClearEdge(e)
	}
	ev.resetCost()
	st := newState(ev, cfg)
	iters := 0
	for {
		stat := st.iterate()
		iters++
		snap := ev.sched.Clone()
		snap.FinalizeEdges(r, region)
		if fresh := snap.Cost(r); !relClose(ev.Cost(), fresh) {
			t.Fatalf("iteration %d: running cost %v, fresh snapshot cost %v", iters, ev.Cost(), fresh)
		}
		if stat.FullCommits+stat.PartialCommits == 0 {
			break
		}
	}
	if iters == 0 {
		t.Fatal("restricted solve ran no iterations")
	}
}

// The MapReduce solver routes its merge through the same Apply* path;
// its traced costs must be finalized-equivalent as well. (Its stats are
// asserted identical to the shared-memory solver's elsewhere, except
// Cost, which may differ by accumulation order — so pin it against the
// schedule directly.)
func TestRunningCostViaEvaluatorApply(t *testing.T) {
	g := graphgen.Social(graphgen.FlickrLike(scaled(300, 120), 7))
	r := workload.LogDegree(g, 5)
	ev := NewEvaluator(g, r, Config{Workers: 1})

	// Drive a real solve through SolveCtx's machinery by calling Solve,
	// then replay the final schedule's assignments through a fresh
	// Evaluator's Apply* methods and compare the running cost with the
	// finalized cost.
	res := Solve(g, r, Config{Workers: 1})
	final := res.Schedule
	for e := 0; e < g.NumEdges(); e++ {
		ee := graph.EdgeID(e)
		// Flags before coverage: the Apply* preconditions (an edge being
		// pushed/pulled is not covered-only) mirror the solver's own
		// commit order.
		if final.IsPush(ee) {
			ev.ApplyPush(ee)
		}
		if final.IsPull(ee) {
			ev.ApplyPull(ee)
		}
		if final.IsCovered(ee) {
			ev.ApplyCover(ee, final.Hub(ee))
		}
	}
	// Every edge is now scheduled or covered, so the running cost is the
	// exact cost — no c* placeholders left.
	if got, want := ev.Cost(), final.Cost(r); !relClose(got, want) {
		t.Fatalf("replayed running cost %v, want %v", got, want)
	}
}
