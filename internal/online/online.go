// Package online is the online rescheduling subsystem: a long-running
// scheduler daemon that keeps a request schedule near-optimal while the
// social graph churns underneath it.
//
// The batch solvers (CHITCHAT, PARALLELNOSY) produce high-quality
// schedules but cost seconds to hours; the incremental maintainer
// (§3.3) patches updates in microseconds but only ever greedily, so
// quality drifts monotonically away from the optimum and nothing wins
// it back. The daemon closes that loop:
//
//  1. Ingest — every churn op (edge add/remove, rate update) is applied
//     through incremental.Maintainer: free hub coverage when an existing
//     hub already brackets the new edge, hybrid direct service
//     otherwise, rescues on support removal. O(degree) per op.
//  2. Track — each op charges its patch regret (the cost the greedy
//     patch pays that a re-solve might not) as "dirt" on the op's
//     endpoint nodes, and the daemon maintains a coverability lower
//     bound on the optimal cost, so Drift() = (Cost − LB)/LB is
//     available per op in O(1).
//  3. Localize — every CheckEvery ops the daemon finds the dirtiest
//     node; if the dirt inside its k-hop neighborhood exceeds
//     DriftThreshold × current cost, the region is extracted from the
//     rebased live graph (graph.Induced / graph.InducedEdgeIDs with ID
//     remapping) and re-solved in isolation with CHITCHAT
//     (chitchat.SolveInduced on the extracted subgraph) or PARALLELNOSY
//     (nosy.SolveRestricted over the region edge set, reusing the
//     dirty-set machinery).
//  4. Splice — the patch replaces the region's assignments atomically
//     (core.ApplyPatch restores boundary supports; DESIGN.md §7 argues
//     validity), but only if it actually lowers the live cost —
//     regressions are rolled back, so the daemon's schedule quality is
//     monotone at every splice point.
//
// Everything is deterministic for a fixed trace, configuration and
// seed: solver results are worker-count invariant, region selection
// breaks ties by lowest node id, and no operation consults time or
// randomness.
package online

import (
	"context"
	"fmt"
	"math"
	"time"

	"piggyback/internal/baseline"
	"piggyback/internal/chitchat"
	"piggyback/internal/core"
	"piggyback/internal/graph"
	"piggyback/internal/incremental"
	"piggyback/internal/nosy"
	"piggyback/internal/refine"
	"piggyback/internal/solver"
	"piggyback/internal/telemetry"
	"piggyback/internal/workload"
)

// SolverKind selects the localized re-solve algorithm.
type SolverKind uint8

const (
	// SolverChitChat re-solves regions with the CHITCHAT approximation
	// on the extracted subgraph — the quality reference, fine for the
	// region sizes the daemon extracts.
	SolverChitChat SolverKind = iota
	// SolverNosy re-solves regions in place with PARALLELNOSY
	// restricted to the region edge set.
	SolverNosy
	// SolverAuto picks per region through the feature-based selector
	// ("auto"), fed by the daemon's drift tracker: small dirty regions
	// get restricted NOSY, badly degraded regions (accumulated dirt
	// exceeding the region's own cost mass) get induced CHITCHAT.
	SolverAuto
)

// Config tunes the daemon. The zero value uses the defaults.
type Config struct {
	// K is the hop radius of the extracted dirty region; 0 means 2 —
	// wide enough to contain every hub structure a churned edge can
	// participate in (a hub neighborhood is 1 hop; its cross-edges span
	// 2).
	K int
	// DriftThreshold triggers a localized re-solve when the dirt
	// accumulated inside a candidate region exceeds DriftThreshold ×
	// the region's own hybrid cost mass (Σ c* over its edges) — i.e.
	// when the region has churned by that fraction of itself. 0 means
	// 0.25; negative disables re-solves (pure incremental maintenance,
	// for ablation).
	DriftThreshold float64
	// CheckEvery is how many ops pass between drift checks; 0 means 16.
	CheckEvery int
	// MaxRegionNodes caps the extracted region size; 0 means 768.
	MaxRegionNodes int
	// BudgetFraction caps the cumulative re-solved region size (accepted
	// or reverted) at this fraction of the live edge count — the hard
	// guarantee that localized re-solving stays a small share of total
	// work no matter how the drift signal behaves. 0 means 0.2; negative
	// removes the cap.
	BudgetFraction float64
	// Solver picks the localized re-solve algorithm. Ignored when
	// Regional is set.
	Solver SolverKind
	// Regional, when non-nil, is the solver used for localized
	// re-solves — any solver.Solver that supports Problem.Region. When
	// nil, one is built from Solver + ChitChat/Nosy below. This is the
	// one code path through which the daemon runs algorithms; the
	// SolverKind switch only selects a default instance.
	Regional solver.Solver
	// ResolveTimeout is the wall-clock budget for ONE localized
	// re-solve (BudgetFraction bounds cumulative work, not latency).
	// When it fires, the solver returns its best-so-far valid schedule
	// — the anytime contract — which still passes the accept/revert
	// gate, so a truncated re-solve can only improve the live schedule
	// or be rolled back. 0 means no wall-clock bound. A nonzero timeout
	// trades the daemon's strict determinism for bounded latency.
	ResolveTimeout time.Duration
	// DisableAmortize turns off the exterior-amortized pricing sweep
	// that runs on every candidate patch after the refine free-coverage
	// sweep (amortize.go): purchased hub coverage whose pooled refund
	// beats the support price. The sweep only ever lowers the patch
	// cost, so it is on by default; the flag exists for ablation and for
	// pinning pre-PR-10 accept/revert sequences.
	DisableAmortize bool
	// ChitChat configures SolverChitChat re-solves.
	ChitChat chitchat.Config
	// Nosy configures SolverNosy re-solves.
	Nosy nosy.Config
	// Registry resolves solver names for SolverAuto and Fallback; nil
	// means solver.Default.
	Registry *solver.Registry
	// Fallback, when non-empty, names a registry solver that backs a
	// circuit breaker around the regional solver: BreakerThreshold
	// consecutive hard re-solve failures quarantine the primary and
	// route re-solves to the fallback, with half-open probing every
	// BreakerProbeEvery-th re-solve. The primary is wrapped in
	// solver.WithRecover so panics count as failures instead of killing
	// the daemon. Empty disables the breaker (and panics stay fatal, as
	// before).
	Fallback string
	// BreakerThreshold is the consecutive-failure trip count; 0 means
	// the solver.BreakerConfig default (3).
	BreakerThreshold int
	// BreakerProbeEvery is the half-open probe cadence; 0 means the
	// solver.BreakerConfig default (4).
	BreakerProbeEvery int
	// Metrics, when non-nil, registers the daemon's counters and gauges
	// (online_*) in the given registry. Every series is registered at
	// construction, so a scrape sees them at zero before the first op.
	Metrics *telemetry.Registry
	// Tracer, when non-nil, records every localized re-solve as a span
	// (the regional solver is wrapped in solver.WithTracing): portfolio
	// races and shard inner solves nest under it, and because the
	// daemon's re-solves are strictly sequential the resulting span tree
	// is deterministic for a fixed trace and configuration.
	Tracer *telemetry.Tracer
	// Events, when non-nil, receives circuit-breaker state transitions
	// as ("breaker", "closed->open") events, in order — the stream the
	// chaos tests pin exactly. Only meaningful with Fallback set.
	Events *telemetry.EventLog
}

func (cfg Config) withDefaults() Config {
	if cfg.K == 0 {
		cfg.K = 2
	}
	if cfg.DriftThreshold == 0 {
		cfg.DriftThreshold = 0.25
	}
	if cfg.CheckEvery == 0 {
		cfg.CheckEvery = 16
	}
	if cfg.MaxRegionNodes == 0 {
		cfg.MaxRegionNodes = 768
	}
	if cfg.BudgetFraction == 0 {
		cfg.BudgetFraction = 0.2
	}
	return cfg
}

// Stats counts what the daemon has done.
type Stats struct {
	Ops, Adds, Removes, RateUpdates int
	// Rescues counts covered edges re-served directly because a support
	// disappeared.
	Rescues int
	// Resolves counts accepted localized re-solves; Reverted counts
	// re-solves rolled back because the patch did not lower the cost.
	Resolves, Reverted int
	// SolverErrors counts localized re-solves that failed outright
	// (regional solver returned no schedule) — distinct from Reverted,
	// which means the solver ran but did not win. A nonzero count
	// signals misconfiguration or a solver bug, never mere
	// unprofitability; the last error is retained in LastSolverErr.
	SolverErrors int
	// LastSolverErr is the most recent hard re-solve failure (nil when
	// SolverErrors is 0).
	LastSolverErr error
	// RegionEdges is the cumulative edge count of all re-solved regions
	// (accepted or reverted) — the "localized work" measure: compare it
	// against the live edge count to see how much of the graph the
	// daemon ever re-solved.
	RegionEdges int
	// BoundaryRepairs counts exterior coverage supports restored by
	// splices.
	BoundaryRepairs int
	// Amortized counts direct edges upgraded to purchased hub coverage
	// by the exterior-amortization sweep, over accepted patches only;
	// AmortizedSaved is the net cost those purchases removed. Reverted
	// patches book nothing — their sweep work was rolled back with them.
	Amortized      int
	AmortizedSaved float64
	// ResolveWall is the cumulative wall-clock time spent inside the
	// regional solver (accepted and reverted re-solves alike) — the
	// daemon's re-solve latency budget, what the selector is meant to
	// spend better.
	ResolveWall time.Duration
	// Breaker is the circuit-breaker state when Config.Fallback is set
	// (nil otherwise): trips, probes, fallback solves, open/closed.
	Breaker *solver.BreakerStats
}

// Daemon maintains a near-optimal schedule over a churning graph. Not
// safe for concurrent use; feed it from one goroutine (Serve does).
type Daemon struct {
	cfg      Config
	r        *workload.Rates
	m        *incremental.Maintainer
	regional solver.Solver
	// breaker is the circuit breaker wrapped around the regional solver
	// when Config.Fallback is set; nil otherwise. d.regional aliases it
	// then, so this field only serves Stats.
	breaker *solver.Breaker

	// OnSplice, when non-nil, is called synchronously after every
	// ACCEPTED localized re-solve with the rebased live graph and the
	// newly spliced schedule. The daemon does not mutate the schedule it
	// hands out (the maintainer works on its own clone), so receivers —
	// e.g. a serving cluster swapping its live plan — may retain it.
	OnSplice func(*graph.Graph, *core.Schedule)

	// epoch is the CSR graph backing the current maintainer (the live
	// graph as of the last rebase). Region discovery walks it; it lags
	// the true live graph by at most the churn since the last re-solve.
	epoch *graph.Graph

	dirt     []float64 // per-node accumulated patch regret
	lb       float64   // coverability lower bound, recomputed per epoch
	sinceChk int
	// revertStreak counts consecutive reverted re-solves; each one
	// doubles the effective drift threshold (reset on accept), so a
	// graph state where patches cannot win stops being probed instead
	// of thrashing the budget.
	revertStreak int
	// charged records whether any dirt landed since the last drift
	// check; an unchanged dirt landscape cannot newly cross the
	// threshold, so the check (an O(n) scan plus region extraction) is
	// skipped entirely.
	charged bool
	// regionSeverity is the drift tracker's dirt/cost ratio of the
	// region currently being re-solved — the degradation hint the
	// SolverAuto selector reads (checkDrift writes it just before each
	// resolveRegion).
	regionSeverity float64
	stats          Stats
	inst           daemonInstruments
}

// daemonInstruments mirrors Stats into a telemetry registry. With no
// registry configured every field is a nil instrument and every update
// is a no-op — the zero-cost-off contract.
type daemonInstruments struct {
	ops, adds, removes, rateUpdates *telemetry.Counter
	rescues, resolves, reverted     *telemetry.Counter
	solverErrors, regionEdges       *telemetry.Counter
	boundaryRepairs, amortized      *telemetry.Counter
	breakerTransitions              *telemetry.Counter
	cost, drift, lowerBound         *telemetry.Gauge
	breakerState                    *telemetry.Gauge
	resolveWall                     *telemetry.Gauge
	regionSize                      *telemetry.Histogram
}

func newDaemonInstruments(reg *telemetry.Registry) daemonInstruments {
	// A nil registry hands out nil instruments whose methods no-op, so
	// no per-field guard is needed here or at the update sites.
	return daemonInstruments{
		ops:                reg.Counter("online_ops_total"),
		adds:               reg.Counter("online_adds_total"),
		removes:            reg.Counter("online_removes_total"),
		rateUpdates:        reg.Counter("online_rate_updates_total"),
		rescues:            reg.Counter("online_rescues_total"),
		resolves:           reg.Counter("online_resolves_total"),
		reverted:           reg.Counter("online_reverted_total"),
		solverErrors:       reg.Counter("online_solver_errors_total"),
		regionEdges:        reg.Counter("online_region_edges_total"),
		boundaryRepairs:    reg.Counter("online_boundary_repairs_total"),
		amortized:          reg.Counter("online_amortized_total"),
		breakerTransitions: reg.Counter("online_breaker_transitions_total"),
		cost:               reg.Gauge("online_cost"),
		drift:              reg.Gauge("online_drift"),
		lowerBound:         reg.Gauge("online_lower_bound"),
		breakerState:       reg.Gauge("online_breaker_state"),
		resolveWall:        reg.Gauge("online_resolve_wall_seconds_total"),
		regionSize:         reg.Histogram("online_region_size", telemetry.SizeBuckets),
	}
}

// New starts a daemon from an optimized valid schedule and its rates.
// The rates are retained and mutated by rate-update ops; the schedule
// is cloned.
func New(s *core.Schedule, r *workload.Rates, cfg Config) (*Daemon, error) {
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("online: seed schedule invalid: %w", err)
	}
	d := &Daemon{
		cfg:   cfg.withDefaults(),
		r:     r,
		epoch: s.Graph(),
		dirt:  make([]float64, s.Graph().NumNodes()),
	}
	d.inst = newDaemonInstruments(d.cfg.Metrics)
	d.regional = d.cfg.Regional
	if d.regional == nil {
		switch d.cfg.Solver {
		case SolverNosy:
			d.regional = solver.NewNosy(d.cfg.Nosy)
		case SolverAuto:
			// The PR-4 drift tracker feeds the selector: the hint closure
			// reads the dirt/cost ratio of the region checkDrift decided
			// to re-solve, so the rule table can route badly degraded
			// regions to the quality reference.
			d.regional = solver.NewSelector(solver.SelectorConfig{
				Registry: d.cfg.Registry,
				Options:  solver.Options{Workers: d.cfg.Nosy.Workers},
				Hint:     func(solver.Problem) float64 { return d.regionSeverity },
			})
		default:
			d.regional = solver.NewChitChat(d.cfg.ChitChat)
		}
	} else if !solver.SupportsRegions(d.regional) {
		// Fail at configuration time: a region-incapable solver would
		// turn every triggered re-solve into a silent no-op.
		return nil, fmt.Errorf("online: regional solver %q: %w",
			d.regional.Name(), solver.ErrRegionUnsupported)
	}
	if d.cfg.Fallback != "" {
		reg := d.cfg.Registry
		if reg == nil {
			reg = solver.Default
		}
		fb, err := reg.New(d.cfg.Fallback, solver.Options{Workers: d.cfg.Nosy.Workers})
		if err != nil {
			return nil, fmt.Errorf("online: fallback solver: %w", err)
		}
		if !solver.SupportsRegions(fb) {
			return nil, fmt.Errorf("online: fallback solver %q: %w",
				fb.Name(), solver.ErrRegionUnsupported)
		}
		// WithRecover turns a panicking primary into a hard failure the
		// breaker can count; without the breaker a solver panic stays
		// fatal, exactly as before.
		events := d.cfg.Events
		inst := d.inst
		d.breaker = solver.NewBreaker(
			solver.Chain(d.regional, solver.WithRecover()), fb,
			solver.BreakerConfig{
				Threshold:  d.cfg.BreakerThreshold,
				ProbeEvery: d.cfg.BreakerProbeEvery,
				// Transitions are emitted sequentially in trip order (the
				// daemon re-solves from one goroutine), so the event stream
				// is an exact, assertable sequence.
				OnTransition: func(from, to solver.BreakerState) {
					inst.breakerState.Set(float64(to))
					inst.breakerTransitions.Inc()
					events.Emit("breaker", from.String()+"->"+to.String())
				},
			})
		d.regional = d.breaker
	}
	if d.cfg.Tracer != nil {
		// Wrap outermost so every daemon-triggered re-solve — primary,
		// fallback, or probe alike — opens exactly one "solve/..." span,
		// with portfolio and shard spans nesting under it via the context.
		d.regional = solver.WithTracing(d.cfg.Tracer)(d.regional)
	}
	d.m = incremental.New(s, r)
	d.m.OnRescue = d.onRescue
	d.lb = lowerBound(d.epoch, r)
	d.inst.cost.Set(d.m.Cost())
	d.inst.lowerBound.Set(d.lb)
	d.inst.drift.Set(d.Drift())
	return d, nil
}

func (d *Daemon) onRescue(u, v graph.NodeID, cost float64) {
	d.stats.Rescues++
	d.inst.rescues.Inc()
	d.charge(u, v, cost)
}

// charge books patch regret on both endpoints of a churned edge.
func (d *Daemon) charge(u, v graph.NodeID, amount float64) {
	if amount <= 0 {
		return
	}
	d.dirt[u] += amount
	d.dirt[v] += amount
	d.charged = true
}

// Cost returns the current schedule cost (O(1), running).
func (d *Daemon) Cost() float64 { return d.m.Cost() }

// LowerBound returns the coverability lower bound of the optimal cost
// over the live graph as of the last epoch: edges with no 2-hop
// push/pull bracket available must pay at least their hybrid cost; all
// others could in principle be covered for free.
func (d *Daemon) LowerBound() float64 { return d.lb }

// Drift reports how far the maintained cost sits above the epoch lower
// bound, relative to the bound. It moves with every op (the cost is
// running) and re-anchors at each accepted re-solve. Because the bound
// is epoch-anchored, removals can pull the live cost below it between
// epochs; drift is clamped at zero rather than reporting a negative
// gap against a stale bound.
func (d *Daemon) Drift() float64 {
	if d.lb <= 0 {
		return 0
	}
	return math.Max(0, (d.m.Cost()-d.lb)/d.lb)
}

// Stats returns the op and re-solve counters so far.
func (d *Daemon) Stats() Stats {
	st := d.stats
	if d.breaker != nil {
		bs := d.breaker.Stats()
		st.Breaker = &bs
	}
	return st
}

// Rates returns the live workload rates (mutated by rate-update ops).
func (d *Daemon) Rates() *workload.Rates { return d.r }

// Validate checks Theorem-1 validity of the maintained schedule over
// the live edge set.
func (d *Daemon) Validate() error { return d.m.Validate() }

// Snapshot materializes the live graph and schedule (the maintainer is
// unchanged).
func (d *Daemon) Snapshot() (*graph.Graph, *core.Schedule) { return d.m.Rebase() }

// NumEdges returns the live edge count.
func (d *Daemon) NumEdges() int { return d.m.NumEdges() }

// Apply ingests one churn op: patch, charge drift, and — at check
// boundaries — re-solve any region whose accumulated dirt crossed the
// threshold.
func (d *Daemon) Apply(op workload.ChurnOp) error {
	return d.ApplyCtx(context.Background(), op)
}

// ApplyCtx is Apply under a context: a context that is already done
// fails fast before the op is ingested, and any localized re-solve the
// op triggers runs under the context (plus Config.ResolveTimeout), so a
// request-serving caller can bound the daemon's per-op wall clock. A
// re-solve cut short by the context contributes its best-so-far patch
// through the usual accept/revert gate.
func (d *Daemon) ApplyCtx(ctx context.Context, op workload.ChurnOp) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	switch op.Kind {
	case workload.OpAdd:
		before := d.m.Cost()
		if err := d.m.AddEdge(op.U, op.V); err != nil {
			return err
		}
		d.stats.Adds++
		d.inst.adds.Inc()
		// A hub-covered add costs 0 and leaves no regret; a direct add
		// pays c* that a re-solve might cover for free.
		d.charge(op.U, op.V, d.m.Cost()-before)
	case workload.OpRemove:
		if err := d.m.RemoveEdge(op.U, op.V); err != nil {
			return err
		}
		d.stats.Removes++
		d.inst.removes.Inc()
		// Rescue regret is charged by the hook as it happens. The
		// removal itself only LOWERS the cost; stranded hub supports are
		// second-order (bounded by what the hub still covers) and
		// charging for them here drowned the real signal in
		// unrecoverable dirt, so they are deliberately not charged.
	case workload.OpRates:
		oldP, oldC := d.r.Prod[op.U], d.r.Cons[op.U]
		if err := d.m.UpdateRates(op.U, op.Prod, op.Cons); err != nil {
			return err
		}
		d.stats.RateUpdates++
		d.inst.rateUpdates.Inc()
		// Repricing regret scales with how much scheduled traffic the
		// user carries; the epoch degrees are the cheap proxy.
		regret := math.Abs(op.Prod-oldP)*float64(d.epoch.OutDegree(op.U)) +
			math.Abs(op.Cons-oldC)*float64(d.epoch.InDegree(op.U))
		d.charge(op.U, op.U, regret/2)
	default:
		return fmt.Errorf("online: unknown op kind %d", op.Kind)
	}
	d.stats.Ops++
	d.inst.ops.Inc()
	d.sinceChk++
	if d.sinceChk >= d.cfg.CheckEvery {
		d.sinceChk = 0
		d.checkDrift(ctx)
	}
	d.inst.cost.Set(d.m.Cost())
	d.inst.drift.Set(d.Drift())
	return nil
}

// ApplyTrace ingests a whole trace, stopping at the first error.
func (d *Daemon) ApplyTrace(ops []workload.ChurnOp) error {
	return d.ApplyTraceCtx(context.Background(), ops)
}

// ApplyTraceCtx ingests a whole trace under a context, stopping at the
// first error (including context cancellation between ops).
func (d *Daemon) ApplyTraceCtx(ctx context.Context, ops []workload.ChurnOp) error {
	for i, op := range ops {
		if err := d.ApplyCtx(ctx, op); err != nil {
			return fmt.Errorf("online: op %d: %w", i, err)
		}
	}
	return nil
}

// Serve ingests ops from a stream until it closes — the daemon loop.
// It returns the final stats and the first error, if any.
func (d *Daemon) Serve(ops <-chan workload.ChurnOp) (Stats, error) {
	return d.ServeCtx(context.Background(), ops)
}

// ServeCtx is Serve under a context: the loop exits with the context's
// error as soon as it fires, without waiting for the channel to close.
func (d *Daemon) ServeCtx(ctx context.Context, ops <-chan workload.ChurnOp) (Stats, error) {
	for {
		select {
		case <-ctx.Done():
			return d.Stats(), ctx.Err()
		case op, ok := <-ops:
			if !ok {
				return d.Stats(), nil
			}
			if err := d.ApplyCtx(ctx, op); err != nil {
				return d.Stats(), err
			}
		}
	}
}

// dirtiestNode returns the node with maximum dirt (lowest id wins
// ties), or -1 if no node carries dirt.
func (d *Daemon) dirtiestNode() graph.NodeID {
	best := graph.NodeID(-1)
	bestDirt := 0.0
	for v, amt := range d.dirt {
		if amt > bestDirt {
			best = graph.NodeID(v)
			bestDirt = amt
		}
	}
	return best
}

// checkDrift fires localized re-solves while the dirtiest node's k-hop
// region has churned by more than DriftThreshold of its own hybrid cost
// mass. Re-solving clears the region's dirt, so each pass makes strict
// progress; the per-check cap bounds the worst-case stall.
func (d *Daemon) checkDrift(ctx context.Context) {
	if d.cfg.DriftThreshold < 0 {
		return
	}
	if !d.charged {
		return // no new dirt since the last check; nothing can have crossed
	}
	d.charged = false
	const maxResolvesPerCheck = 4
	if d.cfg.BudgetFraction >= 0 &&
		float64(d.stats.RegionEdges) >= d.cfg.BudgetFraction*float64(d.m.NumEdges()) {
		return // budget already spent; skip the region extraction entirely
	}
	threshold := d.cfg.DriftThreshold * float64(int64(1)<<min(d.revertStreak, 40))
	for pass := 0; pass < maxResolvesPerCheck; pass++ {
		seed := d.dirtiestNode()
		if seed < 0 {
			return
		}
		region := graph.KHop(d.epoch, []graph.NodeID{seed}, d.cfg.K, d.cfg.MaxRegionNodes)
		regionDirt := 0.0
		for _, v := range region {
			regionDirt += d.dirt[v]
		}
		regionEdges := graph.InducedEdgeIDs(d.epoch, region)
		regionCost := 0.0
		for _, e := range regionEdges {
			u := d.epoch.EdgeSource(e)
			v := d.epoch.EdgeTarget(e)
			regionCost += baseline.EdgeCost(d.r, u, v)
		}
		if regionDirt <= threshold*math.Max(regionCost, 1e-9) {
			// The region around the dirtiest node has not churned enough
			// relative to its size. Other regions could in principle have
			// a higher dirt ratio, but the dirtiest node is the cheap
			// deterministic proxy; they will be found once their own dirt
			// grows.
			return
		}
		if d.cfg.BudgetFraction >= 0 &&
			float64(d.stats.RegionEdges+len(regionEdges)) > d.cfg.BudgetFraction*float64(d.m.NumEdges()) {
			return // out of re-solve budget; keep patching incrementally
		}
		d.regionSeverity = regionDirt / math.Max(regionCost, 1e-9)
		d.resolveRegion(ctx, region)
		threshold = d.cfg.DriftThreshold * float64(int64(1)<<min(d.revertStreak, 40))
	}
}

// resolveRegion rebases the live graph, re-solves the region in
// isolation through the configured solver.Solver, and splices the patch
// in if it lowers the cost. Either way the region's dirt is cleared and
// a fresh maintainer epoch begins when the patch is accepted.
func (d *Daemon) resolveRegion(ctx context.Context, epochNodes []graph.NodeID) {
	liveG, liveS := d.m.Rebase()
	// The region's NODE set was chosen on the (possibly lagging) epoch
	// graph; its edges are extracted from the fresh live graph, so the
	// re-solve always sees current structure.
	nodes := epochNodes
	regionEdges := graph.InducedEdgeIDs(liveG, nodes)
	d.stats.RegionEdges += len(regionEdges)
	d.inst.regionEdges.Add(int64(len(regionEdges)))
	d.inst.regionSize.Observe(float64(len(regionEdges)))

	// Clear the region's dirt up front: whatever the decision below,
	// it is final for this dirt mass, and leaving it would re-trigger
	// forever.
	for _, v := range nodes {
		d.dirt[v] = 0
	}
	if len(regionEdges) == 0 {
		// The epoch-stale region dissolved on the live graph; no solver
		// ran, so neither the revert counter nor the backoff should move.
		return
	}

	oldCost := liveS.Cost(d.r)
	rctx := ctx
	if d.cfg.ResolveTimeout > 0 {
		var cancel context.CancelFunc
		rctx, cancel = context.WithTimeout(ctx, d.cfg.ResolveTimeout)
		defer cancel()
	}
	var patched *core.Schedule
	solveStart := time.Now()
	res, err := d.regional.Solve(rctx, solver.Problem{
		Graph:  liveG,
		Rates:  d.r,
		Base:   liveS,
		Region: regionEdges,
	})
	wall := time.Since(solveStart)
	d.stats.ResolveWall += wall
	d.inst.resolveWall.Add(wall.Seconds())
	if res != nil {
		// A context-truncated re-solve still returns a valid best-so-far
		// patch (res non-nil alongside err); only hard failures leave
		// res nil, and then the maintained schedule stands.
		patched = res.Schedule
		d.stats.BoundaryRepairs += res.Report.BoundaryRepairs
		d.inst.boundaryRepairs.Add(int64(res.Report.BoundaryRepairs))
	} else {
		// Hard failure: the solver never produced a schedule. This is
		// misconfiguration or a bug, not an unprofitable re-solve, so it
		// is booked separately and does NOT feed the revert backoff —
		// backoff models "patches cannot win here", which a solver that
		// never ran says nothing about.
		d.stats.SolverErrors++
		d.inst.solverErrors.Inc()
		d.stats.LastSolverErr = err
		return
	}
	var amort amortizeResult
	if patched != nil {
		// The regional solver saw the region in isolation, so region
		// edges whose free exterior coverage the extraction severed came
		// back as direct service. The free-coverage sweep wins them back
		// deterministically before the accept/revert decision, and the
		// exterior-amortization sweep then prices support PURCHASES the
		// isolated solve could not see: a pooled refund across the
		// region's direct edges against supports the exterior schedule
		// already pays for. Both only ever lower the patch cost, so a
		// patch that loses afterwards would have lost anyway.
		refine.Run(patched, d.r)
		if !d.cfg.DisableAmortize {
			amort = amortize(patched, d.r, regionEdges)
		}
	}

	if patched == nil || patched.Cost(d.r) >= oldCost {
		d.stats.Reverted++
		d.inst.reverted.Inc()
		d.revertStreak++
		return
	}
	d.stats.Resolves++
	d.inst.resolves.Inc()
	d.stats.Amortized += amort.Upgraded
	d.stats.AmortizedSaved += amort.Saved
	d.inst.amortized.Add(int64(amort.Upgraded))
	d.revertStreak = 0
	d.m = incremental.New(patched, d.r)
	d.m.OnRescue = d.onRescue
	d.epoch = liveG
	d.lb = lowerBound(liveG, d.r)
	d.inst.lowerBound.Set(d.lb)
	if d.OnSplice != nil {
		d.OnSplice(liveG, patched)
	}
}

// lowerBound computes the coverability bound: an edge u → v whose
// producer and consumer share no middle node w with u → w and w → v in
// the graph can never be hub-covered, so any valid schedule pays at
// least its hybrid cost c*(e); coverable edges are bounded below by 0.
// One sorted-intersection pass per edge.
func lowerBound(g *graph.Graph, r *workload.Rates) float64 {
	total := 0.0
	g.Edges(func(e graph.EdgeID, u, v graph.NodeID) bool {
		if !coverable(g, u, v) {
			total += baseline.EdgeCost(r, u, v)
		}
		return true
	})
	return total
}

// coverable reports whether some node w has both u → w and w → v.
func coverable(g *graph.Graph, u, v graph.NodeID) bool {
	outs := g.OutNeighbors(u) // sorted
	ins := g.InNeighbors(v)   // sorted
	i, j := 0, 0
	for i < len(outs) && j < len(ins) {
		switch {
		case outs[i] == ins[j]:
			if outs[i] != u && outs[i] != v {
				return true
			}
			i++
			j++
		case outs[i] < ins[j]:
			i++
		default:
			j++
		}
	}
	return false
}
