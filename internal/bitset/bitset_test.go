package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	s := New(0)
	if s.Count() != 0 || s.Len() != 0 {
		t.Fatalf("empty set: count=%d len=%d", s.Count(), s.Len())
	}
	s.SetAll() // no-op on the empty set, must not touch missing words
	if s.Count() != 0 {
		t.Fatalf("SetAll on empty set: count=%d", s.Count())
	}
}

func TestSetAll(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 128, 1000} {
		s := New(n)
		s.Set(0) // pre-existing bits must not confuse the fill
		s.SetAll()
		if s.Count() != n {
			t.Fatalf("n=%d: SetAll count=%d", n, s.Count())
		}
		for i := 0; i < n; i++ {
			if !s.Test(i) {
				t.Fatalf("n=%d: bit %d clear after SetAll", n, i)
			}
		}
		s.Clear(n - 1)
		if s.Count() != n-1 {
			t.Fatalf("n=%d: count=%d after one Clear", n, s.Count())
		}
	}
}

func TestSetTestClear(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Test(i) {
			t.Fatalf("bit %d set before Set", i)
		}
		s.Set(i)
		if !s.Test(i) {
			t.Fatalf("bit %d clear after Set", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	s.Clear(64)
	if s.Test(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if got := s.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
}

func TestReset(t *testing.T) {
	s := New(200)
	for i := 0; i < 200; i += 3 {
		s.Set(i)
	}
	s.Reset()
	if s.Count() != 0 {
		t.Fatalf("Count after Reset = %d", s.Count())
	}
}

func TestCloneIndependent(t *testing.T) {
	s := New(70)
	s.Set(5)
	c := s.Clone()
	c.Set(6)
	if s.Test(6) {
		t.Fatal("Clone shares storage with original")
	}
	if !c.Test(5) {
		t.Fatal("Clone lost bit 5")
	}
}

func TestRangeOrder(t *testing.T) {
	s := New(300)
	want := []int{2, 63, 64, 150, 299}
	for _, i := range want {
		s.Set(i)
	}
	var got []int
	s.Range(func(i int) bool {
		got = append(got, i)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %d bits, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range order: got %v, want %v", got, want)
		}
	}
}

func TestRangeEarlyStop(t *testing.T) {
	s := New(100)
	for i := 0; i < 100; i++ {
		s.Set(i)
	}
	n := 0
	s.Range(func(int) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("Range visited %d bits after early stop, want 10", n)
	}
}

// Property: a Set agrees with a map[int]bool reference under a random
// operation sequence.
func TestQuickAgainstMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(500)
		s := New(n)
		ref := make(map[int]bool)
		for op := 0; op < 300; op++ {
			i := rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				s.Set(i)
				ref[i] = true
			case 1:
				s.Clear(i)
				delete(ref, i)
			case 2:
				if s.Test(i) != ref[i] {
					return false
				}
			}
		}
		if s.Count() != len(ref) {
			return false
		}
		for i := range ref {
			if !s.Test(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
