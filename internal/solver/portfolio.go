package solver

import (
	"context"
	"fmt"
	"sync"
	"time"

	"piggyback/internal/telemetry"
)

// Portfolio is the registry name of the racing portfolio solver.
const Portfolio = "portfolio"

func init() {
	Default.MustRegister(Portfolio, func(o Options) Solver {
		// Options.MaxIterations becomes the per-member work-unit budget:
		// the deterministic bound is the portfolio's notion of "same
		// iteration cap" across members with different iteration shapes.
		memberOpts := o
		memberOpts.MaxIterations = 0
		memberOpts.Progress = nil
		return withProgress(NewPortfolio(PortfolioConfig{
			Workers: o.Workers,
			Budget:  o.MaxIterations,
			Options: memberOpts,
		}), o.Progress)
	}, Meta{Regions: true, Cost: CostExpensive})
}

// DefaultPortfolioMembers are the entries raced when PortfolioConfig
// leaves Members empty: the quality reference and the parallel
// heuristic — the two real algorithms of the paper.
var DefaultPortfolioMembers = []string{ChitChat, Nosy}

// PortfolioConfig parameterizes the portfolio solver.
type PortfolioConfig struct {
	// Registry resolves member names; nil means Default.
	Registry *Registry
	// Members are the registry entries to race; empty means
	// DefaultPortfolioMembers. Duplicates and the portfolio's own name
	// are dropped.
	Members []string
	// Workers bounds concurrently racing members; 0 means race all at
	// once. The winner is byte-identical for every value: selection
	// considers every member's result, not the first to finish.
	Workers int
	// Budget, when positive, bounds every member at that many work
	// units via WithBudget — the deterministic alternative to a
	// wall-clock deadline (same budget ⇒ same winner, byte-identical).
	Budget int
	// Options configures each member (Workers here is the member's own
	// parallelism; racer concurrency is the field above). Progress is
	// ignored — attach sinks to the portfolio solver itself.
	Options Options
}

// NewPortfolio returns the portfolio solver: it races its members under
// one context, each goroutine running a fresh instance with the PR-5
// anytime semantics, and returns the best Validate()-clean schedule.
// Ties break deterministically on (cost, then member name).
func NewPortfolio(cfg PortfolioConfig) Solver { return &portfolioSolver{cfg: cfg} }

type portfolioSolver struct {
	cfg      PortfolioConfig
	progress func(ProgressEvent)
}

func (s *portfolioSolver) Name() string { return Portfolio }

// SupportsRegions implements RegionCapable: region problems race the
// region-capable members only.
func (s *portfolioSolver) SupportsRegions() bool { return true }

// ChainProgress implements ProgressChainer. Member events (already
// labeled with the member's name) are serialized through one mutex
// before reaching the sink, preserving the "one goroutine at a time"
// contract even while members race.
func (s *portfolioSolver) ChainProgress(fn func(ProgressEvent)) {
	s.progress = chainSinks(s.progress, fn)
}

func (s *portfolioSolver) Solve(ctx context.Context, p Problem) (*Result, error) {
	if err := checkProblem(p); err != nil {
		return nil, err
	}
	reg := s.cfg.Registry
	if reg == nil {
		reg = Default
	}
	names := s.cfg.Members
	if len(names) == 0 {
		names = DefaultPortfolioMembers
	}

	// Build one fresh instance per member (instances are not safe for
	// concurrent calls, and a race IS concurrent use).
	var progressMu sync.Mutex
	memberOpts := s.cfg.Options
	memberOpts.Progress = nil
	type racer struct {
		name string
		sv   Solver
	}
	var racers []racer
	seen := map[string]bool{Portfolio: true}
	for _, n := range names {
		if seen[n] {
			continue
		}
		seen[n] = true
		f, err := reg.Get(n)
		if err != nil {
			return nil, fmt.Errorf("solver %s: member: %w", Portfolio, err)
		}
		sv := f(memberOpts)
		if p.Region != nil && !SupportsRegions(sv) {
			continue
		}
		if s.progress != nil {
			Observe(sv, func(ev ProgressEvent) {
				progressMu.Lock()
				s.progress(ev)
				progressMu.Unlock()
			})
		}
		if s.cfg.Budget > 0 {
			sv = WithBudget(s.cfg.Budget)(sv)
		}
		racers = append(racers, racer{name: n, sv: sv})
	}
	if len(racers) == 0 {
		if p.Region != nil {
			return nil, fmt.Errorf("solver %s: no region-capable member: %w", Portfolio, ErrRegionUnsupported)
		}
		return nil, fmt.Errorf("solver %s: no members", Portfolio)
	}

	// Race. Results land in per-racer slots, so collection order — and
	// therefore the selection below — is independent of goroutine
	// scheduling and of the racer-concurrency cap.
	workers := s.cfg.Workers
	if workers <= 0 || workers > len(racers) {
		workers = len(racers)
	}
	results := make([]*Result, len(racers))
	errs := make([]error, len(racers))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	// Span discipline: Begin happens HERE, on the coordinating
	// goroutine, in racer order — so the span tree is identical for
	// every Workers value. Only End (order-independent) runs on the
	// racing goroutines.
	tr, parent := telemetry.FromContext(ctx)
	for i := range racers {
		mctx, span := ctx, telemetry.RootSpan
		if tr != nil {
			span = tr.Begin(parent, "race/"+racers[i].name, fmt.Sprintf("member=%d", i))
			mctx = telemetry.NewContext(ctx, tr, span)
		}
		wg.Add(1)
		go func(i int, mctx context.Context, span telemetry.SpanID) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			results[i], errs[i] = racers[i].sv.Solve(mctx, p)
			if tr != nil {
				tr.SetDuration(span, time.Since(start))
				tr.End(span, outcomeAttrs(results[i], errs[i]))
			}
		}(i, mctx, span)
	}
	wg.Wait()

	// Select: lowest valid cost wins; ties break on the lexicographically
	// smaller member name. Region patches are priced over the full
	// spliced schedule (Report.Cost is NaN there by contract).
	best := -1
	bestCost := 0.0
	for i, res := range results {
		if res == nil || res.Schedule == nil || res.Schedule.Validate() != nil {
			continue
		}
		c := res.Schedule.Cost(p.Rates)
		if best < 0 || c < bestCost || (c == bestCost && racers[i].name < racers[best].name) {
			best, bestCost = i, c
		}
	}
	if best < 0 {
		for _, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("solver %s: every member failed; first: %w", Portfolio, err)
			}
		}
		return nil, fmt.Errorf("solver %s: no member produced a valid schedule", Portfolio)
	}
	res := results[best]
	// The winner's Report is returned intact — Report.Solver names the
	// member that won, which is the informative answer.
	if cause := ctx.Err(); cause != nil {
		res.Report.Canceled = true
		return res, cause
	}
	return res, nil
}
