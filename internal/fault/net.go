package fault

import (
	"errors"
	"net"
	"sync"
	"time"
)

// ErrInjected wraps every error this package fabricates, so tests can
// tell injected failures from real ones.
var ErrInjected = errors.New("fault: injected")

// WrapListener returns ln with every accepted connection wrapped in the
// plan: accepted conns get plan indices in accept order. Wrapping a
// server's listener makes the server's response writes the injection
// point (delayed frames, mid-reply resets).
func (p *Plan) WrapListener(ln net.Listener) net.Listener {
	return &faultListener{Listener: ln, p: p}
}

type faultListener struct {
	net.Listener
	p *Plan
}

func (l *faultListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.p.WrapConn(c), nil
}

// WrapConn returns c under the plan, assigned the next connection
// index. Faults fire on Write calls (one frame flush is one write);
// reads pass through untouched.
func (p *Plan) WrapConn(c net.Conn) net.Conn {
	return &faultConn{Conn: c, p: p, idx: p.nextIndex()}
}

// Index reports the plan index WrapConn assigned to c, or -1 when c is
// not a wrapped connection.
func Index(c net.Conn) int {
	if fc, ok := c.(*faultConn); ok {
		return fc.idx
	}
	return -1
}

type faultConn struct {
	net.Conn
	p   *Plan
	idx int

	mu  sync.Mutex
	ops int
}

func (c *faultConn) Write(b []byte) (int, error) {
	c.mu.Lock()
	op := c.ops
	c.ops++
	c.mu.Unlock()

	// Delays apply first (and stack); the first terminal rule decides
	// the write's fate.
	var terminal *Rule
	for i := range c.p.Rules {
		r := &c.p.Rules[i]
		if !r.matches(c.idx, op) {
			continue
		}
		if r.Kind == KindDelay {
			c.p.record(c.idx, op, KindDelay)
			time.Sleep(r.Delay)
		} else if terminal == nil {
			terminal = r
		}
	}
	if terminal == nil {
		return c.Conn.Write(b)
	}
	c.p.record(c.idx, op, terminal.Kind)
	switch terminal.Kind {
	case KindDrop:
		// Claim success, send nothing: the peer waits for a frame that
		// never arrives.
		return len(b), nil
	case KindPartial:
		n, _ := c.Conn.Write(b[:len(b)/2])
		c.Conn.Close()
		return n, errors.Join(ErrInjected, errors.New("partial write"))
	default: // KindReset
		c.Conn.Close()
		return 0, errors.Join(ErrInjected, errors.New("connection reset"))
	}
}
