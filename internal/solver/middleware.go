package solver

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"piggyback/internal/stats"
)

// Middleware wraps a Solver with cross-cutting behavior — metrics,
// logging, budgets — without the solver knowing. Middlewares compose
// with Chain and preserve the wrapped solver's Name, region capability,
// and progress stream.
type Middleware func(Solver) Solver

// Chain applies the middlewares to s left to right: the first is
// outermost, so Chain(s, a, b) solves through a(b(s)).
func Chain(s Solver, mws ...Middleware) Solver {
	for i := len(mws) - 1; i >= 0; i-- {
		if mws[i] != nil {
			s = mws[i](s)
		}
	}
	return s
}

// ProgressChainer is an optional interface a Solver implements to let
// wrappers attach additional progress sinks after construction (the
// factory binds Options.Progress at build time; middleware arrives
// later). Implementations must preserve previously attached sinks.
type ProgressChainer interface {
	ChainProgress(fn func(ProgressEvent))
}

// Observe attaches fn to s's progress stream when s supports chaining,
// reporting whether the attachment took effect. Existing sinks keep
// firing; fn runs after them on the solve goroutine.
func Observe(s Solver, fn func(ProgressEvent)) bool {
	if pc, ok := s.(ProgressChainer); ok {
		pc.ChainProgress(fn)
		return true
	}
	return false
}

// wrapped is the embeddable base of every shipped middleware: it
// forwards identity, region capability, and progress chaining to the
// inner solver, so a wrapped chitchat still reports Name "chitchat",
// still declares region support, and still streams progress.
type wrapped struct{ inner Solver }

func (w wrapped) Name() string { return w.inner.Name() }

// SupportsRegions implements RegionCapable by delegation.
func (w wrapped) SupportsRegions() bool { return SupportsRegions(w.inner) }

// ChainProgress implements ProgressChainer by delegation; a no-op when
// the inner solver has no progress stream (the one-shot baselines).
func (w wrapped) ChainProgress(fn func(ProgressEvent)) { Observe(w.inner, fn) }

// WithMetrics records every solve into sink: wall time, iterations,
// progress events observed, final cost, cancellation and failure — the
// per-solver counters `cmd/experiments -middleware metrics` tabulates.
func WithMetrics(sink *stats.SolverMetrics) Middleware {
	return func(next Solver) Solver {
		m := &metricsSolver{wrapped: wrapped{next}, sink: sink}
		Observe(next, func(ProgressEvent) { m.events.Add(1) })
		return m
	}
}

type metricsSolver struct {
	wrapped
	sink   *stats.SolverMetrics
	events atomic.Int64 // cumulative across solves; per-solve = delta
}

func (m *metricsSolver) Solve(ctx context.Context, p Problem) (*Result, error) {
	before := m.events.Load()
	start := time.Now()
	res, err := m.inner.Solve(ctx, p)
	rec := stats.SolveRecord{
		Wall:   time.Since(start),
		Events: m.events.Load() - before,
		Failed: res == nil,
	}
	if res != nil {
		rec.Iterations = res.Report.Iterations
		rec.Cost = res.Report.Cost
		rec.Canceled = res.Report.Canceled
	}
	m.sink.Record(m.Name(), rec)
	return res, err
}

// WithLogging writes one line when a solve starts and one when it
// finishes (cost, iterations, wall time, error) through logf —
// typically log.Printf.
func WithLogging(logf func(format string, args ...any)) Middleware {
	return func(next Solver) Solver {
		return &loggingSolver{wrapped: wrapped{next}, logf: logf}
	}
}

type loggingSolver struct {
	wrapped
	logf func(format string, args ...any)
}

func (l *loggingSolver) Solve(ctx context.Context, p Problem) (*Result, error) {
	if p.Region == nil {
		l.logf("solver %s: solving %d nodes / %d edges", l.Name(), p.Graph.NumNodes(), p.Graph.NumEdges())
	} else {
		l.logf("solver %s: re-solving region of %d edges", l.Name(), len(p.Region))
	}
	start := time.Now()
	res, err := l.inner.Solve(ctx, p)
	switch {
	case res == nil:
		l.logf("solver %s: failed after %v: %v", l.Name(), time.Since(start).Round(time.Millisecond), err)
	case err != nil:
		l.logf("solver %s: canceled after %d iterations, %v (best-so-far cost %.1f): %v",
			l.Name(), res.Report.Iterations, time.Since(start).Round(time.Millisecond), res.Report.Cost, err)
	default:
		l.logf("solver %s: done in %d iterations, %v, cost %.1f",
			l.Name(), res.Report.Iterations, time.Since(start).Round(time.Millisecond), res.Report.Cost)
	}
	return res, err
}

// WithRecover converts ANY panic escaping Solve into a returned error.
// The built-ins already convert the typed library panics; this is the
// belt-and-braces wrapper for third-party registrants running inside a
// serving process.
func WithRecover() Middleware {
	return func(next Solver) Solver {
		return &recoverSolver{wrapped{next}}
	}
}

type recoverSolver struct{ wrapped }

func (rs *recoverSolver) Solve(ctx context.Context, p Problem) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = fmt.Errorf("solver %s: panic: %v", rs.Name(), r)
		}
	}()
	return rs.inner.Solve(ctx, p)
}

// WithBudget bounds a solve at `units` work units, counted as progress
// events — PARALLELNOSY rounds, CHITCHAT greedy commits, shard
// completions. Unlike a wall-clock deadline, the budget is
// DETERMINISTIC: events fire at iteration boundaries on the solve
// goroutine in an order independent of machine speed and worker count,
// and the solvers stop within one iteration of the cancellation the
// budget triggers, so two runs with the same budget produce
// byte-identical schedules (the ROADMAP item-3 follow-up).
//
// The budget stop is NOT surfaced as an error: the result comes back
// with a nil error and Report.Canceled=true as the truncation marker.
// Cancellation of the caller's own context propagates as usual.
// Solvers without a progress stream (the baselines) are unaffected.
func WithBudget(units int) Middleware {
	return func(next Solver) Solver {
		b := &budgetSolver{wrapped: wrapped{next}, units: int64(units)}
		b.supported = Observe(next, b.onEvent)
		return b
	}
}

type budgetSolver struct {
	wrapped
	units     int64
	supported bool
	state     atomic.Pointer[budgetState] // per-solve; nil between solves
}

type budgetState struct {
	n      atomic.Int64
	cancel context.CancelFunc
}

func (b *budgetSolver) onEvent(ProgressEvent) {
	st := b.state.Load()
	if st == nil {
		return
	}
	if st.n.Add(1) >= b.units {
		st.cancel()
	}
}

func (b *budgetSolver) Solve(ctx context.Context, p Problem) (*Result, error) {
	if b.units <= 0 || !b.supported {
		return b.inner.Solve(ctx, p)
	}
	bctx, cancel := context.WithCancel(ctx)
	defer cancel()
	st := &budgetState{cancel: cancel}
	b.state.Store(st)
	defer b.state.Store(nil)
	res, err := b.inner.Solve(bctx, p)
	if err != nil && ctx.Err() == nil && errors.Is(err, context.Canceled) && st.n.Load() >= b.units {
		// The budget, not the caller, stopped the solve: a deterministic
		// completion, not a cancellation. Report.Canceled stays true as
		// the truncation marker.
		return res, nil
	}
	return res, err
}
