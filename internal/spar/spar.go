// Package spar models the SPAR storage layer (Pujol et al.), the related
// system §5 contrasts with: every user has a master replica, and slave
// replicas of u are co-located with the masters of all of u's followers,
// so new events are pushed asynchronously from the master to every slave
// and queries touch only the user's own server.
//
// In the paper's cost model SPAR is an (asynchronous) push-all schedule,
// which Silberstein et al. showed is never more efficient than the hybrid
// schedule — the claim this package makes testable. SPAR buys its
// single-server queries with replica storage: this package also reports
// the replication factor, the overhead the paper's client-side approach
// avoids.
package spar

import (
	"piggyback/internal/graph"
	"piggyback/internal/partition"
	"piggyback/internal/workload"
)

// Cost returns SPAR's throughput cost in the paper's edge model: each
// follow edge u → v costs one push per event of u, i.e. the push-all
// cost Σ_{u→v∈E} rp(u). Queries are free beyond the implicit own-view
// access, like every schedule's own-view traffic.
func Cost(g *graph.Graph, r *workload.Rates) float64 {
	total := 0.0
	g.Edges(func(_ graph.EdgeID, u, _ graph.NodeID) bool {
		total += r.Prod[u]
		return true
	})
	return total
}

// PlacementCost returns SPAR's message cost under a master placement with
// batching: an update by u sends one message to each distinct server
// hosting a master of {u} ∪ followers(u) (the slaves live there); a query
// touches exactly one server — SPAR's headline property.
func PlacementCost(g *graph.Graph, r *workload.Rates, a partition.Assignment) float64 {
	total := 0.0
	seen := make([]int64, a.Servers)
	gen := int64(0)
	for u := 0; u < g.NumNodes(); u++ {
		uid := graph.NodeID(u)
		gen++
		n := 0
		touch := func(s int32) {
			if seen[s] != gen {
				seen[s] = gen
				n++
			}
		}
		touch(a.Of(uid))
		for _, v := range g.OutNeighbors(uid) {
			touch(a.Of(v))
		}
		total += r.Prod[u] * float64(n) // async pushes to slave replicas
		total += r.Cons[u] * 1          // query: own server only
	}
	return total
}

// Replication reports SPAR's storage cost: the number of replicas (master
// plus slaves) per user and in total. A user u needs one master plus one
// slave per distinct *other* server hosting a follower's master.
type Replication struct {
	TotalReplicas int
	Factor        float64 // TotalReplicas / users — SPAR's memory multiplier
	MaxPerUser    int
}

// Replicas computes the replication footprint under a placement.
func Replicas(g *graph.Graph, a partition.Assignment) Replication {
	rep := Replication{}
	seen := make([]int64, a.Servers)
	gen := int64(0)
	for u := 0; u < g.NumNodes(); u++ {
		uid := graph.NodeID(u)
		gen++
		own := a.Of(uid)
		seen[own] = gen
		n := 1 // master
		for _, v := range g.OutNeighbors(uid) {
			s := a.Of(v)
			if seen[s] != gen {
				seen[s] = gen
				n++
			}
		}
		rep.TotalReplicas += n
		if n > rep.MaxPerUser {
			rep.MaxPerUser = n
		}
	}
	if g.NumNodes() > 0 {
		rep.Factor = float64(rep.TotalReplicas) / float64(g.NumNodes())
	}
	return rep
}
