// Package fault is deterministic fault injection for the serving tier
// and the solver layer. The paper's prototype omits failure handling
// "for simplicity"; this repository does not, and a robustness layer is
// only testable if its faults are reproducible. Everything here is
// schedule-driven: a Plan names exactly which operation on which
// connection misbehaves, seed-derived rules (Scatter) expand the same
// way every run, and the solver injectors count solves — so the same
// Plan pins the same chaos, byte for byte, run after run.
//
// Two injection surfaces:
//
//   - Network: Plan.WrapListener / Plan.WrapConn interpose on net.Conn
//     writes and inject delays, silent drops, partial writes, and
//     mid-stream resets at scheduled per-connection write-op counts
//     (write ops, not reads, because kernel read chunking is not
//     deterministic while one frame flush is one write).
//   - Solver: SolverPanics / SolverStalls are solver.Middleware that
//     sabotage scheduled solve invocations, for driving the circuit
//     breaker and WithRecover paths without a broken algorithm.
package fault

import (
	"math/rand"
	"sync"
	"time"
)

// Kind is the failure mode a Rule injects.
type Kind uint8

const (
	// KindDelay sleeps Rule.Delay before the write proceeds — a slow
	// network or a stalled peer, below the transport's failure horizon.
	KindDelay Kind = iota + 1
	// KindDrop swallows the write: the caller sees success, the peer
	// sees nothing. The frame stream desyncs exactly as it would when a
	// server dies after reading a request but before replying.
	KindDrop
	// KindPartial writes the first half of the buffer, closes the
	// connection, and fails the call — a crash mid-frame.
	KindPartial
	// KindReset closes the connection before writing anything — a
	// mid-stream TCP reset.
	KindReset
)

// String renders the kind for logs and test diffs.
func (k Kind) String() string {
	switch k {
	case KindDelay:
		return "delay"
	case KindDrop:
		return "drop"
	case KindPartial:
		return "partial"
	case KindReset:
		return "reset"
	}
	return "none"
}

// Rule schedules one failure: connection Conn (in accept/wrap order;
// -1 matches every connection) misbehaves at its Op'th write (0-based),
// for Count consecutive writes (0 means 1).
type Rule struct {
	Kind  Kind
	Conn  int
	Op    int
	Count int
	// Delay is the injected latency for KindDelay; ignored otherwise.
	Delay time.Duration
}

func (r Rule) matches(conn, op int) bool {
	if r.Conn != -1 && r.Conn != conn {
		return false
	}
	n := r.Count
	if n <= 0 {
		n = 1
	}
	return op >= r.Op && op < r.Op+n
}

// Fired records one injected fault, in the order faults landed on that
// connection (the per-connection order is deterministic; the global
// interleaving across connections is not, so comparisons should group
// by Conn).
type Fired struct {
	Conn, Op int
	Kind     Kind
}

// Plan is a deterministic fault schedule: explicit Rules, plus Seed for
// deriving scattered rules (Scatter) — same seed, same schedule. A Plan
// may wrap many connections; each gets the next index in wrap order.
// Safe for concurrent use.
type Plan struct {
	Seed  int64
	Rules []Rule

	mu    sync.Mutex
	next  int
	fired []Fired
}

// Fired returns a copy of every fault injected so far.
func (p *Plan) Fired() []Fired {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Fired, len(p.fired))
	copy(out, p.fired)
	return out
}

// FiredOn returns the faults injected on one connection, in order.
func (p *Plan) FiredOn(conn int) []Fired {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []Fired
	for _, f := range p.fired {
		if f.Conn == conn {
			out = append(out, f)
		}
	}
	return out
}

func (p *Plan) record(conn, op int, k Kind) {
	p.mu.Lock()
	p.fired = append(p.fired, Fired{Conn: conn, Op: op, Kind: k})
	p.mu.Unlock()
}

func (p *Plan) nextIndex() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	i := p.next
	p.next++
	return i
}

// Scatter derives n pseudo-random rules of the given kind from seed:
// connection indices in [0, conns), write ops in [0, ops), each
// firing once, delays in [delay/2, delay) for KindDelay. The expansion
// is a pure function of its arguments — the seed-driven half of a
// deterministic chaos schedule.
func Scatter(seed int64, kind Kind, n, conns, ops int, delay time.Duration) []Rule {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Rule, n)
	for i := range out {
		out[i] = Rule{
			Kind: kind,
			Conn: rng.Intn(conns),
			Op:   rng.Intn(ops),
		}
		if kind == KindDelay {
			out[i].Delay = delay/2 + time.Duration(rng.Int63n(int64(delay/2)+1))
		}
	}
	return out
}
