// Package piggyback is a library for computing and serving social-network
// request schedules with social piggybacking, reproducing "Piggybacking
// on Social Networks" (Gionis, Junqueira, Leroy, Serafini, Weber,
// PVLDB 6(6), 2013).
//
// A social graph edge u → v means v subscribes to u's events. A request
// schedule assigns every edge to a push set (updates materialize into the
// consumer's view), a pull set (queries read the producer's view), or
// covers it by piggybacking through a common contact's view (a hub). The
// library provides:
//
//   - the CHITCHAT O(ln n)-approximation (greedy set cover with a
//     weighted densest-subgraph oracle),
//   - the PARALLELNOSY parallel heuristic (shared-memory and MapReduce
//     implementations),
//   - the push-all / pull-all / hybrid (FEEDINGFRENZY) baselines,
//   - incremental schedule maintenance under graph churn,
//   - synthetic social-graph generators and log-degree workload models,
//   - a prototype view-store cluster that serves event streams under any
//     schedule and measures actual throughput, and
//   - harnesses regenerating every figure of the paper's evaluation.
//
// Every algorithm is exposed through one typed contract, the Solver
// interface: Solve(ctx, Problem) (*Result, error) with cooperative
// cancellation (canceled solves return the best-so-far valid schedule
// together with the context's error), live progress streaming, and
// typed errors instead of panics. Solvers are selected by name from a
// registry, so tools and services share a single code path.
//
// Quick start:
//
//	g := piggyback.TwitterLikeGraph(10000, 42)
//	r := piggyback.LogDegreeRates(g, 5) // read/write ratio 5
//	sv, _ := piggyback.NewSolver("nosy", piggyback.Options{})
//	res, err := sv.Solve(ctx, piggyback.Problem{Graph: g, Rates: r})
//	if err != nil && !errors.Is(err, context.Canceled) {
//		log.Fatal(err)
//	}
//	fmt.Printf("improvement: %.2fx\n", piggyback.HybridCost(g, r)/res.Report.Cost)
package piggyback

import (
	"context"

	"piggyback/internal/baseline"
	"piggyback/internal/chitchat"
	"piggyback/internal/core"
	"piggyback/internal/densest"
	"piggyback/internal/graph"
	"piggyback/internal/graphgen"
	"piggyback/internal/incremental"
	"piggyback/internal/nosy"
	"piggyback/internal/online"
	"piggyback/internal/partition"
	"piggyback/internal/refine"
	"piggyback/internal/sampling"
	"piggyback/internal/shard"
	"piggyback/internal/solver"
	"piggyback/internal/stats"
	"piggyback/internal/store"
	"piggyback/internal/workload"
)

// Solver is the contract every scheduling algorithm implements:
// Solve(ctx, Problem) (*Result, error). The context is checked at
// iteration granularity; on cancellation Solve returns the best-so-far
// VALID schedule together with the context's error (anytime-solver
// semantics). See the internal/solver package comment for the full
// contract.
type Solver = solver.Solver

// Problem is one solve request: Graph and Rates for a full solve, plus
// Base and Region for a localized re-solve.
type Problem = solver.Problem

// Result is a solver output: a Theorem-1-valid Schedule and the run
// Report.
type Result = solver.Result

// Report summarizes a finished (or canceled) solve: iteration counts,
// commit stats, boundary repairs, final cost.
type Report = solver.Report

// ProgressEvent is a live progress sample streamed to Options.Progress
// while a solve runs.
type ProgressEvent = solver.ProgressEvent

// Options tunes a registry-constructed solver: workers, iteration and
// cross-edge bounds, cost tracing, and the Progress callback.
type Options = solver.Options

// SolverFactory builds a configured Solver from Options.
type SolverFactory = solver.Factory

// SolverRegistry is a first-class mapping from solver names to factories
// plus per-entry metadata. The process-global instance backing
// RegisterSolver / NewSolver is DefaultSolverRegistry(); isolated stacks
// (tests, embedded portfolios) build their own with NewSolverRegistry or
// fork the default with Clone.
type SolverRegistry = solver.Registry

// SolverMeta describes a registered solver: region capability and a
// coarse cost class.
type SolverMeta = solver.Meta

// SolverCostClass is the coarse relative-expense label carried in
// SolverMeta.
type SolverCostClass = solver.CostClass

// Solver cost classes.
const (
	SolverCostUnknown   = solver.CostUnknown
	SolverCostCheap     = solver.CostCheap
	SolverCostModerate  = solver.CostModerate
	SolverCostExpensive = solver.CostExpensive
)

// DefaultSolverRegistry returns the process-global registry all built-in
// solvers register into.
func DefaultSolverRegistry() *SolverRegistry { return solver.Default }

// NewSolverRegistry returns an empty, independent solver registry.
func NewSolverRegistry() *SolverRegistry { return solver.NewRegistry() }

// Typed errors surfaced by Solve (and the registry).
var (
	// ErrInstanceTooLarge: the exact densest-subgraph oracle was asked
	// to enumerate an instance with more than 24 nodes.
	ErrInstanceTooLarge = densest.ErrInstanceTooLarge
	// ErrEdgeOutOfRange: a graph edge referenced a node outside [0, n).
	ErrEdgeOutOfRange = graph.ErrEdgeOutOfRange
	// ErrUnknownSolver: no solver is registered under the given name.
	ErrUnknownSolver = solver.ErrUnknownSolver
	// ErrDuplicateSolver: Register was called with a name already taken.
	ErrDuplicateSolver = solver.ErrDuplicateSolver
	// ErrRegionUnsupported: the chosen solver cannot re-solve regions.
	ErrRegionUnsupported = solver.ErrRegionUnsupported
	// ErrRegionNotInduced: a region re-solve needs the region to be the
	// full induced edge set of its endpoint nodes.
	ErrRegionNotInduced = solver.ErrRegionNotInduced
)

// RegisterSolver makes a solver available under name in the default
// registry (panics on duplicates — registration is an init-time
// affair; use DefaultSolverRegistry().Register for the error-returning
// form). The built-ins are "chitchat", "nosy", "nosymr", "shard",
// "hybrid", "pushall", "pullall", plus the adaptive meta-solvers
// "portfolio" (races several members, returns the cheapest valid
// schedule) and "auto" (feature-based per-problem selection).
func RegisterSolver(name string, f SolverFactory) {
	solver.Default.MustRegister(name, f, SolverMeta{})
}

// GetSolver returns the factory registered under name in the default
// registry, or an error wrapping ErrUnknownSolver.
func GetSolver(name string) (SolverFactory, error) { return solver.Default.Get(name) }

// NewSolver looks name up in the default registry and builds the solver.
func NewSolver(name string, opts Options) (Solver, error) { return solver.Default.New(name, opts) }

// Solvers returns every solver name in the default registry, sorted.
func Solvers() []string { return solver.Default.Names() }

// SolverMiddleware wraps a Solver with a cross-cutting concern (metrics,
// logging, panic conversion, work budgets) while preserving the Solver
// contract.
type SolverMiddleware = solver.Middleware

// ChainSolver applies middlewares to s; the first middleware becomes the
// outermost layer.
func ChainSolver(s Solver, mws ...SolverMiddleware) Solver { return solver.Chain(s, mws...) }

// SolverMetrics is a concurrency-safe per-solver metrics sink for
// WithSolverMetrics; its Table method renders an aligned summary.
type SolverMetrics = stats.SolverMetrics

// SolverStats is one solver's accumulated counters in a SolverMetrics.
type SolverStats = stats.SolverStats

// WithSolverMetrics records per-solve counters and timings into sink.
func WithSolverMetrics(sink *SolverMetrics) SolverMiddleware { return solver.WithMetrics(sink) }

// WithSolverLogging logs solve start/finish lines through logf.
func WithSolverLogging(logf func(format string, args ...any)) SolverMiddleware {
	return solver.WithLogging(logf)
}

// WithSolverRecover converts solver panics into errors.
func WithSolverRecover() SolverMiddleware { return solver.WithRecover() }

// WithSolverBudget deterministically truncates a solve after the given
// number of progress events (iterations), returning the valid anytime
// schedule with Report.Canceled set and a nil error.
func WithSolverBudget(units int) SolverMiddleware { return solver.WithBudget(units) }

// PortfolioConfig tunes the portfolio solver: which registry members to
// race, the concurrency cap, and the per-member iteration budget.
type PortfolioConfig = solver.PortfolioConfig

// NewPortfolioSolver returns the portfolio solver under its full typed
// config (registry name "portfolio"): it races the member solvers on
// the same Problem under one context and returns the cheapest valid
// schedule, with a deterministic cost-then-name tie-break.
func NewPortfolioSolver(cfg PortfolioConfig) Solver { return solver.NewPortfolio(cfg) }

// SolverFeatures are the cheap structural measurements the "auto"
// selector reads (node/edge counts, density, degree skew, region size,
// drift degradation).
type SolverFeatures = solver.Features

// SolverRule maps a feature predicate to a solver name in the selector's
// decision table.
type SolverRule = solver.Rule

// DefaultSolverRules returns the fixed decision table the "auto" solver
// evaluates in order.
func DefaultSolverRules() []SolverRule { return solver.DefaultRules() }

// SelectorConfig tunes the feature-based selector solver.
type SelectorConfig = solver.SelectorConfig

// NewAutoSolver returns the feature-based selector solver under its full
// typed config (registry name "auto"): per Problem it measures cheap
// structural features and delegates to the solver named by the first
// matching rule.
func NewAutoSolver(cfg SelectorConfig) Solver { return solver.NewSelector(cfg) }

// MustSolve runs the named registered solver to completion and panics
// on any error — the one-liner for examples, tests, and scripts.
// Production callers should use NewSolver/Solve for cancellation,
// progress, and typed errors.
func MustSolve(name string, g *Graph, r *Rates) *Schedule {
	sv, err := NewSolver(name, Options{})
	if err != nil {
		panic(err)
	}
	res, err := sv.Solve(context.Background(), Problem{Graph: g, Rates: r})
	if err != nil {
		panic(err)
	}
	return res.Schedule
}

// NewChitChatSolver returns the CHITCHAT solver under its full typed
// config (knobs beyond Options: exact oracle, refresh batch, member
// cache cap, progress hook).
func NewChitChatSolver(cfg ChitChatConfig) Solver { return solver.NewChitChat(cfg) }

// NewNosySolver returns the shared-memory PARALLELNOSY solver under its
// full typed config. It supports Problem.Region re-solves.
func NewNosySolver(cfg NosyConfig) Solver { return solver.NewNosy(cfg) }

// NewNosyMapReduceSolver returns the MapReduce PARALLELNOSY solver; it
// produces schedules identical to NewNosySolver.
func NewNosyMapReduceSolver(cfg NosyConfig) Solver { return solver.NewNosyMapReduce(cfg) }

// ShardConfig tunes the sharded solver: partition → concurrent per-shard
// solves → deterministic cut reconciliation.
type ShardConfig = shard.Config

// NewShardSolver returns the sharded million-edge solver under its full
// typed config (registry name "shard"; zero config auto-sizes the
// partition and runs CHITCHAT per shard).
func NewShardSolver(cfg ShardConfig) Solver { return shard.New(cfg) }

// Graph is a directed social graph in CSR form; the edge u → v means v
// subscribes to u. Build one with NewGraphBuilder or GraphFromEdges.
type Graph = graph.Graph

// GraphBuilder accumulates edges before freezing them into a Graph.
type GraphBuilder = graph.Builder

// NodeID identifies a user (dense, 0-based).
type NodeID = graph.NodeID

// EdgeID identifies a directed edge (dense, 0-based).
type EdgeID = graph.EdgeID

// Edge is a directed subscription edge.
type Edge = graph.Edge

// Schedule is a request schedule: push set H, pull set L, and hub
// coverage, with the cost model and the Theorem-1 validity check.
type Schedule = core.Schedule

// Rates holds per-user production and consumption rates.
type Rates = workload.Rates

// NewGraphBuilder returns a builder for a graph with n nodes.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// GraphFromEdges builds a graph with n nodes from an edge list.
func GraphFromEdges(n int, edges []Edge) *Graph { return graph.FromEdges(n, edges) }

// TwitterLikeGraph generates a synthetic social graph shaped like the
// paper's Twitter crawl: dense, low reciprocity, heavy degree skew.
func TwitterLikeGraph(nodes int, seed int64) *Graph {
	return graphgen.Social(graphgen.TwitterLike(nodes, seed))
}

// FlickrLikeGraph generates a synthetic social graph shaped like the
// paper's Flickr crawl: high reciprocity and clustering.
func FlickrLikeGraph(nodes int, seed int64) *Graph {
	return graphgen.Social(graphgen.FlickrLike(nodes, seed))
}

// SocialGraphConfig exposes the generator's knobs for custom shapes.
type SocialGraphConfig = graphgen.Config

// SocialGraph generates a synthetic social graph from an explicit config.
func SocialGraph(cfg SocialGraphConfig) *Graph { return graphgen.Social(cfg) }

// StreamSocialGraph generates a graph with SocialGraph's shape through
// the two-pass streaming CSR builder, with generator state O(nodes)
// instead of an in-memory edge list — the million-edge path (the RNG
// draw order differs from SocialGraph's, so the edge sets are distinct).
// Pair with the "shard" solver to keep solve memory O(shard).
func StreamSocialGraph(cfg SocialGraphConfig) *Graph { return graphgen.StreamSocial(cfg) }

// FlickrLikeEdges sizes a Flickr-like config to hit a target edge count
// rather than a node count, for scale-targeted benchmarks.
func FlickrLikeEdges(edges int, seed int64) SocialGraphConfig {
	return graphgen.FlickrLikeEdges(edges, seed)
}

// LogDegreeRates derives the paper's synthetic workload: production ∝
// log followers, consumption ∝ log followees, rescaled to the given
// read/write ratio (the paper's reference value is 5).
func LogDegreeRates(g *Graph, readWriteRatio float64) *Rates {
	return workload.LogDegree(g, readWriteRatio)
}

// UniformRates gives every user production 1 and consumption ratio.
func UniformRates(n int, ratio float64) *Rates { return workload.NewUniform(n, ratio) }

// ZipfRates gives Zipf-distributed per-user activity independent of graph
// degree — a sensitivity alternative to LogDegreeRates.
func ZipfRates(n int, s, readWriteRatio float64, seed int64) *Rates {
	return workload.Zipf(n, s, readWriteRatio, seed)
}

// NewSchedule returns an empty schedule for g (no edge served yet).
func NewSchedule(g *Graph) *Schedule { return core.NewSchedule(g) }

// PushAll returns the all-push baseline schedule.
func PushAll(g *Graph) *Schedule { return baseline.PushAll(g) }

// PullAll returns the all-pull baseline schedule.
func PullAll(g *Graph) *Schedule { return baseline.PullAll(g) }

// Hybrid returns the FEEDINGFRENZY baseline of Silberstein et al.: each
// edge served by the cheaper of push and pull.
func Hybrid(g *Graph, r *Rates) *Schedule { return baseline.Hybrid(g, r) }

// ChitChatConfig tunes the CHITCHAT approximation algorithm.
type ChitChatConfig = chitchat.Config

// ChitChat computes a schedule with the CHITCHAT O(ln n)-approximation.
// It is the quality reference; use the "nosy" solver for very large
// graphs. The densest-subgraph oracle evaluations fan out across
// ChitChatConfig.Workers goroutines (default: all cores) and the
// schedule is byte-identical for every worker count.
//
// Deprecated: use NewChitChatSolver(cfg).Solve (or NewSolver("chitchat",
// ...)) for cancellation, live progress, and typed errors. This wrapper
// panics where Solve returns an error.
func ChitChat(g *Graph, r *Rates, cfg ChitChatConfig) *Schedule {
	res, err := NewChitChatSolver(cfg).Solve(context.Background(), Problem{Graph: g, Rates: r})
	if err != nil {
		panic(err)
	}
	return res.Schedule
}

// NosyConfig tunes PARALLELNOSY.
type NosyConfig = nosy.Config

// NosyIteration reports per-iteration progress of PARALLELNOSY.
type NosyIteration = nosy.IterationStat

// ParallelNosy computes a schedule with the PARALLELNOSY parallel
// heuristic, returning the finalized schedule and per-iteration stats.
//
// Deprecated: use NewNosySolver(cfg).Solve (or NewSolver("nosy", ...))
// for cancellation and live progress; per-iteration stats stream through
// NosyConfig.OnIteration / Options.Progress instead of accumulating.
func ParallelNosy(g *Graph, r *Rates, cfg NosyConfig) (*Schedule, []NosyIteration) {
	var iters []NosyIteration
	cfg.OnIteration = chainIters(cfg.OnIteration, &iters)
	res, err := NewNosySolver(cfg).Solve(context.Background(), Problem{Graph: g, Rates: r})
	if err != nil {
		panic(err)
	}
	return res.Schedule, iters
}

// ParallelNosyMapReduce runs the same heuristic as literal MapReduce jobs
// on the in-memory engine — the paper's Hadoop formulation. It produces
// the identical schedule as ParallelNosy.
//
// Deprecated: use NewNosyMapReduceSolver(cfg).Solve (or
// NewSolver("nosymr", ...)).
func ParallelNosyMapReduce(g *Graph, r *Rates, cfg NosyConfig) (*Schedule, []NosyIteration) {
	var iters []NosyIteration
	cfg.OnIteration = chainIters(cfg.OnIteration, &iters)
	res, err := NewNosyMapReduceSolver(cfg).Solve(context.Background(), Problem{Graph: g, Rates: r})
	if err != nil {
		panic(err)
	}
	return res.Schedule, iters
}

// chainIters accumulates iteration stats into dst while preserving any
// caller-installed hook — the shim that lets the deprecated slice-
// returning wrappers ride on the streaming API.
func chainIters(prev func(NosyIteration), dst *[]NosyIteration) func(NosyIteration) {
	return func(it NosyIteration) {
		*dst = append(*dst, it)
		if prev != nil {
			prev(it)
		}
	}
}

// HybridCost returns the FEEDINGFRENZY cost without materializing the
// schedule; improvement ratios in the paper are relative to it.
func HybridCost(g *Graph, r *Rates) float64 { return baseline.HybridCost(g, r) }

// ImprovementRatio returns the predicted improvement of schedule s over
// the hybrid baseline: HybridCost / Cost(s). Values above 1 mean s wins.
func ImprovementRatio(s *Schedule, r *Rates) float64 {
	return baseline.HybridCost(s.Graph(), r) / s.Cost(r)
}

// RefineResult summarizes a free-coverage refinement sweep.
type RefineResult = refine.Result

// Refine post-processes a valid schedule in place, converting direct
// edges that are already bracketed by a push+pull hub path into free hub
// coverage. It never increases cost. Converged ParallelNosy schedules
// have nothing to recover; truncated runs and the hybrid baseline often
// do.
func Refine(s *Schedule, r *Rates) RefineResult { return refine.Run(s, r) }

// Maintainer applies incremental graph updates (§3.3) to an optimized
// schedule without re-running the optimizer: new edges are covered for
// free through existing hubs when possible, rescued coverage migrates to
// alternative hubs, and the running Cost() is O(1).
type Maintainer = incremental.Maintainer

// NewMaintainer wraps an optimized schedule for incremental maintenance.
func NewMaintainer(s *Schedule, r *Rates) *Maintainer { return incremental.New(s, r) }

// Subgraph is a node-induced subgraph with its ID remapping, for
// localized re-optimization.
type Subgraph = graph.Subgraph

// InducedSubgraph extracts the subgraph induced by the given nodes with
// dense local IDs.
func InducedSubgraph(g *Graph, nodes []NodeID) *Subgraph { return graph.Induced(g, nodes) }

// KHopNeighborhood returns the nodes within k undirected hops of the
// seeds (sorted; maxNodes > 0 caps the result deterministically).
func KHopNeighborhood(g *Graph, seeds []NodeID, k, maxNodes int) []NodeID {
	return graph.KHop(g, seeds, k, maxNodes)
}

// ChitChatInduced re-solves an extracted region with CHITCHAT under the
// global rates projected through the subgraph mapping, returning a patch
// schedule over sub.G for ApplySchedulePatch.
//
// Deprecated: use NewChitChatSolver(cfg).Solve with Problem.Base and
// Problem.Region, which extracts, re-solves, and splices in one call.
func ChitChatInduced(sub *Subgraph, r *Rates, cfg ChitChatConfig) *Schedule {
	return chitchat.SolveInduced(sub, r, cfg)
}

// ParallelNosyRestricted re-optimizes only the given region edges of g,
// starting from a valid base schedule — the localized re-solve entry
// point. Edges outside the region keep their assignment (boundary
// coverage may gain support flags); the result is valid and identical
// for every worker count.
//
// Deprecated: use NewNosySolver(cfg).Solve with Problem.Base and
// Problem.Region.
func ParallelNosyRestricted(g *Graph, r *Rates, cfg NosyConfig, base *Schedule, region []EdgeID) (*Schedule, []NosyIteration) {
	var iters []NosyIteration
	cfg.OnIteration = chainIters(cfg.OnIteration, &iters)
	res, err := NewNosySolver(cfg).Solve(context.Background(),
		Problem{Graph: g, Rates: r, Base: base, Region: region})
	if err != nil {
		panic(err)
	}
	return res.Schedule, iters
}

// ApplySchedulePatch splices a re-solved region patch (a schedule over
// sub.G) into s atomically, repairing boundary coverage; it returns the
// number of boundary repairs.
func ApplySchedulePatch(s *Schedule, sub *Subgraph, patch *Schedule, r *Rates) (int, error) {
	return core.ApplyPatch(s, sub, patch, r)
}

// ChurnOp is one graph/workload update in a churn stream.
type ChurnOp = workload.ChurnOp

// Churn op kinds.
const (
	OpAdd    = workload.OpAdd
	OpRemove = workload.OpRemove
	OpRates  = workload.OpRates
)

// ChurnConfig tunes the synthetic churn-trace generator.
type ChurnConfig = workload.ChurnConfig

// GenerateChurn synthesizes a deterministic churn trace against the
// live edge set starting at g.
func GenerateChurn(g *Graph, r *Rates, n int, cfg ChurnConfig) []ChurnOp {
	return workload.GenerateChurn(g, r, n, cfg)
}

// OnlineConfig tunes the online rescheduling daemon.
type OnlineConfig = online.Config

// OnlineDaemon ingests a churn stream, tracks cost drift against a
// coverability lower bound, and wins quality back with localized
// re-solves spliced atomically into the live schedule.
type OnlineDaemon = online.Daemon

// OnlineStats counts daemon activity (ops, rescues, re-solves, region
// sizes).
type OnlineStats = online.Stats

// Online solver kinds for localized re-solves.
const (
	OnlineSolverChitChat = online.SolverChitChat
	OnlineSolverNosy     = online.SolverNosy
	OnlineSolverAuto     = online.SolverAuto
)

// NewOnlineDaemon starts an online rescheduling daemon from an
// optimized valid schedule. The rates are retained and mutated by
// rate-update ops.
func NewOnlineDaemon(s *Schedule, r *Rates, cfg OnlineConfig) (*OnlineDaemon, error) {
	return online.New(s, r, cfg)
}

// SampleResult is a sampled subgraph with its node mapping.
type SampleResult = sampling.Result

// RandomWalkSample extracts an induced subgraph via random walk with
// restarts until it holds at least targetEdges edges.
func RandomWalkSample(g *Graph, targetEdges int, seed int64) SampleResult {
	return sampling.RandomWalk(g, targetEdges, seed)
}

// BFSSample extracts an induced subgraph via breadth-first exploration.
func BFSSample(g *Graph, targetEdges int, seed int64) SampleResult {
	return sampling.BFS(g, targetEdges, seed)
}

// Assignment maps user views to data-store servers.
type Assignment = partition.Assignment

// HashPartition assigns views to servers by hashing user ids — the
// prototype's placement policy.
func HashPartition(nodes, servers int, seed int64) Assignment {
	return partition.Hash(nodes, servers, seed)
}

// PlacementCost returns the message cost of s under placement a, with
// same-server batching.
func PlacementCost(s *Schedule, r *Rates, a Assignment) float64 {
	return partition.Cost(s, r, a)
}

// NormalizedThroughput returns predicted throughput under placement,
// normalized so one server scores 1 (Figure 7's y axis).
func NormalizedThroughput(s *Schedule, r *Rates, a Assignment) float64 {
	return partition.NormalizedThroughput(s, r, a)
}

// Event is the prototype's 24-byte view tuple.
type Event = store.Event

// Cluster is the prototype data-store tier: one goroutine per simulated
// server, serving batched view updates and queries under a schedule.
type Cluster = store.Cluster

// ClusterOptions configures a prototype cluster.
type ClusterOptions = store.Options

// Client issues Algorithm-3 requests against a Cluster.
type Client = store.Client

// NewCluster starts a prototype cluster executing schedule s.
func NewCluster(s *Schedule, opts ClusterOptions) (*Cluster, error) {
	return store.NewCluster(s, opts)
}

// Trace is a replayable request workload for throughput measurement.
type Trace = store.Trace

// GenerateTrace samples a request trace from the workload rates.
func GenerateTrace(r *Rates, n int, seed int64) Trace {
	return store.GenerateTrace(r, n, seed)
}

// BenchResult is a wall-clock throughput measurement.
type BenchResult = store.BenchResult

// MeasureThroughput replays a trace against a cluster with the given
// number of client goroutines and reports actual requests/second.
func MeasureThroughput(c *Cluster, t Trace, clients int) BenchResult {
	return store.MeasureThroughput(c, t, clients)
}
