package solver

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"piggyback/internal/chitchat"
	"piggyback/internal/nosy"
	"piggyback/internal/stats"
)

// tagSolver records the order middleware layers run in.
type tagSolver struct {
	wrapped
	tag   string
	order *[]string
}

func (ts *tagSolver) Solve(ctx context.Context, p Problem) (*Result, error) {
	*ts.order = append(*ts.order, ts.tag)
	return ts.inner.Solve(ctx, p)
}

func tagMiddleware(tag string, order *[]string) Middleware {
	return func(next Solver) Solver {
		return &tagSolver{wrapped: wrapped{next}, tag: tag, order: order}
	}
}

// Chain(s, a, b) must solve through a(b(s)): first middleware outermost.
func TestChainOrder(t *testing.T) {
	g, r := quickProblem(t, 60)
	var order []string
	sv := Chain(baselineSolver{Hybrid},
		tagMiddleware("outer", &order),
		nil, // nil entries are skipped
		tagMiddleware("inner", &order),
	)
	if sv.Name() != Hybrid {
		t.Fatalf("chained Name() = %q, want %q", sv.Name(), Hybrid)
	}
	if _, err := sv.Solve(context.Background(), Problem{Graph: g, Rates: r}); err != nil {
		t.Fatal(err)
	}
	if want := []string{"outer", "inner"}; len(order) != 2 || order[0] != want[0] || order[1] != want[1] {
		t.Fatalf("layer order = %v, want %v", order, want)
	}
}

// Wrapping preserves identity, region capability, and the progress
// stream.
func TestMiddlewarePreservesContract(t *testing.T) {
	g, r := quickProblem(t, 60)
	sv := Chain(NewNosy(nosy.Config{Workers: 1}),
		WithRecover(), WithMetrics(&stats.SolverMetrics{}), WithBudget(1000))
	if sv.Name() != Nosy {
		t.Errorf("Name() through 3 layers = %q, want %q", sv.Name(), Nosy)
	}
	if !SupportsRegions(sv) {
		t.Errorf("SupportsRegions lost through middleware")
	}
	var events int
	if !Observe(sv, func(ProgressEvent) { events++ }) {
		t.Fatalf("progress chaining lost through middleware")
	}
	if _, err := sv.Solve(context.Background(), Problem{Graph: g, Rates: r}); err != nil {
		t.Fatal(err)
	}
	if events == 0 {
		t.Errorf("no progress events reached the outer sink")
	}
}

func TestWithMetricsRecords(t *testing.T) {
	g, r := quickProblem(t, 120)
	sink := &stats.SolverMetrics{}
	sv := Chain(NewNosy(nosy.Config{Workers: 1}), WithMetrics(sink))
	res, err := sv.Solve(context.Background(), Problem{Graph: g, Rates: r})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sv.Solve(context.Background(), Problem{Graph: g, Rates: r}); err != nil {
		t.Fatal(err)
	}
	snap := sink.Snapshot()
	st, ok := snap[Nosy]
	if !ok {
		t.Fatalf("no stats recorded under %q; have %v", Nosy, sink.Names())
	}
	if st.Solves != 2 || st.Failures != 0 || st.Canceled != 0 {
		t.Fatalf("stats = %+v, want 2 clean solves", st)
	}
	if st.Iterations == 0 || st.Events == 0 || st.Wall <= 0 {
		t.Fatalf("counters not accumulated: %+v", st)
	}
	if st.LastCost != res.Report.Cost {
		t.Fatalf("LastCost = %v, want %v", st.LastCost, res.Report.Cost)
	}
	if !strings.Contains(sink.Table(), Nosy) {
		t.Fatalf("Table() does not mention %q:\n%s", Nosy, sink.Table())
	}
}

type panicSolver struct{}

func (panicSolver) Name() string                                    { return "boom" }
func (panicSolver) Solve(context.Context, Problem) (*Result, error) { panic("kaboom") }

func TestWithRecoverConvertsPanic(t *testing.T) {
	g, r := quickProblem(t, 60)
	sv := Chain(panicSolver{}, WithRecover())
	res, err := sv.Solve(context.Background(), Problem{Graph: g, Rates: r})
	if res != nil {
		t.Fatalf("panicking solve returned a result")
	}
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v, want wrapped panic", err)
	}
	// Failures reach the metrics sink as failures, not as crashes.
	sink := &stats.SolverMetrics{}
	sv = Chain(panicSolver{}, WithMetrics(sink), WithRecover())
	if _, err := sv.Solve(context.Background(), Problem{Graph: g, Rates: r}); err == nil {
		t.Fatal("expected error")
	}
	if st := sink.Snapshot()["boom"]; st.Failures != 1 {
		t.Fatalf("failure not recorded: %+v", st)
	}
}

func TestWithLoggingLines(t *testing.T) {
	g, r := quickProblem(t, 60)
	var lines []string
	logf := func(format string, args ...any) { lines = append(lines, fmt.Sprintf(format, args...)) }
	sv := Chain(baselineSolver{Hybrid}, WithLogging(logf))
	if _, err := sv.Solve(context.Background(), Problem{Graph: g, Rates: r}); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 {
		t.Fatalf("logged %d lines, want start+finish:\n%s", len(lines), strings.Join(lines, "\n"))
	}
	if !strings.Contains(lines[0], "solving") || !strings.Contains(lines[1], "done") {
		t.Fatalf("unexpected log lines:\n%s", strings.Join(lines, "\n"))
	}
}

// The budget middleware truncates deterministically: same budget ⇒
// byte-identical schedule, independent of the member's worker count.
// The budget stop is a completion (nil error) flagged by
// Report.Canceled.
func TestWithBudgetDeterministicTruncation(t *testing.T) {
	g, r := quickProblem(t, 250)

	// Reference: converged run takes more rounds than the budget.
	full := NewNosy(nosy.Config{Workers: 1})
	fres, err := full.Solve(context.Background(), Problem{Graph: g, Rates: r})
	if err != nil {
		t.Fatal(err)
	}
	const budget = 2
	if fres.Report.Iterations <= budget {
		t.Fatalf("instance converges in %d rounds; budget %d does not bite", fres.Report.Iterations, budget)
	}

	var ref []byte
	for _, workers := range []int{1, 4} {
		sv := Chain(NewNosy(nosy.Config{Workers: workers}), WithBudget(budget))
		res, err := sv.Solve(context.Background(), Problem{Graph: g, Rates: r})
		if err != nil {
			t.Fatalf("workers=%d: budget stop surfaced as error: %v", workers, err)
		}
		if !res.Report.Canceled {
			t.Fatalf("workers=%d: truncated run not flagged Canceled", workers)
		}
		if err := res.Schedule.Validate(); err != nil {
			t.Fatalf("workers=%d: truncated schedule invalid: %v", workers, err)
		}
		// The solver stops within one iteration of the budget firing.
		if got := res.Report.Iterations; got > budget+1 {
			t.Fatalf("workers=%d: ran %d iterations on a %d budget", workers, got, budget)
		}
		b := scheduleBytes(t, res.Schedule)
		if ref == nil {
			ref = b
		} else if !bytes.Equal(ref, b) {
			t.Fatalf("workers=%d: truncated schedule differs from workers=1", workers)
		}
	}

	// A budget the solve never reaches changes nothing.
	sv := Chain(NewNosy(nosy.Config{Workers: 1}), WithBudget(10000))
	res, err := sv.Solve(context.Background(), Problem{Graph: g, Rates: r})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Canceled {
		t.Fatalf("unreached budget flagged the run Canceled")
	}
	if !bytes.Equal(scheduleBytes(t, res.Schedule), scheduleBytes(t, fres.Schedule)) {
		t.Fatalf("unreached budget changed the schedule")
	}
}

// The budget applies to CHITCHAT's commit stream too.
func TestWithBudgetChitChat(t *testing.T) {
	g, r := quickProblem(t, 250)
	const budget = 10
	sv := Chain(NewChitChat(chitchat.Config{Workers: 1}), WithBudget(budget))
	res, err := sv.Solve(context.Background(), Problem{Graph: g, Rates: r})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Canceled {
		t.Fatal("truncated chitchat not flagged Canceled")
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatalf("truncated schedule invalid: %v", err)
	}
	if got := res.Report.Iterations; got > budget {
		t.Fatalf("committed %d times on a %d-commit budget", got, budget)
	}
}

// Caller cancellation is NOT swallowed by the budget layer.
func TestWithBudgetPropagatesOuterCancel(t *testing.T) {
	g, r := quickProblem(t, 120)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sv := Chain(NewNosy(nosy.Config{Workers: 1}), WithBudget(1000))
	res, err := sv.Solve(ctx, Problem{Graph: g, Rates: r})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || res.Schedule.Validate() != nil {
		t.Fatal("anytime contract broken under outer cancel")
	}
}

// Budget-less or progress-less solvers pass through untouched.
func TestWithBudgetNoopCases(t *testing.T) {
	g, r := quickProblem(t, 60)
	for _, sv := range []Solver{
		Chain(baselineSolver{Hybrid}, WithBudget(1)),           // no progress stream
		Chain(NewNosy(nosy.Config{Workers: 1}), WithBudget(0)), // no budget
	} {
		res, err := sv.Solve(context.Background(), Problem{Graph: g, Rates: r})
		if err != nil {
			t.Fatal(err)
		}
		if res.Report.Canceled {
			t.Fatalf("%s: no-op budget flagged Canceled", sv.Name())
		}
	}
}
