// Package chitchat implements the CHITCHAT approximation algorithm (§3.1).
//
// CHITCHAT maps the DISSEMINATION problem to weighted SETCOVER: the ground
// set is the edges of the social graph, and the candidate collection
// contains (a) singleton edges served directly at the hybrid cost
// c*(u→v) = min(rp(u), rc(v)) and (b) hub-graphs G(X, w, Y), which pay for
// the pushes X→w and pulls w→Y and cover, for free, every cross-edge
// X→Y present in the graph. The greedy step — find the candidate with the
// lowest cost per newly covered element — is solved per hub by the
// weighted densest-subgraph oracle of package densest (Lemma 1), giving
// an overall O(ln n) approximation (Theorem 4).
//
// The oracle is incremental: a hub-graph instance is materialized (CSR
// adjacency + weights, capped at Config.MaxCrossEdges cross-edges) into
// a densest.Decremental, and a greedy commit only removes the covered
// elements from the resident instances that actually contain them (via
// an inverted edge → (hub, element) index) and zeroes the support
// weights it paid. Re-evaluating a hub is then a re-peel of its live
// sub-instance — no instance rebuild, no graph adjacency scans — and a
// hub untouched by a commit keeps its oracle output with no work at all.
// Because coverage is committed from the same materialized elements the
// oracle counted, the claimed newlyCovered always equals the coverage
// the commit performs, including when MaxCrossEdges truncates the
// instance.
//
// Instances live in a generational store (instStore) that may spill them
// under Config.InstanceBudget: an instance's live state is a pure
// function of the shared solve state — an element is dead iff its graph
// edge's uncovered bit is clear, a support weight is zero iff the
// matching push/pull flag is set in the schedule — so a spilled instance
// is rebuilt on demand by re-materializing and replaying those two
// facts, and is indistinguishable from one that stayed resident. The
// spill policy therefore cannot change the schedule: budgets only trade
// rebuild work for peak memory.
//
// The paper's Algorithm 1 refreshes the oracle output of every affected
// hub after each selection; we use a batched lazy-greedy variant instead:
// a commit eagerly re-evaluates only the hubs whose ratio may have
// IMPROVED (support weights zeroed — the committed hub itself, or the
// hub paid for by a singleton), while hubs that merely lost elements got
// worse and keep their stale, too-low queue entries until they reach the
// head. A stale head triggers a speculative refresh of the top
// Config.RefreshBatch candidates at once. The committed choice is the same
// greedy choice up to ties; the lazy form just avoids recomputing oracles
// whose turn never comes.
//
// Oracle evaluations are independent reads of the solver state, so both
// the initial per-hub pass and every refresh batch fan out across
// Config.Workers goroutines. Which candidates get refreshed, and which
// commits, is decided by queue state alone (ties break toward the lowest
// hub id), so the schedule is byte-identical for every worker count.
package chitchat

import (
	"context"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"piggyback/internal/baseline"
	"piggyback/internal/bitset"
	"piggyback/internal/core"
	"piggyback/internal/densest"
	"piggyback/internal/graph"
	"piggyback/internal/pq"
	"piggyback/internal/workload"
)

// Config tunes CHITCHAT. The zero value uses the defaults.
type Config struct {
	// MaxCrossEdges bounds the number of cross-edges materialized per
	// hub-graph instance, mirroring the bound b of §3.2/§4.2. 0 means
	// DefaultMaxCrossEdges. The bound is applied once, when the instance
	// is materialized; both the oracle's coverage claim and the committed
	// coverage are computed from the same materialized element set, so
	// they always agree.
	MaxCrossEdges int
	// ExactOracle replaces the peeling oracle with brute-force subset
	// enumeration (instances up to 24 nodes; larger hub-graphs fall back
	// to peeling). Only sensible on tiny graphs; used by ablation benches.
	ExactOracle bool
	// Workers is the parallelism degree for oracle evaluation; 0 means
	// GOMAXPROCS. The resulting schedule is identical for every worker
	// count: workers only change who evaluates an oracle, never which
	// candidates are refreshed or chosen.
	Workers int
	// RefreshBatch is how many stale hub candidates at the head of the
	// queue are re-evaluated together when the head turns out stale; 0
	// means DefaultRefreshBatch. It is deliberately independent of
	// Workers: the refresh policy decides tie-breaks and therefore the
	// schedule, and the schedule must not vary with the worker count —
	// for any fixed RefreshBatch the result is worker-count invariant.
	RefreshBatch int
	// InstanceBudget bounds the total materialized hub-instance elements
	// (support + cross edges) resident at once. 0 means unlimited: every
	// instance is built once during initialization and stays resident for
	// the whole solve — the fastest mode, with peak memory proportional
	// to the total instance mass. A finite budget makes the store
	// generational: instances untouched for a full generation are
	// spilled (their memory released) and rebuilt on demand by replaying
	// the uncovered set and the schedule's paid supports. Rebuilding
	// reproduces the instance exactly, so the schedule is byte-identical
	// for every budget; only time and peak memory change. A single
	// instance larger than the budget is still materialized whole.
	InstanceBudget int
	// MemberCacheCap bounds how many oracle member lists are retained
	// between evaluation and commit; 0 means DefaultMemberCacheCap.
	// Priorities only need the (cost, covered) pair, which is stored flat
	// for all hubs; the member slices — the O(|S|) payload that used to
	// be retained for every hub — live in a fixed-size ring. A commit
	// whose members were evicted re-derives them with one deterministic
	// re-peel of the (unchanged) instance, so the cap trades memory for
	// re-peels, never correctness.
	MemberCacheCap int
	// OnProgress, when non-nil, streams a Progress snapshot after every
	// greedy commit. The callback runs on the solve goroutine; it must
	// not mutate solver inputs and should return quickly.
	OnProgress func(Progress)
}

// Progress is the solve-progress snapshot streamed to Config.OnProgress
// after each greedy commit.
type Progress struct {
	Commits    int // greedy commits so far (hubs + singletons)
	HubCommits int // hub commits among them
	Covered    int // ground-set edges served so far
	Remaining  int // ground-set edges still unserved
}

// DefaultMaxCrossEdges matches the bound used for the Twitter runs in §4.2.
const DefaultMaxCrossEdges = 100000

// DefaultRefreshBatch is the speculative refresh width tuned on the
// dev-container profiles (ROADMAP tracks re-tuning on real multi-core
// hardware).
const DefaultRefreshBatch = 16

// DefaultMemberCacheCap is the member-list ring size.
const DefaultMemberCacheCap = 128

// cacheStats summarizes the member cache's behavior over one solve:
// Stores counts every member list that entered the ring (one per oracle
// evaluation kept), HighWater the most lists simultaneously resident,
// Retained the member entries still resident at the end. Stores greatly
// exceeding Capacity with Retained lists capped at Capacity is what
// "resident memory is O(active hubs)" means operationally.
type cacheStats struct {
	Capacity      int
	HighWater     int
	Stores        int
	RetainedLists int
	RetainedInts  int
}

// storeStats summarizes the instance store's behavior over one solve:
// how many instances were materialized (Builds counts every
// materialization; Rebuilds, a subset, the re-materializations of
// spilled instances), how many were evicted, and the peak/final resident
// element mass. Under a finite
// budget, PeakElems staying near the budget while Builds+Rebuilds exceeds
// the hub count is what "peak memory is O(budget), not O(total instance
// mass)" means operationally.
type storeStats struct {
	Budget     int
	Builds     int
	Rebuilds   int
	Evictions  int
	PeakElems  int
	FinalElems int
}

// Test hooks; nil outside tests. commitObserver reports, after every hub
// commit, the coverage the oracle claimed against the coverage the commit
// actually performed. cacheObserver reports member-cache statistics and
// storeObserver instance-store statistics when a solve finishes.
var (
	commitObserver func(w graph.NodeID, claimed, covered int)
	cacheObserver  func(cacheStats)
	storeObserver  func(storeStats)
)

// Solve computes a request schedule for g under rates r. The result is
// always valid (Theorem 1): every edge is pushed, pulled, or covered
// through a hub.
func Solve(g *graph.Graph, r *workload.Rates, cfg Config) *core.Schedule {
	s, _ := SolveCtx(context.Background(), g, r, cfg)
	return s
}

// SolveCtx is Solve with cooperative cancellation: the context is checked
// once per greedy commit (iteration granularity — no per-edge overhead),
// and on cancellation the solve stops where it is, serves every still-
// uncovered edge directly via the hybrid rule (the FEEDINGFRENZY
// finalization), and returns the best-so-far schedule together with the
// context's error. The returned schedule is always Theorem-1 valid, even
// when err != nil — CHITCHAT is an anytime solver under this contract.
func SolveCtx(ctx context.Context, g *graph.Graph, r *workload.Rates, cfg Config) (*core.Schedule, error) {
	if cfg.MaxCrossEdges == 0 {
		cfg.MaxCrossEdges = DefaultMaxCrossEdges
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.RefreshBatch <= 0 {
		cfg.RefreshBatch = DefaultRefreshBatch
	}
	if cfg.MemberCacheCap <= 0 {
		cfg.MemberCacheCap = DefaultMemberCacheCap
	}
	n := g.NumNodes()
	m := g.NumEdges()
	s := core.NewSchedule(g)
	if m == 0 {
		return s, nil
	}

	workers := cfg.Workers
	if workers > n {
		workers = n
	}
	sv := &solver{
		g: g, r: r, cfg: cfg, s: s,
		n:         n,
		uncovered: bitset.New(m),
		remaining: m,
		q:         pq.New(n + m),
		scs:       make([]*scratch, workers),
		inv:       make([][]invEntry, m),
		hasInst:   make([]bool, n),
		fresh:     make([]bool, n),
		freshVal:  make([]hubVal, n),
	}
	sv.uncovered.SetAll()
	sv.mcache.init(cfg.MemberCacheCap)
	sv.store.init(n, cfg.InstanceBudget)
	for i := range sv.scs {
		sv.scs[i] = &scratch{yMark: make([]int64, n), yPos: make([]int32, n)}
	}
	for w := 0; w < n; w++ {
		uid := graph.NodeID(w)
		sv.hasInst[w] = len(g.InNeighbors(uid)) > 0 && len(g.OutNeighbors(uid)) > 0
	}

	// Singleton candidates never change ratio: c*(e) per single element.
	g.Edges(func(e graph.EdgeID, u, v graph.NodeID) bool {
		sv.q.Push(n+int(e), baseline.EdgeCost(r, u, v))
		return true
	})

	// Seed the queue: evaluate every hub instance against the full ground
	// set — the embarrassingly parallel bulk of the solve. Builds and
	// evaluations fan out per chunk; adoption into the store (and the
	// inverted index) is serial in hub order, and under a finite budget
	// the store rotates as chunks register, so only the freshest ~budget
	// elements of instance mass stay resident — peak memory during
	// initialization is O(budget + chunk), not O(total instance mass).
	chunk := 4 * workers
	if chunk < 32 {
		chunk = 32
	}
	tmp := make([]*hubInstance, chunk)
	initRes := make([]hubEval, chunk)
	initOK := make([]bool, chunk)
	ids := make([]int32, 0, n)
	prios := make([]float64, 0, n)
	for lo := 0; lo < n; lo += chunk {
		k := chunk
		if lo+k > n {
			k = n - lo
		}
		sv.forEach(k, func(i int, sc *scratch) {
			w := graph.NodeID(lo + i)
			tmp[i] = buildHubInstance(g, r, w, cfg, sc)
			initRes[i], initOK[i] = evalHub(tmp[i], cfg, sc)
		})
		for i := 0; i < k; i++ {
			w := graph.NodeID(lo + i)
			if tmp[i] == nil {
				continue
			}
			if !initOK[i] {
				// Unusable from the start (oracle keeps nothing): the hub
				// never enters the queue, so its instance is never needed.
				tmp[i] = nil
				continue
			}
			sv.adoptInst(w, tmp[i])
			sv.setFresh(w, initRes[i])
			ids = append(ids, int32(w))
			prios = append(prios, initRes[i].ratio())
			tmp[i] = nil
		}
	}
	sv.q.PushBatch(ids, prios)

	var cause error
	for sv.remaining > 0 && sv.q.Len() > 0 {
		if err := ctx.Err(); err != nil {
			// Canceled mid-solve: stop here; the Finalize below serves
			// everything still uncovered at the hybrid cost, so the
			// partial greedy prefix is still a valid schedule.
			cause = err
			break
		}
		id, _ := sv.q.Min()
		if id >= n {
			// Singleton edge: ratio never changes; skip if already covered.
			sv.q.PopMin()
			e := graph.EdgeID(id - n)
			if !sv.uncovered.Test(int(e)) {
				continue
			}
			sv.commitSingleton(e)
			sv.noteCommit(false)
			continue
		}
		w := graph.NodeID(id)
		if sv.fresh[w] {
			// The head's oracle output was computed against the current
			// state of its instance, which no commit has touched since:
			// it is the greedy choice. Commit it.
			sv.q.PopMin()
			sv.commitHub(w)
			sv.noteCommit(true)
			continue
		}
		sv.refreshHead()
	}
	if cacheObserver != nil {
		st := cacheStats{
			Capacity:  cfg.MemberCacheCap,
			HighWater: sv.mcache.highWater,
			Stores:    sv.mcache.stores,
		}
		for _, mem := range sv.mcache.members {
			if mem != nil {
				st.RetainedLists++
				st.RetainedInts += len(mem)
			}
		}
		cacheObserver(st)
	}
	if storeObserver != nil {
		storeObserver(storeStats{
			Budget:     cfg.InstanceBudget,
			Builds:     sv.store.builds,
			Rebuilds:   sv.store.rebuilds,
			Evictions:  sv.store.evictions,
			PeakElems:  sv.store.peak,
			FinalElems: sv.store.resident,
		})
	}
	// Serve anything left directly: on the normal path this is defensive
	// (singletons cover every edge); on the cancellation path it is the
	// hybrid-rule finalization that makes the partial solve valid.
	s.Finalize(r)
	return s, cause
}

// SolveInduced is the restricted entry point for localized
// re-optimization: it solves the extracted region sub.G under the global
// rates projected through the subgraph's node mapping, returning a patch
// schedule over sub.G ready for core.ApplyPatch. CHITCHAT's quality
// guarantee (Theorem 4) applies to the region in isolation; the splice
// validity is argued at core.ApplyPatch.
func SolveInduced(sub *graph.Subgraph, r *workload.Rates, cfg Config) *core.Schedule {
	s, _ := SolveInducedCtx(context.Background(), sub, r, cfg)
	return s
}

// SolveInducedCtx is SolveInduced with the cancellation contract of
// SolveCtx: the returned patch is always valid over sub.G, and a non-nil
// error means the greedy ran only partially before the context fired.
func SolveInducedCtx(ctx context.Context, sub *graph.Subgraph, r *workload.Rates, cfg Config) (*core.Schedule, error) {
	return SolveCtx(ctx, sub.G, r.Project(sub.Global), cfg)
}

// noteCommit bumps the progress counters after a greedy commit and
// streams a snapshot to Config.OnProgress when set.
func (sv *solver) noteCommit(hub bool) {
	sv.commits++
	if hub {
		sv.hubCommits++
	}
	if sv.cfg.OnProgress != nil {
		sv.cfg.OnProgress(Progress{
			Commits:    sv.commits,
			HubCommits: sv.hubCommits,
			Covered:    sv.g.NumEdges() - sv.remaining,
			Remaining:  sv.remaining,
		})
	}
}

// solver carries the shared solve state. Oracle evaluations (evalHub) are
// pure reads of the materialized instances plus a per-worker scratch, so
// they run concurrently; all queue, schedule, and instance mutation stays
// on the caller goroutine.
type solver struct {
	g   *graph.Graph
	r   *workload.Rates
	cfg Config
	s   *core.Schedule

	n         int
	uncovered *bitset.Set
	remaining int
	q         *pq.IndexedMin
	scs       []*scratch // one per worker

	// store holds the resident hub instances under the element budget;
	// hasInst[w] records whether hub w has an instance at all (producers
	// and consumers both nonempty) — a graph property, independent of
	// residency. inv[e] lists the (hub, element) pairs of every RESIDENT
	// instance that materialized the still-uncovered graph edge e, so
	// covering an edge removes exactly the affected elements; spilled
	// instances learn about coverage when they are rebuilt (adoptInst
	// replays the uncovered set). The bucket is dropped whole once e is
	// covered.
	store   instStore
	hasInst []bool
	inv     [][]invEntry

	// Freshness: fresh[w] means freshVal[w] matches the CURRENT state of
	// instance w — no commit removed one of its elements or zeroed one of
	// its weights since the evaluation. Stale entries in the queue are
	// lower bounds (losing elements only worsens a hub), so lazy greedy
	// re-evaluates them when they reach the head; hubs whose weights were
	// zeroed may have improved and are re-evaluated eagerly at commit.
	fresh    []bool
	freshVal []hubVal
	mcache   memberCache

	// Progress counters for Config.OnProgress.
	commits    int
	hubCommits int

	memb     []bool // member marks, sized to the largest instance
	batchIDs []graph.NodeID
	batchRes []hubEval
	batchOK  []bool
	insIDs   []int32
	insPrios []float64
}

// hubVal is the flat per-hub oracle summary retained for every hub: the
// priority inputs plus the member-cache slot (or -1 when evicted).
type hubVal struct {
	cost    float64
	covered int32
	slot    int32
}

// hubInstance binds a hub's materialized oracle instance to the graph:
// instance vertices [0,nx) are the producers xs, [nx, nx+len(ys)) the
// consumers ys, and the last vertex is the hub; gid maps every
// materialized instance edge back to its graph edge id.
type hubInstance struct {
	d    *densest.Decremental
	xs   []graph.NodeID // aliases graph storage, sorted
	ys   []graph.NodeID // aliases graph storage, sorted
	xIDs []graph.EdgeID
	yLo  graph.EdgeID
	nx   int
	gid  []graph.EdgeID
}

func (hi *hubInstance) hubIdx() int32 { return int32(hi.nx + len(hi.ys)) }

// xIndex returns the instance vertex of producer x (position in the
// sorted xs), if present.
func (hi *hubInstance) xIndex(x graph.NodeID) (int, bool) {
	i := sort.Search(len(hi.xs), func(i int) bool { return hi.xs[i] >= x })
	if i < len(hi.xs) && hi.xs[i] == x {
		return i, true
	}
	return 0, false
}

// yIndex returns the instance vertex of consumer y, if present.
func (hi *hubInstance) yIndex(y graph.NodeID) (int, bool) {
	j := sort.Search(len(hi.ys), func(j int) bool { return hi.ys[j] >= y })
	if j < len(hi.ys) && hi.ys[j] == y {
		return hi.nx + j, true
	}
	return 0, false
}

// buildHubInstance materializes the maximal hub-graph centered on w — X =
// producers of w, Y = consumers of w, elements restricted to the first
// MaxCrossEdges cross-edges in (producer, adjacency) order — into a
// decremental oracle. It runs before any commit, so every edge is an
// element and every support weight is unpaid. It only reads the graph and
// writes sc, so concurrent calls with distinct scratches are safe.
func buildHubInstance(g *graph.Graph, r *workload.Rates, w graph.NodeID,
	cfg Config, sc *scratch) *hubInstance {

	xs := g.InNeighbors(w)
	ys := g.OutNeighbors(w)
	if len(xs) == 0 || len(ys) == 0 {
		return nil
	}
	xIDs := g.InEdgeIDs(w)
	yLo, _ := g.OutEdgeRange(w)

	nx, ny := len(xs), len(ys)
	hub := int32(nx + ny)
	if cap(sc.weight) < nx+ny+1 {
		sc.weight = make([]float64, nx+ny+1)
	}
	weight := sc.weight[:nx+ny+1]
	weight[hub] = 0
	edges := sc.edges[:0]
	gids := sc.gids[:0]
	for i, x := range xs {
		weight[i] = r.Prod[x]
		edges = append(edges, [2]int32{int32(i), hub})
		gids = append(gids, xIDs[i])
	}
	// Mark Y membership in the generation-stamped scratch array (a map
	// here dominated the whole solve on dense graphs).
	sc.gen++
	for j, y := range ys {
		weight[nx+j] = r.Cons[y]
		edges = append(edges, [2]int32{hub, int32(nx + j)})
		gids = append(gids, yLo+graph.EdgeID(j))
		sc.yMark[y] = sc.gen
		sc.yPos[y] = int32(nx + j)
	}
	// Cross-edges x → y, bounded as in the paper.
	crossBudget := cfg.MaxCrossEdges
	for i, x := range xs {
		if crossBudget <= 0 {
			break
		}
		lo, hi := g.OutEdgeRange(x)
		targets := g.OutNeighbors(x)
		for k := lo; k < hi; k++ {
			y := targets[k-lo]
			if y == w || sc.yMark[y] != sc.gen {
				continue
			}
			edges = append(edges, [2]int32{int32(i), sc.yPos[y]})
			gids = append(gids, k)
			crossBudget--
			if crossBudget <= 0 {
				break
			}
		}
	}
	sc.edges = edges // keep any growth for the next build
	sc.gids = gids
	return &hubInstance{
		d:    densest.NewDecremental(densest.Instance{N: nx + ny + 1, Weight: weight, Edges: edges}),
		xs:   xs,
		ys:   ys,
		xIDs: xIDs,
		yLo:  yLo,
		nx:   nx,
		gid:  append([]graph.EdgeID(nil), gids...),
	}
}

// invEntry locates one materialized element of a resident hub instance:
// element elem of instance hub is graph edge e for every entry in inv[e].
type invEntry struct {
	hub  int32
	elem int32
}

// instStore is the generational spill store for hub instances. All
// mutation happens on the solve goroutine; the parallel oracle phases
// only read resident instances (which pinning keeps resident). Two
// generations are tracked: instances touched in the current generation
// and instances from the previous one. When the current generation's
// element mass reaches half the budget the store rotates — everything
// still stranded in the previous generation is evicted — so at most
// ~budget elements stay resident and eviction bookkeeping is O(1) per
// touch. With budget 0 rotation never fires and every instance is
// permanent, reproducing the fully-resident behavior.
type instStore struct {
	budget   int
	insts    []*hubInstance
	genOf    []int64 // generation the hub was last touched in
	curGen   int64
	curHubs  []graph.NodeID // hubs touched in the current generation
	prevHubs []graph.NodeID // hubs from the previous generation
	curElems int            // element mass touched this generation
	pinOf    []int64        // pinOf[w] == pinGen pins w across a rotation
	pinGen   int64

	resident  int // resident element mass
	peak      int
	builds    int
	rebuilds  int
	evictions int
}

func (st *instStore) init(n, budget int) {
	st.budget = budget
	st.insts = make([]*hubInstance, n)
	st.genOf = make([]int64, n)
	st.pinOf = make([]int64, n)
	st.curGen = 1
	st.pinGen = 1
}

// ensureInst returns hub w's instance, rebuilding it if it was spilled
// (or never usable enough to keep — both look the same to the store) and
// touching it into the current generation. Returns nil only for hubs
// with no instance at all. Must run on the solve goroutine.
func (sv *solver) ensureInst(w graph.NodeID) *hubInstance {
	if !sv.hasInst[w] {
		return nil
	}
	hi := sv.store.insts[w]
	if hi == nil {
		hi = buildHubInstance(sv.g, sv.r, w, sv.cfg, sv.scs[0])
		sv.store.rebuilds++
		sv.adoptInst(w, hi)
		return hi
	}
	sv.touchInst(w, len(hi.gid))
	return hi
}

// adoptInst takes ownership of a freshly built instance for hub w:
// replays the solve history recorded in the shared state (elements whose
// graph edge is already covered are removed; supports whose push/pull is
// already scheduled are weightless — see the package comment for why
// this replay reproduces the instance exactly), registers the live
// elements in the inverted index, and touches w into the current
// generation. The replay is a no-op for the initial builds, where
// nothing is covered or paid yet.
func (sv *solver) adoptInst(w graph.NodeID, hi *hubInstance) {
	st := &sv.store
	for ei, e := range hi.gid {
		if sv.uncovered.Test(int(e)) {
			sv.inv[e] = append(sv.inv[e], invEntry{int32(w), int32(ei)})
		} else {
			hi.d.RemoveEdge(ei)
		}
	}
	for i := range hi.xs {
		if sv.s.IsPush(hi.xIDs[i]) {
			hi.d.ZeroWeight(i)
		}
	}
	for j := range hi.ys {
		if sv.s.IsPull(hi.yLo + graph.EdgeID(j)) {
			hi.d.ZeroWeight(hi.nx + j)
		}
	}
	st.insts[w] = hi
	st.resident += len(hi.gid)
	if st.resident > st.peak {
		st.peak = st.resident
	}
	st.builds++
	sv.touchInst(w, len(hi.gid))
}

// touchInst stamps hub w into the current store generation, rotating the
// store when the generation fills up.
func (sv *solver) touchInst(w graph.NodeID, elems int) {
	st := &sv.store
	if st.genOf[w] == st.curGen {
		return
	}
	st.genOf[w] = st.curGen
	st.curHubs = append(st.curHubs, w)
	st.curElems += elems
	if st.budget > 0 && st.curElems >= st.budget/2 {
		sv.rotateStore()
	}
}

// rotateStore starts a new generation: instances from the previous
// generation that were not touched since are evicted (pinned ones roll
// forward instead), the current generation becomes the previous one.
func (sv *solver) rotateStore() {
	st := &sv.store
	old := st.prevHubs
	carried := old[:0]
	for _, w := range old {
		if st.genOf[w] == st.curGen || st.insts[w] == nil {
			continue // re-touched since (tracked in curHubs) or already gone
		}
		if st.pinOf[w] == st.pinGen {
			carried = append(carried, w)
			continue
		}
		sv.evictInst(w)
	}
	st.prevHubs = st.curHubs
	st.curGen++
	st.curElems = 0
	st.curHubs = carried // pinned survivors open the new generation
	for _, w := range carried {
		st.genOf[w] = st.curGen
		st.curElems += len(st.insts[w].gid)
	}
}

// evictInst spills hub w's instance: its live elements leave the
// inverted index (swap-remove from each bucket; bucket order is
// irrelevant — entries only fan out independent RemoveEdge calls) and
// its memory is released. The hub's cached evaluation goes stale — a
// spilled instance cannot observe later coverage, so it must be
// re-evaluated (after a rebuild) before it may be committed. Eviction
// never changes the instance's logical state, so the queue entry remains
// the exact current ratio — a valid lower bound.
func (sv *solver) evictInst(w graph.NodeID) {
	st := &sv.store
	hi := st.insts[w]
	for ei, e := range hi.gid {
		if !sv.uncovered.Test(int(e)) {
			continue
		}
		bucket := sv.inv[e]
		for t, en := range bucket {
			if en.hub == int32(w) && en.elem == int32(ei) {
				bucket[t] = bucket[len(bucket)-1]
				sv.inv[e] = bucket[:len(bucket)-1]
				break
			}
		}
	}
	st.insts[w] = nil
	st.resident -= len(hi.gid)
	st.evictions++
	sv.fresh[w] = false
}

// forEach runs fn(i, scratch) for i in [0, k), fanning out across the
// solver's workers. Each invocation gets a worker-private scratch; fn must
// not touch shared mutable state. Results land in caller-provided arrays
// indexed by i, so the outcome is independent of scheduling order.
func (sv *solver) forEach(k int, fn func(i int, sc *scratch)) {
	nw := len(sv.scs)
	if nw > k {
		nw = k
	}
	if nw <= 1 {
		for i := 0; i < k; i++ {
			fn(i, sv.scs[0])
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(nw)
	for wk := 0; wk < nw; wk++ {
		sc := sv.scs[wk]
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= k {
					return
				}
				fn(i, sc)
			}
		}()
	}
	wg.Wait()
}

// coverEdge removes graph edge e from the uncovered ground set and, via
// the inverted index, deletes its element from every RESIDENT instance
// that materialized it (spilled instances replay the uncovered set when
// rebuilt). Those hubs' cached evaluations may now overstate coverage,
// so they go stale; their queue entries remain valid lower bounds
// (element loss only worsens a ratio) until lazily refreshed.
func (sv *solver) coverEdge(e graph.EdgeID) {
	if !sv.uncovered.Test(int(e)) {
		return
	}
	sv.uncovered.Clear(int(e))
	sv.remaining--
	for _, en := range sv.inv[e] {
		if sv.store.insts[en.hub].d.RemoveEdge(int(en.elem)) {
			sv.fresh[en.hub] = false
		}
	}
	sv.inv[e] = nil
}

// commitSingleton serves edge e directly at the hybrid cost. Paying for
// the push (or pull) zeroes the matching support weight in the one hub
// instance that uses it, which can only IMPROVE that hub's ratio — so it
// is re-evaluated eagerly to keep every queue entry a lower bound. The
// affected hub is determined by graph structure alone (the edge is
// always a support of its endpoint's maximal hub-graph when that hub has
// an instance), so the eager refresh fires identically whether the
// instance is resident — weight zeroed in place — or spilled — the
// zeroing is replayed from the schedule flag on rebuild.
func (sv *solver) commitSingleton(e graph.EdgeID) {
	u := sv.g.EdgeSource(e)
	v := sv.g.EdgeTarget(e)
	improved := graph.NodeID(-1)
	if sv.r.Prod[u] <= sv.r.Cons[v] {
		sv.s.SetPush(e)
		if sv.hasInst[v] {
			if hi := sv.store.insts[v]; hi != nil {
				if i, ok := hi.xIndex(u); ok {
					hi.d.ZeroWeight(i)
				}
			}
			improved = v
		}
	} else {
		sv.s.SetPull(e)
		if sv.hasInst[u] {
			if hi := sv.store.insts[u]; hi != nil {
				if j, ok := hi.yIndex(v); ok {
					hi.d.ZeroWeight(j)
				}
			}
			improved = u
		}
	}
	sv.coverEdge(e)
	if improved >= 0 && sv.q.Contains(int(improved)) {
		// Exhausted hubs (no longer queued) are never resurrected: their
		// element set only shrinks, so a hub with nothing coverable never
		// regains value.
		sv.q.Remove(int(improved))
		sv.reEval(improved)
	}
}

// commitHub applies the oracle's choice for hub w: pushes X→w, pulls
// w→Y, covers the live cross-elements inside the selected subgraph, and
// removes every newly covered element from the ground set. Coverage
// comes from the same materialized elements the oracle counted, so the
// committed coverage equals the claimed newlyCovered exactly. The
// committed hub's weights were zeroed (its ratio may have improved), so
// it is re-evaluated immediately and re-queued if it still covers
// anything.
func (sv *solver) commitHub(w graph.NodeID) {
	// A committable hub is fresh, and fresh implies resident (eviction
	// clears freshness), so this is a touch; ensureInst keeps the
	// invariant local all the same.
	hi := sv.ensureInst(w)
	members := sv.cachedMembers(w)
	if members == nil {
		// Evicted from the bounded member cache. The instance is unchanged
		// since the fresh evaluation, so one re-peel reproduces it.
		ev, ok := evalHub(hi, sv.cfg, sv.scs[0])
		if !ok {
			return // cannot happen for a fresh queued hub; stay defensive
		}
		members = ev.members
	}
	if cap(sv.memb) < hi.d.N() {
		sv.memb = make([]bool, hi.d.N())
	}
	memb := sv.memb[:hi.d.N()]
	for _, v := range members {
		memb[v] = true
	}
	hub := hi.hubIdx()
	// Pay the support costs first: pushes for selected producers, pulls
	// for selected consumers. Paid supports are weightless in every later
	// evaluation of this instance.
	for _, v := range members {
		switch {
		case v < int32(hi.nx):
			sv.s.SetPush(hi.xIDs[v])
			hi.d.ZeroWeight(int(v))
		case v < hub:
			sv.s.SetPull(hi.yLo + graph.EdgeID(int(v)-hi.nx))
			hi.d.ZeroWeight(int(v))
		}
	}
	// Cover every live element inside the selected subgraph: support
	// elements are served by their own push/pull, cross-elements by
	// piggybacking through w. Each member's incident edges are visited
	// from their first endpoint only, so every element is handled once.
	claimed := int(sv.freshVal[w].covered)
	covered := 0
	for _, v := range members {
		for _, ei := range hi.d.IncidentEdges(int(v)) {
			a, b := hi.d.Edge(int(ei))
			if a != v || !memb[b] || !hi.d.EdgeAlive(int(ei)) {
				continue
			}
			e := hi.gid[ei]
			if a != hub && b != hub {
				sv.s.SetCovered(e, w)
			}
			sv.coverEdge(e)
			covered++
		}
	}
	for _, v := range members {
		memb[v] = false
	}
	if commitObserver != nil {
		commitObserver(w, claimed, covered)
	}
	sv.reEval(w)
}

// reEval re-runs the oracle for a hub that is not currently queued and
// re-inserts it when it still covers something; otherwise the hub is
// exhausted and stays out for good.
func (sv *solver) reEval(w graph.NodeID) {
	ev, ok := evalHub(sv.ensureInst(w), sv.cfg, sv.scs[0])
	if !ok || ev.newlyCovered == 0 {
		sv.fresh[w] = false
		return
	}
	sv.setFresh(w, ev)
	sv.q.Push(int(w), ev.ratio())
}

// refreshHead handles a stale hub at the head of the queue. Classic lazy
// greedy first: refresh the head alone — stale entries are lower bounds
// (a hub only gets worse as elements it covers disappear), so if the
// fresh ratio still does not exceed the next queued priority, the head
// remains the greedy choice and a single oracle call decides the commit.
// Only when the head loses its slot do we speculatively refresh the next
// Config.RefreshBatch stale candidates in one parallel round: the head region is
// churning, so those evaluations are likely needed next and independent.
func (sv *solver) refreshHead() {
	id, _ := sv.q.Min() // caller established: a hub with a stale entry
	sv.q.PopMin()
	w := graph.NodeID(id)
	ev, ok := evalHub(sv.ensureInst(w), sv.cfg, sv.scs[0])
	if !ok || ev.newlyCovered == 0 {
		sv.fresh[w] = false
		return // exhausted hub; it never regains value
	}
	sv.setFresh(w, ev)
	sv.q.Push(id, ev.ratio())
	if sv.q.Len() == 1 {
		return // sole candidate; the main loop commits it
	}
	if head, _ := sv.q.Min(); head == id {
		return // still the minimum; the main loop commits it
	}
	batch := sv.batchIDs[:0]
	for len(batch) < sv.cfg.RefreshBatch && sv.q.Len() > 0 {
		nid, _ := sv.q.Min()
		if nid >= sv.n || sv.fresh[nid] {
			break // fresh hub or singleton: the main loop handles it
		}
		sv.q.PopMin()
		batch = append(batch, graph.NodeID(nid))
	}
	sv.batchIDs = batch
	sv.evalBatch(batch)
}

// evalBatch evaluates the given hubs (already removed from the queue)
// concurrently, then re-inserts those that still cover something, marking
// them fresh. Hubs with nothing left stay out of the queue for good — the
// exhaustion rule documented on commitSingleton.
func (sv *solver) evalBatch(batch []graph.NodeID) {
	if len(batch) == 0 {
		return
	}
	if cap(sv.batchRes) < len(batch) {
		sv.batchRes = make([]hubEval, len(batch))
		sv.batchOK = make([]bool, len(batch))
	}
	res := sv.batchRes[:len(batch)]
	ok := sv.batchOK[:len(batch)]
	// Residency changes (materialize, evict) happen here on the solve
	// goroutine; the parallel phase below only reads. Pinning keeps a
	// store rotation triggered by a later ensure from evicting an
	// earlier batch member before its evaluation runs.
	sv.store.pinGen++
	for _, w := range batch {
		sv.store.pinOf[w] = sv.store.pinGen
	}
	for _, w := range batch {
		sv.ensureInst(w)
	}
	sv.forEach(len(batch), func(i int, sc *scratch) {
		res[i], ok[i] = evalHub(sv.store.insts[batch[i]], sv.cfg, sc)
	})
	sv.store.pinGen++ // unpin
	ids := sv.insIDs[:0]
	prios := sv.insPrios[:0]
	for i, w := range batch {
		if ok[i] && res[i].newlyCovered > 0 {
			sv.setFresh(w, res[i])
			ids = append(ids, int32(w))
			prios = append(prios, res[i].ratio())
		} else {
			sv.fresh[w] = false
		}
	}
	sv.q.PushBatch(ids, prios)
	sv.insIDs = ids
	sv.insPrios = prios
}

// setFresh records ev as hub w's current oracle output: the flat summary
// for all hubs, the member list in the bounded cache.
func (sv *solver) setFresh(w graph.NodeID, ev hubEval) {
	sv.fresh[w] = true
	sv.freshVal[w] = hubVal{
		cost:    ev.cost,
		covered: int32(ev.newlyCovered),
		slot:    sv.mcache.store(w, ev.members, sv.freshVal),
	}
}

// cachedMembers returns hub w's fresh member list if it is still resident
// in the bounded cache, nil otherwise.
func (sv *solver) cachedMembers(w graph.NodeID) []int32 {
	slot := sv.freshVal[w].slot
	if slot >= 0 && sv.mcache.hubs[slot] == w {
		return sv.mcache.members[slot]
	}
	return nil
}

// memberCache is a fixed-size ring of oracle member lists. It bounds the
// memory retained between evaluation and commit to O(Config.MemberCacheCap)
// slices regardless of graph size; evicted entries are re-derived on
// demand by re-peeling the unchanged instance.
type memberCache struct {
	hubs      []graph.NodeID
	members   [][]int32
	next      int
	occupied  int
	highWater int
	stores    int
}

func (mc *memberCache) init(cap int) {
	mc.hubs = make([]graph.NodeID, cap)
	for i := range mc.hubs {
		mc.hubs[i] = -1
	}
	mc.members = make([][]int32, cap)
}

// store places w's member list in the next ring slot, unlinking whichever
// hub previously owned the slot, and returns the slot.
func (mc *memberCache) store(w graph.NodeID, members []int32, vals []hubVal) int32 {
	mc.stores++
	slot := mc.next
	mc.next++
	if mc.next == len(mc.hubs) {
		mc.next = 0
	}
	if old := mc.hubs[slot]; old >= 0 {
		if vals[old].slot == int32(slot) {
			vals[old].slot = -1
		}
	} else {
		mc.occupied++
		if mc.occupied > mc.highWater {
			mc.highWater = mc.occupied
		}
	}
	mc.hubs[slot] = w
	mc.members[slot] = members
	return int32(slot)
}

// hubEval is a transient oracle output: the selected instance vertices
// and how much the selection covers at what cost.
type hubEval struct {
	members      []int32 // instance-local vertex ids, hub vertex included
	cost         float64 // Σ unpaid rp(x) + Σ unpaid rc(y)
	newlyCovered int     // live elements inside the selection
}

func (h hubEval) ratio() float64 {
	if h.newlyCovered == 0 {
		return math.Inf(1)
	}
	return h.cost / float64(h.newlyCovered)
}

// evalHub runs the oracle over the hub's live sub-instance. It only reads
// the instance and writes sc, so concurrent calls with distinct scratches
// are safe. A selection is usable only when it retains the hub vertex
// (support pushes/pulls need the hub; it is weightless, so keeping it
// never hurts) and at least one producer or consumer.
func evalHub(hi *hubInstance, cfg Config, sc *scratch) (hubEval, bool) {
	if hi == nil || hi.d.AliveEdges() == 0 {
		return hubEval{}, false
	}
	var res densest.Result
	if cfg.ExactOracle && hi.d.N() <= 24 {
		var inst densest.Instance
		inst, sc.liveBuf = hi.d.LiveInstance(sc.liveBuf)
		res = densest.Exact(inst, &sc.dsc)
	} else {
		res = hi.d.Solve(&sc.dsc)
	}
	if res.EdgeCnt == 0 {
		return hubEval{}, false
	}
	hub := hi.hubIdx()
	hubIn := false
	for _, v := range res.Members {
		if v == hub {
			hubIn = true
			break
		}
	}
	if !hubIn || len(res.Members) < 2 {
		return hubEval{}, false
	}
	return hubEval{members: res.Members, cost: res.Weight, newlyCovered: res.EdgeCnt}, true
}

// scratch holds per-worker reusable buffers: yMark/yPos form a
// generation-stamped index from node id to the hub instance's Y-side
// vertex (a per-build map dominated profiles); weight/edges/gids back
// instance materialization, liveBuf the exact-oracle snapshot, and dsc is
// the peel arena, so a steady-state oracle evaluation allocates only its
// small result slice.
type scratch struct {
	yMark   []int64
	yPos    []int32
	gen     int64
	weight  []float64
	edges   [][2]int32
	gids    []graph.EdgeID
	liveBuf [][2]int32
	dsc     densest.Scratch
}
