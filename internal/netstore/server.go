package netstore

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"piggyback/internal/graph"
	"piggyback/internal/store"
	"piggyback/internal/telemetry"
)

// DefaultIdleTimeout is how long a connection may sit with no complete
// frame before the server drops it — dead clients must not pin handler
// goroutines forever.
const DefaultIdleTimeout = 2 * time.Minute

// ServerConfig tunes a Server. The zero value uses every default.
type ServerConfig struct {
	// IdleTimeout drops connections idle for this long; 0 means
	// DefaultIdleTimeout, negative disables the deadline.
	IdleTimeout time.Duration
	// OnProtoError, when non-nil, is called for every malformed request
	// (before the typed error frame goes out) and for frame-level
	// failures that drop a connection — the hook that makes protocol
	// bugs visible instead of looking like network flakes. Called from
	// handler goroutines; must be safe for concurrent use.
	OnProtoError func(remote string, err error)
	// Views seeds the server with existing view state — the restart
	// path: a server that comes back after a crash with its durable
	// views intact (the chaos tests model a persistent tier; the
	// paper's memcached tier would come back empty). The map is copied.
	Views map[graph.NodeID][]store.Event
	// Metrics, when non-nil, registers the server's counters
	// (netstore_server_*) in the given registry; MetricsLabel
	// distinguishes servers sharing one registry (typically the server
	// index). Server.Stats() works either way.
	Metrics      *telemetry.Registry
	MetricsLabel string
}

// ServerStats counts one server's connections and traffic so far.
type ServerStats struct {
	// Conns counts connections accepted over the server's lifetime;
	// ActiveConns is how many are currently open.
	Conns, ActiveConns int
	// BytesRead / BytesWritten count wire traffic across every
	// connection; Frames counts complete request frames decoded.
	BytesRead, BytesWritten int64
	Frames                  int64
	// ProtoErrors counts malformed requests and frame-level failures —
	// everything routed through ServerConfig.OnProtoError.
	ProtoErrors int
}

// Server is one TCP data-store server holding user views. Unlike the
// in-process store (one goroutine per server, no locks), a TCP server
// handles many connections concurrently, so views live in a sharded,
// mutex-protected container — the same shape as a memcached slab tier.
type Server struct {
	ln     net.Listener
	cfg    ServerConfig
	inst   *serverInstruments
	shards [viewShards]viewShard
	wg     sync.WaitGroup

	// epoch is the plan epoch stamped on every response frame — the
	// rollout observation hook. SetEpoch publishes a new one atomically.
	epoch atomic.Uint32

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
}

const viewShards = 64

type viewShard struct {
	mu    sync.Mutex
	views map[graph.NodeID][]store.Event
}

// NewServer starts a server listening on addr (use "127.0.0.1:0" for an
// ephemeral test port) with the default configuration.
func NewServer(addr string) (*Server, error) {
	return NewServerWith(addr, ServerConfig{})
}

// NewServerWith is NewServer with explicit configuration.
func NewServerWith(addr string, cfg ServerConfig) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewServerOn(ln, cfg), nil
}

// NewServerOn starts a server on an existing listener — the seam that
// lets tests interpose a fault-injecting listener between the server
// and its clients.
func NewServerOn(ln net.Listener, cfg ServerConfig) *Server {
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = DefaultIdleTimeout
	}
	s := &Server{
		ln:    ln,
		cfg:   cfg,
		inst:  newServerInstruments(cfg.Metrics, cfg.MetricsLabel),
		conns: make(map[net.Conn]struct{}),
	}
	for i := range s.shards {
		s.shards[i].views = make(map[graph.NodeID][]store.Event)
	}
	for v, list := range cfg.Views {
		sh := s.shard(v)
		sh.views[v] = append([]store.Event(nil), list...)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// SetEpoch publishes the plan epoch stamped on subsequent responses.
func (s *Server) SetEpoch(e uint32) {
	s.epoch.Store(e)
	s.inst.epoch.Set(float64(e))
}

// Stats returns a copy of the connection and traffic counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	active := len(s.conns)
	s.mu.Unlock()
	return ServerStats{
		Conns:        int(s.inst.conns.Value()),
		ActiveConns:  active,
		BytesRead:    s.inst.bytesRead.Value(),
		BytesWritten: s.inst.bytesWritten.Value(),
		Frames:       s.inst.frames.Value(),
		ProtoErrors:  int(s.inst.protoErrors.Value()),
	}
}

// Epoch returns the currently published plan epoch.
func (s *Server) Epoch() uint32 { return s.epoch.Load() }

// Close stops accepting, closes live connections, and waits for handler
// goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// Snapshot copies out every view — the durable state a restarted server
// would reload (ServerConfig.Views). Call after Close for a consistent
// image, or any time for a best-effort one.
func (s *Server) Snapshot() map[graph.NodeID][]store.Event {
	out := make(map[graph.NodeID][]store.Event)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for v, list := range sh.views {
			out[v] = append([]store.Event(nil), list...)
		}
		sh.mu.Unlock()
	}
	return out
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.inst.conns.Inc()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

func (s *Server) protoError(conn net.Conn, err error) {
	s.inst.protoErrors.Inc()
	if s.cfg.OnProtoError != nil {
		s.cfg.OnProtoError(conn.RemoteAddr().String(), err)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	// Byte accounting wraps the raw conn UNDER the bufio layers, so the
	// counters see exactly what crosses the wire.
	cc := countingConn{Conn: conn, r: s.inst.bytesRead, w: s.inst.bytesWritten}
	br := bufio.NewReader(cc)
	bw := bufio.NewWriter(cc)
	var buf []byte
	reply := func(payload []byte) bool {
		if writeFrame(bw, s.epoch.Load(), payload) != nil {
			return false
		}
		return bw.Flush() == nil
	}
	for {
		if s.cfg.IdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		}
		payload, _, err := readFrame(br, buf)
		if err != nil {
			// Frame-level failure: the stream position is untrustworthy,
			// so the connection must die — but not silently. EOF is a
			// clean hangup; everything else goes through the hook, and a
			// version mismatch gets a best-effort parting error frame
			// before the drop.
			if !errors.Is(err, io.EOF) {
				s.protoError(conn, err)
			}
			if errors.Is(err, ErrVersionMismatch) {
				reply(errResponse(ErrCodeMalformed, err.Error()))
			}
			return
		}
		s.inst.frames.Inc()
		buf = payload[:0]
		op, ev, k, views, err := decodeRequest(payload)
		if err != nil {
			// Payload-level failure: the framing is intact, so reply with
			// a typed error frame and keep serving — dropping the
			// connection here made every client-side encoding bug look
			// like a network flake.
			s.protoError(conn, err)
			code := ErrCodeMalformed
			if errors.Is(err, errUnknownOp) {
				code = ErrCodeUnknownOp
			}
			if !reply(errResponse(code, err.Error())) {
				return
			}
			continue
		}
		switch op {
		case opUpdate:
			for _, v := range views {
				s.insert(v, ev)
			}
			if !reply(okResponse(nil)) {
				return
			}
		case opQuery:
			if !reply(okResponse(encodeEvents(s.query(views, k)))) {
				return
			}
		}
	}
}

func (s *Server) shard(v graph.NodeID) *viewShard {
	return &s.shards[uint32(v)%viewShards]
}

// insert adds ev to view v, keeping newest-first order and the cap.
// The insert is idempotent on the exact event tuple: a client that
// timed out after the server applied its update retries the identical
// frame, and a second application would diverge the view from a
// fault-free run.
func (s *Server) insert(v graph.NodeID, ev store.Event) {
	sh := s.shard(v)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	list := sh.views[v]
	i := sort.Search(len(list), func(i int) bool { return list[i].TS <= ev.TS })
	for j := i; j < len(list) && list[j].TS == ev.TS; j++ {
		if list[j] == ev {
			return // duplicate delivery (retry after lost ack)
		}
	}
	list = append(list, store.Event{})
	copy(list[i+1:], list[i:])
	list[i] = ev
	if len(list) > store.ViewCap {
		list = list[:store.ViewCap]
	}
	sh.views[v] = list
}

func (s *Server) query(views []graph.NodeID, k int) []store.Event {
	if k <= 0 || k > store.ViewCap {
		k = store.StreamSize
	}
	var out []store.Event
	for _, v := range views {
		sh := s.shard(v)
		sh.mu.Lock()
		list := sh.views[v]
		if len(list) > k {
			list = list[:k]
		}
		snapshot := make([]store.Event, len(list))
		copy(snapshot, list)
		sh.mu.Unlock()
		out = store.MergeNewest(out, snapshot, k)
	}
	return out
}

// errUnknownOp lets the handler map decode failures to the right error
// code without string matching.
var errUnknownOp = errors.New("netstore: unknown op")

func unknownOpError(op byte) error {
	return fmt.Errorf("%w %d", errUnknownOp, op)
}
