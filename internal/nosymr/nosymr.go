// Package nosymr runs PARALLELNOSY as MapReduce jobs, mirroring the
// paper's Hadoop implementation (§3.2, "Implementing PARALLELNOSY with
// MapReduce") on the in-memory engine of package mapreduce.
//
// Each iteration is two jobs plus a merge, exactly as the paper lays out:
//
//   - Job 1 (map = phase 1, reduce = phase 2): each mapper takes a
//     hub-graph — identified by its hub edge w → y — prices it, and, if
//     it is a candidate, emits one lock request per edge of the
//     hub-graph, keyed by the locked edge's id, carrying the candidate's
//     hub-edge id and gain. Each reducer receives all lock requests for
//     one edge and grants the lock to the highest-gain candidate,
//     emitting (hub edge, locked edge).
//   - Job 2 (reduce-only = phase 3): grants are grouped by hub edge; the
//     reducer looks the candidate up in the round snapshot, applies the
//     full/partial commit rule, and emits schedule updates.
//   - Merge: updates are applied to the schedule; lock ownership makes
//     them conflict-free, so application order is irrelevant.
//
// The pricing, locking, and decision logic is the Evaluator from package
// nosy, so this solver and the shared-memory one are the same algorithm
// on different substrates; tests assert they produce identical schedules
// and identical per-iteration stats.
//
// Job 1's map input is the dirty set, not every edge: a hub edge's
// candidacy depends only on the schedule state of edges pointing into its
// endpoints, so after an iteration only hub edges in the neighborhoods of
// committed hubs are re-priced — the shared-memory solver's dirty-set
// discipline, realized here as the paper's "pull-based update
// dissemination" between iterations. Clean candidates from earlier rounds
// skip the pricing map and bid with their cached hub-graph; the lock and
// decide jobs see exactly the candidate set the full re-map would have
// produced, so schedules and stats are unchanged — only the mapped volume
// shrinks. The Evaluator's memoized structural cache carries over too:
// the dirty re-pricings re-walk cached intersections instead of
// recomputing them.
package nosymr

import (
	"context"

	"piggyback/internal/bitset"
	"piggyback/internal/graph"
	"piggyback/internal/mapreduce"
	"piggyback/internal/nosy"
	"piggyback/internal/workload"
)

// Solve runs PARALLELNOSY via MapReduce jobs and returns the finalized
// schedule plus per-iteration stats. cfg is interpreted exactly as in
// package nosy.
func Solve(g *graph.Graph, r *workload.Rates, cfg nosy.Config) nosy.Result {
	res, _ := SolveCtx(context.Background(), g, r, cfg)
	return res
}

// SolveCtx is Solve with cooperative cancellation, checked between
// MapReduce iterations exactly as nosy.SolveCtx checks between rounds:
// on cancellation the committed iterations are finalized with the hybrid
// rule and returned as a valid anytime schedule with the context's error.
func SolveCtx(ctx context.Context, g *graph.Graph, r *workload.Rates, cfg nosy.Config) (nosy.Result, error) {
	ev := nosy.NewEvaluator(g, r, cfg)
	opts := mapreduce.Options{Workers: cfg.Workers}
	cc := newCandCache(g.NumEdges())

	var iters []nosy.IterationStat
	var cause error
	for it := 0; cfg.MaxIterations == 0 || it < cfg.MaxIterations; it++ {
		if err := ctx.Err(); err != nil {
			cause = err
			break
		}
		stat := iterate(ev, cc, opts)
		stat.Iteration = it
		if cfg.TraceCosts {
			stat.Cost = ev.Cost() // O(1) running finalized-equivalent cost
		}
		iters = append(iters, stat)
		if cfg.OnIteration != nil {
			cfg.OnIteration(stat)
		}
		if stat.FullCommits+stat.PartialCommits == 0 {
			break
		}
	}
	ev.Schedule().Finalize(r)
	return nosy.Result{Schedule: ev.Schedule(), Iterations: iters}, cause
}

// candCache carries candidate state across iterations, the MapReduce
// counterpart of the shared-memory solver's state: dirty flags the hub
// edges whose pricing may have changed since their last evaluation,
// isCand the hub edges whose cands slot holds a live candidate, and
// cands the cached hub-graphs themselves. The first round seeds
// everything dirty; later rounds re-price only commit neighborhoods.
type candCache struct {
	dirty     *bitset.Set
	isCand    *bitset.Set
	cands     []*nosy.Candidate
	dirtyList []int32        // reused scratch: this round's dirty edges
	input     []graph.EdgeID // reused scratch: this round's Job 1 input
}

func newCandCache(m int) *candCache {
	cc := &candCache{
		dirty:  bitset.New(m),
		isCand: bitset.New(m),
		cands:  make([]*nosy.Candidate, m),
	}
	cc.dirty.SetAll()
	return cc
}

// lockRequest is Job 1's map output value: candidate identity and gain.
type lockRequest struct {
	hubEdge graph.EdgeID
	gain    float64
}

// grant is Job 1's reduce output: lockedEdge is granted to hubEdge.
// A grant with lockedEdge == candidateMarker is not a lock at all but a
// "this hub edge bid" marker used to count phase-1 candidates.
type grant struct {
	hubEdge    graph.EdgeID
	lockedEdge graph.EdgeID
}

// candidateMarker flags counting grants (no real edge has a negative id).
const candidateMarker graph.EdgeID = -1

// update is Job 2's output: one schedule mutation.
type update struct {
	op   updateOp
	edge graph.EdgeID
	hub  graph.NodeID // for opCover
}

type updateOp uint8

const (
	opPush updateOp = iota
	opPull
	opCover
)

// commitMark tags Job 2 outputs so the merge can count full vs partial
// commits and fan the commit's dirty neighborhood out to the next round;
// emitted once per committed candidate with upd.edge = the hub edge.
type output struct {
	upd     update
	mark    bool // true: this is a commit marker, upd.edge is the hub edge
	partial bool
	covered int
}

func iterate(ev *nosy.Evaluator, cc *candCache, opts mapreduce.Options) nosy.IterationStat {
	var stat nosy.IterationStat

	// Preliminary job: materialize Job 1's input — the dirty hub edges,
	// which get re-priced, followed by the clean edges whose cached
	// candidate bids again at its cached gain. Every hub edge appears at
	// most once.
	cc.dirtyList = cc.dirty.AppendSet(cc.dirtyList[:0])
	stat.Dirty = len(cc.dirtyList)
	input := cc.input[:0]
	for _, e := range cc.dirtyList {
		input = append(input, graph.EdgeID(e))
	}
	cc.isCand.Range(func(e int) bool {
		if !cc.dirty.Test(e) {
			input = append(input, graph.EdgeID(e))
		}
		return true
	})
	cc.input = input

	// Job 1 — map: phase-1 candidate selection emitting lock requests
	// (dirty edges re-priced into the cache, clean ones served from it);
	// reduce: phase-2 lock granting. Mappers write only their own edge's
	// cache slot, so concurrent map invocations never conflict.
	grants := mapreduce.Run(
		input,
		func(he graph.EdgeID, emit func(graph.EdgeID, lockRequest)) {
			var c *nosy.Candidate
			if cc.dirty.Test(int(he)) {
				fresh, ok := ev.EvalCandidate(he)
				if !ok {
					cc.isCand.ClearAtomic(int(he))
					return
				}
				c = cc.cands[he]
				if c == nil {
					c = &nosy.Candidate{}
					cc.cands[he] = c
				}
				*c = fresh
				cc.isCand.SetAtomic(int(he))
			} else {
				c = cc.cands[he]
			}
			req := lockRequest{hubEdge: he, gain: c.Gain}
			emit(he, req)
			for j := range c.Xs {
				emit(c.XWEdges[j], req)
				emit(c.XYEdges[j], req)
			}
		},
		mapreduce.Int32Key,
		func(locked graph.EdgeID, reqs []lockRequest, emit func(grant)) {
			best := reqs[0]
			isCandidate := best.hubEdge == locked
			for _, r := range reqs[1:] {
				if r.hubEdge == locked {
					isCandidate = true
				}
				if r.gain > best.gain || (r.gain == best.gain && r.hubEdge < best.hubEdge) {
					best = r
				}
			}
			emit(grant{hubEdge: best.hubEdge, lockedEdge: locked})
			if isCandidate {
				// Every candidate bids on its own hub edge, so this reducer
				// is the one place that sees each candidate exactly once.
				emit(grant{hubEdge: locked, lockedEdge: candidateMarker})
			}
		},
		opts,
	)
	// The dirty set is consumed: clear per-bit when sparse, whole-table
	// when the round was dense enough that the word sweep is cheaper.
	if len(cc.dirtyList)*64 < cc.dirty.Len() {
		for _, e := range cc.dirtyList {
			cc.dirty.Clear(int(e))
		}
	} else {
		cc.dirty.Reset()
	}
	realGrants := grants[:0]
	for _, gr := range grants {
		if gr.lockedEdge == candidateMarker {
			stat.Candidates++
		} else {
			realGrants = append(realGrants, gr)
		}
	}

	// Job 2 — group grants by hub edge (map), decide and emit updates
	// (reduce). The reducer reads the candidate from the round snapshot's
	// cache — the same hub-graph the full re-derivation would rebuild,
	// since clean candidates are unchanged by definition and dirty ones
	// were just re-priced.
	outs := mapreduce.Run(
		realGrants,
		func(gr grant, emit func(graph.EdgeID, graph.EdgeID)) {
			emit(gr.hubEdge, gr.lockedEdge)
		},
		mapreduce.Int32Key,
		func(he graph.EdgeID, locked []graph.EdgeID, emit func(output)) {
			if !cc.isCand.Test(int(he)) {
				// This hub edge won locks for another candidate's edges but
				// is itself not a candidate (it only appears as key if it
				// bid, so this cannot happen; guard anyway).
				return
			}
			c := cc.cands[he]
			grantedSet := make(map[graph.EdgeID]bool, len(locked))
			for _, e := range locked {
				grantedSet[e] = true
			}
			keep, partial, ok := ev.Decide(c, func(e graph.EdgeID) bool { return grantedSet[e] })
			if !ok {
				return
			}
			emit(output{upd: update{edge: he}, mark: true, partial: partial, covered: len(keep)})
			emit(output{upd: update{op: opPull, edge: c.HubEdge}})
			for _, j := range keep {
				emit(output{upd: update{op: opPush, edge: c.XWEdges[j]}})
				emit(output{upd: update{op: opCover, edge: c.XYEdges[j], hub: c.W}})
			}
		},
		opts,
	)

	// Merge job: apply updates. Lock ownership makes them disjoint per
	// edge, so order does not matter. Commit markers fan the commit's
	// dirty neighborhood out to the next round. Mutations go through the
	// Evaluator's Apply* methods so its running cost stays exact.
	g := ev.Graph()
	for _, o := range outs {
		if o.mark {
			if o.partial {
				stat.PartialCommits++
			} else {
				stat.FullCommits++
			}
			stat.CoveredEdges += o.covered
			c := cc.cands[o.upd.edge]
			markDirty(g, cc.dirty, c.W)
			markDirty(g, cc.dirty, c.Y)
			continue
		}
		applyUpdate(ev, o.upd)
	}
	return stat
}

// markDirty flags every hub edge whose evaluation a commit touching node
// v can change: hub edges leaving v (v is the hub) and hub edges
// entering v (the changed edge may be a cross-edge or the pull edge of
// those candidates) — the fan-out rule of the shared-memory solver's
// markDirtyNodes.
func markDirty(g *graph.Graph, dirty *bitset.Set, v graph.NodeID) {
	lo, hi := g.OutEdgeRange(v)
	for e := lo; e < hi; e++ {
		dirty.Set(int(e))
	}
	for _, e := range g.InEdgeIDs(v) {
		dirty.Set(int(e))
	}
}

func applyUpdate(ev *nosy.Evaluator, u update) {
	switch u.op {
	case opPush:
		ev.ApplyPush(u.edge)
	case opPull:
		ev.ApplyPull(u.edge)
	case opCover:
		ev.ApplyCover(u.edge, u.hub)
	}
}
